/**
 * @file
 * Tests for the virtual-memory system: PTE codec, frame allocation,
 * backing store, page-table walks through the cache (including nested
 * misses), demand paging, the Section 3.4 translation-consistency
 * operations, reference-bit maintenance, and pageout with data
 * integrity across eviction/reload cycles.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/cache.hh"
#include "mem/phys_mem.hh"
#include "mem/vme_bus.hh"
#include "monitor/bus_monitor.hh"
#include "proto/controller.hh"
#include "sim/event.hh"
#include "sim/logging.hh"
#include "vm/backing_store.hh"
#include "vm/page_table.hh"
#include "vm/vm_system.hh"

namespace vmp::vm
{
namespace
{

constexpr std::uint32_t pageBytes = 256;
constexpr std::uint64_t memBytes = 1 << 20; // 256 vm frames

/** Fixture: two boards + VM system. */
struct VmFixture : public ::testing::Test
{
    VmFixture()
        : memory(memBytes, pageBytes), bus(events, memory),
          vm(events, memory, VmConfig{})
    {
        translator.bind(vm);
        for (CpuId id = 0; id < 2; ++id) {
            boards.push_back(std::make_unique<Board>(id, *this));
            vm.attach(boards[id]->controller);
        }
        // Each board behaves like an idle CPU: it services its bus
        // monitor whenever the interrupt line rises, so cross-CPU
        // ownership transfers resolve.
        for (auto &board : boards) {
            auto &controller = board->controller;
            controller.busMonitor().setInterruptLine(
                [this, &controller] {
                    events.scheduleIn(1, [&controller] {
                        controller.serviceInterrupts([] {});
                    });
                });
        }
    }

    struct Board
    {
        Board(CpuId id, VmFixture &fixture)
            : cache(cache::CacheConfig{pageBytes, 2, 16, true}),
              monitor(id, memBytes, pageBytes),
              controller(id, fixture.events, cache, monitor,
                         fixture.bus, fixture.translator)
        {
            fixture.bus.attachWatcher(id, monitor);
        }

        cache::Cache cache;
        monitor::BusMonitor monitor;
        proto::CacheController controller;
    };

    proto::CacheController &ctl(std::size_t i)
    {
        return boards[i]->controller;
    }

    std::uint32_t
    doRead(std::size_t cpu, Asid asid, Addr va, bool sup = false)
    {
        std::uint32_t value = 0;
        bool done = false;
        ctl(cpu).readWord(asid, va, sup, [&](std::uint32_t v) {
            value = v;
            done = true;
        });
        events.run();
        EXPECT_TRUE(done);
        return value;
    }

    void
    doWrite(std::size_t cpu, Asid asid, Addr va, std::uint32_t value,
            bool sup = false)
    {
        bool done = false;
        ctl(cpu).writeWord(asid, va, value, sup, [&] { done = true; });
        events.run();
        EXPECT_TRUE(done);
    }

    void
    doService(std::size_t cpu)
    {
        bool done = false;
        ctl(cpu).serviceInterrupts([&] { done = true; });
        events.run();
        EXPECT_TRUE(done);
    }

    EventQueue events;
    mem::PhysMem memory;
    mem::VmeBus bus;
    VmTranslator translator;
    VmSystem vm;
    std::vector<std::unique_ptr<Board>> boards;
};

// ------------------------------------------------------------- codec

TEST(Pte, CodecRoundTrip)
{
    const Pte pte = Pte::make(0x1234, true, false, true);
    EXPECT_TRUE(pte.valid());
    EXPECT_EQ(pte.frame(), 0x1234u);
    EXPECT_TRUE(pte.userReadable());
    EXPECT_FALSE(pte.userWritable());
    EXPECT_TRUE(pte.supWritable());
    EXPECT_FALSE(pte.referenced());
    EXPECT_FALSE(pte.modified());

    Pte copy = pte;
    copy.setReferenced();
    copy.setModified();
    EXPECT_TRUE(copy.referenced());
    EXPECT_TRUE(copy.modified());
    EXPECT_EQ(copy.frame(), pte.frame());
    copy.clearReferenced();
    EXPECT_FALSE(copy.referenced());
}

TEST(Pte, SlotProtMapping)
{
    const Pte pte = Pte::make(1, true, true, false);
    const auto prot = pte.slotProt();
    EXPECT_TRUE(prot & cache::FlagUserReadable);
    EXPECT_TRUE(prot & cache::FlagUserWritable);
    EXPECT_FALSE(prot & cache::FlagSupWritable);
}

TEST(Pte, IndexHelpers)
{
    EXPECT_EQ(vpnOf(0x12345678), 0x12345678u / 4096);
    EXPECT_EQ(dirIndexOf(1024), 1u);
    EXPECT_EQ(pteIndexOf(1025), 1u);
}

// --------------------------------------------------------- allocator

TEST(FrameAllocator, AllocatesDistinctAndFrees)
{
    FrameAllocator alloc(16 * vmPageBytes, 2);
    EXPECT_EQ(alloc.totalFrames(), 16u);
    EXPECT_EQ(alloc.freeFrames(), 14u);
    const auto a = alloc.alloc();
    const auto b = alloc.alloc();
    ASSERT_TRUE(a && b);
    EXPECT_NE(*a, *b);
    EXPECT_GE(*a, 2u); // reserved frames never handed out
    alloc.free(*a);
    EXPECT_EQ(alloc.freeFrames(), 13u);
    EXPECT_THROW(alloc.free(99), PanicError);
    EXPECT_THROW(FrameAllocator(vmPageBytes, 1), FatalError);
}

TEST(FrameAllocator, ExhaustionReturnsNothing)
{
    FrameAllocator alloc(4 * vmPageBytes, 2);
    EXPECT_TRUE(alloc.alloc());
    EXPECT_TRUE(alloc.alloc());
    EXPECT_FALSE(alloc.alloc());
}

// ------------------------------------------------------ backing store

TEST(BackingStore, StoreFetchDrop)
{
    BackingStore store(usec(100));
    EXPECT_EQ(store.latency(), usec(100));
    std::vector<std::uint8_t> page(vmPageBytes, 0xaa);
    store.store(3, 7, page);
    const auto *got = store.fetch(3, 7);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ((*got)[0], 0xaa);
    EXPECT_EQ(store.fetch(3, 8), nullptr);
    store.dropSpace(3);
    EXPECT_EQ(store.fetch(3, 7), nullptr);
    EXPECT_THROW(store.store(1, 1, std::vector<std::uint8_t>(10)),
                 PanicError);
    // Counter exactness: one store, one successful fetch — misses and
    // the rejected store count nothing (regression for the old
    // fetch-by-value API and for tier batching double-counts).
    EXPECT_EQ(store.stores().value(), 1u);
    EXPECT_EQ(store.fetches().value(), 1u);
    EXPECT_FALSE(store.contains(3, 7));
}

// ------------------------------------------------------ demand paging

TEST_F(VmFixture, DemandZeroFillPage)
{
    // First touch faults, pages in a zero page, and retries.
    EXPECT_EQ(doRead(0, 1, userBase + 0x100), 0u);
    EXPECT_EQ(vm.pageFaults().value(), 1u);
    EXPECT_EQ(vm.pageIns().value(), 1u);
    EXPECT_EQ(vm.residentPages().size(), 1u);
}

TEST_F(VmFixture, WriteReadBack)
{
    doWrite(0, 1, userBase + 0x200, 0xfeed);
    EXPECT_EQ(doRead(0, 1, userBase + 0x200), 0xfeedu);
    // Second page fault only for the new page.
    doWrite(0, 1, userBase + vmPageBytes, 1);
    EXPECT_EQ(vm.pageFaults().value(), 2u);
}

TEST_F(VmFixture, DistinctSpacesGetDistinctPages)
{
    doWrite(0, 1, userBase, 111);
    doWrite(1, 2, userBase, 222);
    EXPECT_EQ(doRead(0, 1, userBase), 111u);
    // cpu1 reads its own space's page.
    EXPECT_EQ(doRead(1, 2, userBase), 222u);
    EXPECT_EQ(vm.residentPages().size(), 2u);
}

TEST_F(VmFixture, NestedMissOnPageTablePage)
{
    // The PTE read during translation itself goes through the cache:
    // the first user access must produce at least two misses (the PTE
    // page and the data page).
    doRead(0, 1, userBase);
    EXPECT_GE(ctl(0).misses().value(), 2u);
}

TEST_F(VmFixture, ReferencedAndModifiedBitsMaintained)
{
    doRead(0, 1, userBase);
    const Addr pte_paddr = *vm.pteAddr(1, userBase);
    // PTE is cached (possibly dirty): read it coherently.
    const Pte after_read{
        doRead(0, kernelAsid, VmSystem::kvaOf(pte_paddr), true)};
    EXPECT_TRUE(after_read.valid());
    EXPECT_TRUE(after_read.referenced());
    EXPECT_FALSE(after_read.modified());

    doWrite(0, 1, userBase, 5);
    const Pte after_write{
        doRead(0, kernelAsid, VmSystem::kvaOf(pte_paddr), true)};
    EXPECT_TRUE(after_write.modified());
}

TEST_F(VmFixture, KernelWindowIsLinear)
{
    memory.writeWord(0x3000, 0x77);
    EXPECT_EQ(doRead(0, kernelAsid, VmSystem::kvaOf(0x3000), true),
              0x77u);
    EXPECT_EQ(vm.paddrOfKva(kernelBase + 0x1234), 0x1234u);
    EXPECT_TRUE(vm.isKernelAddr(kernelBase));
    EXPECT_FALSE(vm.isKernelAddr(kernelBase + memBytes));
    EXPECT_THROW(vm.paddrOfKva(0), PanicError);
}

TEST_F(VmFixture, DeviceRegionFaultIsFatal)
{
    EXPECT_THROW(doRead(0, 1, 0x1000), FatalError);
}

// -------------------------------------------------- pmap / Sec 3.4

TEST_F(VmFixture, ExplicitMapAndUnmap)
{
    const auto frame = vm.allocator().alloc();
    ASSERT_TRUE(frame);
    bool done = false;
    vm.mapPage(ctl(0), 1, userBase, *frame, true, true, true,
               [&] { done = true; });
    events.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(vm.mapOps().value(), 1u);

    doWrite(0, 1, userBase, 99);
    EXPECT_EQ(doRead(0, 1, userBase), 99u);

    std::optional<std::uint32_t> old;
    done = false;
    vm.unmapPage(ctl(0), 1, userBase, [&](auto f) {
        old = f;
        done = true;
    });
    events.run();
    ASSERT_TRUE(done);
    ASSERT_TRUE(old.has_value());
    EXPECT_EQ(*old, *frame);

    // The unmap flushed the dirty cache copy back to memory.
    EXPECT_EQ(memory.readWord(static_cast<Addr>(*frame) * vmPageBytes),
              99u);
    // And no cache still holds the frame.
    EXPECT_EQ(ctl(0).frameInfo(static_cast<Addr>(*frame) *
                               vmPageBytes),
              nullptr);
}

TEST_F(VmFixture, RemapFlushesRemoteCaches)
{
    doWrite(0, 1, userBase, 42);
    const Addr pte_paddr = *vm.pteAddr(1, userBase);
    const Pte pte{doRead(0, kernelAsid, VmSystem::kvaOf(pte_paddr),
                         true)};
    const std::uint32_t old_frame = pte.frame();

    // cpu1 (same space, second processor) reads the page too.
    EXPECT_EQ(doRead(1, 1, userBase), 42u);

    // Remap the vaddr onto a fresh frame via cpu0; cpu1's cached copy
    // must be flushed by the assert-ownership storm.
    const auto new_frame = vm.allocator().alloc();
    ASSERT_TRUE(new_frame);
    memory.zeroInit(static_cast<Addr>(*new_frame) * vmPageBytes,
                    vmPageBytes);
    bool done = false;
    vm.mapPage(ctl(0), 1, userBase, *new_frame, true, true, true,
               [&] { done = true; });
    events.run();
    ASSERT_TRUE(done);
    doService(1);

    const Addr old_pa = static_cast<Addr>(old_frame) * vmPageBytes;
    EXPECT_EQ(ctl(1).frameInfo(old_pa), nullptr);
    // Reads now observe the new (zero) frame.
    EXPECT_EQ(doRead(1, 1, userBase), 0u);
    // The dirty data of the old frame reached memory before the remap.
    EXPECT_EQ(memory.readWord(old_pa), 42u);
}

// ----------------------------------------------------------- pageout

TEST_F(VmFixture, PageOutOneEvictsUnreferenced)
{
    doWrite(0, 1, userBase, 0xbeef);
    ASSERT_EQ(vm.residentPages().size(), 1u);

    // First attempt: the page is referenced, so the clock clears the
    // bit and does not evict; second attempt evicts.
    bool result = true;
    bool done = false;
    vm.pageOutOne(ctl(0), [&](bool evicted) {
        result = evicted;
        done = true;
    });
    events.run();
    ASSERT_TRUE(done);
    // (Either outcome is acceptable on the first call depending on
    // reference-bit state; drive until the page is gone.)
    int guard = 0;
    while (!vm.residentPages().empty() && guard++ < 4) {
        done = false;
        vm.pageOutOne(ctl(0), [&](bool) { done = true; });
        events.run();
        ASSERT_TRUE(done);
    }
    EXPECT_TRUE(vm.residentPages().empty());
    EXPECT_EQ(vm.pageOuts().value(), 1u);
    EXPECT_EQ(vm.backingStore().pagesHeld(), 1u);
}

TEST_F(VmFixture, DataSurvivesEvictionAndReload)
{
    doWrite(0, 1, userBase + 0x10, 0xabcd);
    // Evict (clock needs up to two passes for the referenced bit).
    int guard = 0;
    while (!vm.residentPages().empty() && guard++ < 4) {
        bool done = false;
        vm.pageOutOne(ctl(0), [&](bool) { done = true; });
        events.run();
        ASSERT_TRUE(done);
    }
    ASSERT_TRUE(vm.residentPages().empty());

    // Touching the page again faults it back in with its contents.
    EXPECT_EQ(doRead(0, 1, userBase + 0x10), 0xabcdu);
    EXPECT_EQ(vm.pageIns().value(), 2u);
    EXPECT_EQ(vm.backingStore().fetches().value(), 1u);
}

TEST_F(VmFixture, MemoryPressureTriggersPageout)
{
    // Touch more pages than physical memory can hold; the fault path
    // must page out old pages and every page must keep its contents.
    const std::uint32_t frames = vm.allocator().freeFrames();
    // Leave room for page-table pages; write well beyond capacity.
    const std::uint32_t pages = frames + 8;
    for (std::uint32_t i = 0; i < pages; ++i)
        doWrite(0, 1, userBase + static_cast<Addr>(i) * vmPageBytes,
                i + 1);
    EXPECT_GT(vm.pageOuts().value(), 0u);

    // Read everything back (faulting old pages in again).
    for (std::uint32_t i = 0; i < pages; ++i) {
        ASSERT_EQ(doRead(0, 1,
                         userBase + static_cast<Addr>(i) * vmPageBytes),
                  i + 1)
            << "page " << i;
    }
}

TEST_F(VmFixture, PageOutUntilTargetReachesTarget)
{
    for (std::uint32_t i = 0; i < 12; ++i)
        doWrite(0, 1, userBase + static_cast<Addr>(i) * vmPageBytes, i);
    // Artificially lower free count by allocating everything.
    std::vector<std::uint32_t> grabbed;
    while (auto f = vm.allocator().alloc())
        grabbed.push_back(*f);
    bool done = false;
    vm.pageOutUntilTarget(ctl(0), [&] { done = true; });
    events.run();
    ASSERT_TRUE(done);
    EXPECT_GE(vm.allocator().freeFrames() + 0u, 1u);
    for (const auto f : grabbed)
        vm.allocator().free(f);
}

TEST_F(VmFixture, PrivateHintPropagatesToFills)
{
    doWrite(0, 1, userBase, 1); // page in
    bool done = false;
    vm.setPrivateHint(ctl(0), 1, userBase, [&] { done = true; });
    events.run();
    ASSERT_TRUE(done);

    // Evict the page's cache frames so the next read misses, then
    // confirm the read fill is exclusive.
    const Addr pte_paddr = *vm.pteAddr(1, userBase);
    const Pte pte{doRead(0, kernelAsid, VmSystem::kvaOf(pte_paddr),
                         true)};
    ASSERT_TRUE(pte.privateHint());
    const Addr pa = static_cast<Addr>(pte.frame()) * vmPageBytes;
    bool released = false;
    ctl(0).assertOwnership(pa, [&] {
        ctl(0).flushFrame(pa, [&] {
            ctl(0).releaseProtection(pa, [&] { released = true; });
        });
    });
    events.run();
    ASSERT_TRUE(released);

    const auto hinted_before = ctl(0).hintedPrivateFills().value();
    EXPECT_EQ(doRead(0, 1, userBase), 1u);
    EXPECT_EQ(ctl(0).hintedPrivateFills().value(), hinted_before + 1);
    const auto *info = ctl(0).frameInfo(pa);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->state, proto::FrameState::Private);
}

TEST_F(VmFixture, DestroySpaceReleasesEverything)
{
    // Populate two spaces; destroy one; the other is untouched.
    for (std::uint32_t i = 0; i < 4; ++i)
        doWrite(0, 1, userBase + static_cast<Addr>(i) * vmPageBytes,
                i + 1);
    doWrite(1, 2, userBase, 77);
    const auto free_before = vm.allocator().freeFrames();

    bool done = false;
    vm.destroySpace(ctl(0), 1, [&] { done = true; });
    events.run();
    ASSERT_TRUE(done);

    // 4 data frames + 1 page-table frame come back.
    EXPECT_EQ(vm.allocator().freeFrames(), free_before + 5);
    for (const auto &page : vm.residentPages())
        EXPECT_NE(page.asid, 1);
    // The other space still works.
    EXPECT_EQ(doRead(1, 2, userBase), 77u);
    // A touch in the destroyed space faults in a fresh zero page.
    EXPECT_EQ(doRead(0, 1, userBase), 0u);
}

TEST_F(VmFixture, DestroySpaceFlushesDirtyPagesToNowhere)
{
    doWrite(0, 1, userBase, 0x1234);
    bool done = false;
    vm.destroySpace(ctl(0), 1, [&] { done = true; });
    events.run();
    ASSERT_TRUE(done);
    // The backing store holds nothing for the destroyed space.
    EXPECT_EQ(vm.backingStore().fetch(1, vpnOf(userBase)), nullptr);
    // No cache still owns the old frame (two-state invariant).
    EXPECT_EQ(ctl(0).frameInfo(0x0), nullptr);
}

} // namespace
} // namespace vmp::vm
