/**
 * @file
 * Tests for the machine-readable benchmark artifact layer and the
 * parallel Figure-4 sweep driver: bitwise determinism of the parallel
 * sweep against the serial reference, stability of the deterministic
 * artifact sections across same-seed builds, schema validation of the
 * artifact document, and (when the bench binaries are available) an
 * end-to-end check that a real bench run writes a valid artifact.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "core/sweep.hh"
#include "sim/json.hh"
#include "trace/workloads.hh"

namespace vmp
{
namespace
{

// ------------------------------------------------------- sweep driver

void
expectSameResults(const std::vector<core::FastSimResult> &a,
                  const std::vector<core::FastSimResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].refs, b[i].refs) << "cell " << i;
        EXPECT_EQ(a[i].misses, b[i].misses) << "cell " << i;
        EXPECT_EQ(a[i].supervisorRefs, b[i].supervisorRefs)
            << "cell " << i;
        EXPECT_EQ(a[i].supervisorMisses, b[i].supervisorMisses)
            << "cell " << i;
    }
}

TEST(Sweep, CellGridCoversEveryWorkload)
{
    const auto names = trace::workloadNames();
    const auto cells =
        core::fig4Cells({KiB(64), KiB(128)}, {128, 256}, 4);
    // Grid is {size x page} points, one cell per workload each.
    EXPECT_EQ(cells.size(), 2 * 2 * names.size());
    // Workload-major within each point, so a merge by group size
    // reproduces the per-point averages.
    for (std::size_t i = 0; i < names.size(); ++i)
        EXPECT_NE(cells[i].label.find(names[i]), std::string::npos)
            << cells[i].label;
}

TEST(Sweep, ParallelBitwiseIdenticalToSerial)
{
    // All four atum workloads across a small {size x page} grid; the
    // parallel driver must produce bit-identical counts to the serial
    // reference for any thread count (results land in pre-sized slots
    // indexed by cell, so scheduling order cannot matter).
    const auto cells =
        core::fig4Cells({KiB(64), KiB(128)}, {128, 256}, 4);
    const auto serial = core::runSweepSerial(cells);
    ASSERT_EQ(serial.size(), cells.size());

    for (const unsigned threads : {2u, 4u}) {
        core::SweepOptions options;
        options.threads = threads;
        const auto parallel = core::runSweep(cells, options);
        expectSameResults(serial, parallel);
    }
}

TEST(Sweep, MergeAveragesWorkloadGroups)
{
    const auto cells = core::fig4Cells({KiB(64)}, {256}, 4);
    const auto results = core::runSweepSerial(cells);
    const auto merged =
        core::mergeWorkloadGroups(results, cells.size());
    ASSERT_EQ(merged.size(), 1u);
    std::uint64_t refs = 0, misses = 0;
    for (const auto &r : results) {
        refs += r.refs;
        misses += r.misses;
    }
    EXPECT_EQ(merged.front().refs, refs);
    EXPECT_EQ(merged.front().misses, misses);
}

TEST(Sweep, RepeatedRunsAreDeterministic)
{
    // Two same-seed sweeps (fresh generators each time) are identical.
    const auto cells = core::fig4Cells({KiB(64)}, {256, 512}, 4);
    core::SweepOptions options;
    options.threads = 4;
    const auto first = core::runSweep(cells, options);
    const auto second = core::runSweep(cells, options);
    expectSameResults(first, second);
}

// -------------------------------------------------- error propagation

TEST(Sweep, ThrowingCellSurfacesOnCallingThread)
{
    // A cell whose workload config is invalid throws FatalError from
    // its generator. The sweep must deliver that exception to the
    // caller — an exception escaping a worker thread would
    // std::terminate the whole process instead.
    auto cells = core::fig4Cells({KiB(64)}, {256}, 4);
    ASSERT_GE(cells.size(), 3u);
    cells[2].workload.totalRefs = 0; // invalid: generator throws
    for (const unsigned threads : {1u, 4u}) {
        core::SweepOptions options;
        options.threads = threads;
        EXPECT_THROW(core::runSweep(cells, options), FatalError)
            << "threads=" << threads;
    }
}

TEST(Sweep, OtherCellsSurviveAFailingCell)
{
    // parallelMapOutcomes isolates the failure: every healthy cell
    // still produces its (deterministic) result, only the bad cell
    // carries an exception.
    auto cells = core::fig4Cells({KiB(64)}, {256}, 4);
    const auto reference = core::runSweepSerial(cells);
    cells[1].workload.totalRefs = 0;

    core::SweepOptions options;
    options.threads = 4;
    const auto outcomes = core::parallelMapOutcomes(
        cells.size(),
        [&](std::size_t i) {
            trace::SyntheticGen gen(cells[i].workload);
            core::FastCacheSim sim(cells[i].config);
            return sim.run(gen);
        },
        options);

    ASSERT_EQ(outcomes.size(), cells.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (i == 1) {
            EXPECT_TRUE(outcomes[i].error);
            continue;
        }
        ASSERT_FALSE(outcomes[i].error) << "cell " << i;
        EXPECT_EQ(outcomes[i].value.refs, reference[i].refs)
            << "cell " << i;
        EXPECT_EQ(outcomes[i].value.misses, reference[i].misses)
            << "cell " << i;
    }
}

TEST(Sweep, LowestIndexErrorWinsDeterministically)
{
    // With several failing cells, parallelMap rethrows the lowest
    // index regardless of scheduling — the same error a serial loop
    // would have hit first.
    const std::size_t count = 16;
    core::SweepOptions options;
    options.threads = 4;
    for (int round = 0; round < 4; ++round) {
        try {
            core::parallelMap(
                count,
                [](std::size_t i) -> int {
                    if (i == 3 || i == 11)
                        throw std::runtime_error(
                            "cell " + std::to_string(i));
                    return static_cast<int>(i);
                },
                options);
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "cell 3");
        }
    }
}

// ---------------------------------------------------------- artifacts

bench::Artifact
makeArtifact()
{
    bench::BenchOptions opts;
    opts.jsonOut = "unused.json";
    bench::Artifact artifact("fig4", opts);
    Json metrics = Json::object();
    metrics["miss_ratio"] = Json(0.0024);
    metrics["refs"] = Json(std::uint64_t{400000});
    artifact.add("128K/256B", bench::cacheConfigJson(KiB(128), 256, 4),
                 std::move(metrics));
    artifact.note("unit-test artifact");
    return artifact;
}

/** Validate the fixed artifact schema (version 1.1). */
void
expectValidArtifact(const Json &doc)
{
    EXPECT_EQ(doc.get("schema").asString(), bench::kArtifactSchema);
    EXPECT_DOUBLE_EQ(doc.get("schema_version").asNumber(),
                     bench::kArtifactSchemaVersion);
    EXPECT_TRUE(doc.get("bench").isString());
    EXPECT_TRUE(doc.get("notes").isArray());
    EXPECT_TRUE(doc.get("host").isObject());
    EXPECT_TRUE(doc.get("host").get("wall_clock_s").isNumber());

    // v1.1 provenance section.
    const Json &meta = doc.get("meta");
    ASSERT_TRUE(meta.isObject());
    EXPECT_TRUE(meta.get("git_sha").isString());
    EXPECT_FALSE(meta.get("git_sha").asString().empty());
    EXPECT_TRUE(meta.get("compiler").isString());
    EXPECT_FALSE(meta.get("compiler").asString().empty());
    EXPECT_GE(meta.get("threads").asUint(), 1u);

    const Json &results = doc.get("results");
    ASSERT_TRUE(results.isArray());
    for (const auto &row : results.items()) {
        EXPECT_TRUE(row.get("label").isString());
        ASSERT_TRUE(row.get("config").isObject());
        ASSERT_TRUE(row.get("metrics").isObject());
        for (const auto &member : row.get("config").members())
            EXPECT_TRUE(member.second.isNumber() ||
                        member.second.isString() ||
                        member.second.isBool())
                << row.get("label").asString() << "." << member.first;
        for (const auto &member : row.get("metrics").members())
            EXPECT_TRUE(member.second.isNumber() ||
                        member.second.isObject())
                << row.get("label").asString() << "." << member.first;
    }
}

TEST(Artifact, DocumentMatchesSchema)
{
    const Json doc = makeArtifact().toJson();
    expectValidArtifact(doc);
    EXPECT_EQ(doc.get("bench").asString(), "fig4");
    ASSERT_EQ(doc.get("results").size(), 1u);
    const Json &row = doc.get("results").at(0);
    EXPECT_EQ(row.get("label").asString(), "128K/256B");
    EXPECT_EQ(row.get("config").get("cache_bytes").asUint(),
              KiB(128));
    EXPECT_DOUBLE_EQ(row.get("metrics").get("miss_ratio").asNumber(),
                     0.0024);
}

TEST(Artifact, DeterministicSectionsAreByteIdentical)
{
    // Two artifacts built from the same inputs agree on every section
    // except the volatile "host" block (wall clock), which is why the
    // schema quarantines volatility there.
    const Json a = makeArtifact().toJson();
    const Json b = makeArtifact().toJson();
    EXPECT_EQ(a.get("schema"), b.get("schema"));
    EXPECT_EQ(a.get("bench"), b.get("bench"));
    EXPECT_EQ(a.get("results"), b.get("results"));
    EXPECT_EQ(a.get("notes"), b.get("notes"));
    EXPECT_EQ(a.get("results").dump(), b.get("results").dump());
}

TEST(Artifact, RoundTripsThroughParser)
{
    const Json doc = makeArtifact().toJson();
    const Json parsed = Json::parse(doc.dump());
    EXPECT_EQ(parsed, doc);
    expectValidArtifact(parsed);
}

// ------------------------------------------- end-to-end bench binary

#ifdef VMP_BENCH_DIR

Json
runBenchToArtifact(const std::string &bench,
                   const std::string &out_path)
{
    const std::string binary = std::string(VMP_BENCH_DIR) + "/" + bench;
    const std::string cmd = binary + " --json-out " + out_path +
        " > /dev/null 2>&1";
    if (std::system(cmd.c_str()) != 0)
        return Json();
    std::ifstream is(out_path);
    std::stringstream ss;
    ss << is.rdbuf();
    return Json::parse(ss.str());
}

TEST(Artifact, BenchBinaryWritesValidArtifact)
{
    const std::string binary =
        std::string(VMP_BENCH_DIR) + "/bench_table1";
    if (!std::ifstream(binary).good())
        GTEST_SKIP() << "bench binaries not built";

    const std::string path_a = "test_artifact_table1_a.json";
    const std::string path_b = "test_artifact_table1_b.json";
    const Json a = runBenchToArtifact("bench_table1", path_a);
    const Json b = runBenchToArtifact("bench_table1", path_b);
    ASSERT_TRUE(a.isObject()) << "bench_table1 run failed";
    ASSERT_TRUE(b.isObject()) << "bench_table1 rerun failed";
    expectValidArtifact(a);
    EXPECT_EQ(a.get("bench").asString(), "table1");
    EXPECT_GT(a.get("results").size(), 0u);

    // Same-seed reruns agree on every deterministic section.
    EXPECT_EQ(a.get("results").dump(), b.get("results").dump());
    EXPECT_EQ(a.get("notes").dump(), b.get("notes").dump());

    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

#endif // VMP_BENCH_DIR

} // namespace
} // namespace vmp
