/**
 * @file
 * Memory-tier tests: the bounded FrameArena (occupancy, FIFO reclaim,
 * drain-batch bookkeeping, re-dirty epochs), the backend cost models,
 * mirror-mode timing equivalence with the legacy flat store, the async
 * accept/drain pipeline (fast-path page-outs, exhaustion stalls,
 * double page-out of one page, dropSpace racing in-flight drains), the
 * stream prefetcher (detection, hits, cancellation on context switch),
 * the budget controller (sqrt-pressure grants, deterministic rounding,
 * shrink-below-occupancy, epoch scheduling), the NVRAM-shadow frame
 * checkpointer, and pages_lost == 0 recovery on the flat and
 * hierarchical machines with checkpoints enabled.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "backing/backend.hh"
#include "backing/budget.hh"
#include "backing/checkpoint.hh"
#include "backing/frame_arena.hh"
#include "backing/memory_tier.hh"
#include "backing/page_store.hh"
#include "core/hier_system.hh"
#include "core/system.hh"
#include "mem/bus_types.hh"
#include "mem/phys_mem.hh"
#include "mem/vme_bus.hh"
#include "sim/event.hh"
#include "trace/synthetic.hh"
#include "trace/workloads.hh"

namespace vmp::backing
{
namespace
{

constexpr std::uint32_t kPage = 256;

std::vector<std::uint8_t>
page(std::uint8_t fill, std::uint32_t bytes = kPage)
{
    return std::vector<std::uint8_t>(bytes, fill);
}

// ------------------------------------------------------------- arena

TEST(FrameArena, InsertLookupReleaseOccupancy)
{
    FrameArena arena(4, kPage);
    EXPECT_EQ(arena.capacity(), 4u);
    EXPECT_EQ(arena.used(), 0u);
    EXPECT_TRUE(arena.hasFree());

    const auto s0 = arena.insert(1, 10, page(0xAA), true);
    const auto s1 = arena.insert(1, 11, page(0xBB), false);
    EXPECT_EQ(arena.used(), 2u);
    EXPECT_EQ(arena.dirtyCount(), 1u);
    EXPECT_EQ(arena.cleanCount(), 1u);
    EXPECT_EQ(arena.peakUsed(), 2u);

    ASSERT_TRUE(arena.lookup(1, 10).has_value());
    EXPECT_EQ(*arena.lookup(1, 10), s0);
    EXPECT_FALSE(arena.lookup(1, 12).has_value());
    EXPECT_FALSE(arena.lookup(2, 10).has_value());

    EXPECT_EQ(arena.frame(s0).data, page(0xAA));
    EXPECT_TRUE(arena.frame(s0).dirty);
    EXPECT_FALSE(arena.frame(s1).dirty);

    arena.release(s0);
    EXPECT_EQ(arena.used(), 1u);
    EXPECT_EQ(arena.dirtyCount(), 0u);
    EXPECT_FALSE(arena.lookup(1, 10).has_value());
    // Peak is a high-water mark; release must not lower it.
    EXPECT_EQ(arena.peakUsed(), 2u);
}

TEST(FrameArena, ReclaimOldestCleanIsFifo)
{
    FrameArena arena(4, kPage);
    const auto s0 = arena.insert(1, 0, page(0), false);
    const auto s1 = arena.insert(1, 1, page(1), false);
    arena.insert(1, 2, page(2), true); // dirty: not reclaimable

    const auto first = arena.reclaimOldestClean();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(*first, s0);
    const auto second = arena.reclaimOldestClean();
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(*second, s1);
    // Only the dirty frame is left: nothing clean to reclaim.
    EXPECT_FALSE(arena.reclaimOldestClean().has_value());
    EXPECT_EQ(arena.used(), 1u);
}

TEST(FrameArena, TakeDirtyBatchLeavesFramesDirtyUntilCleaned)
{
    FrameArena arena(8, kPage);
    for (std::uint64_t v = 0; v < 5; ++v)
        arena.insert(1, v, page(static_cast<std::uint8_t>(v)), true);
    EXPECT_EQ(arena.drainQueueDepth(), 5u);

    const auto batch = arena.takeDirtyBatch(3);
    ASSERT_EQ(batch.size(), 3u);
    // Oldest first, and the popped frames stay dirty (their data is
    // still the only copy) — they just left the drain queue.
    EXPECT_EQ(arena.frame(batch[0]).vpn, 0u);
    EXPECT_EQ(arena.frame(batch[2]).vpn, 2u);
    EXPECT_TRUE(arena.frame(batch[0]).dirty);
    EXPECT_EQ(arena.dirtyCount(), 5u);
    EXPECT_EQ(arena.drainQueueDepth(), 2u);

    arena.markClean(batch[0]);
    EXPECT_EQ(arena.dirtyCount(), 4u);
    EXPECT_EQ(arena.cleanCount(), 1u);
}

TEST(FrameArena, OverwriteBumpsDirtyEpochAndRequeues)
{
    FrameArena arena(4, kPage);
    const auto slot = arena.insert(1, 7, page(0x11), true);
    const auto epoch0 = arena.frame(slot).dirtyEpoch;

    // A drain batch takes the frame off the queue...
    const auto batch = arena.takeDirtyBatch(8);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(arena.drainQueueDepth(), 0u);

    // ...and a newer page-out lands while it is in flight.
    arena.overwrite(slot, page(0x22));
    EXPECT_GT(arena.frame(slot).dirtyEpoch, epoch0);
    EXPECT_TRUE(arena.frame(slot).dirty);
    // Re-queued: the next batch must pick up the fresh image.
    EXPECT_EQ(arena.drainQueueDepth(), 1u);
    EXPECT_EQ(arena.frame(slot).data, page(0x22));
}

// ----------------------------------------------------- backend model

TEST(BackendModel, PerKindTransferCosts)
{
    const Tick disk = usec(500);
    const auto ram =
        BackendModel::forKind(BackendKind::LocalRam, disk);
    const auto remote =
        BackendModel::forKind(BackendKind::RemoteNode, disk);
    const auto flat = BackendModel::forKind(BackendKind::Disk, disk);

    EXPECT_EQ(ram.transferNs(4096), usec(1) + 1024);
    EXPECT_EQ(ram.streamNs(4096), 1024u);
    EXPECT_EQ(remote.transferNs(4096), usec(3) + usec(5) + 4096);
    EXPECT_EQ(remote.streamNs(4096), 4096u);
    // The flat disk folds bandwidth into the legacy fixed stamp.
    EXPECT_EQ(flat.transferNs(4096), disk);
    EXPECT_EQ(flat.streamNs(4096), 0u);
}

// ----------------------------------------------------- mirror timing

TierConfig
asyncConfig(std::uint32_t frames = 8, std::uint32_t high_water = 100)
{
    TierConfig cfg;
    cfg.mode = TierMode::Async;
    cfg.pageBytes = kPage;
    cfg.arenaFrames = frames;
    // Default to manual drains (drainNow) so tests control timing.
    cfg.dirtyHighWater = high_water;
    return cfg;
}

TEST(MemoryTier, MirrorModeKeepsFlatStoreTiming)
{
    EventQueue events;
    TierConfig cfg;
    cfg.pageBytes = kPage;
    cfg.diskLatencyNs = usec(500);
    MemoryTier tier(events, cfg);
    EXPECT_EQ(tier.arena(), nullptr);

    Tick store_done = 0;
    tier.storePage(3, 9, 0, page(0x5A), [&] {
        store_done = events.now();
    });
    events.run();
    // One flat-latency stamp, image durable immediately after.
    EXPECT_EQ(store_done, usec(500));
    EXPECT_EQ(tier.images().pagesHeld(), 1u);

    Tick fetch_done = 0;
    bool present = false;
    tier.fetchPage(3, 9, 0,
                   [&](const std::vector<std::uint8_t> *image) {
                       present = image != nullptr &&
                           *image == page(0x5A);
                       fetch_done = events.now();
                   });
    events.run();
    EXPECT_TRUE(present);
    EXPECT_EQ(fetch_done, usec(500) + usec(500));
    EXPECT_EQ(tier.images().stores().value(), 1u);
    EXPECT_EQ(tier.images().fetches().value(), 1u);
}

// ------------------------------------------------------- async store

TEST(MemoryTier, AsyncPageOutCompletesAtAcceptSpeed)
{
    EventQueue events;
    MemoryTier tier(events, asyncConfig());

    Tick store_done = 0;
    tier.storePage(3, 9, 0, page(0x77), [&] {
        store_done = events.now();
    });
    events.run();
    // The requester unblocked at DMA-accept speed, two orders of
    // magnitude before the disk write-back would have.
    EXPECT_EQ(store_done, usec(2));
    EXPECT_EQ(tier.storesAccepted().value(), 1u);
    EXPECT_EQ(tier.storeStalls().value(), 0u);
    // Not durable yet — the image only reaches the plane on drain.
    EXPECT_EQ(tier.images().pagesHeld(), 0u);

    tier.drainNow();
    events.run();
    EXPECT_EQ(tier.pagesDrained().value(), 1u);
    EXPECT_EQ(tier.images().pagesHeld(), 1u);
    EXPECT_FALSE(tier.draining());

    // The arena still caches the (now clean) page: a fetch is an
    // arena hit served at node speed, not a backend access.
    Tick fetch_done = 0;
    bool ok = false;
    tier.fetchPage(3, 9, 0,
                   [&](const std::vector<std::uint8_t> *image) {
                       ok = image != nullptr && *image == page(0x77);
                       fetch_done = events.now();
                   });
    const Tick t0 = events.now();
    events.run();
    EXPECT_TRUE(ok);
    EXPECT_EQ(fetch_done - t0, usec(2));
    EXPECT_EQ(tier.arenaHits().value(), 1u);
    EXPECT_EQ(tier.backendFetches().value(), 0u);
}

TEST(MemoryTier, DrainBatchIsPipelined)
{
    EventQueue events;
    auto cfg = asyncConfig(16);
    cfg.reclaimBatch = 8;
    MemoryTier tier(events, cfg);

    for (std::uint64_t v = 0; v < 8; ++v)
        tier.storePage(1, v, 0,
                       page(static_cast<std::uint8_t>(v)), [] {});
    events.run();
    ASSERT_EQ(tier.storesAccepted().value(), 8u);

    const Tick t0 = events.now();
    tier.drainNow();
    events.run();
    // Disk backend: first page pays the full flat stamp, the seven
    // follow-ups stream behind it at the pipeline interval — not
    // 8 x 500us serially.
    EXPECT_EQ(events.now() - t0, usec(500) + 7 * usec(20));
    EXPECT_EQ(tier.drainBatches().value(), 1u);
    EXPECT_EQ(tier.pagesDrained().value(), 8u);
    EXPECT_EQ(tier.images().pagesHeld(), 8u);
}

TEST(MemoryTier, ExhaustedArenaParksStoresUntilDrainFrees)
{
    EventQueue events;
    auto cfg = asyncConfig(4);
    cfg.reclaimBatch = 4;
    MemoryTier tier(events, cfg);

    std::uint64_t completed = 0;
    for (std::uint64_t v = 0; v < 6; ++v)
        tier.storePage(1, v, 0,
                       page(static_cast<std::uint8_t>(v)),
                       [&] { ++completed; });
    events.run();

    // Four filled the arena; two parked until the stall-triggered
    // drain freed capacity; everything completed in the end.
    EXPECT_EQ(completed, 6u);
    EXPECT_EQ(tier.storesAccepted().value(), 6u);
    EXPECT_EQ(tier.storeStalls().value(), 2u);
    EXPECT_GT(tier.storeStallNs(), 0.0);
    // The parked pages landed by evicting drained (clean) frames.
    EXPECT_EQ(tier.cleanEvictions().value(), 2u);
    // Follow-up batches picked up the late arrivals too.
    EXPECT_EQ(tier.pagesDrained().value(), 6u);
    EXPECT_EQ(tier.images().pagesHeld(), 6u);
}

TEST(MemoryTier, DoublePageOutOfOnePageKeepsNewestImage)
{
    EventQueue events;
    MemoryTier tier(events, asyncConfig());

    tier.storePage(5, 42, 0, page(0x01), [] {});
    events.run();
    // First image is mid-drain when the page is evicted again.
    tier.drainNow();
    ASSERT_TRUE(tier.draining());
    tier.storePage(5, 42, 0, page(0x02), [] {});
    events.run();

    // Both accepts hit the same arena slot; the in-flight drain wrote
    // the old image but must not have marked the re-dirtied frame
    // clean — the follow-up batch drained the newer image over it.
    EXPECT_EQ(tier.storesAccepted().value(), 2u);
    EXPECT_EQ(tier.pagesDrained().value(), 2u);
    EXPECT_EQ(tier.images().pagesHeld(), 1u);
    const auto *image = tier.images().fetch(5, 42);
    ASSERT_NE(image, nullptr);
    EXPECT_EQ(*image, page(0x02));

    const auto slot = tier.arena()->lookup(5, 42);
    ASSERT_TRUE(slot.has_value());
    EXPECT_FALSE(tier.arena()->frame(*slot).dirty);
}

TEST(MemoryTier, DropSpaceCancelsInFlightDrains)
{
    EventQueue events;
    MemoryTier tier(events, asyncConfig());

    tier.storePage(9, 0, 0, page(0xAA), [] {});
    tier.storePage(9, 1, 0, page(0xBB), [] {});
    tier.storePage(2, 0, 0, page(0xCC), [] {});
    events.run();
    tier.drainNow();
    ASSERT_TRUE(tier.draining());
    // The space dies while its write-backs are on the wire.
    tier.dropSpace(9);
    events.run();

    // The stale drains completed without resurrecting dropped images;
    // the survivor space drained normally.
    EXPECT_FALSE(tier.images().contains(9, 0));
    EXPECT_FALSE(tier.images().contains(9, 1));
    EXPECT_TRUE(tier.images().contains(2, 0));
    EXPECT_EQ(tier.pagesDrained().value(), 1u);
    EXPECT_EQ(tier.arena()->used(), 1u);
    EXPECT_TRUE(tier.arena()->lookup(2, 0).has_value());
}

TEST(MemoryTier, DropSpaceUnblocksParkedStores)
{
    EventQueue events;
    auto cfg = asyncConfig(2);
    cfg.reclaimBatch = 2;
    MemoryTier tier(events, cfg);

    std::uint64_t completed = 0;
    for (std::uint64_t v = 0; v < 4; ++v)
        tier.storePage(5, v, 0,
                       page(static_cast<std::uint8_t>(v)),
                       [&] { ++completed; });
    // Drop the space between the accepts (2us) and the first drain
    // completion (500us): two stores are parked at that point.
    events.scheduleIn(usec(10), [&] { tier.dropSpace(5); },
                      "test-drop");
    events.run();

    // The parked requesters unblocked (accept-and-forget) instead of
    // waiting forever on a space that no longer exists.
    EXPECT_EQ(completed, 4u);
    EXPECT_EQ(tier.storeStalls().value(), 2u);
    EXPECT_EQ(tier.pendingStores(), 0u);
    EXPECT_EQ(tier.arena()->used(), 0u);
    EXPECT_EQ(tier.images().pagesHeld(), 0u);
}

// --------------------------------------------------------- prefetch

TierConfig
prefetchConfig()
{
    auto cfg = asyncConfig();
    cfg.prefetchDepth = 2;
    cfg.prefetchMinStreak = 2;
    return cfg;
}

TEST(MemoryTier, SequentialStreamPrefetchesAndHits)
{
    EventQueue events;
    MemoryTier tier(events, prefetchConfig());
    for (std::uint64_t v = 0; v < 6; ++v)
        tier.images().store(7, v,
                            page(static_cast<std::uint8_t>(v)));

    auto fetch = [&](std::uint64_t vpn) {
        bool ok = false;
        tier.fetchPage(7, vpn, 0,
                       [&](const std::vector<std::uint8_t> *image) {
                           ok = image != nullptr &&
                               *image ==
                                   page(static_cast<std::uint8_t>(
                                       vpn));
                       });
        events.run();
        EXPECT_TRUE(ok) << "vpn " << vpn;
    };

    fetch(0); // streak 1: no prefetch yet
    EXPECT_EQ(tier.prefetchesIssued().value(), 0u);
    fetch(1); // streak 2: vpn 2 and 3 prefetched
    EXPECT_EQ(tier.prefetchesIssued().value(), 2u);
    ASSERT_TRUE(tier.arena()->lookup(7, 2).has_value());
    EXPECT_TRUE(
        tier.arena()->frame(*tier.arena()->lookup(7, 2)).prefetched);

    fetch(2); // served by the prefetched frame
    EXPECT_EQ(tier.prefetchHits().value(), 1u);
    EXPECT_EQ(tier.backendFetches().value(), 2u);
    // The demand hit claims the frame for good.
    EXPECT_FALSE(
        tier.arena()->frame(*tier.arena()->lookup(7, 2)).prefetched);
}

TEST(MemoryTier, ContextSwitchCancelsInFlightPrefetches)
{
    EventQueue events;
    MemoryTier tier(events, prefetchConfig());
    for (std::uint64_t v = 0; v < 6; ++v)
        tier.images().store(7, v,
                            page(static_cast<std::uint8_t>(v)));

    tier.fetchPage(7, 0, 0,
                   [](const std::vector<std::uint8_t> *) {});
    events.run();
    // The second demand fetch trusts the stream and issues prefetches
    // of vpn 2 and 3 — then the CPU context-switches before those
    // transfers land: the stale installs must drop, not pollute the
    // arena.
    tier.fetchPage(7, 1, 0,
                   [](const std::vector<std::uint8_t> *) {});
    ASSERT_EQ(tier.prefetchesIssued().value(), 2u);
    tier.cancelPrefetch(7);
    events.run();

    EXPECT_EQ(tier.prefetchesCancelled().value(), 2u);
    EXPECT_FALSE(tier.arena()->lookup(7, 2).has_value());
    EXPECT_FALSE(tier.arena()->lookup(7, 3).has_value());
}

// ----------------------------------------------------------- budget

TEST(Budget, EvenSplitOnEntryAndSqrtPressureRebalance)
{
    EventQueue events;
    BudgetConfig cfg;
    cfg.totalFrames = 32;
    cfg.minGrant = 4;
    BudgetController budget(events, cfg);

    const auto a = budget.addClient("asid1");
    const auto b = budget.addClient("asid2");
    EXPECT_EQ(budget.grantOf(a), 16u);
    EXPECT_EQ(budget.grantOf(b), 16u);

    for (int i = 0; i < 100; ++i)
        budget.noteFault(a);
    budget.rebalance();

    // Floor of 4 each off the top; the 24-frame pool splits by
    // sqrt(101) : sqrt(1) with largest-remainder rounding -> 22 : 2.
    EXPECT_EQ(budget.grantOf(a), 26u);
    EXPECT_EQ(budget.grantOf(b), 6u);
    EXPECT_EQ(budget.grantOf(a) + budget.grantOf(b),
              cfg.totalFrames);
    EXPECT_EQ(budget.grantChanges().value(), 2u);

    // Pressure resets each epoch: a quiet follow-up epoch re-levels.
    budget.rebalance();
    EXPECT_EQ(budget.grantOf(a), 16u);
    EXPECT_EQ(budget.grantOf(b), 16u);
}

TEST(Budget, RebalanceIsDeterministic)
{
    auto run = [] {
        EventQueue events;
        BudgetConfig cfg;
        cfg.totalFrames = 37; // odd: exercises remainder handling
        cfg.minGrant = 2;
        BudgetController budget(events, cfg);
        for (int c = 0; c < 3; ++c)
            budget.addClient("asid" + std::to_string(c + 1));
        // Equal pressure everywhere: remainders tie, broken by id.
        for (std::uint32_t c = 0; c < 3; ++c)
            for (int i = 0; i < 9; ++i)
                budget.noteFault(c);
        budget.rebalance();
        return std::vector<std::uint32_t>{budget.grantOf(0),
                                          budget.grantOf(1),
                                          budget.grantOf(2)};
    };
    const auto first = run();
    EXPECT_EQ(first, run());
    EXPECT_EQ(first[0] + first[1] + first[2], 37u);
    // Ties broke toward lower client ids.
    EXPECT_GE(first[0], first[1]);
    EXPECT_GE(first[1], first[2]);
}

TEST(Budget, ShrinkHookFiresWhenGrantFallsBelowOccupancy)
{
    EventQueue events;
    BudgetConfig cfg;
    cfg.totalFrames = 32;
    cfg.minGrant = 4;
    BudgetController budget(events, cfg);
    const auto a = budget.addClient("hog");
    const auto b = budget.addClient("idle");

    budget.noteUse(b, 16); // occupies its full even share
    EXPECT_FALSE(budget.overGrant(b));

    std::uint32_t shrunk_client = 99;
    std::uint32_t shrunk_grant = 0;
    budget.setShrinkHook([&](std::uint32_t client,
                             std::uint32_t grant) {
        shrunk_client = client;
        shrunk_grant = grant;
    });
    for (int i = 0; i < 200; ++i)
        budget.noteFault(a);
    budget.rebalance();

    // The idle-but-fat client's grant fell below its 16 resident
    // pages: the hook tells it to shed.
    EXPECT_EQ(budget.shrinks().value(), 1u);
    EXPECT_EQ(shrunk_client, b);
    EXPECT_LT(shrunk_grant, 16u);
    EXPECT_TRUE(budget.overGrant(b));
    EXPECT_EQ(budget.usedOf(b), 16u);
}

TEST(Budget, EpochTimerRunsUntilStopped)
{
    EventQueue events;
    BudgetConfig cfg;
    cfg.totalFrames = 8;
    cfg.epochNs = usec(10);
    BudgetController budget(events, cfg);
    budget.addClient("only");

    budget.start();
    EXPECT_TRUE(budget.running());
    events.run(usec(95));
    EXPECT_EQ(budget.epochs().value(), 9u);

    budget.stop();
    events.run();
    // The already-queued tick observes running_ == false and stops
    // rescheduling: no further epochs.
    EXPECT_EQ(budget.epochs().value(), 9u);
}

// ------------------------------------------------- frame checkpoints

TEST(Checkpoint, SnapshotsOwnershipTransfersAndWriteBacks)
{
    EventQueue events;
    mem::PhysMem memory(MiB(1), kPage);
    mem::VmeBus bus(events, memory);
    PageStore shadow(0, kPage);
    FrameCheckpointer checkpointer(memory, shadow, 0xFE);
    checkpointer.install(bus);

    const Addr frame3 = 3 * kPage;
    const auto before = page(0xD1);
    memory.writeBlock(frame3, before.data(), kPage);

    auto issue = [&](mem::BusTransaction tx) {
        bool done = false;
        bus.request(tx, [&](const mem::TxResult &) { done = true; });
        events.run();
        ASSERT_TRUE(done);
    };
    auto shortTx = [](mem::TxType type, Addr paddr) {
        mem::BusTransaction tx;
        tx.type = type;
        tx.requester = 0;
        tx.paddr = paddr;
        return tx;
    };

    // Ownership handoff: memory is authoritative -> snapshot.
    issue(shortTx(mem::TxType::AssertOwnership, frame3));
    EXPECT_EQ(checkpointer.checkpoints().value(), 1u);
    const auto *image = shadow.fetch(0xFE, 3);
    ASSERT_NE(image, nullptr);
    EXPECT_EQ(*image, before);

    // The owner pushes dirty data back: the shadow refreshes.
    auto after = page(0xD2);
    auto wb = shortTx(mem::TxType::WriteBack, frame3);
    wb.bytes = kPage;
    wb.data = after.data();
    issue(wb);
    EXPECT_EQ(checkpointer.refreshes().value(), 1u);
    image = shadow.fetch(0xFE, 3);
    ASSERT_NE(image, nullptr);
    EXPECT_EQ(*image, after);

    // Plain shared reads move no ownership: no snapshot taken.
    auto rd = shortTx(mem::TxType::ReadShared, 5 * kPage);
    std::vector<std::uint8_t> sink(kPage);
    rd.bytes = kPage;
    rd.data = sink.data();
    issue(rd);
    EXPECT_FALSE(shadow.contains(0xFE, 5));
}

std::vector<std::unique_ptr<trace::SyntheticGen>>
makeSources(std::uint32_t cpus, std::uint64_t refs_per_cpu,
            std::uint64_t seed)
{
    std::vector<std::unique_ptr<trace::SyntheticGen>> gens;
    for (std::uint32_t i = 0; i < cpus; ++i) {
        auto cfg = trace::workloadConfig("atum2");
        cfg.totalRefs = refs_per_cpu;
        cfg.seed = seed * 1000 + i;
        gens.push_back(std::make_unique<trace::SyntheticGen>(cfg));
    }
    return gens;
}

TEST(Checkpoint, FlatKillWithCheckpointLosesNoPages)
{
    core::VmpConfig cfg;
    cfg.processors = 4;
    cfg.cache = cache::CacheConfig{kPage, 2, 16, true};
    cfg.memBytes = MiB(1);
    core::VmpSystem system(cfg);
    system.enableFrameCheckpoint();
    recover::RecoveryConfig rc;
    rc.detector.sweepPeriod = 64;
    auto &manager = system.enableRecovery(rc);
    system.killBoard(3, usec(300));

    auto gens = makeSources(4, 12'000, 7);
    std::vector<trace::RefSource *> raw;
    for (auto &g : gens)
        raw.push_back(g.get());
    system.runTraces(raw);

    EXPECT_EQ(manager.boardsDeclaredDead().value(), 1u);
    EXPECT_GE(manager.framesReclaimed().value(), 1u);
    // Every reclaimed Protect frame had a shadow image: nothing lost.
    EXPECT_EQ(manager.pagesLost().value(), 0u);
    EXPECT_EQ(manager.pagesRestored().value(),
              manager.framesReclaimed().value());
    ASSERT_NE(system.frameCheckpointer(), nullptr);
    EXPECT_GE(system.frameCheckpointer()->checkpoints().value(), 1u);
}

TEST(Checkpoint, HierKillWithCheckpointLosesNoPages)
{
    core::HierConfig cfg;
    cfg.clusters = 2;
    cfg.cpusPerCluster = 2;
    cfg.cache = cache::CacheConfig{kPage, 2, 16, true};
    cfg.memBytes = MiB(1);
    core::HierVmpSystem system(cfg);
    // Checkpoint first, recovery second: wiring must be
    // order-independent.
    system.enableFrameCheckpoint();
    EXPECT_TRUE(system.frameCheckpointEnabled());
    recover::RecoveryConfig rc;
    rc.detector.sweepPeriod = 64;
    system.enableRecovery(rc);
    system.killBoard(1, usec(300));

    auto gens = makeSources(4, 6'000, 11);
    std::vector<trace::RefSource *> raw;
    for (auto &g : gens)
        raw.push_back(g.get());
    system.runTraces(raw);

    auto &manager = system.clusterRecovery(0);
    EXPECT_EQ(manager.boardsDeclaredDead().value(), 1u);
    EXPECT_EQ(manager.pagesLost().value(), 0u);
    EXPECT_EQ(manager.pagesRestored().value(),
              manager.framesReclaimed().value());
}

} // namespace
} // namespace vmp::backing
