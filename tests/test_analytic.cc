/**
 * @file
 * Tests pinning the analytic models to the numbers printed in the
 * paper: Table 1 (elapsed/bus time per miss), Table 2 (75%-clean
 * averages), the Figure 3 example point (256 B pages, 0.24% miss ratio
 * -> ~87% performance), the Figure 5 example point (<0.6% miss ratio ->
 * <10% bus), and the Section 5.3 "about 5 processors" estimate.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "analytic/models.hh"
#include "sim/logging.hh"

namespace vmp::analytic
{
namespace
{

// --------------------------------------------------------- Table 1

struct Table1Case
{
    std::uint32_t page;
    bool dirty;
    double elapsedUs; // paper value
    double busUs;     // paper value
};

class Table1Test : public ::testing::TestWithParam<Table1Case>
{
};

TEST_P(Table1Test, MatchesPaperWithinRounding)
{
    const auto &[page, dirty, elapsed_want, bus_want] = GetParam();
    MissCostModel model;
    const MissCost cost = model.perMiss(page, dirty);
    // The paper rounds to whole (elapsed) and tenth (bus)
    // microseconds; allow 0.6 us / 0.15 us of slack.
    EXPECT_NEAR(cost.elapsedUs, elapsed_want, 0.6) << page << dirty;
    EXPECT_NEAR(cost.busUs, bus_want, 0.25) << page << dirty;
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table1Test,
    ::testing::Values(Table1Case{128, false, 17.0, 3.5},
                      Table1Case{256, false, 20.0, 6.6},
                      Table1Case{512, false, 26.0, 13.0},
                      Table1Case{128, true, 17.0, 7.0},
                      Table1Case{256, true, 23.0, 13.2},
                      Table1Case{512, true, 36.0, 26.0}),
    [](const ::testing::TestParamInfo<Table1Case> &info) {
        return "p" + std::to_string(info.param.page) +
            (info.param.dirty ? "_dirty" : "_clean");
    });

TEST(MissCostModel, Table2Averages)
{
    MissCostModel model;
    const MissCost avg128 = model.average(128);
    EXPECT_NEAR(avg128.elapsedUs, 17.0, 0.5);
    EXPECT_NEAR(avg128.busUs, 4.4, 0.3);

    const MissCost avg256 = model.average(256);
    EXPECT_NEAR(avg256.elapsedUs, 21.29, 0.9);
    EXPECT_NEAR(avg256.busUs, 8.316, 0.4);
}

TEST(MissCostModel, DirtyCostsMoreAndGrowsWithPageSize)
{
    MissCostModel model;
    for (std::uint32_t page : {128u, 256u, 512u}) {
        EXPECT_GE(model.perMiss(page, true).elapsedUs,
                  model.perMiss(page, false).elapsedUs);
        EXPECT_DOUBLE_EQ(model.perMiss(page, true).busUs,
                         2 * model.perMiss(page, false).busUs);
    }
    EXPECT_LT(model.perMiss(128, false).busUs,
              model.perMiss(256, false).busUs);
    EXPECT_LT(model.perMiss(256, false).busUs,
              model.perMiss(512, false).busUs);
}

TEST(MissCostModel, CleanFractionValidation)
{
    MissCostModel model;
    EXPECT_THROW(model.average(256, -0.1), FatalError);
    EXPECT_THROW(model.average(256, 1.1), FatalError);
    // Extremes equal the pure cases.
    EXPECT_DOUBLE_EQ(model.average(256, 1.0).busUs,
                     model.perMiss(256, false).busUs);
    EXPECT_DOUBLE_EQ(model.average(256, 0.0).busUs,
                     model.perMiss(256, true).busUs);
}

// --------------------------------------------------------- Figure 3

TEST(PerfModel, PaperExamplePoint)
{
    // "using a 256 byte cache page size and 128 kilobyte total cache
    // size, one would expect a miss ratio of 0.24 [percent] giving
    // processor performance of 87%".
    PerfModel model;
    EXPECT_NEAR(model.performance(256, 0.0024), 0.87, 0.01);
}

TEST(PerfModel, BoundaryValues)
{
    PerfModel model;
    EXPECT_DOUBLE_EQ(model.performance(256, 0.0), 1.0);
    EXPECT_LT(model.performance(256, 1.0), 0.02);
    EXPECT_THROW(model.performance(256, -0.1), FatalError);
    EXPECT_THROW(model.performance(256, 1.5), FatalError);
}

TEST(PerfModel, MonotonicallyDecreasingInMissRatio)
{
    PerfModel model;
    double last = 1.1;
    for (double m = 0.0; m <= 0.02; m += 0.002) {
        const double perf = model.performance(256, m);
        EXPECT_LT(perf, last);
        last = perf;
    }
}

TEST(PerfModel, LargerPagesCostMorePerMiss)
{
    PerfModel model;
    // At the *same* miss ratio, larger pages perform worse (the paper
    // notes the curves cannot be used to compare page sizes directly
    // because the miss ratio itself depends on page size).
    const double m = 0.005;
    EXPECT_GT(model.performance(128, m), model.performance(256, m));
    EXPECT_GT(model.performance(256, m), model.performance(512, m));
}

TEST(PerfModel, MissRatioForInvertsPerformance)
{
    PerfModel model;
    const double m = model.missRatioFor(256, 0.87);
    EXPECT_NEAR(model.performance(256, m), 0.87, 1e-9);
    EXPECT_NEAR(m, 0.0024, 0.0004);
    EXPECT_THROW(model.missRatioFor(256, 0.0), FatalError);
}

// --------------------------------------------------------- Figure 5

TEST(BusModel, PaperExamplePoint)
{
    // "for a 256 byte cache page size, with a miss ratio under 0.6%,
    // the bus utilization by a single processor is under 10%".
    BusModel model;
    EXPECT_LT(model.utilization(256, 0.006), 0.11);
    EXPECT_GT(model.utilization(256, 0.006), 0.08);
}

TEST(BusModel, ZeroMissesZeroUtilization)
{
    BusModel model;
    EXPECT_DOUBLE_EQ(model.utilization(256, 0.0), 0.0);
    EXPECT_THROW(model.utilization(256, -0.1), FatalError);
}

TEST(BusModel, IncreasingInMissRatio)
{
    BusModel model;
    double last = -1.0;
    for (double m = 0.0; m <= 0.02; m += 0.002) {
        const double util = model.utilization(512, m);
        EXPECT_GT(util, last);
        last = util;
    }
    // Utilization saturates below 1.
    EXPECT_LT(model.utilization(512, 1.0), 1.0);
}

// ------------------------------------------------------- Section 5.3

TEST(QueuingModel, AboutFiveProcessorsFitOnTheBus)
{
    // With 256-byte pages and the paper's ~10%-bus operating point,
    // roughly five processors fit before contention bites.
    QueuingModel model;
    const unsigned n = model.maxProcessors(256, 0.006, 0.9);
    EXPECT_GE(n, 4u);
    EXPECT_LE(n, 6u);
}

TEST(QueuingModel, PerformanceDegradesWithProcessors)
{
    QueuingModel model;
    double last = 2.0;
    for (unsigned n = 1; n <= 12; ++n) {
        const double perf = model.perProcessorPerformance(256, 0.006, n);
        EXPECT_LT(perf, last);
        EXPECT_GT(perf, 0.0);
        last = perf;
    }
    EXPECT_THROW(model.perProcessorPerformance(256, 0.006, 0),
                 FatalError);
}

TEST(QueuingModel, ThroughputSaturates)
{
    QueuingModel model;
    // Adding processors beyond saturation yields diminishing
    // aggregate throughput gains.
    const double t4 = model.systemThroughput(256, 0.01, 4);
    const double t8 = model.systemThroughput(256, 0.01, 8);
    const double t16 = model.systemThroughput(256, 0.01, 16);
    EXPECT_GT(t8, t4 * 0.9);
    EXPECT_LT(t16 - t8, t8 - t4 + 1.0);
}

TEST(QueuingModel, OfferedLoadIsLinear)
{
    QueuingModel model;
    const double one = model.offeredLoad(256, 0.004, 1);
    EXPECT_NEAR(model.offeredLoad(256, 0.004, 5), 5 * one, 1e-12);
}

TEST(QueuingModel, LowerMissRatioAllowsMoreProcessors)
{
    QueuingModel model;
    EXPECT_GE(model.maxProcessors(256, 0.002, 0.9),
              model.maxProcessors(256, 0.01, 0.9));
}

// ------------------------------------------------- Hierarchy (2-level)

TEST(HierQueuingModel, OneClusterNoGlobalTrafficMatchesFlatModel)
{
    // With one cluster and g = 0 the global-bus terms vanish and the
    // fixed-point equations reduce to the flat Section 5.3 model.
    QueuingModel flat;
    HierQueuingModel hier;
    for (unsigned n : {1u, 2u, 4u, 8u}) {
        EXPECT_NEAR(hier.perProcessorPerformance(256, 0.006, 0.0, 1, n),
                    flat.perProcessorPerformance(256, 0.006, n), 1e-6)
            << "n=" << n;
    }
}

TEST(HierQueuingModel, HierarchyBeatsFlatBusAtSixteenCpus)
{
    // The whole point of the cluster hierarchy: 16 CPUs on one bus
    // saturate; 4 clusters of 4 with mostly-local misses do not. At
    // m = 1% the single VMEbus is deep into its M/M/1 knee.
    QueuingModel flat;
    HierQueuingModel hier;
    const double m = 0.01;
    const double flat16 = flat.systemThroughput(256, m, 16);
    const double hier16 = hier.systemThroughput(256, m, 0.05, 4, 4);
    EXPECT_GT(hier16, 2.0 * flat16);
}

TEST(HierQueuingModel, MoreGlobalTrafficHurts)
{
    HierQueuingModel hier;
    double last = 2.0;
    for (double g : {0.0, 0.1, 0.3, 0.6, 1.0}) {
        const double perf =
            hier.perProcessorPerformance(256, 0.006, g, 4, 4);
        EXPECT_LT(perf, last) << "g=" << g;
        EXPECT_GT(perf, 0.0);
        last = perf;
    }
}

TEST(HierQueuingModel, UtilizationsAreSaneAndGrowWithLoad)
{
    HierQueuingModel hier;
    const double rho_g_lo = hier.globalUtilization(256, 0.004, 0.05, 4, 4);
    const double rho_g_hi = hier.globalUtilization(256, 0.004, 0.5, 4, 4);
    EXPECT_GE(rho_g_lo, 0.0);
    EXPECT_LT(rho_g_hi, 1.0);
    EXPECT_GT(rho_g_hi, rho_g_lo);

    const double rho_l = hier.localUtilization(256, 0.006, 0.05, 4, 4);
    EXPECT_GT(rho_l, 0.0);
    EXPECT_LT(rho_l, 1.0);
    // g = 0 keeps the global bus idle.
    EXPECT_NEAR(hier.globalUtilization(256, 0.006, 0.0, 4, 4), 0.0,
                1e-12);
}

TEST(HierQueuingModel, RejectsBadShapes)
{
    HierQueuingModel hier;
    EXPECT_THROW(hier.perProcessorPerformance(256, 0.006, 0.1, 0, 4),
                 FatalError);
    EXPECT_THROW(hier.perProcessorPerformance(256, 0.006, 0.1, 4, 0),
                 FatalError);
    EXPECT_THROW(hier.perProcessorPerformance(256, 0.006, 1.5, 4, 4),
                 FatalError);
}

TEST(HierQueuingModel, RefsPerSecondScalesWithThroughput)
{
    HierQueuingModel hier;
    const double tput = hier.systemThroughput(256, 0.006, 0.05, 4, 4);
    const cpu::M68020Timing timing;
    const double full_refs_per_s =
        timing.mips() * timing.refsPerInstr * 1e6;
    EXPECT_NEAR(hier.refsPerSecond(256, 0.006, 0.05, 4, 4),
                tput * full_refs_per_s, 1.0);
}

// ------------------------------------------------ Open-model domain

TEST(QueuingModel, PredictMatchesScalarApiAndFlagsSaturation)
{
    QueuingModel model;
    // In-domain point: the prediction is the scalar API's number.
    const auto light = model.predict(256, 0.002, 2);
    EXPECT_FALSE(light.domain.saturated);
    EXPECT_TRUE(light.domain.inDomain());
    EXPECT_DOUBLE_EQ(light.perProcessorPerformance,
                     model.perProcessorPerformance(256, 0.002, 2));
    // Sixteen 1%-miss processors offer more work than one VMEbus
    // serves: the open-arrival assumption is broken and the clamped
    // answer must say so instead of being silently returned.
    const auto heavy = model.predict(256, 0.01, 16);
    EXPECT_TRUE(heavy.domain.saturated);
    EXPECT_FALSE(heavy.domain.inDomain());
    EXPECT_GE(model.offeredLoad(256, 0.01, 16), 1.0);
    // Saturated or not, the clamped number stays finite and positive.
    EXPECT_GT(heavy.perProcessorPerformance, 0.0);
    EXPECT_LT(heavy.perProcessorPerformance,
              light.perProcessorPerformance);
}

// --------------------------------------------------- MVA (flat bus)

TEST(MvaModel, SingleCustomerNeverQueues)
{
    MvaModel mva;
    BusLoadProfile load;
    load.missRatio = 0.01;
    const auto p = mva.predict(256, load, 1);
    EXPECT_NEAR(p.waitUs, 0.0, 1e-12);
    EXPECT_LT(p.busUtilization, 1.0);
    EXPECT_TRUE(p.domain.inDomain());
}

TEST(MvaModel, LightLoadReducesToOpenEstimate)
{
    // With the bus nearly idle both models see (almost) no queueing,
    // so the closed MVA network and the open M/M/1 estimate agree.
    MvaModel mva;
    QueuingModel open;
    BusLoadProfile load;
    load.missRatio = 0.0004;
    for (unsigned n : {1u, 2u, 4u}) {
        const auto closed_p = mva.predict(256, load, n);
        const auto open_p = open.predict(256, load.missRatio, n);
        EXPECT_TRUE(open_p.domain.inDomain());
        EXPECT_NEAR(closed_p.perProcessorPerformance,
                    open_p.perProcessorPerformance, 0.002)
            << "n=" << n;
        // The open estimate counts a customer's own load in rho, so it
        // overestimates the wait by that self-term (visible at n = 1,
        // where the closed network correctly predicts zero wait).
        EXPECT_LE(closed_p.waitUs, open_p.waitUs + 1e-12) << "n=" << n;
        EXPECT_LT(open_p.waitUs, 0.5) << "n=" << n;
    }
}

TEST(MvaModel, StaysInDomainWhereOpenModelSaturates)
{
    // The closed network has no saturation limit: a full bus throttles
    // the miss rate, exactly like the simulated system. Utilization
    // approaches (but never exceeds) 1 and throughput levels off.
    MvaModel mva;
    QueuingModel open;
    BusLoadProfile load;
    load.missRatio = 0.01;
    EXPECT_TRUE(open.predict(256, load.missRatio, 16).domain.saturated);
    const auto p16 = mva.predict(256, load, 16);
    const auto p32 = mva.predict(256, load, 32);
    EXPECT_TRUE(p16.domain.inDomain());
    EXPECT_TRUE(p32.domain.inDomain());
    EXPECT_LE(p16.busUtilization, 1.0);
    EXPECT_LE(p32.busUtilization, 1.0);
    EXPECT_GT(p16.busUtilization, 0.9);
    // Doubling the processors on a full bus cannot double throughput.
    EXPECT_LT(p32.systemThroughput, 1.1 * p16.systemThroughput);
    EXPECT_GE(p32.systemThroughput, 0.99 * p16.systemThroughput);
}

TEST(MvaModel, UpgradesAreCheaperThanFetches)
{
    // An ownership upgrade occupies the bus for one short transaction
    // instead of a block transfer, so a heavier upgrade mix lowers the
    // per-miss bus demand and raises performance.
    MvaModel mva;
    BusLoadProfile fetch_heavy;
    fetch_heavy.missRatio = 0.01;
    fetch_heavy.upgradeFraction = 0.0;
    BusLoadProfile upgrade_heavy = fetch_heavy;
    upgrade_heavy.upgradeFraction = 0.5;
    EXPECT_LT(mva.serviceDemandUs(256, upgrade_heavy),
              mva.serviceDemandUs(256, fetch_heavy));
    EXPECT_GT(mva.perProcessorPerformance(256, upgrade_heavy, 8),
              mva.perProcessorPerformance(256, fetch_heavy, 8));
}

TEST(MvaModel, PriorityWaitSplitConservesAggregateMean)
{
    // Arbitration cannot create or destroy bus work: the per-level
    // HOL waits, weighted by level population, must average back to
    // the discipline-independent mean.
    const unsigned n = 8, levels = 4;
    MvaModel mva(mem::Arbitration::Priority, levels);
    BusLoadProfile load;
    load.missRatio = 0.008;
    const auto p = mva.predict(256, load, n);
    ASSERT_EQ(p.levelWaitUs.size(), levels);
    ASSERT_EQ(p.levelPerformance.size(), levels);
    double weighted = 0.0;
    for (unsigned l = 0; l < levels; ++l) {
        const double pop = static_cast<double>(n / levels);
        weighted += pop / n * p.levelWaitUs[l];
        EXPECT_GT(p.levelWaitUs[l], 0.0);
        EXPECT_GT(p.levelPerformance[l], 0.0);
    }
    EXPECT_NEAR(weighted, p.waitUs, 1e-9);
    // Higher bus-request level = higher priority = shorter wait.
    for (unsigned l = 1; l < levels; ++l)
        EXPECT_LT(p.levelWaitUs[l], p.levelWaitUs[l - 1]) << l;
    // FIFO and round-robin report the uniform mean only.
    MvaModel rr(mem::Arbitration::RoundRobin);
    EXPECT_TRUE(rr.predict(256, load, n).levelWaitUs.empty());
}

// ---------------------------------------------- MVA (two-level)

TEST(HierQueuingModel, PredictMvaReducesToFlatMva)
{
    // One cluster, no global traffic: the board and global-bus centers
    // idle and the three-center fixed point must reproduce the flat
    // closed model exactly, not merely approximately.
    HierQueuingModel hier;
    MvaModel flat;
    BusLoadProfile load;
    load.missRatio = 0.01;
    load.upgradeFraction = 0.2;
    load.writeBackRatio = 0.2;
    for (unsigned n : {1u, 4u, 8u}) {
        const auto h = hier.predictMva(256, load, 0.0, 1, n);
        const auto f = flat.predict(256, load, n);
        EXPECT_NEAR(h.perProcessorPerformance,
                    f.perProcessorPerformance, 1e-9)
            << "n=" << n;
        EXPECT_NEAR(h.localWaitUs, f.waitUs, 1e-9) << "n=" << n;
        EXPECT_NEAR(h.globalWaitUs, 0.0, 1e-12);
        EXPECT_NEAR(h.ibcWaitUs, 0.0, 1e-12);
        EXPECT_FALSE(h.retryCascade);
        EXPECT_TRUE(h.domain.converged);
    }
}

TEST(HierQueuingModel, PredictMvaGlobalTrafficHurts)
{
    HierQueuingModel hier;
    BusLoadProfile load;
    load.missRatio = 0.02;
    load.upgradeFraction = 0.18;
    load.writeBackRatio = 0.15;
    double last = 2.0;
    for (double g : {0.0, 0.05, 0.1, 0.2}) {
        const auto p = hier.predictMva(256, load, g, 4, 2);
        EXPECT_LT(p.perProcessorPerformance, last) << "g=" << g;
        EXPECT_GT(p.perProcessorPerformance, 0.0) << "g=" << g;
        EXPECT_TRUE(p.domain.converged) << "g=" << g;
        last = p.perProcessorPerformance;
    }
}

TEST(HierQueuingModel, PredictMvaFlagsRetryCascade)
{
    // The bench_hier operating points: light hierarchies stay in the
    // single-retry regime; the 32-CPU 8x4 cell drives the single-
    // server inter-bus boards into the retry cascade the mean-value
    // loop estimate cannot follow, and must be flagged out-of-domain.
    HierQueuingModel hier;
    BusLoadProfile load;
    load.missRatio = 0.0196;
    load.upgradeFraction = 0.1794;
    load.writeBackRatio = 0.15;
    const auto light = hier.predictMva(256, load, 0.1768, 2, 2);
    EXPECT_FALSE(light.retryCascade);
    EXPECT_TRUE(light.domain.converged);
    EXPECT_GE(light.loopsPerGlobalMiss, 1.0);

    load.missRatio = 0.0207;
    load.upgradeFraction = 0.1812;
    const auto heavy = hier.predictMva(256, load, 0.1664, 8, 4);
    EXPECT_TRUE(heavy.retryCascade);
    EXPECT_TRUE(heavy.domain.converged);
    EXPECT_GT(heavy.loopsPerGlobalMiss, light.loopsPerGlobalMiss);
}

} // namespace
} // namespace vmp::analytic
