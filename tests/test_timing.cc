/**
 * @file
 * Timing regression anchors: the event-driven simulator must reproduce
 * the Table 1 cost identities for every (page size, victim state)
 * combination, must match the closed-form MissCostModel exactly, and
 * must expose the overlap of victim write-back with handler
 * bookkeeping (Section 5.1). These pins keep the timing model honest
 * as the controller evolves.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "analytic/models.hh"
#include "cache/cache.hh"
#include "mem/phys_mem.hh"
#include "mem/vme_bus.hh"
#include "monitor/bus_monitor.hh"
#include "proto/controller.hh"
#include "sim/event.hh"

namespace vmp
{
namespace
{

constexpr cache::SlotFlags rwProt = static_cast<cache::SlotFlags>(
    cache::FlagSupWritable | cache::FlagUserReadable |
    cache::FlagUserWritable);

/** Single-CPU rig with a direct-mapped cache for victim control. */
struct TimingRig
{
    explicit TimingRig(std::uint32_t page_bytes)
        : memory(1 << 20, page_bytes), bus(events, memory),
          translator(page_bytes),
          cache(cache::CacheConfig{page_bytes, 1, 8, true}),
          monitor(0, 1 << 20, page_bytes),
          controller(0, events, cache, monitor, bus, translator)
    {
        bus.attachWatcher(0, monitor);
    }

    /** Complete one access, returning its elapsed time. */
    Tick
    timedAccess(Addr va, bool write)
    {
        const Tick start = events.now();
        bool done = false;
        if (write) {
            controller.writeWord(1, va, 1, false, [&] { done = true; });
        } else {
            controller.access(1, va, false, false,
                              [&](proto::AccessOutcome) {
                                  done = true;
                              });
        }
        events.run();
        EXPECT_TRUE(done);
        return events.now() - start;
    }

    EventQueue events;
    mem::PhysMem memory;
    mem::VmeBus bus;
    proto::FixedTranslator translator;
    cache::Cache cache;
    monitor::BusMonitor monitor;
    proto::CacheController controller;
};

using TimingCase = std::tuple<std::uint32_t, bool>;

class Table1TimingTest : public ::testing::TestWithParam<TimingCase>
{
};

TEST_P(Table1TimingTest, EventSimulatorMatchesClosedForm)
{
    const auto [page, dirty] = GetParam();
    TimingRig rig(page);

    // Two vaddrs in the same direct-mapped set force the eviction.
    const Addr va_victim = 0;
    const Addr va_new = 8ull * page;
    rig.translator.map(1, va_victim, 0x10000, rwProt);
    rig.translator.map(1, va_new, 0x20000, rwProt);

    if (dirty) {
        rig.timedAccess(va_victim, true);
    } else {
        rig.timedAccess(va_victim, false);
    }

    const Tick measured = rig.timedAccess(va_new, false);
    const analytic::MissCostModel model;
    const double expected_us = model.perMiss(page, dirty).elapsedUs;
    EXPECT_DOUBLE_EQ(toUsec(measured), expected_us)
        << "page=" << page << " dirty=" << dirty;
}

TEST_P(Table1TimingTest, BusTimeMatchesClosedForm)
{
    const auto [page, dirty] = GetParam();
    TimingRig rig(page);
    const Addr va_victim = 0;
    const Addr va_new = 8ull * page;
    rig.translator.map(1, va_victim, 0x10000, rwProt);
    rig.translator.map(1, va_new, 0x20000, rwProt);

    rig.timedAccess(va_victim, dirty);
    const Tick busy_before = rig.bus.busyTicks();
    rig.timedAccess(va_new, false);
    const Tick bus_used = rig.bus.busyTicks() - busy_before;

    const analytic::MissCostModel model;
    const double expected_us = model.perMiss(page, dirty).busUs;
    EXPECT_DOUBLE_EQ(toUsec(bus_used), expected_us);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, Table1TimingTest,
    ::testing::Combine(::testing::Values(128u, 256u, 512u),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<TimingCase> &info) {
        return "p" + std::to_string(std::get<0>(info.param)) +
            (std::get<1>(info.param) ? "_dirty" : "_clean");
    });

TEST(Timing, WriteBackOverlapsBookkeeping)
{
    // The dirty-victim miss must cost less than serial software plus
    // BOTH transfers: part of the write-back hides under bookkeeping.
    TimingRig rig(512);
    rig.translator.map(1, 0, 0x10000, rwProt);
    rig.translator.map(1, 8ull * 512, 0x20000, rwProt);
    rig.timedAccess(0, true); // dirty victim
    const Tick dirty_miss = rig.timedAccess(8ull * 512, false);

    const auto &sw = rig.controller.timing();
    const Tick serial = sw.serialNs();
    const Tick xfer = rig.bus.timing().blockNs(512);
    EXPECT_LT(dirty_miss, serial + 2 * xfer);
    EXPECT_EQ(dirty_miss, serial + xfer + (xfer - sw.overlapNs));
}

TEST(Timing, OwnershipMissCheaperThanFullMiss)
{
    // Upgrading a shared copy (assert-ownership, no transfer) is much
    // cheaper than a full read-private miss.
    TimingRig rig(256);
    rig.translator.map(1, 0, 0x10000, rwProt);
    rig.timedAccess(0, false); // shared fill (full miss)
    const Tick upgrade = rig.timedAccess(0, true); // WriteShared miss

    const auto &sw = rig.controller.timing();
    const Tick expected = sw.trapEntryNs + sw.ownershipNs +
        rig.bus.timing().shortTxNs;
    EXPECT_EQ(upgrade, expected);
    EXPECT_LT(upgrade, usec(15));
}

TEST(Timing, HitsTakeZeroHandlerTime)
{
    TimingRig rig(256);
    rig.translator.map(1, 0, 0x10000, rwProt);
    rig.timedAccess(0, false);
    // A hit completes synchronously: no software or bus time.
    EXPECT_EQ(rig.timedAccess(0, false), 0u);
}

} // namespace
} // namespace vmp
