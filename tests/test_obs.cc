/**
 * @file
 * Observability subsystem tests: EventTracer ring semantics, the
 * MissProfiler fold, Chrome-trace/CSV export schema (with a JSON
 * round-trip through the repo's own parser), and the regression that
 * matters most — tracing is pure observation, so a traced run is
 * bit-identical to an untraced one on both the flat machine and the
 * two-level hierarchy.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/hier_system.hh"
#include "core/system.hh"
#include "obs/event_tracer.hh"
#include "obs/export.hh"
#include "obs/miss_profiler.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "trace/synthetic.hh"
#include "trace/workloads.hh"

namespace vmp
{
namespace
{

obs::TraceEvent
makeEvent(Tick at, obs::EventKind kind, std::uint16_t track,
          std::uint64_t arg0 = 0, std::uint8_t aux = 0)
{
    obs::TraceEvent event;
    event.at = at;
    event.kind = kind;
    event.track = track;
    event.arg0 = arg0;
    event.aux = aux;
    return event;
}

// --------------------------------------------------- EventTracer core

TEST(EventTracer, TracksAreDenseAndNamed)
{
    obs::EventTracer tracer;
    EXPECT_EQ(tracer.registerTrack("bus"), 0u);
    EXPECT_EQ(tracer.registerTrack("cpu0"), 1u);
    EXPECT_EQ(tracer.trackCount(), 2u);
    EXPECT_EQ(tracer.trackName(0), "bus");
    EXPECT_EQ(tracer.trackName(1), "cpu0");
    EXPECT_THROW(tracer.registerTrack("bus"), PanicError);
}

TEST(EventTracer, RingCapacityRoundsUpToPowerOfTwo)
{
    obs::EventTracer tracer(100);
    EXPECT_EQ(tracer.ringCapacity(), 128u);
}

TEST(EventTracer, RingKeepsNewestAndUnwindsChronologically)
{
    obs::EventTracer tracer(4);
    const auto track = tracer.registerTrack("t");
    for (Tick at = 1; at <= 7; ++at) {
        tracer.record(
            makeEvent(at, obs::EventKind::BusTx, track, at * 10));
    }
    EXPECT_EQ(tracer.recorded(), 7u);
    EXPECT_EQ(tracer.droppedOldest(), 3u);
    EXPECT_EQ(tracer.droppedOn(track), 3u);
    const auto events = tracer.events(track);
    ASSERT_EQ(events.size(), 4u);
    // Oldest three were overwritten; remainder in tick order.
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].at, static_cast<Tick>(4 + i));
}

TEST(EventTracer, AllEventsMergesTracksInTickOrder)
{
    obs::EventTracer tracer;
    const auto a = tracer.registerTrack("a");
    const auto b = tracer.registerTrack("b");
    tracer.record(makeEvent(30, obs::EventKind::Miss, b));
    tracer.record(makeEvent(10, obs::EventKind::Miss, a));
    tracer.record(makeEvent(20, obs::EventKind::Miss, b));
    const auto all = tracer.allEvents();
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0].at, 10u);
    EXPECT_EQ(all[1].at, 20u);
    EXPECT_EQ(all[2].at, 30u);
}

TEST(EventTracer, SinksSeeEveryEventEvenAfterWrap)
{
    obs::EventTracer tracer(2);
    const auto track = tracer.registerTrack("t");
    std::uint64_t seen = 0;
    tracer.addSink([&seen](const obs::TraceEvent &) { ++seen; });
    for (Tick at = 1; at <= 10; ++at)
        tracer.record(makeEvent(at, obs::EventKind::BusTx, track));
    EXPECT_EQ(seen, 10u);
    EXPECT_EQ(tracer.events(track).size(), 2u);
}

// --------------------------------------------------- MissProfiler fold

TEST(MissProfiler, FoldsPhasesIntoClasses)
{
    obs::MissProfiler profiler;
    // One clean full miss: trap 2000, lookup 8100, copy 6600.
    profiler.observe(makeEvent(
        0, obs::EventKind::MissPhase, 0, 2000,
        static_cast<std::uint8_t>(obs::MissPhase::Trap)));
    profiler.observe(makeEvent(
        2000, obs::EventKind::MissPhase, 0, 8100,
        static_cast<std::uint8_t>(obs::MissPhase::TableLookup)));
    profiler.observe(makeEvent(
        10100, obs::EventKind::MissPhase, 0, 6600,
        static_cast<std::uint8_t>(obs::MissPhase::BlockCopy)));
    profiler.observe(
        makeEvent(0, obs::EventKind::Miss, 0, 16700, /*aux=*/0));

    EXPECT_EQ(profiler.misses(), 1u);
    EXPECT_EQ(profiler.phaseSumMismatches(), 0u);
    const auto &clean = profiler.breakdown(obs::MissKind::Full, false);
    EXPECT_EQ(clean.count, 1u);
    EXPECT_DOUBLE_EQ(clean.meanElapsedUs(), 16.7);
    EXPECT_DOUBLE_EQ(clean.phaseSumUs(), 16.7);
    EXPECT_DOUBLE_EQ(clean.meanPhaseUs(obs::MissPhase::Trap), 2.0);
    EXPECT_EQ(profiler.breakdown(obs::MissKind::Full, true).count, 0u);
}

TEST(MissProfiler, CountsPhaseSumMismatches)
{
    obs::MissProfiler profiler;
    profiler.observe(makeEvent(
        0, obs::EventKind::MissPhase, 0, 1000,
        static_cast<std::uint8_t>(obs::MissPhase::Trap)));
    // Miss claims 1500 ns elapsed but phases only cover 1000.
    profiler.observe(
        makeEvent(0, obs::EventKind::Miss, 0, 1500, /*aux=*/0));
    EXPECT_EQ(profiler.phaseSumMismatches(), 1u);
    EXPECT_EQ(profiler.worstMismatchNs(), 500u);
}

TEST(MissProfiler, TracksKeepConcurrentMissesSeparate)
{
    obs::MissProfiler profiler;
    profiler.observe(makeEvent(
        0, obs::EventKind::MissPhase, /*track=*/1, 700,
        static_cast<std::uint8_t>(obs::MissPhase::Trap)));
    profiler.observe(makeEvent(
        0, obs::EventKind::MissPhase, /*track=*/2, 900,
        static_cast<std::uint8_t>(obs::MissPhase::Trap)));
    profiler.observe(makeEvent(0, obs::EventKind::Miss, 1, 700, 0));
    profiler.observe(makeEvent(0, obs::EventKind::Miss, 2, 900, 0));
    EXPECT_EQ(profiler.misses(), 2u);
    EXPECT_EQ(profiler.phaseSumMismatches(), 0u);
}

// ------------------------------------------------------- full systems

std::vector<std::unique_ptr<trace::SyntheticGen>>
makeSources(std::uint32_t cpus, std::uint64_t refs,
            std::uint64_t seed_base)
{
    std::vector<std::unique_ptr<trace::SyntheticGen>> gens;
    for (std::uint32_t i = 0; i < cpus; ++i) {
        auto workload = trace::workloadConfig("atum2");
        workload.totalRefs = refs;
        workload.seed = seed_base + i;
        workload.asidBase = static_cast<Asid>(1 + i * 8);
        gens.push_back(std::make_unique<trace::SyntheticGen>(workload));
    }
    return gens;
}

std::vector<trace::RefSource *>
rawSources(std::vector<std::unique_ptr<trace::SyntheticGen>> &gens)
{
    std::vector<trace::RefSource *> raw;
    for (auto &g : gens)
        raw.push_back(g.get());
    return raw;
}

core::VmpConfig
smallConfig(std::uint32_t cpus)
{
    core::VmpConfig cfg;
    cfg.processors = cpus;
    cfg.cache = cache::CacheConfig{256, 2, 16, true};
    cfg.memBytes = MiB(1);
    return cfg;
}

TEST(TracedSystem, NullTracerIsBitIdentical)
{
    auto run = [](bool traced) {
        core::VmpSystem system(smallConfig(2));
        if (traced)
            system.enableTracing();
        auto gens = makeSources(2, 8'000, 7);
        auto raw = rawSources(gens);
        return system.runTraces(raw).toString();
    };
    // Tracing is pure observation: no event scheduled, no RNG drawn —
    // the run summary (elapsed ticks included) is bit-identical.
    EXPECT_EQ(run(false), run(true));
}

TEST(TracedSystem, ProfilerFoldsEveryMissWithoutMismatch)
{
    core::VmpSystem system(smallConfig(2));
    system.enableTracing();
    auto gens = makeSources(2, 8'000, 11);
    auto raw = rawSources(gens);
    const auto result = system.runTraces(raw);

    ASSERT_NE(system.missProfiler(), nullptr);
    EXPECT_EQ(system.missProfiler()->misses(), result.totalMisses);
    EXPECT_EQ(system.missProfiler()->phaseSumMismatches(), 0u);
    EXPECT_GT(system.tracer()->recorded(), 0u);

    // The obs stat group rides into the registry.
    const Json stats = system.statsJson();
    EXPECT_TRUE(stats.contains("obs"));
    EXPECT_EQ(stats.get("obs").get("misses_profiled").asUint(),
              result.totalMisses);
    EXPECT_EQ(stats.get("obs").get("phase_sum_mismatches").asUint(),
              0u);
}

TEST(TracedSystem, EnableTwiceIsFatal)
{
    core::VmpSystem system(smallConfig(1));
    system.enableTracing();
    EXPECT_THROW(system.enableTracing(), FatalError);
}

TEST(TracedHierSystem, NullTracerIsBitIdenticalAndTracksNamed)
{
    core::HierConfig cfg;
    cfg.clusters = 2;
    cfg.cpusPerCluster = 2;
    cfg.cache = cache::CacheConfig{256, 2, 16, true};
    cfg.memBytes = MiB(1);

    auto run = [&cfg](bool traced) {
        core::HierVmpSystem system(cfg);
        if (traced)
            system.enableTracing();
        auto gens = makeSources(4, 4'000, 23);
        auto raw = rawSources(gens);
        return system.runTraces(raw).toString();
    };
    EXPECT_EQ(run(false), run(true));

    core::HierVmpSystem system(cfg);
    auto &tracer = system.enableTracing();
    // global bus + per cluster (bus, ibc) + per cpu + recover.
    EXPECT_EQ(tracer.trackCount(), 1u + 2u * 2u + 4u + 1u);
    EXPECT_EQ(tracer.trackName(0), "global_bus");
    auto gens = makeSources(4, 4'000, 23);
    auto raw = rawSources(gens);
    system.runTraces(raw);
    EXPECT_GT(tracer.recorded(), 0u);
    EXPECT_EQ(system.missProfiler()->phaseSumMismatches(), 0u);
    EXPECT_TRUE(system.statsJson().contains("obs"));
}

// ------------------------------------------------------------ exports

/** A small traced run whose exports the schema tests inspect. */
class ExportTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        system_ = std::make_unique<core::VmpSystem>(smallConfig(2));
        system_->enableTracing();
        auto gens = makeSources(2, 6'000, 31);
        auto raw = rawSources(gens);
        system_->runTraces(raw);
    }

    std::unique_ptr<core::VmpSystem> system_;
};

TEST_F(ExportTest, ChromeTraceSchemaAndRoundTrip)
{
    const obs::EventTracer &tracer = *system_->tracer();
    const Json doc = obs::chromeTraceJson(tracer);
    EXPECT_EQ(doc.get("displayTimeUnit").asString(), "ns");
    const Json &events = doc.get("traceEvents");
    ASSERT_TRUE(events.isArray());
    ASSERT_GT(events.size(), tracer.trackCount());

    // One thread_name metadata record per track, first.
    std::size_t metadata = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const Json &event = events.at(i);
        const std::string &ph = event.get("ph").asString();
        if (ph == "M") {
            ++metadata;
            EXPECT_EQ(event.get("name").asString(), "thread_name");
            continue;
        }
        ASSERT_TRUE(ph == "X" || ph == "i" || ph == "C") << ph;
        EXPECT_TRUE(event.contains("ts"));
        EXPECT_TRUE(event.contains("pid"));
        EXPECT_TRUE(event.contains("tid"));
        EXPECT_LT(event.get("tid").asUint(), tracer.trackCount());
        if (ph == "X")
            EXPECT_TRUE(event.contains("dur"));
    }
    EXPECT_EQ(metadata, tracer.trackCount());

    // Round-trip through the repo's own parser.
    const Json reparsed = Json::parse(doc.dump(2));
    EXPECT_EQ(reparsed, doc);

    // writeChromeTrace streams the same document.
    std::ostringstream os;
    obs::writeChromeTrace(tracer, os);
    EXPECT_EQ(Json::parse(os.str()), doc);
}

TEST_F(ExportTest, ChromeTraceEventsAreTimeOrdered)
{
    const Json doc = obs::chromeTraceJson(*system_->tracer());
    const Json &events = doc.get("traceEvents");
    double last_ts = -1.0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const Json &event = events.at(i);
        if (event.get("ph").asString() == "M")
            continue;
        const double ts = event.get("ts").asNumber();
        EXPECT_GE(ts, last_ts);
        last_ts = ts;
    }
}

TEST_F(ExportTest, BusUtilizationCsvShape)
{
    const std::string csv =
        obs::busUtilizationCsv(*system_->tracer(), usec(100));
    std::istringstream is(csv);
    std::string header;
    ASSERT_TRUE(std::getline(is, header));
    EXPECT_EQ(header.rfind("t_us,", 0), 0u);
    std::size_t rows = 0;
    std::string line;
    const std::size_t columns =
        1 + static_cast<std::size_t>(
            std::count(header.begin(), header.end(), ','));
    while (std::getline(is, line)) {
        ++rows;
        EXPECT_EQ(1 + static_cast<std::size_t>(
                          std::count(line.begin(), line.end(), ',')),
                  columns);
    }
    EXPECT_GT(rows, 0u);
}

TEST_F(ExportTest, FifoDepthCsvShape)
{
    const std::string csv = obs::fifoDepthCsv(*system_->tracer());
    std::istringstream is(csv);
    std::string header;
    ASSERT_TRUE(std::getline(is, header));
    EXPECT_EQ(header, "t_us,track,depth,dropped");
}

TEST_F(ExportTest, MetricsSnapshotNamesEveryTrack)
{
    const std::string snapshot = obs::metricsSnapshot(
        *system_->tracer(), system_->missProfiler());
    for (std::uint16_t t = 0; t < system_->tracer()->trackCount(); ++t)
        EXPECT_NE(snapshot.find(system_->tracer()->trackName(t)),
                  std::string::npos);
    EXPECT_NE(snapshot.find("miss profile"), std::string::npos);
}

} // namespace
} // namespace vmp
