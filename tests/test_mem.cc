/**
 * @file
 * Tests for physical memory, the VMEbus model (timing, arbitration,
 * aborts, action-table side effects, data movement) and the block
 * copier. Timing expectations follow Section 2/5.1: 300 ns first word,
 * 100 ns per subsequent word, 150 ns check interval overlapped with the
 * transfer.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mem/block_copier.hh"
#include "mem/bus_types.hh"
#include "mem/dma.hh"
#include "mem/phys_mem.hh"
#include "mem/vme_bus.hh"
#include "sim/event.hh"
#include "sim/logging.hh"

namespace vmp::mem
{
namespace
{

/** Scripted watcher for bus tests. */
class FakeWatcher : public BusWatcher
{
  public:
    WatchVerdict verdict = WatchVerdict::Ignore;
    std::vector<BusTransaction> observed;
    std::vector<BusTransaction> updates;

    WatchVerdict
    observe(const BusTransaction &tx) override
    {
        observed.push_back(tx);
        return verdict;
    }

    void
    sideEffectUpdate(const BusTransaction &tx) override
    {
        updates.push_back(tx);
    }
};

struct BusFixture : public ::testing::Test
{
    EventQueue events;
    PhysMem memory{1 << 20, 256};
    VmeBus bus{events, memory};
};

// ------------------------------------------------------------ phys mem

TEST(PhysMem, FrameArithmetic)
{
    PhysMem mem(8u << 20, 256);
    EXPECT_EQ(mem.frames(), (8u << 20) / 256);
    EXPECT_EQ(mem.frameOf(0), 0u);
    EXPECT_EQ(mem.frameOf(255), 0u);
    EXPECT_EQ(mem.frameOf(256), 1u);
    EXPECT_EQ(mem.frameBase(3), 768u);
}

TEST(PhysMem, BlockAndWordRoundTrip)
{
    PhysMem mem(4096, 256);
    const std::uint8_t src[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    mem.writeBlock(100, src, sizeof(src));
    std::uint8_t dst[8] = {};
    mem.readBlock(100, dst, sizeof(dst));
    EXPECT_EQ(std::memcmp(src, dst, 8), 0);

    mem.writeWord(0, 0xcafebabe);
    EXPECT_EQ(mem.readWord(0), 0xcafebabeu);
    EXPECT_EQ(mem.writes().value(), 2u);
}

TEST(PhysMem, OutOfRangePanics)
{
    PhysMem mem(4096, 256);
    std::uint8_t buf[16];
    EXPECT_THROW(mem.readBlock(4090, buf, 16), PanicError);
    EXPECT_THROW(mem.frameBase(16), PanicError);
    EXPECT_THROW(mem.frameOf(4096), PanicError);
}

TEST(PhysMem, ConfigValidation)
{
    EXPECT_THROW(PhysMem(1000, 256), FatalError);
    EXPECT_THROW(PhysMem(4096, 100), FatalError);
}

// ------------------------------------------------------------ timing

TEST(BusTiming, BlockTransferMatchesPaper)
{
    BusTiming t;
    // 128B = 32 words: 300 + 31*100 = 3400 ns.
    EXPECT_EQ(t.blockNs(128), 3400u);
    // 256B = 64 words: 6600 ns (paper Table 1: 6.6 us bus time).
    EXPECT_EQ(t.blockNs(256), 6600u);
    // 512B = 128 words: 13000 ns (paper Table 1: 13.0 us).
    EXPECT_EQ(t.blockNs(512), 13000u);
    EXPECT_EQ(t.blockNs(0), 0u);
}

TEST(BusTiming, FortyMegabytesPerSecond)
{
    // "The VMEbus-based VMP block copier should transfer data at 40
    // megabytes per second" — the asymptotic rate of 4 bytes/100 ns.
    BusTiming t;
    const double bytes = 1 << 20;
    const double secs =
        static_cast<double>(t.blockNs(1 << 20)) * 1e-9;
    EXPECT_NEAR(bytes / secs / 1e6, 40.0, 0.5);
}

TEST(BusTiming, ShortTransactionsCostOneCycle)
{
    BusTiming t;
    EXPECT_EQ(t.occupancy(TxType::AssertOwnership, 0), 450u);
    EXPECT_EQ(t.occupancy(TxType::Notify, 0), 450u);
    EXPECT_EQ(t.occupancy(TxType::WriteActionTable, 0), 450u);
    EXPECT_EQ(t.occupancy(TxType::ReadShared, 256), 6600u);
}

// --------------------------------------------------------------- bus

TEST_F(BusFixture, ReadMovesDataAndTakesBlockTime)
{
    memory.writeWord(0x1000, 0x12345678);
    std::vector<std::uint8_t> buf(256, 0);

    BusTransaction tx;
    tx.type = TxType::ReadShared;
    tx.requester = 0;
    tx.paddr = 0x1000;
    tx.bytes = 256;
    tx.data = buf.data();

    bool done = false;
    bus.request(tx, [&](const TxResult &res) {
        done = true;
        EXPECT_FALSE(res.aborted);
        EXPECT_EQ(res.busTime, 6600u);
        EXPECT_EQ(res.queueDelay, 0u);
    });
    events.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(events.now(), 6600u);
    std::uint32_t word = 0;
    std::memcpy(&word, buf.data(), 4);
    EXPECT_EQ(word, 0x12345678u);
}

TEST_F(BusFixture, WriteBackModifiesMemory)
{
    std::vector<std::uint8_t> buf(256, 0xab);
    BusTransaction tx;
    tx.type = TxType::WriteBack;
    tx.paddr = 0x2000;
    tx.bytes = 256;
    tx.data = buf.data();

    bus.request(tx, nullptr);
    events.run();
    EXPECT_EQ(memory.readWord(0x2000), 0xababababu);
}

TEST_F(BusFixture, FifoArbitrationQueuesSecondMaster)
{
    std::vector<std::uint8_t> a(256), b(256);
    Tick first_done = 0, second_done = 0;
    Tick second_delay = 0;

    BusTransaction tx;
    tx.type = TxType::ReadShared;
    tx.paddr = 0;
    tx.bytes = 256;
    tx.data = a.data();
    bus.request(tx, [&](const TxResult &) { first_done = events.now(); });

    tx.requester = 1;
    tx.data = b.data();
    bus.request(tx, [&](const TxResult &res) {
        second_done = events.now();
        second_delay = res.queueDelay;
    });

    EXPECT_TRUE(bus.busy());
    events.run();
    EXPECT_EQ(first_done, 6600u);
    EXPECT_EQ(second_done, 13200u);
    EXPECT_EQ(second_delay, 6600u);
    EXPECT_FALSE(bus.busy());
    EXPECT_DOUBLE_EQ(bus.utilization(), 1.0);
}

TEST_F(BusFixture, UtilizationNeverExceedsOneMidTransfer)
{
    // Regression: busy ticks used to be charged in full at grant time,
    // so sampling utilization() halfway through a transfer returned
    // busyTicks / now = 6600 / 3300 = 2.0. The in-flight transaction
    // must be pro-rated to the elapsed portion instead.
    std::vector<std::uint8_t> buf(256, 0);
    BusTransaction tx;
    tx.type = TxType::ReadShared;
    tx.paddr = 0;
    tx.bytes = 256;
    tx.data = buf.data();
    bus.request(tx, nullptr); // occupies [0, 6600)

    events.run(3300); // stop mid-transfer
    EXPECT_EQ(events.now(), 3300u);
    EXPECT_TRUE(bus.busy());
    EXPECT_DOUBLE_EQ(bus.utilization(), 1.0);
    EXPECT_LE(bus.utilization(), 1.0);

    events.run();
    EXPECT_DOUBLE_EQ(bus.utilization(), 1.0);
}

TEST_F(BusFixture, UtilizationProRatesAcrossIdleGaps)
{
    // First transfer [0, 6600), bus idle until a second request at
    // t = 13200 that occupies [13200, 19800). Sampled mid-second-
    // transfer at t = 16500 the bus has been busy 6600 + 3300 ticks
    // out of 16500: utilization 0.6 exactly — and <= 1.0 at every
    // sampling point along the way.
    std::vector<std::uint8_t> buf(256, 0);
    BusTransaction tx;
    tx.type = TxType::ReadShared;
    tx.paddr = 0;
    tx.bytes = 256;
    tx.data = buf.data();
    bus.request(tx, nullptr);
    events.run();
    EXPECT_EQ(events.now(), 6600u);
    EXPECT_DOUBLE_EQ(bus.utilization(), 1.0);

    // Idle gap: advance the clock with no transaction in flight.
    events.schedule(
        events.now() + 6600, [&] { bus.request(tx, nullptr); },
        "second-request");
    events.run(9900); // idle sample point
    EXPECT_DOUBLE_EQ(bus.utilization(), 6600.0 / 9900.0);

    events.run(16500); // mid-second-transfer sample point
    EXPECT_TRUE(bus.busy());
    EXPECT_DOUBLE_EQ(bus.utilization(), 9900.0 / 16500.0);
    EXPECT_LE(bus.utilization(), 1.0);

    events.run();
    EXPECT_EQ(events.now(), 19800u);
    EXPECT_DOUBLE_EQ(bus.utilization(), 13200.0 / 19800.0);
}

TEST_F(BusFixture, WatcherAbortStopsDataAndShortensOccupancy)
{
    FakeWatcher watcher;
    watcher.verdict = WatchVerdict::AbortAndInterrupt;
    bus.attachWatcher(7, watcher);

    memory.writeWord(0x3000, 0x11223344);
    std::vector<std::uint8_t> buf(256, 0);
    BusTransaction tx;
    tx.type = TxType::ReadShared;
    tx.paddr = 0x3000;
    tx.bytes = 256;
    tx.data = buf.data();
    tx.updatesTable = true;

    bool aborted = false;
    bus.request(tx, [&](const TxResult &res) { aborted = res.aborted; });
    events.run();
    EXPECT_TRUE(aborted);
    // Aborted transaction terminates early and moves no data.
    EXPECT_EQ(events.now(), 450u);
    EXPECT_EQ(buf[0], 0u);
    EXPECT_EQ(bus.aborts().value(), 1u);
    // No side-effect update on abort.
    EXPECT_TRUE(watcher.updates.empty());
}

TEST_F(BusFixture, AbortedWriteBackDoesNotTouchMemory)
{
    FakeWatcher watcher;
    watcher.verdict = WatchVerdict::AbortAndInterrupt;
    bus.attachWatcher(3, watcher);

    std::vector<std::uint8_t> buf(256, 0xff);
    BusTransaction tx;
    tx.type = TxType::WriteBack;
    tx.paddr = 0;
    tx.bytes = 256;
    tx.data = buf.data();
    bus.request(tx, nullptr);
    events.run();
    EXPECT_EQ(memory.readWord(0), 0u);
    EXPECT_EQ(memory.writes().value(), 0u);
}

TEST_F(BusFixture, SideEffectUpdateOnlyOnRequestersWatcher)
{
    FakeWatcher mine, theirs;
    bus.attachWatcher(0, mine);
    bus.attachWatcher(1, theirs);

    std::vector<std::uint8_t> buf(256);
    BusTransaction tx;
    tx.type = TxType::ReadPrivate;
    tx.requester = 0;
    tx.paddr = 0x400;
    tx.bytes = 256;
    tx.data = buf.data();
    tx.newEntry = ActionEntry::Protect;
    tx.updatesTable = true;

    bus.request(tx, nullptr);
    events.run();
    ASSERT_EQ(mine.updates.size(), 1u);
    EXPECT_EQ(mine.updates[0].newEntry, ActionEntry::Protect);
    EXPECT_TRUE(theirs.updates.empty());
    // Both watchers observed the transaction.
    EXPECT_EQ(mine.observed.size(), 1u);
    EXPECT_EQ(theirs.observed.size(), 1u);
}

TEST_F(BusFixture, DmaTransactionsAreNotObserved)
{
    FakeWatcher watcher;
    watcher.verdict = WatchVerdict::AbortAndInterrupt;
    bus.attachWatcher(0, watcher);

    std::vector<std::uint8_t> buf(512, 0x5a);
    BusTransaction tx;
    tx.type = TxType::DmaWrite;
    tx.requester = 9;
    tx.paddr = 0x800;
    tx.bytes = 512;
    tx.data = buf.data();

    bool aborted = true;
    bus.request(tx, [&](const TxResult &res) { aborted = res.aborted; });
    events.run();
    EXPECT_FALSE(aborted);
    EXPECT_TRUE(watcher.observed.empty());
    EXPECT_EQ(memory.readWord(0x800), 0x5a5a5a5au);
}

TEST_F(BusFixture, BlockTransactionValidation)
{
    BusTransaction tx;
    tx.type = TxType::ReadShared;
    tx.bytes = 0;
    EXPECT_THROW(bus.request(tx, nullptr), PanicError);
    tx.bytes = 256;
    tx.data = nullptr;
    EXPECT_THROW(bus.request(tx, nullptr), PanicError);
}

TEST_F(BusFixture, DuplicateWatcherRejected)
{
    FakeWatcher w;
    bus.attachWatcher(0, w);
    EXPECT_THROW(bus.attachWatcher(0, w), FatalError);
}

TEST_F(BusFixture, TypeCountsTracked)
{
    std::vector<std::uint8_t> buf(256);
    BusTransaction tx;
    tx.type = TxType::ReadShared;
    tx.paddr = 0;
    tx.bytes = 256;
    tx.data = buf.data();
    bus.request(tx, nullptr);
    tx.type = TxType::AssertOwnership;
    tx.bytes = 0;
    tx.data = nullptr;
    bus.request(tx, nullptr);
    events.run();
    EXPECT_EQ(bus.countOf(TxType::ReadShared).value(), 1u);
    EXPECT_EQ(bus.countOf(TxType::AssertOwnership).value(), 1u);
    EXPECT_EQ(bus.transactions().value(), 2u);
    EXPECT_EQ(bus.busyTicks(), 6600u + 450u);
}

// ------------------------------------------------------------- copier

TEST_F(BusFixture, CopierReadsPage)
{
    memory.writeWord(0x1000, 0x99aabbcc);
    BlockCopier copier(0, bus);
    std::vector<std::uint8_t> buf(256, 0);
    bool done = false;
    copier.readPage(0x1000, buf.data(), 256, false,
                    [&](const TxResult &res) {
                        done = true;
                        EXPECT_FALSE(res.aborted);
                    });
    EXPECT_TRUE(copier.busy());
    events.run();
    EXPECT_TRUE(done);
    EXPECT_FALSE(copier.busy());
    std::uint32_t word = 0;
    std::memcpy(&word, buf.data(), 4);
    EXPECT_EQ(word, 0x99aabbccu);
    EXPECT_EQ(copier.copies().value(), 1u);
}

TEST_F(BusFixture, CopierWriteBackCarriesDowngradeEntry)
{
    FakeWatcher watcher;
    bus.attachWatcher(0, watcher);
    BlockCopier copier(0, bus);
    std::vector<std::uint8_t> buf(256, 0x42);
    copier.writeBackPage(0x2000, buf.data(), 256, ActionEntry::Shared,
                         nullptr);
    events.run();
    EXPECT_EQ(memory.readWord(0x2000), 0x42424242u);
    ASSERT_EQ(watcher.updates.size(), 1u);
    EXPECT_EQ(watcher.updates[0].newEntry, ActionEntry::Shared);
}

TEST_F(BusFixture, CopierRefusesConcurrentCopies)
{
    BlockCopier copier(0, bus);
    std::vector<std::uint8_t> a(256), b(256);
    copier.readPage(0, a.data(), 256, false, nullptr);
    EXPECT_THROW(copier.readPage(256, b.data(), 256, false, nullptr),
                 PanicError);
}

// --------------------------------------------------------------- dma

TEST_F(BusFixture, DmaDeviceWriteAndRead)
{
    DmaDevice device(42, bus);
    std::vector<std::uint8_t> payload(128, 0x7e);
    bool wrote = false;
    device.write(0x5000, payload, [&] { wrote = true; });
    events.run();
    EXPECT_TRUE(wrote);
    EXPECT_EQ(memory.readWord(0x5000), 0x7e7e7e7eu);

    std::vector<std::uint8_t> got;
    device.read(0x5000, 128, [&](std::vector<std::uint8_t> data) {
        got = std::move(data);
    });
    events.run();
    ASSERT_EQ(got.size(), 128u);
    EXPECT_EQ(got[0], 0x7e);
    EXPECT_EQ(device.transfers().value(), 2u);
    EXPECT_EQ(device.bytesMoved(), 256u);
}

TEST_F(BusFixture, DmaDeviceValidation)
{
    DmaDevice device(42, bus);
    EXPECT_THROW(device.write(0, {}, nullptr), PanicError);
    EXPECT_THROW(device.read(0, 0, nullptr), PanicError);
}

TEST_F(BusFixture, DmaIgnoredByProtectEntries)
{
    // Even with a monitor protecting the frame, DMA is never aborted
    // (it is not consistency-related); the software bracket must
    // guarantee no cached copies instead.
    FakeWatcher watcher;
    watcher.verdict = WatchVerdict::AbortAndInterrupt;
    bus.attachWatcher(0, watcher);
    DmaDevice device(42, bus);
    bool wrote = false;
    device.write(0x6000, std::vector<std::uint8_t>(64, 1),
                 [&] { wrote = true; });
    events.run();
    EXPECT_TRUE(wrote);
    EXPECT_TRUE(watcher.observed.empty());
}

TEST_F(BusFixture, QueueDelayHistogramRecordsContention)
{
    std::vector<std::uint8_t> a(256), b(256);
    BusTransaction tx;
    tx.type = TxType::ReadShared;
    tx.paddr = 0;
    tx.bytes = 256;
    tx.data = a.data();
    bus.request(tx, nullptr);
    tx.data = b.data();
    bus.request(tx, nullptr); // queues behind the first (6.6 us)
    events.run();
    const auto &hist = bus.queueDelays();
    EXPECT_EQ(hist.samples(), 2u);
    EXPECT_DOUBLE_EQ(hist.min(), 0.0);
    EXPECT_NEAR(hist.max(), 6.6, 0.01);
    EXPECT_EQ(hist.buckets()[0], 1u); // the unqueued one
    EXPECT_EQ(hist.buckets()[6], 1u); // the 6.6 us one
}

TEST(BusTypes, Names)
{
    EXPECT_STREQ(txTypeName(TxType::ReadShared), "read-shared");
    EXPECT_STREQ(txTypeName(TxType::WriteActionTable),
                 "write-action-table");
    EXPECT_STREQ(actionEntryName(ActionEntry::Protect), "10-protect");
    BusTransaction tx;
    tx.type = TxType::ReadPrivate;
    tx.paddr = 0xabc;
    EXPECT_NE(tx.toString().find("read-private"), std::string::npos);
}

TEST(BusTypes, Classification)
{
    EXPECT_TRUE(isConsistencyRelated(TxType::Notify));
    EXPECT_TRUE(isConsistencyRelated(TxType::WriteBack));
    EXPECT_FALSE(isConsistencyRelated(TxType::WriteActionTable));
    EXPECT_FALSE(isConsistencyRelated(TxType::DmaRead));
    EXPECT_TRUE(movesData(TxType::DmaWrite));
    EXPECT_FALSE(movesData(TxType::AssertOwnership));
}

} // namespace
} // namespace vmp::mem
