/**
 * @file
 * Tests for the trace layer: reference records, binary/text round trips,
 * the synthetic ATUM-like generator's structural properties, and the
 * preset workloads' match to the paper's trace characteristics
 * (Section 5.2: 358k-540k four-byte refs, ~25% OS references, small
 * multiprogramming degree).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "sim/logging.hh"
#include "trace/analyzer.hh"
#include "trace/ref.hh"
#include "trace/synthetic.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"

namespace vmp::trace
{
namespace
{

MemRef
makeRef(Addr va, RefType type, Asid asid = 1, bool sup = false)
{
    MemRef r;
    r.vaddr = va;
    r.type = type;
    r.asid = asid;
    r.supervisor = sup;
    return r;
}

// ----------------------------------------------------------------- ref

TEST(MemRef, Predicates)
{
    EXPECT_TRUE(makeRef(0, RefType::DataWrite).isWrite());
    EXPECT_FALSE(makeRef(0, RefType::DataRead).isWrite());
    EXPECT_TRUE(makeRef(0, RefType::InstrFetch).isFetch());
}

TEST(MemRef, ToStringMentionsFields)
{
    const auto s = makeRef(0x1234, RefType::DataWrite, 3, true).toString();
    EXPECT_NE(s.find("write"), std::string::npos);
    EXPECT_NE(s.find("asid=3"), std::string::npos);
    EXPECT_NE(s.find("1234"), std::string::npos);
    EXPECT_NE(s.find("sup"), std::string::npos);
}

// --------------------------------------------------------------- io

TEST(TraceIo, BinaryRoundTrip)
{
    std::vector<MemRef> refs = {
        makeRef(0x1000, RefType::InstrFetch, 1, false),
        makeRef(0x2004, RefType::DataRead, 2, true),
        makeRef(0xdeadbeef, RefType::DataWrite, 255, false),
    };
    std::stringstream ss;
    BinaryTraceWriter writer(ss);
    for (const auto &r : refs)
        writer.write(r);
    EXPECT_EQ(writer.written(), 3u);

    BinaryTraceReader reader(ss);
    MemRef r;
    for (const auto &want : refs) {
        ASSERT_TRUE(reader.next(r));
        EXPECT_EQ(r, want);
    }
    EXPECT_FALSE(reader.next(r));
}

TEST(TraceIo, BinaryRejectsBadMagic)
{
    std::stringstream ss;
    ss << "NOPE....";
    EXPECT_THROW(BinaryTraceReader reader(ss), FatalError);
}

TEST(TraceIo, TextRoundTrip)
{
    std::vector<MemRef> refs = {
        makeRef(0x1000, RefType::InstrFetch, 1, false),
        makeRef(0x18000000, RefType::DataWrite, 7, true),
    };
    std::stringstream ss;
    TextTraceWriter writer(ss);
    for (const auto &r : refs)
        writer.write(r);

    TextTraceReader reader(ss);
    MemRef r;
    for (const auto &want : refs) {
        ASSERT_TRUE(reader.next(r));
        EXPECT_EQ(r, want);
    }
    EXPECT_FALSE(reader.next(r));
}

TEST(TraceIo, TextSkipsCommentsAndBlanks)
{
    std::stringstream ss;
    ss << "# a comment\n\nifetch 1 0x100 4 usr # trailing\n";
    TextTraceReader reader(ss);
    MemRef r;
    ASSERT_TRUE(reader.next(r));
    EXPECT_EQ(r.vaddr, 0x100u);
    EXPECT_FALSE(reader.next(r));
}

TEST(TraceIo, TextRejectsMalformed)
{
    std::stringstream ss;
    ss << "launder 1 0x100 4 usr\n";
    TextTraceReader reader(ss);
    MemRef r;
    EXPECT_THROW(reader.next(r), FatalError);
}

TEST(TraceIo, VectorSourceAndLimit)
{
    VectorRefSource vec({makeRef(1, RefType::DataRead),
                         makeRef(2, RefType::DataRead),
                         makeRef(3, RefType::DataRead)});
    LimitedRefSource limited(vec, 2);
    const auto got = collect(limited);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].vaddr, 1u);
    EXPECT_EQ(got[1].vaddr, 2u);
}

// ----------------------------------------------------------- synthetic

TEST(Synthetic, ProducesExactlyTotalRefs)
{
    SyntheticConfig cfg;
    cfg.totalRefs = 10'000;
    SyntheticGen gen(cfg);
    MemRef r;
    std::uint64_t n = 0;
    while (gen.next(r))
        ++n;
    EXPECT_EQ(n, 10'000u);
    EXPECT_EQ(gen.produced(), 10'000u);
}

TEST(Synthetic, DeterministicForSeed)
{
    SyntheticConfig cfg;
    cfg.totalRefs = 5'000;
    cfg.seed = 99;
    SyntheticGen a(cfg), b(cfg);
    MemRef ra, rb;
    while (a.next(ra)) {
        ASSERT_TRUE(b.next(rb));
        ASSERT_EQ(ra, rb);
    }
    EXPECT_FALSE(b.next(rb));
}

TEST(Synthetic, DifferentSeedsDiffer)
{
    SyntheticConfig cfg;
    cfg.totalRefs = 2'000;
    cfg.seed = 1;
    SyntheticGen a(cfg);
    cfg.seed = 2;
    SyntheticGen b(cfg);
    MemRef ra, rb;
    bool differ = false;
    while (a.next(ra) && b.next(rb))
        differ = differ || !(ra == rb);
    EXPECT_TRUE(differ);
}

TEST(Synthetic, SupervisorFractionTracksTarget)
{
    SyntheticConfig cfg;
    cfg.totalRefs = 200'000;
    cfg.osRefFrac = 0.25;
    SyntheticGen gen(cfg);
    TraceAnalyzer analyzer;
    analyzer.consume(gen);
    const auto prof = analyzer.profile();
    EXPECT_NEAR(prof.supervisorFrac(), 0.25, 0.03);
}

TEST(Synthetic, ZeroOsFractionMeansNoSupervisorRefs)
{
    SyntheticConfig cfg;
    cfg.totalRefs = 20'000;
    cfg.osRefFrac = 0.0;
    SyntheticGen gen(cfg);
    MemRef r;
    while (gen.next(r))
        ASSERT_FALSE(r.supervisor);
}

TEST(Synthetic, MultiprogrammingUsesDistinctAsids)
{
    SyntheticConfig cfg;
    cfg.totalRefs = 100'000;
    cfg.processes = 3;
    cfg.quantumRefs = 10'000;
    SyntheticGen gen(cfg);
    TraceAnalyzer analyzer;
    analyzer.consume(gen);
    EXPECT_EQ(analyzer.profile().asidsSeen, 3u);
}

TEST(Synthetic, SupervisorRefsLandInKernelRegion)
{
    SyntheticConfig cfg;
    cfg.totalRefs = 50'000;
    SyntheticGen gen(cfg);
    MemRef r;
    while (gen.next(r)) {
        if (r.supervisor) {
            EXPECT_GE(r.vaddr, kernelBase);
            EXPECT_LT(r.vaddr, userBase);
        } else {
            EXPECT_GE(r.vaddr, userBase);
        }
    }
}

TEST(Synthetic, RefsAreWordSizedAndAligned)
{
    SyntheticConfig cfg;
    cfg.totalRefs = 20'000;
    SyntheticGen gen(cfg);
    MemRef r;
    while (gen.next(r)) {
        EXPECT_EQ(r.size, 4u);
        EXPECT_EQ(r.vaddr % 4, 0u);
    }
}

TEST(Synthetic, FetchesShowSequentialLocality)
{
    SyntheticConfig cfg;
    cfg.totalRefs = 50'000;
    SyntheticGen gen(cfg);
    MemRef r;
    Addr last_fetch = 0;
    std::uint64_t fetches = 0, sequential = 0;
    while (gen.next(r)) {
        if (!r.isFetch())
            continue;
        if (last_fetch != 0 && r.vaddr == last_fetch + 4)
            ++sequential;
        last_fetch = r.vaddr;
        ++fetches;
    }
    ASSERT_GT(fetches, 10'000u);
    // Most consecutive fetches continue the current run.
    EXPECT_GT(static_cast<double>(sequential) /
                  static_cast<double>(fetches),
              0.5);
}

TEST(Synthetic, ConfigValidationRejectsNonsense)
{
    SyntheticConfig cfg;
    cfg.totalRefs = 0;
    EXPECT_THROW(SyntheticGen{cfg}, FatalError);
    cfg = SyntheticConfig{};
    cfg.osRefFrac = 1.5;
    EXPECT_THROW(SyntheticGen{cfg}, FatalError);
    cfg = SyntheticConfig{};
    cfg.dataRefProb = -0.5;
    EXPECT_THROW(SyntheticGen{cfg}, FatalError);
    cfg = SyntheticConfig{};
    cfg.processes = 0;
    EXPECT_THROW(SyntheticGen{cfg}, FatalError);
}

TEST(Synthetic, AsidBaseOffsetsAddressSpaces)
{
    SyntheticConfig cfg;
    cfg.totalRefs = 20'000;
    cfg.processes = 2;
    cfg.quantumRefs = 5'000;
    cfg.asidBase = 40;
    SyntheticGen gen(cfg);
    MemRef r;
    while (gen.next(r)) {
        EXPECT_GE(r.asid, 40);
        EXPECT_LE(r.asid, 41);
    }
}

TEST(Synthetic, KernelOffsetSeparatesKernelImages)
{
    // Two generators with distinct kernel offsets must touch disjoint
    // supervisor addresses (private pseudo-kernels).
    auto make = [](Addr offset) {
        SyntheticConfig cfg;
        cfg.totalRefs = 20'000;
        cfg.seed = 5;
        cfg.kernelOffset = offset;
        return cfg;
    };
    std::set<Addr> first, second;
    {
        SyntheticGen gen(make(0));
        MemRef r;
        while (gen.next(r))
            if (r.supervisor)
                first.insert(r.vaddr);
    }
    {
        SyntheticGen gen(make(0x20'0000));
        MemRef r;
        while (gen.next(r))
            if (r.supervisor)
                second.insert(r.vaddr);
    }
    ASSERT_FALSE(first.empty());
    ASSERT_FALSE(second.empty());
    for (const Addr va : second)
        EXPECT_EQ(first.count(va), 0u);
}

TEST(Synthetic, KernelOffsetValidated)
{
    SyntheticConfig cfg;
    cfg.kernelOffset = userBase; // way outside the kernel region
    EXPECT_THROW(SyntheticGen{cfg}, FatalError);
}

TEST(TraceIo, BinaryRejectsCorruptType)
{
    std::stringstream ss;
    BinaryTraceWriter writer(ss);
    writer.write(MemRef{});
    // Corrupt the type byte of the first record (offset 8 + 8 + 1).
    std::string raw = ss.str();
    raw[8 + 9] = 0x7f;
    std::stringstream corrupted(raw);
    BinaryTraceReader reader(corrupted);
    MemRef r;
    EXPECT_THROW(reader.next(r), FatalError);
}

// ----------------------------------------------------------- workloads

TEST(Workloads, FourPresetsExist)
{
    const auto names = workloadNames();
    ASSERT_EQ(names.size(), 4u);
    for (const auto &name : names) {
        const auto cfg = workloadConfig(name);
        EXPECT_NO_THROW(cfg.check());
    }
    EXPECT_THROW(workloadConfig("atum9"), FatalError);
}

TEST(Workloads, LengthsMatchPaperBand)
{
    // "The trace lengths vary from 358,000 to 540,000 four-byte
    // references."
    for (const auto &cfg : allWorkloads()) {
        EXPECT_GE(cfg.totalRefs, 358'000u);
        EXPECT_LE(cfg.totalRefs, 540'000u);
    }
}

TEST(Workloads, OsFractionNearQuarter)
{
    // "operating system references account for approximately 25% of the
    // references" — checked on the generated streams, subsampled for
    // speed.
    for (const auto &name : workloadNames()) {
        auto cfg = workloadConfig(name);
        cfg.totalRefs = 120'000;
        SyntheticGen gen(cfg);
        TraceAnalyzer analyzer;
        analyzer.consume(gen);
        EXPECT_NEAR(analyzer.profile().supervisorFrac(), 0.25, 0.05)
            << name;
    }
}

TEST(Workloads, FootprintExceedsSmallCachesButHasHotCore)
{
    // The Figure 4 sweep only makes sense if the traces touch more
    // memory than the smallest cache (64K) at the finest page size.
    auto cfg = workloadConfig("atum1");
    SyntheticGen gen(cfg);
    TraceAnalyzer analyzer;
    analyzer.consume(gen);
    const auto prof = analyzer.profile();
    EXPECT_GT(prof.footprintBytes(128), 64u * 1024);
}

// ------------------------------------------------------------ analyzer

TEST(Analyzer, CountsMixAndFootprint)
{
    TraceAnalyzer analyzer({128, 256});
    analyzer.observe(makeRef(0, RefType::InstrFetch, 1));
    analyzer.observe(makeRef(4, RefType::DataRead, 1));
    analyzer.observe(makeRef(130, RefType::DataWrite, 1, true));
    analyzer.observe(makeRef(0, RefType::DataRead, 2));
    const auto prof = analyzer.profile();
    EXPECT_EQ(prof.totalRefs, 4u);
    EXPECT_EQ(prof.fetches, 1u);
    EXPECT_EQ(prof.reads, 2u);
    EXPECT_EQ(prof.writes, 1u);
    EXPECT_EQ(prof.supervisorRefs, 1u);
    EXPECT_EQ(prof.asidsSeen, 2u);
    // asid 1 touches pages {0,1} at 128B; asid 2 touches page 0.
    EXPECT_EQ(prof.uniquePages.at(128), 3u);
    EXPECT_EQ(prof.uniquePages.at(256), 2u);
    EXPECT_DOUBLE_EQ(prof.writeFrac(), 1.0 / 3.0);
}

TEST(Analyzer, RejectsNonPowerOfTwoPageSize)
{
    EXPECT_THROW(TraceAnalyzer({100}), FatalError);
}

} // namespace
} // namespace vmp::trace
