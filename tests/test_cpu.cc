/**
 * @file
 * Tests for the processor models: 68020 timing constants, trace-driven
 * execution (full-speed hits, miss stalls, interrupt service between
 * references) and the scripted-program CPU's instruction set.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/cache.hh"
#include "cpu/program.hh"
#include "cpu/program_cpu.hh"
#include "cpu/timing.hh"
#include "cpu/trace_cpu.hh"
#include "mem/phys_mem.hh"
#include "mem/vme_bus.hh"
#include "monitor/bus_monitor.hh"
#include "proto/controller.hh"
#include "proto/translator.hh"
#include "sim/event.hh"
#include "sim/logging.hh"
#include "trace/synthetic.hh"
#include "trace/trace_io.hh"

namespace vmp::cpu
{
namespace
{

constexpr std::uint32_t pageBytes = 256;
constexpr std::uint64_t memBytes = 1 << 20;

/** Single-board fixture with a demand translator. */
struct CpuFixture : public ::testing::Test
{
    CpuFixture()
        : memory(memBytes, pageBytes), bus(events, memory),
          translator(memBytes, pageBytes, trace::kernelBase,
                     trace::userBase),
          cache(cache::CacheConfig{pageBytes, 4, 16, true}),
          monitor(0, memBytes, pageBytes),
          controller(0, events, cache, monitor, bus, translator)
    {
        bus.attachWatcher(0, monitor);
    }

    EventQueue events;
    mem::PhysMem memory;
    mem::VmeBus bus;
    proto::DemandTranslator translator;
    cache::Cache cache;
    monitor::BusMonitor monitor;
    proto::CacheController controller;
};

// -------------------------------------------------------------- timing

TEST(M68020Timing, PaperConstants)
{
    M68020Timing t;
    // 7 clocks/instr * 60 ns/clock = 420 ns/instr, ~2.4 MIPS.
    EXPECT_EQ(t.instrNs(), 420u);
    EXPECT_NEAR(t.mips(), 2.38, 0.05);
    // 420 / 1.2 refs per instruction = 350 ns per reference.
    EXPECT_EQ(t.refNs(), 350u);
}

// ------------------------------------------------------------ TraceCpu

TEST_F(CpuFixture, HitsRunAtFullSpeed)
{
    // One page touched repeatedly: 1 miss, then hits at refNs each.
    std::vector<trace::MemRef> refs;
    for (int i = 0; i < 100; ++i) {
        trace::MemRef r;
        r.asid = 1;
        r.vaddr = trace::userBase + 4 * (i % 32);
        r.type = trace::RefType::DataRead;
        refs.push_back(r);
    }
    trace::VectorRefSource source(std::move(refs));
    TraceCpu cpu(0, events, controller, source);
    bool finished = false;
    cpu.run([&] { finished = true; });
    events.run();
    ASSERT_TRUE(finished);
    EXPECT_EQ(cpu.refsExecuted(), 100u);
    EXPECT_EQ(controller.misses().value(), 1u);
    // Elapsed = 100 refs * 350 ns + one miss (13.5 + 6.6 us).
    EXPECT_EQ(cpu.elapsed(), 100 * 350 + 13'500 + 6'600);
    EXPECT_NEAR(cpu.missRatio(), 0.01, 1e-9);
    EXPECT_LT(cpu.performance(), 1.0);
    EXPECT_GT(cpu.performance(), 0.6);
}

TEST_F(CpuFixture, ZeroMissWorkloadHasUnitPerformance)
{
    // Touch the page once to warm, then re-run the same CPU? Simpler:
    // performance formula check with a fresh cpu on a warmed cache.
    std::vector<trace::MemRef> warm(1);
    warm[0].asid = 1;
    warm[0].vaddr = trace::userBase;
    warm[0].type = trace::RefType::DataRead;
    trace::VectorRefSource warm_src(warm);
    TraceCpu warm_cpu(0, events, controller, warm_src);
    warm_cpu.run(nullptr);
    events.run();

    std::vector<trace::MemRef> refs(50, warm[0]);
    trace::VectorRefSource source(refs);
    TraceCpu cpu(0, events, controller, source);
    cpu.run(nullptr);
    events.run();
    EXPECT_DOUBLE_EQ(cpu.performance(), 1.0);
    // missRatio uses the controller's (shared) miss counter: the one
    // warm-up miss over this CPU's 50 references.
    EXPECT_DOUBLE_EQ(cpu.missRatio(), 1.0 / 50);
}

TEST_F(CpuFixture, CpuCannotBeStartedTwiceWhileRunning)
{
    trace::MemRef ref;
    ref.asid = 1;
    ref.vaddr = trace::userBase;
    ref.type = trace::RefType::DataRead;
    trace::VectorRefSource source({ref});
    TraceCpu cpu(0, events, controller, source);
    cpu.run(nullptr);
    // Still running (the first step is scheduled, not executed).
    EXPECT_TRUE(cpu.running());
    EXPECT_THROW(cpu.run(nullptr), PanicError);
}

// ---------------------------------------------------------- ProgramCpu

Program
sumProgram(Addr base, std::uint32_t iters)
{
    // r1 = iters; loop: r0 = mem[base]; r0 += 3; mem[base] = r0;
    // dec r1, branch; halt.
    return {
        opMoveImm(1, iters),
        opRead(base, 0),            // 1: loop head
        opAddImm(0, 3),
        opWrite(base, 0),
        opDecBranchNotZero(1, 1),
        opHalt(),
    };
}

TEST_F(CpuFixture, ProgramComputesSum)
{
    const Addr base = trace::userBase + 0x100;
    ProgramCpu cpu(0, events, controller, 1, sumProgram(base, 10));
    bool halted = false;
    cpu.run([&] { halted = true; });
    events.run();
    ASSERT_TRUE(halted);
    EXPECT_EQ(cpu.reg(0), 30u);
    EXPECT_TRUE(cpu.halted());
    EXPECT_GT(cpu.opsRetired(), 30u);
}

TEST_F(CpuFixture, ProgramBranchesAndMoves)
{
    const Program program = {
        opMoveImm(0, 0),
        opBranchIfZero(0, 3),
        opMoveImm(1, 111), // skipped
        opMoveImm(2, 222),
        opBranchIfNotZero(2, 6),
        opMoveImm(3, 333), // skipped
        opJump(7),
        opHalt(),
    };
    ProgramCpu cpu(0, events, controller, 1, program);
    cpu.run(nullptr);
    events.run();
    EXPECT_EQ(cpu.reg(1), 0u);
    EXPECT_EQ(cpu.reg(2), 222u);
    EXPECT_EQ(cpu.reg(3), 0u);
}

TEST_F(CpuFixture, CachedTasReturnsOldValueAndSets)
{
    const Addr lock = trace::userBase + 0x400;
    const Program program = {
        opCachedTas(lock, 0),
        opCachedTas(lock, 1),
        opHalt(),
    };
    ProgramCpu cpu(0, events, controller, 1, program);
    cpu.run(nullptr);
    events.run();
    EXPECT_EQ(cpu.reg(0), 0u);
    EXPECT_EQ(cpu.reg(1), 1u);
}

TEST_F(CpuFixture, UncachedOpsTouchPhysicalMemory)
{
    memory.writeWord(0x8000, 55);
    const Program program = {
        opUncachedRead(0x8000, 0),
        opUncachedWrite(0x8004, 66),
        opUncachedTas(0x8008, 1),
        opUncachedTas(0x8008, 2),
        opHalt(),
    };
    ProgramCpu cpu(0, events, controller, 1, program);
    cpu.run(nullptr);
    events.run();
    EXPECT_EQ(cpu.reg(0), 55u);
    EXPECT_EQ(memory.readWord(0x8004), 66u);
    EXPECT_EQ(cpu.reg(1), 0u);
    EXPECT_EQ(cpu.reg(2), 1u);
}

TEST_F(CpuFixture, WaitNotifyTimesOut)
{
    const Program program = {
        opWaitNotify(5000),
        opMoveImm(0, 1),
        opHalt(),
    };
    ProgramCpu cpu(0, events, controller, 1, program);
    cpu.run(nullptr);
    const Tick start = events.now();
    events.run();
    EXPECT_EQ(cpu.reg(0), 1u);
    EXPECT_GE(events.now() - start, 5000u);
}

TEST_F(CpuFixture, RunawayProgramIsFatal)
{
    const Program program = {
        opJump(0), // infinite loop
    };
    ProgramCpu cpu(0, events, controller, 1, program, M68020Timing{},
                   1000);
    cpu.run(nullptr);
    EXPECT_THROW(events.run(), FatalError);
}

TEST_F(CpuFixture, DelayAdvancesTime)
{
    const Program program = {
        opDelay(12'345),
        opHalt(),
    };
    ProgramCpu cpu(0, events, controller, 1, program);
    cpu.run(nullptr);
    events.run();
    EXPECT_GE(cpu.elapsed(), 12'345u);
}

TEST_F(CpuFixture, RegisterAccessValidation)
{
    ProgramCpu cpu(0, events, controller, 1, {opHalt()});
    EXPECT_THROW(cpu.reg(numRegs), PanicError);
    EXPECT_THROW(cpu.setReg(numRegs, 0), PanicError);
    cpu.setReg(5, 17);
    EXPECT_EQ(cpu.reg(5), 17u);
}

} // namespace
} // namespace vmp::cpu
