/**
 * @file
 * Tests for the bus monitor: action table packing and sizing (Section
 * 3.2 footnote: 16/8/4 KiB for 8 MiB at 128/256/512-byte pages),
 * interrupt FIFO capacity and overflow flag, and the monitor's decision
 * table for every <entry, transaction-type> combination.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "mem/bus_types.hh"
#include "monitor/action_table.hh"
#include "monitor/bus_monitor.hh"
#include "monitor/interrupt_fifo.hh"
#include "sim/logging.hh"

namespace vmp::monitor
{
namespace
{

using mem::ActionEntry;
using mem::BusTransaction;
using mem::TxType;
using mem::WatchVerdict;

BusTransaction
makeTx(TxType type, Addr paddr, std::uint32_t requester = 5)
{
    BusTransaction tx;
    tx.type = type;
    tx.paddr = paddr;
    tx.requester = requester;
    return tx;
}

// -------------------------------------------------------- action table

TEST(ActionTable, SizesMatchPaperFootnote)
{
    // 8 MiB of physical memory: 16 (8, 4) KiB of monitor memory for
    // 128 (256, 512) byte pages — 2 bits per frame.
    EXPECT_EQ(ActionTable(8u << 20, 128).storageBytes(), 16u * 1024);
    EXPECT_EQ(ActionTable(8u << 20, 256).storageBytes(), 8u * 1024);
    EXPECT_EQ(ActionTable(8u << 20, 512).storageBytes(), 4u * 1024);
}

TEST(ActionTable, SetGetAllPatterns)
{
    ActionTable table(64 * 1024, 256);
    const ActionEntry entries[] = {
        ActionEntry::Ignore, ActionEntry::Shared, ActionEntry::Protect,
        ActionEntry::Notify};
    // Neighbouring frames must not clobber each other (packed bits).
    for (std::uint64_t f = 0; f < table.frames(); ++f)
        table.set(f, entries[f % 4]);
    for (std::uint64_t f = 0; f < table.frames(); ++f)
        EXPECT_EQ(table.get(f), entries[f % 4]) << f;
}

TEST(ActionTable, EntryForUsesFrameOfAddress)
{
    ActionTable table(64 * 1024, 256);
    table.setFor(0x300, ActionEntry::Protect);
    EXPECT_EQ(table.get(3), ActionEntry::Protect);
    EXPECT_EQ(table.entryFor(0x3ff), ActionEntry::Protect);
    EXPECT_EQ(table.entryFor(0x400), ActionEntry::Ignore);
}

TEST(ActionTable, ClearAndEnumerate)
{
    ActionTable table(64 * 1024, 256);
    table.set(2, ActionEntry::Shared);
    table.set(7, ActionEntry::Notify);
    EXPECT_EQ(table.nonIgnoredFrames(),
              (std::vector<std::uint64_t>{2, 7}));
    table.clear();
    EXPECT_TRUE(table.nonIgnoredFrames().empty());
}

TEST(ActionTable, BoundsAndValidation)
{
    ActionTable table(64 * 1024, 256);
    EXPECT_THROW(table.get(table.frames()), PanicError);
    EXPECT_THROW(table.set(table.frames(), ActionEntry::Ignore),
                 PanicError);
    EXPECT_THROW(ActionTable(1000, 256), FatalError);
    EXPECT_THROW(ActionTable(64 * 1024, 100), FatalError);
}

// ---------------------------------------------------------------- fifo

TEST(InterruptFifo, FifoOrderAndCapacity)
{
    InterruptFifo fifo(3);
    for (Addr a = 0; a < 3; ++a)
        fifo.push({TxType::ReadPrivate, a, 0});
    EXPECT_EQ(fifo.size(), 3u);
    EXPECT_FALSE(fifo.overflowed());

    fifo.push({TxType::ReadPrivate, 99, 0});
    EXPECT_TRUE(fifo.overflowed());
    EXPECT_EQ(fifo.dropped().value(), 1u);
    EXPECT_EQ(fifo.size(), 3u);

    for (Addr a = 0; a < 3; ++a) {
        const auto word = fifo.pop();
        ASSERT_TRUE(word.has_value());
        EXPECT_EQ(word->paddr, a);
    }
    EXPECT_FALSE(fifo.pop().has_value());
    // Overflow flag is sticky until software clears it.
    EXPECT_TRUE(fifo.overflowed());
    fifo.clearOverflow();
    EXPECT_FALSE(fifo.overflowed());
}

TEST(InterruptFifo, DefaultCapacityIs128)
{
    InterruptFifo fifo;
    EXPECT_EQ(fifo.capacity(), 128u);
    EXPECT_THROW(InterruptFifo(0), FatalError);
}

// -------------------------------------------------- monitor decisions

struct DecisionCase
{
    ActionEntry entry;
    TxType type;
    WatchVerdict want;
};

class MonitorDecisionTest
    : public ::testing::TestWithParam<DecisionCase>
{
};

TEST_P(MonitorDecisionTest, VerdictMatchesSection32Table)
{
    const auto &[entry, type, want] = GetParam();
    BusMonitor monitor(0, 64 * 1024, 256);
    monitor.table().setFor(0x1000, entry);
    EXPECT_EQ(monitor.observe(makeTx(type, 0x1000)), want);
}

std::string
decisionName(const ::testing::TestParamInfo<DecisionCase> &info)
{
    std::string name = mem::actionEntryName(info.param.entry);
    name += "_";
    name += mem::txTypeName(info.param.type);
    for (auto &c : name)
        if (c == '-')
            c = '_';
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllEntries, MonitorDecisionTest,
    ::testing::Values(
        // 00 - do nothing.
        DecisionCase{ActionEntry::Ignore, TxType::ReadShared,
                     WatchVerdict::Ignore},
        DecisionCase{ActionEntry::Ignore, TxType::ReadPrivate,
                     WatchVerdict::Ignore},
        DecisionCase{ActionEntry::Ignore, TxType::AssertOwnership,
                     WatchVerdict::Ignore},
        DecisionCase{ActionEntry::Ignore, TxType::WriteBack,
                     WatchVerdict::Ignore},
        DecisionCase{ActionEntry::Ignore, TxType::Notify,
                     WatchVerdict::Ignore},
        // 01 - interrupt on read-private / assert-ownership; ignore
        // read-shared and notify; write-back is a protocol violation.
        DecisionCase{ActionEntry::Shared, TxType::ReadShared,
                     WatchVerdict::Ignore},
        DecisionCase{ActionEntry::Shared, TxType::ReadPrivate,
                     WatchVerdict::Interrupt},
        DecisionCase{ActionEntry::Shared, TxType::AssertOwnership,
                     WatchVerdict::Interrupt},
        DecisionCase{ActionEntry::Shared, TxType::WriteBack,
                     WatchVerdict::AbortAndInterrupt},
        DecisionCase{ActionEntry::Shared, TxType::Notify,
                     WatchVerdict::Ignore},
        // 10 - abort + interrupt on any consistency-related tx.
        DecisionCase{ActionEntry::Protect, TxType::ReadShared,
                     WatchVerdict::AbortAndInterrupt},
        DecisionCase{ActionEntry::Protect, TxType::ReadPrivate,
                     WatchVerdict::AbortAndInterrupt},
        DecisionCase{ActionEntry::Protect, TxType::AssertOwnership,
                     WatchVerdict::AbortAndInterrupt},
        DecisionCase{ActionEntry::Protect, TxType::WriteBack,
                     WatchVerdict::AbortAndInterrupt},
        DecisionCase{ActionEntry::Protect, TxType::Notify,
                     WatchVerdict::AbortAndInterrupt},
        // 11 - interrupt on notification only.
        DecisionCase{ActionEntry::Notify, TxType::Notify,
                     WatchVerdict::Interrupt},
        DecisionCase{ActionEntry::Notify, TxType::ReadShared,
                     WatchVerdict::Ignore},
        DecisionCase{ActionEntry::Notify, TxType::ReadPrivate,
                     WatchVerdict::Ignore},
        DecisionCase{ActionEntry::Notify, TxType::AssertOwnership,
                     WatchVerdict::Ignore},
        DecisionCase{ActionEntry::Notify, TxType::WriteBack,
                     WatchVerdict::Ignore}),
    decisionName);

// ------------------------------------------------- monitor behaviour

TEST(BusMonitor, NonConsistencyTransactionsIgnored)
{
    BusMonitor monitor(0, 64 * 1024, 256);
    monitor.table().setFor(0, ActionEntry::Protect);
    EXPECT_EQ(monitor.observe(makeTx(TxType::DmaRead, 0)),
              WatchVerdict::Ignore);
    EXPECT_EQ(monitor.observe(makeTx(TxType::DmaWrite, 0)),
              WatchVerdict::Ignore);
    EXPECT_EQ(monitor.observe(makeTx(TxType::WriteActionTable, 0)),
              WatchVerdict::Ignore);
    EXPECT_TRUE(monitor.fifo().empty());
}

TEST(BusMonitor, InterruptQueuesWordAndRaisesLine)
{
    BusMonitor monitor(0, 64 * 1024, 256);
    int raised = 0;
    monitor.setInterruptLine([&] { ++raised; });
    monitor.table().setFor(0x2000, ActionEntry::Shared);

    monitor.observe(makeTx(TxType::ReadPrivate, 0x2010, 3));
    EXPECT_EQ(raised, 1);
    ASSERT_EQ(monitor.fifo().size(), 1u);
    const auto word = monitor.fifo().pop();
    EXPECT_EQ(word->type, TxType::ReadPrivate);
    EXPECT_EQ(word->paddr, 0x2010u);
    EXPECT_EQ(word->requester, 3u);
    EXPECT_EQ(monitor.interrupts().value(), 1u);
    EXPECT_EQ(monitor.abortsIssued().value(), 0u);
}

TEST(BusMonitor, AbortCountsAndStillQueuesWord)
{
    BusMonitor monitor(0, 64 * 1024, 256);
    monitor.table().setFor(0x2000, ActionEntry::Protect);
    monitor.observe(makeTx(TxType::ReadShared, 0x2000));
    EXPECT_EQ(monitor.abortsIssued().value(), 1u);
    EXPECT_EQ(monitor.fifo().size(), 1u);
}

TEST(BusMonitor, SideEffectUpdateWritesTable)
{
    BusMonitor monitor(0, 64 * 1024, 256);
    auto tx = makeTx(TxType::ReadPrivate, 0x4000, 0);
    tx.newEntry = ActionEntry::Protect;
    tx.updatesTable = true;
    monitor.sideEffectUpdate(tx);
    EXPECT_EQ(monitor.table().entryFor(0x4000), ActionEntry::Protect);
}

TEST(BusMonitor, OwnTransactionsAreObservedToo)
{
    // The alias trick of Section 3.3: a processor's own monitor aborts
    // its own read-shared when the processor owns the page privately.
    BusMonitor monitor(4, 64 * 1024, 256);
    monitor.table().setFor(0x600, ActionEntry::Protect);
    EXPECT_EQ(monitor.observe(makeTx(TxType::ReadShared, 0x600, 4)),
              WatchVerdict::AbortAndInterrupt);
}

} // namespace
} // namespace vmp::monitor
