/**
 * @file
 * Tests for the snoopy-cache baseline: MSI write-invalidate and
 * write-update protocol behaviour, bus-cost accounting, snoop-probe
 * counting, and the qualitative properties the Section 6 comparison
 * rests on (update protocols broadcast every shared write; invalidate
 * protocols ping-pong Modified lines; snoop probes scale with bus
 * traffic and processor count).
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "snoopy/snoopy.hh"
#include "trace/synthetic.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"

namespace vmp::snoopy
{
namespace
{

trace::MemRef
makeRef(Addr va, bool write, Asid asid = 1)
{
    trace::MemRef r;
    r.vaddr = va;
    r.asid = asid;
    r.type = write ? trace::RefType::DataWrite
                   : trace::RefType::DataRead;
    return r;
}

SnoopyConfig
smallConfig(Protocol protocol, std::uint32_t cpus)
{
    SnoopyConfig cfg;
    cfg.protocol = protocol;
    cfg.lineBytes = 32;
    cfg.cacheBytes = 8 * 1024;
    cfg.ways = 2;
    cfg.processors = cpus;
    cfg.memBytes = 1 << 20;
    return cfg;
}

TEST(SnoopyConfig, Validation)
{
    SnoopyConfig cfg = smallConfig(Protocol::WriteInvalidate, 1);
    cfg.lineBytes = 24;
    EXPECT_THROW(cfg.check(), FatalError);
    cfg = smallConfig(Protocol::WriteInvalidate, 1);
    cfg.processors = 0;
    EXPECT_THROW(cfg.check(), FatalError);
    cfg = smallConfig(Protocol::WriteInvalidate, 1);
    cfg.ways = 0;
    EXPECT_THROW(cfg.check(), FatalError);
    EXPECT_STREQ(protocolName(Protocol::WriteUpdate), "write-update");
}

TEST(Snoopy, ColdMissThenHits)
{
    SnoopySystem sys(smallConfig(Protocol::WriteInvalidate, 1));
    const Addr va = trace::userBase;
    sys.step(0, makeRef(va, false));
    sys.step(0, makeRef(va + 4, false));
    sys.step(0, makeRef(va + 28, false));
    EXPECT_EQ(sys.result().refs, 3u);
    EXPECT_EQ(sys.result().misses, 1u);
    // Next line misses again.
    sys.step(0, makeRef(va + 32, false));
    EXPECT_EQ(sys.result().misses, 2u);
}

TEST(Snoopy, WriteInvalidateInvalidatesSharers)
{
    SnoopySystem sys(smallConfig(Protocol::WriteInvalidate, 2));
    const Addr va = trace::kernelBase; // shared across ASIDs
    sys.step(0, makeRef(va, false, 1));
    sys.step(1, makeRef(va, false, 2));
    EXPECT_EQ(sys.result().misses, 2u);

    // cpu0 writes: cpu1's copy must be invalidated.
    sys.step(0, makeRef(va, true, 1));
    EXPECT_EQ(sys.result().invalidations, 1u);
    // cpu1's next read misses again (its copy was invalidated).
    sys.step(1, makeRef(va, false, 2));
    EXPECT_EQ(sys.result().misses, 3u);
}

TEST(Snoopy, ModifiedLineFlushedOnRemoteMiss)
{
    SnoopySystem sys(smallConfig(Protocol::WriteInvalidate, 2));
    const Addr va = trace::kernelBase;
    sys.step(0, makeRef(va, true, 1)); // cpu0: Modified
    const auto wb_before = sys.result().writeBacks;
    sys.step(1, makeRef(va, false, 2)); // cpu1 read miss
    EXPECT_EQ(sys.result().writeBacks, wb_before + 1);
}

TEST(Snoopy, WriteUpdateBroadcastsEveryWrite)
{
    SnoopySystem sys(smallConfig(Protocol::WriteUpdate, 2));
    const Addr va = trace::kernelBase;
    sys.step(0, makeRef(va, false, 1));
    sys.step(1, makeRef(va, false, 2));
    for (int i = 0; i < 10; ++i)
        sys.step(0, makeRef(va, true, 1));
    EXPECT_EQ(sys.result().updatesBroadcast, 10u);
    EXPECT_EQ(sys.result().invalidations, 0u);
    // cpu1 still hits (its copy was updated, not invalidated).
    const auto misses = sys.result().misses;
    sys.step(1, makeRef(va, false, 2));
    EXPECT_EQ(sys.result().misses, misses);
}

TEST(Snoopy, WriteOnceFirstWriteThroughSecondLocal)
{
    SnoopySystem sys(smallConfig(Protocol::WriteOnce, 2));
    const Addr va = trace::kernelBase;
    sys.step(0, makeRef(va, false, 1));
    sys.step(1, makeRef(va, false, 2));

    // First write by cpu0: one word write-through, sharer invalidated.
    sys.step(0, makeRef(va, true, 1));
    EXPECT_EQ(sys.result().writeThroughs, 1u);
    EXPECT_EQ(sys.result().invalidations, 1u);

    // Second and third writes: purely local (Reserved -> Modified).
    const auto bus_before = sys.result().busTicks;
    sys.step(0, makeRef(va, true, 1));
    sys.step(0, makeRef(va, true, 1));
    EXPECT_EQ(sys.result().writeThroughs, 1u);
    EXPECT_EQ(sys.result().busTicks, bus_before);

    // cpu1's re-read flushes the now-dirty line.
    const auto wb_before = sys.result().writeBacks;
    sys.step(1, makeRef(va, false, 2));
    EXPECT_EQ(sys.result().writeBacks, wb_before + 1);
}

TEST(Snoopy, WriteOnceWriteMissWritesThroughOnce)
{
    SnoopySystem sys(smallConfig(Protocol::WriteOnce, 1));
    sys.step(0, makeRef(trace::userBase, true, 1));
    EXPECT_EQ(sys.result().misses, 1u);
    EXPECT_EQ(sys.result().writeThroughs, 1u);
    // Follow-up write is local.
    sys.step(0, makeRef(trace::userBase + 4, true, 1));
    EXPECT_EQ(sys.result().writeThroughs, 1u);
    EXPECT_STREQ(protocolName(Protocol::WriteOnce), "write-once");
}

TEST(Snoopy, WriteOnceCheaperThanUpdateOnPrivateWrites)
{
    // Repeated private writes: write-update pays the bus every time,
    // write-once only on the first write per line.
    auto run = [](Protocol protocol) {
        SnoopySystem sys(smallConfig(protocol, 2));
        for (int i = 0; i < 50; ++i)
            sys.step(0, makeRef(trace::userBase, true, 1));
        return sys.result().busTicks;
    };
    EXPECT_LT(run(Protocol::WriteOnce), run(Protocol::WriteUpdate));
}

TEST(Snoopy, SnoopProbesScaleWithProcessors)
{
    // The same trace against 2 and 4 processors: more caches means
    // more tag probes per bus transaction.
    auto run = [](std::uint32_t cpus) {
        SnoopySystem sys(smallConfig(Protocol::WriteInvalidate, cpus));
        for (int i = 0; i < 100; ++i)
            sys.step(0, makeRef(trace::userBase + i * 64, true, 1));
        return sys.result().snoopProbes;
    };
    EXPECT_GT(run(4), run(2));
}

TEST(Snoopy, LruEvictionWithinSet)
{
    // The cache is physically indexed and physical frames are handed
    // out in touch order, so walking (capacity + 1) distinct lines
    // wraps the sets and evicts the LRU line of set 0 — the first one.
    auto cfg = smallConfig(Protocol::WriteInvalidate, 1);
    SnoopySystem sys(cfg);
    const std::uint64_t lines = cfg.cacheBytes / cfg.lineBytes;
    for (std::uint64_t i = 0; i <= lines; ++i)
        sys.step(0, makeRef(trace::userBase + i * cfg.lineBytes,
                            false));
    EXPECT_EQ(sys.result().misses, lines + 1);
    // The first line was evicted; re-touching it misses again.
    sys.step(0, makeRef(trace::userBase, false));
    EXPECT_EQ(sys.result().misses, lines + 2);
}

TEST(Snoopy, RunInterleavesSources)
{
    SnoopySystem sys(smallConfig(Protocol::WriteInvalidate, 2));
    trace::VectorRefSource a({makeRef(trace::userBase, false, 1),
                              makeRef(trace::userBase + 4, false, 1)});
    trace::VectorRefSource b({makeRef(trace::userBase, false, 2)});
    const auto result = sys.run({&a, &b});
    EXPECT_EQ(result.refs, 3u);
    EXPECT_FALSE(result.toString().empty());
}

TEST(Snoopy, DirtyEvictionWritesBack)
{
    auto cfg = smallConfig(Protocol::WriteInvalidate, 1);
    SnoopySystem sys(cfg);
    const std::uint64_t lines = cfg.cacheBytes / cfg.lineBytes;
    sys.step(0, makeRef(trace::userBase, true)); // dirty line 0
    // Walk the rest of the capacity plus one: evicts the dirty line.
    for (std::uint64_t i = 1; i <= lines; ++i)
        sys.step(0, makeRef(trace::userBase + i * cfg.lineBytes,
                            false));
    EXPECT_EQ(sys.result().writeBacks, 1u);
}

TEST(Snoopy, SmallerLinesMissMoreOnSequentialCode)
{
    auto run = [](std::uint32_t line_bytes) {
        auto cfg = smallConfig(Protocol::WriteInvalidate, 1);
        cfg.lineBytes = line_bytes;
        cfg.cacheBytes = 64 * 1024;
        SnoopySystem sys(cfg);
        auto wl = trace::workloadConfig("atum1");
        wl.totalRefs = 60'000;
        trace::SyntheticGen gen(wl);
        trace::MemRef ref;
        while (gen.next(ref))
            sys.step(0, ref);
        return sys.result().missRatio();
    };
    EXPECT_GT(run(16), run(64));
}

} // namespace
} // namespace vmp::snoopy
