/**
 * @file
 * Unit tests for the simulation base library: event queue, RNG and
 * distributions, statistics and table rendering, logging behaviour.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "sim/debug.hh"
#include "sim/event.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace vmp
{
namespace
{

// --------------------------------------------------------------- types

TEST(Types, UnitHelpers)
{
    EXPECT_EQ(nsec(300), 300u);
    EXPECT_EQ(usec(17), 17'000u);
    EXPECT_EQ(msec(2), 2'000'000u);
    EXPECT_DOUBLE_EQ(toUsec(usec(21)), 21.0);
    EXPECT_EQ(KiB(256), 256u * 1024);
    EXPECT_EQ(MiB(8), 8u * 1024 * 1024);
}

TEST(Types, PowerOfTwoHelpers)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(256));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(384));
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(512), 9u);
    EXPECT_EQ(alignDown(0x1234, 256), 0x1200u);
    EXPECT_EQ(alignUp(0x1201, 256), 0x1300u);
    EXPECT_EQ(alignUp(0x1200, 256), 0x1200u);
}

// -------------------------------------------------------------- events

TEST(EventQueue, DispatchesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
    EXPECT_EQ(eq.dispatched(), 3u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(100, [&order, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleFromCallback)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] {
        eq.scheduleIn(10, [&] { fired = 1; });
    });
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 15u);
}

TEST(EventQueue, Deschedule)
{
    EventQueue eq;
    bool ran = false;
    EventId id = eq.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(eq.deschedule(id));
    EXPECT_FALSE(id.valid());
    EXPECT_FALSE(eq.deschedule(id));
    eq.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, RunWithLimitStopsAndAdvancesClock)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(100, [&] { ++count; });
    eq.run(50);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, PastSchedulingPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(50, [] {}), PanicError);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.reset();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.now(), 0u);
}

// ----------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42), c(43);
    bool all_equal = true, any_diff_c = false;
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next();
        all_equal = all_equal && (va == b.next());
        any_diff_c = any_diff_c || (va != c.next());
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_diff_c);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 10'000; ++i)
        EXPECT_LT(rng.below(37), 37u);
}

TEST(Rng, BetweenInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10'000; ++i) {
        const auto v = rng.between(3, 6);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 6u);
        saw_lo = saw_lo || v == 3;
        saw_hi = saw_hi || v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, GeometricMeanMatches)
{
    Rng rng(13);
    const double p = 0.125;
    double sum = 0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(p));
    EXPECT_NEAR(sum / n, 1.0 / p, 0.15);
    EXPECT_EQ(rng.geometric(1.0), 1u);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng rng(17);
    double sum = 0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(250.0);
    EXPECT_NEAR(sum / n, 250.0, 5.0);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(19);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
}

TEST(Zipf, RankZeroIsHottest)
{
    Rng rng(23);
    ZipfDist dist(100, 1.0);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 50'000; ++i)
        ++counts[dist.sample(rng)];
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[10], counts[90]);
}

TEST(Zipf, CoversDomainAndStaysInRange)
{
    Rng rng(29);
    ZipfDist dist(16, 0.5);
    std::vector<bool> seen(16, false);
    for (int i = 0; i < 20'000; ++i) {
        const auto v = dist.sample(rng);
        ASSERT_LT(v, 16u);
        seen[v] = true;
    }
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Zipf, ThetaZeroIsUniform)
{
    Rng rng(31);
    ZipfDist dist(10, 0.0);
    std::vector<int> counts(10, 0);
    const int n = 100'000;
    for (int i = 0; i < n; ++i)
        ++counts[dist.sample(rng)];
    for (int c : counts)
        EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
}

// --------------------------------------------------------------- stats

TEST(Stats, CounterBasics)
{
    Counter c;
    ++c;
    c += 4;
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, HistogramBucketsAndMoments)
{
    Histogram h(10, 1.0);
    h.sample(0.5);
    h.sample(1.5);
    h.sample(1.7);
    h.sample(99.0); // overflow bucket
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 2u);
    EXPECT_EQ(h.buckets()[9], 1u);
    EXPECT_DOUBLE_EQ(h.min(), 0.5);
    EXPECT_DOUBLE_EQ(h.max(), 99.0);
    EXPECT_NEAR(h.mean(), (0.5 + 1.5 + 1.7 + 99.0) / 4, 1e-9);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
}

TEST(Stats, StatGroupDump)
{
    Counter c;
    c += 7;
    Scalar s;
    s.set(2.5);
    StatGroup g("cpu0");
    g.addCounter("misses", "cache misses", c);
    g.addScalar("busy", "busy fraction", s);
    std::ostringstream os;
    g.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("cpu0.misses"), std::string::npos);
    EXPECT_NE(out.find("7"), std::string::npos);
    EXPECT_NE(out.find("cpu0.busy"), std::string::npos);
    EXPECT_NE(out.find("cache misses"), std::string::npos);
}

TEST(Stats, StatGroupRejectsDuplicateNames)
{
    Counter c;
    Scalar s;
    Histogram h(4, 1.0);
    StatGroup g("cpu0");
    g.addCounter("misses", "cache misses", c);
    // Duplicates are rejected across all three stat kinds: a second
    // "misses" would silently shadow the first in dumps and JSON.
    EXPECT_THROW(g.addCounter("misses", "again", c), PanicError);
    EXPECT_THROW(g.addScalar("misses", "as a scalar", s), PanicError);
    EXPECT_THROW(g.addHistogram("misses", "as a histogram", h),
                 PanicError);
    g.addScalar("busy", "busy fraction", s);
    EXPECT_THROW(g.addCounter("busy", "as a counter", c), PanicError);
    g.addHistogram("delay", "queue delay", h);
    EXPECT_THROW(g.addHistogram("delay", "again", h), PanicError);
}

TEST(Stats, TableWriterRendersAlignedRows)
{
    TableWriter t("Table 1");
    t.columns({"Page", "Elapsed", "Bus"});
    t.row().cell(std::uint64_t{128}).cell(17.0, 1).cell(3.5, 1);
    t.row().cell(std::uint64_t{256}).cell(20.0, 1).cell(6.6, 1);
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("== Table 1 =="), std::string::npos);
    EXPECT_NE(out.find("Page"), std::string::npos);
    EXPECT_NE(out.find("17.0"), std::string::npos);
    EXPECT_NE(out.find("6.6"), std::string::npos);
}

// ------------------------------------------------------------- logging

TEST(Logging, PanicAndFatalThrowTypedErrors)
{
    EXPECT_THROW(panic("broken ", 42), PanicError);
    EXPECT_THROW(fatal("bad config ", 1.5), FatalError);
    try {
        panic("value=", 3, " end");
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "panic: value=3 end");
    }
}

// --------------------------------------------------------------- debug

namespace debugtest
{
std::vector<std::string> captured;
void
capture(const std::string &line)
{
    captured.push_back(line);
}
} // namespace debugtest

TEST(Debug, FlagParsing)
{
    using namespace vmp::debug;
    EXPECT_EQ(parseFlags(""), 0u);
    EXPECT_EQ(parseFlags("Bus"), Bus);
    EXPECT_EQ(parseFlags("Bus,Proto"), Bus | Proto);
    EXPECT_EQ(parseFlags("all"), All);
    EXPECT_THROW(parseFlags("Bogus"), FatalError);
}

TEST(Debug, EnableDisableAndNames)
{
    using namespace vmp::debug;
    setFlags(0);
    EXPECT_FALSE(enabled(Vm));
    enable(Vm);
    EXPECT_TRUE(enabled(Vm));
    disable(Vm);
    EXPECT_FALSE(enabled(Vm));
    EXPECT_STREQ(flagName(Cache), "Cache");
    EXPECT_STREQ(flagName(Monitor), "Monitor");
    setFlags(0);
}

TEST(Debug, EmitFormatsTickFlagMessage)
{
    using namespace vmp::debug;
    debugtest::captured.clear();
    setSink(debugtest::capture);
    setFlags(Bus);
    VMP_DTRACE(Bus, Tick{1234}, "hello ", 42);
    VMP_DTRACE(Proto, Tick{99}, "suppressed");
    setFlags(0);
    setSink(nullptr);
    ASSERT_EQ(debugtest::captured.size(), 1u);
    EXPECT_EQ(debugtest::captured[0], "1234: Bus: hello 42");
}

// ------------------------------------------------ event queue stress

TEST(EventQueue, RandomizedStressAgainstReferenceModel)
{
    // Schedule/deschedule randomly and verify dispatch order against
    // a simple reference: events fire in (time, insertion) order.
    Rng rng(2024);
    EventQueue eq;
    std::vector<std::pair<Tick, int>> fired;
    struct Planned
    {
        Tick when;
        int id;
        EventId handle;
        bool cancelled;
    };
    std::vector<Planned> planned;

    int next_id = 0;
    for (int round = 0; round < 200; ++round) {
        const Tick when = eq.now() + rng.below(1000);
        const int id = next_id++;
        Planned p{when, id, {}, false};
        p.handle = eq.schedule(when, [&fired, &eq, id] {
            fired.emplace_back(eq.now(), id);
        });
        planned.push_back(p);
        // Randomly cancel an earlier still-pending event.
        if (rng.chance(0.25) && !planned.empty()) {
            auto &victim = planned[rng.below(planned.size())];
            if (!victim.cancelled &&
                eq.deschedule(victim.handle)) {
                victim.cancelled = true;
            }
        }
        // Occasionally run a little.
        if (rng.chance(0.3))
            eq.run(eq.now() + rng.below(500));
    }
    eq.run();

    // Everything not cancelled fired exactly once, at its time, in
    // global time order.
    std::size_t expected = 0;
    for (const auto &p : planned)
        expected += p.cancelled ? 0 : 1;
    EXPECT_EQ(fired.size(), expected);
    for (std::size_t i = 1; i < fired.size(); ++i)
        EXPECT_LE(fired[i - 1].first, fired[i].first);
    for (const auto &p : planned) {
        const auto it = std::find_if(
            fired.begin(), fired.end(),
            [&p](const auto &f) { return f.second == p.id; });
        if (p.cancelled) {
            EXPECT_EQ(it, fired.end()) << p.id;
        } else {
            ASSERT_NE(it, fired.end()) << p.id;
            EXPECT_EQ(it->first, p.when);
        }
    }
}

TEST(Logging, InformToggle)
{
    setInformEnabled(false);
    EXPECT_FALSE(informEnabled());
    setInformEnabled(true);
    EXPECT_TRUE(informEnabled());
}

// ------------------------------------------------------ rng boundaries

TEST(Rng, GeometricTinyProbabilityStaysBounded)
{
    // With p = 1e-12 the inverse-CDF value can be astronomically
    // large; the result must be clamped before the double -> uint64_t
    // cast (which is UB when the value exceeds 2^64 - 1) and every
    // draw must still be at least one trial.
    Rng rng(101);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.geometric(1e-12);
        EXPECT_GE(v, 1u);
    }
}

TEST(Rng, GeometricExtremeProbabilityClampsToMax)
{
    // p small enough that essentially every draw exceeds the uint64_t
    // range: the clamp must return max() rather than invoking UB.
    Rng rng(103);
    bool saw_clamp = false;
    for (int i = 0; i < 100; ++i) {
        const auto v = rng.geometric(1e-21);
        EXPECT_GE(v, 1u);
        if (v == std::numeric_limits<std::uint64_t>::max())
            saw_clamp = true;
    }
    EXPECT_TRUE(saw_clamp);
}

// ------------------------------------------------- histogram underflow

TEST(Stats, HistogramUnderflowCounterKeepsBucketsClean)
{
    Histogram h(4, 1.0);
    h.sample(-0.5);
    h.sample(-3.0, 2);
    h.sample(0.25);
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_EQ(h.underflow(), 3u);
    // Negative samples must not be folded into bucket 0.
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 0u);
    // Moments remain negative-aware.
    EXPECT_DOUBLE_EQ(h.min(), -3.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.25);
    EXPECT_NEAR(h.mean(), (-0.5 - 3.0 - 3.0 + 0.25) / 4.0, 1e-12);
    h.reset();
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.samples(), 0u);
}

TEST(Stats, HistogramPositivePathUnaffectedByUnderflowCounter)
{
    Histogram h(4, 2.0);
    h.sample(0.0);
    h.sample(1.99);
    h.sample(2.0);
    h.sample(100.0); // overflow -> top bucket
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[3], 1u);
}

// ------------------------------------------------------ json documents

TEST(Json, ScalarsAndAccessors)
{
    EXPECT_TRUE(Json().isNull());
    EXPECT_TRUE(Json(true).asBool());
    EXPECT_DOUBLE_EQ(Json(2.5).asNumber(), 2.5);
    EXPECT_EQ(Json(std::uint64_t{42}).asUint(), 42u);
    EXPECT_EQ(Json("hello").asString(), "hello");
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    Json obj = Json::object();
    obj["zebra"] = Json(1);
    obj["alpha"] = Json(2);
    obj["mid"] = Json(3);
    const auto &members = obj.members();
    ASSERT_EQ(members.size(), 3u);
    EXPECT_EQ(members[0].first, "zebra");
    EXPECT_EQ(members[1].first, "alpha");
    EXPECT_EQ(members[2].first, "mid");
    EXPECT_EQ(obj.dump(0), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
}

TEST(Json, NumberRenderingIsDeterministic)
{
    // Exact integers print without fraction; non-integers round-trip.
    EXPECT_EQ(Json::numberToString(0.0), "0");
    EXPECT_EQ(Json::numberToString(42.0), "42");
    EXPECT_EQ(Json::numberToString(-7.0), "-7");
    EXPECT_EQ(Json(std::uint64_t{1} << 40).dump(0), "1099511627776");
    const std::string third = Json::numberToString(1.0 / 3.0);
    EXPECT_DOUBLE_EQ(std::stod(third), 1.0 / 3.0);
    const std::string tenth = Json::numberToString(0.1);
    EXPECT_DOUBLE_EQ(std::stod(tenth), 0.1);
}

TEST(Json, DumpParseRoundTrip)
{
    Json doc = Json::object();
    doc["name"] = Json("fig4 \"sweep\"\n");
    doc["count"] = Json(std::uint64_t{123456789});
    doc["ratio"] = Json(0.0024);
    doc["ok"] = Json(true);
    doc["none"] = Json();
    Json arr = Json::array();
    arr.push(Json(1));
    arr.push(Json("two"));
    arr.push(Json(false));
    doc["mixed"] = std::move(arr);

    for (const int indent : {0, 2, 4}) {
        const Json parsed = Json::parse(doc.dump(indent));
        EXPECT_EQ(parsed, doc) << "indent=" << indent;
    }
    // Round-tripping the dump again is byte-identical (stable writer).
    EXPECT_EQ(Json::parse(doc.dump()).dump(), doc.dump());
}

TEST(Json, ParseHandlesEscapesAndNesting)
{
    const Json v = Json::parse(
        "{\"s\": \"a\\\"b\\\\c\\n\\t\\u0041\", \"a\": [[1, 2], "
        "{\"x\": -3.5e2}]}");
    EXPECT_EQ(v.get("s").asString(), "a\"b\\c\n\tA");
    EXPECT_DOUBLE_EQ(
        v.get("a").at(1).get("x").asNumber(), -350.0);
}

TEST(Json, ParseRejectsMalformedInput)
{
    EXPECT_THROW(Json::parse(""), FatalError);
    EXPECT_THROW(Json::parse("{\"a\": 1,}"), FatalError);
    EXPECT_THROW(Json::parse("[1, 2] trailing"), FatalError);
    EXPECT_THROW(Json::parse("{\"a\" 1}"), FatalError);
    EXPECT_THROW(Json::parse("\"unterminated"), FatalError);
    EXPECT_THROW(Json::parse("nul"), FatalError);
}

TEST(Json, TypeMismatchPanics)
{
    EXPECT_THROW(Json("str").asNumber(), PanicError);
    EXPECT_THROW(Json(1.0).asString(), PanicError);
    EXPECT_THROW(Json::object().get("missing"), PanicError);
    EXPECT_THROW(Json::array().at(0), PanicError);
}

// --------------------------------------------------- stats -> registry

TEST(Stats, StatGroupSerializesHistograms)
{
    Counter c;
    c += 11;
    Histogram h(4, 1.0);
    h.sample(0.5);
    h.sample(2.5);
    h.sample(-1.0);
    StatGroup g("bus");
    g.addCounter("transactions", "bus transactions", c);
    g.addHistogram("queue_delay_us", "queueing delay", h);

    const Json j = g.toJson();
    EXPECT_EQ(j.get("transactions").asUint(), 11u);
    const Json &hist = j.get("queue_delay_us");
    EXPECT_EQ(hist.get("samples").asUint(), 3u);
    EXPECT_EQ(hist.get("underflow").asUint(), 1u);
    EXPECT_DOUBLE_EQ(hist.get("bucket_width").asNumber(), 1.0);
    ASSERT_EQ(hist.get("buckets").size(), 4u);
    EXPECT_EQ(hist.get("buckets").at(0).asUint(), 1u);
    EXPECT_EQ(hist.get("buckets").at(2).asUint(), 1u);

    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("bus.queue_delay_us"), std::string::npos);
}

TEST(Stats, StatRegistryAggregatesGroups)
{
    Counter c0, c1;
    c0 += 1;
    c1 += 2;
    StatGroup g0("cpu0"), g1("cpu1");
    g0.addCounter("misses", "m", c0);
    g1.addCounter("misses", "m", c1);
    StatRegistry registry;
    registry.add(g0);
    registry.add(g1);
    EXPECT_EQ(registry.size(), 2u);
    const Json j = registry.toJson();
    EXPECT_EQ(j.get("cpu0").get("misses").asUint(), 1u);
    EXPECT_EQ(j.get("cpu1").get("misses").asUint(), 2u);

    StatGroup dup("cpu0");
    EXPECT_THROW(registry.add(dup), PanicError);
}

} // namespace
} // namespace vmp
