/**
 * @file
 * System-level integration tests: whole-machine configuration, multi-
 * processor trace runs, scripted-program coherence (parallel counters
 * under a lock), the fast functional simulator used for Figure 4, and
 * end-to-end protocol invariants.
 */

#include <gtest/gtest.h>

#include "core/fast_sim.hh"
#include "core/system.hh"
#include "cpu/program.hh"
#include "sim/logging.hh"
#include "trace/synthetic.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"

namespace vmp::core
{
namespace
{

VmpConfig
smallConfig(std::uint32_t processors)
{
    VmpConfig cfg;
    cfg.processors = processors;
    cfg.cache = cache::CacheConfig{256, 2, 16, true};
    cfg.memBytes = MiB(1);
    return cfg;
}

trace::SyntheticConfig
tinyWorkload(std::uint64_t refs, std::uint64_t seed)
{
    auto cfg = trace::workloadConfig("atum2");
    cfg.totalRefs = refs;
    cfg.seed = seed;
    return cfg;
}

// --------------------------------------------------------- VmpSystem

TEST(VmpSystem, ConfigValidation)
{
    VmpConfig cfg = smallConfig(0);
    EXPECT_THROW(VmpSystem{cfg}, FatalError);
    cfg = smallConfig(1);
    cfg.memBytes = 1000;
    EXPECT_THROW(VmpSystem{cfg}, FatalError);
    cfg = smallConfig(1);
    cfg.fifoCapacity = 0;
    EXPECT_THROW(VmpSystem{cfg}, FatalError);
}

TEST(VmpSystem, SingleCpuTraceRun)
{
    VmpSystem system(smallConfig(1));
    trace::SyntheticGen gen(tinyWorkload(20'000, 7));
    const auto result = system.runTraces({&gen});
    EXPECT_EQ(result.totalRefs, 20'000u);
    EXPECT_GT(result.totalMisses, 0u);
    EXPECT_GT(result.missRatio, 0.0);
    EXPECT_LT(result.missRatio, 0.2);
    EXPECT_GT(result.performance, 0.05);
    EXPECT_LE(result.performance, 1.0);
    EXPECT_GT(result.busUtilization, 0.0);
    EXPECT_LT(result.busUtilization, 1.0);
    EXPECT_FALSE(result.toString().empty());
}

TEST(VmpSystem, TooManyTracesRejected)
{
    VmpSystem system(smallConfig(1));
    trace::VectorRefSource a({}), b({});
    EXPECT_THROW(system.runTraces({&a, &b}), FatalError);
}

TEST(VmpSystem, MultiCpuRunSharesKernelPages)
{
    VmpSystem system(smallConfig(2));
    trace::SyntheticGen gen0(tinyWorkload(15'000, 11));
    trace::SyntheticGen gen1(tinyWorkload(15'000, 22));
    const auto result = system.runTraces({&gen0, &gen1});
    EXPECT_EQ(result.totalRefs, 30'000u);
    // Kernel pages are physically shared across CPUs, so consistency
    // transactions must have occurred.
    EXPECT_GT(system.bus().countOf(mem::TxType::ReadShared).value() +
                  system.bus().countOf(mem::TxType::ReadPrivate).value(),
              0u);
}

TEST(VmpSystem, WriteBackOnlyMemoryMutation)
{
    VmpSystem system(smallConfig(2));
    trace::SyntheticGen gen0(tinyWorkload(10'000, 31));
    trace::SyntheticGen gen1(tinyWorkload(10'000, 32));
    system.runTraces({&gen0, &gen1});
    // Every memory mutation is a *successful* write-back transaction.
    EXPECT_EQ(system.memory().writes().value(),
              system.bus().countOf(mem::TxType::WriteBack).value());
}

TEST(VmpSystem, MoreProcessorsRaiseBusUtilization)
{
    double util1 = 0, util4 = 0;
    {
        VmpSystem system(smallConfig(1));
        trace::SyntheticGen gen(tinyWorkload(15'000, 5));
        util1 = system.runTraces({&gen}).busUtilization;
    }
    {
        VmpSystem system(smallConfig(4));
        trace::SyntheticGen g0(tinyWorkload(15'000, 5));
        trace::SyntheticGen g1(tinyWorkload(15'000, 6));
        trace::SyntheticGen g2(tinyWorkload(15'000, 7));
        trace::SyntheticGen g3(tinyWorkload(15'000, 8));
        util4 = system.runTraces({&g0, &g1, &g2, &g3}).busUtilization;
    }
    EXPECT_GT(util4, util1);
}

// ----------------------------------------------------- program runs

TEST(VmpSystem, ParallelCountersWithUncachedLock)
{
    // Classic coherence acid test: N CPUs increment a shared counter
    // ITERS times each under an uncached test-and-set lock. The final
    // value must be exact.
    constexpr std::uint32_t iters = 25;
    constexpr std::uint32_t cpus = 3;
    const Addr lock_pa = 0x0; // uncached physical lock
    // Shared counter in kernel space (one frame across ASIDs).
    const Addr counter_va = trace::kernelBase + 0x40;

    const cpu::Program worker = {
        /*0*/ cpu::opMoveImm(1, iters),
        // acquire:
        /*1*/ cpu::opUncachedTas(lock_pa, 0),
        /*2*/ cpu::opBranchIfNotZero(0, 1),
        // critical section:
        /*3*/ cpu::opRead(counter_va, 2),
        /*4*/ cpu::opAddImm(2, 1),
        /*5*/ cpu::opWrite(counter_va, 2),
        // release:
        /*6*/ cpu::opUncachedWrite(lock_pa, 0),
        /*7*/ cpu::opDecBranchNotZero(1, 1),
        /*8*/ cpu::opHalt(),
    };

    VmpConfig cfg = smallConfig(cpus);
    VmpSystem system(cfg);
    const auto programs =
        std::vector<cpu::Program>(cpus, worker);
    // Keep the CPUs alive: halted processors still service their bus
    // monitors, which the final read below relies on.
    const auto cpu_objs = system.runPrograms(programs);

    // Read the final value through any CPU.
    std::uint32_t final_value = 0;
    bool done = false;
    system.controller(0).readWord(1, counter_va, true,
                                  [&](std::uint32_t v) {
                                      final_value = v;
                                      done = true;
                                  });
    system.events().run();
    ASSERT_TRUE(done);
    EXPECT_EQ(final_value, iters * cpus);
}

TEST(VmpSystem, CachedSpinLockAlsoCorrectButCausesTraffic)
{
    // Test-and-set on *cached* memory: correct, but each contender
    // drags the lock's page around — the Section 5.4 thrashing story.
    constexpr std::uint32_t iters = 10;
    constexpr std::uint32_t cpus = 2;
    const Addr lock_va = trace::kernelBase + 0x1000;
    const Addr counter_va = trace::kernelBase + 0x2000;

    const cpu::Program worker = {
        /*0*/ cpu::opMoveImm(1, iters),
        // acquire (cached TAS spin):
        /*1*/ cpu::opCachedTas(lock_va, 0),
        /*2*/ cpu::opBranchIfNotZero(0, 1),
        // critical section:
        /*3*/ cpu::opRead(counter_va, 2),
        /*4*/ cpu::opAddImm(2, 1),
        /*5*/ cpu::opWrite(counter_va, 2),
        // release:
        /*6*/ cpu::opWriteImm(lock_va, 0),
        /*7*/ cpu::opDecBranchNotZero(1, 1),
        /*8*/ cpu::opHalt(),
    };

    VmpSystem system(smallConfig(cpus));
    const auto cpu_objs =
        system.runPrograms(std::vector<cpu::Program>(cpus, worker));

    std::uint32_t final_value = 0;
    system.controller(0).readWord(1, counter_va, true,
                                  [&](std::uint32_t v) {
                                      final_value = v;
                                  });
    system.events().run();
    EXPECT_EQ(final_value, iters * cpus);
    // Ownership of the lock page ping-ponged.
    EXPECT_GT(system.bus().countOf(mem::TxType::ReadPrivate).value() +
                  system.bus()
                      .countOf(mem::TxType::AssertOwnership)
                      .value(),
              2 * iters);
}

TEST(VmpSystem, ProgramsInDistinctPagesDontInterfere)
{
    const cpu::Program p0 = {
        cpu::opWriteImm(trace::userBase + 0x0, 100),
        cpu::opRead(trace::userBase + 0x0, 0),
        cpu::opHalt(),
    };
    const cpu::Program p1 = {
        cpu::opWriteImm(trace::userBase + 0x0, 200),
        cpu::opRead(trace::userBase + 0x0, 0),
        cpu::opHalt(),
    };
    VmpSystem system(smallConfig(2));
    const auto cpus = system.runPrograms({p0, p1});
    // Same virtual address but different ASIDs: distinct frames.
    EXPECT_EQ(cpus[0]->reg(0), 100u);
    EXPECT_EQ(cpus[1]->reg(0), 200u);
}

// ------------------------------------------------------- FastCacheSim

TEST(FastCacheSim, SequentialWalkMissesOncePerPage)
{
    FastCacheSim sim(cache::CacheConfig{256, 4, 16, false});
    trace::MemRef ref;
    ref.asid = 1;
    ref.type = trace::RefType::DataRead;
    for (Addr va = 0; va < 16 * 256; va += 4) {
        ref.vaddr = va;
        sim.step(ref);
    }
    const auto &result = sim.result();
    EXPECT_EQ(result.refs, 16u * 64);
    EXPECT_EQ(result.misses, 16u);
    EXPECT_NEAR(result.missRatio(), 1.0 / 64, 1e-9);
}

TEST(FastCacheSim, WritesDoNotDoubleMiss)
{
    FastCacheSim sim(cache::CacheConfig{256, 4, 16, false});
    trace::MemRef ref;
    ref.asid = 1;
    ref.vaddr = 0x100;
    ref.type = trace::RefType::DataRead;
    sim.step(ref);
    ref.type = trace::RefType::DataWrite;
    EXPECT_FALSE(sim.step(ref));
    EXPECT_EQ(sim.result().misses, 1u);
}

TEST(FastCacheSim, SupervisorMissesTracked)
{
    FastCacheSim sim(cache::CacheConfig{256, 4, 16, false});
    trace::MemRef ref;
    ref.asid = 1;
    ref.vaddr = trace::kernelBase;
    ref.type = trace::RefType::InstrFetch;
    ref.supervisor = true;
    sim.step(ref);
    EXPECT_EQ(sim.result().supervisorRefs, 1u);
    EXPECT_EQ(sim.result().supervisorMisses, 1u);
    EXPECT_DOUBLE_EQ(sim.result().supervisorMissShare(), 1.0);
}

TEST(FastCacheSim, LargerCachesMissLess)
{
    auto run = [](std::uint64_t size) {
        FastCacheSim sim(cache::CacheConfig::forSize(size, 256, 4,
                                                     false));
        trace::SyntheticGen gen(
            trace::workloadConfig("atum1"));
        return sim.run(gen).missRatio();
    };
    const double small = run(KiB(64));
    const double large = run(KiB(256));
    EXPECT_GT(small, large);
}

TEST(FastCacheSim, ResetStatsKeepsCacheWarm)
{
    FastCacheSim sim(cache::CacheConfig{256, 4, 16, false});
    trace::MemRef ref;
    ref.asid = 1;
    ref.vaddr = 0x100;
    ref.type = trace::RefType::DataRead;
    sim.step(ref);
    EXPECT_EQ(sim.result().misses, 1u);
    sim.resetStats();
    EXPECT_EQ(sim.result().refs, 0u);
    // Warm: the page is still cached.
    EXPECT_FALSE(sim.step(ref));
    EXPECT_EQ(sim.result().misses, 0u);
}

TEST(FastCacheSim, ResultAccumulation)
{
    FastSimResult a, b;
    a.refs = 10;
    a.misses = 2;
    b.refs = 30;
    b.misses = 3;
    b.supervisorRefs = 5;
    b.supervisorMisses = 1;
    a += b;
    EXPECT_EQ(a.refs, 40u);
    EXPECT_EQ(a.misses, 5u);
    EXPECT_EQ(a.supervisorRefs, 5u);
    EXPECT_NEAR(a.missRatio(), 0.125, 1e-9);
}

} // namespace
} // namespace vmp::core
