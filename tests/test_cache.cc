/**
 * @file
 * Unit and property tests for the virtually addressed cache: geometry
 * validation, tag matching on <ASID, vaddr>, protection and ownership
 * miss kinds, LRU victim suggestion, data plane, and parameterized
 * sweeps across the prototype's configuration space (page size 128/256/
 * 512, 1-4 ways).
 */

#include <gtest/gtest.h>

#include <tuple>

#include <algorithm>
#include <deque>

#include "cache/cache.hh"
#include "sim/random.hh"
#include "sim/logging.hh"

namespace vmp::cache
{
namespace
{

CacheConfig
smallConfig()
{
    CacheConfig cfg;
    cfg.pageBytes = 128;
    cfg.ways = 2;
    cfg.sets = 4;
    return cfg;
}

/** Fill helper that mirrors what the miss-handler software does. */
SlotIndex
installPage(Cache &cache, Asid asid, Addr vaddr, SlotFlags extra = 0)
{
    const auto res = cache.probe(asid, vaddr, false, true);
    const SlotIndex victim = res.suggestedVictim;
    cache.fill(victim, cache.tagFor(asid, vaddr),
               static_cast<SlotFlags>(FlagUserReadable | extra));
    return victim;
}

// ------------------------------------------------------------- config

TEST(CacheConfig, TotalsAndToString)
{
    CacheConfig cfg;
    cfg.pageBytes = 256;
    cfg.ways = 4;
    cfg.sets = 256;
    EXPECT_EQ(cfg.totalBytes(), 256u * 1024);
    EXPECT_EQ(cfg.totalSlots(), 1024u);
    EXPECT_EQ(cfg.toString(), "256KiB 4-way 256B-pages");
}

TEST(CacheConfig, ForSizeComputesSets)
{
    const auto cfg = CacheConfig::forSize(128 * 1024, 256, 4);
    EXPECT_EQ(cfg.sets, 128u);
    EXPECT_EQ(cfg.totalBytes(), 128u * 1024);
}

TEST(CacheConfig, ValidationRejectsBadGeometry)
{
    CacheConfig cfg;
    cfg.pageBytes = 100; // not a power of two
    EXPECT_THROW(cfg.check(), FatalError);
    cfg = CacheConfig{};
    cfg.ways = 0;
    EXPECT_THROW(cfg.check(), FatalError);
    cfg = CacheConfig{};
    cfg.sets = 3;
    EXPECT_THROW(cfg.check(), FatalError);
    EXPECT_THROW(CacheConfig::forSize(100'000, 256), FatalError);
}

// ---------------------------------------------------------- behaviour

TEST(Cache, ColdMissThenHit)
{
    Cache cache(smallConfig());
    auto res = cache.access(1, 0x1000, false, false);
    EXPECT_FALSE(res.hit);
    EXPECT_EQ(res.miss, MissKind::NoMatch);

    installPage(cache, 1, 0x1000);
    res = cache.access(1, 0x1000, false, false);
    EXPECT_TRUE(res.hit);
    EXPECT_EQ(cache.hits().value(), 1u);
    EXPECT_EQ(cache.misses().value(), 1u);
    EXPECT_DOUBLE_EQ(cache.missRatio(), 0.5);
}

TEST(Cache, MatchesOnAsidToo)
{
    Cache cache(smallConfig());
    installPage(cache, 1, 0x1000);
    // Same virtual address, different address space: must miss.
    const auto res = cache.access(2, 0x1000, false, false);
    EXPECT_FALSE(res.hit);
    EXPECT_EQ(res.miss, MissKind::NoMatch);
}

TEST(Cache, HitAnywhereWithinPage)
{
    Cache cache(smallConfig());
    installPage(cache, 1, 0x1000);
    EXPECT_TRUE(cache.access(1, 0x1000, false, false).hit);
    EXPECT_TRUE(cache.access(1, 0x107c, false, false).hit);
    EXPECT_FALSE(cache.access(1, 0x1080, false, false).hit);
}

TEST(Cache, UserWriteNeedsUserWritableFlag)
{
    Cache cache(smallConfig());
    installPage(cache, 1, 0x1000); // user-readable only
    const auto res = cache.access(1, 0x1000, true, false);
    EXPECT_FALSE(res.hit);
    EXPECT_EQ(res.miss, MissKind::Protection);
    ASSERT_TRUE(res.slot.has_value());
}

TEST(Cache, UserReadNeedsUserReadableFlag)
{
    Cache cache(smallConfig());
    const auto res = cache.probe(1, 0x1000, false, true);
    cache.fill(res.suggestedVictim, cache.tagFor(1, 0x1000),
               FlagSupWritable); // supervisor-only page
    EXPECT_EQ(cache.access(1, 0x1000, false, false).miss,
              MissKind::Protection);
    EXPECT_TRUE(cache.access(1, 0x1000, false, true).hit);
}

TEST(Cache, WriteToSharedCopyReportsOwnershipMiss)
{
    Cache cache(smallConfig());
    installPage(cache, 1, 0x1000, FlagUserWritable); // not exclusive
    const auto res = cache.access(1, 0x1000, true, false);
    EXPECT_FALSE(res.hit);
    EXPECT_EQ(res.miss, MissKind::WriteShared);
    EXPECT_EQ(cache.writeSharedMisses().value(), 1u);
}

TEST(Cache, ExclusiveWriteSetsModified)
{
    Cache cache(smallConfig());
    installPage(cache, 1, 0x1000,
                static_cast<SlotFlags>(FlagUserWritable | FlagExclusive));
    const auto res = cache.access(1, 0x1000, true, false);
    ASSERT_TRUE(res.hit);
    EXPECT_TRUE(cache.slot(*res.slot).modified());
}

TEST(Cache, SupervisorWriteNeedsSupWritable)
{
    Cache cache(smallConfig());
    installPage(cache, 1, 0x1000,
                static_cast<SlotFlags>(FlagUserWritable | FlagExclusive));
    // No supervisor-writable flag: supervisor write is a protection miss.
    EXPECT_EQ(cache.access(1, 0x1000, true, true).miss,
              MissKind::Protection);
}

TEST(Cache, SupervisorReadIgnoresUserReadable)
{
    Cache cache(smallConfig());
    const auto res = cache.probe(1, 0x1000, false, true);
    cache.fill(res.suggestedVictim, cache.tagFor(1, 0x1000), 0);
    EXPECT_TRUE(cache.access(1, 0x1000, false, true).hit);
}

TEST(Cache, ProbeDoesNotTouchLruOrStats)
{
    Cache cache(smallConfig());
    installPage(cache, 1, 0x1000);
    const auto before = cache.slot(0).lastUse;
    cache.probe(1, 0x1000, false, false);
    EXPECT_EQ(cache.hits().value(), 0u);
    EXPECT_EQ(cache.misses().value(), 0u);
    bool touched = false;
    for (SlotIndex i = 0; i < cache.config().totalSlots(); ++i)
        touched = touched || cache.slot(i).lastUse > before;
    EXPECT_FALSE(touched);
}

TEST(Cache, LruSuggestsLeastRecentlyUsedWay)
{
    CacheConfig cfg = smallConfig(); // 2 ways, 4 sets, 128B pages
    Cache cache(cfg);
    // Two pages mapping to set 0: vpn 0 and vpn 4.
    installPage(cache, 1, 0 * 128);
    installPage(cache, 1, 4 * 128);
    // Touch vpn 0 so vpn 4 becomes LRU.
    cache.access(1, 0, false, false);
    const auto victim = cache.victimFor(8 * 128);
    EXPECT_EQ(cache.slot(victim).tag.vpn, 4u);
}

TEST(Cache, InvalidSlotPreferredAsVictim)
{
    Cache cache(smallConfig());
    installPage(cache, 1, 0);
    const auto victim = cache.victimFor(0);
    EXPECT_FALSE(cache.slot(victim).valid());
}

TEST(Cache, FillRejectsWrongSet)
{
    Cache cache(smallConfig());
    // vpn 1 maps to set 1; slot 0 is in set 0.
    EXPECT_THROW(cache.fill(0, CacheTag{1, 1}, FlagUserReadable),
                 PanicError);
}

TEST(Cache, InvalidateDropsSlot)
{
    Cache cache(smallConfig());
    const auto slot = installPage(cache, 1, 0x1000);
    cache.invalidate(slot);
    EXPECT_FALSE(cache.access(1, 0x1000, false, false).hit);
    EXPECT_EQ(cache.validCount(), 0u);
}

TEST(Cache, SetFlagsRequiresValid)
{
    Cache cache(smallConfig());
    const auto slot = installPage(cache, 1, 0x1000);
    cache.setFlags(slot, static_cast<SlotFlags>(
        FlagValid | FlagUserReadable | FlagUserWritable | FlagExclusive));
    EXPECT_TRUE(cache.access(1, 0x1000, true, false).hit);
    EXPECT_THROW(cache.setFlags(slot, 0), PanicError);
}

TEST(Cache, DataPlaneRoundTrip)
{
    Cache cache(smallConfig());
    const auto slot = installPage(cache, 1, 0x1000);
    const std::uint32_t value = 0xdeadbeef;
    cache.writeBytes(slot, 8, &value, sizeof(value));
    std::uint32_t got = 0;
    cache.readBytes(slot, 8, &got, sizeof(got));
    EXPECT_EQ(got, value);
    EXPECT_THROW(cache.writeBytes(slot, 126, &value, sizeof(value)),
                 PanicError);
}

TEST(Cache, FillClearsOldData)
{
    Cache cache(smallConfig());
    const auto slot = installPage(cache, 1, 0x1000);
    const std::uint32_t value = 0x12345678;
    cache.writeBytes(slot, 0, &value, sizeof(value));
    cache.fill(slot, cache.tagFor(1, 0x1000), FlagUserReadable);
    std::uint32_t got = 0xff;
    cache.readBytes(slot, 0, &got, sizeof(got));
    EXPECT_EQ(got, 0u);
}

TEST(Cache, NoDataStorageConfig)
{
    CacheConfig cfg = smallConfig();
    cfg.storeData = false;
    Cache cache(cfg);
    const auto slot = installPage(cache, 1, 0x1000);
    std::uint32_t v = 0;
    EXPECT_THROW(cache.writeBytes(slot, 0, &v, 4), PanicError);
    EXPECT_THROW(cache.readBytes(slot, 0, &v, 4), PanicError);
}

TEST(Cache, FindAllLocatesAliasFreeSlot)
{
    Cache cache(smallConfig());
    installPage(cache, 1, 0x1000);
    const auto tag = cache.tagFor(1, 0x1000);
    const auto found = cache.findAll(tag);
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(cache.slot(found[0]).tag, tag);
    EXPECT_TRUE(cache.findAll(cache.tagFor(2, 0x1000)).empty());
}

TEST(Cache, ResetStats)
{
    Cache cache(smallConfig());
    cache.access(1, 0, false, false);
    cache.resetStats();
    EXPECT_EQ(cache.misses().value(), 0u);
    EXPECT_DOUBLE_EQ(cache.missRatio(), 0.0);
}

// ------------------------------------------- parameterized properties

using Geometry = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>;

class CacheGeometryTest : public ::testing::TestWithParam<Geometry>
{
  protected:
    CacheConfig
    config() const
    {
        const auto [page, ways, sets] = GetParam();
        CacheConfig cfg;
        cfg.pageBytes = page;
        cfg.ways = ways;
        cfg.sets = sets;
        cfg.storeData = false;
        return cfg;
    }
};

TEST_P(CacheGeometryTest, FillThenHitEverySlot)
{
    Cache cache(config());
    const auto &cfg = cache.config();
    // Walk enough distinct pages to fill the whole cache.
    for (std::uint64_t vpn = 0; vpn < cfg.totalSlots(); ++vpn) {
        const Addr va = vpn * cfg.pageBytes;
        const auto res = cache.access(1, va, false, false);
        ASSERT_FALSE(res.hit);
        cache.fill(res.suggestedVictim, cache.tagFor(1, va),
                   FlagUserReadable);
    }
    EXPECT_EQ(cache.validCount(), cfg.totalSlots());
    // Every page now hits.
    for (std::uint64_t vpn = 0; vpn < cfg.totalSlots(); ++vpn) {
        const Addr va = vpn * cfg.pageBytes;
        ASSERT_TRUE(cache.access(1, va, false, false).hit) << va;
    }
}

TEST_P(CacheGeometryTest, VictimAlwaysInCorrectSet)
{
    Cache cache(config());
    const auto &cfg = cache.config();
    for (std::uint64_t vpn = 0; vpn < 4 * cfg.totalSlots(); ++vpn) {
        const Addr va = vpn * cfg.pageBytes;
        const auto res = cache.access(1, va, false, false);
        if (!res.hit) {
            ASSERT_EQ(res.suggestedVictim / cfg.ways, cache.setOf(va));
            cache.fill(res.suggestedVictim, cache.tagFor(1, va),
                       FlagUserReadable);
        }
    }
}

TEST_P(CacheGeometryTest, CapacityEvictionIsPerSet)
{
    Cache cache(config());
    const auto &cfg = cache.config();
    // Fill one set with ways+1 pages; exactly one eviction happens.
    const std::uint64_t stride = cfg.sets;
    for (std::uint32_t i = 0; i <= cfg.ways; ++i) {
        const Addr va = i * stride * cfg.pageBytes;
        const auto res = cache.access(1, va, false, false);
        ASSERT_FALSE(res.hit);
        cache.fill(res.suggestedVictim, cache.tagFor(1, va),
                   FlagUserReadable);
    }
    EXPECT_EQ(cache.validCount(), cfg.ways);
    // The first page inserted was evicted (LRU).
    EXPECT_FALSE(cache.access(1, 0, false, false).hit);
}

TEST_P(CacheGeometryTest, RandomizedLruMatchesReferenceModel)
{
    // Drive random accesses and mirror them in a per-set reference LRU
    // list; the cache's hit/miss decisions and victim suggestions must
    // match the model exactly.
    Cache cache(config());
    const auto &cfg = cache.config();
    Rng rng(GetParam() == Geometry{128, 1, 16} ? 7 : 13);
    // Reference: per set, a most-recent-first list of vpns.
    std::vector<std::deque<std::uint64_t>> model(cfg.sets);

    for (int step = 0; step < 4000; ++step) {
        const std::uint64_t vpn = rng.below(4 * cfg.totalSlots());
        const Addr va = vpn * cfg.pageBytes + rng.below(cfg.pageBytes);
        const auto set = cache.setOf(va);
        auto &lru = model[set];
        const auto it = std::find(lru.begin(), lru.end(), vpn);
        const bool model_hit = it != lru.end();

        const auto res = cache.access(1, va, false, false);
        ASSERT_EQ(res.hit, model_hit) << "step " << step;

        if (model_hit) {
            lru.erase(it);
            lru.push_front(vpn);
        } else {
            // Victim must be the least recently used (or invalid).
            if (lru.size() == cfg.ways) {
                const auto &victim = cache.slot(res.suggestedVictim);
                ASSERT_TRUE(victim.valid());
                ASSERT_EQ(victim.tag.vpn, lru.back());
                lru.pop_back();
            }
            cache.fill(res.suggestedVictim, cache.tagFor(1, va),
                       FlagUserReadable);
            lru.push_front(vpn);
        }
        ASSERT_LE(lru.size(), cfg.ways);
    }
}

std::string
geometryName(const ::testing::TestParamInfo<Geometry> &info)
{
    const auto [page, ways, sets] = info.param;
    return "p" + std::to_string(page) + "w" + std::to_string(ways) +
        "s" + std::to_string(sets);
}

INSTANTIATE_TEST_SUITE_P(
    PrototypeGeometries, CacheGeometryTest,
    ::testing::Values(Geometry{128, 1, 16}, Geometry{128, 4, 64},
                      Geometry{256, 2, 32}, Geometry{256, 4, 256},
                      Geometry{512, 4, 128}, Geometry{512, 1, 256}),
    geometryName);

} // namespace
} // namespace vmp::cache
