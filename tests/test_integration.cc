/**
 * @file
 * Whole-system stress and property tests: randomized data-race-free
 * parallel programs whose results must be exact under any interleaving
 * the protocol produces; adversarial configurations (tiny caches and
 * FIFOs forcing evictions and overflow recoveries); and end-of-run
 * verification of the protocol invariants DESIGN.md lists — for every
 * frame, at most one private owner; every memory mutation a successful
 * write-back; no stale Protect entries at quiescence.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/paged_system.hh"
#include "core/system.hh"
#include "mem/dma.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sync/locks.hh"
#include "trace/synthetic.hh"
#include "trace/workloads.hh"

namespace vmp
{
namespace
{

/** Check the two-state invariant across all boards at quiescence. */
void
expectTwoStateInvariant(core::VmpSystem &system)
{
    const auto &cfg = system.config();
    const std::uint64_t frames = cfg.memBytes / cfg.cache.pageBytes;
    for (std::uint64_t frame = 0; frame < frames; ++frame) {
        const Addr pa = frame * cfg.cache.pageBytes;
        unsigned owners = 0;
        for (std::size_t cpu = 0; cpu < cfg.processors; ++cpu) {
            const auto *info = system.controller(cpu).frameInfo(pa);
            if (info && info->state == proto::FrameState::Private)
                ++owners;
        }
        ASSERT_LE(owners, 1u) << "frame " << frame;
    }
}

/** Memory mutations = successful write-backs + uncached/DMA writes. */
void
expectWriteInvariant(core::VmpSystem &system)
{
    const auto &bus = system.bus();
    const std::uint64_t expected =
        bus.countOf(mem::TxType::WriteBack).value() +
        bus.countOf(mem::TxType::DmaWrite).value();
    EXPECT_EQ(system.memory().writes().value(), expected);
}

/** Drain every board's FIFO so the system is quiescent. */
void
quiesce(core::VmpSystem &system)
{
    for (int round = 0; round < 4; ++round) {
        for (std::size_t cpu = 0; cpu < system.processors(); ++cpu) {
            bool done = false;
            system.controller(cpu).serviceInterrupts(
                [&] { done = true; });
            system.events().run();
            ASSERT_TRUE(done);
        }
    }
}

// ------------------------------------------------- randomized programs

/**
 * Build a DRF random worker: a fixed sequence of lock-protected
 * increments over a set of shared counters. Each worker picks counters
 * pseudo-randomly but the per-counter increment totals are known, so
 * the final memory state is exactly checkable.
 */
cpu::Program
randomWorker(Rng &rng, const std::vector<Addr> &counters, Addr lock_pa,
             std::uint32_t rounds,
             std::map<Addr, std::uint32_t> &expected)
{
    using namespace vmp::cpu;
    Program program;
    for (std::uint32_t r = 0; r < rounds; ++r) {
        const Addr counter =
            counters[rng.below(counters.size())];
        expected[counter] += 1;
        const auto acquire =
            static_cast<std::int32_t>(program.size());
        program.push_back(opUncachedTas(lock_pa, 0));
        program.push_back(opBranchIfNotZero(0, acquire));
        program.push_back(opRead(counter, 2));
        program.push_back(opAddImm(2, 1));
        program.push_back(opWrite(counter, 2));
        program.push_back(opUncachedWrite(lock_pa, 0));
    }
    program.push_back(opHalt());
    return program;
}

struct RandomRunParams
{
    std::uint64_t seed;
    std::uint32_t cpus;
    std::uint32_t pageBytes;
};

class RandomDrfTest : public ::testing::TestWithParam<RandomRunParams>
{
};

TEST_P(RandomDrfTest, LockProtectedCountersAreExact)
{
    const auto &params = GetParam();
    Rng rng(params.seed);

    core::VmpConfig cfg;
    cfg.processors = params.cpus;
    cfg.cache =
        cache::CacheConfig{params.pageBytes, 2, 8, true}; // tiny
    cfg.memBytes = MiB(1);
    core::VmpSystem system(cfg);

    // A handful of counters spread over several pages (some sharing a
    // page, some not).
    std::vector<Addr> counters;
    for (int i = 0; i < 6; ++i)
        counters.push_back(trace::kernelBase + 0x4000 +
                           static_cast<Addr>(i) * 0x90);
    const Addr lock_pa = 0x200;

    std::map<Addr, std::uint32_t> expected;
    std::vector<cpu::Program> programs;
    for (std::uint32_t c = 0; c < params.cpus; ++c)
        programs.push_back(
            randomWorker(rng, counters, lock_pa, 12, expected));

    const auto cpu_objs = system.runPrograms(programs);
    quiesce(system);

    for (const auto &[counter, want] : expected) {
        std::uint32_t value = 0;
        bool done = false;
        system.controller(0).readWord(1, counter, true,
                                      [&](std::uint32_t v) {
                                          value = v;
                                          done = true;
                                      });
        system.events().run();
        ASSERT_TRUE(done);
        EXPECT_EQ(value, want) << "counter 0x" << std::hex << counter;
    }
    expectTwoStateInvariant(system);
    expectWriteInvariant(system);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomDrfTest,
    ::testing::Values(RandomRunParams{1, 2, 128},
                      RandomRunParams{2, 3, 256},
                      RandomRunParams{3, 4, 512},
                      RandomRunParams{4, 3, 128},
                      RandomRunParams{5, 2, 512}),
    [](const ::testing::TestParamInfo<RandomRunParams> &info) {
        return "seed" + std::to_string(info.param.seed) + "_cpus" +
            std::to_string(info.param.cpus) + "_p" +
            std::to_string(info.param.pageBytes);
    });

// ----------------------------------------------- adversarial configs

TEST(Integration, TinyFifoForcesOverflowRecoveryButStaysCorrect)
{
    core::VmpConfig cfg;
    cfg.processors = 3;
    cfg.cache = cache::CacheConfig{128, 2, 8, true};
    cfg.memBytes = MiB(1);
    cfg.fifoCapacity = 1; // absurdly small: guarantees drops
    core::VmpSystem system(cfg);

    // Cached-TAS spinning over shared pages maximizes interrupt-word
    // traffic (every spin steals the lock page from someone).
    sync::LockWorkload workload;
    workload.kind = sync::LockKind::CachedTas;
    workload.iterations = 20;
    workload.lockAddr = trace::kernelBase + 0x1000;
    workload.counterAddr = trace::kernelBase + 0x2000;
    workload.extraWork = 3;
    workload.workBase = trace::kernelBase + 0x2010;

    const auto cpus = system.runPrograms(std::vector<cpu::Program>(
        3, sync::lockWorker(workload)));

    std::uint32_t value = 0;
    system.controller(0).readWord(1, workload.counterAddr, true,
                                  [&](std::uint32_t v) { value = v; });
    system.events().run();
    EXPECT_EQ(value, 60u);

    std::uint64_t recoveries = 0;
    for (std::size_t cpu = 0; cpu < 3; ++cpu)
        recoveries +=
            system.controller(cpu).overflowRecoveries().value();
    // With a 2-entry FIFO and three contenders, recoveries happen.
    EXPECT_GT(recoveries, 0u);
}

TEST(Integration, SharedTraceWorkloadsKeepInvariants)
{
    core::VmpConfig cfg;
    cfg.processors = 4;
    cfg.cache = cache::CacheConfig{256, 2, 16, true};
    cfg.memBytes = MiB(2);
    core::VmpSystem system(cfg);

    std::vector<std::unique_ptr<trace::SyntheticGen>> gens;
    std::vector<trace::RefSource *> sources;
    for (std::uint32_t i = 0; i < 4; ++i) {
        auto workload = trace::workloadConfig("atum3");
        workload.totalRefs = 25'000;
        workload.seed = 900 + i;
        // Shared kernel image: heavy consistency traffic on purpose.
        gens.push_back(std::make_unique<trace::SyntheticGen>(workload));
        sources.push_back(gens.back().get());
    }
    const auto result = system.runTraces(sources);
    EXPECT_EQ(result.totalRefs, 100'000u);
    quiesce(system);
    expectTwoStateInvariant(system);
    expectWriteInvariant(system);
}

TEST(Integration, PrivateHintEliminatesUpgrades)
{
    auto run = [](bool hint) {
        core::VmpConfig cfg;
        cfg.processors = 1;
        cfg.cache = cache::CacheConfig::forSize(KiB(64), 256, 4, true);
        cfg.memBytes = MiB(8);
        core::VmpSystem system(cfg);
        system.setUserPrivateHint(hint);
        auto workload = trace::workloadConfig("atum2");
        workload.totalRefs = 40'000;
        trace::SyntheticGen gen(workload);
        system.runTraces({&gen});
        return std::pair<std::uint64_t, std::uint64_t>(
            system.controller(0).ownershipMisses().value(),
            system.controller(0).hintedPrivateFills().value());
    };
    const auto [upgrades_off, hinted_off] = run(false);
    const auto [upgrades_on, hinted_on] = run(true);
    EXPECT_EQ(hinted_off, 0u);
    EXPECT_GT(hinted_on, 0u);
    // User-page upgrades disappear; only shared kernel pages remain.
    EXPECT_LT(upgrades_on, upgrades_off);
}

TEST(Integration, StatsDumpMentionsEveryBoard)
{
    core::VmpConfig cfg;
    cfg.processors = 2;
    cfg.cache = cache::CacheConfig{256, 2, 16, true};
    cfg.memBytes = MiB(1);
    core::VmpSystem system(cfg);
    auto workload = trace::workloadConfig("atum2");
    workload.totalRefs = 5'000;
    trace::SyntheticGen gen(workload);
    system.runTraces({&gen});

    std::ostringstream os;
    system.dumpStats(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("bus.transactions"), std::string::npos);
    EXPECT_NE(out.find("cpu0.misses"), std::string::npos);
    EXPECT_NE(out.find("cpu1.misses"), std::string::npos);
    EXPECT_NE(out.find("cpu0.cache_hits"), std::string::npos);
}

TEST(Integration, DmaDeviceCoexistsWithTraceTraffic)
{
    core::VmpConfig cfg;
    cfg.processors = 2;
    cfg.cache = cache::CacheConfig{256, 2, 16, true};
    cfg.memBytes = MiB(1);
    core::VmpSystem system(cfg);
    mem::DmaDevice device(50, system.bus());

    // Kick off a DMA into the reserved (never-cached) region while
    // trace CPUs hammer the bus; DMA must complete unaborted.
    bool dma_done = false;
    std::vector<std::uint8_t> payload(1024, 0x5a);
    device.write(0x400, payload, [&] { dma_done = true; });

    auto workload = trace::workloadConfig("atum2");
    workload.totalRefs = 10'000;
    trace::SyntheticGen gen0(workload);
    workload.seed = 77;
    trace::SyntheticGen gen1(workload);
    system.runTraces({&gen0, &gen1});

    EXPECT_TRUE(dma_done);
    EXPECT_EQ(system.memory().readWord(0x400), 0x5a5a5a5au);
    EXPECT_EQ(device.bytesMoved(), 1024u);
}

// ------------------------------------------------ full paging stack

/** User-only workload (kernel refs would address raw physical memory
 *  through the kernel window, which belongs to the VM allocator). */
trace::SyntheticConfig
userOnlyWorkload(std::uint64_t refs, std::uint64_t seed)
{
    auto workload = trace::workloadConfig("atum2");
    workload.totalRefs = refs;
    workload.seed = seed;
    workload.osRefFrac = 0.0;
    return workload;
}

TEST(PagedSystem, TraceRunWithDemandPaging)
{
    core::VmpConfig cfg;
    cfg.processors = 1;
    cfg.cache = cache::CacheConfig{256, 4, 32, true};
    cfg.memBytes = MiB(4);
    core::PagedVmpSystem paged(cfg);

    trace::SyntheticGen gen(userOnlyWorkload(60'000, 7));
    const auto result = paged.runTraces({&gen});
    EXPECT_EQ(result.totalRefs, 60'000u);
    // Demand paging happened, and page-table walks nested through the
    // cache (more misses than faults).
    EXPECT_GT(paged.vm().pageFaults().value(), 10u);
    EXPECT_GT(result.totalMisses, paged.vm().pageFaults().value());
    EXPECT_EQ(paged.vm().pageOuts().value(), 0u); // no pressure yet
}

TEST(PagedSystem, TraceRunUnderMemoryPressure)
{
    core::VmpConfig cfg;
    cfg.processors = 2;
    cfg.cache = cache::CacheConfig{256, 4, 32, true};
    cfg.memBytes = MiB(4);
    vm::VmConfig vm_cfg;
    vm_cfg.diskLatencyNs = usec(50); // keep the run fast
    core::PagedVmpSystem paged(cfg, vm_cfg);

    // Artificially shrink memory: grab frames until ~48 remain.
    std::vector<std::uint32_t> grabbed;
    while (paged.vm().allocator().freeFrames() > 48) {
        const auto frame = paged.vm().allocator().alloc();
        ASSERT_TRUE(frame.has_value());
        grabbed.push_back(*frame);
    }

    trace::SyntheticGen gen0(userOnlyWorkload(40'000, 11));
    auto workload1 = userOnlyWorkload(40'000, 12);
    workload1.asidBase = 10;
    trace::SyntheticGen gen1(workload1);
    const auto result = paged.runTraces({&gen0, &gen1});
    EXPECT_EQ(result.totalRefs, 80'000u);
    // The pageout daemon ran and pages cycled through the store.
    EXPECT_GT(paged.vm().pageOuts().value(), 0u);
    EXPECT_GT(paged.vm().backingStore().stores().value(), 0u);

    for (const auto frame : grabbed)
        paged.vm().allocator().free(frame);
}

TEST(PagedSystem, TwoCpusShareOneAddressSpace)
{
    // Both CPUs run the same ASID: their page tables and data pages
    // are physically shared, so the Section 3.4 machinery (PTE-page
    // ownership migration, referenced-bit updates) is exercised across
    // processors.
    core::VmpConfig cfg;
    cfg.processors = 2;
    cfg.cache = cache::CacheConfig{256, 4, 32, true};
    cfg.memBytes = MiB(4);
    core::PagedVmpSystem paged(cfg);

    trace::SyntheticGen gen0(userOnlyWorkload(30'000, 21));
    trace::SyntheticGen gen1(userOnlyWorkload(30'000, 22));
    const auto result = paged.runTraces({&gen0, &gen1});
    EXPECT_EQ(result.totalRefs, 60'000u);
    // Real sharing: consistency transactions occurred.
    EXPECT_GT(paged.machine().bus().aborts().value() +
                  paged.machine()
                      .bus()
                      .countOf(mem::TxType::AssertOwnership)
                      .value(),
              0u);
}

} // namespace
} // namespace vmp
