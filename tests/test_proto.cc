/**
 * @file
 * Integration tests for the ownership protocol: the cache controller,
 * bus monitor and bus working together. Covers the Section 3.3 state
 * machine (shared/private transitions, downgrades, relinquish), the
 * alias self-competition trick, abort/retry liveness, interrupt FIFO
 * overflow recovery, the DMA bracket, uncached operations, and the
 * Table 1 timing identities of the software miss handler.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "mem/phys_mem.hh"
#include "mem/vme_bus.hh"
#include "monitor/bus_monitor.hh"
#include "proto/controller.hh"
#include "proto/translator.hh"
#include "sim/event.hh"
#include "sim/logging.hh"

namespace vmp::proto
{
namespace
{

using cache::FlagSupWritable;
using cache::FlagUserReadable;
using cache::FlagUserWritable;
using mem::ActionEntry;

constexpr std::uint32_t pageBytes = 256;
constexpr std::uint64_t memBytes = 1 << 20;
constexpr cache::SlotFlags rwProt = static_cast<cache::SlotFlags>(
    FlagSupWritable | FlagUserReadable | FlagUserWritable);
constexpr cache::SlotFlags roProt =
    static_cast<cache::SlotFlags>(FlagSupWritable | FlagUserReadable);

/**
 * Emulates an otherwise idle processor that services its bus-monitor
 * interrupts "between instructions": whenever the line is raised, a
 * service pass is scheduled for the next event slot.
 */
class IdleServicer
{
  public:
    IdleServicer(EventQueue &events, CacheController &controller)
        : events_(events), controller_(controller)
    {
        controller_.busMonitor().setInterruptLine([this] { poke(); });
    }

    void
    poke()
    {
        if (busy_)
            return;
        busy_ = true;
        events_.scheduleIn(1, [this] {
            controller_.serviceInterrupts([this] {
                busy_ = false;
                if (controller_.interruptPending())
                    poke();
            });
        });
    }

  private:
    EventQueue &events_;
    CacheController &controller_;
    bool busy_ = false;
};

/** One processor board. */
struct Board
{
    Board(CpuId id, EventQueue &events, mem::VmeBus &bus,
          Translator &translator, std::size_t fifo_capacity = 128)
        : cache(cache::CacheConfig{pageBytes, 2, 8, true}),
          monitor(id, memBytes, pageBytes, fifo_capacity),
          controller(id, events, cache, monitor, bus, translator)
    {
        bus.attachWatcher(id, monitor);
    }

    cache::Cache cache;
    monitor::BusMonitor monitor;
    CacheController controller;
};

/** Full mini-system with @p n processor boards. */
struct MiniSystem
{
    explicit MiniSystem(std::size_t n, std::size_t fifo_capacity = 128)
        : memory(memBytes, pageBytes), bus(events, memory),
          translator(pageBytes)
    {
        for (CpuId id = 0; id < n; ++id)
            boards.push_back(std::make_unique<Board>(
                id, events, bus, translator, fifo_capacity));
    }

    CacheController &ctl(std::size_t i) { return boards[i]->controller; }

    /** Drive a synchronous-looking access and run to completion. */
    AccessOutcome
    doAccess(std::size_t cpu, Asid asid, Addr va, bool write,
             bool sup = false)
    {
        AccessOutcome outcome = AccessOutcome::Hit;
        bool done = false;
        ctl(cpu).access(asid, va, write, sup, [&](AccessOutcome o) {
            outcome = o;
            done = true;
        });
        events.run();
        EXPECT_TRUE(done);
        return outcome;
    }

    std::uint32_t
    doRead(std::size_t cpu, Asid asid, Addr va, bool sup = false)
    {
        std::uint32_t value = 0;
        bool done = false;
        ctl(cpu).readWord(asid, va, sup, [&](std::uint32_t v) {
            value = v;
            done = true;
        });
        events.run();
        EXPECT_TRUE(done);
        return value;
    }

    void
    doWrite(std::size_t cpu, Asid asid, Addr va, std::uint32_t value,
            bool sup = false)
    {
        bool done = false;
        ctl(cpu).writeWord(asid, va, value, sup, [&] { done = true; });
        events.run();
        EXPECT_TRUE(done);
    }

    void
    doService(std::size_t cpu)
    {
        bool done = false;
        ctl(cpu).serviceInterrupts([&] { done = true; });
        events.run();
        EXPECT_TRUE(done);
    }

    EventQueue events;
    mem::PhysMem memory;
    mem::VmeBus bus;
    FixedTranslator translator;
    std::vector<std::unique_ptr<Board>> boards;
};

/** Virtual/physical layout used by most tests. */
constexpr Addr vaA = 0x10000; // maps to paA
constexpr Addr vaB = 0x20000; // maps to paB
constexpr Addr vaAlias = 0x30000; // second mapping of paA
constexpr Addr paA = 0x4000;
constexpr Addr paB = 0x5000;

struct ProtoTest : public ::testing::Test
{
    MiniSystem sys{2};

    void
    SetUp() override
    {
        for (Asid asid : {1, 2}) {
            sys.translator.map(asid, vaA, paA, rwProt);
            sys.translator.map(asid, vaB, paB, rwProt);
            sys.translator.map(asid, vaAlias, paA, rwProt);
        }
    }
};

// ------------------------------------------------------------ basics

TEST_F(ProtoTest, ColdReadMissFillsShared)
{
    const auto outcome = sys.doAccess(0, 1, vaA, false);
    EXPECT_EQ(outcome, AccessOutcome::MissCompleted);

    const FrameInfo *info = sys.ctl(0).frameInfo(paA);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->state, FrameState::Shared);
    EXPECT_EQ(sys.ctl(0).shadowEntry(paA), ActionEntry::Shared);
    EXPECT_EQ(sys.boards[0]->monitor.table().entryFor(paA),
              ActionEntry::Shared);
    EXPECT_EQ(sys.ctl(0).misses().value(), 1u);

    // Subsequent access hits at full speed.
    EXPECT_EQ(sys.doAccess(0, 1, vaA, false), AccessOutcome::Hit);
}

TEST_F(ProtoTest, CleanMissTimingMatchesTable1)
{
    // 256-byte page, clean victim: 13.5 us software + 6.6 us transfer.
    sys.doAccess(0, 1, vaA, false);
    EXPECT_EQ(sys.events.now(), 13'500u + 6'600u);
}

TEST_F(ProtoTest, DirtyVictimTimingMatchesTable1)
{
    // Two pages in the same cache set (2-way, 8 sets): vpns differ by
    // a multiple of 8. Fill both, dirty one, evict it with a third.
    const Addr conflict1 = vaA;
    const Addr conflict2 = vaA + 8 * pageBytes;
    const Addr conflict3 = vaA + 16 * pageBytes;
    sys.translator.map(1, conflict2, 0x6000, rwProt);
    sys.translator.map(1, conflict3, 0x7000, rwProt);

    sys.doWrite(0, 1, conflict1, 7); // dirty, private
    sys.doAccess(0, 1, conflict2, false);
    // Refresh LRU so conflict1 is the victim.
    sys.doAccess(0, 1, conflict2, false);
    sys.doAccess(0, 1, conflict1, false);
    const Tick before = sys.events.now();
    // conflict2 is now LRU... make conflict1 LRU instead:
    sys.doAccess(0, 1, conflict2, false);
    const Tick start = sys.events.now();
    EXPECT_EQ(start, before);

    sys.doAccess(0, 1, conflict3, false);
    // Dirty 256B victim: 2 + max(3.4, 6.6) + 8.1 + 6.6 = 23.3 us.
    EXPECT_EQ(sys.events.now() - start, 23'300u);
    // The dirty data reached memory.
    EXPECT_EQ(sys.memory.readWord(paA), 7u);
}

TEST_F(ProtoTest, WriteMissFillsPrivate)
{
    sys.doWrite(0, 1, vaA, 42);
    const FrameInfo *info = sys.ctl(0).frameInfo(paA);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->state, FrameState::Private);
    EXPECT_EQ(sys.boards[0]->monitor.table().entryFor(paA),
              ActionEntry::Protect);
    EXPECT_EQ(sys.doRead(0, 1, vaA), 42u);
    // Memory not yet updated (write-back cache).
    EXPECT_EQ(sys.memory.readWord(paA), 0u);
}

TEST_F(ProtoTest, WriteToSharedUpgradesViaAssertOwnership)
{
    sys.doAccess(0, 1, vaA, false); // shared copy
    const auto asserts_before =
        sys.bus.countOf(mem::TxType::AssertOwnership).value();
    sys.doWrite(0, 1, vaA, 5);
    EXPECT_EQ(sys.bus.countOf(mem::TxType::AssertOwnership).value(),
              asserts_before + 1);
    EXPECT_EQ(sys.ctl(0).ownershipMisses().value(), 1u);
    const FrameInfo *info = sys.ctl(0).frameInfo(paA);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->state, FrameState::Private);
}

// ----------------------------------------------------- two processors

TEST_F(ProtoTest, TwoReadersShareWithoutConflict)
{
    sys.doAccess(0, 1, vaA, false);
    const auto aborts = sys.bus.aborts().value();
    sys.doAccess(1, 2, vaA, false);
    EXPECT_EQ(sys.bus.aborts().value(), aborts);
    EXPECT_EQ(sys.ctl(0).frameInfo(paA)->state, FrameState::Shared);
    EXPECT_EQ(sys.ctl(1).frameInfo(paA)->state, FrameState::Shared);
}

TEST_F(ProtoTest, WriterInvalidatesRemoteSharedCopies)
{
    sys.doAccess(0, 1, vaA, false); // cpu0 shared
    sys.doWrite(1, 2, vaA, 99);     // cpu1 read-private

    // cpu0 got an interrupt word; service it.
    EXPECT_TRUE(sys.ctl(0).interruptPending());
    sys.doService(0);

    EXPECT_EQ(sys.ctl(0).frameInfo(paA), nullptr);
    EXPECT_EQ(sys.boards[0]->monitor.table().entryFor(paA),
              ActionEntry::Ignore);
    // cpu0's next access misses and must wait for cpu1 to relinquish.
    IdleServicer servicer1(sys.events, sys.ctl(1));
    EXPECT_EQ(sys.doRead(0, 1, vaA), 99u);
}

TEST_F(ProtoTest, ReadFromOwnedPageForcesWriteBackAndDowngrade)
{
    sys.doWrite(0, 1, vaA, 1234); // cpu0 owns dirty
    IdleServicer servicer0(sys.events, sys.ctl(0));

    // cpu1's read-shared is aborted, cpu0 downgrades with write-back,
    // cpu1 retries and succeeds.
    EXPECT_EQ(sys.doRead(1, 2, vaA), 1234u);
    EXPECT_GE(sys.bus.aborts().value(), 1u);
    EXPECT_GE(sys.ctl(1).retries().value(), 1u);
    EXPECT_EQ(sys.memory.readWord(paA), 1234u);

    const FrameInfo *info0 = sys.ctl(0).frameInfo(paA);
    ASSERT_NE(info0, nullptr);
    EXPECT_EQ(info0->state, FrameState::Shared);
    // cpu0's copy is still valid, now shared and clean.
    const auto res = sys.boards[0]->cache.probe(1, vaA, false, false);
    ASSERT_TRUE(res.hit);
    EXPECT_FALSE(sys.boards[0]->cache.slot(*res.slot).exclusive());
    EXPECT_FALSE(sys.boards[0]->cache.slot(*res.slot).modified());
}

TEST_F(ProtoTest, OwnershipMigrationPingPong)
{
    IdleServicer s0(sys.events, sys.ctl(0));
    IdleServicer s1(sys.events, sys.ctl(1));

    // Alternating writers to the same page; each transfer must both
    // terminate (deadlock freedom) and preserve the last write.
    for (std::uint32_t i = 0; i < 10; ++i) {
        const std::size_t cpu = i % 2;
        sys.doWrite(cpu, static_cast<Asid>(cpu + 1), vaA, i);
    }
    EXPECT_EQ(sys.doRead(0, 1, vaA), 9u);
    EXPECT_GE(sys.ctl(0).writeBacks().value() +
                  sys.ctl(1).writeBacks().value(),
              5u);
}

TEST_F(ProtoTest, SequentialConsistencyForDataRaceFreeSum)
{
    IdleServicer s0(sys.events, sys.ctl(0));
    IdleServicer s1(sys.events, sys.ctl(1));

    // Two CPUs increment the same counter alternately (externally
    // serialized, as a lock would): the final value is exact.
    for (int i = 0; i < 20; ++i) {
        const std::size_t cpu = i % 2;
        const Asid asid = static_cast<Asid>(cpu + 1);
        const std::uint32_t v = sys.doRead(cpu, asid, vaA);
        sys.doWrite(cpu, asid, vaA, v + 1);
    }
    EXPECT_EQ(sys.doRead(0, 1, vaA), 20u);
}

// -------------------------------------------------------------- alias

TEST_F(ProtoTest, SharedAliasesCoexist)
{
    sys.doAccess(0, 1, vaA, false);
    sys.doAccess(0, 1, vaAlias, false);
    // Two slots cache the same frame, both shared.
    EXPECT_EQ(sys.boards[0]->cache.validCount(), 2u);
    const FrameInfo *info = sys.ctl(0).frameInfo(paA);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->state, FrameState::Shared);
}

TEST_F(ProtoTest, AliasReadOfOwnedPageSelfCompetes)
{
    sys.doWrite(0, 1, vaA, 77); // own privately via vaA
    const auto aborts = sys.bus.aborts().value();

    // Reading the alias issues read-shared; our own monitor aborts it,
    // we downgrade (write back), and the retry succeeds.
    EXPECT_EQ(sys.doRead(0, 1, vaAlias), 77u);
    EXPECT_GT(sys.bus.aborts().value(), aborts);
    EXPECT_EQ(sys.memory.readWord(paA), 77u);
    EXPECT_EQ(sys.ctl(0).frameInfo(paA)->state, FrameState::Shared);
}

TEST_F(ProtoTest, WriteUpgradeDiscardsOwnAliasCopies)
{
    sys.doAccess(0, 1, vaA, false);
    sys.doAccess(0, 1, vaAlias, false);
    // Upgrade via vaA: the self-echo interrupt discards the vaAlias
    // copy ("when a cache page becomes private, all other cached
    // copies of the page are discarded").
    sys.doWrite(0, 1, vaA, 3);
    sys.doService(0);
    const auto res = sys.boards[0]->cache.probe(1, vaAlias, false, false);
    EXPECT_FALSE(res.hit);
    // The owning copy survives.
    EXPECT_TRUE(sys.boards[0]->cache.probe(1, vaA, false, false).hit);
}

TEST_F(ProtoTest, AliasWriteAfterWriteStaysCoherent)
{
    sys.doWrite(0, 1, vaA, 10);
    // Write via the alias: read-private against our own Protect entry
    // aborts, we flush, retry acquires privately again.
    sys.doWrite(0, 1, vaAlias, 20);
    sys.doService(0);
    EXPECT_EQ(sys.doRead(0, 1, vaAlias), 20u);
    // After flushing and re-fetching, vaA sees the same frame.
    IdleServicer s0(sys.events, sys.ctl(0));
    EXPECT_EQ(sys.doRead(0, 1, vaA), 20u);
}

// --------------------------------------------------------- protection

TEST_F(ProtoTest, ProtectionFaultInvokesHandlerAndRetries)
{
    sys.translator.map(1, vaB, paB, roProt); // read-only
    int faults = 0;
    sys.ctl(0).setFaultHandler(
        [&](const TranslateRequest &req, CacheController::Done retry) {
            ++faults;
            EXPECT_TRUE(req.write);
            sys.translator.map(1, vaB, paB, rwProt);
            retry();
        });
    sys.doWrite(0, 1, vaB, 5);
    EXPECT_EQ(faults, 1);
    EXPECT_EQ(sys.doRead(0, 1, vaB), 5u);
}

TEST_F(ProtoTest, UnmappedPageFaults)
{
    const Addr unmapped = 0x90000;
    int faults = 0;
    sys.ctl(0).setFaultHandler(
        [&](const TranslateRequest &req, CacheController::Done retry) {
            ++faults;
            sys.translator.map(1, unmapped, 0x8000, rwProt);
            (void)req;
            retry();
        });
    EXPECT_EQ(sys.doAccess(0, 1, unmapped, false),
              AccessOutcome::MissCompleted);
    EXPECT_EQ(faults, 1);
}

TEST_F(ProtoTest, FaultWithoutHandlerIsFatal)
{
    EXPECT_THROW(sys.doAccess(0, 1, 0xdead0000, false), FatalError);
}

TEST_F(ProtoTest, ReadOnlyPageReadableButNotWritable)
{
    sys.translator.map(1, vaB, paB, roProt);
    EXPECT_EQ(sys.doAccess(0, 1, vaB, false),
              AccessOutcome::MissCompleted);
    int faults = 0;
    sys.ctl(0).setFaultHandler(
        [&](const TranslateRequest &, CacheController::Done retry) {
            ++faults;
            sys.translator.map(1, vaB, paB, rwProt);
            retry();
        });
    sys.doWrite(0, 1, vaB, 1);
    EXPECT_EQ(faults, 1);
}

// ----------------------------------------------- stale entries / FIFO

TEST_F(ProtoTest, StaleSharedEntryCleanedLazily)
{
    // Fill the set so a shared page gets evicted without an
    // action-table write (lazy cleanup policy).
    sys.doAccess(0, 1, vaA, false);
    for (int i = 1; i <= 2; ++i) {
        const Addr va = vaA + i * 8 * pageBytes;
        sys.translator.map(1, va, 0x8000 + i * 0x1000, rwProt);
        sys.doAccess(0, 1, va, false);
    }
    // vaA evicted; the 01 entry is stale.
    EXPECT_FALSE(sys.boards[0]->cache.probe(1, vaA, false, false).hit);
    EXPECT_EQ(sys.boards[0]->monitor.table().entryFor(paA),
              ActionEntry::Shared);

    // A remote writer triggers the spurious interrupt; servicing it
    // clears the stale entry.
    sys.doWrite(1, 2, vaA, 1);
    sys.doService(0);
    EXPECT_EQ(sys.ctl(0).spuriousWords().value(), 1u);
    EXPECT_EQ(sys.boards[0]->monitor.table().entryFor(paA),
              ActionEntry::Ignore);
}

TEST(ProtoFifo, OverflowRecoveryInvalidatesSharedEntries)
{
    // FIFO of capacity 1 drops words easily.
    MiniSystem sys(2, 1);
    sys.translator.map(1, vaA, paA, rwProt);
    sys.translator.map(1, vaB, paB, rwProt);
    sys.translator.map(2, vaA, paA, rwProt);
    sys.translator.map(2, vaB, paB, rwProt);

    // cpu0 holds two shared pages.
    sys.doAccess(0, 1, vaA, false);
    sys.doAccess(0, 1, vaB, false);

    // cpu1 takes both privately; the second word is dropped.
    sys.doWrite(1, 2, vaA, 1);
    sys.doWrite(1, 2, vaB, 2);
    EXPECT_TRUE(sys.boards[0]->monitor.fifo().overflowed());

    sys.doService(0);
    EXPECT_EQ(sys.ctl(0).overflowRecoveries().value(), 1u);
    // Both shared copies are gone and both entries cleared, even the
    // one whose word was lost.
    EXPECT_FALSE(sys.boards[0]->cache.probe(1, vaA, false, false).hit);
    EXPECT_FALSE(sys.boards[0]->cache.probe(1, vaB, false, false).hit);
    EXPECT_EQ(sys.boards[0]->monitor.table().entryFor(paA),
              ActionEntry::Ignore);
    EXPECT_EQ(sys.boards[0]->monitor.table().entryFor(paB),
              ActionEntry::Ignore);
    EXPECT_FALSE(sys.boards[0]->monitor.fifo().overflowed());
}

// ------------------------------------------------- DMA bracket & misc

TEST_F(ProtoTest, AssertOwnershipFlushesAllCaches)
{
    sys.doAccess(0, 1, vaA, false); // cpu0 shared copy
    sys.doWrite(1, 2, vaB, 9);      // cpu1 owns paB dirty

    // A third party (cpu1 here, acting as the OS) prepares paA for DMA.
    bool done = false;
    sys.ctl(1).assertOwnership(paA, [&] { done = true; });
    sys.events.run();
    EXPECT_TRUE(done);
    sys.doService(0);
    EXPECT_FALSE(sys.boards[0]->cache.probe(1, vaA, false, false).hit);
    EXPECT_EQ(sys.boards[1]->monitor.table().entryFor(paA),
              ActionEntry::Protect);

    // DMA writes proceed unobserved; consistency transactions from
    // other masters would be aborted meanwhile.
    done = false;
    sys.ctl(1).releaseProtection(paA, [&] { done = true; });
    sys.events.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(sys.boards[1]->monitor.table().entryFor(paA),
              ActionEntry::Ignore);
}

TEST_F(ProtoTest, ProtectedFrameAbortsRemoteAccess)
{
    bool done = false;
    sys.ctl(0).assertOwnership(paA, [&] { done = true; });
    sys.events.run();
    ASSERT_TRUE(done);

    // cpu1's read is aborted until cpu0 releases.
    IdleServicer s0(sys.events, sys.ctl(0));
    EXPECT_EQ(sys.doRead(1, 2, vaA), 0u);
    EXPECT_GE(sys.ctl(1).retries().value(), 1u);
    // cpu0's service relinquished the protection.
    EXPECT_EQ(sys.ctl(0).frameInfo(paA), nullptr);
}

TEST_F(ProtoTest, NotifyReachesSubscribedProcessor)
{
    std::vector<Addr> notified;
    sys.ctl(0).setNotifyHandler(
        [&](Addr paddr) { notified.push_back(paddr); });

    bool set = false;
    sys.ctl(0).writeActionTable(paB, ActionEntry::Notify,
                                [&] { set = true; });
    sys.events.run();
    ASSERT_TRUE(set);

    bool sent = false;
    sys.ctl(1).notifyFrame(paB, [&] { sent = true; });
    sys.events.run();
    ASSERT_TRUE(sent);
    sys.doService(0);
    ASSERT_EQ(notified.size(), 1u);
    EXPECT_EQ(notified[0], alignDown(paB, pageBytes));
}

TEST_F(ProtoTest, UncachedOperationsBypassCache)
{
    sys.memory.writeWord(0x9000, 123);
    std::uint32_t got = 0;
    sys.ctl(0).uncachedRead(0x9000, [&](std::uint32_t v) { got = v; });
    sys.events.run();
    EXPECT_EQ(got, 123u);

    bool wrote = false;
    sys.ctl(0).uncachedWrite(0x9004, 456, [&] { wrote = true; });
    sys.events.run();
    EXPECT_TRUE(wrote);
    EXPECT_EQ(sys.memory.readWord(0x9004), 456u);
    // No cache slot was consumed.
    EXPECT_EQ(sys.boards[0]->cache.validCount(), 0u);
}

TEST_F(ProtoTest, UncachedTasIsAtomicTestAndSet)
{
    std::uint32_t first = 99, second = 99;
    sys.ctl(0).uncachedTas(0xa000, [&](std::uint32_t v) { first = v; });
    sys.events.run();
    sys.ctl(1).uncachedTas(0xa000, [&](std::uint32_t v) { second = v; });
    sys.events.run();
    EXPECT_EQ(first, 0u);
    EXPECT_EQ(second, 1u);
    EXPECT_EQ(sys.memory.readWord(0xa000), 1u);
}

TEST_F(ProtoTest, PrivateHintFetchesReadPrivate)
{
    // Section 5.4: memory declared non-shared is fetched read-private
    // even on a read miss, so the first write needs no upgrade.
    const Addr va_hinted = 0x50000;
    sys.translator.map(1, va_hinted, 0x6000, rwProt,
                       /*private_hint=*/true);

    const auto rp_before =
        sys.bus.countOf(mem::TxType::ReadPrivate).value();
    EXPECT_EQ(sys.doAccess(0, 1, va_hinted, false),
              AccessOutcome::MissCompleted);
    EXPECT_EQ(sys.bus.countOf(mem::TxType::ReadPrivate).value(),
              rp_before + 1);
    EXPECT_EQ(sys.ctl(0).hintedPrivateFills().value(), 1u);

    const FrameInfo *info = sys.ctl(0).frameInfo(0x6000);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->state, FrameState::Private);

    // First write is a plain hit: no assert-ownership needed.
    const auto ao_before =
        sys.bus.countOf(mem::TxType::AssertOwnership).value();
    sys.doWrite(0, 1, va_hinted, 9);
    EXPECT_EQ(sys.bus.countOf(mem::TxType::AssertOwnership).value(),
              ao_before);
}

// ------------------------------------------------ protocol invariants

TEST_F(ProtoTest, OnlyWriteBacksMutateMemoryDuringCachedWork)
{
    IdleServicer s0(sys.events, sys.ctl(0));
    IdleServicer s1(sys.events, sys.ctl(1));
    for (std::uint32_t i = 0; i < 12; ++i) {
        const std::size_t cpu = i % 2;
        const Asid asid = static_cast<Asid>(cpu + 1);
        sys.doWrite(cpu, asid, vaA, i);
        sys.doAccess(cpu, asid, vaB, i % 3 == 0);
    }
    // Every memory write was a successful write-back transaction.
    EXPECT_EQ(sys.memory.writes().value(),
              sys.bus.countOf(mem::TxType::WriteBack).value());
}

TEST_F(ProtoTest, TwoStateInvariantAfterQuiescence)
{
    IdleServicer s0(sys.events, sys.ctl(0));
    IdleServicer s1(sys.events, sys.ctl(1));
    for (std::uint32_t i = 0; i < 8; ++i) {
        sys.doWrite(i % 2, static_cast<Asid>(i % 2 + 1), vaA, i);
        sys.doRead((i + 1) % 2, static_cast<Asid>((i + 1) % 2 + 1), vaA);
    }
    sys.doService(0);
    sys.doService(1);

    // At quiescence the frame is either private to exactly one cache
    // or shared with memory current.
    const FrameInfo *i0 = sys.ctl(0).frameInfo(paA);
    const FrameInfo *i1 = sys.ctl(1).frameInfo(paA);
    const bool p0 = i0 && i0->state == FrameState::Private;
    const bool p1 = i1 && i1->state == FrameState::Private;
    EXPECT_FALSE(p0 && p1);
    if (!p0 && !p1) {
        // Shared: both copies (if any) must equal memory.
        const std::uint32_t mem_val = sys.memory.readWord(paA);
        for (std::size_t cpu = 0; cpu < 2; ++cpu) {
            const Asid asid = static_cast<Asid>(cpu + 1);
            const auto res =
                sys.boards[cpu]->cache.probe(asid, vaA, false, false);
            if (res.hit) {
                std::uint32_t v = 0;
                sys.boards[cpu]->cache.readBytes(
                    *res.slot, sys.boards[cpu]->cache.offsetOf(vaA),
                    &v, 4);
                EXPECT_EQ(v, mem_val);
            }
        }
    }
}

} // namespace
} // namespace vmp::proto
