/**
 * @file
 * Property tests for the two-level bus hierarchy (HierVmpSystem +
 * InterBusBoard): two-state legality must hold *per level* — within a
 * cluster at most one processor holds a frame Private and only while
 * its cluster owns the frame, and across clusters at most one
 * inter-bus board holds the cluster-level Protect entry. Memory
 * mutations at both levels must be exactly the successful write-backs
 * on the corresponding bus, cross-cluster word-level sharing must stay
 * exact under frame migration, and heavily shared workloads must run
 * to completion (deadlock freedom) even under adversarial FIFO sizes.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "core/hier_system.hh"
#include "sim/logging.hh"
#include "trace/synthetic.hh"
#include "trace/workloads.hh"

namespace vmp
{
namespace
{

/** Drain every processor FIFO and let the inter-bus boards settle. */
void
quiesce(core::HierVmpSystem &system)
{
    for (int round = 0; round < 6; ++round) {
        for (std::uint32_t cpu = 0; cpu < system.totalCpus(); ++cpu) {
            bool done = false;
            system.controller(cpu).serviceInterrupts(
                [&] { done = true; });
            system.events().run();
            ASSERT_TRUE(done);
        }
    }
    for (std::uint32_t k = 0; k < system.clusters(); ++k)
        EXPECT_TRUE(system.interBusBoard(k).idle())
            << "cluster " << k << " board not idle at quiescence";
}

/**
 * Two-state legality per level, checked frame by frame:
 *  - within each cluster, at most one processor Private;
 *  - a processor Private copy implies its cluster holds Protect;
 *  - a processor Shared copy implies its cluster holds the frame;
 *  - across clusters, at most one cluster-level Protect.
 */
void
expectTwoLevelInvariant(core::HierVmpSystem &system)
{
    const auto &cfg = system.config();
    const std::uint64_t frames = cfg.memBytes / cfg.cache.pageBytes;
    for (std::uint64_t frame = 0; frame < frames; ++frame) {
        const Addr pa = frame * cfg.cache.pageBytes;
        unsigned cluster_owners = 0;
        for (std::uint32_t k = 0; k < cfg.clusters; ++k) {
            const auto state = system.interBusBoard(k).clusterState(pa);
            if (state == mem::ActionEntry::Protect)
                ++cluster_owners;
            unsigned local_owners = 0;
            for (std::uint32_t i = 0; i < cfg.cpusPerCluster; ++i) {
                const auto cpu = k * cfg.cpusPerCluster + i;
                const auto *info = system.controller(cpu).frameInfo(pa);
                if (info == nullptr)
                    continue;
                if (info->state == proto::FrameState::Private) {
                    ++local_owners;
                    EXPECT_EQ(state, mem::ActionEntry::Protect)
                        << "cpu " << cpu << " holds frame " << frame
                        << " Private but cluster " << k
                        << " does not own it";
                } else {
                    EXPECT_NE(state, mem::ActionEntry::Ignore)
                        << "cpu " << cpu << " caches frame " << frame
                        << " but cluster " << k << " is absent";
                }
            }
            ASSERT_LE(local_owners, 1u)
                << "cluster " << k << " frame " << frame;
        }
        ASSERT_LE(cluster_owners, 1u) << "frame " << frame;
    }
}

/**
 * Mutation accounting per level: main memory changes only via
 * successful global-bus write-backs, each cluster image only via
 * successful local-bus write-backs (global fetches install through
 * initBlock, which is counted separately).
 */
void
expectTwoLevelWriteInvariant(core::HierVmpSystem &system)
{
    const auto &gbus = system.globalBus();
    const std::uint64_t global_expected =
        gbus.countOf(mem::TxType::WriteBack).value() +
        gbus.countOf(mem::TxType::DmaWrite).value();
    EXPECT_EQ(system.memory().writes().value(), global_expected);

    for (std::uint32_t k = 0; k < system.clusters(); ++k) {
        const auto &bus = system.localBus(k);
        const std::uint64_t local_expected =
            bus.countOf(mem::TxType::WriteBack).value() +
            bus.countOf(mem::TxType::DmaWrite).value();
        EXPECT_EQ(system.image(k).writes().value(), local_expected)
            << "cluster " << k;
    }
}

trace::SyntheticConfig
sharedKernelWorkload(std::uint64_t refs, std::uint64_t seed)
{
    auto workload = trace::workloadConfig("atum3");
    workload.totalRefs = refs;
    workload.seed = seed;
    return workload;
}

// ------------------------------------------------------- configuration

TEST(HierConfig, RejectsBadShapes)
{
    core::HierConfig cfg;
    cfg.clusters = 0;
    EXPECT_THROW(core::HierVmpSystem{cfg}, FatalError);
    cfg = {};
    cfg.cpusPerCluster = 9;
    EXPECT_THROW(core::HierVmpSystem{cfg}, FatalError);
    cfg = {};
    cfg.memBytes = cfg.cache.pageBytes * 3 + 1;
    EXPECT_THROW(core::HierVmpSystem{cfg}, FatalError);
    cfg = {};
    cfg.ibcFifoCapacity = 0;
    EXPECT_THROW(core::HierVmpSystem{cfg}, FatalError);
}

TEST(HierConfig, FlatIndexMapsClusterMajor)
{
    core::HierConfig cfg;
    cfg.clusters = 2;
    cfg.cpusPerCluster = 2;
    cfg.memBytes = MiB(1);
    core::HierVmpSystem system(cfg);
    EXPECT_EQ(system.totalCpus(), 4u);
    // CPU 3 must live on cluster 1's bus, not cluster 0's: a cached
    // read through its controller misses onto local bus 1 only.
    bool done = false;
    system.controller(3).readWord(1, trace::kernelBase + 0x100, true,
                                  [&](std::uint32_t) { done = true; });
    system.events().run();
    ASSERT_TRUE(done);
    EXPECT_GT(system.localBus(1).countOf(mem::TxType::ReadShared)
                  .value(), 0u);
    EXPECT_EQ(system.localBus(0).countOf(mem::TxType::ReadShared)
                  .value(), 0u);
}

// -------------------------------------------------- shared-trace runs

TEST(HierSystem, SharedKernelTracesKeepInvariants)
{
    core::HierConfig cfg;
    cfg.clusters = 4;
    cfg.cpusPerCluster = 4;
    cfg.cache = cache::CacheConfig{256, 2, 16, true};
    cfg.memBytes = MiB(2);
    core::HierVmpSystem system(cfg);

    std::vector<std::unique_ptr<trace::SyntheticGen>> gens;
    std::vector<trace::RefSource *> sources;
    for (std::uint32_t i = 0; i < 16; ++i) {
        // Shared kernel image across *all* clusters: forces
        // cross-cluster ownership migration through the boards.
        gens.push_back(std::make_unique<trace::SyntheticGen>(
            sharedKernelWorkload(8'000, 500 + i)));
        sources.push_back(gens.back().get());
    }
    const auto result = system.runTraces(sources);
    EXPECT_EQ(result.totalRefs, 128'000u);
    EXPECT_GT(result.globalFetches, 0u);
    EXPECT_GT(result.globalWriteBacks, 0u);

    quiesce(system);
    expectTwoLevelInvariant(system);
    expectTwoLevelWriteInvariant(system);
}

TEST(HierSystem, PartitionedWorkloadsStayMostlyLocal)
{
    core::HierConfig cfg;
    cfg.clusters = 2;
    cfg.cpusPerCluster = 2;
    cfg.cache = cache::CacheConfig{256, 2, 32, true};
    cfg.memBytes = MiB(4);
    core::HierVmpSystem system(cfg);

    std::vector<std::unique_ptr<trace::SyntheticGen>> gens;
    std::vector<trace::RefSource *> sources;
    for (std::uint32_t i = 0; i < 4; ++i) {
        auto workload = sharedKernelWorkload(10'000, 700 + i);
        // Disjoint kernel images and ASIDs: no cross-CPU sharing at
        // all, so after cold fetches the global bus should go quiet.
        workload.kernelOffset = Addr(i) * 0x8'0000;
        workload.asidBase = static_cast<Asid>(1 + i * 8);
        gens.push_back(std::make_unique<trace::SyntheticGen>(workload));
        sources.push_back(gens.back().get());
    }
    const auto result = system.runTraces(sources);
    EXPECT_EQ(result.totalRefs, 40'000u);

    // Every global fetch is a cold cluster miss; no invalidations or
    // recalls should have happened between clusters.
    for (std::uint32_t k = 0; k < 2; ++k) {
        EXPECT_EQ(system.interBusBoard(k).invalidates().value(), 0u)
            << "cluster " << k;
        EXPECT_EQ(system.interBusBoard(k).downgrades().value(), 0u)
            << "cluster " << k;
    }
    EXPECT_LT(result.busUtilization, result.meanLocalBusUtilization);

    quiesce(system);
    expectTwoLevelInvariant(system);
    expectTwoLevelWriteInvariant(system);
}

// --------------------------------------- cross-cluster exact sharing

/** Each CPU increments its own word of one shared frame: DRF at word
 *  granularity, maximal false sharing at frame granularity. */
cpu::Program
wordIncrementer(Addr word_pa, std::uint32_t rounds)
{
    using namespace vmp::cpu;
    Program program;
    for (std::uint32_t r = 0; r < rounds; ++r) {
        program.push_back(opRead(word_pa, 1));
        program.push_back(opAddImm(1, 1));
        program.push_back(opWrite(word_pa, 1));
    }
    program.push_back(opHalt());
    return program;
}

TEST(HierSystem, FalseSharingAcrossClustersIsExact)
{
    core::HierConfig cfg;
    cfg.clusters = 2;
    cfg.cpusPerCluster = 2;
    cfg.cache = cache::CacheConfig{128, 2, 8, true}; // tiny
    cfg.memBytes = MiB(1);
    core::HierVmpSystem system(cfg);

    constexpr std::uint32_t kRounds = 25;
    const Addr frame_base = trace::kernelBase + 0x4000;
    std::vector<cpu::Program> programs;
    for (std::uint32_t cpu = 0; cpu < 4; ++cpu)
        programs.push_back(wordIncrementer(
            frame_base + Addr(cpu) * 4, kRounds));

    const auto cpus = system.runPrograms(programs);
    quiesce(system);

    for (std::uint32_t cpu = 0; cpu < 4; ++cpu) {
        std::uint32_t value = 0;
        bool done = false;
        system.controller(0).readWord(
            1, frame_base + Addr(cpu) * 4, true,
            [&](std::uint32_t v) {
                value = v;
                done = true;
            });
        system.events().run();
        ASSERT_TRUE(done);
        EXPECT_EQ(value, kRounds) << "cpu " << cpu << "'s word";
    }
    // The frame really migrated between clusters.
    EXPECT_GT(system.interBusBoard(0).invalidates().value() +
                  system.interBusBoard(0).downgrades().value() +
                  system.interBusBoard(1).invalidates().value() +
                  system.interBusBoard(1).downgrades().value(),
              0u);
    expectTwoLevelInvariant(system);
    expectTwoLevelWriteInvariant(system);
}

// ------------------------------------------- adversarial FIFO sizing

TEST(HierSystem, TinyFifosStillCompleteAndStayCoherent)
{
    core::HierConfig cfg;
    cfg.clusters = 2;
    cfg.cpusPerCluster = 3;
    cfg.cache = cache::CacheConfig{128, 2, 8, true};
    cfg.memBytes = MiB(1);
    cfg.fifoCapacity = 2;
    cfg.ibcFifoCapacity = 2; // forces overflow recoveries
    core::HierVmpSystem system(cfg);

    constexpr std::uint32_t kRounds = 15;
    const Addr frame_base = trace::kernelBase + 0x8000;
    std::vector<cpu::Program> programs;
    for (std::uint32_t cpu = 0; cpu < 6; ++cpu)
        programs.push_back(wordIncrementer(
            frame_base + Addr(cpu) * 4, kRounds));

    // Completion of runPrograms *is* the deadlock-freedom check: a
    // lost wakeup or cross-cluster wait cycle would leave the event
    // queue empty with CPUs stalled, and runPrograms would panic.
    const auto cpus = system.runPrograms(programs);
    quiesce(system);

    for (std::uint32_t cpu = 0; cpu < 6; ++cpu) {
        std::uint32_t value = 0;
        bool done = false;
        system.controller(0).readWord(
            1, frame_base + Addr(cpu) * 4, true,
            [&](std::uint32_t v) {
                value = v;
                done = true;
            });
        system.events().run();
        ASSERT_TRUE(done);
        EXPECT_EQ(value, kRounds) << "cpu " << cpu << "'s word";
    }
    expectTwoLevelInvariant(system);
    expectTwoLevelWriteInvariant(system);
}

// ----------------------------------------------------------- statistics

TEST(HierSystem, StatsMentionEveryLevel)
{
    core::HierConfig cfg;
    cfg.clusters = 2;
    cfg.cpusPerCluster = 2;
    cfg.cache = cache::CacheConfig{256, 2, 16, true};
    cfg.memBytes = MiB(1);
    core::HierVmpSystem system(cfg);

    std::vector<std::unique_ptr<trace::SyntheticGen>> gens;
    std::vector<trace::RefSource *> sources;
    for (std::uint32_t i = 0; i < 4; ++i) {
        gens.push_back(std::make_unique<trace::SyntheticGen>(
            sharedKernelWorkload(5'000, 40 + i)));
        sources.push_back(gens.back().get());
    }
    system.runTraces(sources);

    std::ostringstream os;
    system.dumpStats(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("global_bus.transactions"), std::string::npos);
    EXPECT_NE(out.find("c0.bus.transactions"), std::string::npos);
    EXPECT_NE(out.find("c1.ibc.global_write_backs"),
              std::string::npos);
    EXPECT_NE(out.find("cpu3.misses"), std::string::npos);

    const auto json = system.statsJson();
    const auto text = json.dump();
    EXPECT_NE(text.find("\"c0.ibc\""), std::string::npos);
    EXPECT_NE(text.find("\"cpu3\""), std::string::npos);
}

} // namespace
} // namespace vmp
