/**
 * @file
 * Failstop-recovery tests: the completed-only per-type bus counters,
 * the FailureDetector state machine (abort streaks, liveness sweeps,
 * probe backoff, false suspicions), the RecoveryManager reclaim flow
 * (mask, drain, scan, Reclaim broadcast, backing-store restore), the
 * null-hook determinism guarantee, killBoard/rejoinBoard on the flat
 * machine, DeadOwnerError surfacing without recovery, and inter-bus
 * board death on the two-level hierarchy.
 *
 * The fast tests run in tier-1; the Torture* suites are registered
 * separately under the ctest label "torture" and sweep board-crash
 * schedules (kill one / kill-and-rejoin / kill an inter-bus board)
 * across page sizes and seeds, requiring zero invariant violations
 * and bounded pages_lost on every run.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "check/coherence_checker.hh"
#include "core/hier_system.hh"
#include "core/system.hh"
#include "fault/injector.hh"
#include "mem/bus_types.hh"
#include "mem/phys_mem.hh"
#include "mem/vme_bus.hh"
#include "monitor/bus_monitor.hh"
#include "proto/controller.hh"
#include "recover/failure_detector.hh"
#include "recover/recovery.hh"
#include "sim/event.hh"
#include "sim/logging.hh"
#include "trace/synthetic.hh"
#include "trace/workloads.hh"
#include "vm/backing_store.hh"
#include "vm/page_table.hh"

namespace vmp
{
namespace
{

using mem::ActionEntry;
using mem::TxType;
using mem::WatchVerdict;

// ------------------------------------------------------------ helpers

core::VmpConfig
smallConfig(std::uint32_t cpus, std::uint32_t page_bytes,
            std::size_t fifo_capacity = 128)
{
    core::VmpConfig cfg;
    cfg.processors = cpus;
    cfg.cache = cache::CacheConfig{page_bytes, 2, 16, true};
    cfg.memBytes = MiB(1);
    cfg.fifoCapacity = fifo_capacity;
    return cfg;
}

/** Drain every live board's FIFO so the system is quiescent (a dead
 *  board's serviceInterrupts is a no-op by design). */
void
quiesce(core::VmpSystem &system)
{
    for (int round = 0; round < 4; ++round) {
        for (std::size_t cpu = 0; cpu < system.processors(); ++cpu) {
            bool done = false;
            system.controller(cpu).serviceInterrupts(
                [&] { done = true; });
            system.events().run();
            ASSERT_TRUE(done);
        }
    }
}

std::vector<std::unique_ptr<trace::SyntheticGen>>
makeSources(const std::string &workload, std::uint32_t cpus,
            std::uint64_t refs_per_cpu, std::uint64_t seed)
{
    std::vector<std::unique_ptr<trace::SyntheticGen>> gens;
    for (std::uint32_t i = 0; i < cpus; ++i) {
        auto cfg = trace::workloadConfig(workload);
        cfg.totalRefs = refs_per_cpu;
        cfg.seed = seed * 1000 + i;
        gens.push_back(std::make_unique<trace::SyntheticGen>(cfg));
    }
    return gens;
}

std::vector<trace::RefSource *>
rawSources(std::vector<std::unique_ptr<trace::SyntheticGen>> &gens)
{
    std::vector<trace::RefSource *> raw;
    for (auto &g : gens)
        raw.push_back(g.get());
    return raw;
}

std::string
reportsOf(const check::CoherenceChecker &checker)
{
    std::ostringstream os;
    for (const auto &r : checker.reports())
        os << r << "\n";
    return os.str();
}

/** Minimal bus rig: memory + bus, no processors. */
struct BusRig
{
    explicit BusRig(std::uint32_t page_bytes = 256)
        : memory(MiB(1), page_bytes), bus(events, memory)
    {}

    /** Issue @p tx and run to completion; returns aborted flag. */
    bool
    issue(const mem::BusTransaction &tx)
    {
        bool done = false;
        bool aborted = false;
        bus.request(tx, [&](const mem::TxResult &r) {
            aborted = r.aborted;
            done = true;
        });
        events.run();
        EXPECT_TRUE(done);
        return aborted;
    }

    mem::BusTransaction
    shortTx(TxType type, Addr paddr, std::uint32_t requester)
    {
        mem::BusTransaction tx;
        tx.type = type;
        tx.requester = requester;
        tx.paddr = paddr;
        return tx;
    }

    EventQueue events;
    mem::PhysMem memory;
    mem::VmeBus bus;
};

// --------------------------------------------------- per-type counters
//
// Regression for the completed-only countOf() semantics: an
// aborted-then-retried transaction must count exactly once in
// countOf() (when it finally succeeds) and exactly once in abortsOf().
// Counting aborted grants in countOf() used to double-count every
// retried transaction during recovery storms.

/** Aborts the first ReadShared it observes, then ignores everything. */
class AbortOnce : public mem::BusWatcher
{
  public:
    WatchVerdict
    observe(const mem::BusTransaction &tx) override
    {
        if (tx.type == TxType::ReadShared && !fired_) {
            fired_ = true;
            return WatchVerdict::AbortAndInterrupt;
        }
        return WatchVerdict::Ignore;
    }

    void sideEffectUpdate(const mem::BusTransaction &) override {}

  private:
    bool fired_ = false;
};

TEST(BusCounters, AbortedThenRetriedCountsOnce)
{
    BusRig rig;
    AbortOnce watcher;
    rig.bus.attachWatcher(1, watcher);

    std::vector<std::uint8_t> buf(256);
    mem::BusTransaction tx;
    tx.type = TxType::ReadShared;
    tx.requester = 0;
    tx.paddr = 0;
    tx.bytes = 256;
    tx.data = buf.data();

    EXPECT_TRUE(rig.issue(tx));  // aborted attempt
    EXPECT_FALSE(rig.issue(tx)); // retry succeeds

    // The logical transaction completed once and aborted once.
    EXPECT_EQ(rig.bus.countOf(TxType::ReadShared).value(), 1u);
    EXPECT_EQ(rig.bus.abortsOf(TxType::ReadShared).value(), 1u);
    EXPECT_EQ(rig.bus.transactions().value(), 2u);
    EXPECT_EQ(rig.bus.aborts().value(), 1u);
}

TEST(BusCounters, RecoveryTxBypassesProtectAndMaskSilencesMonitor)
{
    BusRig rig;
    monitor::BusMonitor monitor(2, MiB(1), 256);
    rig.bus.attachWatcher(2, monitor);
    monitor.table().set(0, ActionEntry::Protect);

    // Sanity: a consistency transaction against Protect aborts.
    EXPECT_TRUE(
        rig.issue(rig.shortTx(TxType::AssertOwnership, 0, 5)));

    // Recovery broadcasts are not consistency-related: the stale
    // Protect entry must not abort them.
    EXPECT_FALSE(rig.issue(rig.shortTx(TxType::Reclaim, 0, 5)));
    EXPECT_FALSE(rig.issue(rig.shortTx(TxType::BoardMask, 0, 5)));
    EXPECT_EQ(rig.bus.countOf(TxType::Reclaim).value(), 1u);
    EXPECT_EQ(rig.bus.countOf(TxType::BoardMask).value(), 1u);

    // A masked (declared-dead) monitor stops aborting entirely.
    monitor.setMasked(true);
    EXPECT_FALSE(
        rig.issue(rig.shortTx(TxType::AssertOwnership, 0, 5)));
}

// ----------------------------------------------------------- detector

struct DetectorRig : BusRig
{
    explicit DetectorRig(recover::DetectorConfig cfg)
        : monitor(0, MiB(1), 256),
          detector(events, bus, 256, cfg)
    {
        bus.attachWatcher(0, monitor);
        detector.addBoard(0, &monitor, [this] { return alive; });
        detector.setOnDead([this](std::uint32_t master) {
            deadMasters.push_back(master);
        });
        detector.install();
    }

    monitor::BusMonitor monitor;
    recover::FailureDetector detector;
    bool alive = true;
    std::vector<std::uint32_t> deadMasters;
};

TEST(Detector, AbortStreakSuspectsProbesAndDeclares)
{
    recover::DetectorConfig cfg;
    cfg.deadlineNs = 1'000;
    cfg.maxProbes = 3;
    cfg.abortStreakThreshold = 4;
    cfg.sweepPeriod = 1u << 30; // only the abort-streak path
    DetectorRig rig(cfg);

    rig.monitor.table().set(0, ActionEntry::Protect);
    rig.alive = false;

    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(
            rig.issue(rig.shortTx(TxType::AssertOwnership, 0, 9)));

    // The 4th consecutive abort crossed the threshold; the suspicion's
    // probe chain (already drained by issue's events.run()) escalated
    // through maxProbes failed probes to a declaration.
    EXPECT_EQ(rig.detector.suspicions().value(), 1u);
    EXPECT_EQ(rig.detector.probes().value(), 3u);
    EXPECT_EQ(rig.detector.declarations().value(), 1u);
    EXPECT_EQ(rig.detector.falseSuspicions().value(), 0u);
    EXPECT_TRUE(rig.detector.declaredDead(0));
    ASSERT_EQ(rig.deadMasters.size(), 1u);
    EXPECT_EQ(rig.deadMasters[0], 0u);
}

TEST(Detector, SuccessResetsAbortStreak)
{
    recover::DetectorConfig cfg;
    cfg.deadlineNs = 1'000;
    cfg.abortStreakThreshold = 4;
    cfg.sweepPeriod = 1u << 30;
    DetectorRig rig(cfg);

    rig.monitor.table().set(0, ActionEntry::Protect);

    // 3 aborts, one success (entry lifted, as a live owner would),
    // 3 more aborts: never 4 *consecutive*, so no suspicion.
    for (int i = 0; i < 3; ++i)
        rig.issue(rig.shortTx(TxType::AssertOwnership, 0, 9));
    rig.monitor.table().set(0, ActionEntry::Ignore);
    rig.issue(rig.shortTx(TxType::AssertOwnership, 0, 9));
    rig.monitor.table().set(0, ActionEntry::Protect);
    for (int i = 0; i < 3; ++i)
        rig.issue(rig.shortTx(TxType::AssertOwnership, 0, 9));
    EXPECT_EQ(rig.detector.suspicions().value(), 0u);

    // One more consecutive abort crosses the threshold.
    rig.issue(rig.shortTx(TxType::AssertOwnership, 0, 9));
    EXPECT_EQ(rig.detector.suspicions().value(), 1u);
}

TEST(Detector, FalseSuspicionClearsOnFirstProbe)
{
    recover::DetectorConfig cfg;
    cfg.deadlineNs = 1'000;
    cfg.maxProbes = 3;
    cfg.abortStreakThreshold = 2;
    cfg.sweepPeriod = 1u << 30;
    DetectorRig rig(cfg);

    rig.monitor.table().set(0, ActionEntry::Protect);
    // Board stays alive: the first probe clears the suspicion.
    for (int i = 0; i < 2; ++i)
        rig.issue(rig.shortTx(TxType::AssertOwnership, 0, 9));

    EXPECT_EQ(rig.detector.suspicions().value(), 1u);
    EXPECT_EQ(rig.detector.probes().value(), 1u);
    EXPECT_EQ(rig.detector.falseSuspicions().value(), 1u);
    EXPECT_EQ(rig.detector.declarations().value(), 0u);
    EXPECT_FALSE(rig.detector.declaredDead(0));
    EXPECT_TRUE(rig.deadMasters.empty());
}

TEST(Detector, LivenessSweepCatchesSilentBoard)
{
    recover::DetectorConfig cfg;
    cfg.deadlineNs = 1'000;
    cfg.maxProbes = 2;
    cfg.sweepPeriod = 4;
    DetectorRig rig(cfg);

    rig.alive = false;
    // No aborts at all — the board owns nothing — but the liveness
    // sweep after 4 observed consistency transactions still finds it.
    for (int i = 0; i < 4; ++i)
        EXPECT_FALSE(rig.issue(rig.shortTx(TxType::Notify, 0, 9)));

    EXPECT_EQ(rig.detector.suspicions().value(), 1u);
    EXPECT_TRUE(rig.detector.declaredDead(0));
}

// ------------------------------------------------- health witnesses

/** DetectorRig plus a mutable health report and fence/unfence logs. */
struct WitnessRig : BusRig
{
    explicit WitnessRig(recover::DetectorConfig cfg)
        : monitor(0, MiB(1), 256), detector(events, bus, 256, cfg)
    {
        bus.attachWatcher(0, monitor);
        detector.addBoard(0, &monitor,
                          [this] { return health.alive; });
        detector.setHealthFn(0, [this] { return health; });
        detector.setOnDead([this](std::uint32_t master) {
            deadMasters.push_back(master);
        });
        detector.setOnFence(
            [this](std::uint32_t master, recover::SuspicionKind kind) {
                fencedMasters.push_back(master);
                fenceKinds.push_back(kind);
            });
        detector.setOnUnfence([this](std::uint32_t master) {
            unfencedMasters.push_back(master);
        });
        detector.install();
    }

    monitor::BusMonitor monitor;
    recover::FailureDetector detector;
    recover::HealthReport health{};
    std::vector<std::uint32_t> deadMasters;
    std::vector<std::uint32_t> fencedMasters;
    std::vector<recover::SuspicionKind> fenceKinds;
    std::vector<std::uint32_t> unfencedMasters;
};

TEST(Witness, WedgeWitnessFencesUnresponsiveBoard)
{
    recover::DetectorConfig cfg;
    cfg.deadlineNs = 1'000;
    cfg.maxProbes = 2;
    cfg.sweepPeriod = 4;
    cfg.wedgeSweeps = 2;
    cfg.unfenceCheckNs = 5'000;
    cfg.unfenceChecks = 2;
    WitnessRig rig(cfg);

    // Alive but not responsive: backlog pending, epoch frozen (it
    // stays at the value snapshotted when the witness was attached).
    rig.health.responsive = false;
    rig.health.pendingWords = 3;

    // Two sweeps (4 observed transactions each) with a frozen epoch
    // cross wedgeSweeps; the probes see an unresponsive loop and the
    // declaration routes to a fence, not a failstop declaration.
    for (int i = 0; i < 8; ++i)
        rig.issue(rig.shortTx(TxType::Notify, 0, 9));

    EXPECT_EQ(rig.detector.wedgeSuspicions().value(), 1u);
    EXPECT_EQ(rig.detector.fences().value(), 1u);
    EXPECT_EQ(rig.detector.declarations().value(), 0u);
    EXPECT_TRUE(rig.detector.isFenced(0));
    EXPECT_EQ(rig.detector.fenceKindOf(0),
              recover::SuspicionKind::Wedge);
    ASSERT_EQ(rig.fencedMasters.size(), 1u);
    EXPECT_EQ(rig.fencedMasters[0], 0u);
    EXPECT_EQ(rig.fenceKinds[0], recover::SuspicionKind::Wedge);
    // The board never recovered: both rechecks failed, fence stands.
    EXPECT_TRUE(rig.unfencedMasters.empty());
    EXPECT_TRUE(rig.deadMasters.empty());
}

TEST(Witness, FalsePositiveFenceUnfencesHealthyBoard)
{
    recover::DetectorConfig cfg;
    cfg.unfenceCheckNs = 5'000;
    cfg.unfenceChecks = 2;
    WitnessRig rig(cfg);

    // Operator (or over-eager policy) fences a perfectly healthy
    // board: the first recovery recheck sees it answering and lifts
    // the quarantine.
    rig.detector.fenceBoard(0, recover::SuspicionKind::Wedge);
    EXPECT_TRUE(rig.detector.isFenced(0));
    rig.events.run();

    EXPECT_EQ(rig.detector.unfences().value(), 1u);
    EXPECT_FALSE(rig.detector.isFenced(0));
    ASSERT_EQ(rig.unfencedMasters.size(), 1u);
    EXPECT_EQ(rig.unfencedMasters[0], 0u);
}

TEST(Witness, BabbleWitnessFencesThenSilenceUnfences)
{
    recover::DetectorConfig cfg;
    cfg.deadlineNs = 1'000;
    cfg.maxProbes = 2;
    cfg.sweepPeriod = 4;
    cfg.babbleMinWords = 4;
    cfg.babbleFraction = 0.5;
    cfg.babbleSweeps = 1; // single-window flow test; strikes below
    cfg.unfenceCheckNs = 10'000;
    cfg.unfenceChecks = 2;
    WitnessRig rig(cfg);

    // Since the last sweep the board serviced 8 words, all spurious.
    rig.health.wordsServiced = 8;
    rig.health.spuriousWords = 8;
    rig.health.fifoPushed = 16;

    for (int i = 0; i < 3; ++i)
        rig.issue(rig.shortTx(TxType::Notify, 0, 9));
    // The babble keeps flowing between the imminent suspicion (at the
    // 4th transaction, a short-tx time from now) and its first probe
    // (a full deadline later).
    rig.events.scheduleIn(500, [&rig] {
        rig.health.wordsServiced += 8;
        rig.health.spuriousWords += 8;
        rig.health.fifoPushed += 8;
    }, "babble-continues");
    rig.issue(rig.shortTx(TxType::Notify, 0, 9));

    EXPECT_EQ(rig.detector.babbleSuspicions().value(), 1u);
    EXPECT_EQ(rig.detector.fences().value(), 1u);
    ASSERT_EQ(rig.fenceKinds.size(), 1u);
    EXPECT_EQ(rig.fenceKinds[0], recover::SuspicionKind::Babble);
    // After the fence the FIFO went silent (fifoPushed stopped
    // moving): one quiet recheck window proves the fault cleared.
    EXPECT_EQ(rig.detector.unfences().value(), 1u);
    EXPECT_FALSE(rig.detector.isFenced(0));
}

TEST(Witness, BoardDeadUnderWitnessSuspicionIsDeclaredNotFenced)
{
    recover::DetectorConfig cfg;
    cfg.deadlineNs = 1'000;
    cfg.maxProbes = 2;
    cfg.sweepPeriod = 4;
    cfg.babbleMinWords = 4;
    cfg.babbleFraction = 0.5;
    cfg.babbleSweeps = 1;
    WitnessRig rig(cfg);

    // A babbling board draws a witness suspicion, then failstops
    // outright before the first probe fires. Liveness trumps the
    // suspicion kind: the corpse is declared dead, not fenced — a
    // fence would be lifted by the first quiet recheck (a dead FIFO
    // is silent too) and the hazard would cycle forever.
    rig.health.wordsServiced = 8;
    rig.health.spuriousWords = 8;
    rig.health.fifoPushed = 16;
    for (int i = 0; i < 3; ++i)
        rig.issue(rig.shortTx(TxType::Notify, 0, 9));
    rig.events.scheduleIn(500, [&rig] {
        rig.health.alive = false;
    }, "board-dies");
    rig.issue(rig.shortTx(TxType::Notify, 0, 9));
    EXPECT_EQ(rig.detector.babbleSuspicions().value(), 1u);
    rig.events.run();

    EXPECT_EQ(rig.detector.declarations().value(), 1u);
    EXPECT_EQ(rig.detector.fences().value(), 0u);
    EXPECT_TRUE(rig.detector.declaredDead(0));
    ASSERT_EQ(rig.deadMasters.size(), 1u);
    EXPECT_EQ(rig.deadMasters[0], 0u);
    EXPECT_TRUE(rig.fencedMasters.empty());
}

TEST(Witness, BabbleNeedsSustainedWindows)
{
    recover::DetectorConfig cfg;
    cfg.deadlineNs = 1'000;
    cfg.sweepPeriod = 4;
    cfg.babbleMinWords = 4;
    cfg.babbleFraction = 0.5;
    cfg.babbleSweeps = 2;
    WitnessRig rig(cfg);

    auto sweep = [&rig] {
        for (int i = 0; i < 4; ++i)
            rig.issue(rig.shortTx(TxType::Notify, 0, 9));
    };

    // Window 1: all spurious — a healthy board can legitimately burn
    // one window on stale FIFO entries. One strike, no suspicion.
    rig.health.wordsServiced = 8;
    rig.health.spuriousWords = 8;
    sweep();
    EXPECT_EQ(rig.detector.babbleSuspicions().value(), 0u);

    // Window 2: clean — the strike count resets.
    rig.health.wordsServiced += 8;
    sweep();
    EXPECT_EQ(rig.detector.babbleSuspicions().value(), 0u);

    // Windows 3+4: spurious again, twice in a row — only now does the
    // witness call it babble.
    rig.health.wordsServiced += 8;
    rig.health.spuriousWords += 8;
    sweep();
    EXPECT_EQ(rig.detector.babbleSuspicions().value(), 0u);
    rig.health.wordsServiced += 8;
    rig.health.spuriousWords += 8;
    sweep();
    EXPECT_EQ(rig.detector.babbleSuspicions().value(), 1u);
}

TEST(Witness, FailSlowWitnessFencesAndStaysFenced)
{
    recover::DetectorConfig cfg;
    cfg.deadlineNs = 1'000;
    cfg.maxProbes = 2;
    cfg.sweepPeriod = 4;
    cfg.slowEwmaAlpha = 1.0;
    cfg.slowLatencyNs = 1'000;
    cfg.unfenceCheckNs = 5'000;
    cfg.unfenceChecks = 2;
    WitnessRig rig(cfg);

    // 4 words took 40us: 10us/word against a 1us threshold.
    rig.health.wordsServiced = 4;
    rig.health.serviceBusyNs = 40'000;

    for (int i = 0; i < 4; ++i)
        rig.issue(rig.shortTx(TxType::Notify, 0, 9));

    EXPECT_EQ(rig.detector.slowSuspicions().value(), 1u);
    EXPECT_EQ(rig.detector.fences().value(), 1u);
    EXPECT_EQ(rig.detector.fenceKindOf(0),
              recover::SuspicionKind::FailSlow);
    // Fail-slow boards are not rechecked: quarantine holds until an
    // operator rejoin.
    EXPECT_TRUE(rig.detector.isFenced(0));
    EXPECT_EQ(rig.detector.unfences().value(), 0u);
}

TEST(Witness, StuckTableEscalatesOnlyWithWriteEvidence)
{
    recover::DetectorConfig cfg;
    cfg.deadlineNs = 1'000;
    cfg.maxProbes = 3;
    cfg.abortStreakThreshold = 2;
    cfg.tableStuckStrikes = 2;
    cfg.sweepPeriod = 1u << 30; // only the abort-streak path
    WitnessRig rig(cfg);

    rig.monitor.table().set(0, ActionEntry::Protect);

    // Phase 1: three full streak rounds against a live owner that
    // never released the frame. Each suspicion clears on the first
    // probe, and without a visible release write none of them counts
    // as stuck-table evidence — a recovery-storm retry chain must
    // never get a live owner fenced.
    for (int round = 0; round < 3; ++round)
        for (int i = 0; i < 2; ++i)
            EXPECT_TRUE(rig.issue(
                rig.shortTx(TxType::AssertOwnership, 0, 9)));
    EXPECT_EQ(rig.detector.falseSuspicions().value(), 3u);
    EXPECT_EQ(rig.detector.stuckEscalations().value(), 0u);
    EXPECT_TRUE(rig.fencedMasters.empty());

    // Phase 2: the owner visibly releases the frame on the bus, but
    // its monitor drops the update (the table still reads Protect).
    EXPECT_FALSE(
        rig.issue(rig.shortTx(TxType::WriteActionTable, 0, 0)));
    ASSERT_EQ(rig.monitor.table().get(0), ActionEntry::Protect);

    // Phase 3: post-release streaks on the same frame are hard
    // evidence; tableStuckStrikes of them fence the board.
    for (int round = 0; round < 2; ++round)
        for (int i = 0; i < 2; ++i)
            EXPECT_TRUE(rig.issue(
                rig.shortTx(TxType::AssertOwnership, 0, 9)));
    EXPECT_EQ(rig.detector.stuckEscalations().value(), 1u);
    EXPECT_EQ(rig.detector.fences().value(), 1u);
    EXPECT_EQ(rig.detector.fenceKindOf(0),
              recover::SuspicionKind::StuckTable);
    EXPECT_TRUE(rig.detector.isFenced(0));
    // No recheck path for a stuck table: the fence stands.
    EXPECT_EQ(rig.detector.unfences().value(), 0u);
}

// ----------------------------------------------------- reclaim flow

TEST(Reclaim, FullFlowMasksDrainsReclaimsAndRestores)
{
    // vm-page-sized cache pages so backing-store images line up with
    // physical frames (the restore path requires matching geometry).
    constexpr std::uint32_t page = vm::vmPageBytes;
    BusRig rig(page);
    recover::RecoveryConfig rc;
    rc.detector.deadlineNs = 1'000;
    rc.detector.maxProbes = 2;
    rc.detector.sweepPeriod = 4;
    recover::RecoveryManager manager(rig.events, rig.bus, rig.memory,
                                     rc);

    monitor::BusMonitor monitor(0, MiB(1), page);
    rig.bus.attachWatcher(0, monitor);
    bool alive = true;
    manager.addBoard(0, monitor, [&] { return alive; });
    manager.install();

    // Backing store holds a checkpoint of frame 3 under ASID 7.
    vm::BackingStore store(usec(1));
    std::vector<std::uint8_t> image(page, 0xAB);
    store.store(7, 3, image);
    manager.setBackingStore(&store, 7);

    std::uint64_t sweeps = 0;
    manager.setPostReclaimHook([&] { ++sweeps; });

    // The doomed board owns frame 3 Protect and frame 5 Shared, has a
    // word rotting in its FIFO, and frame 3's memory copy is stale.
    monitor.table().set(3, ActionEntry::Protect);
    monitor.table().set(5, ActionEntry::Shared);
    monitor.fifo().push(monitor::InterruptWord{});
    std::vector<std::uint8_t> stale(page, 0xCD);
    rig.memory.writeBlock(3 * page, stale.data(), page);

    // Failstop; the liveness sweep catches it.
    alive = false;
    for (int i = 0; i < 4; ++i)
        rig.issue(rig.shortTx(TxType::Notify, 0, 9));
    rig.events.run();

    EXPECT_EQ(manager.boardsDeclaredDead().value(), 1u);
    EXPECT_FALSE(manager.recovering());
    EXPECT_EQ(manager.recoveriesCompleted().value(), 1u);
    EXPECT_GT(manager.lastRecoveryNs(), 0u);
    EXPECT_EQ(sweeps, 1u);

    // Masked, drained, and the stale table wiped.
    EXPECT_TRUE(monitor.masked());
    EXPECT_TRUE(monitor.fifo().empty());
    EXPECT_EQ(monitor.table().get(3), ActionEntry::Ignore);
    EXPECT_EQ(monitor.table().get(5), ActionEntry::Ignore);

    // One Protect frame reclaimed and restored from the image store —
    // nothing lost — and one Shared frame dropped silently.
    EXPECT_EQ(manager.framesReclaimed().value(), 1u);
    EXPECT_EQ(manager.sharedDropped().value(), 1u);
    EXPECT_EQ(manager.pagesLost().value(), 0u);
    EXPECT_EQ(manager.pagesRestored().value(), 1u);
    EXPECT_EQ(rig.bus.countOf(TxType::BoardMask).value(), 1u);
    EXPECT_EQ(rig.bus.countOf(TxType::Reclaim).value(), 1u);

    // The restore DMA-wrote the checkpoint image over the stale copy.
    std::vector<std::uint8_t> now(page);
    rig.memory.readBlock(3 * page, now.data(), page);
    EXPECT_EQ(now, image);

    // With the entry cleared the frame is no longer stranded.
    EXPECT_FALSE(manager.isFrameOwnerDead(3 * page));
}

TEST(Reclaim, DeadBridgeStrandsEveryFrame)
{
    BusRig rig;
    recover::RecoveryConfig rc;
    rc.detector.deadlineNs = 500;
    rc.detector.maxProbes = 1;
    rc.detector.sweepPeriod = 2;
    recover::RecoveryManager manager(rig.events, rig.bus, rig.memory,
                                     rc);
    bool alive = true;
    manager.addBridge(7, [&] { return alive; });
    manager.install();

    EXPECT_FALSE(manager.isFrameOwnerDead(0));
    alive = false;
    for (int i = 0; i < 2; ++i)
        rig.issue(rig.shortTx(TxType::Notify, 0, 9));
    rig.events.run();

    EXPECT_EQ(manager.boardsDeclaredDead().value(), 1u);
    // A dead bridge strands every frame reached through it.
    EXPECT_TRUE(manager.isFrameOwnerDead(0));
    EXPECT_TRUE(manager.isFrameOwnerDead(17 * 256));
    // Bridges have no monitor to scan: nothing reclaimed.
    EXPECT_EQ(manager.framesReclaimed().value(), 0u);
}

// ------------------------------------------------------ determinism

TEST(Recovery, EnabledWithoutFaultsIsBitIdentical)
{
    auto run = [](bool recovery) {
        core::VmpSystem system(smallConfig(2, 256));
        recover::RecoveryManager *manager = nullptr;
        if (recovery)
            manager = &system.enableRecovery();
        auto gens = makeSources("atum2", 2, 6'000, 3);
        auto raw = rawSources(gens);
        const auto result = system.runTraces(raw);
        if (manager) {
            // Null-hook discipline: a fault-free run never suspects.
            EXPECT_EQ(manager->detector().suspicions().value(), 0u);
            EXPECT_EQ(manager->boardsDeclaredDead().value(), 0u);
        }
        return result;
    };

    const auto without = run(false);
    const auto with = run(true);
    EXPECT_EQ(without.elapsed, with.elapsed);
    EXPECT_EQ(without.totalRefs, with.totalRefs);
    EXPECT_EQ(without.totalMisses, with.totalMisses);
    EXPECT_EQ(without.busAborts, with.busAborts);
    EXPECT_EQ(without.writeBacks, with.writeBacks);
}

// ------------------------------------------------- flat kill / rejoin

TEST(Recovery, KillOneBoardReclaimsAndRunCompletes)
{
    core::VmpSystem system(smallConfig(4, 256));
    auto &checker = system.enableCoherenceChecker();
    recover::RecoveryConfig rc;
    rc.detector.sweepPeriod = 64;
    auto &manager = system.enableRecovery(rc);
    system.killBoard(3, usec(300));

    auto gens = makeSources("atum2", 4, 12'000, 7);
    auto raw = rawSources(gens);
    const auto result = system.runTraces(raw);

    // The killed board stopped mid-trace; the other three finished.
    EXPECT_TRUE(system.controller(3).dead());
    EXPECT_GE(result.totalRefs, 3u * 12'000u);
    EXPECT_LT(result.totalRefs, 4u * 12'000u);

    EXPECT_EQ(manager.boardsDeclaredDead().value(), 1u);
    EXPECT_TRUE(manager.detector().declaredDead(3));
    EXPECT_EQ(manager.recoveriesCompleted().value(), 1u);
    EXPECT_FALSE(manager.recovering());
    EXPECT_TRUE(system.board(3).monitor.masked());
    // The board had run ~1000+ references: it held *something*.
    EXPECT_GE(manager.framesReclaimed().value() +
                  manager.sharedDropped().value(),
              1u);

    quiesce(system);
    EXPECT_EQ(checker.checkFull(), 0u) << reportsOf(checker);
    EXPECT_EQ(checker.violations().value(), 0u) << reportsOf(checker);
}

TEST(Recovery, KilledBoardRejoinsAndFinishesItsTrace)
{
    core::VmpSystem system(smallConfig(4, 256));
    auto &checker = system.enableCoherenceChecker();
    recover::RecoveryConfig rc;
    rc.detector.sweepPeriod = 64;
    auto &manager = system.enableRecovery(rc);
    system.killBoard(1, usec(300));
    system.rejoinBoard(1, msec(6));

    auto gens = makeSources("atum2", 4, 12'000, 11);
    auto raw = rawSources(gens);
    const auto result = system.runTraces(raw);

    // The rejoined board resumed its trace and completed it.
    EXPECT_EQ(result.totalRefs, 4u * 12'000u);
    EXPECT_FALSE(system.controller(1).dead());
    EXPECT_FALSE(system.board(1).monitor.masked());
    EXPECT_FALSE(manager.detector().declaredDead(1));
    EXPECT_FALSE(manager.recovering());

    quiesce(system);
    EXPECT_EQ(checker.checkFull(), 0u) << reportsOf(checker);
    EXPECT_EQ(checker.violations().value(), 0u) << reportsOf(checker);
}

// ------------------------------------------- dead-owner timed waits

TEST(Recovery, DeadOwnerErrorSurfacesWithoutRecovery)
{
    auto cfg = smallConfig(2, 256);
    cfg.swTiming.deadOwnerTimeoutNs = usec(300);
    core::VmpSystem system(cfg);
    system.attachIdleServicers();

    // CPU 1 writes a page: it now owns the frame Protect.
    const Addr va = 0x10000;
    bool done = false;
    system.controller(1).access(1, va, true, false,
                                [&](proto::AccessOutcome) {
                                    done = true;
                                });
    system.events().run();
    ASSERT_TRUE(done);

    // Failstop board 1. Its stale Protect entry keeps aborting.
    system.killBoard(1, system.events().now() + 1);
    system.events().run();
    ASSERT_TRUE(system.controller(1).dead());

    // CPU 0 writes the same page: retries against the dead owner
    // until the timed wait expires, then abandons with a structured
    // DeadOwnerError — recovery is NOT installed.
    std::size_t handled = 0;
    system.controller(0).setDeadOwnerHandler(
        [&](const proto::DeadOwnerError &) { ++handled; });
    done = false;
    system.controller(0).access(1, va, true, false,
                                [&](proto::AccessOutcome) {
                                    done = true;
                                });
    system.events().run();
    ASSERT_TRUE(done);

    EXPECT_EQ(system.controller(0).deadOwnerErrors().value(), 1u);
    EXPECT_EQ(handled, 1u);
    const auto &error = system.controller(0).lastDeadOwnerError();
    ASSERT_TRUE(error.has_value());
    EXPECT_GT(error->attempts, 0u);
    EXPECT_GE(error->now - error->started, usec(300));
    // No oracle installed: the owner is unresponsive, not known dead.
    EXPECT_FALSE(error->ownerKnownDead);
    // The error also shows up in the stats dump.
    std::ostringstream os;
    system.dumpStats(os);
    EXPECT_NE(os.str().find("dead_owner_errors"), std::string::npos);
}

// --------------------------------------------------- hier IBC death

TEST(Recovery, HierDeadInterBusBoardIsReclaimedGlobally)
{
    core::HierConfig cfg;
    cfg.clusters = 2;
    cfg.cpusPerCluster = 2;
    cfg.cache = cache::CacheConfig{256, 2, 16, true};
    cfg.memBytes = MiB(1);
    // Bound the stranded cluster's waits so the run terminates fast.
    cfg.swTiming.deadOwnerTimeoutNs = usec(500);
    core::HierVmpSystem system(cfg);
    system.enableCoherenceCheckers();
    recover::RecoveryConfig rc;
    rc.detector.sweepPeriod = 32;
    system.enableRecovery(rc);
    system.killInterBusBoard(1, usec(500));

    auto gens = makeSources("atum2", 4, 4'000, 5);
    auto raw = rawSources(gens);
    const auto result = system.runTraces(raw);

    // Every CPU finished: cluster 1's stranded misses abandoned with
    // DeadOwnerErrors instead of hanging the event queue.
    EXPECT_EQ(result.totalRefs, 4u * 4'000u);
    EXPECT_TRUE(system.interBusBoard(1).dead());

    // The global manager declared cluster 1's board dead and reclaimed
    // its global Protect frames into main memory.
    ASSERT_NE(system.globalRecovery(), nullptr);
    EXPECT_TRUE(system.globalRecovery()->detector().declaredDead(1));
    EXPECT_FALSE(system.globalRecovery()->recovering());
    EXPECT_TRUE(
        system.interBusBoard(1).globalMonitor().masked());

    // Cluster 1's CPUs surfaced structured errors.
    std::uint64_t errors = 0;
    for (std::uint32_t cpu = 2; cpu < 4; ++cpu)
        errors += system.controller(cpu).deadOwnerErrors().value();
    EXPECT_GT(errors, 0u);

    // Single-owner holds at the global level and within the live
    // cluster (owners sweeps are valid at any time).
    EXPECT_EQ(system.globalChecker().checkOwnersSweep(), 0u)
        << reportsOf(system.globalChecker());
    EXPECT_EQ(system.clusterChecker(0).checkOwnersSweep(), 0u)
        << reportsOf(system.clusterChecker(0));
}

// --------------------------------------------- partial-failure flow

TEST(Recovery, WedgedBoardIsFencedAndQuarantined)
{
    auto cfg = smallConfig(4, 256);
    // Bound the fenced board's stranded in-flight access.
    cfg.swTiming.deadOwnerTimeoutNs = msec(1);
    core::VmpSystem system(cfg);
    fault::FaultSchedule s;
    s.wedgeMonitor(0, msec(1)); // never clears
    system.enableFaultInjection(s);
    auto &checker = system.enableCoherenceChecker();
    recover::RecoveryConfig rc;
    rc.detector.sweepPeriod = 32;
    rc.detector.deadlineNs = 20'000;
    auto &manager = system.enableRecovery(rc);

    auto gens = makeSources("atum3", 4, 12'000, 13);
    auto raw = rawSources(gens);
    const auto result = system.runTraces(raw);

    // The wedge witness caught the frozen service loop and the board
    // was quarantined — fenced and reclaimed, not declared dead.
    EXPECT_EQ(manager.boardsFenced().value(), 1u);
    EXPECT_TRUE(manager.isFenced(0));
    EXPECT_EQ(manager.detector().fenceKindOf(0),
              recover::SuspicionKind::Wedge);
    EXPECT_GE(manager.lastFenceAt(), msec(1));
    EXPECT_EQ(manager.boardsDeclaredDead().value(), 0u);
    EXPECT_FALSE(system.controller(0).dead());
    EXPECT_TRUE(system.board(0).monitor.masked());

    // The survivors finished; the fenced board's trace is cut short.
    EXPECT_GE(result.totalRefs, 3u * 12'000u);
    EXPECT_LT(result.totalRefs, 4u * 12'000u);

    // Post-fence sweep: single-owner holds with the sick board out.
    EXPECT_EQ(checker.checkOwnersSweep(), 0u) << reportsOf(checker);
    EXPECT_EQ(checker.violations().value(), 0u) << reportsOf(checker);
}

TEST(Recovery, ClearedWedgeIsUnfencedAndBoardResumes)
{
    core::VmpSystem system(smallConfig(4, 256));
    fault::FaultSchedule s;
    s.wedgeMonitor(0, msec(1)).clearAt(msec(3));
    system.enableFaultInjection(s);
    auto &checker = system.enableCoherenceChecker();
    recover::RecoveryConfig rc;
    rc.detector.sweepPeriod = 32;
    rc.detector.deadlineNs = 20'000;
    // Recheck window spans the scheduled clear tick.
    rc.detector.unfenceCheckNs = 500'000;
    rc.detector.unfenceChecks = 8;
    auto &manager = system.enableRecovery(rc);

    auto gens = makeSources("atum3", 4, 20'000, 17);
    auto raw = rawSources(gens);
    const auto result = system.runTraces(raw);

    // Fenced while wedged, unfenced by a recheck after the underlying
    // fault cleared; the board cold-restarted and finished its trace.
    EXPECT_EQ(manager.boardsFenced().value(), 1u);
    EXPECT_EQ(manager.boardsUnfenced().value(), 1u);
    EXPECT_FALSE(manager.isFenced(0));
    EXPECT_FALSE(system.controller(0).dead());
    EXPECT_FALSE(system.board(0).monitor.masked());
    EXPECT_EQ(result.totalRefs, 4u * 20'000u);

    quiesce(system);
    EXPECT_EQ(checker.checkFull(), 0u) << reportsOf(checker);
    EXPECT_EQ(checker.violations().value(), 0u) << reportsOf(checker);
}

// -------------------- false suspicions across arbitration disciplines
//
// Queue-delay-inflated retry chains under priority or round-robin
// arbitration must never push a live owner past the abort-streak
// threshold into a declaration or fence (satellite: detector
// robustness against arbitration-induced latency).

class ArbitrationFalseSuspicion
    : public ::testing::TestWithParam<mem::Arbitration>
{
};

TEST_P(ArbitrationFalseSuspicion, LiveOwnersNeverDeclaredOrFenced)
{
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        auto cfg = smallConfig(4, 256);
        cfg.arbitration.discipline = GetParam();
        core::VmpSystem system(cfg);
        auto &checker = system.enableCoherenceChecker();
        recover::RecoveryConfig rc;
        rc.detector.sweepPeriod = 64;
        auto &manager = system.enableRecovery(rc);

        // Hot sharing: heavy consistency traffic and long retry
        // chains against perfectly live owners.
        auto gens = makeSources("atum3", 4, 15'000, seed * 7);
        auto raw = rawSources(gens);
        const auto result = system.runTraces(raw);
        EXPECT_EQ(result.totalRefs, 4u * 15'000u);

        EXPECT_EQ(manager.detector().declarations().value(), 0u);
        EXPECT_EQ(manager.detector().fences().value(), 0u);
        EXPECT_EQ(manager.boardsDeclaredDead().value(), 0u);
        EXPECT_EQ(manager.fencedBoards(), 0u);
        quiesce(system);
        EXPECT_EQ(checker.checkFull(), 0u) << reportsOf(checker);
        EXPECT_EQ(checker.violations().value(), 0u)
            << reportsOf(checker);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Disciplines, ArbitrationFalseSuspicion,
    ::testing::Values(mem::Arbitration::Fifo,
                      mem::Arbitration::Priority,
                      mem::Arbitration::RoundRobin),
    [](const ::testing::TestParamInfo<mem::Arbitration> &info) {
        switch (info.param) {
          case mem::Arbitration::Fifo: return std::string("fifo");
          case mem::Arbitration::Priority:
            return std::string("priority");
          default: return std::string("rr");
        }
    });

// --------------------------------------------------- torture matrix
//
// Registered under the "torture" ctest label, excluded from tier-1
// discovery (see tests/CMakeLists.txt). Board-crash schedules:
//   TortureBoardCrash: {kill, kill+rejoin} x {128,256,512}B pages
//                      x 3 seeds                          = 18 runs
//   TortureHierIbc:    {128,256}B pages x 2 seeds          = 4 runs

struct CrashTortureParams
{
    std::uint32_t pageBytes;
    bool rejoin;
};

std::string
crashName(const ::testing::TestParamInfo<CrashTortureParams> &info)
{
    std::ostringstream os;
    os << (info.param.rejoin ? "rejoin" : "kill") << "_p"
       << info.param.pageBytes;
    return os.str();
}

class TortureBoardCrash
    : public ::testing::TestWithParam<CrashTortureParams>
{
};

TEST_P(TortureBoardCrash, ZeroViolationsBoundedLoss)
{
    const auto &p = GetParam();
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        core::VmpSystem system(smallConfig(4, p.pageBytes));
        fault::FaultSchedule s;
        s.seed = seed;
        s.busAborts(0.01); // crash during background noise
        s.crashBoard(3, msec(1));
        if (p.rejoin)
            s.rejoinAt(msec(5));
        system.enableFaultInjection(s);
        auto &checker = system.enableCoherenceChecker();
        recover::RecoveryConfig rc;
        rc.detector.sweepPeriod = 64;
        auto &manager = system.enableRecovery(rc);
        std::uint64_t trips = 0;
        system.setWatchdog(
            1'000, [&](const proto::WatchdogReport &) { ++trips; });

        auto gens = makeSources("atum2", 4, 8'000, seed);
        auto raw = rawSources(gens);
        const auto result = system.runTraces(raw);

        if (p.rejoin) {
            EXPECT_EQ(result.totalRefs, 4u * 8'000u)
                << "p=" << p.pageBytes << " seed=" << seed;
            EXPECT_FALSE(system.controller(3).dead());
        } else {
            EXPECT_TRUE(system.controller(3).dead());
            EXPECT_EQ(manager.boardsDeclaredDead().value(), 1u);
            EXPECT_FALSE(manager.recovering());
        }
        // Bounded loss: a board cannot lose more pages than its cache
        // holds frames (sets x ways).
        const std::uint64_t frames =
            system.config().cache.totalSlots();
        EXPECT_LE(manager.pagesLost().value(), frames)
            << "p=" << p.pageBytes << " seed=" << seed;

        quiesce(system);
        EXPECT_EQ(checker.checkFull(), 0u)
            << "p=" << p.pageBytes << " rejoin=" << p.rejoin
            << " seed=" << seed << "\n" << reportsOf(checker);
        EXPECT_EQ(checker.violations().value(), 0u)
            << reportsOf(checker);
        EXPECT_EQ(trips, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Crash, TortureBoardCrash,
    ::testing::Values(CrashTortureParams{128, false},
                      CrashTortureParams{256, false},
                      CrashTortureParams{512, false},
                      CrashTortureParams{128, true},
                      CrashTortureParams{256, true},
                      CrashTortureParams{512, true}),
    crashName);

class TortureHierIbc : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(TortureHierIbc, DeadBridgeNeverViolatesSingleOwner)
{
    const std::uint32_t page = GetParam();
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        core::HierConfig cfg;
        cfg.clusters = 2;
        cfg.cpusPerCluster = 2;
        cfg.cache = cache::CacheConfig{page, 2, 16, true};
        cfg.memBytes = MiB(1);
        cfg.swTiming.deadOwnerTimeoutNs = usec(500);
        core::HierVmpSystem system(cfg);
        fault::FaultSchedule s;
        s.seed = seed;
        s.crashInterBus(1, msec(1));
        system.enableFaultInjection(s);
        system.enableCoherenceCheckers();
        recover::RecoveryConfig rc;
        rc.detector.sweepPeriod = 32;
        system.enableRecovery(rc);

        auto gens = makeSources("atum2", 4, 4'000, seed + 50);
        auto raw = rawSources(gens);
        const auto result = system.runTraces(raw);

        EXPECT_EQ(result.totalRefs, 4u * 4'000u)
            << "p=" << page << " seed=" << seed;
        EXPECT_TRUE(system.interBusBoard(1).dead());
        EXPECT_EQ(system.globalChecker().checkOwnersSweep(), 0u)
            << "p=" << page << " seed=" << seed << "\n"
            << reportsOf(system.globalChecker());
        EXPECT_EQ(system.clusterChecker(0).checkOwnersSweep(), 0u)
            << reportsOf(system.clusterChecker(0));
        EXPECT_EQ(system.globalChecker().violations().value(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Hier, TortureHierIbc,
                         ::testing::Values(128u, 256u),
                         [](const auto &info) {
                             std::ostringstream os;
                             os << "p" << info.param;
                             return os.str();
                         });

// Partial-failure torture: {wedge, babble, fail-slow} x page sizes
// x 3 seeds. Every injected partial failure must be detected and
// fenced, with zero post-fence invariant violations, no false
// declarations, and no second board swept up in the quarantine.

struct PartialTortureParams
{
    fault::FaultKind kind;
    std::uint32_t pageBytes;
};

std::string
partialName(const ::testing::TestParamInfo<PartialTortureParams> &info)
{
    std::ostringstream os;
    switch (info.param.kind) {
      case fault::FaultKind::MonitorWedge:
        os << "wedge";
        break;
      case fault::FaultKind::FifoBabble:
        os << "babble";
        break;
      default:
        os << "slow";
        break;
    }
    os << "_p" << info.param.pageBytes;
    return os.str();
}

class TorturePartialFault
    : public ::testing::TestWithParam<PartialTortureParams>
{
};

TEST_P(TorturePartialFault, DetectedFencedZeroViolations)
{
    const auto &p = GetParam();
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        auto cfg = smallConfig(4, p.pageBytes);
        cfg.swTiming.deadOwnerTimeoutNs = msec(1);
        core::VmpSystem system(cfg);
        fault::FaultSchedule s;
        s.seed = seed;
        s.busAborts(0.01); // background noise
        switch (p.kind) {
          case fault::FaultKind::MonitorWedge:
            s.wedgeMonitor(2, msec(1));
            break;
          case fault::FaultKind::FifoBabble:
            s.babbleFifo(2, msec(1), 0.8);
            break;
          default:
            s.slowBoard(2, msec(1), 64);
            break;
        }
        auto &injector = system.enableFaultInjection(s);
        auto &checker = system.enableCoherenceChecker();
        recover::RecoveryConfig rc;
        rc.detector.sweepPeriod = 32;
        rc.detector.deadlineNs = 20'000;
        auto &manager = system.enableRecovery(rc);
        std::uint64_t trips = 0;
        system.setWatchdog(
            1'000, [&](const proto::WatchdogReport &) { ++trips; });

        auto gens = makeSources("atum3", 4, 8'000, seed);
        auto raw = rawSources(gens);
        const auto result = system.runTraces(raw);

        const std::string ctx = ::testing::PrintToString(seed) +
            " p=" + std::to_string(p.pageBytes);
        EXPECT_GT(injector.injected(p.kind).value(), 0u) << ctx;
        // Detected and fenced — the sick board, and only it.
        EXPECT_TRUE(manager.isFenced(2)) << ctx;
        EXPECT_EQ(manager.fencedBoards(), 1u) << ctx;
        EXPECT_EQ(manager.boardsDeclaredDead().value(), 0u) << ctx;
        EXPECT_GE(manager.lastFenceAt(), msec(1)) << ctx;
        // Survivors ran to completion.
        EXPECT_GE(result.totalRefs, 3u * 8'000u) << ctx;
        // Zero post-fence invariant violations, silent watchdog.
        EXPECT_EQ(checker.checkOwnersSweep(), 0u)
            << ctx << "\n" << reportsOf(checker);
        EXPECT_EQ(checker.violations().value(), 0u)
            << ctx << "\n" << reportsOf(checker);
        EXPECT_EQ(trips, 0u) << ctx;
    }
}

std::vector<PartialTortureParams>
partialParams()
{
    std::vector<PartialTortureParams> params;
    for (const auto kind :
         {fault::FaultKind::MonitorWedge, fault::FaultKind::FifoBabble,
          fault::FaultKind::SlowBoard})
        for (std::uint32_t page : {128u, 256u})
            params.push_back({kind, page});
    return params;
}

INSTANTIATE_TEST_SUITE_P(Partial, TorturePartialFault,
                         ::testing::ValuesIn(partialParams()),
                         partialName);

} // namespace
} // namespace vmp
