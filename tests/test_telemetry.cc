/**
 * @file
 * Telemetry subsystem tests: streaming-sink chunked writes parse to
 * the identical event list as the post-hoc writeChromeTrace exporter
 * (flat + hier, seeded), truncation recovery, bounded-staging drop
 * accounting, live inspection snapshots (round-tripped through the
 * repo's own JSON parser), replay ownership reconstruction, and the
 * gauge wiring that surfaces budget/recovery state in
 * metricsSnapshot.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/hier_system.hh"
#include "core/system.hh"
#include "obs/event_tracer.hh"
#include "obs/export.hh"
#include "obs/gauges.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "telemetry/inspect.hh"
#include "telemetry/replay.hh"
#include "telemetry/streaming_sink.hh"
#include "telemetry/system_gauges.hh"
#include "trace/synthetic.hh"
#include "trace/workloads.hh"

namespace vmp
{
namespace
{

std::vector<std::unique_ptr<trace::SyntheticGen>>
makeSources(std::uint32_t cpus, std::uint64_t refs,
            std::uint64_t seed_base)
{
    std::vector<std::unique_ptr<trace::SyntheticGen>> gens;
    for (std::uint32_t i = 0; i < cpus; ++i) {
        auto workload = trace::workloadConfig("atum2");
        workload.totalRefs = refs;
        workload.seed = seed_base + i;
        workload.asidBase = static_cast<Asid>(1 + i * 8);
        gens.push_back(std::make_unique<trace::SyntheticGen>(workload));
    }
    return gens;
}

std::vector<trace::RefSource *>
rawSources(std::vector<std::unique_ptr<trace::SyntheticGen>> &gens)
{
    std::vector<trace::RefSource *> raw;
    for (auto &g : gens)
        raw.push_back(g.get());
    return raw;
}

core::VmpConfig
smallConfig(std::uint32_t cpus)
{
    core::VmpConfig cfg;
    cfg.processors = cpus;
    cfg.cache = cache::CacheConfig{256, 2, 16, true};
    cfg.memBytes = MiB(1);
    return cfg;
}

/** Sorted compact record dumps for order-insensitive comparison. */
std::vector<std::string>
sortedRecords(const Json &doc)
{
    std::vector<std::string> out;
    for (const Json &record : doc.get("traceEvents").items())
        out.push_back(record.dump(0));
    std::sort(out.begin(), out.end());
    return out;
}

obs::TraceEvent
makeEvent(Tick at, obs::EventKind kind, std::uint16_t track,
          std::uint64_t arg0 = 0, std::uint8_t aux = 0)
{
    obs::TraceEvent event;
    event.at = at;
    event.kind = kind;
    event.track = track;
    event.arg0 = arg0;
    event.aux = aux;
    return event;
}

// ------------------------------------- streamed-vs-post-hoc (chunked)

TEST(StreamingSink, ChunkedStreamEqualsPostHocExportFlat)
{
    core::VmpSystem system(smallConfig(2));
    // Big rings so the post-hoc exporter retains everything too.
    obs::EventTracer &tracer =
        system.enableTracing(obs::TraceConfig{1 << 18, true});

    std::ostringstream stream;
    telemetry::StreamConfig cfg;
    cfg.flushThreshold = 64; // many small incremental writes
    telemetry::StreamingSink sink(stream, cfg);
    sink.attach(tracer, system.events());

    auto gens = makeSources(2, 8'000, 7);
    auto raw = rawSources(gens);
    system.runTraces(raw);
    sink.close();

    ASSERT_EQ(tracer.droppedOldest(), 0u);
    EXPECT_EQ(sink.droppedTotal(), 0u);
    EXPECT_EQ(sink.eventsStreamed(), tracer.recorded());
    EXPECT_GT(sink.flushes(), 2u);

    const Json streamed = Json::parse(stream.str());
    EXPECT_EQ(streamed.get("displayTimeUnit").asString(), "ns");
    EXPECT_EQ(sortedRecords(streamed),
              sortedRecords(obs::chromeTraceJson(tracer)));
}

TEST(StreamingSink, ChunkedStreamEqualsPostHocExportHier)
{
    core::HierConfig cfg;
    cfg.clusters = 2;
    cfg.cpusPerCluster = 2;
    cfg.cache = cache::CacheConfig{256, 2, 16, true};
    cfg.memBytes = MiB(1);
    core::HierVmpSystem system(cfg);
    obs::EventTracer &tracer =
        system.enableTracing(obs::TraceConfig{1 << 18, true});

    std::ostringstream stream;
    telemetry::StreamConfig stream_cfg;
    stream_cfg.flushThreshold = 128;
    telemetry::StreamingSink sink(stream, stream_cfg);
    sink.attach(tracer, system.events());

    auto gens = makeSources(4, 4'000, 23);
    auto raw = rawSources(gens);
    system.runTraces(raw);
    sink.close();

    ASSERT_EQ(tracer.droppedOldest(), 0u);
    EXPECT_EQ(sink.droppedTotal(), 0u);
    const Json streamed = Json::parse(stream.str());
    EXPECT_EQ(sortedRecords(streamed),
              sortedRecords(obs::chromeTraceJson(tracer)));
}

TEST(StreamingSink, AttachTwiceIsFatal)
{
    obs::EventTracer tracer;
    tracer.registerTrack("t");
    EventQueue events;
    std::ostringstream stream;
    telemetry::StreamingSink sink(stream);
    sink.attach(tracer, events);
    EXPECT_THROW(sink.attach(tracer, events), PanicError);
}

// --------------------------------------------- truncation recovery

TEST(StreamingSink, TruncatedStreamRecoversAtEveryCut)
{
    obs::EventTracer tracer;
    const auto track = tracer.registerTrack("bus");
    EventQueue events;
    std::ostringstream stream;
    telemetry::StreamConfig cfg;
    cfg.flushThreshold = 2;
    telemetry::StreamingSink sink(stream, cfg);
    sink.attach(tracer, events);
    for (Tick at = 1; at <= 9; ++at) {
        tracer.record(
            makeEvent(at * 100, obs::EventKind::BusTx, track, 40));
    }
    sink.close();
    const std::string full = stream.str();

    // A complete document passes through recovery unchanged.
    EXPECT_EQ(telemetry::StreamingSink::recoverTruncated(full), full);
    const std::size_t total_records =
        Json::parse(full).get("traceEvents").size();

    // Any cut point must recover to a parseable prefix document.
    for (std::size_t cut = 1; cut < full.size(); ++cut) {
        const std::string repaired =
            telemetry::StreamingSink::recoverTruncated(
                full.substr(0, cut));
        const Json doc = Json::parse(repaired);
        EXPECT_LE(doc.get("traceEvents").size(), total_records);
    }
}

// ------------------------------------------------- drop accounting

TEST(StreamingSink, BoundedStagingDropsAndCounts)
{
    obs::EventTracer tracer;
    const auto a = tracer.registerTrack("a");
    const auto b = tracer.registerTrack("b");
    EventQueue events;
    std::ostringstream stream;
    telemetry::StreamConfig cfg;
    cfg.stagingPerTrack = 4;
    cfg.autoFlush = false; // consumer "falls behind"
    telemetry::StreamingSink sink(stream, cfg);
    sink.attach(tracer, events);

    for (Tick at = 1; at <= 10; ++at)
        tracer.record(makeEvent(at, obs::EventKind::BusTx, a, 5));
    tracer.record(makeEvent(11, obs::EventKind::BusTx, b, 5));

    EXPECT_EQ(sink.droppedOn(a), 6u);
    EXPECT_EQ(sink.droppedOn(b), 0u);
    EXPECT_EQ(sink.droppedTotal(), 6u);

    sink.close();
    EXPECT_EQ(sink.eventsStreamed(), 5u); // 4 on a + 1 on b
    // The document is still valid; only the dropped events are gone.
    const Json doc = Json::parse(stream.str());
    EXPECT_EQ(doc.get("traceEvents").size(), 7u); // 2 metadata + 5

    // Counters ride into a stat group.
    StatGroup group("obs");
    sink.registerStats(group);
    std::ostringstream os;
    group.dump(os);
    EXPECT_NE(os.str().find("stream_dropped"), std::string::npos);

    // Flushing drains staging, making room again.
    tracer.record(makeEvent(12, obs::EventKind::BusTx, a, 5));
    EXPECT_EQ(sink.droppedTotal(), 6u); // closed: ignored, not dropped
}

// ----------------------------------- per-track ring overwrite stats

TEST(EventTracer, PerTrackOverwriteCountersSurfaceInStats)
{
    obs::EventTracer tracer(4);
    const auto bus = tracer.registerTrack("bus");
    tracer.registerTrack("c0.bus");
    for (Tick at = 1; at <= 9; ++at)
        tracer.record(makeEvent(at, obs::EventKind::BusTx, bus));

    StatGroup group("obs");
    tracer.registerStats(group);
    std::ostringstream os;
    group.dump(os);
    const std::string dump = os.str();
    EXPECT_NE(dump.find("overwritten_bus"), std::string::npos);
    // '.' in track names is sanitized for the flat stat namespace.
    EXPECT_NE(dump.find("overwritten_c0_bus"), std::string::npos);
    EXPECT_EQ(tracer.droppedOn(bus), 5u);
}

// ------------------------------------------------- live inspection

TEST(Inspect, FlatSnapshotRoundTripsAndMatchesCounters)
{
    core::VmpSystem system(smallConfig(2));
    system.enableTracing();
    system.enableRecovery();
    auto gens = makeSources(2, 6'000, 31);
    auto raw = rawSources(gens);
    const auto result = system.runTraces(raw);

    const Json snapshot = telemetry::inspectSystem(system);
    // Round-trip through the repo's own parser.
    const Json reparsed = Json::parse(snapshot.dump(2));
    EXPECT_EQ(reparsed, snapshot);

    EXPECT_EQ(snapshot.get("t_ns").asUint(), system.events().now());
    const Json &boards = snapshot.get("boards");
    ASSERT_EQ(boards.size(), 2u);
    std::uint64_t misses = 0;
    for (std::size_t b = 0; b < boards.size(); ++b) {
        const Json &board = boards.at(b);
        EXPECT_GT(board.get("cache").get("valid_slots").asUint(), 0u);
        EXPECT_EQ(board.get("fifo").get("depth").asUint(), 0u);
        misses += board.get("controller").get("misses").asUint();
    }
    EXPECT_EQ(misses, result.totalMisses);
    EXPECT_TRUE(snapshot.contains("recovery"));
    EXPECT_TRUE(snapshot.contains("trace"));
}

TEST(Inspect, HierSnapshotCoversClustersAndBudget)
{
    core::HierConfig cfg;
    cfg.clusters = 2;
    cfg.cpusPerCluster = 2;
    cfg.cache = cache::CacheConfig{256, 2, 16, true};
    cfg.memBytes = MiB(1);
    core::HierVmpSystem system(cfg);
    system.enableClusterBudget();
    auto gens = makeSources(4, 3'000, 41);
    auto raw = rawSources(gens);
    system.runTraces(raw);

    const Json snapshot = telemetry::inspectSystem(system);
    EXPECT_EQ(Json::parse(snapshot.dump(2)), snapshot);
    const Json &clusters = snapshot.get("cluster_state");
    ASSERT_EQ(clusters.size(), 2u);
    for (std::size_t k = 0; k < clusters.size(); ++k) {
        const Json &cluster = clusters.at(k);
        EXPECT_EQ(cluster.get("boards").size(), 2u);
        EXPECT_TRUE(cluster.get("ibc").contains("pending_words"));
    }
    EXPECT_TRUE(snapshot.contains("budget"));
}

TEST(Inspect, FifoContentsListQueuedWords)
{
    // A wedged consumer leaves words queued: drive the monitor FIFO
    // directly through a mini system where board 1 never services.
    core::VmpSystem system(smallConfig(2));
    auto gens = makeSources(2, 2'000, 13);
    auto raw = rawSources(gens);
    system.runTraces(raw);
    const Json fifo =
        telemetry::inspectFifo(system.board(0).monitor.fifo());
    EXPECT_TRUE(fifo.contains("depth"));
    EXPECT_TRUE(fifo.contains("capacity"));
    EXPECT_TRUE(fifo.contains("words"));
    EXPECT_EQ(fifo.get("depth").asUint(),
              fifo.get("words").size());
}

// ------------------------------------------------------------ gauges

TEST(Gauges, GaugeSetKeepsInsertionOrderAndSerializes)
{
    obs::GaugeSet set;
    set.add("bus", "utilization", 0.25);
    set.add("cpu0", "fifo_depth", 3.0);
    set.add("bus", "fenced_drops", 0.0);
    ASSERT_EQ(set.groups().size(), 2u);
    EXPECT_EQ(set.groups()[0].name, "bus");
    EXPECT_EQ(set.groups()[0].gauges.size(), 2u);
    const Json doc = set.toJson();
    EXPECT_EQ(doc.get("bus").get("utilization").asNumber(), 0.25);
    EXPECT_EQ(doc.get("cpu0").get("fifo_depth").asNumber(), 3.0);
}

TEST(Gauges, CollectGaugesCarriesRecoveryAndMetricsSnapshotRenders)
{
    core::VmpSystem system(smallConfig(2));
    system.enableTracing();
    system.enableRecovery();
    auto gens = makeSources(2, 4'000, 17);
    auto raw = rawSources(gens);
    system.runTraces(raw);

    const obs::GaugeSet gauges = telemetry::collectGauges(system);
    const Json doc = gauges.toJson();
    EXPECT_TRUE(doc.contains("bus"));
    EXPECT_TRUE(doc.contains("cpu0"));
    EXPECT_TRUE(doc.contains("recover"));

    const std::string rendered = obs::metricsSnapshot(
        *system.tracer(), system.missProfiler(), &gauges);
    EXPECT_NE(rendered.find("bus.utilization"), std::string::npos);
    EXPECT_NE(rendered.find("recover.boards_dead"),
              std::string::npos);
}

TEST(Gauges, HierCollectCarriesBudgetGrants)
{
    core::HierConfig cfg;
    cfg.clusters = 2;
    cfg.cpusPerCluster = 2;
    cfg.cache = cache::CacheConfig{256, 2, 16, true};
    cfg.memBytes = MiB(1);
    core::HierVmpSystem system(cfg);
    system.enableClusterBudget();
    auto gens = makeSources(4, 3'000, 19);
    auto raw = rawSources(gens);
    system.runTraces(raw);

    const Json doc = telemetry::collectGauges(system).toJson();
    EXPECT_TRUE(doc.contains("global_bus"));
    EXPECT_TRUE(doc.contains("c0.bus"));
    EXPECT_TRUE(doc.contains("c1.ibc"));
    EXPECT_TRUE(doc.contains("budget"));
    EXPECT_TRUE(doc.get("budget").contains("clients"));
}

TEST(Gauges, SinkSamplesGaugesOnFlushIntoJsonl)
{
    core::VmpSystem system(smallConfig(2));
    obs::EventTracer &tracer = system.enableTracing();
    std::ostringstream stream;
    std::ostringstream gauge_stream;
    telemetry::StreamConfig cfg;
    cfg.flushThreshold = 256;
    telemetry::StreamingSink sink(stream, cfg);
    sink.setGaugeStream(&gauge_stream);
    telemetry::attachSystemGauges(sink, system);
    sink.attach(tracer, system.events());

    auto gens = makeSources(2, 4'000, 29);
    auto raw = rawSources(gens);
    system.runTraces(raw);
    sink.close();

    std::istringstream lines(gauge_stream.str());
    std::string line;
    std::size_t samples = 0;
    while (std::getline(lines, line)) {
        if (line.empty())
            continue;
        ++samples;
        const Json sample = Json::parse(line);
        EXPECT_TRUE(sample.contains("t_us"));
        EXPECT_TRUE(sample.get("gauges").contains("sink"));
        EXPECT_TRUE(sample.get("gauges").contains("bus"));
        EXPECT_TRUE(sample.get("gauges").contains("cpu0"));
    }
    EXPECT_GT(samples, 0u);
    // Miss-phase EWMAs fold into the last sample once misses ran.
    const std::string text = gauge_stream.str();
    EXPECT_NE(text.find("miss_ewma"), std::string::npos);
}

// ------------------------------------------------------------ replay

/** Build a synthetic Chrome-trace doc from TraceEvents, using the
 *  production serializer so the vocabulary always matches. */
std::string
syntheticTrace(const std::vector<obs::TraceEvent> &events)
{
    Json records = Json::array();
    records.push(obs::chromeTrackMetadata(0, "bus"));
    records.push(obs::chromeTrackMetadata(1, "c1.bus"));
    for (const obs::TraceEvent &event : events)
        records.push(obs::chromeTraceEvent(event));
    Json doc = Json::object();
    doc["displayTimeUnit"] = Json("ns");
    doc["traceEvents"] = std::move(records);
    return doc.dump(2);
}

obs::TraceEvent
busTx(Tick start, Tick dur, std::uint64_t addr, std::uint32_t master,
      mem::TxType tx, bool aborted = false, std::uint16_t track = 0)
{
    obs::TraceEvent event;
    event.at = start;
    event.kind = obs::EventKind::BusTx;
    event.track = track;
    event.addr = addr;
    event.master = master;
    event.arg0 = dur;
    event.aux = static_cast<std::uint8_t>(
        static_cast<std::uint8_t>(tx) | (aborted ? 0x80 : 0));
    return event;
}

TEST(Replay, OwnerFollowsAcquireReleaseChain)
{
    const std::uint64_t frame = 0x4000;
    std::vector<obs::TraceEvent> events;
    // Aborted attempt by board 1, then board 0 acquires, releases,
    // board 1 acquires.
    events.push_back(busTx(100, 50, frame, 1,
                           mem::TxType::ReadPrivate, true));
    events.push_back(
        busTx(200, 50, frame, 0, mem::TxType::ReadPrivate));
    events.push_back(
        busTx(400, 50, frame, 0, mem::TxType::WriteBack));
    events.push_back(
        busTx(500, 50, frame, 1, mem::TxType::AssertOwnership));
    // Unrelated traffic on another frame.
    events.push_back(
        busTx(300, 50, 0x8000, 1, mem::TxType::ReadShared));

    const auto session =
        telemetry::ReplaySession::fromText(syntheticTrace(events));
    EXPECT_EQ(session.rawRecords(), 7u);

    // Before anything completed: unowned.
    EXPECT_FALSE(session.ownerAt(frame, 100).owned);
    // Aborted acquire does not transfer ownership.
    EXPECT_FALSE(session.ownerAt(frame, 160).owned);
    // After board 0's ReadPrivate completes at 250.
    const auto at300 = session.ownerAt(frame, 300);
    EXPECT_TRUE(at300.owned);
    EXPECT_EQ(at300.board, 0u);
    EXPECT_EQ(at300.sinceNs, 250u);
    // After the write-back completes: memory authoritative.
    EXPECT_FALSE(session.ownerAt(frame, 460).owned);
    // After board 1's upgrade completes at 550.
    const auto at600 = session.ownerAt(frame, 600);
    EXPECT_TRUE(at600.owned);
    EXPECT_EQ(at600.board, 1u);
    EXPECT_EQ(at600.chain.size(), 3u);
}

TEST(Replay, ReclaimInstantClearsOwnership)
{
    const std::uint64_t frame = 0x2000;
    std::vector<obs::TraceEvent> events;
    events.push_back(
        busTx(100, 50, frame, 2, mem::TxType::ReadPrivate));
    obs::TraceEvent reclaim;
    reclaim.at = 900;
    reclaim.kind = obs::EventKind::Reclaim;
    reclaim.track = 0;
    reclaim.addr = frame;
    reclaim.master = 0;
    events.push_back(reclaim);

    const auto session =
        telemetry::ReplaySession::fromText(syntheticTrace(events));
    EXPECT_TRUE(session.ownerAt(frame, 500).owned);
    const auto after = session.ownerAt(frame, 1000);
    EXPECT_FALSE(after.owned);
    EXPECT_EQ(after.chain.size(), 2u);
}

TEST(Replay, FiltersSelectFrameBoardTrackAndWindow)
{
    std::vector<obs::TraceEvent> events;
    events.push_back(
        busTx(100, 50, 0x1000, 0, mem::TxType::ReadPrivate));
    events.push_back(busTx(200, 50, 0x2000, 1,
                           mem::TxType::AssertOwnership));
    events.push_back(busTx(300, 50, 0x1000, 1,
                           mem::TxType::WriteBack, false,
                           /*track=*/1));
    const auto session =
        telemetry::ReplaySession::fromText(syntheticTrace(events));
    ASSERT_EQ(session.events().size(), 3u);

    telemetry::ReplayFilter by_frame;
    by_frame.frame = 0x1000;
    EXPECT_EQ(session.history(by_frame).size(), 2u);

    telemetry::ReplayFilter by_board;
    by_board.board = 1;
    EXPECT_EQ(session.history(by_board).size(), 2u);

    telemetry::ReplayFilter by_track;
    by_track.track = "c1.bus";
    const auto on_track = session.history(by_track);
    ASSERT_EQ(on_track.size(), 1u);
    EXPECT_EQ(on_track[0].addr, 0x1000u);

    telemetry::ReplayFilter window;
    window.fromNs = 200;
    window.toNs = 260;
    const auto in_window = session.history(window);
    ASSERT_EQ(in_window.size(), 1u);
    EXPECT_EQ(in_window[0].addr, 0x2000u);

    // Track scoping in ownerAt: on track "bus" the frame is still
    // owned (the release happened on the other track's domain).
    EXPECT_TRUE(session.ownerAt(0x1000, 1000, "bus").owned);
    EXPECT_FALSE(session.ownerAt(0x1000, 1000).owned);
}

TEST(Replay, LoadsTruncatedStreamViaRecovery)
{
    core::VmpSystem system(smallConfig(2));
    obs::EventTracer &tracer =
        system.enableTracing(obs::TraceConfig{1 << 18, true});
    std::ostringstream stream;
    telemetry::StreamConfig cfg;
    cfg.flushThreshold = 64;
    telemetry::StreamingSink sink(stream, cfg);
    sink.attach(tracer, system.events());
    auto gens = makeSources(2, 5'000, 37);
    auto raw = rawSources(gens);
    system.runTraces(raw);
    sink.close();

    const std::string full = stream.str();
    const auto whole = telemetry::ReplaySession::fromText(full);
    const auto cut = telemetry::ReplaySession::fromText(
        full.substr(0, full.size() / 2));
    EXPECT_GT(whole.events().size(), 0u);
    EXPECT_GT(cut.events().size(), 0u);
    EXPECT_LT(cut.events().size(), whole.events().size());
    EXPECT_EQ(whole.trackNames()[0], "bus");
}

} // namespace
} // namespace vmp
