/**
 * @file
 * Fault-injection harness, coherence-invariant checker and livelock
 * watchdog tests. Fast unit/property tests run in tier-1; the
 * Torture* suites (registered separately under the ctest label
 * "torture") sweep {workload} x {fault schedule} x {page size} x
 * {seed} for 200 seeded runs — including 4-entry FIFOs on both the
 * flat machine and the two-level hierarchy — and require zero
 * invariant violations and a silent watchdog on every one.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "check/coherence_checker.hh"
#include "core/hier_system.hh"
#include "core/system.hh"
#include "fault/injector.hh"
#include "monitor/interrupt_fifo.hh"
#include "sim/logging.hh"
#include "trace/synthetic.hh"
#include "trace/workloads.hh"

namespace vmp
{
namespace
{

// ------------------------------------------------------------ helpers

core::VmpConfig
smallConfig(std::uint32_t cpus, std::uint32_t page_bytes,
            std::size_t fifo_capacity = 128)
{
    core::VmpConfig cfg;
    cfg.processors = cpus;
    cfg.cache = cache::CacheConfig{page_bytes, 2, 16, true};
    cfg.memBytes = MiB(1);
    cfg.fifoCapacity = fifo_capacity;
    return cfg;
}

/** Drain every board's FIFO so the system is quiescent. */
void
quiesce(core::VmpSystem &system)
{
    for (int round = 0; round < 4; ++round) {
        for (std::size_t cpu = 0; cpu < system.processors(); ++cpu) {
            bool done = false;
            system.controller(cpu).serviceInterrupts(
                [&] { done = true; });
            system.events().run();
            ASSERT_TRUE(done);
        }
    }
}

void
quiesce(core::HierVmpSystem &system)
{
    for (int round = 0; round < 6; ++round) {
        for (std::uint32_t cpu = 0; cpu < system.totalCpus(); ++cpu) {
            bool done = false;
            system.controller(cpu).serviceInterrupts(
                [&] { done = true; });
            system.events().run();
            ASSERT_TRUE(done);
        }
    }
    for (std::uint32_t k = 0; k < system.clusters(); ++k)
        EXPECT_TRUE(system.interBusBoard(k).idle())
            << "cluster " << k << " board not idle at quiescence";
}

/** Shared-kernel trace sources: heavy consistency traffic. */
std::vector<std::unique_ptr<trace::SyntheticGen>>
makeSources(const std::string &workload, std::uint32_t cpus,
            std::uint64_t refs_per_cpu, std::uint64_t seed)
{
    std::vector<std::unique_ptr<trace::SyntheticGen>> gens;
    for (std::uint32_t i = 0; i < cpus; ++i) {
        auto cfg = trace::workloadConfig(workload);
        cfg.totalRefs = refs_per_cpu;
        cfg.seed = seed * 1000 + i;
        gens.push_back(std::make_unique<trace::SyntheticGen>(cfg));
    }
    return gens;
}

std::vector<trace::RefSource *>
rawSources(std::vector<std::unique_ptr<trace::SyntheticGen>> &gens)
{
    std::vector<trace::RefSource *> raw;
    for (auto &g : gens)
        raw.push_back(g.get());
    return raw;
}

std::string
reportsOf(const check::CoherenceChecker &checker)
{
    std::ostringstream os;
    for (const auto &r : checker.reports())
        os << r << "\n";
    return os.str();
}

/** The torture fault schedules, by index (see tortureSchedule). */
constexpr int kScheduleCount = 5;

fault::FaultSchedule
tortureSchedule(int index, std::uint64_t seed)
{
    fault::FaultSchedule s;
    s.seed = seed;
    switch (index) {
      case 0: // light spurious aborts
        s.busAborts(0.01);
        break;
      case 1: // heavy aborts plus truncated transfers
        s.busAborts(0.05).truncations(0.02);
        break;
      case 2: // interrupt path: dropped words and late delivery
        s.fifoDrops(0.05).interruptDelays(0.02, 5000);
        break;
      case 3: // transfer path: stalled copier and DMA contention
        s.copierStalls(0.05, 4000).dmaBursts(0.02);
        break;
      case 4: // everything at once
        s.busAborts(0.02)
            .truncations(0.01)
            .fifoDrops(0.02)
            .interruptDelays(0.01, 3000)
            .copierStalls(0.02, 2000)
            .dmaBursts(0.01);
        break;
      default:
        fatal("unknown torture schedule ", index);
    }
    return s;
}

// ----------------------------------------------------- FaultSchedule

TEST(FaultSchedule, BuilderArmsDeclaredKindsOnly)
{
    fault::FaultSchedule s;
    EXPECT_TRUE(s.empty());
    s.busAborts(0.1).fifoDrops(0.2);
    EXPECT_FALSE(s.empty());
    EXPECT_TRUE(s.arms(fault::FaultKind::BusAbort));
    EXPECT_TRUE(s.arms(fault::FaultKind::FifoDrop));
    EXPECT_FALSE(s.arms(fault::FaultKind::Truncate));
    EXPECT_FALSE(s.arms(fault::FaultKind::DmaBurst));
}

TEST(FaultSchedule, ZeroProbabilityWithEveryNthStillArms)
{
    fault::FaultSchedule s;
    s.busAborts(0.0);
    EXPECT_TRUE(s.empty()); // p=0, no counter: can never fire
    s.everyNth(10);
    EXPECT_FALSE(s.empty());
    EXPECT_TRUE(s.arms(fault::FaultKind::BusAbort));
}

TEST(FaultSchedule, RejectsNonsense)
{
    fault::FaultSchedule s;
    EXPECT_THROW(s.busAborts(1.5), FatalError);
    EXPECT_THROW(s.truncations(-0.1), FatalError);
    EXPECT_THROW(s.window(0, 1), FatalError);   // no spec appended yet
    EXPECT_THROW(s.everyNth(3), FatalError);    // ditto
    s.busAborts(0.5);
    EXPECT_THROW(s.window(100, 50), FatalError); // inverted window
}

// ----------------------------------------- determinism and zero cost

TEST(FaultInjector, EmptyScheduleIsBitIdentical)
{
    auto run = [](bool with_injector) {
        core::VmpSystem system(smallConfig(2, 256));
        if (with_injector)
            system.enableFaultInjection(fault::FaultSchedule{});
        auto gens = makeSources("atum2", 2, 8'000, 7);
        auto raw = rawSources(gens);
        return system.runTraces(raw).toString();
    };
    // Null hooks draw no randomness and change no behavior: the run
    // summary (including the elapsed tick count) is bit-identical.
    EXPECT_EQ(run(false), run(true));
}

TEST(FaultInjector, SameSeedSameFaults)
{
    auto run = [](std::uint64_t seed) {
        core::VmpSystem system(smallConfig(2, 256));
        auto &injector =
            system.enableFaultInjection(tortureSchedule(1, seed));
        auto gens = makeSources("atum2", 2, 8'000, 3);
        auto raw = rawSources(gens);
        const auto result = system.runTraces(raw);
        return std::pair<std::string, std::uint64_t>(
            result.toString(), injector.totalInjected());
    };
    const auto a = run(42);
    const auto b = run(42);
    const auto c = run(43);
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
    EXPECT_GT(a.second, 0u);
    // A different injector seed fires different faults.
    EXPECT_NE(a.first == c.first && a.second == c.second, true);
}

TEST(FaultInjector, EveryNthFiresExactly)
{
    core::VmpSystem system(smallConfig(2, 256));
    fault::FaultSchedule s;
    s.busAborts(0.0).everyNth(50);
    auto &injector = system.enableFaultInjection(s);
    auto gens = makeSources("atum2", 2, 8'000, 5);
    auto raw = rawSources(gens);
    system.runTraces(raw);

    const auto opportunities =
        injector.opportunities(fault::FaultKind::BusAbort);
    const auto fired =
        injector.injected(fault::FaultKind::BusAbort).value();
    EXPECT_GT(opportunities, 50u);
    EXPECT_EQ(fired, opportunities / 50);
    EXPECT_EQ(system.bus().injectedAborts().value(), fired);
}

TEST(FaultInjector, WindowConfinesFaults)
{
    core::VmpSystem system(smallConfig(2, 256));
    fault::FaultSchedule s;
    // A window that closes at tick 0: armed but never open.
    s.busAborts(0.5).window(0, 0);
    auto &injector = system.enableFaultInjection(s);
    auto gens = makeSources("atum2", 2, 4'000, 9);
    auto raw = rawSources(gens);
    system.runTraces(raw);
    EXPECT_GT(injector.opportunities(fault::FaultKind::BusAbort), 0u);
    EXPECT_EQ(injector.totalInjected(), 0u);
}

// ------------------------------------------------- hook smoke tests

TEST(FaultInjector, SpuriousAbortsAreRecovered)
{
    core::VmpSystem system(smallConfig(2, 256));
    fault::FaultSchedule s;
    s.seed = 11;
    s.busAborts(0.05);
    auto &injector = system.enableFaultInjection(s);
    auto &checker = system.enableCoherenceChecker();

    auto gens = makeSources("atum3", 2, 10'000, 11);
    auto raw = rawSources(gens);
    const auto result = system.runTraces(raw);
    EXPECT_EQ(result.totalRefs, 20'000u);
    EXPECT_GT(injector.injected(fault::FaultKind::BusAbort).value(), 0u);
    // Injected aborts produce real retries on top of protocol ones.
    EXPECT_GT(system.controller(0).retries().value() +
                  system.controller(1).retries().value(),
              0u);
    quiesce(system);
    EXPECT_EQ(checker.checkFull(), 0u) << reportsOf(checker);
    EXPECT_EQ(checker.violations().value(), 0u) << reportsOf(checker);
}

TEST(FaultInjector, AllKindsFireAndInvariantsHold)
{
    core::VmpSystem system(smallConfig(2, 256));
    fault::FaultSchedule s;
    s.busAborts(0.0).everyNth(40);
    s.truncations(0.0).everyNth(60);
    s.copierStalls(0.0, 3'000).everyNth(30);
    s.fifoDrops(0.0).everyNth(25);
    s.interruptDelays(0.0, 4'000).everyNth(10);
    s.dmaBursts(0.0).everyNth(50);
    // One mid-run failstop with a hot-rejoin covers BoardCrash; the
    // rejoined board replays the rest of its trace, so every reference
    // still retires.
    s.crashBoard(1, msec(2)).rejoinAt(msec(4));
    auto &injector = system.enableFaultInjection(s);
    auto &checker = system.enableCoherenceChecker();
    system.enableRecovery();

    auto gens = makeSources("atum3", 2, 20'000, 21);
    auto raw = rawSources(gens);
    system.runTraces(raw);
    quiesce(system);
    EXPECT_EQ(checker.checkFull(), 0u) << reportsOf(checker);

    // Partial-failure kinds are board-targeted schedules with their
    // own detection/fencing flows; they get dedicated tests below.
    for (std::size_t k = 0; k < fault::kFaultKinds; ++k) {
        const auto kind = static_cast<fault::FaultKind>(k);
        if (fault::isPartialFaultKind(kind))
            continue;
        EXPECT_GT(injector.injected(kind).value(), 0u)
            << fault::faultKindName(kind);
    }
    EXPECT_GT(system.bus().countOf(mem::TxType::DmaWrite).value(), 0u);
}

TEST(FaultInjector, DmaBurstsLandInScratchFrames)
{
    core::VmpSystem system(smallConfig(1, 256));
    fault::FaultSchedule s;
    s.dmaBursts(0.0).everyNth(20);
    auto &injector = system.enableFaultInjection(s);
    auto gens = makeSources("atum2", 1, 10'000, 13);
    auto raw = rawSources(gens);
    system.runTraces(raw);

    const auto bursts =
        injector.injected(fault::FaultKind::DmaBurst).value();
    EXPECT_GT(bursts, 0u);
    // Firings while a burst is still in flight are counted but
    // dropped, so completed DMA writes never exceed firings.
    EXPECT_GT(system.bus().countOf(mem::TxType::DmaWrite).value(), 0u);
    EXPECT_LE(system.bus().countOf(mem::TxType::DmaWrite).value(),
              bursts);
    // First burst payload (seq 0) is all zero-based bytes: byte i of
    // the page is (0 * 131 + i) & 0xff — check a word of frame 8.
    // Later bursts may have overwritten it round-robin; with 8 scratch
    // frames the frame revisited is seq % 8 == 0, payload seq*131+i.
    // Just assert the scratch region is no longer pristine zeros.
    bool touched = false;
    for (std::uint32_t f = 8; f < 16 && !touched; ++f) {
        if (system.memory().readWord(
                static_cast<Addr>(f) * 256) != 0)
            touched = true;
    }
    EXPECT_TRUE(touched);
}

// ------------------------------------------------- partial failures

TEST(PartialFault, BuilderValidatesSpecs)
{
    fault::FaultSchedule s;
    EXPECT_THROW(s.babbleFifo(0, 0, 0.0), FatalError);
    EXPECT_THROW(s.babbleFifo(0, 0, 1.5), FatalError);
    EXPECT_THROW(s.slowBoard(0, 0, 1), FatalError);
    EXPECT_THROW(s.clearAt(100), FatalError); // nothing appended yet
    s.wedgeMonitor(1, usec(50));
    EXPECT_THROW(s.clearAt(usec(50)), FatalError); // not after onset
    s.clearAt(usec(60));
    EXPECT_TRUE(s.arms(fault::FaultKind::MonitorWedge));
    EXPECT_FALSE(s.arms(fault::FaultKind::FifoBabble));
    s.babbleFifo(0, 0, 0.5).stickActionTable(1, usec(10))
        .slowBoard(0, 0, 4);
    EXPECT_TRUE(s.arms(fault::FaultKind::FifoBabble));
    EXPECT_TRUE(s.arms(fault::FaultKind::ActionTableStuck));
    EXPECT_TRUE(s.arms(fault::FaultKind::SlowBoard));
}

TEST(PartialFault, UnarmedHierIsBitIdentical)
{
    // The partial-failure seams (wedge branch, babble hook, stuck-table
    // branch, slowdown multiply) must cost nothing when unarmed — the
    // hierarchy exercises the wedged-IBC seam as well.
    auto run = [](bool with_injector) {
        core::HierConfig cfg;
        cfg.clusters = 2;
        cfg.cpusPerCluster = 2;
        cfg.cache = cache::CacheConfig{256, 2, 16, true};
        cfg.memBytes = MiB(1);
        core::HierVmpSystem system(cfg);
        if (with_injector)
            system.enableFaultInjection(fault::FaultSchedule{});
        auto gens = makeSources("atum2", 4, 5'000, 61);
        auto raw = rawSources(gens);
        return system.runTraces(raw).toString();
    };
    EXPECT_EQ(run(false), run(true));
}

TEST(PartialFault, WedgeFreezesServiceThenClearRecovers)
{
    core::VmpSystem system(smallConfig(2, 256));
    fault::FaultSchedule s;
    s.wedgeMonitor(0, msec(1)).clearAt(msec(2));
    auto &injector = system.enableFaultInjection(s);
    auto &checker = system.enableCoherenceChecker();

    auto gens = makeSources("atum3", 2, 20'000, 43);
    auto raw = rawSources(gens);
    const auto result = system.runTraces(raw);
    // The wedge window closes mid-run, the backlog drains, and every
    // reference still retires with the invariants intact.
    EXPECT_EQ(result.totalRefs, 40'000u);
    EXPECT_EQ(injector.injected(fault::FaultKind::MonitorWedge).value(),
              1u);
    EXPECT_FALSE(system.controller(0).wedged());
    EXPECT_GT(system.controller(0).serviceEpoch(), 0u);
    quiesce(system);
    EXPECT_EQ(checker.checkFull(), 0u) << reportsOf(checker);
}

TEST(PartialFault, BabbleWordsAreSpuriousAndHarmless)
{
    core::VmpSystem system(smallConfig(2, 256));
    fault::FaultSchedule s;
    s.seed = 47;
    s.babbleFifo(0, 0, 0.2);
    auto &injector = system.enableFaultInjection(s);
    auto &checker = system.enableCoherenceChecker();

    auto gens = makeSources("atum3", 2, 10'000, 47);
    auto raw = rawSources(gens);
    system.runTraces(raw);
    // Garbage words were fabricated, the service loop recognized them
    // as spurious, and no table state was corrupted.
    EXPECT_GT(injector.injected(fault::FaultKind::FifoBabble).value(),
              0u);
    EXPECT_GT(system.board(0).monitor.babbleWords().value(), 0u);
    EXPECT_GT(system.controller(0).spuriousWords().value(), 0u);
    quiesce(system);
    EXPECT_EQ(checker.checkFull(), 0u) << reportsOf(checker);
}

TEST(PartialFault, StuckTableDropsUpdates)
{
    core::VmpSystem system(smallConfig(1, 256));
    fault::FaultSchedule s;
    s.stickActionTable(0, 0);
    auto &injector = system.enableFaultInjection(s);
    system.events().run(); // fire the onset event
    EXPECT_EQ(
        injector.injected(fault::FaultKind::ActionTableStuck).value(),
        1u);

    auto &board = system.board(0);
    const Addr paddr = 5 * 256;
    bool done = false;
    system.controller(0).writeActionTable(
        paddr, mem::ActionEntry::Shared, [&] { done = true; });
    system.events().run();
    ASSERT_TRUE(done);
    // The bus transaction completed but the monitor hardware silently
    // dropped the entry update.
    EXPECT_EQ(board.monitor.table().get(5), mem::ActionEntry::Ignore);
    EXPECT_GE(board.monitor.tableUpdatesDropped().value(), 1u);

    board.monitor.setTableStuck(false);
    done = false;
    system.controller(0).writeActionTable(
        paddr, mem::ActionEntry::Shared, [&] { done = true; });
    system.events().run();
    ASSERT_TRUE(done);
    EXPECT_EQ(board.monitor.table().get(5), mem::ActionEntry::Shared);
}

TEST(PartialFault, SlowBoardStretchesServiceTime)
{
    auto run = [](std::uint64_t factor) {
        core::VmpSystem system(smallConfig(2, 256));
        if (factor > 1) {
            fault::FaultSchedule s;
            s.slowBoard(0, 0, factor).slowBoard(1, 0, factor);
            system.enableFaultInjection(s);
        }
        auto gens = makeSources("atum3", 2, 10'000, 53);
        auto raw = rawSources(gens);
        return system.runTraces(raw).elapsed;
    };
    // Inflated interrupt-service latency shows up as wall-clock time:
    // every consistency interaction with the slow boards takes longer.
    EXPECT_GT(run(16), run(1));
}

TEST(PartialFault, ZeroSlowdownFactorIsFatal)
{
    core::VmpSystem system(smallConfig(1, 256));
    EXPECT_THROW(system.controller(0).setServiceSlowdown(0),
                 PanicError);
}

// ------------------------------------------------ coherence checker

TEST(CoherenceChecker, CleanRunHasNoViolations)
{
    core::VmpSystem system(smallConfig(4, 256));
    auto &checker = system.enableCoherenceChecker();
    auto gens = makeSources("atum1", 4, 6'000, 17);
    auto raw = rawSources(gens);
    system.runTraces(raw);
    EXPECT_GT(checker.transactionsObserved().value(), 0u);
    quiesce(system);
    EXPECT_EQ(checker.checkFull(), 0u) << reportsOf(checker);
    EXPECT_EQ(checker.violations().value(), 0u) << reportsOf(checker);
}

TEST(CoherenceChecker, DetectsSeededDoubleOwner)
{
    core::VmpSystem system(smallConfig(2, 256));
    auto &checker = system.enableCoherenceChecker();
    // Corrupt the hardware state behind the software's back: two
    // monitors claiming Protect for one frame breaks I1 (and each is
    // a stale 10 without Private bookkeeping, breaking I2).
    system.board(0).monitor.table().set(5, mem::ActionEntry::Protect);
    system.board(1).monitor.table().set(5, mem::ActionEntry::Protect);
    const auto found = checker.checkFull();
    EXPECT_GE(found, 3u);
    ASSERT_FALSE(checker.reports().empty());
    EXPECT_NE(reportsOf(checker).find("I1"), std::string::npos);
    EXPECT_NE(reportsOf(checker).find("I2"), std::string::npos);
}

TEST(CoherenceChecker, OnlineCheckSeesTransactions)
{
    core::VmpSystem system(smallConfig(2, 256));
    auto &checker = system.enableCoherenceChecker();
    auto gens = makeSources("atum2", 2, 4'000, 19);
    auto raw = rawSources(gens);
    system.runTraces(raw);
    EXPECT_GT(checker.transactionsObserved().value(), 100u);
    EXPECT_EQ(checker.violations().value(), 0u) << reportsOf(checker);
}

TEST(CoherenceChecker, InstallTwiceIsFatal)
{
    core::VmpSystem system(smallConfig(1, 256));
    system.enableCoherenceChecker();
    EXPECT_THROW(system.enableCoherenceChecker(), FatalError);
}

TEST(CoherenceChecker, StatsAppearInDumpAndJson)
{
    core::VmpSystem system(smallConfig(2, 256));
    system.enableFaultInjection(tortureSchedule(0, 23));
    system.enableCoherenceChecker();
    auto gens = makeSources("atum2", 2, 4'000, 23);
    auto raw = rawSources(gens);
    system.runTraces(raw);

    std::ostringstream os;
    system.dumpStats(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("check.violations"), std::string::npos);
    EXPECT_NE(out.find("fault.bus_aborts"), std::string::npos);
    const std::string json = system.statsJson().dump();
    EXPECT_NE(json.find("\"check\""), std::string::npos);
    EXPECT_NE(json.find("\"fault\""), std::string::npos);
}

// ------------------------------------------------ livelock watchdog

TEST(Watchdog, QuietOnCleanRun)
{
    core::VmpSystem system(smallConfig(4, 256));
    std::uint64_t trips = 0;
    system.setWatchdog(1'000,
                       [&](const proto::WatchdogReport &) { ++trips; });
    auto gens = makeSources("atum3", 4, 8'000, 29);
    auto raw = rawSources(gens);
    system.runTraces(raw);
    EXPECT_EQ(trips, 0u);
    for (std::size_t cpu = 0; cpu < 4; ++cpu)
        EXPECT_EQ(system.controller(cpu).watchdogTrips().value(), 0u);
}

TEST(Watchdog, TripsOnceUnderStarvationAndRunStillCompletes)
{
    core::VmpSystem system(smallConfig(2, 256));
    fault::FaultSchedule s;
    s.seed = 31;
    s.busAborts(0.85); // most consistency transactions abort
    system.enableFaultInjection(s);

    std::vector<proto::WatchdogReport> reports;
    system.setWatchdog(
        2, [&](const proto::WatchdogReport &r) { reports.push_back(r); });

    auto gens = makeSources("atum2", 2, 1'500, 31);
    auto raw = rawSources(gens);
    const auto result = system.runTraces(raw); // must terminate
    EXPECT_EQ(result.totalRefs, 3'000u);
    ASSERT_FALSE(reports.empty());
    for (const auto &r : reports) {
        EXPECT_EQ(r.attempts, 3u); // fires exactly at cap + 1
        EXPECT_FALSE(r.operation.empty());
        EXPECT_GE(r.now, r.started);
        EXPECT_FALSE(r.toString().empty());
    }
    const auto trips = system.controller(0).watchdogTrips().value() +
                       system.controller(1).watchdogTrips().value();
    EXPECT_EQ(trips, reports.size());
}

TEST(Watchdog, ZeroCapDisables)
{
    core::VmpSystem system(smallConfig(2, 256));
    fault::FaultSchedule s;
    s.seed = 37;
    s.busAborts(0.85);
    system.enableFaultInjection(s);
    std::uint64_t trips = 0;
    system.setWatchdog(0,
                       [&](const proto::WatchdogReport &) { ++trips; });
    auto gens = makeSources("atum2", 2, 1'500, 37);
    auto raw = rawSources(gens);
    system.runTraces(raw);
    EXPECT_EQ(trips, 0u);
}

// --------------------------- satellite: tiny-FIFO overflow recovery

TEST(TinyFifo, OverflowIsStickyAndCountsDrops)
{
    monitor::InterruptFifo fifo(2);
    monitor::InterruptWord word{};
    fifo.push(word);
    fifo.push(word);
    EXPECT_FALSE(fifo.overflowed());
    fifo.push(word); // third word into a 2-deep FIFO
    EXPECT_TRUE(fifo.overflowed());
    EXPECT_EQ(fifo.size(), 2u);
    EXPECT_EQ(fifo.dropped().value(), 1u);
    EXPECT_EQ(fifo.pushed().value(), 2u);
    fifo.clearOverflow();
    EXPECT_FALSE(fifo.overflowed());
    EXPECT_EQ(fifo.dropped().value(), 1u); // counter is cumulative
}

TEST(TinyFifo, ForcedDropsTriggerOverflowRecovery)
{
    // 4-entry FIFOs plus forced drops: every drop sets the sticky
    // overflow bit, so service passes must run the conservative
    // recovery sweep and still land in a legal state.
    core::VmpSystem system(smallConfig(2, 256, 4));
    fault::FaultSchedule s;
    s.seed = 41;
    s.fifoDrops(0.25);
    auto &injector = system.enableFaultInjection(s);
    auto &checker = system.enableCoherenceChecker();

    auto gens = makeSources("atum3", 2, 10'000, 41);
    auto raw = rawSources(gens);
    system.runTraces(raw);
    EXPECT_GT(injector.injected(fault::FaultKind::FifoDrop).value(), 0u);
    const auto recoveries =
        system.controller(0).overflowRecoveries().value() +
        system.controller(1).overflowRecoveries().value();
    EXPECT_GT(recoveries, 0u);
    quiesce(system);
    EXPECT_EQ(checker.checkFull(), 0u) << reportsOf(checker);
}

// ------------------------- satellite: retry-delay determinism

TEST(RetryDelay, DeterministicBoundedAndDesynchronized)
{
    const proto::SoftwareTiming timing{};
    auto draw = [](core::VmpSystem &system, std::size_t cpu) {
        std::vector<Tick> delays;
        for (int i = 0; i < 64; ++i)
            delays.push_back(system.controller(cpu).retryDelay());
        return delays;
    };

    core::VmpSystem a(smallConfig(2, 256));
    core::VmpSystem b(smallConfig(2, 256));
    const auto a0 = draw(a, 0);
    const auto b0 = draw(b, 0);
    const auto a1 = draw(a, 1);

    // Same seed (same CPU id) => identical jitter sequence.
    EXPECT_EQ(a0, b0);
    // Bounded: retryNs <= delay <= retryNs + retryJitterNs.
    for (const Tick d : a0) {
        EXPECT_GE(d, timing.retryNs);
        EXPECT_LE(d, timing.retryNs + timing.retryJitterNs);
    }
    // Different CPUs draw different sequences (desynchronization is
    // the whole point of the jitter — Section 3.2's retry argument).
    EXPECT_NE(a0, a1);
}

// --------------------------------------------------- torture matrix
//
// Registered with the "torture" ctest label, excluded from tier-1
// discovery. 200 seeded runs total:
//   TortureMatrix:   3 workloads x 3 page sizes x 5 schedules
//                    x 4 seeds                         = 180 runs
//   TortureTinyFifo: 3 schedules x 4 seeds (4-entry FIFO) = 12 runs
//   TortureHier:     2 schedules x 2 page sizes x 2 seeds
//                    (4-entry FIFOs at both levels)       = 8 runs

struct TortureParams
{
    const char *workload;
    std::uint32_t pageBytes;
    int schedule;
};

std::string
tortureName(const ::testing::TestParamInfo<TortureParams> &info)
{
    std::ostringstream os;
    os << info.param.workload << "_p" << info.param.pageBytes << "_s"
       << info.param.schedule;
    return os.str();
}

void
tortureRun(const TortureParams &p, std::uint64_t seed,
           std::size_t fifo_capacity)
{
    core::VmpSystem system(
        smallConfig(2, p.pageBytes, fifo_capacity));
    system.enableFaultInjection(tortureSchedule(p.schedule, seed));
    auto &checker = system.enableCoherenceChecker();
    std::uint64_t trips = 0;
    system.setWatchdog(1'000,
                       [&](const proto::WatchdogReport &) { ++trips; });

    auto gens = makeSources(p.workload, 2, 6'000, seed);
    auto raw = rawSources(gens);
    const auto result = system.runTraces(raw);
    EXPECT_EQ(result.totalRefs, 12'000u);
    quiesce(system);
    EXPECT_EQ(checker.checkFull(), 0u)
        << p.workload << " p=" << p.pageBytes << " s=" << p.schedule
        << " seed=" << seed << "\n" << reportsOf(checker);
    EXPECT_EQ(checker.violations().value(), 0u) << reportsOf(checker);
    // Bounded retries: at the paper-default cap nothing ever starves.
    std::string starved;
    for (std::size_t cpu = 0; cpu < 2; ++cpu) {
        const auto &last =
            system.controller(cpu).lastWatchdogReport();
        if (last)
            starved += last->toString() + "\n";
    }
    EXPECT_EQ(trips, 0u) << starved;
}

class TortureMatrix : public ::testing::TestWithParam<TortureParams>
{
};

TEST_P(TortureMatrix, ZeroViolationsBoundedRetries)
{
    for (std::uint64_t seed = 1; seed <= 4; ++seed)
        tortureRun(GetParam(), seed, 128);
}

std::vector<TortureParams>
matrixParams()
{
    std::vector<TortureParams> params;
    for (const char *workload : {"atum1", "atum2", "atum3"})
        for (std::uint32_t page : {128u, 256u, 512u})
            for (int schedule = 0; schedule < kScheduleCount; ++schedule)
                params.push_back({workload, page, schedule});
    return params;
}

INSTANTIATE_TEST_SUITE_P(Matrix, TortureMatrix,
                         ::testing::ValuesIn(matrixParams()),
                         tortureName);

class TortureTinyFifo : public ::testing::TestWithParam<TortureParams>
{
};

TEST_P(TortureTinyFifo, FourEntryFifoStaysCoherent)
{
    for (std::uint64_t seed = 1; seed <= 4; ++seed)
        tortureRun(GetParam(), seed, 4);
}

INSTANTIATE_TEST_SUITE_P(
    TinyFifo, TortureTinyFifo,
    ::testing::Values(TortureParams{"atum3", 256, 2},
                      TortureParams{"atum3", 256, 4},
                      TortureParams{"atum2", 128, 2}),
    tortureName);

struct HierTortureParams
{
    std::uint32_t pageBytes;
    int schedule;
};

class TortureHier
    : public ::testing::TestWithParam<HierTortureParams>
{
};

TEST_P(TortureHier, TwoLevelFourEntryFifosStayCoherent)
{
    const auto &p = GetParam();
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        core::HierConfig cfg;
        cfg.clusters = 2;
        cfg.cpusPerCluster = 2;
        cfg.cache = cache::CacheConfig{p.pageBytes, 2, 16, true};
        cfg.memBytes = MiB(1);
        cfg.fifoCapacity = 4;
        cfg.ibcFifoCapacity = 4;
        core::HierVmpSystem system(cfg);
        system.enableFaultInjection(tortureSchedule(p.schedule, seed));
        system.enableCoherenceCheckers();
        std::uint64_t trips = 0;
        system.setWatchdog(
            1'000, [&](const proto::WatchdogReport &) { ++trips; });

        auto gens = makeSources("atum2", 4, 4'000, seed + 100);
        auto raw = rawSources(gens);
        const auto result = system.runTraces(raw);
        EXPECT_EQ(result.totalRefs, 16'000u);
        quiesce(system);
        EXPECT_EQ(system.checkFullAll(), 0u)
            << "p=" << p.pageBytes << " s=" << p.schedule
            << " seed=" << seed;
        EXPECT_EQ(system.totalViolations(), 0u);
        EXPECT_EQ(trips, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Hier, TortureHier,
    ::testing::Values(HierTortureParams{128, 0},
                      HierTortureParams{128, 2},
                      HierTortureParams{256, 0},
                      HierTortureParams{256, 2}),
    [](const ::testing::TestParamInfo<HierTortureParams> &info) {
        std::ostringstream os;
        os << "p" << info.param.pageBytes << "_s"
           << info.param.schedule;
        return os.str();
    });

} // namespace
} // namespace vmp
