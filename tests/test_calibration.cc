/**
 * @file
 * Calibration band guards for the Figure 4 reproduction: the synthetic
 * ATUM-like traces are tuned so the cold-start sweep lands near the
 * paper's published characteristics. These tests pin the calibrated
 * *shape* with generous tolerances so workload-generator changes that
 * silently break the reproduction are caught:
 *
 *  - miss ratios in the sub-1% TLB-like band the paper emphasizes;
 *  - the 256 B / 128K anchor within ~2x of the paper's 0.24%;
 *  - monotone improvement with cache size and with page size;
 *  - OS activity ~25% of references and ~half of the misses.
 */

#include <gtest/gtest.h>

#include "core/fast_sim.hh"
#include "trace/analyzer.hh"
#include "trace/synthetic.hh"
#include "trace/workloads.hh"

namespace vmp
{
namespace
{

/** Figure-4 point averaged over the four preset traces. */
core::FastSimResult
fig4Point(std::uint64_t cache_bytes, std::uint32_t page_bytes)
{
    core::FastSimResult total;
    for (const auto &workload : trace::allWorkloads()) {
        trace::SyntheticGen gen(workload);
        core::FastCacheSim sim(cache::CacheConfig::forSize(
            cache_bytes, page_bytes, 4, false));
        total += sim.run(gen);
    }
    return total;
}

TEST(Fig4Calibration, AnchorPointNearPaper)
{
    // Paper: 256-byte pages, 128K cache -> 0.24% miss ratio. Guard a
    // generous band around the calibrated reproduction.
    const double miss_pct =
        fig4Point(KiB(128), 256).missRatio() * 100;
    EXPECT_GT(miss_pct, 0.12);
    EXPECT_LT(miss_pct, 0.55);
}

TEST(Fig4Calibration, SubOnePercentBand)
{
    // "These low miss ratios contrast with most cache measurements
    // published to date": everything at >=128K must be well under 1%.
    for (const std::uint32_t page : {128u, 256u, 512u}) {
        for (const std::uint64_t size : {KiB(128), KiB(256)}) {
            EXPECT_LT(fig4Point(size, page).missRatio(), 0.008)
                << page << "/" << size;
        }
    }
}

TEST(Fig4Calibration, MonotoneInCacheSize)
{
    for (const std::uint32_t page : {128u, 256u, 512u}) {
        const double m64 = fig4Point(KiB(64), page).missRatio();
        const double m128 = fig4Point(KiB(128), page).missRatio();
        const double m256 = fig4Point(KiB(256), page).missRatio();
        EXPECT_GT(m64, m128) << page;
        EXPECT_GT(m128, m256) << page;
    }
}

TEST(Fig4Calibration, MonotoneInPageSize)
{
    // On these traces (as in the paper's), larger cache pages lower
    // the miss ratio at fixed total size.
    for (const std::uint64_t size : {KiB(64), KiB(128), KiB(256)}) {
        const double m128 = fig4Point(size, 128).missRatio();
        const double m256 = fig4Point(size, 256).missRatio();
        const double m512 = fig4Point(size, 512).missRatio();
        EXPECT_GT(m128, m256) << size;
        EXPECT_GT(m256, m512) << size;
    }
}

TEST(Fig4Calibration, OsShareOfRefsAndMisses)
{
    // "operating system references account for approximately 25% of
    // the references and 50% of the misses".
    const auto result = fig4Point(KiB(128), 256);
    const double ref_share =
        static_cast<double>(result.supervisorRefs) /
        static_cast<double>(result.refs);
    EXPECT_NEAR(ref_share, 0.25, 0.05);
    EXPECT_NEAR(result.supervisorMissShare(), 0.50, 0.15);
}

TEST(Fig4Calibration, TraceLengthsMatchPaperBand)
{
    // 358,000 to 540,000 four-byte references per trace.
    std::uint64_t total = 0;
    for (const auto &workload : trace::allWorkloads()) {
        EXPECT_GE(workload.totalRefs, 358'000u);
        EXPECT_LE(workload.totalRefs, 540'000u);
        total += workload.totalRefs;
    }
    EXPECT_EQ(total, 540'000u + 480'000u + 420'000u + 358'000u);
}

} // namespace
} // namespace vmp
