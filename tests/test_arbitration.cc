/**
 * @file
 * Arbitration-discipline tests: grant-order properties of the VME
 * priority and round-robin arbiters, the completed-vs-aborted
 * queue-delay histogram split, and full-system fingerprint tests
 * pinning the default FIFO discipline bit-identical to the seed
 * simulator (same elapsed ticks, same event counts, seed for seed).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/hier_system.hh"
#include "core/system.hh"
#include "mem/vme_bus.hh"
#include "sim/event.hh"
#include "sim/logging.hh"
#include "trace/synthetic.hh"
#include "trace/workloads.hh"

namespace vmp::mem
{
namespace
{

/** Watcher that aborts the first @p abortCount observed transactions. */
class AbortingWatcher : public BusWatcher
{
  public:
    int abortCount = 0;

    WatchVerdict
    observe(const BusTransaction &) override
    {
        if (abortCount > 0) {
            --abortCount;
            return WatchVerdict::AbortAndInterrupt;
        }
        return WatchVerdict::Ignore;
    }

    void sideEffectUpdate(const BusTransaction &) override {}
};

struct ArbFixture
{
    EventQueue events;
    PhysMem memory{1 << 20, 256};

    /** Queue one short consistency transaction for @p master and
     *  record the master id into @p order on completion. */
    static void
    submit(VmeBus &bus, std::uint32_t master,
           std::vector<std::uint32_t> &order)
    {
        BusTransaction tx;
        tx.type = TxType::AssertOwnership;
        tx.requester = master;
        tx.paddr = 0x100 * master;
        bus.request(tx,
                    [&order, master](const TxResult &res) {
                        if (!res.aborted)
                            order.push_back(master);
                    });
    }
};

TEST(Arbitration, NamesRoundTrip)
{
    EXPECT_STREQ(arbitrationName(Arbitration::Fifo), "fifo");
    EXPECT_STREQ(arbitrationName(Arbitration::Priority), "priority");
    EXPECT_STREQ(arbitrationName(Arbitration::RoundRobin),
                 "round-robin");
    EXPECT_EQ(arbitrationFromName("fifo"), Arbitration::Fifo);
    EXPECT_EQ(arbitrationFromName("priority"), Arbitration::Priority);
    EXPECT_EQ(arbitrationFromName("rr"), Arbitration::RoundRobin);
    EXPECT_EQ(arbitrationFromName("round-robin"),
              Arbitration::RoundRobin);
    EXPECT_THROW(arbitrationFromName("lottery"), FatalError);
    // The default configuration is the seed's plain FIFO.
    EXPECT_EQ(ArbitrationConfig{}.discipline, Arbitration::Fifo);
    ArbitrationConfig bad;
    bad.discipline = Arbitration::Priority;
    bad.priorityLevels = 0;
    EXPECT_THROW(bad.check(), FatalError);
}

TEST(Arbitration, PriorityHigherLevelWinsWhileBusIsBusy)
{
    ArbFixture f;
    ArbitrationConfig arb;
    arb.discipline = Arbitration::Priority;
    arb.priorityLevels = 4;
    VmeBus bus(f.events, f.memory, {}, arb);

    std::vector<std::uint32_t> order;
    // Master 0 (level 0) takes the bus; masters 1..3 (levels 1..3)
    // queue behind it. Non-preemptive: 0's transaction completes, then
    // the highest queued level is granted first.
    for (std::uint32_t id : {0u, 1u, 2u, 3u})
        ArbFixture::submit(bus, id, order);
    f.events.run();
    EXPECT_EQ(order,
              (std::vector<std::uint32_t>{0u, 3u, 2u, 1u}));
}

TEST(Arbitration, PrioritySameLevelKeepsArrivalOrder)
{
    ArbFixture f;
    ArbitrationConfig arb;
    arb.discipline = Arbitration::Priority;
    arb.priorityLevels = 4;
    VmeBus bus(f.events, f.memory, {}, arb);

    // Masters 1, 5 and 9 all request on level 1 (id % 4); the
    // daisy-chain serves equals in arrival order.
    std::vector<std::uint32_t> order;
    for (std::uint32_t id : {0u, 9u, 5u, 1u})
        ArbFixture::submit(bus, id, order);
    f.events.run();
    EXPECT_EQ(order,
              (std::vector<std::uint32_t>{0u, 9u, 5u, 1u}));
}

TEST(Arbitration, PriorityMasterLevelOverride)
{
    ArbFixture f;
    ArbitrationConfig arb;
    arb.discipline = Arbitration::Priority;
    arb.priorityLevels = 4;
    VmeBus bus(f.events, f.memory, {}, arb);

    // Promote master 1 from its default level 1 to level 3: it now
    // beats master 2 (level 2) in arbitration.
    bus.setMasterLevel(1, 3);
    EXPECT_EQ(bus.levelOf(1), 3u);
    EXPECT_EQ(bus.levelOf(2), 2u);

    std::vector<std::uint32_t> order;
    for (std::uint32_t id : {0u, 2u, 1u})
        ArbFixture::submit(bus, id, order);
    f.events.run();
    EXPECT_EQ(order, (std::vector<std::uint32_t>{0u, 1u, 2u}));
}

TEST(Arbitration, PriorityLevelHistogramsSplitTheLoad)
{
    ArbFixture f;
    ArbitrationConfig arb;
    arb.discipline = Arbitration::Priority;
    arb.priorityLevels = 4;
    VmeBus bus(f.events, f.memory, {}, arb);

    std::vector<std::uint32_t> order;
    // Several contention rounds: all four levels request at once.
    for (int round = 0; round < 8; ++round) {
        f.events.schedule(
            round * 10'000,
            [&bus, &order] {
                for (std::uint32_t id : {0u, 1u, 2u, 3u})
                    ArbFixture::submit(bus, id, order);
            },
            "round");
    }
    f.events.run();
    ASSERT_EQ(order.size(), 32u);
    // Every grant lands in exactly one per-level histogram...
    std::uint64_t grants = 0;
    for (unsigned l = 0; l < 4; ++l)
        grants += bus.grantsOfLevel(l).value();
    EXPECT_EQ(grants, 32u);
    EXPECT_EQ(bus.queueDelays().samples(), 32u);
    // ...and among the levels that actually queue (master 0 grabs the
    // idle bus each round, so level 0 never waits) the high level
    // waits less than the low one on average.
    EXPECT_LT(bus.queueDelaysOfLevel(3).mean(),
              bus.queueDelaysOfLevel(1).mean());
    // FIFO keeps no per-level split at all.
    VmeBus fifo(f.events, f.memory);
    EXPECT_THROW(fifo.grantsOfLevel(0), PanicError);
}

TEST(Arbitration, RoundRobinRotatesFromLastHolder)
{
    ArbFixture f;
    ArbitrationConfig arb;
    arb.discipline = Arbitration::RoundRobin;
    VmeBus bus(f.events, f.memory, {}, arb);

    // Master 2 holds the bus; 0, 1 and 3 queue while it transfers.
    // The rotation grants the next id after the holder: 3, then 0,
    // then 1 — not FIFO arrival order.
    std::vector<std::uint32_t> order;
    for (std::uint32_t id : {2u, 1u, 0u, 3u})
        ArbFixture::submit(bus, id, order);
    f.events.run();
    EXPECT_EQ(order,
              (std::vector<std::uint32_t>{2u, 3u, 0u, 1u}));
}

TEST(Arbitration, RoundRobinPreventsBusCapture)
{
    ArbFixture f;
    ArbitrationConfig arb;
    arb.discipline = Arbitration::RoundRobin;
    VmeBus bus(f.events, f.memory, {}, arb);

    // Master 0 resubmits the instant each of its transactions
    // completes — under FIFO-with-zero-latency-resubmit it could
    // capture the bus. Round-robin must interleave masters 1 and 2.
    std::vector<std::uint32_t> order;
    int remaining = 6;
    std::function<void()> pump = [&] {
        BusTransaction tx;
        tx.type = TxType::AssertOwnership;
        tx.requester = 0;
        bus.request(tx, [&](const TxResult &) {
            order.push_back(0);
            if (--remaining > 0)
                pump();
        });
    };
    pump();
    ArbFixture::submit(bus, 1, order);
    ArbFixture::submit(bus, 2, order);
    f.events.run();
    // Masters 1 and 2 are served before master 0's third grant.
    ASSERT_GE(order.size(), 4u);
    EXPECT_EQ(order[1], 1u);
    EXPECT_EQ(order[2], 2u);
    EXPECT_EQ(order[3], 0u);
}

TEST(Arbitration, AbortedThenRetriedSamplesCompletedDelayOnce)
{
    // Regression for the histogram split: an aborted-then-retried
    // transaction used to contribute one queue-delay sample per
    // *grant*, skewing the distribution during recovery storms. The
    // aborted attempt must land in abortedQueueDelays() and only the
    // final successful grant in queueDelays().
    ArbFixture f;
    VmeBus bus(f.events, f.memory);
    AbortingWatcher aborter;
    bus.attachWatcher(9, aborter);
    aborter.abortCount = 2;

    std::vector<std::uint8_t> buf(256, 0);
    BusTransaction tx;
    tx.type = TxType::ReadShared;
    tx.requester = 0;
    tx.paddr = 0x4000;
    tx.bytes = 256;
    tx.data = buf.data();

    int completions = 0;
    std::function<void()> issue = [&] {
        bus.request(tx, [&](const TxResult &res) {
            ++completions;
            if (res.aborted)
                issue(); // immediate retry, like the miss handler
        });
    };
    issue();
    f.events.run();

    EXPECT_EQ(completions, 3);
    EXPECT_EQ(bus.aborts().value(), 2u);
    EXPECT_EQ(bus.countOf(TxType::ReadShared).value(), 1u);
    EXPECT_EQ(bus.abortsOf(TxType::ReadShared).value(), 2u);
    // One completed-grant sample, two aborted-grant samples.
    EXPECT_EQ(bus.queueDelays().samples(), 1u);
    EXPECT_EQ(bus.abortedQueueDelays().samples(), 2u);
}

} // namespace
} // namespace vmp::mem

namespace vmp
{
namespace
{

core::RunResult
flatRun(std::uint32_t cpus, std::uint64_t refs_per_cpu,
        std::uint64_t cache_kib, bool share_kernel, core::VmpSystem &sys)
{
    std::vector<std::unique_ptr<trace::SyntheticGen>> gens;
    std::vector<trace::RefSource *> sources;
    for (std::uint32_t i = 0; i < cpus; ++i) {
        auto workload = trace::workloadConfig("atum2");
        workload.totalRefs = refs_per_cpu;
        workload.seed = 1000 + i;
        workload.asidBase = static_cast<Asid>(1 + i * 8);
        if (!share_kernel)
            workload.kernelOffset = static_cast<Addr>(i) * 0x20'0000;
        gens.push_back(std::make_unique<trace::SyntheticGen>(workload));
        sources.push_back(gens.back().get());
    }
    return sys.runTraces(sources);
}

core::VmpConfig
flatConfig(std::uint32_t cpus, std::uint64_t cache_kib)
{
    core::VmpConfig cfg;
    cfg.processors = cpus;
    cfg.cache = cache::CacheConfig::forSize(KiB(cache_kib), 256, 4, true);
    cfg.memBytes = MiB(8);
    return cfg;
}

// The arbitration rework must leave the default discipline
// bit-identical to the seed simulator: same total elapsed ticks, same
// event counts, for the same seeds. These constants are the seed
// fingerprints; any timing-visible change to the FIFO path moves them.

TEST(FifoFingerprint, FlatPartitionedWorkload)
{
    setInformEnabled(false);
    core::VmpSystem sys(flatConfig(4, 64));
    const auto r = flatRun(4, 20'000, 64, false, sys);
    EXPECT_EQ(r.elapsed, 11'702'800u);
    EXPECT_EQ(r.totalRefs, 80'000u);
    EXPECT_EQ(r.totalMisses, 852u);
    EXPECT_EQ(r.busAborts, 0u);
    EXPECT_EQ(r.writeBacks, 3u);
    EXPECT_EQ(sys.bus().transactions().value(), 855u);
    EXPECT_EQ(sys.bus().queueDelays().samples(), 855u);
    EXPECT_EQ(sys.bus().abortedQueueDelays().samples(), 0u);
}

TEST(FifoFingerprint, FlatSharedKernelWorkload)
{
    setInformEnabled(false);
    core::VmpSystem sys(flatConfig(4, 16));
    const auto r = flatRun(4, 20'000, 16, true, sys);
    EXPECT_EQ(r.elapsed, 23'979'131u);
    EXPECT_EQ(r.totalRefs, 80'000u);
    EXPECT_EQ(r.totalMisses, 2'098u);
    EXPECT_EQ(r.busAborts, 504u);
    EXPECT_EQ(r.writeBacks, 465u);
    EXPECT_EQ(sys.bus().transactions().value(), 3'661u);
    // Completed-only histogram: 3661 completed grants minus the 504
    // one-short-transaction aborts that sample the aborted histogram.
    EXPECT_EQ(sys.bus().queueDelays().samples(), 3'157u);
    EXPECT_EQ(sys.bus().abortedQueueDelays().samples(), 504u);
}

TEST(FifoFingerprint, HierTwoByTwo)
{
    setInformEnabled(false);
    core::HierConfig cfg;
    cfg.clusters = 2;
    cfg.cpusPerCluster = 2;
    cfg.cache = cache::CacheConfig::forSize(KiB(16), 256, 4, true);
    cfg.memBytes = MiB(8);
    core::HierVmpSystem sys(cfg);
    std::vector<std::unique_ptr<trace::SyntheticGen>> gens;
    std::vector<trace::RefSource *> sources;
    for (std::uint32_t i = 0; i < 4; ++i) {
        auto workload = trace::workloadConfig("atum2");
        workload.totalRefs = 10'000;
        workload.seed = 1000 + i;
        workload.asidBase = static_cast<Asid>(1 + i * 8);
        workload.kernelOffset = static_cast<Addr>(i) * 0x20'0000;
        gens.push_back(std::make_unique<trace::SyntheticGen>(workload));
        sources.push_back(gens.back().get());
    }
    const auto r = sys.runTraces(sources);
    EXPECT_EQ(r.elapsed, 13'379'061u);
    EXPECT_EQ(r.totalRefs, 40'000u);
    EXPECT_EQ(r.totalMisses, 952u);
    EXPECT_EQ(r.globalFetches, 522u);
    EXPECT_EQ(r.globalWriteBacks, 0u);
}

TEST(DisciplineSweep, PartitionedMissesAreDisciplineInvariant)
{
    // On partitioned workloads no transaction is ever aborted, so the
    // reference streams and their miss counts cannot depend on who
    // wins arbitration — only the waiting (and thus elapsed time)
    // can. A discipline that changed the miss count would be moving
    // architected state.
    setInformEnabled(false);
    for (const mem::Arbitration discipline :
         {mem::Arbitration::Priority, mem::Arbitration::RoundRobin}) {
        auto cfg = flatConfig(4, 64);
        cfg.arbitration.discipline = discipline;
        core::VmpSystem sys(cfg);
        const auto r = flatRun(4, 20'000, 64, false, sys);
        EXPECT_EQ(r.totalRefs, 80'000u) << arbitrationName(discipline);
        EXPECT_EQ(r.totalMisses, 852u) << arbitrationName(discipline);
        EXPECT_EQ(r.busAborts, 0u) << arbitrationName(discipline);
        EXPECT_GT(r.elapsed, 0u);
    }
}

} // namespace
} // namespace vmp
