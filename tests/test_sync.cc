/**
 * @file
 * Tests for the Section 5.4 synchronization primitives: each lock
 * flavour must provide mutual exclusion (exact shared-counter totals
 * under contention), and their relative bus behaviour must match the
 * paper's story — cached test-and-set drags the lock page between
 * caches; notification locks eliminate the spin traffic.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "sim/logging.hh"
#include "sync/locks.hh"
#include "sync/mailbox.hh"
#include "trace/synthetic.hh"

namespace vmp::sync
{
namespace
{

core::VmpConfig
systemConfig(std::uint32_t cpus)
{
    core::VmpConfig cfg;
    cfg.processors = cpus;
    cfg.cache = cache::CacheConfig{256, 2, 16, true};
    cfg.memBytes = MiB(1);
    return cfg;
}

struct LockRun
{
    std::uint32_t finalCounter = 0;
    std::uint64_t busTransactions = 0;
    std::uint64_t readPrivates = 0;
    std::uint64_t assertOwns = 0;
    std::uint64_t notifies = 0;
    Tick elapsed = 0;
};

LockRun
runLockStudy(LockKind kind, std::uint32_t cpus, std::uint32_t iters)
{
    LockWorkload workload;
    workload.kind = kind;
    workload.iterations = iters;
    workload.counterAddr = trace::kernelBase + 0x4000;
    if (kind == LockKind::CachedTas) {
        // Lock on a *different* page from the counter (the same-page
        // case is studied separately in the bench).
        workload.lockAddr = trace::kernelBase + 0x8000;
    } else {
        workload.lockAddr = 0x100; // uncached physical lock word
    }

    core::VmpSystem system(systemConfig(cpus));
    const auto cpu_objs = system.runPrograms(
        std::vector<cpu::Program>(cpus, lockWorker(workload)));

    LockRun run;
    for (const auto &c : cpu_objs) {
        EXPECT_EQ(c->reg(7), iters);
        run.elapsed = std::max(run.elapsed, c->elapsed());
    }
    bool done = false;
    system.controller(0).readWord(1, workload.counterAddr, true,
                                  [&](std::uint32_t v) {
                                      run.finalCounter = v;
                                      done = true;
                                  });
    system.events().run();
    EXPECT_TRUE(done);
    run.busTransactions = system.bus().transactions().value();
    run.readPrivates =
        system.bus().countOf(mem::TxType::ReadPrivate).value();
    run.assertOwns =
        system.bus().countOf(mem::TxType::AssertOwnership).value();
    run.notifies = system.bus().countOf(mem::TxType::Notify).value();
    return run;
}

TEST(LockKindNames, AllNamed)
{
    EXPECT_STREQ(lockKindName(LockKind::CachedTas), "cached-tas");
    EXPECT_STREQ(lockKindName(LockKind::UncachedTas), "uncached-tas");
    EXPECT_STREQ(lockKindName(LockKind::Notify), "notify");
}

TEST(LockWorker, ValidatesIterations)
{
    LockWorkload workload;
    workload.iterations = 0;
    EXPECT_THROW(lockWorker(workload), FatalError);
}

TEST(LockWorker, SingleCpuAllKindsComplete)
{
    for (const LockKind kind :
         {LockKind::CachedTas, LockKind::UncachedTas,
          LockKind::Notify}) {
        const auto run = runLockStudy(kind, 1, 10);
        EXPECT_EQ(run.finalCounter, 10u) << lockKindName(kind);
    }
}

TEST(LockWorker, MutualExclusionUnderContention)
{
    for (const LockKind kind :
         {LockKind::CachedTas, LockKind::UncachedTas,
          LockKind::Notify}) {
        const auto run = runLockStudy(kind, 3, 15);
        EXPECT_EQ(run.finalCounter, 45u) << lockKindName(kind);
    }
}

TEST(LockWorker, CachedTasGeneratesOwnershipTraffic)
{
    const auto cached = runLockStudy(LockKind::CachedTas, 2, 20);
    const auto uncached = runLockStudy(LockKind::UncachedTas, 2, 20);
    // Spinning with cached TAS drags the lock page between caches:
    // far more ownership transactions than the uncached lock (whose
    // only cached traffic is the counter page itself).
    EXPECT_GT(cached.readPrivates + cached.assertOwns,
              2 * (uncached.readPrivates + uncached.assertOwns));
}

TEST(LockWorker, NotifyLockUsesNotifyTransactions)
{
    const auto run = runLockStudy(LockKind::Notify, 2, 10);
    EXPECT_EQ(run.finalCounter, 20u);
    EXPECT_GT(run.notifies, 0u);
}

TEST(LockWorker, ExtraWorkTouchesMoreData)
{
    LockWorkload workload;
    workload.kind = LockKind::UncachedTas;
    workload.iterations = 5;
    workload.lockAddr = 0x100;
    workload.counterAddr = trace::kernelBase + 0x4000;
    workload.extraWork = 4;
    workload.workBase = trace::kernelBase + 0xC000;

    core::VmpSystem system(systemConfig(1));
    const auto cpus =
        system.runPrograms({lockWorker(workload)});
    EXPECT_EQ(cpus[0]->reg(7), 5u);
    // The work words were really incremented.
    for (std::uint32_t w = 0; w < 4; ++w) {
        std::uint32_t value = 0;
        system.controller(0).readWord(
            1, workload.workBase + w * 64, true,
            [&](std::uint32_t v) { value = v; });
        system.events().run();
        EXPECT_EQ(value, 5u) << w;
    }
}

// ------------------------------------------------------------ mailbox

TEST(Mailbox, LayoutAndValidation)
{
    EXPECT_EQ(MailboxLayout::bytes(8), 12u + 32u);
    core::VmpSystem system(systemConfig(1));
    system.attachIdleServicers();
    EXPECT_THROW(MailboxReceiver(system.controller(0), 0x100, 3),
                 FatalError);
    bool sent = false;
    EXPECT_THROW(mailboxSend(system.controller(0), 0x100, 5, 1,
                             [&](bool) { sent = true; }),
                 FatalError);
}

TEST(Mailbox, SingleMessageDelivered)
{
    core::VmpSystem system(systemConfig(2));
    system.attachIdleServicers();
    const Addr box = 0x400; // reserved uncached frame

    MailboxReceiver receiver(system.controller(0), box, 8);
    std::vector<std::uint32_t> got;
    bool enabled = false;
    receiver.enable([&](std::uint32_t m) { got.push_back(m); },
                    [&] { enabled = true; });
    system.events().run();
    ASSERT_TRUE(enabled);

    bool delivered = false;
    mailboxSend(system.controller(1), box, 8, 0xBEEF,
                [&](bool ok) { delivered = ok; });
    system.events().run();
    EXPECT_TRUE(delivered);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 0xBEEFu);
    EXPECT_EQ(receiver.received().value(), 1u);
}

TEST(Mailbox, ManyMessagesInOrder)
{
    core::VmpSystem system(systemConfig(2));
    system.attachIdleServicers();
    const Addr box = 0x400;
    MailboxReceiver receiver(system.controller(0), box, 8);
    std::vector<std::uint32_t> got;
    receiver.enable([&](std::uint32_t m) { got.push_back(m); },
                    [] {});
    system.events().run();

    for (std::uint32_t i = 0; i < 20; ++i) {
        bool delivered = false;
        mailboxSend(system.controller(1), box, 8, 100 + i,
                    [&](bool ok) { delivered = ok; });
        system.events().run();
        EXPECT_TRUE(delivered) << i;
    }
    ASSERT_EQ(got.size(), 20u);
    for (std::uint32_t i = 0; i < 20; ++i)
        EXPECT_EQ(got[i], 100 + i);
}

TEST(Mailbox, FullRingRejectsWithoutBlocking)
{
    core::VmpSystem system(systemConfig(2));
    system.attachIdleServicers();
    const Addr box = 0x400;
    // Receiver exists but is NOT enabled: messages accumulate.
    MailboxReceiver receiver(system.controller(0), box, 4);
    int delivered = 0, dropped = 0;
    for (std::uint32_t i = 0; i < 6; ++i) {
        mailboxSend(system.controller(1), box, 4, i, [&](bool ok) {
            (ok ? delivered : dropped) += 1;
        });
        system.events().run();
    }
    EXPECT_EQ(delivered, 4);
    EXPECT_EQ(dropped, 2);
}

TEST(Mailbox, DisableStopsNotifications)
{
    core::VmpSystem system(systemConfig(2));
    system.attachIdleServicers();
    const Addr box = 0x400;
    MailboxReceiver receiver(system.controller(0), box, 8);
    int got = 0;
    receiver.enable([&](std::uint32_t) { ++got; }, [] {});
    system.events().run();
    mailboxSend(system.controller(1), box, 8, 1, [](bool) {});
    system.events().run();
    EXPECT_EQ(got, 1);

    bool disabled = false;
    receiver.disable([&] { disabled = true; });
    system.events().run();
    ASSERT_TRUE(disabled);
    mailboxSend(system.controller(1), box, 8, 2, [](bool) {});
    system.events().run();
    EXPECT_EQ(got, 1); // no notification handler, no drain
}

} // namespace
} // namespace vmp::sync
