/**
 * @file
 * vmp_replay: trace-driven ownership-history archaeology.
 *
 * Ingests a streamed (or post-hoc) Chrome-trace event file — cleanly
 * closed or truncated mid-run — and reconstructs per-frame ownership
 * history from the bus transactions it carries:
 *
 *   vmp_replay TRACE.json                      # all ownership traffic
 *   vmp_replay TRACE.json --frame 0x1f00       # one frame's history
 *   vmp_replay TRACE.json --board 2            # one board's traffic
 *   vmp_replay TRACE.json --track c0.bus       # one bus domain (hier)
 *   vmp_replay TRACE.json --from-us 50 --to-us 900   # time window
 *   vmp_replay TRACE.json --frame 0x1f00 --at-us 731 # owner probe:
 *       who owned the frame at t=731us, and through which
 *       Protect/Reclaim chain did it get there
 *
 * --page-bytes N aligns --frame down to a page boundary so a faulting
 * data address can be probed directly. Exit status: 0 on success, 1
 * on unreadable/unparseable input, 2 on usage errors.
 */

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "sim/logging.hh"
#include "telemetry/replay.hh"

namespace
{

using namespace vmp;

int
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0 << " TRACE.json [options]\n"
        << "  --frame ADDR    frame physical address (0x.. or dec)\n"
        << "  --at-us T       probe: who owned --frame at T (us)\n"
        << "  --board N       filter history to one master\n"
        << "  --track NAME    filter to one track (e.g. bus, c0.bus)\n"
        << "  --from-us T     window start (us)\n"
        << "  --to-us T       window end (us)\n"
        << "  --page-bytes N  align --frame down to a page boundary\n"
        << "  --limit N       print at most N history rows (0 = all)\n";
    return 2;
}

std::uint64_t
parseU64(const std::string &text)
{
    return std::stoull(text, nullptr, 0);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);
    const std::string path = argv[1];
    if (path == "-h" || path == "--help")
        return usage(argv[0]);

    telemetry::ReplayFilter filter;
    std::optional<double> at_us;
    std::uint64_t page_bytes = 0;
    std::size_t limit = 40;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--frame" && has_value)
            filter.frame = parseU64(argv[++i]);
        else if (arg == "--at-us" && has_value)
            at_us = std::stod(argv[++i]);
        else if (arg == "--board" && has_value)
            filter.board =
                static_cast<std::uint32_t>(parseU64(argv[++i]));
        else if (arg == "--track" && has_value)
            filter.track = std::string(argv[++i]);
        else if (arg == "--from-us" && has_value)
            filter.fromNs = static_cast<Tick>(
                std::stod(argv[++i]) * 1000.0);
        else if (arg == "--to-us" && has_value)
            filter.toNs =
                static_cast<Tick>(std::stod(argv[++i]) * 1000.0);
        else if (arg == "--page-bytes" && has_value)
            page_bytes = parseU64(argv[++i]);
        else if (arg == "--limit" && has_value)
            limit = static_cast<std::size_t>(parseU64(argv[++i]));
        else
            return usage(argv[0]);
    }
    if (page_bytes != 0 && filter.frame)
        filter.frame = *filter.frame / page_bytes * page_bytes;
    if (at_us && !filter.frame) {
        std::cerr << "vmp_replay: --at-us requires --frame\n";
        return 2;
    }

    std::ifstream is(path);
    if (!is) {
        std::cerr << "vmp_replay: cannot open " << path << "\n";
        return 1;
    }

    try {
        const auto session = telemetry::ReplaySession::fromStream(is);
        std::cout << "loaded " << path << ": "
                  << session.rawRecords() << " trace records, "
                  << session.events().size()
                  << " ownership-relevant, "
                  << session.trackNames().size() << " tracks\n";

        if (at_us) {
            const Tick at_ns =
                static_cast<Tick>(*at_us * 1000.0);
            const auto verdict = session.ownerAt(
                *filter.frame, at_ns,
                filter.track ? *filter.track : "");
            std::cout << "frame 0x" << std::hex << *filter.frame
                      << std::dec << " at t=" << at_ns
                      << "ns: " << verdict.toString() << "\n";
            for (const auto &event : verdict.chain)
                std::cout << "  " << event.toString() << "\n";
            return 0;
        }

        const auto history = session.history(filter);
        std::cout << history.size() << " matching record(s)\n";
        std::size_t printed = 0;
        for (const auto &event : history) {
            if (limit != 0 && printed++ >= limit) {
                std::cout << "  ... (" << history.size() - limit
                          << " more; raise --limit)\n";
                break;
            }
            std::cout << "  " << event.toString() << "\n";
        }
        return 0;
    } catch (const FatalError &err) {
        std::cerr << "vmp_replay: " << err.what() << "\n";
        return 1;
    }
}
