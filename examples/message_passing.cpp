/**
 * @file
 * Interprocessor messages over the bus monitor (Section 5.4): a
 * producer processor sends a stream of work items to a consumer's
 * mailbox; the consumer is interrupted by notify transactions rather
 * than polling. Compare the bus transaction count with what a polled
 * shared-memory queue would cost.
 *
 *   $ ./examples/message_passing
 */

#include <iostream>
#include <numeric>

#include "core/system.hh"
#include "sim/logging.hh"
#include "sync/mailbox.hh"
#include "trace/synthetic.hh"

int
main()
{
    using namespace vmp;
    setInformEnabled(false);

    core::VmpConfig config;
    config.processors = 2;
    config.cache = cache::CacheConfig::forSize(KiB(64), 256, 4, true);
    config.memBytes = MiB(8);
    core::VmpSystem system(config);
    system.attachIdleServicers();

    constexpr std::uint32_t messages = 64;
    const Addr box = 0x400; // reserved uncached frame
    constexpr std::uint32_t slots = 16;

    // CPU0 is the consumer: its bus monitor's entry for the mailbox
    // frame is set to 11 (notify); incoming notify transactions
    // interrupt it and it drains the ring.
    sync::MailboxReceiver receiver(system.controller(0), box, slots);
    std::uint64_t received_sum = 0;
    std::uint32_t received_count = 0;
    receiver.enable(
        [&](std::uint32_t message) {
            received_sum += message;
            ++received_count;
        },
        [] {});
    system.events().run();

    // CPU1 produces: deposit + one notify transaction per message.
    std::uint32_t sent = 0, dropped = 0;
    for (std::uint32_t i = 1; i <= messages; ++i) {
        bool done = false;
        sync::mailboxSend(system.controller(1), box, slots, i,
                          [&](bool delivered) {
                              (delivered ? sent : dropped) += 1;
                              done = true;
                          });
        system.events().run();
        if (!done)
            fatal("send did not complete");
    }

    const std::uint64_t expected =
        static_cast<std::uint64_t>(messages) * (messages + 1) / 2;
    std::cout << "Producer sent " << sent << " messages (" << dropped
              << " dropped); consumer received " << received_count
              << ", sum " << received_sum
              << (received_sum == expected ? " (correct)"
                                           : " (WRONG)")
              << "\n";
    std::cout << "Bus transactions: "
              << system.bus().transactions().value() << " total, "
              << system.bus().countOf(mem::TxType::Notify).value()
              << " notifies, "
              << system.bus().countOf(mem::TxType::ReadPrivate).value()
              << " read-privates (no cache-page ping-pong: the ring "
                 "lives in uncached memory)\n";
    std::cout << "Simulated time: "
              << toUsec(system.events().now()) << " us for "
              << messages << " messages ("
              << toUsec(system.events().now()) / messages
              << " us/message)\n";
    return 0;
}
