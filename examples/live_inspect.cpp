/**
 * @file
 * Live-telemetry walkthrough: attach the streaming sink to a running
 * VMP system, pause at quiescent points to snapshot the machine's
 * hidden hardware state, and replay the streamed trace to answer an
 * ownership question —
 *
 *   - live_inspect.stream.json  : incrementally-valid Chrome-trace
 *     stream written *during* the run (cut it anywhere;
 *     StreamingSink::recoverTruncated repairs it),
 *   - live_inspect.gauges.jsonl : one rolled-up gauge snapshot per
 *     flush (bus utilization, FIFO depths, miss-phase EWMAs),
 *   - live_inspect.snapshot.json: cache tags, action tables, FIFO
 *     contents and controller state at end-of-run quiescence,
 *   - stdout: who owned the hottest contended frame at mid-run,
 *     reconstructed from the stream alone (what tools/vmp_replay does
 *     for any saved trace file).
 *
 *   $ ./examples/live_inspect
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "core/system.hh"
#include "obs/export.hh"
#include "sim/logging.hh"
#include "telemetry/inspect.hh"
#include "telemetry/replay.hh"
#include "telemetry/streaming_sink.hh"
#include "telemetry/system_gauges.hh"
#include "trace/synthetic.hh"
#include "trace/workloads.hh"

int
main()
{
    using namespace vmp;
    setInformEnabled(false);

    core::VmpConfig config;
    config.processors = 2;
    config.cache = cache::CacheConfig::forSize(KiB(64), 256, 4, true);
    config.memBytes = MiB(8);
    core::VmpSystem system(config);
    obs::EventTracer &tracer = system.enableTracing();

    // The sink rides the tracer's sink seam: it sees every event at
    // record() time (before ring storage, so ring wrap loses nothing
    // downstream) and flushes line-oriented Chrome-trace JSON during
    // the run. The gauge side channel snapshots live system state at
    // every flush boundary.
    std::ofstream stream("live_inspect.stream.json");
    std::ofstream gauges("live_inspect.gauges.jsonl");
    if (!stream || !gauges)
        fatal("cannot open live_inspect output files");
    telemetry::StreamingSink sink(stream);
    sink.setGaugeStream(&gauges);
    telemetry::attachSystemGauges(sink, system);
    sink.attach(tracer, system.events());

    std::vector<std::unique_ptr<trace::SyntheticGen>> gens;
    std::vector<trace::RefSource *> sources;
    for (std::uint32_t i = 0; i < config.processors; ++i) {
        auto workload = trace::workloadConfig("atum2");
        workload.totalRefs = 20'000;
        workload.seed = 42 + i;
        workload.asidBase = static_cast<Asid>(1 + i * 8);
        gens.push_back(std::make_unique<trace::SyntheticGen>(workload));
        sources.push_back(gens.back().get());
    }
    const auto result = system.runTraces(sources);
    sink.close();
    std::cout << "run: " << result.toString() << "\n";
    std::cout << "streamed " << sink.eventsStreamed() << " events in "
              << sink.flushes() << " flushes, " << sink.droppedTotal()
              << " dropped\n\n";

    // Live inspection at quiescence: the full hidden hardware state —
    // cache tag arrays, 2-bit action tables, interrupt-FIFO words —
    // as one JSON document.
    const Json snapshot = telemetry::inspectSystem(system);
    {
        std::ofstream os("live_inspect.snapshot.json");
        if (!os)
            fatal("cannot open live_inspect.snapshot.json");
        snapshot.write(os, 2);
        os << '\n';
    }
    std::cout << "snapshot: " << snapshot.get("boards").size()
              << " boards at t=" << snapshot.get("t_ns").asUint()
              << "ns -> live_inspect.snapshot.json\n";

    // The rolled-up gauges also render inline with the trace totals.
    const obs::GaugeSet live = telemetry::collectGauges(system);
    std::cout << "\n"
              << obs::metricsSnapshot(tracer, system.missProfiler(),
                                      &live);

    // Replay the stream we just wrote: find the frame with the most
    // ownership transitions and ask who held it halfway through the
    // run — exactly what `vmp_replay live_inspect.stream.json
    // --frame 0x... --at-us T` answers for a saved trace.
    std::ifstream is("live_inspect.stream.json");
    const auto session = telemetry::ReplaySession::fromStream(is);
    std::uint64_t hot_frame = 0;
    std::size_t hot_count = 0;
    {
        std::uint64_t prev = ~std::uint64_t{0};
        std::size_t count = 0;
        auto sorted = session.events();
        std::sort(sorted.begin(), sorted.end(),
                  [](const auto &a, const auto &b) {
                      return a.addr < b.addr;
                  });
        for (const auto &event : sorted) {
            count = event.addr == prev ? count + 1 : 1;
            prev = event.addr;
            if (count > hot_count) {
                hot_count = count;
                hot_frame = event.addr;
            }
        }
    }
    const Tick mid = system.events().now() / 2;
    const auto verdict = session.ownerAt(hot_frame, mid);
    std::cout << "\nreplay: hottest frame 0x" << std::hex << hot_frame
              << std::dec << " (" << hot_count
              << " ownership events); at t=" << mid
              << "ns: " << verdict.toString() << "\n";
    for (const auto &event : verdict.chain) {
        std::cout << "  " << event.toString() << "\n";
        if (&event - verdict.chain.data() >= 9) {
            std::cout << "  ...\n";
            break;
        }
    }
    return 0;
}
