/**
 * @file
 * Observability walkthrough: arm the event tracer on a small VMP
 * system, run a two-processor workload, and export everything the
 * subsystem produces —
 *
 *   - trace_export.trace.json : Chrome-trace / Perfetto timeline (open
 *     in chrome://tracing or ui.perfetto.dev; one named track per
 *     board plus the bus),
 *   - trace_export.bus.csv    : bus-utilization time series,
 *   - trace_export.fifo.csv   : interrupt-FIFO depth samples,
 *   - a per-miss phase breakdown (trap, table lookup, victim
 *     writeback, block copy, consistency wait) on stdout.
 *
 * Tracing is pure observation: run this with and without
 * enableTracing() and the simulated results are bit-identical.
 *
 *   $ ./examples/trace_export
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "core/system.hh"
#include "obs/event_tracer.hh"
#include "obs/export.hh"
#include "obs/miss_profiler.hh"
#include "sim/logging.hh"
#include "trace/synthetic.hh"
#include "trace/workloads.hh"

int
main()
{
    using namespace vmp;
    setInformEnabled(false);

    core::VmpConfig config;
    config.processors = 2;
    config.cache = cache::CacheConfig::forSize(KiB(64), 256, 4, true);
    config.memBytes = MiB(8);
    core::VmpSystem system(config);

    // Arm the tracer before any traffic. Every component seam (bus,
    // monitors, FIFOs, controllers, block copiers) starts emitting
    // typed events into per-board ring buffers; the MissProfiler rides
    // along as a sink and folds each miss's phases as they stream by.
    obs::TraceConfig trace_cfg;
    trace_cfg.ringCapacity = 1 << 15;
    system.enableTracing(trace_cfg);

    std::vector<std::unique_ptr<trace::SyntheticGen>> gens;
    std::vector<trace::RefSource *> sources;
    for (std::uint32_t i = 0; i < config.processors; ++i) {
        auto workload = trace::workloadConfig("atum2");
        workload.totalRefs = 20'000;
        workload.seed = 42 + i;
        workload.asidBase = static_cast<Asid>(1 + i * 8);
        gens.push_back(std::make_unique<trace::SyntheticGen>(workload));
        sources.push_back(gens.back().get());
    }
    const auto result = system.runTraces(sources);
    std::cout << "run: " << result.toString() << "\n\n";

    const obs::EventTracer &tracer = *system.tracer();
    const obs::MissProfiler &profiler = *system.missProfiler();

    // Human-readable summary: per-track retention and the miss table.
    std::cout << obs::metricsSnapshot(tracer, &profiler);

    // Chrome-trace JSON: load into chrome://tracing / Perfetto.
    {
        std::ofstream os("trace_export.trace.json");
        if (!os)
            fatal("cannot open trace_export.trace.json");
        obs::writeChromeTrace(tracer, os);
        std::cout << "\nwrote trace_export.trace.json ("
                  << tracer.recorded() << " events recorded, "
                  << tracer.droppedOldest() << " overwritten)\n";
    }

    // Figure-5-style time series.
    {
        std::ofstream os("trace_export.bus.csv");
        if (!os)
            fatal("cannot open trace_export.bus.csv");
        os << obs::busUtilizationCsv(tracer, usec(200));
        std::cout << "wrote trace_export.bus.csv\n";
    }
    {
        std::ofstream os("trace_export.fifo.csv");
        if (!os)
            fatal("cannot open trace_export.fifo.csv");
        os << obs::fifoDepthCsv(tracer);
        std::cout << "wrote trace_export.fifo.csv\n";
    }

    // The profiler's verdict doubles as a self-check: the controller
    // emits phases as a gapless partition of each miss, so any
    // mismatch is a tracing bug.
    if (profiler.phaseSumMismatches() != 0)
        fatal("phase sums diverged from miss elapsed times");
    std::cout << "\n" << profiler.misses()
              << " misses profiled, phase sums exact\n";
    return 0;
}
