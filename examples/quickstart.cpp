/**
 * @file
 * Quickstart: build a two-processor VMP machine, run a synthetic
 * ATUM-like workload on each CPU, and read back the performance
 * statistics — miss ratio, normalized processor performance, bus
 * utilization and the consistency-protocol activity.
 *
 *   $ ./examples/quickstart
 */

#include <iostream>

#include "core/system.hh"
#include "sim/stats.hh"
#include "trace/synthetic.hh"
#include "trace/workloads.hh"

int
main()
{
    using namespace vmp;

    // 1. Configure the machine: two processor boards, each with the
    //    prototype's 256 KiB 4-way cache of 256-byte pages, sharing
    //    8 MiB of memory over one VMEbus.
    core::VmpConfig config;
    config.processors = 2;
    config.cache = cache::CacheConfig::forSize(KiB(256), 256, 4, true);
    config.memBytes = MiB(8);

    core::VmpSystem system(config);

    // 2. Give each CPU a workload. The presets reproduce the locality
    //    structure of the paper's ATUM traces; here each CPU gets its
    //    own seed and address-space range, with the kernel image
    //    physically shared (so the ownership protocol has real work).
    auto workload0 = trace::workloadConfig("atum1");
    workload0.totalRefs = 200'000;
    auto workload1 = trace::workloadConfig("atum2");
    workload1.totalRefs = 200'000;
    workload1.asidBase = 10;

    trace::SyntheticGen gen0(workload0);
    trace::SyntheticGen gen1(workload1);

    // 3. Run to completion (event-driven; deterministic for a seed).
    const core::RunResult result = system.runTraces({&gen0, &gen1});

    // 4. Report.
    std::cout << "Run summary: " << result.toString() << "\n\n";

    TableWriter table("Per-processor detail");
    table.columns({"CPU", "Misses", "Ownership misses", "Retries",
                   "Write-backs", "Words serviced"});
    for (std::size_t cpu = 0; cpu < config.processors; ++cpu) {
        const auto &ctl = system.controller(cpu);
        table.row()
            .cell(std::uint64_t{cpu})
            .cell(ctl.misses().value())
            .cell(ctl.ownershipMisses().value())
            .cell(ctl.retries().value())
            .cell(ctl.writeBacks().value())
            .cell(ctl.wordsServiced().value());
    }
    table.print(std::cout);

    // Full statistics dump in gem5 style.
    StatGroup bus_stats("bus");
    system.bus().registerStats(bus_stats);
    bus_stats.dump(std::cout);
    return 0;
}
