/**
 * @file
 * Parallel-counter example: three scripted processors increment one
 * shared counter under each of the Section 5.4 lock designs, proving
 * coherence end to end (the total is exact) and showing what each lock
 * costs in time and bus traffic. This is the "workform processing"
 * style shared-state workload the paper's software sections discuss.
 *
 *   $ ./examples/parallel_counter
 */

#include <iostream>

#include "core/system.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sync/locks.hh"
#include "trace/synthetic.hh"

int
main()
{
    using namespace vmp;
    setInformEnabled(false);

    constexpr std::uint32_t cpus = 3;
    constexpr std::uint32_t iterations = 30;

    std::cout << "Three processors, " << iterations
              << " lock/increment/unlock rounds each; expected total "
              << cpus * iterations << ".\n\n";

    TableWriter table("Lock flavours");
    table.columns({"Lock", "Final counter", "Elapsed (us)",
                   "Bus transactions", "Bus aborts"});

    for (const auto kind :
         {sync::LockKind::CachedTas, sync::LockKind::UncachedTas,
          sync::LockKind::Notify}) {
        sync::LockWorkload workload;
        workload.kind = kind;
        workload.iterations = iterations;
        workload.counterAddr = trace::kernelBase + 0x4000;
        workload.lockAddr = kind == sync::LockKind::CachedTas
            ? trace::kernelBase + 0x8000
            : 0x200; // reserved uncached word
        core::VmpConfig config;
        config.processors = cpus;
        config.cache =
            cache::CacheConfig::forSize(KiB(64), 256, 4, true);
        config.memBytes = MiB(8);
        core::VmpSystem system(config);

        const auto cpu_objs = system.runPrograms(
            std::vector<cpu::Program>(cpus,
                                      sync::lockWorker(workload)));

        Tick elapsed = 0;
        for (const auto &c : cpu_objs)
            elapsed = std::max(elapsed, c->elapsed());

        std::uint32_t final_value = 0;
        system.controller(0).readWord(
            1, workload.counterAddr, true,
            [&](std::uint32_t v) { final_value = v; });
        system.events().run();

        table.row()
            .cell(sync::lockKindName(kind))
            .cell(std::uint64_t{final_value})
            .cell(toUsec(elapsed), 0)
            .cell(system.bus().transactions().value())
            .cell(system.bus().aborts().value());
    }
    table.print(std::cout);

    std::cout << "Every flavour is exact — the ownership protocol "
                 "keeps the counter coherent —\nbut their bus "
                 "footprints differ exactly as Section 5.4 predicts.\n";
    return 0;
}
