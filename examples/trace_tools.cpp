/**
 * @file
 * Trace tooling example: generate a synthetic ATUM-like trace, save it
 * in both file formats, read it back, characterize it, and run it
 * through the fast cache simulator — the pipeline a user follows to
 * substitute their own (real) address traces for the presets.
 *
 *   $ ./examples/trace_tools [output-prefix]
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "core/fast_sim.hh"
#include "trace/analyzer.hh"
#include "trace/synthetic.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace vmp;

    const std::string prefix = argc > 1 ? argv[1] : "/tmp/vmp_example";
    const std::string bin_path = prefix + ".vmpt";
    const std::string txt_path = prefix + ".trace.txt";

    // 1. Generate a short trace.
    auto config = trace::workloadConfig("atum4");
    config.totalRefs = 50'000;
    trace::SyntheticGen gen(config);

    // 2. Save to the compact binary format and (first 1000 records)
    //    to the human-readable text format.
    {
        std::ofstream bin(bin_path, std::ios::binary);
        std::ofstream txt(txt_path);
        trace::BinaryTraceWriter bin_writer(bin);
        trace::TextTraceWriter txt_writer(txt);
        trace::MemRef ref;
        std::uint64_t n = 0;
        while (gen.next(ref)) {
            bin_writer.write(ref);
            if (n++ < 1000)
                txt_writer.write(ref);
        }
        std::cout << "Wrote " << bin_writer.written()
                  << " records to " << bin_path << " and the first "
                  << "1000 to " << txt_path << "\n";
    }

    // 3. Read it back and characterize it.
    std::ifstream bin(bin_path, std::ios::binary);
    trace::BinaryTraceReader reader(bin);
    trace::TraceAnalyzer analyzer;
    const auto replayed = analyzer.consume(reader);
    const auto profile = analyzer.profile();
    std::cout << "Replayed " << replayed << " records: "
              << profile.toString() << "\n";

    // 4. Run the trace through the Figure 4 cache simulator.
    std::ifstream again(bin_path, std::ios::binary);
    trace::BinaryTraceReader rerun(again);
    core::FastCacheSim sim(
        cache::CacheConfig::forSize(KiB(128), 256, 4, false));
    const auto result = sim.run(rerun);
    std::cout << "128K 4-way cache with 256B pages: miss ratio "
              << result.missRatio() * 100 << "% ("
              << result.misses << " misses), OS share of misses "
              << result.supervisorMissShare() * 100 << "%\n";

    std::cout << "\nAny trace in either format can be substituted for "
                 "the synthetic presets:\n  ifetch|read|write <asid> "
                 "<hex-vaddr> <size> usr|sup\n";
    return 0;
}
