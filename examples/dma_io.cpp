/**
 * @file
 * DMA I/O example: the Section 3.3 bracket that lets plain VME DMA
 * devices coexist with the consistency protocol. A processor caches a
 * buffer (dirtying it), then the "operating system" takes an uncached
 * lock on the region, assert-ownership flushes every cached copy, the
 * device streams fresh data in with ordinary (unmonitored) DMA
 * transactions, the protection is released, and both processors then
 * read the device's data — with no stale cache copies anywhere.
 *
 *   $ ./examples/dma_io
 */

#include <cstring>
#include <iostream>

#include "core/system.hh"
#include "sim/logging.hh"
#include "mem/dma.hh"
#include "trace/synthetic.hh"

namespace
{

using namespace vmp;

/** Synchronously drive an async controller op from the example. */
template <typename Fn>
void
drive(core::VmpSystem &system, Fn &&fn)
{
    bool done = false;
    fn([&done] { done = true; });
    system.events().run();
    if (!done)
        fatal("dma example: operation did not complete");
}

} // namespace

int
main()
{
    using namespace vmp;
    setInformEnabled(false);

    core::VmpConfig config;
    config.processors = 2;
    config.cache = cache::CacheConfig::forSize(KiB(64), 256, 4, true);
    config.memBytes = MiB(8);
    core::VmpSystem system(config);
    // No CPU models in this example: let each board service its own
    // bus-monitor interrupts as an idle processor would.
    system.attachIdleServicers();

    // A DMA device on the bus (ids above the CPUs are free).
    mem::DmaDevice disk(100, system.bus());

    const Addr buffer_va = trace::kernelBase + 0x6000;
    constexpr std::uint32_t buffer_bytes = 512; // two cache pages

    // 1. Both CPUs touch the buffer; CPU0 dirties it.
    std::cout << "1. CPU0 writes the buffer (cached, dirty); CPU1 "
                 "reads it.\n";
    drive(system, [&](auto done) {
        system.controller(0).writeWord(1, buffer_va, 0x01010101, true,
                                       done);
    });
    std::uint32_t seen = 0;
    system.controller(1).readWord(2, buffer_va, true,
                                  [&](std::uint32_t v) { seen = v; });
    system.events().run();
    std::cout << "   CPU1 sees 0x" << std::hex << seen << std::dec
              << "\n";

    // The buffer's physical frames (resolve via CPU0's bookkeeping: in
    // a real kernel the driver knows the mapping; here we probe).
    // kernel pages were demand-allocated; find the paddr by asking the
    // translator through a fresh access is overkill — the memory image
    // is what the device addresses, so locate it by content.
    Addr buffer_pa = 0;
    bool found = false;
    for (Addr pa = 0; pa + 4 <= config.memBytes && !found; pa += 4) {
        if (system.memory().readWord(pa) == 0x01010101) {
            // CPU0's copy may still be dirty; flush below handles it.
            buffer_pa = pa;
            found = true;
        }
    }

    // 2. OS bracket: uncached lock, then assert-ownership per frame.
    std::cout << "2. OS takes the uncached region lock and "
                 "assert-ownership flushes all cached copies.\n";
    drive(system, [&](auto done) {
        system.controller(0).uncachedTas(
            0x300, [done](std::uint32_t old) {
                if (old != 0)
                    fatal("region lock unexpectedly held");
                done();
            });
    });
    if (!found) {
        // Dirty data never reached memory yet: flush via the bracket
        // using the virtual address path on CPU0 (which owns it).
        // assert-ownership from CPU1 forces CPU0's write-back.
        drive(system, [&](auto done) {
            // CPU1 doesn't know the paddr either in this toy; so make
            // CPU0 write back by downgrading: CPU1 reads the buffer.
            system.controller(1).readWord(
                2, buffer_va, true,
                [done](std::uint32_t) { done(); });
        });
        for (Addr pa = 0; pa + 4 <= config.memBytes; pa += 4) {
            if (system.memory().readWord(pa) == 0x01010101) {
                buffer_pa = pa;
                found = true;
                break;
            }
        }
    }
    if (!found)
        fatal("could not locate the buffer frame");

    for (Addr pa = buffer_pa; pa < buffer_pa + buffer_bytes;
         pa += config.cache.pageBytes) {
        drive(system, [&](auto done) {
            system.controller(0).assertOwnership(pa, done);
        });
        drive(system, [&](auto done) {
            system.controller(0).flushFrame(pa, done);
        });
    }
    // Other CPUs drop their copies when they service the interrupt.
    drive(system, [&](auto done) {
        system.controller(1).serviceInterrupts(done);
    });

    // 3. Device DMA: plain block write, no monitor involvement.
    std::cout << "3. Device streams " << buffer_bytes
              << " bytes of fresh data via DMA.\n";
    std::vector<std::uint8_t> device_data(buffer_bytes);
    for (std::uint32_t i = 0; i < buffer_bytes; ++i)
        device_data[i] = static_cast<std::uint8_t>(0xD0 + i % 16);
    drive(system, [&](auto done) {
        disk.write(buffer_pa, device_data, done);
    });

    // 4. Release protection and the lock.
    std::cout << "4. OS releases the frames and the region lock.\n";
    for (Addr pa = buffer_pa; pa < buffer_pa + buffer_bytes;
         pa += config.cache.pageBytes) {
        drive(system, [&](auto done) {
            system.controller(0).releaseProtection(pa, done);
        });
    }
    drive(system, [&](auto done) {
        system.controller(0).uncachedWrite(0x300, 0, done);
    });

    // 5. Both CPUs read the buffer: they must see the DEVICE data.
    std::uint32_t expect = 0;
    std::memcpy(&expect, device_data.data(), 4);
    for (std::size_t cpu = 0; cpu < 2; ++cpu) {
        std::uint32_t value = 0;
        system.controller(cpu).readWord(
            static_cast<Asid>(cpu + 1), buffer_va, true,
            [&](std::uint32_t v) { value = v; });
        system.events().run();
        std::cout << "5. CPU" << cpu << " reads 0x" << std::hex
                  << value << std::dec
                  << (value == expect ? "  (device data, no stale copy)"
                                      : "  (STALE!)")
                  << "\n";
    }

    std::cout << "\nDevice moved " << disk.bytesMoved()
              << " bytes in " << disk.transfers().value()
              << " DMA transfers; bus aborts during DMA: 0 by "
                 "construction.\n";
    return 0;
}
