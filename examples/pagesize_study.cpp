/**
 * @file
 * Page-size advisor: the paper's central design trade-off is that
 * larger cache pages cut the miss *ratio* (amortizing the fixed ~15 us
 * software handler) but cost more per miss. This example sweeps the
 * prototype's page sizes over a user-described workload, combines the
 * measured miss ratios with the Table 1/2 cost model and Figure 3
 * formula, and reports which page size maximizes processor
 * performance — exactly the experiment the configurable prototype was
 * built to run.
 *
 *   $ ./examples/pagesize_study
 */

#include <iostream>

#include "analytic/models.hh"
#include "core/fast_sim.hh"
#include "sim/stats.hh"
#include "trace/synthetic.hh"
#include "trace/workloads.hh"

namespace
{

using namespace vmp;

/** One scenario to advise on. */
struct Scenario
{
    const char *name;
    trace::SyntheticConfig config;
};

} // namespace

int
main()
{
    using namespace vmp;

    // Three contrasting workloads: the calibrated ATUM-like mix, a
    // sequential/streaming job (large pages should shine), and a
    // scattered pointer-chasing job (large pages waste transfer time).
    Scenario scenarios[3] = {
        {"atum mix", trace::workloadConfig("atum2")},
        {"streaming", trace::workloadConfig("atum1")},
        {"scattered", trace::workloadConfig("atum3")},
    };
    // Streaming: long sequential data runs over a big segment.
    scenarios[1].config.userData.meanRunWords = 200.0;
    scenarios[1].config.userData.objects = 512;
    scenarios[1].config.userData.theta = 0.3;
    // Scattered: one-word touches, flat popularity.
    scenarios[2].config.userData.meanRunWords = 1.0;
    scenarios[2].config.userData.objects = 2048;
    scenarios[2].config.userData.objectBytes = 64;
    scenarios[2].config.userData.theta = 0.2;

    const analytic::PerfModel perf_model;

    for (const auto &scenario : scenarios) {
        TableWriter table(std::string("Workload: ") + scenario.name +
                          " (128K 4-way cache)");
        table.columns({"Page size", "Miss ratio (%)",
                       "Avg miss cost (us)", "Predicted perf"});
        double best_perf = -1.0;
        std::uint32_t best_page = 0;
        for (const std::uint32_t page : {128u, 256u, 512u}) {
            trace::SyntheticGen gen(scenario.config);
            core::FastCacheSim sim(
                cache::CacheConfig::forSize(KiB(128), page, 4, false));
            const double miss = sim.run(gen).missRatio();
            const double perf = perf_model.performance(page, miss);
            const analytic::MissCostModel costs;
            table.row()
                .cell(std::to_string(page) + "B")
                .cell(miss * 100, 3)
                .cell(costs.average(page).elapsedUs, 1)
                .cell(perf, 3);
            if (perf > best_perf) {
                best_perf = perf;
                best_page = page;
            }
        }
        table.print(std::cout);
        std::cout << "  -> recommended cache page size: " << best_page
                  << " bytes (predicted performance " << best_perf
                  << ")\n\n";
    }

    std::cout
        << "The recommendation flips with spatial locality: streaming "
           "workloads exploit the\n40 MB/s block transfers; scattered "
           "ones pay for words they never touch.\n";
    return 0;
}
