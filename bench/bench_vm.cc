/**
 * @file
 * Measures the Section 3.4 virtual-address-translation consistency
 * machinery: the cost of a mapping change (read-private on the PTE's
 * cache page + assert-ownership storm over the mapped page), demand
 * paging throughput, and the pageout daemon's eviction rate — the
 * operations whose software implementation the paper argues the bus
 * monitor makes simple.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "cache/cache.hh"
#include "mem/phys_mem.hh"
#include "mem/vme_bus.hh"
#include "monitor/bus_monitor.hh"
#include "proto/controller.hh"
#include "sim/event.hh"
#include "sim/stats.hh"
#include "vm/vm_system.hh"

namespace
{

using namespace vmp;

struct VmRig
{
    explicit VmRig(std::uint32_t page_bytes)
        : pageBytes(page_bytes), memory(MiB(2), page_bytes),
          bus(events, memory), vm(events, memory, vm::VmConfig{})
    {
        translator.bind(vm);
        for (CpuId id = 0; id < 2; ++id) {
            caches.push_back(std::make_unique<cache::Cache>(
                cache::CacheConfig{page_bytes, 4, 64, true}));
            monitors.push_back(std::make_unique<monitor::BusMonitor>(
                id, MiB(2), page_bytes));
            controllers.push_back(
                std::make_unique<proto::CacheController>(
                    id, events, *caches[id], *monitors[id], bus,
                    translator));
            bus.attachWatcher(id, *monitors[id]);
            vm.attach(*controllers[id]);
        }
        for (auto &c : controllers) {
            auto *ctl = c.get();
            ctl->busMonitor().setInterruptLine([this, ctl] {
                events.scheduleIn(1, [ctl] {
                    ctl->serviceInterrupts([] {});
                });
            });
        }
    }

    void
    write(std::size_t cpu, Asid asid, Addr va, std::uint32_t value)
    {
        bool done = false;
        controllers[cpu]->writeWord(asid, va, value, false,
                                    [&] { done = true; });
        events.run();
        if (!done)
            fatal("vm bench: write did not complete");
    }

    std::uint32_t pageBytes;
    EventQueue events;
    mem::PhysMem memory;
    mem::VmeBus bus;
    vm::VmTranslator translator;
    vm::VmSystem vm;
    std::vector<std::unique_ptr<cache::Cache>> caches;
    std::vector<std::unique_ptr<monitor::BusMonitor>> monitors;
    std::vector<std::unique_ptr<proto::CacheController>> controllers;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace vmp;
    setInformEnabled(false);
    const auto opts = bench::parseBenchOptions("vm", argc, argv);
    bench::Artifact artifact("vm", opts);

    bench::banner("Section 3.4",
                  "Virtual Address Translation Consistency costs");

    // --- remap cost vs cache page size -------------------------------
    TableWriter remap("Mapping-change cost (shared dirty page, two "
                      "caches holding it)");
    remap.columns({"Cache page", "Remap elapsed (us)", "Bus tx",
                   "Assert-ownership tx"});
    for (const std::uint32_t page : {128u, 256u, 512u}) {
        VmRig rig(page);
        const Addr va = vm::userBase;
        rig.write(0, 1, va, 42); // cpu0 owns dirty
        // cpu1 reads it too (shared afterwards).
        bool done = false;
        rig.controllers[1]->readWord(1, va, false,
                                     [&](std::uint32_t) {
                                         done = true;
                                     });
        rig.events.run();

        const auto tx_before = rig.bus.transactions().value();
        const auto ao_before =
            rig.bus.countOf(mem::TxType::AssertOwnership).value();
        const Tick start = rig.events.now();
        const auto frame = rig.vm.allocator().alloc();
        done = false;
        rig.vm.mapPage(*rig.controllers[0], 1, va, *frame, true, true,
                       true, [&] { done = true; });
        rig.events.run();
        if (!done)
            fatal("vm bench: remap did not complete");
        remap.row()
            .cell(std::uint64_t{page})
            .cell(toUsec(rig.events.now() - start), 1)
            .cell(rig.bus.transactions().value() - tx_before)
            .cell(rig.bus.countOf(mem::TxType::AssertOwnership)
                      .value() -
                  ao_before);

        Json config = Json::object();
        config["page_bytes"] = Json(std::uint64_t{page});
        Json metrics = Json::object();
        metrics["remap_elapsed_us"] =
            Json(toUsec(rig.events.now() - start));
        metrics["bus_transactions"] =
            Json(rig.bus.transactions().value() - tx_before);
        metrics["assert_ownership_tx"] =
            Json(rig.bus.countOf(mem::TxType::AssertOwnership)
                     .value() -
                 ao_before);
        artifact.add("remap/" + std::to_string(page) + "B",
                     std::move(config), std::move(metrics));
    }
    remap.print(std::cout);
    std::cout << "A 4K virtual page spans 4096/pageBytes cache "
                 "frames; each needs one assert-ownership.\n\n";

    // --- demand paging and pageout throughput ------------------------
    TableWriter paging("Demand paging under memory pressure (256B "
                       "cache pages, 2 MiB memory)");
    paging.columns({"Pages touched", "Faults", "Page-outs",
                    "Elapsed (ms)", "us per fault"});
    for (const std::uint32_t pages : {64u, 256u, 640u}) {
        VmRig rig(256);
        const Tick start = rig.events.now();
        for (std::uint32_t i = 0; i < pages; ++i)
            rig.write(0, 1,
                      vm::userBase +
                          static_cast<Addr>(i) * vm::vmPageBytes,
                      i);
        const double elapsed_us = toUsec(rig.events.now() - start);
        paging.row()
            .cell(std::uint64_t{pages})
            .cell(rig.vm.pageFaults().value())
            .cell(rig.vm.pageOuts().value())
            .cell(elapsed_us / 1000.0, 2)
            .cell(elapsed_us /
                      static_cast<double>(rig.vm.pageFaults().value()),
                  1);

        Json config = Json::object();
        config["page_bytes"] = Json(std::uint64_t{256});
        config["pages_touched"] = Json(std::uint64_t{pages});
        Json metrics = Json::object();
        metrics["page_faults"] = Json(rig.vm.pageFaults().value());
        metrics["page_outs"] = Json(rig.vm.pageOuts().value());
        metrics["elapsed_us"] = Json(elapsed_us);
        metrics["us_per_fault"] =
            Json(elapsed_us /
                 static_cast<double>(rig.vm.pageFaults().value()));
        artifact.add("paging/" + std::to_string(pages) + "pages",
                     std::move(config), std::move(metrics));
    }
    paging.print(std::cout);
    std::cout << "(2 MiB of memory holds ~500 4K pages; beyond that "
                 "the clock-algorithm pageout daemon runs,\nwith each "
                 "eviction performing the full Section 3.4 flush "
                 "before the disk write.)\n";
    return 0;
}
