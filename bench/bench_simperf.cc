/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: reference
 * throughput of the fast functional cache simulator, the synthetic
 * trace generator, and the full event-driven multiprocessor model.
 * These guard against performance regressions that would make the
 * Figure 4 sweeps and multi-CPU studies impractically slow.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_util.hh"
#include "core/fast_sim.hh"
#include "core/system.hh"
#include "trace/synthetic.hh"
#include "trace/workloads.hh"

namespace
{

using namespace vmp;

void
BM_SyntheticGenerator(benchmark::State &state)
{
    for (auto _ : state) {
        auto cfg = trace::workloadConfig("atum2");
        cfg.totalRefs = 100'000;
        trace::SyntheticGen gen(cfg);
        trace::MemRef ref;
        std::uint64_t n = 0;
        while (gen.next(ref))
            ++n;
        benchmark::DoNotOptimize(n);
    }
    state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_SyntheticGenerator);

void
BM_FastCacheSim(benchmark::State &state)
{
    for (auto _ : state) {
        auto cfg = trace::workloadConfig("atum2");
        cfg.totalRefs = 100'000;
        trace::SyntheticGen gen(cfg);
        core::FastCacheSim sim(
            cache::CacheConfig::forSize(KiB(128), 256, 4, false));
        benchmark::DoNotOptimize(sim.run(gen).misses);
    }
    state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_FastCacheSim);

void
BM_EventDrivenSystem(benchmark::State &state)
{
    const auto cpus = static_cast<std::uint32_t>(state.range(0));
    setInformEnabled(false);
    for (auto _ : state) {
        const auto result = bench::runVmpSystem(
            cpus, 20'000,
            cache::CacheConfig::forSize(KiB(64), 256, 4, true));
        benchmark::DoNotOptimize(result.totalMisses);
    }
    state.SetItemsProcessed(state.iterations() * 20'000 * cpus);
}
BENCHMARK(BM_EventDrivenSystem)->Arg(1)->Arg(4);

/**
 * Console reporter that additionally captures every run so the
 * results can be serialized into the BENCH_simperf.json artifact.
 * (These metrics are wall-clock measurements, so unlike the
 * simulation artifacts they are not expected to be bit-identical
 * across runs — diff them with generous tolerances.)
 */
class CapturingReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const auto &run : runs)
            captured_.push_back(run);
        ConsoleReporter::ReportRuns(runs);
    }

    const std::vector<Run> &captured() const { return captured_; }

  private:
    std::vector<Run> captured_;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace vmp;
    // Strip our shared flags first; the rest goes to google-benchmark.
    const auto opts = bench::parseBenchOptions("simperf", argc, argv);
    bench::Artifact artifact("simperf", opts);

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    CapturingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    for (const auto &run : reporter.captured()) {
        if (run.error_occurred)
            continue;
        Json config = Json::object();
        config["benchmark"] = Json(run.benchmark_name());
        config["iterations"] =
            Json(static_cast<std::uint64_t>(run.iterations));
        Json metrics = Json::object();
        metrics["real_time_ns"] = Json(run.GetAdjustedRealTime());
        metrics["cpu_time_ns"] = Json(run.GetAdjustedCPUTime());
        const auto items = run.counters.find("items_per_second");
        if (items != run.counters.end())
            metrics["items_per_second"] =
                Json(static_cast<double>(items->second));
        artifact.add(run.benchmark_name(), std::move(config),
                     std::move(metrics));
    }

    artifact.note("simulator microbenchmarks (google-benchmark); "
                  "metrics are host wall-clock measurements and vary "
                  "run to run");
    artifact.write();
    return 0;
}
