/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: reference
 * throughput of the fast functional cache simulator, the synthetic
 * trace generator, and the full event-driven multiprocessor model.
 * These guard against performance regressions that would make the
 * Figure 4 sweeps and multi-CPU studies impractically slow.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_util.hh"
#include "core/fast_sim.hh"
#include "core/system.hh"
#include "trace/synthetic.hh"
#include "trace/workloads.hh"

namespace
{

using namespace vmp;

void
BM_SyntheticGenerator(benchmark::State &state)
{
    for (auto _ : state) {
        auto cfg = trace::workloadConfig("atum2");
        cfg.totalRefs = 100'000;
        trace::SyntheticGen gen(cfg);
        trace::MemRef ref;
        std::uint64_t n = 0;
        while (gen.next(ref))
            ++n;
        benchmark::DoNotOptimize(n);
    }
    state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_SyntheticGenerator);

void
BM_FastCacheSim(benchmark::State &state)
{
    for (auto _ : state) {
        auto cfg = trace::workloadConfig("atum2");
        cfg.totalRefs = 100'000;
        trace::SyntheticGen gen(cfg);
        core::FastCacheSim sim(
            cache::CacheConfig::forSize(KiB(128), 256, 4, false));
        benchmark::DoNotOptimize(sim.run(gen).misses);
    }
    state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_FastCacheSim);

void
BM_EventDrivenSystem(benchmark::State &state)
{
    const auto cpus = static_cast<std::uint32_t>(state.range(0));
    setInformEnabled(false);
    for (auto _ : state) {
        const auto result = bench::runVmpSystem(
            cpus, 20'000,
            cache::CacheConfig::forSize(KiB(64), 256, 4, true));
        benchmark::DoNotOptimize(result.totalMisses);
    }
    state.SetItemsProcessed(state.iterations() * 20'000 * cpus);
}
BENCHMARK(BM_EventDrivenSystem)->Arg(1)->Arg(4);

} // namespace

BENCHMARK_MAIN();
