/**
 * @file
 * Regenerates the Section 5.3 result: how many processors fit on one
 * bus. The paper's single-server queuing estimate ("up to 5 processors
 * on a single bus") is reproduced analytically and cross-checked by
 * running 1..32 processors on the event-driven simulator and measuring
 * per-processor performance and bus utilization directly.
 *
 * Two models are overlaid on the measured rows: the paper's open
 * M/M/1 estimate (valid only while the offered load stays under the
 * bus capacity — it is flagged saturated and excluded beyond that)
 * and the closed MVA model fed with the measured bus-load profile,
 * which stays in-domain through the 16/32-CPU saturated rows. The
 * bench exits non-zero if the MVA prediction misses a private-workload
 * row by more than 15%, or if a saturated open-model row is not
 * flagged as such.
 */

#include <cmath>
#include <iostream>
#include <sstream>

#include "analytic/models.hh"
#include "bench/bench_util.hh"
#include "sim/stats.hh"

int
main(int argc, char **argv)
{
    using namespace vmp;
    setInformEnabled(false);
    const auto opts = bench::parseBenchOptions("processors", argc,
                                               argv);
    bench::Artifact artifact("processors", opts);

    bench::banner("Section 5.3",
                  "Bus Utilization and Number of Processors");

    const analytic::QueuingModel model;
    const analytic::MvaModel mva(opts.arbitration.discipline,
                                 opts.arbitration.priorityLevels);
    const double m = 0.006; // the paper's ~10%-bus operating point

    TableWriter analytic_table(
        "Queuing models (256B pages, 0.6% miss ratio)");
    analytic_table.columns({"Processors", "Open per-CPU perf",
                            "MVA per-CPU perf", "System throughput",
                            "Offered bus load (%)", "Open in domain"});
    analytic::BusLoadProfile paper_load;
    paper_load.missRatio = m; // upgrade-free, 25% write-backs
    const double solo = model.perProcessorPerformance(256, m, 1);
    for (unsigned n = 1; n <= 10; ++n) {
        const auto open_p = model.predict(256, m, n);
        const auto mva_p = mva.predict(256, paper_load, n);
        analytic_table.row()
            .cell(std::uint64_t{n})
            .cell(open_p.perProcessorPerformance, 3)
            .cell(mva_p.perProcessorPerformance, 3)
            .cell(open_p.systemThroughput, 2)
            .cell(model.offeredLoad(256, m, n) * 100, 1)
            .cell(open_p.domain.inDomain() ? "yes" : "no");

        Json config = Json::object();
        config["processors"] = Json(std::uint64_t{n});
        config["page_bytes"] = Json(std::uint64_t{256});
        config["miss_ratio"] = Json(m);
        Json metrics = Json::object();
        metrics["per_cpu_performance"] =
            Json(open_p.perProcessorPerformance);
        metrics["relative_to_one_cpu"] =
            Json(open_p.perProcessorPerformance / solo);
        metrics["system_throughput"] = Json(open_p.systemThroughput);
        metrics["offered_bus_load"] =
            Json(model.offeredLoad(256, m, n));
        metrics["open_in_domain"] = Json(open_p.domain.inDomain());
        metrics["mva_performance"] =
            Json(mva_p.perProcessorPerformance);
        metrics["mva_bus_utilization"] = Json(mva_p.busUtilization);
        artifact.add("model/" + std::to_string(n),
                     std::move(config), std::move(metrics));
    }
    analytic_table.print(std::cout);

    std::cout << "Max processors before >10% per-CPU degradation: "
              << model.maxProcessors(256, m, 0.9)
              << " (paper estimates \"up to 5 processors\").\n\n";

    // Overlay: what the same processor count would sustain arranged as
    // a two-level hierarchy (4 CPUs per cluster — the bus-loading rule
    // with the inter-bus board occupying the fifth slot), for two
    // cluster-miss fractions g. See bench_hier for the simulated curve.
    const analytic::HierQueuingModel hier_model;
    TableWriter hier_table(
        "Hierarchical overlay (4 CPUs/cluster, 256B pages, "
        "0.6% miss ratio)");
    hier_table.columns({"CPUs", "Clusters", "g", "Flat throughput",
                        "Hier throughput", "Speedup"});
    for (const unsigned n : {4u, 8u, 16u, 32u}) {
        const unsigned k = n / 4;
        for (const double g : {0.05, 0.2}) {
            const double flat_tput = model.systemThroughput(256, m, n);
            const double hier_tput =
                hier_model.systemThroughput(256, m, g, k, 4);
            hier_table.row()
                .cell(std::uint64_t{n})
                .cell(std::uint64_t{k})
                .cell(g, 2)
                .cell(flat_tput, 2)
                .cell(hier_tput, 2)
                .cell(hier_tput / flat_tput, 2);

            Json config = Json::object();
            config["processors"] = Json(std::uint64_t{n});
            config["clusters"] = Json(std::uint64_t{k});
            config["page_bytes"] = Json(std::uint64_t{256});
            config["miss_ratio"] = Json(m);
            config["global_per_miss"] = Json(g);
            Json metrics = Json::object();
            metrics["flat_throughput"] = Json(flat_tput);
            metrics["hier_throughput"] = Json(hier_tput);
            metrics["speedup"] = Json(hier_tput / flat_tput);
            metrics["hier_per_cpu_performance"] = Json(
                hier_model.perProcessorPerformance(256, m, g, k, 4));
            metrics["global_utilization"] = Json(
                hier_model.globalUtilization(256, m, g, k, 4));
            std::ostringstream label;
            label << "model_hier/" << n << "/g" << g;
            artifact.add(label.str(), std::move(config),
                         std::move(metrics));
        }
    }
    hier_table.print(std::cout);

    // Event-driven cross-check, first with fully private workloads
    // (pure bus queueing — the regime the models describe), then with
    // a shared kernel image (adds the consistency contention the
    // models deliberately exclude: "providing data contention is not
    // excessive"). Private workloads run through the 16/32-CPU rows
    // that saturate the bus: the open estimate leaves its domain there
    // while the measured-profile MVA prediction must stay within 15%.
    bool gate_ok = true;
    std::ostringstream gate_log;
    for (const bool share_kernel : {false, true}) {
        TableWriter measured(
            std::string("Event-simulator measurement (64K caches, "
                        "256B pages, ") +
            (share_kernel ? "SHARED kernel image)"
                          : "private workloads)"));
        measured.columns({"Processors", "Mean per-CPU perf",
                          "MVA perf", "MVA err (%)", "Open err (%)",
                          "Open domain", "Bus util (%)"});
        const std::vector<unsigned> counts = share_kernel
            ? std::vector<unsigned>{1, 2, 4, 8}
            : std::vector<unsigned>{1, 2, 4, 8, 16, 32};
        double measured_solo = 0.0;
        for (const unsigned n : counts) {
            const auto cfg =
                cache::CacheConfig::forSize(KiB(64), 256, 4, true);
            const auto result = bench::runVmpSystem(
                n, 60'000, cfg, opts.seedBase, share_kernel, nullptr,
                opts.arbitration);
            if (n == 1)
                measured_solo = result.performance;

            const auto load = bench::loadProfileOf(result);
            const auto mva_p = mva.predict(256, load, n);
            const auto open_p =
                model.predict(256, result.missRatio, n);
            const double mva_err = result.performance == 0.0
                ? 0.0
                : (mva_p.perProcessorPerformance -
                   result.performance) /
                    result.performance;
            const double open_err = result.performance == 0.0
                ? 0.0
                : (open_p.perProcessorPerformance -
                   result.performance) /
                    result.performance;
            measured.row()
                .cell(std::uint64_t{n})
                .cell(result.performance, 3)
                .cell(mva_p.perProcessorPerformance, 3)
                .cell(mva_err * 100, 1)
                .cell(open_err * 100, 1)
                .cell(open_p.domain.inDomain() ? "in" : "saturated")
                .cell(result.busUtilization * 100, 1);

            Json config = bench::cacheConfigJson(KiB(64), 256, 4);
            config["processors"] = Json(std::uint64_t{n});
            config["share_kernel"] = Json(share_kernel);
            config["arbitration"] = Json(std::string(
                mem::arbitrationName(opts.arbitration.discipline)));
            Json metrics = bench::runResultJson(result);
            metrics["relative_to_one_cpu"] =
                Json(result.performance / measured_solo);
            bench::modelColumnsJson(metrics, "mva",
                                    mva_p.perProcessorPerformance,
                                    result.performance, mva_p.domain);
            bench::modelColumnsJson(metrics, "open",
                                    open_p.perProcessorPerformance,
                                    result.performance, open_p.domain);
            artifact.add(std::string("measured/") +
                             (share_kernel ? "shared/" : "private/") +
                             std::to_string(n),
                         std::move(config), std::move(metrics));

            // Acceptance gate (private workloads only): the MVA
            // prediction must be in-domain and within 15% everywhere,
            // and the 16/32-CPU rows that broke the open model must
            // carry its saturated flag.
            if (!share_kernel) {
                if (!mva_p.domain.inDomain() ||
                    std::abs(mva_err) > 0.15) {
                    gate_ok = false;
                    gate_log << "  MVA off by "
                             << mva_err * 100 << "% at n=" << n
                             << "\n";
                }
                if (n >= 16 && !open_p.domain.saturated) {
                    gate_ok = false;
                    gate_log << "  open model not flagged saturated "
                                "at n=" << n << "\n";
                }
            }
        }
        measured.print(std::cout);
    }

    artifact.note("Section 5.3: queuing models vs event-driven "
                  "measurement, private workloads (1..32 CPUs) and "
                  "shared kernel image (60k refs/cpu)");
    artifact.note("mva_* columns: closed MVA model fed with each "
                  "row's measured load profile (miss ratio, upgrade "
                  "fraction, write-back ratio); open_* columns: the "
                  "paper's open M/M/1 estimate with its "
                  "offered-load domain flag");
    artifact.note("model_hier rows overlay the flat-bus curve with the "
                  "two-level HierQueuingModel prediction (4 CPUs per "
                  "cluster) at cluster-miss fractions g = 0.05, 0.2");
    artifact.write();

    if (!gate_ok) {
        std::cerr << "MODEL GATE FAILED:\n" << gate_log.str();
        return 1;
    }
    std::cout << "Model gate: MVA within 15% on every private row; "
                 "open model correctly flagged saturated at 16/32 "
                 "CPUs.\n";
    return 0;
}
