/**
 * @file
 * Regenerates the Section 5.3 result: how many processors fit on one
 * bus. The paper's single-server queuing estimate ("up to 5 processors
 * on a single bus") is reproduced analytically and cross-checked by
 * running 1..8 processors on the event-driven simulator and measuring
 * per-processor performance and bus utilization directly.
 */

#include <iostream>
#include <sstream>

#include "analytic/models.hh"
#include "bench/bench_util.hh"
#include "sim/stats.hh"

int
main(int argc, char **argv)
{
    using namespace vmp;
    setInformEnabled(false);
    const auto opts = bench::parseBenchOptions("processors", argc,
                                               argv);
    bench::Artifact artifact("processors", opts);

    bench::banner("Section 5.3",
                  "Bus Utilization and Number of Processors");

    const analytic::QueuingModel model;
    const double m = 0.006; // the paper's ~10%-bus operating point

    TableWriter analytic_table(
        "Queuing model (256B pages, 0.6% miss ratio)");
    analytic_table.columns({"Processors", "Per-CPU perf",
                            "Relative to 1 CPU", "System throughput",
                            "Offered bus load (%)"});
    const double solo = model.perProcessorPerformance(256, m, 1);
    for (unsigned n = 1; n <= 10; ++n) {
        const double perf = model.perProcessorPerformance(256, m, n);
        analytic_table.row()
            .cell(std::uint64_t{n})
            .cell(perf, 3)
            .cell(perf / solo, 3)
            .cell(model.systemThroughput(256, m, n), 2)
            .cell(model.offeredLoad(256, m, n) * 100, 1);

        Json config = Json::object();
        config["processors"] = Json(std::uint64_t{n});
        config["page_bytes"] = Json(std::uint64_t{256});
        config["miss_ratio"] = Json(m);
        Json metrics = Json::object();
        metrics["per_cpu_performance"] = Json(perf);
        metrics["relative_to_one_cpu"] = Json(perf / solo);
        metrics["system_throughput"] =
            Json(model.systemThroughput(256, m, n));
        metrics["offered_bus_load"] =
            Json(model.offeredLoad(256, m, n));
        artifact.add("model/" + std::to_string(n),
                     std::move(config), std::move(metrics));
    }
    analytic_table.print(std::cout);

    std::cout << "Max processors before >10% per-CPU degradation: "
              << model.maxProcessors(256, m, 0.9)
              << " (paper estimates \"up to 5 processors\").\n\n";

    // Overlay: what the same processor count would sustain arranged as
    // a two-level hierarchy (4 CPUs per cluster — the bus-loading rule
    // with the inter-bus board occupying the fifth slot), for two
    // cluster-miss fractions g. See bench_hier for the simulated curve.
    const analytic::HierQueuingModel hier_model;
    TableWriter hier_table(
        "Hierarchical overlay (4 CPUs/cluster, 256B pages, "
        "0.6% miss ratio)");
    hier_table.columns({"CPUs", "Clusters", "g", "Flat throughput",
                        "Hier throughput", "Speedup"});
    for (const unsigned n : {4u, 8u, 16u, 32u}) {
        const unsigned k = n / 4;
        for (const double g : {0.05, 0.2}) {
            const double flat_tput = model.systemThroughput(256, m, n);
            const double hier_tput =
                hier_model.systemThroughput(256, m, g, k, 4);
            hier_table.row()
                .cell(std::uint64_t{n})
                .cell(std::uint64_t{k})
                .cell(g, 2)
                .cell(flat_tput, 2)
                .cell(hier_tput, 2)
                .cell(hier_tput / flat_tput, 2);

            Json config = Json::object();
            config["processors"] = Json(std::uint64_t{n});
            config["clusters"] = Json(std::uint64_t{k});
            config["page_bytes"] = Json(std::uint64_t{256});
            config["miss_ratio"] = Json(m);
            config["global_per_miss"] = Json(g);
            Json metrics = Json::object();
            metrics["flat_throughput"] = Json(flat_tput);
            metrics["hier_throughput"] = Json(hier_tput);
            metrics["speedup"] = Json(hier_tput / flat_tput);
            metrics["hier_per_cpu_performance"] = Json(
                hier_model.perProcessorPerformance(256, m, g, k, 4));
            metrics["global_utilization"] = Json(
                hier_model.globalUtilization(256, m, g, k, 4));
            std::ostringstream label;
            label << "model_hier/" << n << "/g" << g;
            artifact.add(label.str(), std::move(config),
                         std::move(metrics));
        }
    }
    hier_table.print(std::cout);

    // Event-driven cross-check, first with fully private workloads
    // (pure bus queueing — the regime the paper's model describes),
    // then with a shared kernel image (adds the consistency contention
    // the model deliberately excludes: "providing data contention is
    // not excessive").
    for (const bool share_kernel : {false, true}) {
        TableWriter measured(
            std::string("Event-simulator measurement (64K caches, "
                        "256B pages, ") +
            (share_kernel ? "SHARED kernel image)"
                          : "private workloads)"));
        measured.columns({"Processors", "Mean per-CPU perf",
                          "Relative to 1 CPU", "Bus util (%)",
                          "Aborts"});
        double measured_solo = 0.0;
        for (unsigned n = 1; n <= 8; ++n) {
            const auto cfg =
                cache::CacheConfig::forSize(KiB(64), 256, 4, true);
            const auto result = bench::runVmpSystem(
                n, 60'000, cfg, opts.seedBase, share_kernel);
            if (n == 1)
                measured_solo = result.performance;
            measured.row()
                .cell(std::uint64_t{n})
                .cell(result.performance, 3)
                .cell(result.performance / measured_solo, 3)
                .cell(result.busUtilization * 100, 1)
                .cell(result.busAborts);

            Json config = bench::cacheConfigJson(KiB(64), 256, 4);
            config["processors"] = Json(std::uint64_t{n});
            config["share_kernel"] = Json(share_kernel);
            Json metrics = bench::runResultJson(result);
            metrics["relative_to_one_cpu"] =
                Json(result.performance / measured_solo);
            artifact.add(std::string("measured/") +
                             (share_kernel ? "shared/" : "private/") +
                             std::to_string(n),
                         std::move(config), std::move(metrics));
        }
        measured.print(std::cout);
    }

    artifact.note("Section 5.3: queuing model vs event-driven "
                  "measurement, private workloads and shared kernel "
                  "image (60k refs/cpu)");
    artifact.note("model_hier rows overlay the flat-bus curve with the "
                  "two-level HierQueuingModel prediction (4 CPUs per "
                  "cluster) at cluster-miss fractions g = 0.05, 0.2");
    artifact.write();
    return 0;
}
