/**
 * @file
 * Telemetry acceptance bench. Four properties of the src/telemetry
 * subsystem are checked and *encoded in the exit status*:
 *
 *  1. Streamed-vs-post-hoc equivalence: on an identical seeded run,
 *     the streaming sink's incrementally-written Chrome-trace output
 *     parses to the same event set as the post-hoc writeChromeTrace
 *     exporter (the stream is in record order, the exporter sorts by
 *     (tick, track) — the comparison sorts both sides), with zero
 *     sink drops and zero ring overwrites at default ring sizes.
 *
 *  2. Attached-sink identity: the run with the sink attached is
 *     simulation-identical (fingerprint bit-identical) to the
 *     untraced run — the sink is pure observation.
 *
 *  3. Attached-sink overhead: host wall-clock (min of interleaved
 *     trials) with the sink streaming to a file is within 5% of the
 *     traced-only run (plus a small absolute slack against timer
 *     noise on fast hosts).
 *
 *  4. Replay correctness: vmp_replay's engine (ReplaySession)
 *     reconstructs the correct owner of a contended frame at three
 *     probed timestamps in a scripted ownership ping-pong, and — on
 *     the torture-style contended run of (1) — agrees with the live
 *     inspection snapshot's Protect action-table entries at
 *     end-of-run quiescence, frame for frame.
 *
 * Artifacts: BENCH_telemetry.json plus the streamed trace
 * (BENCH_telemetry.stream.json) and gauge snapshots
 * (BENCH_telemetry.gauges.jsonl) the CI replay smoke consumes.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "obs/export.hh"
#include "proto/translator.hh"
#include "telemetry/inspect.hh"
#include "telemetry/replay.hh"
#include "telemetry/streaming_sink.hh"
#include "telemetry/system_gauges.hh"

namespace
{

using namespace vmp;

int failures = 0;

void
expect(bool ok, const std::string &what)
{
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok)
        ++failures;
}

/** Simulated-outcome fingerprint of one multi-CPU workload run. */
struct RunFingerprint
{
    core::RunResult result;
    double wallSeconds = 0.0;

    bool
    operator==(const RunFingerprint &other) const
    {
        return result.elapsed == other.result.elapsed &&
               result.totalRefs == other.result.totalRefs &&
               result.totalMisses == other.result.totalMisses &&
               result.missRatio == other.result.missRatio &&
               result.performance == other.result.performance &&
               result.busUtilization == other.result.busUtilization &&
               result.busAborts == other.result.busAborts &&
               result.writeBacks == other.result.writeBacks;
    }
};

enum class Mode
{
    Untraced,
    Traced,
    TracedWithSink,
};

constexpr std::uint32_t kCpus = 4;
constexpr std::uint64_t kIdentityRefs = 40'000;
/** Longer runs for the wall-clock comparison: at tens of
 *  milliseconds, scheduler noise alone can exceed the 5% budget. */
constexpr std::uint64_t kOverheadRefs = 150'000;
constexpr int kOverheadTrials = 5;

/** State of one traced+sink run, kept alive for post-run queries. */
struct SinkRun
{
    std::unique_ptr<core::VmpSystem> system;
    std::unique_ptr<telemetry::StreamingSink> sink;
};

/**
 * The bench_obs workload (atum2 mix, shared kernel so consistency
 * traffic exercises the monitor/FIFO events), with the telemetry
 * pipeline optionally attached. The sink streams to @p events_out
 * (plus a JSONL gauge side channel when @p gauges_out is non-null);
 * attach happens before and close() after the timed window, matching
 * how a real run brackets the simulation.
 */
RunFingerprint
runWorkload(Mode mode, std::uint64_t seed_base,
            std::uint64_t refs_per_cpu,
            std::ostream *events_out = nullptr,
            std::ostream *gauges_out = nullptr,
            SinkRun *run_out = nullptr)
{
    core::VmpConfig cfg;
    cfg.processors = kCpus;
    cfg.cache = cache::CacheConfig::forSize(KiB(64), 256, 4, true);
    cfg.memBytes = MiB(8);
    auto system = std::make_unique<core::VmpSystem>(cfg);
    std::unique_ptr<telemetry::StreamingSink> sink;
    if (mode != Mode::Untraced) {
        obs::EventTracer &tracer = system->enableTracing();
        if (mode == Mode::TracedWithSink) {
            sink = std::make_unique<telemetry::StreamingSink>(
                *events_out);
            if (gauges_out != nullptr)
                sink->setGaugeStream(gauges_out);
            telemetry::attachSystemGauges(*sink, *system);
            sink->attach(tracer, system->events());
        }
    }

    std::vector<std::unique_ptr<trace::SyntheticGen>> gens;
    std::vector<trace::RefSource *> sources;
    for (std::uint32_t i = 0; i < kCpus; ++i) {
        auto workload = trace::workloadConfig("atum2");
        workload.totalRefs = refs_per_cpu;
        workload.seed = seed_base + i;
        workload.asidBase = static_cast<Asid>(1 + i * 8);
        gens.push_back(std::make_unique<trace::SyntheticGen>(workload));
        sources.push_back(gens.back().get());
    }

    RunFingerprint fp;
    const auto wall_start = std::chrono::steady_clock::now();
    fp.result = system->runTraces(sources);
    fp.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    if (sink != nullptr)
        sink->close();
    if (run_out != nullptr) {
        run_out->system = std::move(system);
        run_out->sink = std::move(sink);
    }
    return fp;
}

/** Sorted compact dumps of a Chrome-trace traceEvents array, for
 *  order-insensitive event-for-event comparison. */
std::vector<std::string>
sortedRecords(const Json &doc)
{
    std::vector<std::string> out;
    for (const Json &record : doc.get("traceEvents").items())
        out.push_back(record.dump(0));
    std::sort(out.begin(), out.end());
    return out;
}

std::string
deriveSiblingPath(const std::string &json_out, const std::string &ext)
{
    const std::string suffix = ".json";
    if (json_out.size() > suffix.size() &&
        json_out.compare(json_out.size() - suffix.size(),
                         suffix.size(), suffix) == 0) {
        return json_out.substr(0, json_out.size() - suffix.size()) +
               ext;
    }
    return json_out + ext;
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream os(path);
    if (!os)
        fatal("bench_telemetry: cannot open ", path);
    os << content;
    std::cout << "[artifact] wrote " << path << "\n";
}

/**
 * Scripted ownership ping-pong on a 2-board system: board 0 writes a
 * shared frame (acquires Protect), board 1 writes it (recalled from
 * board 0, acquires), board 0 takes it back. The streamed trace is
 * replayed and probed at quiescent ticks after each handoff; the
 * reconstructed owners must read 0, 1, 0.
 */
void
replayPingPong(bench::Artifact &artifact)
{
    constexpr std::uint32_t kPage = 256;
    constexpr Addr va = 0x10000;
    constexpr Addr pa = 0x4000;
    const auto prot = static_cast<cache::SlotFlags>(
        cache::FlagSupWritable | cache::FlagUserReadable |
        cache::FlagUserWritable);

    core::VmpConfig cfg;
    cfg.processors = 2;
    cfg.cache = cache::CacheConfig{kPage, 2, 8, true};
    cfg.memBytes = MiB(1);
    proto::FixedTranslator translator(kPage);
    translator.map(1, va, pa, prot);
    translator.map(2, va, pa, prot);

    core::VmpSystem system(cfg, &translator);
    system.attachIdleServicers();
    obs::EventTracer &tracer = system.enableTracing();
    std::ostringstream stream;
    telemetry::StreamingSink sink(stream);
    sink.attach(tracer, system.events());

    const auto writeFrom = [&](std::size_t cpu, Asid asid) {
        bool done = false;
        system.controller(cpu).writeWord(asid, va, 0xabcd, false,
                                         [&] { done = true; });
        system.events().run();
        if (!done)
            fatal("bench_telemetry: ping-pong write did not finish");
        return system.events().now();
    };

    const Tick t0 = writeFrom(0, 1); // board 0 acquires Protect
    const Tick t1 = writeFrom(1, 2); // recalled to board 1
    const Tick t2 = writeFrom(0, 1); // and back to board 0
    sink.close();

    const auto session =
        telemetry::ReplaySession::fromText(stream.str());
    const std::uint32_t expected[] = {0, 1, 0};
    const Tick probes[] = {t0, t1, t2};
    Json probe_rows = Json::array();
    for (int i = 0; i < 3; ++i) {
        const auto verdict = session.ownerAt(pa, probes[i]);
        char label[64];
        std::snprintf(label, sizeof label,
                      "replay/probe@t%d: owner is board %u", i,
                      expected[i]);
        expect(verdict.owned && verdict.board == expected[i], label);
        std::cout << "    t=" << probes[i]
                  << "ns: " << verdict.toString() << "\n";
        Json row = Json::object();
        row["t_ns"] = Json(probes[i]);
        row["owned"] = Json(verdict.owned);
        row["board"] = Json(std::uint64_t{verdict.board});
        row["chain_len"] = Json(verdict.chain.size());
        probe_rows.push(std::move(row));
    }
    // The chain at the last probe must show the full handoff
    // history: acquire, release, acquire, release, acquire.
    const auto last = session.ownerAt(pa, t2);
    expect(last.chain.size() >= 5,
          "replay/chain shows the Protect/Reclaim handoff history");

    Json config = Json::object();
    config["boards"] = Json(2);
    config["frame"] = Json(std::uint64_t{pa});
    Json metrics = Json::object();
    metrics["probes"] = std::move(probe_rows);
    metrics["ownership_events"] = Json(session.events().size());
    metrics["chain_len"] = Json(last.chain.size());
    artifact.add("replay/pingpong", std::move(config),
                 std::move(metrics));
}

/**
 * Cross-check replay against live inspection on the contended run:
 * every Protect entry in a board's action table at end-of-run
 * quiescence is a frame that board owns exclusively — the replay of
 * the streamed trace must agree for each of them.
 */
std::size_t
crossCheckInspection(const core::VmpSystem &system,
                     const telemetry::ReplaySession &session)
{
    const Json snapshot = telemetry::inspectSystem(system);
    const std::uint64_t page = system.memory().pageBytes();
    // Fold the complete trace into a final per-frame owner map (the
    // same acquire/release semantics ownerAt applies per probe, but
    // at frame granularity so the action tables' frame indices key
    // directly).
    std::map<std::uint64_t, std::uint32_t> owner;
    for (const auto &event : session.events()) {
        const std::uint64_t frame = event.addr / page;
        if (event.acquiresOwnership())
            owner[frame] = event.master;
        else if (event.releasesOwnership())
            owner.erase(frame);
    }
    std::size_t checked = 0;
    std::size_t wrong = 0;
    const Json &boards = snapshot.get("boards");
    for (std::size_t b = 0; b < boards.size(); ++b) {
        const Json &entries =
            boards.at(b).get("action_table").get("entries");
        for (const Json &entry : entries.items()) {
            // actionEntryName renders Protect as "10-protect".
            if (entry.get("entry").asString().find("protect") ==
                std::string::npos)
                continue;
            const std::uint64_t frame = entry.get("frame").asUint();
            ++checked;
            const auto it = owner.find(frame);
            if (it == owner.end() || it->second != b)
                ++wrong;
        }
    }
    expect(checked > 0 && wrong == 0,
          "replay agrees with inspection for all " +
              std::to_string(checked) + " Protect entries");
    return checked;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vmp;
    setInformEnabled(false);
    const auto opts = bench::parseBenchOptions("telemetry", argc, argv);
    bench::Artifact artifact("telemetry", opts);

    bench::banner("Telemetry",
                  "streaming sink, live inspection, trace replay");

    // --- 1. Identity + streamed-vs-post-hoc equivalence -----------
    std::cout << "== Attached-sink identity and streamed-vs-post-hoc "
                 "equivalence ==\n";
    const auto untraced =
        runWorkload(Mode::Untraced, opts.seedBase, kIdentityRefs);
    std::ostringstream stream;
    std::ostringstream gauge_stream;
    SinkRun sink_run;
    const auto with_sink =
        runWorkload(Mode::TracedWithSink, opts.seedBase,
                    kIdentityRefs, &stream, &gauge_stream, &sink_run);
    expect(untraced == with_sink,
          "sink-attached run is simulation-identical to untraced");
    std::cout << "  untraced: " << untraced.result.toString() << "\n"
              << "  streamed: " << with_sink.result.toString()
              << "\n";

    const obs::EventTracer &tracer = *sink_run.system->tracer();
    const telemetry::StreamingSink &sink = *sink_run.sink;
    expect(tracer.recorded() > 0, "run recorded events");
    expect(tracer.droppedOldest() == 0,
          "zero ring overwrites at default ring sizes");
    expect(sink.droppedTotal() == 0,
          "zero sink drops at default staging bounds");
    expect(sink.eventsStreamed() == tracer.recorded(),
          "sink streamed every recorded event");

    const std::string streamed_text = stream.str();
    const Json streamed = Json::parse(streamed_text);
    const auto streamed_records = sortedRecords(streamed);
    const auto posthoc_records =
        sortedRecords(obs::chromeTraceJson(tracer));
    expect(streamed_records == posthoc_records,
          "streamed output matches post-hoc exporter "
          "event-for-event (" +
              std::to_string(streamed_records.size()) + " records)");

    // A mid-run cut must recover to a parseable prefix document.
    {
        const std::string cut =
            telemetry::StreamingSink::recoverTruncated(
                streamed_text.substr(0,
                                     streamed_text.size() * 2 / 3));
        const Json recovered = Json::parse(cut);
        expect(recovered.get("traceEvents").size() > 0 &&
                  recovered.get("traceEvents").size() <
                      streamed.get("traceEvents").size(),
              "truncated stream recovers to a parseable prefix");
    }

    // Gauge side channel: one JSONL object per flush, carrying the
    // sink built-ins plus the live system gauges.
    std::size_t gauge_lines = 0;
    bool gauges_ok = true;
    {
        std::istringstream lines(gauge_stream.str());
        std::string line;
        while (std::getline(lines, line)) {
            if (line.empty())
                continue;
            ++gauge_lines;
            const Json sample = Json::parse(line);
            gauges_ok = gauges_ok && sample.contains("t_us") &&
                        sample.get("gauges").contains("sink") &&
                        sample.get("gauges").contains("bus");
        }
    }
    expect(gauge_lines > 0 && gauges_ok,
          "gauge snapshots parse and carry sink+system groups (" +
              std::to_string(gauge_lines) + " samples)");

    Json equiv_cfg = Json::object();
    equiv_cfg["processors"] = Json(std::uint64_t{kCpus});
    equiv_cfg["refs_per_cpu"] = Json(kIdentityRefs);
    equiv_cfg["seed_base"] = Json(opts.seedBase);
    Json equiv_metrics = bench::runResultJson(with_sink.result);
    equiv_metrics["identical_untraced"] = Json(untraced == with_sink);
    equiv_metrics["records"] = Json(streamed_records.size());
    equiv_metrics["events_recorded"] = Json(tracer.recorded());
    equiv_metrics["ring_overwrites"] = Json(tracer.droppedOldest());
    equiv_metrics["sink_drops"] = Json(sink.droppedTotal());
    equiv_metrics["flushes"] = Json(sink.flushes());
    equiv_metrics["gauge_samples"] = Json(gauge_lines);
    equiv_metrics["stats"] = sink_run.system->statsJson();
    artifact.add("equivalence/atum2", std::move(equiv_cfg),
                 std::move(equiv_metrics));

    // --- 2. Live inspection + metricsSnapshot gauges --------------
    std::cout << "== Live inspection (end-of-run quiescence) ==\n";
    const Json snapshot =
        telemetry::inspectSystem(*sink_run.system);
    expect(snapshot.get("boards").size() == kCpus &&
              snapshot.get("t_ns").asUint() ==
                  sink_run.system->events().now(),
          "inspection snapshot covers every board at the current "
          "tick");
    const obs::GaugeSet gauges =
        telemetry::collectGauges(*sink_run.system);
    const std::string rendered = obs::metricsSnapshot(
        tracer, sink_run.system->missProfiler(), &gauges);
    expect(rendered.find("bus.utilization") != std::string::npos,
          "metricsSnapshot renders the live gauges");

    // --- 3. Wall-clock overhead -----------------------------------
    std::printf("== Attached-sink overhead (min of %d interleaved "
                "trials, %llu refs/cpu) ==\n",
                kOverheadTrials,
                static_cast<unsigned long long>(kOverheadRefs));
    const std::string overhead_stream_path =
        deriveSiblingPath(opts.jsonOut, ".overhead.stream.json");
    // Each trial runs traced then traced+sink back to back, so the
    // two halves of a pair see (nearly) the same host load; the gate
    // takes the best *pair*, which stays meaningful even when the
    // whole sequence runs on a loaded machine (a min over the two
    // columns separately could pair a quiet traced trial against a
    // noisy sinked one, or vice versa).
    double traced_best = 1e300;
    double sinked_best = 1e300;
    double pair_slowdown = 1e300;
    for (int trial = 0; trial < kOverheadTrials; ++trial) {
        const double traced_s =
            runWorkload(Mode::Traced, opts.seedBase, kOverheadRefs)
                .wallSeconds;
        std::ofstream os(overhead_stream_path);
        if (!os)
            fatal("bench_telemetry: cannot open ",
                  overhead_stream_path);
        const double sinked_s =
            runWorkload(Mode::TracedWithSink, opts.seedBase,
                        kOverheadRefs, &os)
                .wallSeconds;
        const double slowdown =
            traced_s == 0.0 ? 0.0 : sinked_s / traced_s - 1.0;
        if (slowdown < pair_slowdown) {
            pair_slowdown = slowdown;
            traced_best = traced_s;
            sinked_best = sinked_s;
        }
    }
    std::remove(overhead_stream_path.c_str());
    // 5% relative + 10 ms absolute slack: the absolute term absorbs
    // the irreducible file-I/O floor (~20 MB of stream) on fast runs.
    std::printf("  best pair: traced %.3fs, traced+sink %.3fs "
                "-> %+.1f%%\n",
                traced_best, sinked_best, pair_slowdown * 100.0);
    expect(sinked_best <= traced_best * 1.05 + 0.010,
          "attached-sink overhead within 5%");

    Json overhead_cfg = Json::object();
    overhead_cfg["refs_per_cpu"] = Json(kOverheadRefs);
    overhead_cfg["trials"] = Json(kOverheadTrials);
    Json overhead_metrics = Json::object();
    overhead_metrics["traced_wall_s"] = Json(traced_best);
    overhead_metrics["sink_wall_s"] = Json(sinked_best);
    overhead_metrics["slowdown"] = Json(pair_slowdown);
    artifact.add("overhead/atum2", std::move(overhead_cfg),
                 std::move(overhead_metrics));

    // --- 4. Replay ------------------------------------------------
    std::cout << "== Trace-driven ownership replay ==\n";
    replayPingPong(artifact);

    const auto torture_session =
        telemetry::ReplaySession::fromText(streamed_text);
    const std::size_t cross_checked =
        crossCheckInspection(*sink_run.system, torture_session);

    Json torture_cfg = Json::object();
    torture_cfg["refs_per_cpu"] = Json(kIdentityRefs);
    Json torture_metrics = Json::object();
    torture_metrics["protect_entries_checked"] = Json(cross_checked);
    torture_metrics["ownership_events"] =
        Json(torture_session.events().size());
    artifact.add("replay/torture-crosscheck",
                 std::move(torture_cfg), std::move(torture_metrics));

    // --- 5. Artifacts ---------------------------------------------
    if (opts.writeJson) {
        writeFile(deriveSiblingPath(opts.jsonOut, ".stream.json"),
                  streamed_text);
        writeFile(deriveSiblingPath(opts.jsonOut, ".gauges.jsonl"),
                  gauge_stream.str());
        writeFile(deriveSiblingPath(opts.jsonOut, ".inspect.json"),
                  snapshot.dump(2) + "\n");
    }

    artifact.note("acceptance in exit status: streamed==post-hoc "
                  "event-for-event, sink-attached bit-identity, <=5% "
                  "sink overhead, replay owner probes correct and "
                  "consistent with live inspection");
    artifact.write();

    if (failures != 0) {
        std::cout << "\n" << failures << " CHECK(S) FAILED\n";
        return 1;
    }
    std::cout << "\nall checks passed\n";
    return 0;
}
