/**
 * @file
 * Observability acceptance bench. Three properties of the src/obs
 * subsystem are checked and *encoded in the exit status*:
 *
 *  1. Null-tracer / traced bit-identity: the same workload run with
 *     tracing disabled (twice) and enabled produces identical
 *     simulated results — elapsed ticks, references, misses, aborts,
 *     write-backs. The tracer is pure observation: it schedules no
 *     event and draws no random number.
 *
 *  2. Enabled-tracer overhead: host wall-clock (min of trials) with
 *     tracing armed is within 5% of the untraced run (plus a small
 *     absolute slack so timer noise on short runs cannot flake CI).
 *
 *  3. MissProfiler vs Table 1: provoking one full miss of each
 *     {page size, victim dirtiness} class on the single-board rig and
 *     folding its traced phases must (a) reproduce the miss's elapsed
 *     time exactly (phase sums are a gapless partition by
 *     construction) and (b) agree with the analytic MissCostModel's
 *     Table 1 elapsed column within 2%.
 *
 * The traced run's exports are written alongside the artifact:
 * BENCH_obs.trace.json (Chrome trace / Perfetto), BENCH_obs.bus.csv
 * (Figure-5-style bus-utilization time series) and BENCH_obs.fifo.csv
 * (interrupt FIFO depth samples).
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "analytic/models.hh"
#include "bench/bench_util.hh"
#include "cache/cache.hh"
#include "mem/phys_mem.hh"
#include "mem/vme_bus.hh"
#include "monitor/bus_monitor.hh"
#include "obs/event_tracer.hh"
#include "obs/export.hh"
#include "obs/miss_profiler.hh"
#include "proto/controller.hh"
#include "sim/event.hh"
#include "sim/stats.hh"

namespace
{

using namespace vmp;

int failures = 0;

void
expect(bool ok, const std::string &what)
{
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok)
        ++failures;
}

/** One profiled single-miss measurement on the bench_table1 rig. */
struct ProfiledMiss
{
    double simElapsedUs = 0.0;  //!< tick-measured handler time
    double profElapsedUs = 0.0; //!< MissProfiler's Miss span
    double phaseSumUs = 0.0;    //!< sum over the five phases
    std::uint64_t mismatches = 0;
    std::uint64_t misses = 0;
    obs::MissBreakdown breakdown;
};

/**
 * Provoke exactly one full miss (clean or dirty victim) with the
 * tracer attached only for the provoked miss, and fold its phases.
 */
ProfiledMiss
profileOneMiss(std::uint32_t page_bytes, bool dirty_victim)
{
    EventQueue events;
    mem::PhysMem memory(1 << 20, page_bytes);
    mem::VmeBus bus(events, memory);
    proto::FixedTranslator translator(page_bytes);
    cache::Cache cache(cache::CacheConfig{page_bytes, 1, 8, true});
    monitor::BusMonitor monitor(0, 1 << 20, page_bytes);
    proto::CacheController controller(0, events, cache, monitor, bus,
                                      translator);
    bus.attachWatcher(0, monitor);

    const cache::SlotFlags prot = static_cast<cache::SlotFlags>(
        cache::FlagSupWritable | cache::FlagUserReadable |
        cache::FlagUserWritable);
    const Addr conflict_stride = 8ull * page_bytes;
    translator.map(1, 0x0, 0x10000, prot);
    translator.map(1, conflict_stride, 0x20000, prot);

    // Prime untraced: only the provoked miss should be profiled.
    bool done = false;
    if (dirty_victim) {
        controller.writeWord(1, 0x0, 1, false, [&] { done = true; });
        events.run();
    } else {
        controller.access(1, 0x0, false, false,
                          [&](proto::AccessOutcome) { done = true; });
        events.run();
    }

    obs::EventTracer tracer;
    obs::MissProfiler profiler;
    tracer.addSink(profiler.sink());
    const std::uint16_t track = tracer.registerTrack("cpu0");
    controller.setTracer(&tracer, track);

    const Tick start = events.now();
    done = false;
    controller.access(1, conflict_stride, false, false,
                      [&](proto::AccessOutcome) { done = true; });
    events.run();
    if (!done)
        fatal("bench_obs: provoked miss did not complete");

    ProfiledMiss out;
    out.simElapsedUs = toUsec(events.now() - start);
    out.breakdown = profiler.breakdown(obs::MissKind::Full,
                                       dirty_victim);
    out.profElapsedUs = out.breakdown.meanElapsedUs();
    out.phaseSumUs = out.breakdown.phaseSumUs();
    out.mismatches = profiler.phaseSumMismatches();
    out.misses = profiler.misses();
    return out;
}

/** Simulated-outcome fingerprint of one multi-CPU workload run. */
struct RunFingerprint
{
    core::RunResult result;
    double wallSeconds = 0.0;

    bool
    operator==(const RunFingerprint &other) const
    {
        return result.elapsed == other.result.elapsed &&
               result.totalRefs == other.result.totalRefs &&
               result.totalMisses == other.result.totalMisses &&
               result.missRatio == other.result.missRatio &&
               result.performance == other.result.performance &&
               result.busUtilization == other.result.busUtilization &&
               result.busAborts == other.result.busAborts &&
               result.writeBacks == other.result.writeBacks;
    }
};

constexpr std::uint32_t kIdentityCpus = 4;
constexpr std::uint64_t kIdentityRefs = 40'000;
/** Longer runs for the wall-clock comparison: at tens of
 *  milliseconds, scheduler noise alone can exceed the 5% budget. */
constexpr std::uint64_t kOverheadRefs = 150'000;
constexpr int kOverheadTrials = 5;

/**
 * The bench_util runVmpSystem workload (atum2 mix, shared kernel so
 * consistency traffic exercises the monitor/FIFO events), optionally
 * with the tracer armed. @p system_out keeps the traced system alive
 * so its exports can be read afterwards.
 */
RunFingerprint
runWorkload(bool traced, std::uint64_t seed_base,
            std::uint64_t refs_per_cpu = kIdentityRefs,
            std::unique_ptr<core::VmpSystem> *system_out = nullptr)
{
    core::VmpConfig cfg;
    cfg.processors = kIdentityCpus;
    cfg.cache = cache::CacheConfig::forSize(KiB(64), 256, 4, true);
    cfg.memBytes = MiB(8);
    auto system = std::make_unique<core::VmpSystem>(cfg);
    if (traced)
        system->enableTracing();

    std::vector<std::unique_ptr<trace::SyntheticGen>> gens;
    std::vector<trace::RefSource *> sources;
    for (std::uint32_t i = 0; i < kIdentityCpus; ++i) {
        auto workload = trace::workloadConfig("atum2");
        workload.totalRefs = refs_per_cpu;
        workload.seed = seed_base + i;
        workload.asidBase = static_cast<Asid>(1 + i * 8);
        // Shared kernel image: misses contend, so ownership misses,
        // monitor interrupts and FIFO traffic all appear in the trace.
        gens.push_back(std::make_unique<trace::SyntheticGen>(workload));
        sources.push_back(gens.back().get());
    }

    RunFingerprint fp;
    const auto wall_start = std::chrono::steady_clock::now();
    fp.result = system->runTraces(sources);
    fp.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    if (system_out != nullptr)
        *system_out = std::move(system);
    return fp;
}

std::string
deriveSiblingPath(const std::string &json_out, const std::string &ext)
{
    const std::string suffix = ".json";
    if (json_out.size() > suffix.size() &&
        json_out.compare(json_out.size() - suffix.size(),
                         suffix.size(), suffix) == 0) {
        return json_out.substr(0, json_out.size() - suffix.size()) +
               ext;
    }
    return json_out + ext;
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream os(path);
    if (!os)
        fatal("bench_obs: cannot open ", path);
    os << content;
    std::cout << "[artifact] wrote " << path << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vmp;
    setInformEnabled(false);
    const auto opts = bench::parseBenchOptions("obs", argc, argv);
    bench::Artifact artifact("obs", opts);

    bench::banner("Observability",
                  "event tracing, per-miss phase profiling, exports");

    // --- 1. MissProfiler vs Table 1 -------------------------------
    const analytic::MissCostModel model;
    std::cout << "== Per-miss phase decomposition vs Table 1 ==\n";
    TableWriter table("Profiled single miss (five traced phases)");
    table.columns({"Page", "Victim", "Model (us)", "Profiled (us)",
                   "Phase sum (us)", "trap", "lookup", "writeback",
                   "copy", "wait"});
    for (int dirty = 0; dirty <= 1; ++dirty) {
        for (const std::uint32_t page : {128u, 256u, 512u}) {
            const auto cost = model.perMiss(page, dirty != 0);
            const auto run = profileOneMiss(page, dirty != 0);
            table.row()
                .cell(std::uint64_t{page})
                .cell(dirty ? "modified" : "not modified")
                .cell(cost.elapsedUs, 1)
                .cell(run.profElapsedUs, 1)
                .cell(run.phaseSumUs, 1)
                .cell(run.breakdown.meanPhaseUs(obs::MissPhase::Trap),
                      1)
                .cell(run.breakdown.meanPhaseUs(
                          obs::MissPhase::TableLookup),
                      1)
                .cell(run.breakdown.meanPhaseUs(
                          obs::MissPhase::VictimWriteback),
                      1)
                .cell(run.breakdown.meanPhaseUs(
                          obs::MissPhase::BlockCopy),
                      1)
                .cell(run.breakdown.meanPhaseUs(
                          obs::MissPhase::ConsistencyWait),
                      1);

            char label[48];
            std::snprintf(label, sizeof(label), "table1/%uB/%s", page,
                          dirty ? "dirty" : "clean");
            const double model_err =
                cost.elapsedUs == 0.0
                    ? 0.0
                    : (run.profElapsedUs - cost.elapsedUs) /
                          cost.elapsedUs;
            expect(run.misses == 1 && run.mismatches == 0,
                  std::string(label) +
                      ": one profiled miss, phase sum exact");
            expect(run.phaseSumUs == run.profElapsedUs &&
                      run.profElapsedUs == run.simElapsedUs,
                  std::string(label) +
                      ": profiled == tick-measured elapsed");
            expect(model_err > -0.02 && model_err < 0.02,
                  std::string(label) + ": within 2% of Table 1");

            Json config = Json::object();
            config["page_bytes"] = Json(std::uint64_t{page});
            config["victim"] =
                Json(dirty ? "modified" : "not-modified");
            Json metrics = Json::object();
            metrics["model_elapsed_us"] = Json(cost.elapsedUs);
            metrics["profiled_elapsed_us"] = Json(run.profElapsedUs);
            metrics["phase_sum_us"] = Json(run.phaseSumUs);
            metrics["model_error"] = Json(model_err);
            metrics["trap_us"] =
                Json(run.breakdown.meanPhaseUs(obs::MissPhase::Trap));
            metrics["table_lookup_us"] = Json(
                run.breakdown.meanPhaseUs(obs::MissPhase::TableLookup));
            metrics["victim_writeback_us"] =
                Json(run.breakdown.meanPhaseUs(
                    obs::MissPhase::VictimWriteback));
            metrics["block_copy_us"] = Json(
                run.breakdown.meanPhaseUs(obs::MissPhase::BlockCopy));
            metrics["consistency_wait_us"] =
                Json(run.breakdown.meanPhaseUs(
                    obs::MissPhase::ConsistencyWait));
            artifact.add(label, std::move(config), std::move(metrics));
        }
    }
    table.print(std::cout);

    // --- 2. Bit-identity ------------------------------------------
    std::cout << "== Null-tracer / traced bit-identity ==\n";
    const auto untraced_a = runWorkload(false, opts.seedBase);
    const auto untraced_b = runWorkload(false, opts.seedBase);
    std::unique_ptr<core::VmpSystem> traced_system;
    const auto traced = runWorkload(true, opts.seedBase,
                                    kIdentityRefs, &traced_system);
    expect(untraced_a == untraced_b,
          "untraced runs are deterministic");
    expect(untraced_a == traced,
          "traced run is simulation-identical to untraced");
    std::cout << "  untraced: " << untraced_a.result.toString() << "\n"
              << "  traced:   " << traced.result.toString() << "\n";

    const obs::EventTracer &tracer = *traced_system->tracer();
    const obs::MissProfiler &profiler =
        *traced_system->missProfiler();
    expect(tracer.recorded() > 0, "traced run recorded events");
    expect(profiler.misses() == traced.result.totalMisses,
          "profiler folded every miss");
    expect(profiler.phaseSumMismatches() == 0,
          "no phase-sum mismatch across the whole run");

    // --- 3. Wall-clock overhead -----------------------------------
    std::printf("== Enabled-tracer overhead (min of %d interleaved "
                "trials, %llu refs/cpu) ==\n",
                kOverheadTrials,
                static_cast<unsigned long long>(kOverheadRefs));
    double untraced_min = 1e300;
    double traced_min = 1e300;
    for (int trial = 0; trial < kOverheadTrials; ++trial) {
        // Interleaved so slow host phases hit both configurations.
        untraced_min =
            std::min(untraced_min,
                     runWorkload(false, opts.seedBase, kOverheadRefs)
                         .wallSeconds);
        traced_min =
            std::min(traced_min,
                     runWorkload(true, opts.seedBase, kOverheadRefs)
                         .wallSeconds);
    }
    // 5% relative + 10 ms absolute slack: min-of-trials removes most
    // scheduler noise, the slack absorbs the rest on fast hosts.
    const double slowdown =
        untraced_min == 0.0 ? 0.0
                            : traced_min / untraced_min - 1.0;
    std::printf("  untraced %.3fs, traced %.3fs -> %+.1f%%\n",
                untraced_min, traced_min, slowdown * 100.0);
    expect(traced_min <= untraced_min * 1.05 + 0.010,
          "tracing overhead within 5%");

    Json identity_cfg = Json::object();
    identity_cfg["processors"] = Json(std::uint64_t{kIdentityCpus});
    identity_cfg["refs_per_cpu"] = Json(kIdentityRefs);
    identity_cfg["seed_base"] = Json(opts.seedBase);
    Json identity_metrics = bench::runResultJson(traced.result);
    identity_metrics["identical_untraced"] =
        Json(untraced_a == traced);
    identity_metrics["events_recorded"] = Json(tracer.recorded());
    identity_metrics["events_overwritten"] =
        Json(tracer.droppedOldest());
    identity_metrics["misses_profiled"] = Json(profiler.misses());
    identity_metrics["phase_sum_mismatches"] =
        Json(profiler.phaseSumMismatches());
    identity_metrics["untraced_wall_s"] = Json(untraced_min);
    identity_metrics["traced_wall_s"] = Json(traced_min);
    identity_metrics["slowdown"] = Json(slowdown);
    identity_metrics["profile"] = profiler.toJson();
    identity_metrics["stats"] = traced_system->statsJson();
    artifact.add("identity/atum2", std::move(identity_cfg),
                 std::move(identity_metrics));

    // --- 4. Exports -----------------------------------------------
    std::cout << "\n== Exports ==\n";
    std::cout << obs::metricsSnapshot(tracer, &profiler);
    if (opts.writeJson) {
        {
            const std::string path =
                deriveSiblingPath(opts.jsonOut, ".trace.json");
            std::ofstream os(path);
            if (!os)
                fatal("bench_obs: cannot open ", path);
            obs::writeChromeTrace(tracer, os);
            std::cout << "[artifact] wrote " << path << "\n";
        }
        writeFile(deriveSiblingPath(opts.jsonOut, ".bus.csv"),
                  obs::busUtilizationCsv(tracer));
        writeFile(deriveSiblingPath(opts.jsonOut, ".fifo.csv"),
                  obs::fifoDepthCsv(tracer));
    }

    artifact.note("acceptance in exit status: traced/untraced "
                  "bit-identity, <=5% wall-clock overhead, per-miss "
                  "phase sums within 2% of Table 1");
    artifact.write();

    if (failures != 0) {
        std::cout << "\n" << failures << " CHECK(S) FAILED\n";
        return 1;
    }
    std::cout << "\nall checks passed\n";
    return 0;
}
