/**
 * @file
 * Regenerates Table 2: "Average Cache Miss Cost" — the per-miss elapsed
 * and bus times averaged with the paper's assumption that 75 percent of
 * replaced pages are unmodified. The clean fraction is also swept so
 * the sensitivity of the average to workload dirtiness is visible.
 */

#include <cstdio>
#include <iostream>

#include "analytic/models.hh"
#include "bench/bench_util.hh"
#include "sim/stats.hh"

int
main(int argc, char **argv)
{
    using namespace vmp;
    const auto opts = bench::parseBenchOptions("table2", argc, argv);
    bench::Artifact artifact("table2", opts);

    bench::banner("Table 2", "Average Cache Miss Cost (75% of "
                             "replaced pages unmodified)");

    const analytic::MissCostModel model;

    TableWriter table("Table 2: average miss cost");
    table.columns({"Page (bytes)", "Elapsed (us)", "Bus (us)",
                   "Paper Elapsed", "Paper Bus"});
    const double paper_elapsed[3] = {17.0, 21.29, 28.5};
    const double paper_bus[3] = {4.4, 8.316, 16.25};
    const std::uint32_t pages[3] = {128, 256, 512};
    for (int p = 0; p < 3; ++p) {
        const auto avg = model.average(pages[p]);
        table.row()
            .cell(std::uint64_t{pages[p]})
            .cell(avg.elapsedUs, 2)
            .cell(avg.busUs, 3)
            .cell(paper_elapsed[p], 2)
            .cell(paper_bus[p], 3);

        Json config = Json::object();
        config["page_bytes"] = Json(std::uint64_t{pages[p]});
        config["clean_fraction"] = Json(0.75);
        Json metrics = Json::object();
        metrics["elapsed_us_per_miss"] = Json(avg.elapsedUs);
        metrics["bus_us_per_miss"] = Json(avg.busUs);
        metrics["paper_elapsed_us"] = Json(paper_elapsed[p]);
        metrics["paper_bus_us"] = Json(paper_bus[p]);
        artifact.add(std::to_string(pages[p]) + "B/avg",
                     std::move(config), std::move(metrics));
    }
    table.print(std::cout);
    std::cout << "(The paper prints only the 128- and 256-byte rows; "
                 "512-byte values follow the same rule.)\n\n";

    TableWriter sweep("Sensitivity: clean-victim fraction sweep "
                      "(256-byte pages)");
    sweep.columns({"Clean fraction", "Elapsed (us)", "Bus (us)"});
    for (double clean = 1.0; clean >= -0.001; clean -= 0.25) {
        const auto avg = model.average(256, clean);
        sweep.row().cell(clean, 2).cell(avg.elapsedUs, 2).cell(
            avg.busUs, 2);

        Json config = Json::object();
        config["page_bytes"] = Json(std::uint64_t{256});
        config["clean_fraction"] = Json(clean);
        Json metrics = Json::object();
        metrics["elapsed_us_per_miss"] = Json(avg.elapsedUs);
        metrics["bus_us_per_miss"] = Json(avg.busUs);
        char label[48];
        std::snprintf(label, sizeof(label), "sweep/clean=%.2f",
                      clean);
        artifact.add(label, std::move(config), std::move(metrics));
    }
    sweep.print(std::cout);

    artifact.note("average miss cost under the paper's 75%-clean "
                  "victim assumption, plus a clean-fraction "
                  "sensitivity sweep at 256B pages");
    artifact.write();
    return 0;
}
