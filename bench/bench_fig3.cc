/**
 * @file
 * Regenerates Figure 3: "Processor Performance to Cache Miss Ratio" —
 * normalized processor performance as a function of the miss ratio for
 * cache page sizes 128, 256 and 512 bytes, using the Table 2 average
 * miss cost per miss. Validation points measured on the event-driven
 * multiprocessor simulator are printed alongside the analytic curves.
 */

#include <cstdio>
#include <iostream>

#include "analytic/models.hh"
#include "bench/bench_util.hh"
#include "sim/stats.hh"

int
main(int argc, char **argv)
{
    using namespace vmp;
    setInformEnabled(false);
    const auto opts = bench::parseBenchOptions("fig3", argc, argv);
    bench::Artifact artifact("fig3", opts);

    bench::banner("Figure 3", "Processor Performance vs Cache Miss "
                              "Ratio");

    const analytic::PerfModel model;

    TableWriter table("Figure 3 series: normalized performance");
    table.columns({"Miss ratio (%)", "128B pages", "256B pages",
                   "512B pages"});
    for (double pct = 0.0; pct <= 2.001; pct += 0.2) {
        const double m = pct / 100.0;
        table.row()
            .cell(pct, 1)
            .cell(model.performance(128, m), 3)
            .cell(model.performance(256, m), 3)
            .cell(model.performance(512, m), 3);
        for (const std::uint32_t page : {128u, 256u, 512u}) {
            Json config = Json::object();
            config["page_bytes"] = Json(std::uint64_t{page});
            config["miss_ratio"] = Json(m);
            Json metrics = Json::object();
            metrics["performance_model"] =
                Json(model.performance(page, m));
            char label[48];
            std::snprintf(label, sizeof(label), "model/%uB/m=%.3f",
                          page, m);
            artifact.add(label, std::move(config),
                         std::move(metrics));
        }
    }
    table.print(std::cout);

    std::cout << "Paper anchor: 256B pages at 0.24% miss ratio -> "
              << "87% performance; model gives "
              << model.performance(256, 0.0024) << "\n\n";

    // Validation: run the full simulator at three cache sizes and
    // compare the measured (miss ratio, performance) pairs against the
    // analytic curve.
    TableWriter validation(
        "Event-simulator validation points (256B pages, atum2 mix)");
    validation.columns({"Cache", "Measured miss %", "Measured perf",
                        "Model perf at that miss ratio"});
    for (const std::uint64_t size :
         {KiB(32), KiB(64), KiB(128)}) {
        const auto cfg =
            cache::CacheConfig::forSize(size, 256, 4, true);
        const auto result = bench::runVmpSystem(1, 120'000, cfg);
        validation.row()
            .cell(std::to_string(size / 1024) + "K")
            .cell(result.missRatio * 100, 3)
            .cell(result.performance, 3)
            .cell(model.performance(256, result.missRatio), 3);
        Json metrics = bench::runResultJson(result);
        metrics["performance_model"] =
            Json(model.performance(256, result.missRatio));
        artifact.add("measured/" + std::to_string(size / 1024) + "K",
                     bench::cacheConfigJson(size, 256, 4),
                     std::move(metrics));
    }
    validation.print(std::cout);

    artifact.note("normalized performance per Table 2 average miss "
                  "cost; measured points from the event-driven "
                  "simulator (atum2, 120k refs)");
    artifact.write();
    return 0;
}
