/**
 * @file
 * Ablation study over the design choices DESIGN.md calls out: cache
 * associativity (the prototype supports 1-4 ways), the hardware-
 * suggested (LRU) victim slot vs a random victim policy, and the ASID
 * tag (vs flushing the cache on context switch). All measured with the
 * Figure 4 methodology on the four ATUM-like traces.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "sim/random.hh"
#include "sim/stats.hh"

namespace
{

using namespace vmp;

/** Figure-4 style run with a random (rather than LRU) victim. */
core::FastSimResult
runRandomVictim(std::uint64_t cache_bytes, std::uint32_t page_bytes)
{
    core::FastSimResult total;
    Rng rng(12345);
    for (const auto &workload : trace::allWorkloads()) {
        trace::SyntheticGen gen(workload);
        cache::Cache cache(cache::CacheConfig::forSize(
            cache_bytes, page_bytes, 4, false));
        trace::MemRef ref;
        while (gen.next(ref)) {
            ++total.refs;
            const auto res = cache.access(ref.asid, ref.vaddr,
                                          ref.isWrite(),
                                          ref.supervisor);
            if (res.hit)
                continue;
            ++total.misses;
            // Random way within the correct set.
            const auto set = cache.setOf(ref.vaddr);
            const auto way = static_cast<std::uint32_t>(
                rng.below(cache.config().ways));
            cache.fill(set * cache.config().ways + way,
                       cache.tagFor(ref.asid, ref.vaddr),
                       static_cast<cache::SlotFlags>(
                           cache::FlagExclusive |
                           cache::FlagSupWritable |
                           cache::FlagUserReadable |
                           cache::FlagUserWritable));
        }
    }
    return total;
}

/** Figure-4 style run with a single shared ASID (flush-free tagging
 *  disabled: all processes collide in one tag space). */
core::FastSimResult
runSharedAsid(std::uint64_t cache_bytes, std::uint32_t page_bytes)
{
    core::FastSimResult total;
    for (const auto &workload : trace::allWorkloads()) {
        trace::SyntheticGen gen(workload);
        core::FastCacheSim sim(cache::CacheConfig::forSize(
            cache_bytes, page_bytes, 4, false));
        trace::MemRef ref;
        while (gen.next(ref)) {
            ref.asid = 1; // collapse all address spaces
            sim.step(ref);
        }
        total += sim.result();
    }
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vmp;
    const auto opts = bench::parseBenchOptions("ablation", argc,
                                               argv);
    bench::Artifact artifact("ablation", opts);

    bench::banner("Ablation", "Associativity, victim policy and ASID "
                              "tagging (Fig. 4 methodology, 256B "
                              "pages)");

    const std::vector<std::uint64_t> sizes = {KiB(64), KiB(128),
                                              KiB(256)};
    TableWriter assoc("Associativity sweep, miss ratio (%)");
    assoc.columns({"Cache size", "1-way", "2-way", "4-way", "8-way"});
    {
        // One parallel sweep per associativity (each is a full
        // {size} x {workload} grid of independent cells).
        std::vector<bench::Fig4Grid> grids;
        for (const std::uint32_t ways : {1u, 2u, 4u, 8u})
            grids.emplace_back(sizes, std::vector<std::uint32_t>{256},
                               ways, opts.threads);
        for (std::size_t s = 0; s < sizes.size(); ++s) {
            auto &row = assoc.row().cell(
                std::to_string(sizes[s] / 1024) + "K");
            const std::uint32_t ways_list[] = {1, 2, 4, 8};
            for (std::size_t w = 0; w < grids.size(); ++w) {
                const auto &point = grids[w].point(s, 0);
                row.cell(point.missRatio() * 100, 3);
                artifact.add(
                    "assoc/" + std::to_string(sizes[s] / 1024) +
                        "K/" + std::to_string(ways_list[w]) + "w",
                    bench::cacheConfigJson(sizes[s], 256,
                                           ways_list[w]),
                    bench::fastResultJson(point));
            }
        }
    }
    assoc.print(std::cout);

    TableWriter victim("Victim policy at 4 ways, miss ratio (%)");
    victim.columns({"Cache size", "LRU (hardware suggestion)",
                    "Random"});
    for (const std::uint64_t size : sizes) {
        const auto lru = bench::runFig4Point(size, 256);
        const auto random = runRandomVictim(size, 256);
        victim.row()
            .cell(std::to_string(size / 1024) + "K")
            .cell(lru.missRatio() * 100, 3)
            .cell(random.missRatio() * 100, 3);
        Json metrics = Json::object();
        metrics["miss_ratio_lru"] = Json(lru.missRatio());
        metrics["miss_ratio_random"] = Json(random.missRatio());
        artifact.add("victim/" + std::to_string(size / 1024) + "K",
                     bench::cacheConfigJson(size, 256, 4),
                     std::move(metrics));
    }
    victim.print(std::cout);

    TableWriter asid("ASID tag ablation, miss ratio (%)");
    asid.columns({"Cache size", "Per-ASID tags (VMP)",
                  "Single tag space"});
    for (const std::uint64_t size : sizes) {
        const auto tagged = bench::runFig4Point(size, 256);
        const auto shared = runSharedAsid(size, 256);
        asid.row()
            .cell(std::to_string(size / 1024) + "K")
            .cell(tagged.missRatio() * 100, 3)
            .cell(shared.missRatio() * 100, 3);
        Json metrics = Json::object();
        metrics["miss_ratio_per_asid"] = Json(tagged.missRatio());
        metrics["miss_ratio_single_tag_space"] =
            Json(shared.missRatio());
        artifact.add("asid/" + std::to_string(size / 1024) + "K",
                     bench::cacheConfigJson(size, 256, 4),
                     std::move(metrics));
    }
    asid.print(std::cout);
    std::cout
        << "Note: collapsing ASIDs lets processes share kernel-page "
           "tags (fewer cold misses) but is\nonly legal if the cache "
           "is flushed on every context switch — the cost the ASID "
           "register avoids.\n\n";

    // Section 5.4 non-shared hint: user pages fetched read-private.
    setInformEnabled(false);
    TableWriter hint("Non-shared hint ablation (full system, 1 CPU, "
                     "atum2, 64K cache)");
    hint.columns({"Hint", "Ownership misses", "Assert-ownership tx",
                  "Hinted private fills", "Perf"});
    for (const bool enabled : {false, true}) {
        core::VmpConfig cfg;
        cfg.processors = 1;
        cfg.cache = cache::CacheConfig::forSize(KiB(64), 256, 4, true);
        cfg.memBytes = MiB(8);
        core::VmpSystem system(cfg);
        system.setUserPrivateHint(enabled);
        auto workload = trace::workloadConfig("atum2");
        workload.totalRefs = 120'000;
        trace::SyntheticGen gen(workload);
        const auto result = system.runTraces({&gen});
        hint.row()
            .cell(enabled ? "on" : "off")
            .cell(system.controller(0).ownershipMisses().value())
            .cell(system.bus()
                      .countOf(mem::TxType::AssertOwnership)
                      .value())
            .cell(system.controller(0).hintedPrivateFills().value())
            .cell(result.performance, 3);

        Json config = bench::cacheConfigJson(KiB(64), 256, 4);
        config["user_private_hint"] = Json(enabled);
        Json metrics = bench::runResultJson(result);
        metrics["ownership_misses"] =
            Json(system.controller(0).ownershipMisses().value());
        metrics["assert_ownership_tx"] =
            Json(system.bus()
                     .countOf(mem::TxType::AssertOwnership)
                     .value());
        metrics["hinted_private_fills"] =
            Json(system.controller(0).hintedPrivateFills().value());
        artifact.add(std::string("hint/") + (enabled ? "on" : "off"),
                     std::move(config), std::move(metrics));
    }
    hint.print(std::cout);
    std::cout
        << "With the hint, user read misses fetch read-private and "
           "the write upgrade (an extra trap\nplus bus transaction "
           "per first-write) disappears — the Section 5.4 "
           "optimization.\n";

    artifact.note("ablations over associativity, victim policy, ASID "
                  "tagging and the Section 5.4 non-shared hint "
                  "(Fig. 4 methodology, 256B pages)");
    artifact.write();
    return 0;
}
