/**
 * @file
 * Shared helpers for the benchmark binaries. Each bench regenerates one
 * table or figure from the paper and prints the same rows/series the
 * paper reports, alongside the paper's published values where they are
 * stated in the text — and additionally emits a machine-readable
 * BENCH_<name>.json artifact (see Artifact below) so the numbers can
 * be diffed across commits.
 */

#ifndef VMP_BENCH_BENCH_UTIL_HH
#define VMP_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analytic/models.hh"
#include "core/fast_sim.hh"
#include "core/sweep.hh"
#include "core/system.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "trace/synthetic.hh"
#include "trace/workloads.hh"

namespace vmp::bench
{

/** Schema identifier/version shared by every artifact. */
inline constexpr const char *kArtifactSchema = "vmp-bench-artifact";
/** v1.1 added the "meta" provenance section (git sha, compiler,
 *  sweep thread count). v1.2 added the failstop-recovery bench and
 *  its per-result "recovery" stat group (bench_recover: the recovery
 *  coordinator's and failure detector's counters, verbatim). v1.3
 *  added the observability bench (bench_obs) and the "obs" stat group
 *  (event-tracer ring and miss-profiler counters) emitted by any bench
 *  run with tracing armed. v1.4 added the closed-queuing (MVA) model
 *  overlay columns (mva_* metrics plus per-model "in_domain" flags),
 *  the "arbitration" config key, and the bus_upgrades metric. v1.5
 *  added the memory-tier bench (bench_memtier) with its "backing.tier"
 *  and "backing.budget" stat groups, the seed-sweep aggregate emitted
 *  by scripts/seed_sweep.py (mean/ci95 columns over --seed-base runs),
 *  and the checkpoint-enabled bench_recover point. v1.6 added the
 *  partial-failure bench (bench_partialfault: detection latency and
 *  fenced-mode survivor throughput across wedge/babble/fail-slow
 *  severities) and the fencing counters in the "recovery" stat group
 *  (boards_fenced / boards_unfenced, wedge/babble/slow suspicion and
 *  stuck-table escalation counters). v1.7 added the telemetry bench
 *  (bench_telemetry: streamed-vs-post-hoc trace equivalence, sink
 *  overhead, replay ownership probes) and the streaming-sink counters
 *  (stream_events / stream_dropped / stream_flushes /
 *  stream_gauge_samples) plus per-track overwritten_* counters in the
 *  "obs" stat group. */
inline constexpr double kArtifactSchemaVersion = 1.7;

/** Build-time git revision (configure-time snapshot; "unknown" when
 *  the build tree was configured outside a git checkout). */
#ifndef VMP_GIT_SHA
#define VMP_GIT_SHA "unknown"
#endif

/** Command-line options shared by every bench binary. */
struct BenchOptions
{
    /** Artifact path; defaults to BENCH_<name>.json in the CWD. */
    std::string jsonOut;
    /** Skip the artifact entirely (--no-json). */
    bool writeJson = true;
    /** Worker threads for parallel sweeps (--threads N; 0 = auto). */
    unsigned threads = 0;
    /** Base RNG seed for synthetic workloads (--seed-base N). */
    std::uint64_t seedBase = 1000;
    /** Bus arbitration discipline (--arbitration NAME). */
    mem::ArbitrationConfig arbitration{};
};

/**
 * Parse (and consume) the shared bench flags:
 *   --json-out PATH | --json-out=PATH   artifact destination
 *   --no-json                           suppress the artifact
 *   --threads N | --threads=N           sweep worker threads
 *   --seed-base N | --seed-base=N       synthetic-workload seed base
 *   --arbitration NAME                  bus arbitration discipline
 *                                       (fifo | priority | rr)
 *   --priority-levels N                 bus-request levels (priority)
 *   --help | -h                         print usage and exit
 * Unrecognized arguments are left in argv (bench_simperf forwards
 * them to google-benchmark); @p argc is adjusted accordingly.
 */
inline BenchOptions
parseBenchOptions(const std::string &bench_name, int &argc, char **argv)
{
    BenchOptions opts;
    opts.jsonOut = "BENCH_" + bench_name + ".json";
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto valueOf = [&](const std::string &flag,
                                 std::string &value) {
            if (arg == flag) {
                if (i + 1 >= argc)
                    fatal(flag, " requires a value");
                value = argv[++i];
                return true;
            }
            if (arg.rfind(flag + "=", 0) == 0) {
                value = arg.substr(flag.size() + 1);
                return true;
            }
            return false;
        };
        std::string value;
        if (valueOf("--json-out", value)) {
            opts.jsonOut = value;
        } else if (arg == "--no-json") {
            opts.writeJson = false;
        } else if (valueOf("--threads", value)) {
            opts.threads =
                static_cast<unsigned>(std::stoul(value));
        } else if (valueOf("--seed-base", value)) {
            opts.seedBase = std::stoull(value);
        } else if (valueOf("--arbitration", value)) {
            opts.arbitration.discipline =
                mem::arbitrationFromName(value);
        } else if (valueOf("--priority-levels", value)) {
            opts.arbitration.priorityLevels =
                static_cast<unsigned>(std::stoul(value));
        } else if (arg == "--help" || arg == "-h") {
            std::cout
                << "bench_" << bench_name << " [options]\n"
                << "  --json-out PATH  artifact destination "
                   "(default BENCH_" << bench_name << ".json)\n"
                << "  --no-json        suppress the artifact\n"
                << "  --threads N      sweep worker threads (0=auto)\n"
                << "  --seed-base N    synthetic-workload seed base "
                   "(default 1000)\n"
                << "  --arbitration NAME  bus discipline: fifo | "
                   "priority | rr (default fifo)\n"
                << "  --priority-levels N bus-request levels "
                   "(priority; default 4)\n"
                << "  --help, -h       this message\n"
                << "Unrecognized arguments are forwarded (only "
                   "bench_simperf consumes them).\n";
            std::exit(0);
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    return opts;
}

/**
 * Machine-readable benchmark artifact, one per bench binary. The
 * deterministic sections ("bench", "results", "notes") are identical
 * across runs with the same seeds; the "host" section carries
 * volatile data (wall-clock, thread count) and should be excluded
 * when diffing artifacts across commits.
 *
 * Schema (version 1.1):
 *   {
 *     "schema": "vmp-bench-artifact",
 *     "schema_version": 1.1,
 *     "bench": "<name>",
 *     "meta": {
 *       "git_sha": "<12-hex or 'unknown'>",
 *       "compiler": "<__VERSION__ string>",
 *       "threads": 4
 *     },
 *     "results": [
 *       {"label": "...", "config": {...}, "metrics": {...}}, ...
 *     ],
 *     "notes": ["..."],
 *     "host": {"wall_clock_s": 1.23}
 *   }
 * Every metrics value is a number (or a histogram object as emitted
 * by StatRegistry); config values are numbers, strings or bools. The
 * "meta" section (new in v1.1) carries build/run provenance: the git
 * revision the binary was configured from, the compiler identification
 * string, and the resolved sweep worker-thread count. Like "host", it
 * should be excluded when diffing artifacts across commits.
 */
class Artifact
{
  public:
    Artifact(std::string bench_name, BenchOptions options)
        : bench_(std::move(bench_name)), opts_(std::move(options)),
          start_(std::chrono::steady_clock::now())
    {
        results_ = Json::array();
        notes_ = Json::array();
        host_ = Json::object();
        meta_ = Json::object();
        meta_["git_sha"] = Json(std::string(VMP_GIT_SHA));
        meta_["compiler"] = Json(std::string(__VERSION__));
        meta_["threads"] =
            Json(std::uint64_t{core::sweepThreads(opts_.threads)});
    }

    /**
     * Append one result row. @p config describes the swept
     * configuration, @p metrics the measured values.
     */
    void
    add(const std::string &label, Json config, Json metrics)
    {
        Json row = Json::object();
        row["label"] = Json(label);
        row["config"] = std::move(config);
        row["metrics"] = std::move(metrics);
        results_.push(std::move(row));
    }

    /** Attach a free-form provenance note. */
    void note(const std::string &text) { notes_.push(Json(text)); }

    /** Record a volatile host-side datum (excluded from diffs). */
    void
    hostInfo(const std::string &key, Json value)
    {
        host_[key] = std::move(value);
    }

    /** The full artifact document, including the volatile section. */
    Json
    toJson() const
    {
        Json doc = Json::object();
        doc["schema"] = Json(kArtifactSchema);
        doc["schema_version"] = Json(kArtifactSchemaVersion);
        doc["bench"] = Json(bench_);
        doc["meta"] = meta_;
        doc["results"] = results_;
        doc["notes"] = notes_;
        Json host = host_;
        const auto elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count();
        host["wall_clock_s"] = Json(elapsed);
        doc["host"] = std::move(host);
        return doc;
    }

    /** Write the artifact (unless --no-json) and report the path. */
    void
    write() const
    {
        if (!opts_.writeJson)
            return;
        std::ofstream os(opts_.jsonOut);
        if (!os)
            fatal("cannot open artifact file ", opts_.jsonOut);
        toJson().write(os, 2);
        os << '\n';
        std::cout << "[artifact] wrote " << opts_.jsonOut << "\n";
    }

    const BenchOptions &options() const { return opts_; }

  private:
    std::string bench_;
    BenchOptions opts_;
    std::chrono::steady_clock::time_point start_;
    Json results_;
    Json notes_;
    Json host_;
    Json meta_;
};

/** config sub-object for a Figure-4 style cache geometry. */
inline Json
cacheConfigJson(std::uint64_t cache_bytes, std::uint32_t page_bytes,
                std::uint32_t ways)
{
    Json j = Json::object();
    j["cache_bytes"] = Json(cache_bytes);
    j["page_bytes"] = Json(std::uint64_t{page_bytes});
    j["ways"] = Json(std::uint64_t{ways});
    return j;
}

/** metrics sub-object for one FastSimResult. */
inline Json
fastResultJson(const core::FastSimResult &result)
{
    Json j = Json::object();
    j["refs"] = Json(result.refs);
    j["misses"] = Json(result.misses);
    j["miss_ratio"] = Json(result.missRatio());
    j["supervisor_refs"] = Json(result.supervisorRefs);
    j["supervisor_misses"] = Json(result.supervisorMisses);
    return j;
}

/** metrics sub-object for one full-system RunResult. */
inline Json
runResultJson(const core::RunResult &result)
{
    Json j = Json::object();
    j["elapsed_us"] = Json(toUsec(result.elapsed));
    j["refs"] = Json(result.totalRefs);
    j["misses"] = Json(result.totalMisses);
    j["miss_ratio"] = Json(result.missRatio);
    j["performance"] = Json(result.performance);
    j["bus_utilization"] = Json(result.busUtilization);
    j["bus_aborts"] = Json(result.busAborts);
    j["write_backs"] = Json(result.writeBacks);
    j["bus_upgrades"] = Json(result.busUpgrades);
    return j;
}

/**
 * The measured bus-load shape of a run, ready to feed the MVA model.
 * Falls back to the paper's assumptions (no upgrades, 25% write-backs)
 * when the run took no misses.
 */
inline analytic::BusLoadProfile
loadProfileOf(const core::RunResult &result)
{
    analytic::BusLoadProfile load;
    load.missRatio = result.missRatio;
    if (result.totalMisses > 0) {
        // Clamp: bridge boards (and retried upgrades under heavy
        // contention) can push the bus-side counts past the
        // CPU-side miss count.
        load.upgradeFraction = std::min(
            1.0,
            static_cast<double>(result.busUpgrades) /
                static_cast<double>(result.totalMisses));
        load.writeBackRatio = std::min(
            1.0,
            static_cast<double>(result.writeBacks) /
                static_cast<double>(result.totalMisses));
    }
    return load;
}

/** Model-prediction columns for one bench row: prediction, relative
 *  error vs the measured value, and the domain flags. */
inline void
modelColumnsJson(Json &metrics, const std::string &prefix,
                 double predicted, double measured,
                 const analytic::ModelDomain &domain)
{
    metrics[prefix + "_performance"] = Json(predicted);
    metrics[prefix + "_error"] = Json(
        measured == 0.0 ? 0.0 : (predicted - measured) / measured);
    metrics[prefix + "_in_domain"] = Json(domain.inDomain());
    metrics[prefix + "_rho"] = Json(domain.rho);
}

/** Banner naming the artifact being regenerated. */
inline void
banner(const std::string &artifact, const std::string &description)
{
    std::cout << "\n=================================================="
                 "====\n"
              << artifact << " — " << description << "\n"
              << "VMP: Software-Controlled Caches (Cheriton, "
                 "Slavenburg, Boyle; ISCA 1986)\n"
              << "===================================================="
                 "==\n\n";
}

/** Average Figure 4 style miss ratio over the four ATUM-like traces. */
inline core::FastSimResult
runFig4Point(std::uint64_t cache_bytes, std::uint32_t page_bytes,
             std::uint32_t ways = 4)
{
    const auto cells =
        core::fig4Cells({cache_bytes}, {page_bytes}, ways);
    const auto merged = core::mergeWorkloadGroups(
        core::runSweepSerial(cells), cells.size());
    return merged.front();
}

/**
 * A whole Figure-4 style {cache size x page size} grid, evaluated in
 * one parallel sweep (one worker task per {size, page, workload}
 * cell). Results are bitwise-identical to calling runFig4Point per
 * point, for any thread count.
 */
class Fig4Grid
{
  public:
    Fig4Grid(std::vector<std::uint64_t> cache_sizes,
             std::vector<std::uint32_t> page_sizes,
             std::uint32_t ways = 4, unsigned threads = 0)
        : sizes_(std::move(cache_sizes)), pages_(std::move(page_sizes))
    {
        const auto cells = core::fig4Cells(sizes_, pages_, ways);
        const std::size_t per_point = cells.size() /
            (sizes_.size() * pages_.size());
        core::SweepOptions options;
        options.threads = threads;
        points_ = core::mergeWorkloadGroups(
            core::runSweep(cells, options), per_point);
    }

    const core::FastSimResult &
    point(std::size_t size_index, std::size_t page_index) const
    {
        return points_.at(size_index * pages_.size() + page_index);
    }

    const std::vector<std::uint64_t> &sizes() const { return sizes_; }
    const std::vector<std::uint32_t> &pages() const { return pages_; }

  private:
    std::vector<std::uint64_t> sizes_;
    std::vector<std::uint32_t> pages_;
    std::vector<core::FastSimResult> points_;
};

/**
 * Run @p processors trace CPUs on a full event-driven system, each
 * executing @p refs_per_cpu references of the atum2 mix with distinct
 * seeds, and return the aggregate result.
 */
inline core::RunResult
runVmpSystem(std::uint32_t processors, std::uint64_t refs_per_cpu,
             const cache::CacheConfig &cache_cfg,
             std::uint64_t seed_base = 1000, bool share_kernel = false,
             Json *stats_out = nullptr,
             const mem::ArbitrationConfig &arbitration = {})
{
    core::VmpConfig cfg;
    cfg.processors = processors;
    cfg.cache = cache_cfg;
    cfg.memBytes = MiB(8);
    cfg.arbitration = arbitration;
    core::VmpSystem system(cfg);

    std::vector<std::unique_ptr<trace::SyntheticGen>> gens;
    std::vector<trace::RefSource *> sources;
    for (std::uint32_t i = 0; i < processors; ++i) {
        auto workload = trace::workloadConfig("atum2");
        workload.totalRefs = refs_per_cpu;
        workload.seed = seed_base + i;
        // Distinct ASIDs per processor; optionally a private kernel
        // image so only bus queueing (not data contention) is measured.
        workload.asidBase = static_cast<Asid>(1 + i * 8);
        if (!share_kernel)
            workload.kernelOffset = static_cast<Addr>(i) * 0x20'0000;
        gens.push_back(
            std::make_unique<trace::SyntheticGen>(workload));
        sources.push_back(gens.back().get());
    }
    const auto result = system.runTraces(sources);
    if (stats_out != nullptr)
        *stats_out = system.statsJson();
    return result;
}

} // namespace vmp::bench

#endif // VMP_BENCH_BENCH_UTIL_HH
