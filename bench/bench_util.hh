/**
 * @file
 * Shared helpers for the benchmark binaries. Each bench regenerates one
 * table or figure from the paper and prints the same rows/series the
 * paper reports, alongside the paper's published values where they are
 * stated in the text.
 */

#ifndef VMP_BENCH_BENCH_UTIL_HH
#define VMP_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/fast_sim.hh"
#include "core/system.hh"
#include "sim/logging.hh"
#include "trace/synthetic.hh"
#include "trace/workloads.hh"

namespace vmp::bench
{

/** Banner naming the artifact being regenerated. */
inline void
banner(const std::string &artifact, const std::string &description)
{
    std::cout << "\n=================================================="
                 "====\n"
              << artifact << " — " << description << "\n"
              << "VMP: Software-Controlled Caches (Cheriton, "
                 "Slavenburg, Boyle; ISCA 1986)\n"
              << "===================================================="
                 "==\n\n";
}

/** Average Figure 4 style miss ratio over the four ATUM-like traces. */
inline core::FastSimResult
runFig4Point(std::uint64_t cache_bytes, std::uint32_t page_bytes,
             std::uint32_t ways = 4)
{
    core::FastSimResult total;
    for (const auto &workload : trace::allWorkloads()) {
        trace::SyntheticGen gen(workload);
        core::FastCacheSim sim(cache::CacheConfig::forSize(
            cache_bytes, page_bytes, ways, false));
        total += sim.run(gen);
    }
    return total;
}

/**
 * Run @p processors trace CPUs on a full event-driven system, each
 * executing @p refs_per_cpu references of the atum2 mix with distinct
 * seeds, and return the aggregate result.
 */
inline core::RunResult
runVmpSystem(std::uint32_t processors, std::uint64_t refs_per_cpu,
             const cache::CacheConfig &cache_cfg,
             std::uint64_t seed_base = 1000, bool share_kernel = false)
{
    core::VmpConfig cfg;
    cfg.processors = processors;
    cfg.cache = cache_cfg;
    cfg.memBytes = MiB(8);
    core::VmpSystem system(cfg);

    std::vector<std::unique_ptr<trace::SyntheticGen>> gens;
    std::vector<trace::RefSource *> sources;
    for (std::uint32_t i = 0; i < processors; ++i) {
        auto workload = trace::workloadConfig("atum2");
        workload.totalRefs = refs_per_cpu;
        workload.seed = seed_base + i;
        // Distinct ASIDs per processor; optionally a private kernel
        // image so only bus queueing (not data contention) is measured.
        workload.asidBase = static_cast<Asid>(1 + i * 8);
        if (!share_kernel)
            workload.kernelOffset = static_cast<Addr>(i) * 0x20'0000;
        gens.push_back(
            std::make_unique<trace::SyntheticGen>(workload));
        sources.push_back(gens.back().get());
    }
    return system.runTraces(sources);
}

} // namespace vmp::bench

#endif // VMP_BENCH_BENCH_UTIL_HH
