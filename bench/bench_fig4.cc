/**
 * @file
 * Regenerates Figure 4: "Cache Miss Ratio and Cache Size" — cold-start
 * miss ratios of a 4-way set associative cache for cache sizes 64K to
 * 256K and page sizes 128/256/512 bytes, averaged over the four
 * ATUM-like traces (the paper's were four VAX 8200 ATUM traces of
 * 358k-540k references). Also reports the per-trace breakdown and the
 * operating-system share of references and misses (paper: ~25% of
 * references, ~50% of misses).
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "sim/stats.hh"
#include "trace/analyzer.hh"

int
main()
{
    using namespace vmp;

    bench::banner("Figure 4", "Cache Miss Ratio vs Cache Size "
                              "(4-way, cold start, four ATUM-like "
                              "traces)");

    const std::uint64_t sizes[] = {KiB(64), KiB(128), KiB(256)};
    const std::uint32_t pages[] = {128, 256, 512};

    TableWriter table("Figure 4 series: miss ratio (%)");
    table.columns({"Cache size", "128B pages", "256B pages",
                   "512B pages"});
    for (const auto size : sizes) {
        auto &row = table.row().cell(std::to_string(size / 1024) + "K");
        for (const auto page : pages)
            row.cell(bench::runFig4Point(size, page).missRatio() * 100,
                     3);
    }
    table.print(std::cout);
    std::cout << "Paper anchor: 256-byte pages, 128K cache -> 0.24% "
                 "miss ratio.\n\n";

    TableWriter per_trace("Per-trace breakdown (256B pages, 128K)");
    per_trace.columns({"Trace", "Refs", "Miss %", "OS ref %",
                       "OS miss share %"});
    for (const auto &name : trace::workloadNames()) {
        trace::SyntheticGen gen(trace::workloadConfig(name));
        core::FastCacheSim sim(
            cache::CacheConfig::forSize(KiB(128), 256, 4, false));
        const auto result = sim.run(gen);
        per_trace.row()
            .cell(name)
            .cell(result.refs)
            .cell(result.missRatio() * 100, 3)
            .cell(100.0 * static_cast<double>(result.supervisorRefs) /
                      static_cast<double>(result.refs),
                  1)
            .cell(result.supervisorMissShare() * 100, 1);
    }
    per_trace.print(std::cout);
    std::cout
        << "Paper: \"operating system references account for "
           "approximately 25% of the references\n"
           "and 50% of the misses\".\n\n";

    // Cold vs warm start: rerun each trace through the already-warm
    // cache to separate compulsory misses from steady-state behaviour.
    TableWriter warm("Cold vs warm start (256B pages): compulsory-miss "
                     "share of the short traces");
    warm.columns({"Cache size", "Cold miss %", "Warm miss %",
                  "Compulsory share %"});
    for (const auto size : sizes) {
        core::FastSimResult cold_total, warm_total;
        for (const auto &name : trace::workloadNames()) {
            core::FastCacheSim sim(
                cache::CacheConfig::forSize(size, 256, 4, false));
            trace::SyntheticGen cold_gen(trace::workloadConfig(name));
            cold_total += sim.run(cold_gen);
            sim.resetStats();
            auto rerun_cfg = trace::workloadConfig(name);
            rerun_cfg.seed += 1; // a different sample, same process
            trace::SyntheticGen warm_gen(rerun_cfg);
            warm_total += sim.run(warm_gen);
        }
        const double cold = cold_total.missRatio() * 100;
        const double warm_pct = warm_total.missRatio() * 100;
        warm.row()
            .cell(std::to_string(size / 1024) + "K")
            .cell(cold, 3)
            .cell(warm_pct, 3)
            .cell(100.0 * (cold - warm_pct) / cold, 1);
    }
    warm.print(std::cout);
    std::cout << "The paper's Figure 4 is cold-start over 358k-540k "
                 "references; a large fraction of those\nmisses are "
                 "compulsory, which is why its miss ratios resemble "
                 "TLB rates.\n";
    return 0;
}
