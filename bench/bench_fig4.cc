/**
 * @file
 * Regenerates Figure 4: "Cache Miss Ratio and Cache Size" — cold-start
 * miss ratios of a 4-way set associative cache for cache sizes 64K to
 * 256K and page sizes 128/256/512 bytes, averaged over the four
 * ATUM-like traces (the paper's were four VAX 8200 ATUM traces of
 * 358k-540k references). Also reports the per-trace breakdown and the
 * operating-system share of references and misses (paper: ~25% of
 * references, ~50% of misses).
 *
 * The {cache size x page size x workload} grid is embarrassingly
 * parallel and runs on the multi-threaded sweep driver (--threads N;
 * results are identical to the serial run for any thread count). A
 * BENCH_fig4.json artifact is written alongside the tables.
 */

#include <chrono>
#include <iostream>

#include "bench/bench_util.hh"
#include "sim/stats.hh"
#include "trace/analyzer.hh"

int
main(int argc, char **argv)
{
    using namespace vmp;
    const auto opts = bench::parseBenchOptions("fig4", argc, argv);
    bench::Artifact artifact("fig4", opts);

    bench::banner("Figure 4", "Cache Miss Ratio vs Cache Size "
                              "(4-way, cold start, four ATUM-like "
                              "traces)");

    const std::vector<std::uint64_t> sizes = {KiB(64), KiB(128),
                                              KiB(256)};
    const std::vector<std::uint32_t> pages = {128, 256, 512};

    const auto sweep_start = std::chrono::steady_clock::now();
    const bench::Fig4Grid grid(sizes, pages, 4, opts.threads);
    const double sweep_s =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - sweep_start)
            .count();
    artifact.hostInfo("sweep_threads",
                      Json(std::uint64_t{
                          core::sweepThreads(opts.threads)}));
    artifact.hostInfo("sweep_wall_clock_s", Json(sweep_s));

    TableWriter table("Figure 4 series: miss ratio (%)");
    table.columns({"Cache size", "128B pages", "256B pages",
                   "512B pages"});
    for (std::size_t s = 0; s < sizes.size(); ++s) {
        auto &row =
            table.row().cell(std::to_string(sizes[s] / 1024) + "K");
        for (std::size_t p = 0; p < pages.size(); ++p) {
            const auto &point = grid.point(s, p);
            row.cell(point.missRatio() * 100, 3);
            artifact.add(
                std::to_string(sizes[s] / 1024) + "K/" +
                    std::to_string(pages[p]) + "B",
                bench::cacheConfigJson(sizes[s], pages[p], 4),
                bench::fastResultJson(point));
        }
    }
    table.print(std::cout);
    std::cout << "Paper anchor: 256-byte pages, 128K cache -> 0.24% "
                 "miss ratio.\n";
    std::cout << "(sweep: " << grid.sizes().size() * grid.pages().size()
              << " points x 4 traces on "
              << core::sweepThreads(opts.threads) << " thread(s), "
              << sweep_s << " s)\n\n";

    TableWriter per_trace("Per-trace breakdown (256B pages, 128K)");
    per_trace.columns({"Trace", "Refs", "Miss %", "OS ref %",
                       "OS miss share %"});
    {
        // One cell per trace at the anchor geometry, also parallel.
        const auto cells = core::fig4Cells({KiB(128)}, {256}, 4);
        core::SweepOptions sweep_opts;
        sweep_opts.threads = opts.threads;
        const auto results = core::runSweep(cells, sweep_opts);
        const auto names = trace::workloadNames();
        for (std::size_t w = 0; w < names.size(); ++w) {
            const auto &result = results[w];
            per_trace.row()
                .cell(names[w])
                .cell(result.refs)
                .cell(result.missRatio() * 100, 3)
                .cell(100.0 *
                          static_cast<double>(result.supervisorRefs) /
                          static_cast<double>(result.refs),
                      1)
                .cell(result.supervisorMissShare() * 100, 1);
            Json metrics = bench::fastResultJson(result);
            metrics["os_ref_share"] =
                Json(static_cast<double>(result.supervisorRefs) /
                     static_cast<double>(result.refs));
            metrics["os_miss_share"] =
                Json(result.supervisorMissShare());
            Json config = bench::cacheConfigJson(KiB(128), 256, 4);
            config["trace"] = Json(names[w]);
            artifact.add("trace/" + names[w], std::move(config),
                         std::move(metrics));
        }
    }
    per_trace.print(std::cout);
    std::cout
        << "Paper: \"operating system references account for "
           "approximately 25% of the references\n"
           "and 50% of the misses\".\n\n";

    // Cold vs warm start: rerun each trace through the already-warm
    // cache to separate compulsory misses from steady-state behaviour.
    TableWriter warm("Cold vs warm start (256B pages): compulsory-miss "
                     "share of the short traces");
    warm.columns({"Cache size", "Cold miss %", "Warm miss %",
                  "Compulsory share %"});
    for (const auto size : sizes) {
        core::FastSimResult cold_total, warm_total;
        for (const auto &name : trace::workloadNames()) {
            core::FastCacheSim sim(
                cache::CacheConfig::forSize(size, 256, 4, false));
            trace::SyntheticGen cold_gen(trace::workloadConfig(name));
            cold_total += sim.run(cold_gen);
            sim.resetStats();
            auto rerun_cfg = trace::workloadConfig(name);
            rerun_cfg.seed += 1; // a different sample, same process
            trace::SyntheticGen warm_gen(rerun_cfg);
            warm_total += sim.run(warm_gen);
        }
        const double cold = cold_total.missRatio() * 100;
        const double warm_pct = warm_total.missRatio() * 100;
        warm.row()
            .cell(std::to_string(size / 1024) + "K")
            .cell(cold, 3)
            .cell(warm_pct, 3)
            .cell(100.0 * (cold - warm_pct) / cold, 1);
        Json metrics = Json::object();
        metrics["cold_miss_ratio"] = Json(cold_total.missRatio());
        metrics["warm_miss_ratio"] = Json(warm_total.missRatio());
        metrics["compulsory_share"] =
            Json((cold - warm_pct) / cold);
        artifact.add("warm/" + std::to_string(size / 1024) + "K",
                     bench::cacheConfigJson(size, 256, 4),
                     std::move(metrics));
    }
    warm.print(std::cout);
    std::cout << "The paper's Figure 4 is cold-start over 358k-540k "
                 "references; a large fraction of those\nmisses are "
                 "compulsory, which is why its miss ratios resemble "
                 "TLB rates.\n";

    artifact.note("cold-start, 4-way, four ATUM-like synthetic "
                  "traces; paper anchor: 128K/256B -> 0.24%");
    artifact.write();
    return 0;
}
