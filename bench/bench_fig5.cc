/**
 * @file
 * Regenerates Figure 5: "Bus Utilization to Cache Miss Ratio" —
 * single-processor bus utilization as a function of the miss ratio for
 * the three page sizes, using the Table 2 average bus cost per miss.
 * Measured bus-utilization points from the event-driven simulator are
 * printed alongside — each with the closed MVA model's utilization
 * prediction fed from the row's measured load profile — and a
 * BENCH_fig5.json artifact is written. The bench exits non-zero if an
 * MVA utilization prediction drifts more than 15% from measurement.
 */

#include <cmath>
#include <iostream>

#include "analytic/models.hh"
#include "bench/bench_util.hh"
#include "sim/stats.hh"

int
main(int argc, char **argv)
{
    using namespace vmp;
    setInformEnabled(false);
    const auto opts = bench::parseBenchOptions("fig5", argc, argv);
    bench::Artifact artifact("fig5", opts);

    bench::banner("Figure 5",
                  "Bus Utilization vs Cache Miss Ratio (one CPU)");

    const analytic::BusModel model;

    TableWriter table("Figure 5 series: bus utilization (%)");
    table.columns({"Miss ratio (%)", "128B pages", "256B pages",
                   "512B pages"});
    for (double pct = 0.0; pct <= 2.001; pct += 0.2) {
        const double m = pct / 100.0;
        table.row()
            .cell(pct, 1)
            .cell(model.utilization(128, m) * 100, 2)
            .cell(model.utilization(256, m) * 100, 2)
            .cell(model.utilization(512, m) * 100, 2);
        for (const std::uint32_t page : {128u, 256u, 512u}) {
            Json config = Json::object();
            config["page_bytes"] = Json(std::uint64_t{page});
            config["miss_ratio"] = Json(m);
            Json metrics = Json::object();
            metrics["bus_utilization_model"] =
                Json(model.utilization(page, m));
            char label[48];
            std::snprintf(label, sizeof(label), "model/%uB/m=%.3f",
                          page, m);
            artifact.add(label, std::move(config),
                         std::move(metrics));
        }
    }
    table.print(std::cout);
    std::cout << "Paper anchor: 256B pages, miss ratio under 0.6% -> "
                 "bus utilization under 10%;\nmodel gives "
              << model.utilization(256, 0.006) * 100 << "%.\n\n";

    const analytic::MvaModel mva(opts.arbitration.discipline,
                                 opts.arbitration.priorityLevels);
    bool gate_ok = true;
    TableWriter validation(
        "Event-simulator validation (256B pages, atum2 mix)");
    validation.columns({"Cache", "Measured miss %", "Measured bus %",
                        "Model bus % at that miss ratio",
                        "MVA bus % (measured profile)"});
    for (const std::uint64_t size : {KiB(32), KiB(64), KiB(128)}) {
        const auto cfg =
            cache::CacheConfig::forSize(size, 256, 4, true);
        Json stats;
        const auto result = bench::runVmpSystem(
            1, 120'000, cfg, opts.seedBase, false, &stats,
            opts.arbitration);
        const auto load = bench::loadProfileOf(result);
        const auto mva_p = mva.predict(256, load, 1);
        validation.row()
            .cell(std::to_string(size / 1024) + "K")
            .cell(result.missRatio * 100, 3)
            .cell(result.busUtilization * 100, 2)
            .cell(model.utilization(256, result.missRatio) * 100, 2)
            .cell(mva_p.busUtilization * 100, 2);
        Json metrics = bench::runResultJson(result);
        metrics["bus_utilization_model"] =
            Json(model.utilization(256, result.missRatio));
        metrics["mva_bus_utilization"] = Json(mva_p.busUtilization);
        metrics["mva_in_domain"] = Json(mva_p.domain.inDomain());
        metrics["stats"] = std::move(stats);
        Json config = bench::cacheConfigJson(size, 256, 4);
        config["arbitration"] = Json(std::string(
            mem::arbitrationName(opts.arbitration.discipline)));
        artifact.add("measured/" + std::to_string(size / 1024) + "K",
                     std::move(config), std::move(metrics));
        const double err = result.busUtilization == 0.0
            ? 0.0
            : (mva_p.busUtilization - result.busUtilization) /
                result.busUtilization;
        if (!mva_p.domain.inDomain() || std::abs(err) > 0.15) {
            gate_ok = false;
            std::cerr << "MVA utilization off by " << err * 100
                      << "% at " << size / 1024 << "K\n";
        }
    }
    validation.print(std::cout);

    artifact.note("bus utilization per Table 2 average miss cost; "
                  "measured points from the event-driven simulator "
                  "(atum2, 120k refs)");
    artifact.note("mva_bus_utilization: closed MVA model fed with the "
                  "row's measured load profile (upgrade-aware service "
                  "demand); at one CPU with the paper profile it "
                  "coincides with the Figure 5 curve");
    artifact.write();
    return gate_ok ? 0 : 1;
}
