/**
 * @file
 * Memory-tier acceptance bench: gates the far-memory backing tier
 * (src/backing) behind hard pass/fail checks and regenerates its
 * headline numbers.
 *
 *  1. Mirror identity — a fixed two-CPU paging probe run with the
 *     default (Mirror) tier must reproduce the pre-tier simulator's
 *     fingerprint bit for bit: elapsed ticks, fault/page-in/page-out
 *     counts, image-plane counters and total bus transactions.
 *  2. Eviction-stall reduction — the same memory-pressure sweep run
 *     sync (Mirror) vs async must cut the miss path's eviction stall
 *     by at least 40%: page-outs complete at arena-accept speed while
 *     the reclaim engine drains dirty frames in pipelined batches.
 *  3. Backend comparison — the async sweep across LocalRam /
 *     RemoteNode / Disk media.
 *  4. Budget controller — a hog and a small-footprint space under the
 *     grant arbiter: epochs must run and grants must adapt toward the
 *     faulting space.
 *
 * Exit status is the number of failed gates (0 = all green), so CI
 * can run the binary directly.
 */

#include <iostream>
#include <string>

#include "backing/budget.hh"
#include "backing/memory_tier.hh"
#include "bench/bench_util.hh"
#include "cache/cache.hh"
#include "mem/phys_mem.hh"
#include "mem/vme_bus.hh"
#include "monitor/bus_monitor.hh"
#include "proto/controller.hh"
#include "sim/event.hh"
#include "sim/stats.hh"
#include "vm/vm_system.hh"

namespace
{

using namespace vmp;

/** Bus-master id of the tier's drain DMA engine (clear of the CPUs). */
constexpr std::uint32_t kDmaMaster = 64;

/** Two-CPU paging rig (the bench_vm rig with a configurable tier). */
struct VmRig
{
    explicit VmRig(const vm::VmConfig &vm_cfg = {},
                   std::uint32_t page_bytes = 256)
        : memory(MiB(2), page_bytes), bus(events, memory),
          vm(events, memory, vm_cfg)
    {
        translator.bind(vm);
        // Async drains ride the bus model by default: page transfers
        // go through a DMA engine and contend with miss traffic, as
        // on the real machine. Mirror mode ignores the attachment.
        if (vm_cfg.tier.mode == backing::TierMode::Async)
            vm.tier().attachDma(bus, kDmaMaster);
        for (CpuId id = 0; id < 2; ++id) {
            caches.push_back(std::make_unique<cache::Cache>(
                cache::CacheConfig{page_bytes, 4, 64, true}));
            monitors.push_back(std::make_unique<monitor::BusMonitor>(
                id, MiB(2), page_bytes));
            controllers.push_back(
                std::make_unique<proto::CacheController>(
                    id, events, *caches[id], *monitors[id], bus,
                    translator));
            bus.attachWatcher(id, *monitors[id]);
            vm.attach(*controllers[id]);
        }
        for (auto &c : controllers) {
            auto *ctl = c.get();
            ctl->busMonitor().setInterruptLine([this, ctl] {
                events.scheduleIn(1, [ctl] {
                    ctl->serviceInterrupts([] {});
                });
            });
        }
    }

    /**
     * Write one word and run to completion. Steps the queue instead
     * of draining it: a started budget controller keeps a recurring
     * epoch event queued, so the queue never empties.
     */
    void
    write(std::size_t cpu, Asid asid, Addr va, std::uint32_t value)
    {
        bool done = false;
        controllers[cpu]->writeWord(asid, va, value, false,
                                    [&] { done = true; });
        while (!done) {
            if (!events.step())
                fatal("memtier bench: write did not complete");
        }
    }

    EventQueue events;
    mem::PhysMem memory;
    mem::VmeBus bus;
    vm::VmTranslator translator;
    vm::VmSystem vm;
    std::vector<std::unique_ptr<cache::Cache>> caches;
    std::vector<std::unique_ptr<monitor::BusMonitor>> monitors;
    std::vector<std::unique_ptr<proto::CacheController>> controllers;
};

/** Everything the mirror-identity gate compares. */
struct Fingerprint
{
    Tick elapsed = 0;
    std::uint64_t faults = 0;
    std::uint64_t pageIns = 0;
    std::uint64_t pageOuts = 0;
    std::uint64_t imageStores = 0;
    std::uint64_t imageFetches = 0;
    std::uint64_t pagesHeld = 0;
    std::uint64_t busTx = 0;
};

/**
 * The fixed probe behind the fingerprint: two CPUs sweep 640 user
 * pages twice (well past the ~508 usable 4K frames of 2 MiB), spaces
 * per CPU, thrashing the pageout daemon and the image plane.
 */
Fingerprint
runProbe(const vm::VmConfig &vm_cfg)
{
    VmRig rig(vm_cfg);
    for (std::uint32_t sweep = 0; sweep < 2; ++sweep) {
        for (std::uint32_t i = 0; i < 640; ++i) {
            const std::size_t cpu = i % 2;
            rig.write(cpu, static_cast<Asid>(1 + cpu),
                      vm::userBase +
                          static_cast<Addr>(i) * vm::vmPageBytes,
                      i + sweep);
        }
    }
    Fingerprint fp;
    fp.elapsed = rig.events.now();
    fp.faults = rig.vm.pageFaults().value();
    fp.pageIns = rig.vm.pageIns().value();
    fp.pageOuts = rig.vm.pageOuts().value();
    fp.imageStores = rig.vm.backingStore().stores().value();
    fp.imageFetches = rig.vm.backingStore().fetches().value();
    fp.pagesHeld = rig.vm.backingStore().pagesHeld();
    fp.busTx = rig.bus.transactions().value();
    return fp;
}

/** Pre-tier fingerprint of the probe, captured at the commit that
 *  introduced the tier (Mirror mode must reproduce it forever). */
constexpr Fingerprint kBaseline{
    1082521510, 1280, 1280, 776, 776, 640, 640, 27557};

/** One memory-pressure sweep: a single CPU writes @p pages distinct
 *  4K pages once, far past physical capacity. */
struct PressureResult
{
    Tick elapsed = 0;
    double stallNs = 0.0;
    std::uint64_t stalledPageIns = 0;
    std::uint64_t pageOuts = 0;
    std::uint64_t storeStalls = 0;
    std::uint64_t drainBatches = 0;
    std::uint64_t pagesDrained = 0;
    double storeStallNs = 0.0;
};

PressureResult
runPressure(const vm::VmConfig &vm_cfg, std::uint32_t pages)
{
    VmRig rig(vm_cfg);
    for (std::uint32_t i = 0; i < pages; ++i)
        rig.write(0, 1,
                  vm::userBase +
                      static_cast<Addr>(i) * vm::vmPageBytes,
                  i);
    // Let the reclaim engine finish its tail of drains, then flush
    // the residue parked below the dirty high-water mark so drained
    // pages account for every page-out.
    rig.events.run();
    if (auto *arena = rig.vm.tier().arena()) {
        while (arena->dirtyCount() > 0 ||
               rig.vm.tier().draining()) {
            rig.vm.tier().drainNow();
            rig.events.run();
        }
    }
    PressureResult r;
    r.elapsed = rig.events.now();
    r.stallNs = rig.vm.evictionStallNs();
    r.stalledPageIns = rig.vm.stalledPageIns().value();
    r.pageOuts = rig.vm.pageOuts().value();
    r.storeStalls = rig.vm.tier().storeStalls().value();
    r.drainBatches = rig.vm.tier().drainBatches().value();
    r.pagesDrained = rig.vm.tier().pagesDrained().value();
    r.storeStallNs = rig.vm.tier().storeStallNs();
    return r;
}

vm::VmConfig
asyncVmConfig(std::uint32_t arena_frames = 64)
{
    vm::VmConfig cfg;
    cfg.tier.mode = backing::TierMode::Async;
    cfg.tier.arenaFrames = arena_frames;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vmp;
    setInformEnabled(false);
    const auto opts = bench::parseBenchOptions("memtier", argc, argv);
    bench::Artifact artifact("memtier", opts);
    int failures = 0;
    const auto gate = [&failures](bool pass, const std::string &what) {
        std::cout << (pass ? "[gate PASS] " : "[gate FAIL] ") << what
                  << "\n";
        if (!pass)
            ++failures;
        return pass;
    };

    bench::banner("Memory tier",
                  "Far-memory backing tier: mirror identity, async "
                  "eviction pipeline, backends, budget");

    // --- 1. mirror identity ------------------------------------------
    const auto mirror = runProbe(vm::VmConfig{});
    TableWriter identity("Mirror-mode fingerprint vs pre-tier "
                         "baseline (two-CPU 2x640-page probe)");
    identity.columns({"Quantity", "Baseline", "Mirror tier"});
    const auto idrow = [&](const char *name, std::uint64_t want,
                           std::uint64_t got) {
        identity.row().cell(name).cell(want).cell(got);
        return want == got;
    };
    bool identical = true;
    identical &= idrow("elapsed_ticks", kBaseline.elapsed,
                       mirror.elapsed);
    identical &= idrow("page_faults", kBaseline.faults, mirror.faults);
    identical &= idrow("page_ins", kBaseline.pageIns, mirror.pageIns);
    identical &= idrow("page_outs", kBaseline.pageOuts,
                       mirror.pageOuts);
    identical &= idrow("image_stores", kBaseline.imageStores,
                       mirror.imageStores);
    identical &= idrow("image_fetches", kBaseline.imageFetches,
                       mirror.imageFetches);
    identical &= idrow("pages_held", kBaseline.pagesHeld,
                       mirror.pagesHeld);
    identical &= idrow("bus_transactions", kBaseline.busTx,
                       mirror.busTx);
    identity.print(std::cout);
    gate(identical, "mirror mode reproduces the pre-tier fingerprint "
                    "bit for bit");
    {
        Json config = Json::object();
        config["mode"] = Json(std::string("mirror"));
        Json metrics = Json::object();
        metrics["elapsed_ticks"] =
            Json(std::uint64_t{mirror.elapsed});
        metrics["page_faults"] = Json(mirror.faults);
        metrics["page_outs"] = Json(mirror.pageOuts);
        metrics["image_stores"] = Json(mirror.imageStores);
        metrics["image_fetches"] = Json(mirror.imageFetches);
        metrics["bus_transactions"] = Json(mirror.busTx);
        metrics["identical"] = Json(identical);
        artifact.add("mirror_identity", std::move(config),
                     std::move(metrics));
    }

    // --- 2. eviction-stall reduction ---------------------------------
    // 1024 pages over ~508 usable frames: a 2x-capacity working set
    // whose evicted volume also runs ~8x through the 64-frame arena.
    constexpr std::uint32_t kPressurePages = 1024;
    const auto sync_run = runPressure(vm::VmConfig{}, kPressurePages);
    const auto async_run =
        runPressure(asyncVmConfig(), kPressurePages);
    const double reduction = sync_run.stallNs == 0.0
        ? 0.0
        : 1.0 - async_run.stallNs / sync_run.stallNs;

    TableWriter stall("Miss-path eviction stall, sync (mirror) vs "
                      "async tier (1024-page sweep, 2x capacity)");
    stall.columns({"Pipeline", "Stall (ms)", "Stalled page-ins",
                   "Page-outs", "Store stalls", "Drain batches"});
    stall.row()
        .cell("sync (mirror)")
        .cell(sync_run.stallNs / 1e6, 2)
        .cell(sync_run.stalledPageIns)
        .cell(sync_run.pageOuts)
        .cell(sync_run.storeStalls)
        .cell(sync_run.drainBatches);
    stall.row()
        .cell("async")
        .cell(async_run.stallNs / 1e6, 2)
        .cell(async_run.stalledPageIns)
        .cell(async_run.pageOuts)
        .cell(async_run.storeStalls)
        .cell(async_run.drainBatches);
    stall.print(std::cout);
    std::cout << "Eviction-stall reduction: " << (reduction * 100.0)
              << "% (gate: >= 40%)\n\n";
    gate(reduction >= 0.40,
         "async pipeline cuts miss-path eviction stall by >= 40%");
    gate(async_run.pagesDrained >= async_run.pageOuts &&
             async_run.drainBatches > 0,
         "async reclaim engine drained every page-out in batches");
    for (const bool is_async : {false, true}) {
        const auto &r = is_async ? async_run : sync_run;
        Json config = Json::object();
        config["mode"] =
            Json(std::string(is_async ? "async" : "mirror"));
        config["pages"] = Json(std::uint64_t{kPressurePages});
        Json metrics = Json::object();
        metrics["elapsed_us"] = Json(toUsec(r.elapsed));
        metrics["eviction_stall_ns"] = Json(r.stallNs);
        metrics["stalled_page_ins"] = Json(r.stalledPageIns);
        metrics["page_outs"] = Json(r.pageOuts);
        metrics["store_stalls"] = Json(r.storeStalls);
        metrics["store_stall_ns"] = Json(r.storeStallNs);
        metrics["drain_batches"] = Json(r.drainBatches);
        metrics["pages_drained"] = Json(r.pagesDrained);
        if (is_async)
            metrics["stall_reduction"] = Json(reduction);
        artifact.add(std::string("pressure/") +
                         (is_async ? "async" : "sync"),
                     std::move(config), std::move(metrics));
    }

    // --- 3. backend comparison ---------------------------------------
    TableWriter backends("Async tier across backend media "
                         "(same 1024-page sweep)");
    backends.columns({"Backend", "Elapsed (ms)", "Stall (ms)",
                      "Store stalls", "Pages drained"});
    for (const auto kind :
         {backing::BackendKind::LocalRam,
          backing::BackendKind::RemoteNode,
          backing::BackendKind::Disk}) {
        auto cfg = asyncVmConfig();
        cfg.tier.defaultBackend = kind;
        const auto r = runPressure(cfg, kPressurePages);
        backends.row()
            .cell(backing::backendName(kind))
            .cell(toUsec(r.elapsed) / 1000.0, 2)
            .cell(r.stallNs / 1e6, 2)
            .cell(r.storeStalls)
            .cell(r.pagesDrained);
        Json config = Json::object();
        config["mode"] = Json(std::string("async"));
        config["backend"] =
            Json(std::string(backing::backendName(kind)));
        config["pages"] = Json(std::uint64_t{kPressurePages});
        Json metrics = Json::object();
        metrics["elapsed_us"] = Json(toUsec(r.elapsed));
        metrics["eviction_stall_ns"] = Json(r.stallNs);
        metrics["store_stalls"] = Json(r.storeStalls);
        metrics["pages_drained"] = Json(r.pagesDrained);
        artifact.add(std::string("backend/") +
                         backing::backendName(kind),
                     std::move(config), std::move(metrics));
    }
    backends.print(std::cout);
    std::cout << "(Page-ins of never-stored pages pay the backend "
                 "transfer in every mode, so faster media shorten\n"
                 "the demand path as well as the drain tail.)\n\n";

    // --- 4. budget controller ----------------------------------------
    // A hog space streams 600 pages while a small space re-touches 16:
    // under the controller the hog's sqrt-pressure share must grow.
    backing::BudgetConfig bc;
    bc.totalFrames = 508; // usable 4K frames of the 2 MiB rig
    bc.epochNs = usec(2000);
    std::uint64_t faults_without = 0;
    std::uint64_t faults_with = 0;
    std::uint64_t epochs = 0;
    std::uint64_t grant_changes = 0;
    std::uint32_t hog_grant = 0;
    std::uint32_t small_grant = 0;
    {
        VmRig rig(asyncVmConfig());
        for (std::uint32_t i = 0; i < 600; ++i) {
            rig.write(0, 1,
                      vm::userBase +
                          static_cast<Addr>(i) * vm::vmPageBytes,
                      i);
            rig.write(1, 9,
                      vm::userBase + static_cast<Addr>(i % 16) *
                          vm::vmPageBytes,
                      i);
        }
        rig.events.run();
        faults_without = rig.vm.pageFaults().value();
    }
    {
        VmRig rig(asyncVmConfig());
        backing::BudgetController budget(rig.events, bc);
        rig.vm.setBudgetController(&budget);
        budget.start();
        for (std::uint32_t i = 0; i < 600; ++i) {
            rig.write(0, 1,
                      vm::userBase +
                          static_cast<Addr>(i) * vm::vmPageBytes,
                      i);
            rig.write(1, 9,
                      vm::userBase + static_cast<Addr>(i % 16) *
                          vm::vmPageBytes,
                      i);
        }
        budget.stop();
        rig.events.run();
        faults_with = rig.vm.pageFaults().value();
        epochs = budget.epochs().value();
        grant_changes = budget.grantChanges().value();
        // Client 0 is the first space to fault (the hog, asid 1).
        if (budget.clientCount() == 2) {
            const bool hog_first = budget.clientName(0) == "asid1";
            hog_grant = budget.grantOf(hog_first ? 0 : 1);
            small_grant = budget.grantOf(hog_first ? 1 : 0);
        }
    }

    TableWriter budget_table("Budget controller (508-frame pool, "
                             "2 ms epochs, hog vs 16-page space)");
    budget_table.columns({"Run", "Faults", "Epochs", "Grant changes",
                          "Hog grant", "Small grant"});
    budget_table.row()
        .cell("uncontrolled")
        .cell(faults_without)
        .cell(std::uint64_t{0})
        .cell(std::uint64_t{0})
        .cell(std::uint64_t{0})
        .cell(std::uint64_t{0});
    budget_table.row()
        .cell("budget")
        .cell(faults_with)
        .cell(epochs)
        .cell(grant_changes)
        .cell(std::uint64_t{hog_grant})
        .cell(std::uint64_t{small_grant});
    budget_table.print(std::cout);
    gate(epochs > 0, "budget controller epochs ran during the sweep");
    gate(grant_changes > 0 && hog_grant > small_grant,
         "grants adapted toward the faulting space");
    {
        Json config = Json::object();
        config["total_frames"] =
            Json(std::uint64_t{bc.totalFrames});
        config["epoch_ns"] = Json(std::uint64_t{bc.epochNs});
        Json metrics = Json::object();
        metrics["faults_uncontrolled"] = Json(faults_without);
        metrics["faults_budget"] = Json(faults_with);
        metrics["epochs"] = Json(epochs);
        metrics["grant_changes"] = Json(grant_changes);
        metrics["hog_grant"] = Json(std::uint64_t{hog_grant});
        metrics["small_grant"] = Json(std::uint64_t{small_grant});
        artifact.add("budget/hog_vs_small", std::move(config),
                     std::move(metrics));
    }

    artifact.note("mirror fingerprint captured at the pre-tier "
                  "commit; any drift is a timing regression");
    artifact.note("gates: mirror identity, >=40% stall reduction, "
                  "full drain, budget epochs+adaptation");
    artifact.write();

    std::cout << "\n"
              << (failures == 0 ? "ALL GATES PASSED"
                                : "GATE FAILURES PRESENT")
              << " (" << failures << " failed)\n";
    return failures;
}
