/**
 * @file
 * Regenerates Table 1: "Elapsed Time and Bus Time per Cache Miss" —
 * page sizes 128/256/512 bytes, replaced page unmodified or modified.
 * The analytic model is cross-checked against the event-driven
 * simulator by provoking a single miss of each kind and measuring the
 * actual elapsed handler time.
 */

#include <cstdio>
#include <iostream>

#include "analytic/models.hh"
#include "bench/bench_util.hh"
#include "cache/cache.hh"
#include "mem/phys_mem.hh"
#include "mem/vme_bus.hh"
#include "monitor/bus_monitor.hh"
#include "proto/controller.hh"
#include "sim/event.hh"
#include "sim/stats.hh"

namespace
{

using namespace vmp;

/** Measure one miss of each kind on the event-driven model. */
double
measureMissElapsedUs(std::uint32_t page_bytes, bool dirty_victim)
{
    EventQueue events;
    mem::PhysMem memory(1 << 20, page_bytes);
    mem::VmeBus bus(events, memory);
    proto::FixedTranslator translator(page_bytes);
    cache::Cache cache(cache::CacheConfig{page_bytes, 1, 8, true});
    monitor::BusMonitor monitor(0, 1 << 20, page_bytes);
    proto::CacheController controller(0, events, cache, monitor, bus,
                                      translator);
    bus.attachWatcher(0, monitor);

    const cache::SlotFlags prot = static_cast<cache::SlotFlags>(
        cache::FlagSupWritable | cache::FlagUserReadable |
        cache::FlagUserWritable);
    // vaddrs mapping to the same (direct-mapped) set.
    const Addr conflict_stride = 8ull * page_bytes;
    translator.map(1, 0x0, 0x10000, prot);
    translator.map(1, conflict_stride, 0x20000, prot);

    bool done = false;
    if (dirty_victim) {
        controller.writeWord(1, 0x0, 1, false, [&] { done = true; });
        events.run();
    } else {
        controller.access(1, 0x0, false, false,
                          [&](proto::AccessOutcome) { done = true; });
        events.run();
    }

    // The conflicting access evicts the (clean or dirty) victim.
    const Tick start = events.now();
    done = false;
    controller.access(1, conflict_stride, false, false,
                      [&](proto::AccessOutcome) { done = true; });
    events.run();
    if (!done)
        fatal("bench_table1: miss did not complete");
    return toUsec(events.now() - start);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vmp;
    const auto opts = bench::parseBenchOptions("table1", argc, argv);
    bench::Artifact artifact("table1", opts);

    bench::banner("Table 1",
                  "Elapsed Time and Bus Time per Cache Miss");

    const analytic::MissCostModel model;

    // Paper's published values for side-by-side comparison.
    const double paper_elapsed[2][3] = {{17, 20, 26}, {17, 23, 36}};
    const double paper_bus[2][3] = {{3.5, 6.6, 13.0},
                                    {7.0, 13.2, 26.0}};

    TableWriter table("Table 1: per-miss cost");
    table.columns({"Page (bytes)", "Replaced Page", "Elapsed (us)",
                   "Bus (us)", "Sim Elapsed (us)", "Paper Elapsed",
                   "Paper Bus"});
    const std::uint32_t pages[3] = {128, 256, 512};
    for (int dirty = 0; dirty <= 1; ++dirty) {
        for (int p = 0; p < 3; ++p) {
            const auto cost = model.perMiss(pages[p], dirty != 0);
            const double sim =
                measureMissElapsedUs(pages[p], dirty != 0);
            table.row()
                .cell(std::uint64_t{pages[p]})
                .cell(dirty ? "modified" : "not modified")
                .cell(cost.elapsedUs, 1)
                .cell(cost.busUs, 1)
                .cell(sim, 1)
                .cell(paper_elapsed[dirty][p], 1)
                .cell(paper_bus[dirty][p], 1);

            Json config = Json::object();
            config["page_bytes"] = Json(std::uint64_t{pages[p]});
            config["victim"] =
                Json(dirty ? "modified" : "not-modified");
            Json metrics = Json::object();
            metrics["elapsed_us_per_miss"] = Json(cost.elapsedUs);
            metrics["bus_us_per_miss"] = Json(cost.busUs);
            metrics["sim_elapsed_us_per_miss"] = Json(sim);
            metrics["paper_elapsed_us"] =
                Json(paper_elapsed[dirty][p]);
            metrics["paper_bus_us"] = Json(paper_bus[dirty][p]);
            artifact.add(std::to_string(pages[p]) + "B/" +
                             (dirty ? "dirty" : "clean"),
                         std::move(config), std::move(metrics));
        }
    }
    table.print(std::cout);

    std::cout << "Model: 13.5 us serial software per miss; up to "
              << "3.4 us of bookkeeping overlaps the victim\n"
              << "write-back; transfers at 300 ns first word + 100 ns "
              << "per subsequent 32-bit word.\n";

    artifact.note("per-miss cost: analytic model cross-checked by "
                  "provoking one miss of each kind on the "
                  "event-driven model");
    artifact.write();
    return 0;
}
