/**
 * @file
 * Regenerates the Section 6 comparison: VMP's software-controlled
 * big-page ownership caches vs conventional snoopy schemes
 * (write-invalidate and write-update) with small lines. For the same
 * four ATUM-like traces it reports miss ratio, bus occupancy per
 * reference, and snoop/tag-port pressure — the three axes on which the
 * paper argues the trade-off.
 */

#include <iostream>

#include "analytic/models.hh"
#include "bench/bench_util.hh"
#include "sim/stats.hh"
#include "snoopy/snoopy.hh"

namespace
{

using namespace vmp;

/** VMP-side numbers for one page size, derived from Figure 4 plus the
 *  Table 2 bus cost. */
struct VmpPoint
{
    double missPct = 0.0;
    double busNsPerRef = 0.0;
};

VmpPoint
vmpPoint(std::uint32_t page_bytes, std::uint64_t cache_bytes)
{
    const auto result = bench::runFig4Point(cache_bytes, page_bytes);
    VmpPoint point;
    point.missPct = result.missRatio() * 100;
    // Average bus time per miss (Table 2 rule: 75% clean victims).
    const analytic::MissCostModel costs;
    point.busNsPerRef = result.missRatio() *
        costs.average(page_bytes).busUs * 1000.0;
    return point;
}

snoopy::SnoopyResult
snoopyPoint(snoopy::Protocol protocol, std::uint32_t line_bytes,
            std::uint64_t cache_bytes)
{
    snoopy::SnoopyConfig cfg;
    cfg.protocol = protocol;
    cfg.lineBytes = line_bytes;
    cfg.cacheBytes = cache_bytes;
    cfg.ways = 4;
    cfg.processors = 1;
    snoopy::SnoopySystem system(cfg);
    snoopy::SnoopyResult total;
    for (const auto &workload : trace::allWorkloads()) {
        snoopy::SnoopySystem fresh(cfg);
        trace::SyntheticGen gen(workload);
        const auto result = fresh.run({&gen});
        total.refs += result.refs;
        total.misses += result.misses;
        total.busTicks += result.busTicks;
        total.invalidations += result.invalidations;
        total.updatesBroadcast += result.updatesBroadcast;
        total.writeThroughs += result.writeThroughs;
        total.writeBacks += result.writeBacks;
        total.snoopProbes += result.snoopProbes;
    }
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vmp;
    const auto opts = bench::parseBenchOptions("baseline", argc,
                                               argv);
    bench::Artifact artifact("baseline", opts);

    bench::banner("Section 6", "VMP vs snoopy baselines (same traces, "
                               "128K caches, uniprocessor bus "
                               "traffic)");

    TableWriter table("Bus traffic comparison");
    table.columns({"Scheme", "Miss %", "Bus ns/ref",
                   "Bus events", "Per-ref snoop lookups"});

    for (const std::uint32_t page : {128u, 256u, 512u}) {
        const auto point = vmpPoint(page, KiB(128));
        table.row()
            .cell("VMP " + std::to_string(page) + "B pages")
            .cell(point.missPct, 3)
            .cell(point.busNsPerRef, 1)
            .cell("~1 per miss")
            .cell("0 (bus monitor, no tag sharing)");

        Json config = Json::object();
        config["scheme"] = Json("vmp");
        config["page_bytes"] = Json(std::uint64_t{page});
        config["cache_bytes"] = Json(KiB(128));
        Json metrics = Json::object();
        metrics["miss_ratio"] = Json(point.missPct / 100.0);
        metrics["bus_ns_per_ref"] = Json(point.busNsPerRef);
        artifact.add("vmp/" + std::to_string(page) + "B",
                     std::move(config), std::move(metrics));
    }
    for (const std::uint32_t line : {16u, 32u, 64u}) {
        const auto result = snoopyPoint(
            snoopy::Protocol::WriteInvalidate, line, KiB(128));
        table.row()
            .cell("snoopy WI " + std::to_string(line) + "B lines")
            .cell(result.missRatio() * 100, 3)
            .cell(result.busNsPerRef(), 1)
            .cell(result.misses + result.invalidations)
            .cell("every bus tx probes every cache");

        Json config = Json::object();
        config["scheme"] = Json("snoopy-write-invalidate");
        config["line_bytes"] = Json(std::uint64_t{line});
        config["cache_bytes"] = Json(KiB(128));
        Json metrics = Json::object();
        metrics["miss_ratio"] = Json(result.missRatio());
        metrics["bus_ns_per_ref"] = Json(result.busNsPerRef());
        metrics["bus_events"] =
            Json(result.misses + result.invalidations);
        metrics["snoop_probes"] = Json(result.snoopProbes);
        artifact.add("snoopy-wi/" + std::to_string(line) + "B",
                     std::move(config), std::move(metrics));
    }
    {
        const auto result = snoopyPoint(snoopy::Protocol::WriteUpdate,
                                        32, KiB(128));
        table.row()
            .cell("snoopy WU 32B lines")
            .cell(result.missRatio() * 100, 3)
            .cell(result.busNsPerRef(), 1)
            .cell(result.misses + result.updatesBroadcast)
            .cell("every bus tx probes every cache");

        Json config = Json::object();
        config["scheme"] = Json("snoopy-write-update");
        config["line_bytes"] = Json(std::uint64_t{32});
        config["cache_bytes"] = Json(KiB(128));
        Json metrics = Json::object();
        metrics["miss_ratio"] = Json(result.missRatio());
        metrics["bus_ns_per_ref"] = Json(result.busNsPerRef());
        metrics["bus_events"] =
            Json(result.misses + result.updatesBroadcast);
        metrics["snoop_probes"] = Json(result.snoopProbes);
        artifact.add("snoopy-wu/32B", std::move(config),
                     std::move(metrics));
    }
    {
        const auto result = snoopyPoint(snoopy::Protocol::WriteOnce,
                                        32, KiB(128));
        table.row()
            .cell("snoopy write-once 32B (Goodman)")
            .cell(result.missRatio() * 100, 3)
            .cell(result.busNsPerRef(), 1)
            .cell(result.misses + result.writeThroughs)
            .cell("every bus tx probes every cache");

        Json config = Json::object();
        config["scheme"] = Json("snoopy-write-once");
        config["line_bytes"] = Json(std::uint64_t{32});
        config["cache_bytes"] = Json(KiB(128));
        Json metrics = Json::object();
        metrics["miss_ratio"] = Json(result.missRatio());
        metrics["bus_ns_per_ref"] = Json(result.busNsPerRef());
        metrics["bus_events"] =
            Json(result.misses + result.writeThroughs);
        metrics["snoop_probes"] = Json(result.snoopProbes);
        artifact.add("snoopy-wo/32B", std::move(config),
                     std::move(metrics));
    }
    table.print(std::cout);

    // Multiprocessor snoop pressure: the quantity that grows with the
    // processor count and motivates dual-ported tags.
    TableWriter pressure("Snoop-probe pressure, write-invalidate 32B "
                         "lines, atum2 x N processors");
    pressure.columns({"Processors", "Bus ns/ref", "Snoop probes",
                      "Probes per ref"});
    for (const std::uint32_t n : {1u, 2u, 4u}) {
        snoopy::SnoopyConfig cfg;
        cfg.lineBytes = 32;
        cfg.cacheBytes = KiB(128);
        cfg.processors = n;
        snoopy::SnoopySystem system(cfg);
        std::vector<std::unique_ptr<trace::SyntheticGen>> gens;
        std::vector<trace::RefSource *> sources;
        for (std::uint32_t i = 0; i < n; ++i) {
            auto workload = trace::workloadConfig("atum2");
            workload.seed = 40 + i;
            workload.totalRefs = 200'000;
            gens.push_back(
                std::make_unique<trace::SyntheticGen>(workload));
            sources.push_back(gens.back().get());
        }
        const auto result = system.run(sources);
        pressure.row()
            .cell(std::uint64_t{n})
            .cell(result.busNsPerRef(), 1)
            .cell(result.snoopProbes)
            .cell(static_cast<double>(result.snoopProbes) /
                      static_cast<double>(result.refs),
                  3);

        Json config = Json::object();
        config["scheme"] = Json("snoopy-write-invalidate");
        config["line_bytes"] = Json(std::uint64_t{32});
        config["cache_bytes"] = Json(KiB(128));
        config["processors"] = Json(std::uint64_t{n});
        Json metrics = Json::object();
        metrics["bus_ns_per_ref"] = Json(result.busNsPerRef());
        metrics["snoop_probes"] = Json(result.snoopProbes);
        metrics["snoop_probes_per_ref"] =
            Json(static_cast<double>(result.snoopProbes) /
                 static_cast<double>(result.refs));
        artifact.add("pressure/" + std::to_string(n) + "cpu",
                     std::move(config), std::move(metrics));
    }
    pressure.print(std::cout);

    std::cout
        << "Expected shape (paper): the snoopy schemes' small lines "
           "miss far more often, and every\nbus transaction "
           "interrogates every cache's tags; write-update adds a bus "
           "word per shared write.\nVMP pays a longer per-miss latency "
           "instead, with zero snoop pressure on the processor/cache "
           "path.\n";

    artifact.note("Section 6: VMP big-page ownership caches vs snoopy "
                  "write-invalidate / write-update / write-once "
                  "baselines on the same traces");
    artifact.write();
    return 0;
}
