/**
 * @file
 * Failstop recovery: degraded-mode throughput, time-to-recover, and
 * hot-rejoin quality. The paper's protocol assumes every board
 * eventually services its interrupts; this bench quantifies what the
 * recovery subsystem (failure detector + ownership reclamation +
 * hot-rejoin) buys when that assumption breaks:
 *
 *   - an 8-processor machine loses board 7 one simulated millisecond
 *     into a trace run; the detector declares it dead, the coordinator
 *     reclaims its Protect frames, and the surviving 7 boards keep
 *     running — degraded aggregate throughput is compared against the
 *     fault-free baseline;
 *   - time-to-recover (declaration to reclaim-complete) is swept
 *     against per-board cache size, since a bigger cache strands more
 *     frames;
 *   - a killed board hot-rejoins mid-run and finishes its trace; its
 *     end-to-end hit ratio is compared against the boards that never
 *     died.
 *
 * Acceptance (encoded in the exit status):
 *   - zero coherence violations and zero watchdog trips everywhere;
 *   - exactly one declared-dead board per kill run, recovery complete;
 *   - degraded (7-of-8) aggregate throughput at least 70% of the
 *     fault-free aggregate;
 *   - the killed-then-rejoined board's hit ratio within 5% of the
 *     mean hit ratio of the boards that never died.
 */

#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "check/coherence_checker.hh"
#include "core/system.hh"
#include "fault/injector.hh"
#include "recover/recovery.hh"
#include "sim/stats.hh"
#include "trace/synthetic.hh"
#include "trace/workloads.hh"

namespace
{

using namespace vmp;

constexpr std::uint32_t kCpus = 8;
constexpr std::uint64_t kRefsPerCpu = 20'000;
constexpr std::uint32_t kVictim = kCpus - 1;
constexpr Tick kKillAt = msec(1);
constexpr Tick kRejoinAt = msec(4);

/** Seed base every run seed derives from (--seed-base; set in main).
 *  scripts/seed_sweep.py sweeps this to put confidence intervals on
 *  the table. */
std::uint64_t gSeedBase = 1000;

enum class Mode
{
    Baseline, //!< fault-free, recovery armed (null-hook discipline)
    Kill,     //!< board 7 failstops and never returns
    Rejoin    //!< board 7 failstops, hot-rejoins, finishes its trace
};

const char *
modeName(Mode mode)
{
    switch (mode) {
      case Mode::Baseline:
        return "baseline";
      case Mode::Kill:
        return "kill";
      default:
        return "rejoin";
    }
}

/** One measured run. */
struct Point
{
    core::RunResult run;
    double refsPerSimSec = 0.0;
    std::uint64_t violations = 0;
    std::uint64_t watchdogTrips = 0;
    std::uint64_t boardsDead = 0;
    std::uint64_t framesReclaimed = 0;
    std::uint64_t pagesLost = 0;
    Tick recoveryNs = 0;
    /** End-to-end hit ratio per board (hits / (hits+misses)). */
    std::vector<double> hitRatio;
    Json recoveryStats;
};

Point
runPoint(Mode mode, std::uint64_t seed, std::uint32_t sets = 64,
         bool checkpoint = false)
{
    core::VmpConfig cfg;
    cfg.processors = kCpus;
    cfg.cache = cache::CacheConfig{256, 2, sets, true};
    cfg.memBytes = MiB(4);
    core::VmpSystem system(cfg);

    fault::FaultSchedule schedule;
    schedule.seed = seed;
    if (mode != Mode::Baseline) {
        schedule.crashBoard(kVictim, kKillAt);
        if (mode == Mode::Rejoin)
            schedule.rejoinAt(kRejoinAt);
    }
    if (!schedule.empty() || !schedule.crashes.empty())
        system.enableFaultInjection(schedule);
    auto &checker = system.enableCoherenceChecker();
    if (checkpoint)
        system.enableFrameCheckpoint();
    recover::RecoveryConfig rc;
    rc.detector.sweepPeriod = 64;
    auto &manager = system.enableRecovery(rc);
    system.setWatchdog(1'000); // default warn-only handler

    std::vector<std::unique_ptr<trace::SyntheticGen>> gens;
    std::vector<trace::RefSource *> sources;
    for (std::uint32_t i = 0; i < kCpus; ++i) {
        auto workload = trace::workloadConfig("atum2");
        workload.totalRefs = kRefsPerCpu;
        workload.seed = seed * 1000 + i;
        gens.push_back(
            std::make_unique<trace::SyntheticGen>(workload));
        sources.push_back(gens.back().get());
    }

    Point point;
    point.run = system.runTraces(sources);
    point.refsPerSimSec = point.run.elapsed == 0
        ? 0.0
        : static_cast<double>(point.run.totalRefs) /
            (static_cast<double>(point.run.elapsed) * 1e-9);

    for (std::uint32_t cpu = 0; cpu < kCpus; ++cpu) {
        point.watchdogTrips +=
            system.controller(cpu).watchdogTrips().value();
        const auto &cache = system.board(cpu).cache;
        const double refs = static_cast<double>(
            cache.hits().value() + cache.misses().value());
        point.hitRatio.push_back(
            refs == 0.0
                ? 0.0
                : static_cast<double>(cache.hits().value()) / refs);
    }
    point.boardsDead = manager.boardsDeclaredDead().value();
    point.framesReclaimed = manager.framesReclaimed().value();
    point.pagesLost = manager.pagesLost().value();
    point.recoveryNs = manager.lastRecoveryNs();
    point.recoveryStats = system.statsJson()["recover"];

    // Quiesce the live boards so the full sweep is legal (a dead
    // board's serviceInterrupts is a no-op by design).
    system.attachIdleServicers();
    for (std::uint32_t cpu = 0; cpu < kCpus; ++cpu) {
        system.controller(cpu).serviceInterrupts([] {});
        system.events().run();
    }
    checker.checkFull();
    point.violations = checker.violations().value();
    return point;
}

/** Average a mode over several seeds (counters summed, rates meaned;
 *  recoveryNs is the max — worst case — over the seeds). */
Point
runAveragedPoint(Mode mode, std::uint64_t seeds = 3,
                 bool checkpoint = false)
{
    Point mean;
    for (std::uint64_t s = 0; s < seeds; ++s) {
        Point p = runPoint(mode, gSeedBase + s, 64, checkpoint);
        mean.run = p.run; // representative (last seed) run summary
        mean.refsPerSimSec += p.refsPerSimSec / seeds;
        mean.violations += p.violations;
        mean.watchdogTrips += p.watchdogTrips;
        mean.boardsDead += p.boardsDead;
        mean.framesReclaimed += p.framesReclaimed;
        mean.pagesLost += p.pagesLost;
        mean.recoveryNs = std::max(mean.recoveryNs, p.recoveryNs);
        if (mean.hitRatio.empty())
            mean.hitRatio.assign(kCpus, 0.0);
        for (std::uint32_t cpu = 0; cpu < kCpus; ++cpu)
            mean.hitRatio[cpu] += p.hitRatio[cpu] / seeds;
        mean.recoveryStats = std::move(p.recoveryStats);
    }
    return mean;
}

Json
pointMetrics(const Point &point)
{
    Json metrics = bench::runResultJson(point.run);
    metrics["refs_per_sim_s"] = Json(point.refsPerSimSec);
    metrics["violations"] = Json(point.violations);
    metrics["watchdog_trips"] = Json(point.watchdogTrips);
    metrics["boards_declared_dead"] = Json(point.boardsDead);
    metrics["frames_reclaimed"] = Json(point.framesReclaimed);
    metrics["pages_lost"] = Json(point.pagesLost);
    metrics["time_to_recover_us"] =
        Json(toUsec(point.recoveryNs));
    // Full "recovery" stat group (new in schema v1.2): the recovery
    // coordinator's and failure detector's counters, verbatim.
    metrics["recovery"] = point.recoveryStats;
    return metrics;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vmp;
    const auto opts = bench::parseBenchOptions("recover", argc, argv);
    gSeedBase = opts.seedBase;
    bench::Artifact artifact("recover", opts);

    bench::banner("Failstop recovery",
                  "degraded-mode throughput, time-to-recover, and "
                  "hot-rejoin (8 CPUs, atum2, checker armed)");

    // ------------------------------------------------- mode table
    TableWriter table("Baseline vs kill vs kill-and-rejoin");
    table.columns({"Mode", "refs/sim-s", "Refs", "Dead", "Reclaimed",
                   "Lost", "Recover us", "Violations"});

    std::vector<Point> points;
    for (const Mode mode :
         {Mode::Baseline, Mode::Kill, Mode::Rejoin}) {
        const Point point = runAveragedPoint(mode);
        points.push_back(point);
        table.row()
            .cell(modeName(mode))
            .cell(point.refsPerSimSec, 0)
            .cell(point.run.totalRefs)
            .cell(point.boardsDead)
            .cell(point.framesReclaimed)
            .cell(point.pagesLost)
            .cell(toUsec(point.recoveryNs), 1)
            .cell(point.violations);

        Json config = Json::object();
        config["mode"] = Json(std::string(modeName(mode)));
        config["processors"] = Json(std::uint64_t{kCpus});
        config["refs_per_cpu"] = Json(kRefsPerCpu);
        config["kill_at_us"] = Json(
            mode == Mode::Baseline ? 0.0 : toUsec(kKillAt));
        config["rejoin_at_us"] = Json(
            mode == Mode::Rejoin ? toUsec(kRejoinAt) : 0.0);
        artifact.add(std::string("mode/") + modeName(mode),
                     std::move(config), pointMetrics(point));
    }
    table.print(std::cout);

    // --------------------------------- time-to-recover vs cache size
    TableWriter ttr("Time-to-recover vs per-board cache size");
    ttr.columns({"Cache KiB", "Frames", "Reclaimed", "Lost",
                 "Recover us", "Violations"});
    std::vector<Point> sweep;
    for (const std::uint32_t sets : {16u, 64u, 256u}) {
        const Point point =
            runPoint(Mode::Kill, gSeedBase + 114, sets);
        sweep.push_back(point);
        const std::uint64_t frames = 2ull * sets;
        ttr.row()
            .cell(frames * 256 / 1024)
            .cell(frames)
            .cell(point.framesReclaimed)
            .cell(point.pagesLost)
            .cell(toUsec(point.recoveryNs), 1)
            .cell(point.violations);

        Json config = Json::object();
        config["mode"] = Json(std::string("kill"));
        config["sets"] = Json(std::uint64_t{sets});
        config["cache_bytes"] = Json(frames * 256);
        config["processors"] = Json(std::uint64_t{kCpus});
        config["refs_per_cpu"] = Json(kRefsPerCpu);
        std::ostringstream label;
        label << "ttr/" << sets;
        artifact.add(label.str(), std::move(config),
                     pointMetrics(point));
    }
    ttr.print(std::cout);

    // ------------------- kill with the NVRAM frame checkpoint armed
    // The memory tier's FrameCheckpointer shadows every ownership
    // transfer into a zero-latency PageStore; recovery then restores
    // reclaimed frames from it, so a crash loses no pages at all.
    const Point ckpt = runAveragedPoint(Mode::Kill, 3, true);
    TableWriter ckptTable("Kill with frame checkpoint (NVRAM shadow)");
    ckptTable.columns({"Mode", "refs/sim-s", "Dead", "Reclaimed",
                       "Lost", "Recover us", "Violations"});
    ckptTable.row()
        .cell("kill+checkpoint")
        .cell(ckpt.refsPerSimSec, 0)
        .cell(ckpt.boardsDead)
        .cell(ckpt.framesReclaimed)
        .cell(ckpt.pagesLost)
        .cell(toUsec(ckpt.recoveryNs), 1)
        .cell(ckpt.violations);
    ckptTable.print(std::cout);
    {
        Json config = Json::object();
        config["mode"] = Json(std::string("kill"));
        config["checkpoint"] = Json(true);
        config["processors"] = Json(std::uint64_t{kCpus});
        config["refs_per_cpu"] = Json(kRefsPerCpu);
        config["kill_at_us"] = Json(toUsec(kKillAt));
        artifact.add("mode/kill_checkpoint", std::move(config),
                     pointMetrics(ckpt));
    }

    // ------------------------------------------------- acceptance
    bool pass = true;
    const auto fail = [&pass](const std::string &what) {
        std::cout << "[acceptance] FAIL: " << what << "\n";
        pass = false;
    };

    const Point &baseline = points[0];
    const Point &kill = points[1];
    const Point &rejoin = points[2];

    for (const Point *p : {&points[0], &points[1], &points[2],
                           &sweep[0], &sweep[1], &sweep[2]}) {
        if (p->violations != 0)
            fail("coherence violations (" +
                 std::to_string(p->violations) + ")");
        if (p->watchdogTrips != 0)
            fail("watchdog tripped (" +
                 std::to_string(p->watchdogTrips) + ")");
    }
    if (baseline.boardsDead != 0)
        fail("baseline declared a board dead");
    if (kill.boardsDead != 3) // one per averaged seed
        fail("kill mode declared " +
             std::to_string(kill.boardsDead) +
             " boards dead over 3 seeds (want 3)");
    for (const Point &p : sweep) {
        if (p.boardsDead != 1)
            fail("cache sweep point missed the dead board");
        if (p.pagesLost > 2ull * 256) // never above the largest cache
            fail("pages_lost above cache capacity");
    }
    if (ckpt.boardsDead != 3) // one per averaged seed
        fail("checkpointed kill missed a dead board");
    if (ckpt.violations != 0 || ckpt.watchdogTrips != 0)
        fail("checkpointed kill tripped checker or watchdog");
    if (ckpt.pagesLost != 0)
        fail("frame checkpoint lost " +
             std::to_string(ckpt.pagesLost) +
             " pages (want 0 by construction)");

    if (baseline.refsPerSimSec <= 0.0) {
        fail("fault-free throughput is zero");
    } else {
        const double degraded =
            kill.refsPerSimSec / baseline.refsPerSimSec;
        std::cout << "[acceptance] degraded (7-of-8) aggregate: "
                  << degraded * 100 << "% of fault-free\n";
        if (degraded < 0.70)
            fail("degraded throughput below 70% of fault-free");
    }

    // The rejoined board finished its whole trace...
    if (rejoin.run.totalRefs !=
        std::uint64_t{kCpus} * kRefsPerCpu)
        fail("rejoin run did not retire every reference");
    // ...and its end-to-end hit ratio is within 5% of the boards
    // that never died (the cold restart is amortized).
    double survivors = 0.0;
    for (std::uint32_t cpu = 0; cpu < kCpus - 1; ++cpu)
        survivors += rejoin.hitRatio[cpu] / (kCpus - 1);
    const double victim = rejoin.hitRatio[kVictim];
    std::cout << "[acceptance] rejoined board hit ratio: " << victim
              << " vs survivor mean " << survivors << "\n";
    if (survivors <= 0.0)
        fail("survivor hit ratio is zero");
    else if (victim < 0.95 * survivors)
        fail("rejoined board hit ratio more than 5% below survivors");

    artifact.note("acceptance: zero violations; one declared-dead "
                  "board per kill; degraded >=70% of fault-free; "
                  "rejoined hit ratio within 5% of survivors; "
                  "checkpointed kill loses zero pages");
    artifact.note("seed_base " + std::to_string(gSeedBase) +
                  " (--seed-base; seed_sweep.py aggregates)");
    artifact.note(pass ? "acceptance: PASS" : "acceptance: FAIL");
    artifact.write();
    std::cout << (pass ? "[acceptance] PASS\n" : "[acceptance] FAIL\n");
    return pass ? 0 : 1;
}
