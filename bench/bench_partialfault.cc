/**
 * @file
 * Partial failures: detection latency and degraded-mode throughput
 * when a board gets sick rather than dying cleanly. The paper's
 * protocol assumes a monitor either services its FIFO or the board is
 * gone; this bench quantifies the health-witness + fencing pipeline
 * (PR: partial-failure model) against the three gray-failure modes it
 * covers:
 *
 *   - a wedged monitor (service loop frozen, FIFO filling) one
 *     simulated millisecond into a four-processor hot-sharing run;
 *   - a babbling FIFO, swept across spurious-word rates;
 *   - a fail-slow board, swept across service-latency inflation
 *     factors.
 *
 * For each severity the bench reports how long the sick board stayed
 * undetected (fence tick minus onset tick) and what aggregate
 * throughput the surviving boards sustained behind the fence,
 * normalized per board against the fault-free baseline.
 *
 * Acceptance (encoded in the exit status):
 *   - zero missed detections: every injected partial failure is
 *     fenced — the sick board, and only it, never a failstop
 *     declaration, and never a baseline fence;
 *   - detection latency at most 2 ms after onset for wedge and
 *     babble; for fail-slow the budget grows modestly with the
 *     inflation factor (each latency-EWMA sample arrives a factor
 *     slower);
 *   - zero post-fence single-owner violations and zero watchdog
 *     trips everywhere;
 *   - fenced-mode throughput per surviving board (measured over the
 *     post-fence window only) at least 70% of the fault-free
 *     per-board baseline.
 */

#include <algorithm>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "check/coherence_checker.hh"
#include "core/system.hh"
#include "fault/injector.hh"
#include "recover/recovery.hh"
#include "sim/debug.hh"
#include "sim/stats.hh"
#include "trace/synthetic.hh"
#include "trace/workloads.hh"

namespace
{

using namespace vmp;

constexpr std::uint32_t kCpus = 4;
constexpr std::uint64_t kRefsPerCpu = 12'000;
constexpr std::uint32_t kVictim = kCpus - 1;
constexpr Tick kOnset = msec(1);
/** Acceptance bound on fence tick minus onset tick (wedge/babble). */
constexpr Tick kDetectBudget = msec(2);
/** Survivor-progress sampling period (fenced-throughput window). */
constexpr Tick kSamplePeriod = usec(100);
/** Hard stop for the sampler: guarantees the event queue drains even
 *  if the survivors never hit their reference target. */
constexpr Tick kSampleHorizon = msec(500);

/** Seed base every run seed derives from (--seed-base; set in main). */
std::uint64_t gSeedBase = 1000;

/** One partial-failure severity (or the fault-free baseline). */
struct Severity
{
    fault::FaultKind kind = fault::FaultKind::BusAbort; // == baseline
    double rate = 0.0;         //!< babble words per observed tx
    std::uint64_t factor = 0;  //!< fail-slow service inflation

    bool faulted() const { return kind != fault::FaultKind::BusAbort; }

    /** Detection-latency acceptance bound. Fail-slow detection needs
     *  the sick board to complete a few service words — each arrives
     *  a factor slower — so its budget grows with the inflation
     *  factor, but stays tight enough to catch the witness being
     *  starved until the run winds down (tens of ms). Babble
     *  detection needs babbleSweeps consecutive over-threshold
     *  windows, and the closer the injected rate sits to the 0.6
     *  spurious-fraction threshold the more windows dip below it and
     *  reset the strike count — so its budget grows as the rate
     *  approaches the threshold from above. */
    Tick
    detectBudget() const
    {
        if (kind == fault::FaultKind::SlowBoard)
            return kDetectBudget +
                static_cast<Tick>(factor) * usec(50);
        if (kind == fault::FaultKind::FifoBabble)
            return kDetectBudget +
                static_cast<Tick>((1.0 - rate) * 2e7);
        return kDetectBudget;
    }

    std::string
    label() const
    {
        std::ostringstream os;
        switch (kind) {
          case fault::FaultKind::MonitorWedge:
            os << "wedge";
            break;
          case fault::FaultKind::FifoBabble:
            os << "babble/" << rate;
            break;
          case fault::FaultKind::SlowBoard:
            os << "slow/" << factor;
            break;
          default:
            os << "baseline";
            break;
        }
        return os.str();
    }
};

/** One measured run (or a seed-average of runs). */
struct Point
{
    core::RunResult run;
    /** Aggregate survivor throughput (victim excluded), refs/sim-s. */
    double survivorRefsPerSimSec = 0.0;
    /** Survivor throughput measured behind the fence only (from the
     *  first progress sample after the fence tick to the last). */
    double fencedRefsPerSimSec = 0.0;
    /** Mean fence tick minus onset tick; worst seed in detectMaxNs. */
    double detectMeanNs = 0.0;
    Tick detectMaxNs = 0;
    std::uint64_t injected = 0;
    std::uint64_t fencedBoards = 0;
    std::uint64_t victimFenced = 0;
    std::uint64_t boardsDead = 0;
    std::uint64_t falseSuspicions = 0;
    std::uint64_t violations = 0;
    std::uint64_t sweepViolations = 0;
    std::uint64_t watchdogTrips = 0;
};

Point
runPoint(const Severity &sev, std::uint64_t seed)
{
    core::VmpConfig cfg;
    cfg.processors = kCpus;
    cfg.cache = cache::CacheConfig{256, 2, 16, true};
    cfg.memBytes = MiB(1);
    // Bound the fenced board's stranded in-flight access: survivors
    // abandon retries against the quarantined owner after this long.
    cfg.swTiming.deadOwnerTimeoutNs = msec(1);
    core::VmpSystem system(cfg);

    fault::FaultSchedule schedule;
    schedule.seed = seed;
    switch (sev.kind) {
      case fault::FaultKind::MonitorWedge:
        schedule.wedgeMonitor(kVictim, kOnset); // never clears
        break;
      case fault::FaultKind::FifoBabble:
        schedule.babbleFifo(kVictim, kOnset, sev.rate);
        break;
      case fault::FaultKind::SlowBoard:
        schedule.slowBoard(kVictim, kOnset, sev.factor);
        break;
      default:
        break; // baseline: no schedule at all
    }
    fault::FaultInjector *injector = nullptr;
    if (!schedule.empty())
        injector = &system.enableFaultInjection(schedule);
    auto &checker = system.enableCoherenceChecker();
    recover::RecoveryConfig rc;
    rc.detector.sweepPeriod = 32;
    rc.detector.deadlineNs = 20'000;
    auto &manager = system.enableRecovery(rc);
    Point point;
    system.setWatchdog(1'000, [&](const proto::WatchdogReport &) {
        ++point.watchdogTrips;
    });

    const auto survivorRefsNow = [&system] {
        std::uint64_t refs = 0;
        for (std::uint32_t cpu = 0; cpu < kCpus; ++cpu) {
            if (cpu == kVictim)
                continue;
            const auto &cache = system.board(cpu).cache;
            refs += cache.hits().value() + cache.misses().value();
        }
        return refs;
    };

    // Periodic survivor-progress samples, so degraded throughput can
    // be measured over the post-fence window alone (the run aggregate
    // also includes the pre-detection window, where a sick-but-alive
    // owner drags everyone). The sampler stops itself once the
    // survivors retire their traces so the event queue still drains.
    struct Sample
    {
        Tick tick;
        std::uint64_t refs;
    };
    std::vector<Sample> samples;
    std::function<void()> sampler = [&] {
        const std::uint64_t refs = survivorRefsNow();
        samples.push_back({system.events().now(), refs});
        if (refs < std::uint64_t{kCpus - 1} * kRefsPerCpu &&
            system.events().now() < kSampleHorizon)
            system.events().scheduleIn(kSamplePeriod, sampler,
                                       "bench-sample");
    };
    if (sev.faulted())
        system.events().schedule(kOnset, sampler, "bench-sample");

    std::vector<std::unique_ptr<trace::SyntheticGen>> gens;
    std::vector<trace::RefSource *> sources;
    for (std::uint32_t i = 0; i < kCpus; ++i) {
        // atum3: hot sharing, so the witness sweep sees steady
        // consistency traffic and stranded accesses surface fast.
        auto workload = trace::workloadConfig("atum3");
        workload.totalRefs = kRefsPerCpu;
        workload.seed = seed * 1000 + i;
        gens.push_back(
            std::make_unique<trace::SyntheticGen>(workload));
        sources.push_back(gens.back().get());
    }

    point.run = system.runTraces(sources);

    const std::uint64_t survivorRefs = survivorRefsNow();
    point.survivorRefsPerSimSec = point.run.elapsed == 0
        ? 0.0
        : static_cast<double>(survivorRefs) /
            (static_cast<double>(point.run.elapsed) * 1e-9);

    if (injector != nullptr)
        point.injected = injector->injected(sev.kind).value();
    point.fencedBoards = manager.fencedBoards();
    point.victimFenced = manager.isFenced(kVictim) ? 1 : 0;
    point.boardsDead = manager.boardsDeclaredDead().value();
    point.falseSuspicions =
        manager.detector().falseSuspicions().value();
    if (sev.faulted() && manager.lastFenceAt() >= kOnset) {
        const Tick latency = manager.lastFenceAt() - kOnset;
        point.detectMeanNs = static_cast<double>(latency);
        point.detectMaxNs = latency;

        // Fenced-mode throughput: from the first sample at or after
        // the fence tick to the last sample that still saw progress
        // (trailing idle samples would dilute the rate).
        const Tick fenceAt = manager.lastFenceAt();
        std::size_t i0 = samples.size();
        for (std::size_t i = 0; i < samples.size(); ++i) {
            if (samples[i].tick >= fenceAt) {
                i0 = i;
                break;
            }
        }
        std::size_t i1 = i0;
        for (std::size_t i = i0 + 1; i < samples.size(); ++i)
            if (samples[i].refs > samples[i - 1].refs)
                i1 = i;
        if (i1 > i0 && samples[i1].tick > samples[i0].tick)
            point.fencedRefsPerSimSec =
                static_cast<double>(samples[i1].refs -
                                    samples[i0].refs) /
                (static_cast<double>(samples[i1].tick -
                                     samples[i0].tick) * 1e-9);
    }

    if (sev.faulted()) {
        // The victim stays fenced (its monitor is masked), so a full
        // quiesce is impossible; the owners sweep checks the
        // single-owner invariant over the surviving boards.
        point.sweepViolations = checker.checkOwnersSweep();
    } else {
        system.attachIdleServicers();
        for (std::uint32_t cpu = 0; cpu < kCpus; ++cpu) {
            system.controller(cpu).serviceInterrupts([] {});
            system.events().run();
        }
        point.sweepViolations = checker.checkFull();
    }
    point.violations = checker.violations().value();
    return point;
}

/** Average one severity over several seeds (counters summed, rates
 *  and latencies meaned; detectMaxNs is the worst seed). */
Point
runAveragedPoint(const Severity &sev, std::uint64_t seeds = 3)
{
    Point mean;
    for (std::uint64_t s = 0; s < seeds; ++s) {
        Point p = runPoint(sev, gSeedBase + s);
        mean.run = p.run; // representative (last seed) run summary
        mean.survivorRefsPerSimSec +=
            p.survivorRefsPerSimSec / static_cast<double>(seeds);
        mean.fencedRefsPerSimSec +=
            p.fencedRefsPerSimSec / static_cast<double>(seeds);
        mean.detectMeanNs +=
            p.detectMeanNs / static_cast<double>(seeds);
        mean.detectMaxNs = std::max(mean.detectMaxNs, p.detectMaxNs);
        mean.injected += p.injected;
        mean.fencedBoards += p.fencedBoards;
        mean.victimFenced += p.victimFenced;
        mean.boardsDead += p.boardsDead;
        mean.falseSuspicions += p.falseSuspicions;
        mean.violations += p.violations;
        mean.sweepViolations += p.sweepViolations;
        mean.watchdogTrips += p.watchdogTrips;
    }
    return mean;
}

Json
pointMetrics(const Point &point)
{
    Json metrics = bench::runResultJson(point.run);
    metrics["survivor_refs_per_sim_s"] =
        Json(point.survivorRefsPerSimSec);
    metrics["fenced_refs_per_sim_s"] =
        Json(point.fencedRefsPerSimSec);
    metrics["detect_latency_us"] = Json(point.detectMeanNs * 1e-3);
    metrics["detect_latency_max_us"] =
        Json(toUsec(point.detectMaxNs));
    metrics["injected"] = Json(point.injected);
    metrics["boards_fenced"] = Json(point.fencedBoards);
    metrics["boards_declared_dead"] = Json(point.boardsDead);
    metrics["false_suspicions"] = Json(point.falseSuspicions);
    metrics["violations"] =
        Json(point.violations + point.sweepViolations);
    metrics["watchdog_trips"] = Json(point.watchdogTrips);
    return metrics;
}

Json
pointConfig(const Severity &sev)
{
    Json config = Json::object();
    config["mode"] = Json(sev.label());
    config["processors"] = Json(std::uint64_t{kCpus});
    config["refs_per_cpu"] = Json(kRefsPerCpu);
    config["onset_us"] = Json(sev.faulted() ? toUsec(kOnset) : 0.0);
    if (sev.kind == fault::FaultKind::FifoBabble)
        config["babble_rate"] = Json(sev.rate);
    if (sev.kind == fault::FaultKind::SlowBoard)
        config["slow_factor"] = Json(sev.factor);
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vmp;
    debug::initFromEnvironment(); // VMP_DEBUG=Recover traces fencing
    const auto opts =
        bench::parseBenchOptions("partialfault", argc, argv);
    gSeedBase = opts.seedBase;
    bench::Artifact artifact("partialfault", opts);

    bench::banner("Partial failures",
                  "detection latency and fenced-mode throughput for "
                  "wedged / babbling / fail-slow boards (4 CPUs, "
                  "atum3, checker armed)");

    // Baseline first, then every severity: the wedge (binary), the
    // babble-rate curve, and the fail-slow factor curve. Babble rates
    // bracket the witness threshold from above; slow factors start at
    // the smallest inflation the default EWMA gate can see.
    std::vector<Severity> severities;
    severities.push_back({}); // baseline
    severities.push_back({fault::FaultKind::MonitorWedge, 0.0, 0});
    for (const double rate : {0.7, 0.8, 0.95})
        severities.push_back({fault::FaultKind::FifoBabble, rate, 0});
    for (const std::uint64_t factor : {32ull, 64ull, 128ull})
        severities.push_back(
            {fault::FaultKind::SlowBoard, 0.0, factor});

    TableWriter table("Detection latency and degraded throughput");
    table.columns({"Severity", "Detect us", "Worst us", "Fenced",
                   "Dead", "refs/s surv", "refs/s fenced",
                   "Violations"});

    std::vector<Point> points;
    for (const Severity &sev : severities) {
        const Point point = runAveragedPoint(sev);
        points.push_back(point);
        table.row()
            .cell(sev.label())
            .cell(point.detectMeanNs * 1e-3, 1)
            .cell(toUsec(point.detectMaxNs), 1)
            .cell(point.fencedBoards)
            .cell(point.boardsDead)
            .cell(point.survivorRefsPerSimSec, 0)
            .cell(point.fencedRefsPerSimSec, 0)
            .cell(point.violations + point.sweepViolations);
        artifact.add("severity/" + sev.label(), pointConfig(sev),
                     pointMetrics(point));
    }
    table.print(std::cout);

    // ------------------------------------------------- acceptance
    bool pass = true;
    const auto fail = [&pass](const std::string &what) {
        std::cout << "[acceptance] FAIL: " << what << "\n";
        pass = false;
    };

    const Point &baseline = points[0];
    for (std::size_t i = 0; i < severities.size(); ++i) {
        const Severity &sev = severities[i];
        const Point &p = points[i];
        const std::string at = " at " + sev.label();
        if (p.violations != 0 || p.sweepViolations != 0)
            fail("invariant violations" + at);
        if (p.watchdogTrips != 0)
            fail("watchdog tripped" + at);
        if (p.boardsDead != 0)
            fail("partial failure escalated to a failstop "
                 "declaration" + at);
        if (!sev.faulted())
            continue;
        // Zero missed detections: each of the 3 seeds injected the
        // fault and fenced the sick board — and only it.
        if (p.injected == 0)
            fail("schedule never fired" + at);
        if (p.fencedBoards != 3 || p.victimFenced != 3)
            fail("missed detection (" +
                 std::to_string(p.victimFenced) +
                 "/3 seeds fenced the sick board)" + at);
        if (p.detectMaxNs > sev.detectBudget())
            fail("detection latency " +
                 std::to_string(toUsec(p.detectMaxNs)) +
                 " us over the " +
                 std::to_string(toUsec(sev.detectBudget())) +
                 " us budget" + at);
    }
    if (baseline.fencedBoards != 0)
        fail("baseline fenced a healthy board");

    // Fenced-mode throughput: survivors behind the fence sustain at
    // least 70% of the fault-free per-board rate.
    const double perBoardBaseline =
        baseline.survivorRefsPerSimSec / (kCpus - 1);
    if (perBoardBaseline <= 0.0) {
        fail("fault-free throughput is zero");
    } else {
        for (std::size_t i = 0; i < severities.size(); ++i) {
            if (!severities[i].faulted())
                continue;
            const double perBoard =
                points[i].fencedRefsPerSimSec / (kCpus - 1);
            const double frac = perBoard / perBoardBaseline;
            std::cout << "[acceptance] " << severities[i].label()
                      << " fenced-mode throughput: " << frac * 100
                      << "% of fault-free per board\n";
            if (frac < 0.70)
                fail("fenced-mode throughput below 70% of "
                     "fault-free at " + severities[i].label());
        }
    }

    artifact.note("acceptance: every partial failure fenced (never "
                  "declared dead) within budget — 2 ms of onset for "
                  "wedge/babble, factor-scaled for fail-slow; zero "
                  "violations and watchdog trips; post-fence survivor "
                  "throughput >=70% of fault-free per board");
    artifact.note("seed_base " + std::to_string(gSeedBase) +
                  " (--seed-base; seed_sweep.py aggregates)");
    artifact.note(pass ? "acceptance: PASS" : "acceptance: FAIL");
    artifact.write();
    std::cout << (pass ? "[acceptance] PASS\n" : "[acceptance] FAIL\n");
    return pass ? 0 : 1;
}
