/**
 * @file
 * Graceful-degradation curve under injected faults. The paper's
 * robustness argument (Sections 3.2/3.3) is qualitative: software
 * recovers from aborted transactions, dropped interrupt words and
 * overflowed FIFOs by retrying with desynchronizing delays. This
 * bench makes it quantitative: sweep the spurious-abort rate (and,
 * secondarily, the interrupt-drop rate) over a fixed multiprocessor
 * trace run, with the coherence checker armed at every point, and
 * report throughput (refs per simulated second) and mean miss latency
 * versus fault rate.
 *
 * Acceptance (encoded in the exit status):
 *   - zero coherence violations and zero watchdog trips everywhere;
 *   - no abort rate beats the fault-free throughput by more than 5%
 *     (low rates are inside seed noise) and the highest swept rate
 *     clearly degrades (below 98% of fault-free);
 *   - at a 1% spurious-abort rate the machine retains at least 50%
 *     of its fault-free throughput.
 */

#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "check/coherence_checker.hh"
#include "core/system.hh"
#include "fault/injector.hh"
#include "sim/stats.hh"
#include "trace/synthetic.hh"
#include "trace/workloads.hh"

namespace
{

using namespace vmp;

constexpr std::uint32_t kCpus = 4;
constexpr std::uint64_t kRefsPerCpu = 30'000;

/** Seed base every workload/injector seed derives from (--seed-base;
 *  set in main). scripts/seed_sweep.py sweeps this to put confidence
 *  intervals on the curves. */
std::uint64_t gSeedBase = 1000;

/** One measured point of the degradation curve. */
struct Point
{
    double faultRate = 0.0;
    core::RunResult run;
    double refsPerSimSec = 0.0;
    double meanMissLatencyNs = 0.0;
    std::uint64_t retries = 0;
    std::uint64_t injected = 0;
    std::uint64_t violations = 0;
    std::uint64_t watchdogTrips = 0;
};

Point
runPoint(fault::FaultKind kind, double rate, std::uint64_t seed)
{
    core::VmpConfig cfg;
    cfg.processors = kCpus;
    // Small caches against the prototype default keep the miss (and
    // therefore consistency-transaction) rate high enough that the
    // fault hooks see real traffic in a short run.
    cfg.cache = cache::CacheConfig{256, 2, 64, true};
    cfg.memBytes = MiB(2);
    core::VmpSystem system(cfg);

    fault::FaultSchedule schedule;
    schedule.seed = seed;
    if (rate > 0.0) {
        switch (kind) {
          case fault::FaultKind::BusAbort:
            schedule.busAborts(rate);
            break;
          case fault::FaultKind::FifoDrop:
            schedule.fifoDrops(rate);
            break;
          default:
            fatal("bench_fault: unsupported sweep kind");
        }
    }
    auto &injector = system.enableFaultInjection(schedule);
    auto &checker = system.enableCoherenceChecker();
    system.setWatchdog(1'000); // default warn-only handler

    std::vector<std::unique_ptr<trace::SyntheticGen>> gens;
    std::vector<trace::RefSource *> sources;
    for (std::uint32_t i = 0; i < kCpus; ++i) {
        auto workload = trace::workloadConfig("atum3");
        workload.totalRefs = kRefsPerCpu;
        workload.seed = gSeedBase * 7 + i;
        gens.push_back(
            std::make_unique<trace::SyntheticGen>(workload));
        sources.push_back(gens.back().get());
    }

    Point point;
    point.faultRate = rate;
    point.run = system.runTraces(sources);

    Tick stall = 0;
    for (std::uint32_t cpu = 0; cpu < kCpus; ++cpu) {
        const auto &ctl = system.controller(cpu);
        stall += ctl.missStallTicks();
        point.retries += ctl.retries().value();
        point.watchdogTrips += ctl.watchdogTrips().value();
    }
    point.refsPerSimSec = point.run.elapsed == 0
        ? 0.0
        : static_cast<double>(point.run.totalRefs) /
            (static_cast<double>(point.run.elapsed) * 1e-9);
    point.meanMissLatencyNs = point.run.totalMisses == 0
        ? 0.0
        : static_cast<double>(stall) /
            static_cast<double>(point.run.totalMisses);
    point.injected = injector.totalInjected();

    // Quiesce (idle-processor service) so the full sweep is legal.
    system.attachIdleServicers();
    for (std::uint32_t cpu = 0; cpu < kCpus; ++cpu) {
        system.controller(cpu).serviceInterrupts([] {});
        system.events().run();
    }
    checker.checkFull();
    point.violations = checker.violations().value();
    return point;
}

/**
 * Average one curve point over several injector seeds: the fault
 * *pattern* is seed noise, the fault *rate* is the signal. Counters
 * are summed; rates and latencies are averaged.
 */
Point
runAveragedPoint(fault::FaultKind kind, double rate)
{
    constexpr std::uint64_t kSeeds = 3;
    Point mean;
    mean.faultRate = rate;
    for (std::uint64_t s = 0; s < kSeeds; ++s) {
        const Point p = runPoint(kind, rate, gSeedBase + s);
        mean.run = p.run; // representative (last seed) run summary
        mean.refsPerSimSec += p.refsPerSimSec / kSeeds;
        mean.meanMissLatencyNs += p.meanMissLatencyNs / kSeeds;
        mean.retries += p.retries;
        mean.injected += p.injected;
        mean.violations += p.violations;
        mean.watchdogTrips += p.watchdogTrips;
    }
    return mean;
}

Json
pointMetrics(const Point &point)
{
    Json metrics = bench::runResultJson(point.run);
    metrics["refs_per_sim_s"] = Json(point.refsPerSimSec);
    metrics["mean_miss_latency_ns"] = Json(point.meanMissLatencyNs);
    metrics["retries"] = Json(point.retries);
    metrics["faults_injected"] = Json(point.injected);
    metrics["violations"] = Json(point.violations);
    metrics["watchdog_trips"] = Json(point.watchdogTrips);
    return metrics;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vmp;
    const auto opts = bench::parseBenchOptions("fault", argc, argv);
    gSeedBase = opts.seedBase;
    bench::Artifact artifact("fault", opts);

    bench::banner("Robustness",
                  "graceful degradation under injected faults "
                  "(4 CPUs, atum3, checker armed)");

    const std::vector<double> abortRates{0.0,  0.0025, 0.01, 0.05,
                                         0.1,  0.2};
    const std::vector<double> dropRates{0.01, 0.05};

    TableWriter table("Degradation vs spurious-abort rate");
    table.columns({"Fault", "Rate %", "refs/sim-s", "Miss lat ns",
                   "Retries", "Injected", "Violations"});

    std::vector<Point> curve;
    for (const double rate : abortRates) {
        const Point point =
            runAveragedPoint(fault::FaultKind::BusAbort, rate);
        curve.push_back(point);
        table.row()
            .cell(rate == 0.0 ? "none" : "bus-abort")
            .cell(rate * 100, 2)
            .cell(point.refsPerSimSec, 0)
            .cell(point.meanMissLatencyNs, 0)
            .cell(point.retries)
            .cell(point.injected)
            .cell(point.violations);

        Json config = Json::object();
        config["fault"] = Json("bus-abort");
        config["rate"] = Json(rate);
        config["processors"] = Json(std::uint64_t{kCpus});
        config["refs_per_cpu"] = Json(kRefsPerCpu);
        std::ostringstream label;
        label << "abort/" << rate;
        artifact.add(label.str(), std::move(config),
                     pointMetrics(point));
    }
    for (const double rate : dropRates) {
        const Point point =
            runAveragedPoint(fault::FaultKind::FifoDrop, rate);
        table.row()
            .cell("fifo-drop")
            .cell(rate * 100, 2)
            .cell(point.refsPerSimSec, 0)
            .cell(point.meanMissLatencyNs, 0)
            .cell(point.retries)
            .cell(point.injected)
            .cell(point.violations);

        Json config = Json::object();
        config["fault"] = Json("fifo-drop");
        config["rate"] = Json(rate);
        config["processors"] = Json(std::uint64_t{kCpus});
        config["refs_per_cpu"] = Json(kRefsPerCpu);
        std::ostringstream label;
        label << "drop/" << rate;
        artifact.add(label.str(), std::move(config),
                     pointMetrics(point));
        curve.push_back(point);
    }
    table.print(std::cout);

    // ------------------------------------------------- acceptance
    bool pass = true;
    const auto fail = [&pass](const std::string &what) {
        std::cout << "[acceptance] FAIL: " << what << "\n";
        pass = false;
    };

    for (const Point &point : curve) {
        if (point.violations != 0)
            fail("coherence violations at rate " +
                 std::to_string(point.faultRate));
        if (point.watchdogTrips != 0)
            fail("watchdog tripped at rate " +
                 std::to_string(point.faultRate));
    }
    // Degradation over the abort sweep, robust to seed choice: at low
    // rates the signal is smaller than seed noise (about 3% on this
    // workload), so instead of pairwise monotonicity require that no
    // point beats the fault-free baseline by more than 5% and that
    // the highest rate clearly degrades.
    for (std::size_t i = 1; i < abortRates.size(); ++i) {
        if (curve[i].refsPerSimSec >
            curve.front().refsPerSimSec * 1.05)
            fail("throughput above fault-free at abort rate " +
                 std::to_string(abortRates[i]));
    }
    if (curve.back().refsPerSimSec >
        curve.front().refsPerSimSec * 0.98)
        fail("no visible degradation at abort rate " +
             std::to_string(abortRates.back()));
    const double baseline = curve.front().refsPerSimSec;
    double at1pct = 0.0;
    for (std::size_t i = 0; i < abortRates.size(); ++i) {
        if (abortRates[i] == 0.01)
            at1pct = curve[i].refsPerSimSec;
    }
    if (baseline <= 0.0) {
        fail("fault-free throughput is zero");
    } else if (at1pct < 0.5 * baseline) {
        fail("throughput at 1% aborts below 50% of fault-free (" +
             std::to_string(at1pct / baseline * 100) + "%)");
    } else {
        std::cout << "[acceptance] throughput at 1% aborts: "
                  << at1pct / baseline * 100
                  << "% of fault-free\n";
    }

    artifact.note("acceptance: zero violations, monotone degradation, "
                  ">=50% fault-free throughput at 1% aborts");
    artifact.note(pass ? "acceptance: PASS" : "acceptance: FAIL");
    artifact.write();
    std::cout << (pass ? "[acceptance] PASS\n" : "[acceptance] FAIL\n");
    return pass ? 0 : 1;
}
