/**
 * @file
 * Scaling curve for the two-level bus hierarchy (src/hier): flat
 * single-VMEbus configurations vs 2/4/8-cluster hierarchies at 4-32
 * processors, on partitioned (per-processor address spaces; pure bus
 * queueing) and shared (one machine-wide kernel image; heavy
 * cross-cluster data contention) workloads. Every simulated point is
 * cross-checked against the matching analytic queueing estimate:
 * QueuingModel for the flat cells, HierQueuingModel (two-level M/M/1)
 * for the hierarchical cells, each fed the miss ratio m and global
 * fraction g measured from that very run.
 *
 * The cells fan out through core::parallelMap — the same worker-pool
 * driver behind the Figure-4 sweeps — so --threads N applies here too.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analytic/models.hh"
#include "bench/bench_util.hh"
#include "core/hier_system.hh"
#include "sim/stats.hh"

namespace
{

using namespace vmp;

/** One point of the scaling curve. */
struct Cell
{
    /** Total processors. */
    std::uint32_t cpus;
    /** 0 = flat single bus; otherwise cluster count. */
    std::uint32_t clusters;
    /** Machine-wide shared kernel image vs per-CPU partitions. */
    bool shared;

    std::string
    topology() const
    {
        if (clusters == 0)
            return "flat" + std::to_string(cpus);
        return std::to_string(clusters) + "x" +
            std::to_string(cpus / clusters);
    }

    std::string
    label() const
    {
        return std::string(shared ? "shared/" : "partitioned/") +
            topology();
    }
};

/** Everything the tables, artifact and acceptance summary need. */
struct CellResult
{
    double missRatio = 0.0;
    /** Global fetches per local miss (hier cells only). */
    double g = 0.0;
    double refsPerSec = 0.0;
    double busUtilization = 0.0;
    double meanLocalUtilization = 0.0;
    double modelRefsPerSec = 0.0;
    /** (model - sim) / sim; only meaningful when modelValid. */
    double deviation = 0.0;
    /** False when the run left the model's domain: g > 1, or the
     *  inter-bus boards spent real time on cross-cluster consistency
     *  work (invalidates/downgrades/recalls) — the data contention the
     *  load-based model deliberately excludes. */
    bool modelValid = true;
    /** Closed (MVA) model overlay, fed the run's measured load
     *  profile: QueuingModel's MVA sibling for flat cells,
     *  HierQueuingModel::predictMva for hierarchical ones. */
    double mvaRefsPerSec = 0.0;
    double mvaDeviation = 0.0;
    /** MVA shares the data-contention exclusion, not the saturation
     *  one: saturated-but-contention-free rows stay in-domain. */
    bool mvaValid = true;
    /** predictMva flagged a retry cascade: CPU retry loops quantize
     *  against a long IBC busy period, so the mean-value loop count
     *  undershoots and the cell is out of the closed model's domain. */
    bool mvaCascade = false;
    /** Predicted CPU retry loops per global miss (hier cells). */
    double mvaLoops = 0.0;
    /** The open estimate's offered load reached bus capacity. */
    bool openSaturated = false;
    std::uint64_t refs = 0;
    std::uint64_t misses = 0;
    std::uint64_t globalFetches = 0;
    /** Cross-cluster invalidates + downgrades + recalls. */
    std::uint64_t consistencyActions = 0;
};

constexpr std::uint32_t kPageBytes = 256;
constexpr std::uint64_t kCacheBytes = KiB(16);
constexpr std::uint64_t kPartitionedRefs = 120'000;
constexpr std::uint64_t kSharedRefs = 30'000;

std::vector<std::unique_ptr<trace::SyntheticGen>>
makeWorkloads(std::uint32_t cpus, std::uint64_t refs_per_cpu,
              bool shared)
{
    std::vector<std::unique_ptr<trace::SyntheticGen>> gens;
    for (std::uint32_t i = 0; i < cpus; ++i) {
        auto workload = trace::workloadConfig("atum2");
        workload.totalRefs = refs_per_cpu;
        workload.seed = 1000 + i;
        workload.asidBase = static_cast<Asid>(1 + i * 8);
        if (!shared)
            workload.kernelOffset = static_cast<Addr>(i) * 0x20'0000;
        gens.push_back(std::make_unique<trace::SyntheticGen>(workload));
    }
    return gens;
}

CellResult
runCell(const Cell &cell, const mem::ArbitrationConfig &arbitration)
{
    const auto cache_cfg = cache::CacheConfig::forSize(
        kCacheBytes, kPageBytes, 4, true);
    const std::uint64_t refs_per_cpu =
        cell.shared ? kSharedRefs : kPartitionedRefs;
    const std::uint64_t mem_bytes = MiB(4) * cell.cpus;
    const cpu::M68020Timing timing;
    const double full_rps = timing.mips() * timing.refsPerInstr * 1e6;

    auto gens = makeWorkloads(cell.cpus, refs_per_cpu, cell.shared);
    std::vector<trace::RefSource *> sources;
    for (auto &gen : gens)
        sources.push_back(gen.get());

    CellResult out;
    if (cell.clusters == 0) {
        core::VmpConfig cfg;
        cfg.processors = cell.cpus;
        cfg.cache = cache_cfg;
        cfg.memBytes = mem_bytes;
        cfg.arbitration = arbitration;
        core::VmpSystem system(cfg);
        const auto result = system.runTraces(sources);
        out.missRatio = result.missRatio;
        out.refsPerSec = result.elapsed == 0
            ? 0.0
            : static_cast<double>(result.totalRefs) /
                (static_cast<double>(result.elapsed) * 1e-9);
        out.busUtilization = result.busUtilization;
        out.refs = result.totalRefs;
        out.misses = result.totalMisses;
        const analytic::QueuingModel model;
        const auto open_p =
            model.predict(kPageBytes, out.missRatio, cell.cpus);
        out.modelRefsPerSec = open_p.systemThroughput * full_rps;
        out.openSaturated = open_p.domain.saturated;
        const analytic::MvaModel mva;
        const auto mva_p = mva.predict(
            kPageBytes, bench::loadProfileOf(result), cell.cpus);
        out.mvaRefsPerSec = mva_p.systemThroughput * full_rps;
        // A machine-wide shared kernel on one bus is ownership
        // ping-pong — the data contention both load models exclude.
        out.mvaValid = !cell.shared && mva_p.domain.inDomain();
    } else {
        core::HierConfig cfg;
        cfg.clusters = cell.clusters;
        cfg.cpusPerCluster = cell.cpus / cell.clusters;
        cfg.cache = cache_cfg;
        cfg.memBytes = mem_bytes;
        cfg.localArbitration = arbitration;
        cfg.globalArbitration = arbitration;
        core::HierVmpSystem system(cfg);
        const auto result = system.runTraces(sources);
        out.missRatio = result.missRatio;
        out.refsPerSec = result.refsPerSec;
        out.busUtilization = result.busUtilization;
        out.meanLocalUtilization = result.meanLocalBusUtilization;
        out.refs = result.totalRefs;
        out.misses = result.totalMisses;
        out.globalFetches = result.globalFetches;
        out.g = result.totalMisses == 0
            ? 0.0
            : static_cast<double>(result.globalFetches) /
                static_cast<double>(result.totalMisses);
        for (std::uint32_t k = 0; k < cell.clusters; ++k) {
            const auto &ibc = system.interBusBoard(k);
            out.consistencyActions += ibc.invalidates().value() +
                ibc.downgrades().value() + ibc.recalls().value();
        }
        // Cross-cluster ownership migration (invalidates, downgrades,
        // recalls, g > 1 re-fetch storms) is data contention, which the
        // load-based model deliberately excludes ("providing data
        // contention is not excessive"). Flag such runs as outside the
        // model's domain; 2% of misses is noise-level.
        out.modelValid = out.g <= 1.0 &&
            (out.misses == 0 ||
             static_cast<double>(out.consistencyActions) <
                 0.02 * static_cast<double>(out.misses));
        const analytic::HierQueuingModel model;
        out.modelRefsPerSec = model.refsPerSecond(
            kPageBytes, out.missRatio, std::min(out.g, 1.0),
            cell.clusters, cfg.cpusPerCluster);
        out.openSaturated =
            model.predict(kPageBytes, out.missRatio,
                          std::min(out.g, 1.0), cell.clusters,
                          cfg.cpusPerCluster)
                .domain.saturated;
        const auto mva_p = model.predictMva(
            kPageBytes, bench::loadProfileOf(result),
            std::min(out.g, 1.0), cell.clusters, cfg.cpusPerCluster);
        out.mvaRefsPerSec = mva_p.refsPerSecond;
        out.mvaCascade = mva_p.retryCascade;
        out.mvaLoops = mva_p.loopsPerGlobalMiss;
        out.mvaValid = out.modelValid && mva_p.domain.inDomain() &&
            !mva_p.retryCascade;
    }
    out.deviation = out.refsPerSec == 0.0
        ? 0.0
        : (out.modelRefsPerSec - out.refsPerSec) / out.refsPerSec;
    out.mvaDeviation = out.refsPerSec == 0.0
        ? 0.0
        : (out.mvaRefsPerSec - out.refsPerSec) / out.refsPerSec;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vmp;
    setInformEnabled(false);
    const auto opts = bench::parseBenchOptions("hier", argc, argv);
    bench::Artifact artifact("hier", opts);

    bench::banner("Hierarchy scaling",
                  "flat single bus vs 2/4/8-cluster two-level "
                  "hierarchy, 4-32 CPUs");

    // Every {cpu count x topology} whose cluster shape respects the
    // paper's bus-loading rule: a VMEbus carries ~5 boards, and each
    // cluster bus already hosts the inter-bus cache board, so cap the
    // processor boards per cluster at 4. Both workload series.
    std::vector<Cell> cells;
    for (const bool shared : {false, true}) {
        for (const std::uint32_t cpus : {4u, 8u, 16u, 32u}) {
            cells.push_back({cpus, 0, shared});
            for (const std::uint32_t k : {2u, 4u, 8u}) {
                if (cpus % k != 0 || cpus / k > 4)
                    continue;
                cells.push_back({cpus, k, shared});
            }
        }
    }

    core::SweepOptions sweep_opts;
    sweep_opts.threads = opts.threads;
    const auto results = core::parallelMap(
        cells.size(),
        [&](std::size_t i) {
            return runCell(cells[i], opts.arbitration);
        },
        sweep_opts);

    for (const bool shared : {false, true}) {
        TableWriter table(
            std::string(shared ? "Shared kernel image ("
                               : "Partitioned workloads (") +
            (shared ? std::to_string(kSharedRefs)
                    : std::to_string(kPartitionedRefs)) +
            " refs/cpu, 16K caches, 256B pages)");
        table.columns({"CPUs", "Topology", "Miss %", "g", "Bus util %",
                       "Refs/s (sim)", "Refs/s (open)", "Open dev %",
                       "Refs/s (MVA)", "MVA dev %"});
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (cells[i].shared != shared)
                continue;
            const auto &r = results[i];
            char dev[32];
            std::snprintf(dev, sizeof(dev), "%.1f", r.deviation * 100);
            char mva_dev[32];
            std::snprintf(mva_dev, sizeof(mva_dev), "%.1f",
                          r.mvaDeviation * 100);
            const char *open_col = !r.modelValid ? "n/a (contention)"
                : r.openSaturated              ? "n/a (saturated)"
                                               : dev;
            table.row()
                .cell(std::uint64_t{cells[i].cpus})
                .cell(cells[i].topology())
                .cell(r.missRatio * 100, 2)
                .cell(r.g, 3)
                .cell(r.busUtilization * 100, 1)
                .cell(r.refsPerSec, 0)
                .cell(r.modelRefsPerSec, 0)
                .cell(open_col)
                .cell(r.mvaRefsPerSec, 0)
                .cell(r.mvaValid      ? mva_dev
                      : r.mvaCascade ? "n/a (retry cascade)"
                                     : "n/a (contention)");

            Json config = bench::cacheConfigJson(kCacheBytes,
                                                 kPageBytes, 4);
            config["processors"] = Json(std::uint64_t{cells[i].cpus});
            config["clusters"] =
                Json(std::uint64_t{cells[i].clusters});
            config["shared_kernel"] = Json(cells[i].shared);
            config["arbitration"] = Json(std::string(
                mem::arbitrationName(opts.arbitration.discipline)));
            config["refs_per_cpu"] = Json(
                cells[i].shared ? kSharedRefs : kPartitionedRefs);
            Json metrics = Json::object();
            metrics["miss_ratio"] = Json(r.missRatio);
            metrics["global_per_miss"] = Json(r.g);
            metrics["bus_utilization"] = Json(r.busUtilization);
            metrics["mean_local_utilization"] =
                Json(r.meanLocalUtilization);
            metrics["refs_per_sec"] = Json(r.refsPerSec);
            metrics["model_refs_per_sec"] = Json(r.modelRefsPerSec);
            metrics["model_deviation"] = Json(r.deviation);
            metrics["model_valid"] = Json(r.modelValid);
            metrics["open_saturated"] = Json(r.openSaturated);
            metrics["mva_refs_per_sec"] = Json(r.mvaRefsPerSec);
            metrics["mva_deviation"] = Json(r.mvaDeviation);
            metrics["mva_valid"] = Json(r.mvaValid);
            metrics["mva_retry_cascade"] = Json(r.mvaCascade);
            metrics["mva_loops_per_global_miss"] = Json(r.mvaLoops);
            metrics["refs"] = Json(r.refs);
            metrics["misses"] = Json(r.misses);
            metrics["global_fetches"] = Json(r.globalFetches);
            metrics["consistency_actions"] =
                Json(r.consistencyActions);
            artifact.add(cells[i].label(), std::move(config),
                         std::move(metrics));
        }
        table.print(std::cout);
    }

    // Acceptance summary: best 16-CPU hierarchy vs flat 16-CPU single
    // bus on the partitioned series, plus the worst hierarchical model
    // deviation inside the model's domain.
    double flat16 = 0.0, hier16 = 0.0, worst_dev = 0.0;
    double worst_mva_dev = 0.0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto &c = cells[i];
        const auto &r = results[i];
        if (!c.shared && c.cpus == 16 && c.clusters == 0)
            flat16 = r.refsPerSec;
        if (!c.shared && c.cpus == 16 && c.clusters != 0)
            hier16 = std::max(hier16, r.refsPerSec);
        if (c.clusters != 0 && r.modelValid)
            worst_dev = std::max(worst_dev, std::abs(r.deviation));
        if (r.mvaValid)
            worst_mva_dev =
                std::max(worst_mva_dev, std::abs(r.mvaDeviation));
    }
    const double speedup = flat16 == 0.0 ? 0.0 : hier16 / flat16;
    std::cout << "16-CPU hierarchy vs flat single bus (partitioned): "
              << speedup << "x aggregate refs/s ("
              << (speedup >= 2.0 ? "PASS" : "FAIL")
              << " >= 2x)\n"
              << "Worst HierQueuingModel deviation (model domain): "
              << worst_dev * 100 << "% ("
              << (worst_dev <= 0.15 ? "PASS" : "FAIL")
              << " <= 15%)\n"
              << "Worst MVA deviation (contention-free, "
                 "cascade-free cells; saturated flat buses "
                 "included): "
              << worst_mva_dev * 100 << "% ("
              << (worst_mva_dev <= 0.15 ? "PASS" : "FAIL")
              << " <= 15%)\n\n";

    artifact.note("Flat vs 2/4/8-cluster hierarchy, 4-32 CPUs, "
                  "partitioned and shared workloads (atum2 mix, "
                  "16K/256B/4-way caches)");
    artifact.note("Model columns: QueuingModel (flat cells) and "
                  "HierQueuingModel (hier cells) fed the measured m "
                  "and g of each run; model_valid=false marks runs "
                  "with g > 1 or measurable cross-cluster "
                  "invalidate/downgrade/recall traffic — the "
                  "data-contention regime the load model excludes");
    artifact.note("mva_* columns: closed MVA overlay fed each run's "
                  "measured load profile — flat cells via MvaModel, "
                  "hier cells via HierQueuingModel::predictMva; "
                  "mva_valid keeps the data-contention exclusion but "
                  "not the saturation one, so saturated partitioned "
                  "flat buses are in-domain; hier cells whose "
                  "predicted retry loops quantize against the IBC "
                  "busy period (mva_retry_cascade) are excluded");
    artifact.write();
    return (speedup >= 2.0 && worst_dev <= 0.15 &&
            worst_mva_dev <= 0.15)
        ? 0
        : 1;
}
