/**
 * @file
 * Regenerates the Section 5.4 synchronization study: "the
 * straightforward use of test-and-set locks on the same cache pages as
 * the data being modified could result in enormous consistency
 * overhead". Compares, for 2-4 contending processors:
 *
 *  - cached test-and-set with lock and data on the SAME cache page
 *    (the worst case the paper warns about);
 *  - cached test-and-set with the lock on its own page;
 *  - uncached test-and-set in non-cached global memory;
 *  - the notification lock built on the bus monitor (entry 11 +
 *    notify transaction).
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "core/system.hh"
#include "sim/stats.hh"
#include "sync/locks.hh"
#include "trace/synthetic.hh"

namespace
{

using namespace vmp;

struct LockResult
{
    Tick elapsed = 0;
    std::uint64_t busTx = 0;
    std::uint64_t ownershipTx = 0;
    std::uint64_t writeBacks = 0;
    std::uint64_t notifies = 0;
    bool correct = false;
};

LockResult
runStudy(sync::LockKind kind, bool same_page, std::uint32_t cpus,
         std::uint32_t iters)
{
    sync::LockWorkload workload;
    workload.kind = kind;
    workload.iterations = iters;
    workload.counterAddr = trace::kernelBase + 0x4000;
    // The critical section updates the counter plus two more words of
    // protected data on the counter's cache page, so stealing that
    // page mid-critical-section costs the holder real retries.
    workload.extraWork = 2;
    workload.workBase = workload.counterAddr + 16;
    if (kind == sync::LockKind::CachedTas) {
        workload.lockAddr = same_page
            ? workload.counterAddr + 8 // same 256B cache page
            : trace::kernelBase + 0x8000;
    } else {
        workload.lockAddr = 0x100;
    }

    core::VmpConfig cfg;
    cfg.processors = cpus;
    cfg.cache = cache::CacheConfig{256, 4, 64, true};
    cfg.memBytes = MiB(8);
    core::VmpSystem system(cfg);
    const auto cpu_objs = system.runPrograms(
        std::vector<cpu::Program>(cpus, sync::lockWorker(workload)));

    LockResult result;
    for (const auto &c : cpu_objs)
        result.elapsed = std::max(result.elapsed, c->elapsed());
    std::uint32_t final_value = 0;
    system.controller(0).readWord(1, workload.counterAddr, true,
                                  [&](std::uint32_t v) {
                                      final_value = v;
                                  });
    system.events().run();
    result.correct = final_value == iters * cpus;
    result.busTx = system.bus().transactions().value();
    result.ownershipTx =
        system.bus().countOf(mem::TxType::ReadPrivate).value() +
        system.bus().countOf(mem::TxType::AssertOwnership).value();
    result.notifies = system.bus().countOf(mem::TxType::Notify).value();
    result.writeBacks =
        system.bus().countOf(mem::TxType::WriteBack).value();
    return result;
}

void
printStudy(bench::Artifact &artifact, std::uint32_t cpus,
           std::uint32_t iters)
{
    TableWriter table("Lock study: " + std::to_string(cpus) +
                      " CPUs x " + std::to_string(iters) +
                      " critical sections each");
    table.columns({"Lock", "Elapsed (us)", "us/crit-section",
                   "Bus tx", "Ownership tx", "Write-backs",
                   "Notifies", "Correct"});
    struct Case
    {
        const char *name;
        sync::LockKind kind;
        bool samePage;
    };
    const Case cases[] = {
        {"cached TAS, lock on data page", sync::LockKind::CachedTas,
         true},
        {"cached TAS, lock on own page", sync::LockKind::CachedTas,
         false},
        {"uncached TAS", sync::LockKind::UncachedTas, false},
        {"notify lock (bus monitor)", sync::LockKind::Notify, false},
    };
    for (const auto &c : cases) {
        const auto result = runStudy(c.kind, c.samePage, cpus, iters);
        table.row()
            .cell(c.name)
            .cell(toUsec(result.elapsed), 0)
            .cell(toUsec(result.elapsed) /
                      static_cast<double>(cpus * iters),
                  1)
            .cell(result.busTx)
            .cell(result.ownershipTx)
            .cell(result.writeBacks)
            .cell(result.notifies)
            .cell(result.correct ? "yes" : "NO");

        Json config = Json::object();
        config["lock"] = Json(c.name);
        config["same_page"] = Json(c.samePage);
        config["processors"] = Json(std::uint64_t{cpus});
        config["iterations"] = Json(std::uint64_t{iters});
        Json metrics = Json::object();
        metrics["elapsed_us"] = Json(toUsec(result.elapsed));
        metrics["us_per_critical_section"] =
            Json(toUsec(result.elapsed) /
                 static_cast<double>(cpus * iters));
        metrics["bus_transactions"] = Json(result.busTx);
        metrics["ownership_transactions"] = Json(result.ownershipTx);
        metrics["write_backs"] = Json(result.writeBacks);
        metrics["notifies"] = Json(result.notifies);
        metrics["correct"] = Json(result.correct);
        artifact.add(std::to_string(cpus) + "cpu/" +
                         std::string(c.name),
                     std::move(config), std::move(metrics));
    }
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vmp;
    setInformEnabled(false);
    const auto opts = bench::parseBenchOptions("locks", argc, argv);
    bench::Artifact artifact("locks", opts);

    bench::banner("Section 5.4", "Consistency Overhead of "
                                 "Synchronization (lock comparison)");

    printStudy(artifact, 2, 40);
    printStudy(artifact, 4, 25);

    std::cout
        << "Expected shape (paper): test-and-set on the data's own "
           "cache page thrashes worst;\nnotification locks eliminate "
           "spin traffic entirely.\n";
    return 0;
}
