file(REMOVE_RECURSE
  "CMakeFiles/test_snoopy.dir/test_snoopy.cc.o"
  "CMakeFiles/test_snoopy.dir/test_snoopy.cc.o.d"
  "test_snoopy"
  "test_snoopy.pdb"
  "test_snoopy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snoopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
