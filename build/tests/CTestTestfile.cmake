# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_monitor[1]_include.cmake")
include("/root/repo/build/tests/test_proto[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_analytic[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_snoopy[1]_include.cmake")
include("/root/repo/build/tests/test_sync[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_timing[1]_include.cmake")
include("/root/repo/build/tests/test_calibration[1]_include.cmake")
