file(REMOVE_RECURSE
  "CMakeFiles/parallel_counter.dir/parallel_counter.cpp.o"
  "CMakeFiles/parallel_counter.dir/parallel_counter.cpp.o.d"
  "parallel_counter"
  "parallel_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
