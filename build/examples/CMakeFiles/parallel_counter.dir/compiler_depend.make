# Empty compiler generated dependencies file for parallel_counter.
# This may be replaced when dependencies are built.
