# Empty compiler generated dependencies file for dma_io.
# This may be replaced when dependencies are built.
