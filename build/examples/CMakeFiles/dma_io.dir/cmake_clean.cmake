file(REMOVE_RECURSE
  "CMakeFiles/dma_io.dir/dma_io.cpp.o"
  "CMakeFiles/dma_io.dir/dma_io.cpp.o.d"
  "dma_io"
  "dma_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dma_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
