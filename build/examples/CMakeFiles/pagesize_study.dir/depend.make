# Empty dependencies file for pagesize_study.
# This may be replaced when dependencies are built.
