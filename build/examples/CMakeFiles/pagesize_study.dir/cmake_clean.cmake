file(REMOVE_RECURSE
  "CMakeFiles/pagesize_study.dir/pagesize_study.cpp.o"
  "CMakeFiles/pagesize_study.dir/pagesize_study.cpp.o.d"
  "pagesize_study"
  "pagesize_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagesize_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
