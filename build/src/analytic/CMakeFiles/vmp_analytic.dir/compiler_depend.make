# Empty compiler generated dependencies file for vmp_analytic.
# This may be replaced when dependencies are built.
