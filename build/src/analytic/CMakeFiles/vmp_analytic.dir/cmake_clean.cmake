file(REMOVE_RECURSE
  "CMakeFiles/vmp_analytic.dir/models.cc.o"
  "CMakeFiles/vmp_analytic.dir/models.cc.o.d"
  "libvmp_analytic.a"
  "libvmp_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
