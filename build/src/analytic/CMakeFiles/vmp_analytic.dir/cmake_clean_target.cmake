file(REMOVE_RECURSE
  "libvmp_analytic.a"
)
