# Empty dependencies file for vmp_mem.
# This may be replaced when dependencies are built.
