file(REMOVE_RECURSE
  "libvmp_mem.a"
)
