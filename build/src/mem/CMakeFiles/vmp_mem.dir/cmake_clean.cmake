file(REMOVE_RECURSE
  "CMakeFiles/vmp_mem.dir/block_copier.cc.o"
  "CMakeFiles/vmp_mem.dir/block_copier.cc.o.d"
  "CMakeFiles/vmp_mem.dir/dma.cc.o"
  "CMakeFiles/vmp_mem.dir/dma.cc.o.d"
  "CMakeFiles/vmp_mem.dir/phys_mem.cc.o"
  "CMakeFiles/vmp_mem.dir/phys_mem.cc.o.d"
  "CMakeFiles/vmp_mem.dir/vme_bus.cc.o"
  "CMakeFiles/vmp_mem.dir/vme_bus.cc.o.d"
  "libvmp_mem.a"
  "libvmp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
