file(REMOVE_RECURSE
  "libvmp_sync.a"
)
