# Empty dependencies file for vmp_sync.
# This may be replaced when dependencies are built.
