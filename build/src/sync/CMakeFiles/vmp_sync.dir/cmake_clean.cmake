file(REMOVE_RECURSE
  "CMakeFiles/vmp_sync.dir/locks.cc.o"
  "CMakeFiles/vmp_sync.dir/locks.cc.o.d"
  "CMakeFiles/vmp_sync.dir/mailbox.cc.o"
  "CMakeFiles/vmp_sync.dir/mailbox.cc.o.d"
  "libvmp_sync.a"
  "libvmp_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
