# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("trace")
subdirs("cache")
subdirs("mem")
subdirs("monitor")
subdirs("proto")
subdirs("vm")
subdirs("cpu")
subdirs("snoopy")
subdirs("sync")
subdirs("analytic")
subdirs("core")
