# Empty dependencies file for vmp_cpu.
# This may be replaced when dependencies are built.
