file(REMOVE_RECURSE
  "CMakeFiles/vmp_cpu.dir/program_cpu.cc.o"
  "CMakeFiles/vmp_cpu.dir/program_cpu.cc.o.d"
  "CMakeFiles/vmp_cpu.dir/trace_cpu.cc.o"
  "CMakeFiles/vmp_cpu.dir/trace_cpu.cc.o.d"
  "libvmp_cpu.a"
  "libvmp_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
