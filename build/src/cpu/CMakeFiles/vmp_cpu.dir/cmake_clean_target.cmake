file(REMOVE_RECURSE
  "libvmp_cpu.a"
)
