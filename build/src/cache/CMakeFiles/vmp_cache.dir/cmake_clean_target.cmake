file(REMOVE_RECURSE
  "libvmp_cache.a"
)
