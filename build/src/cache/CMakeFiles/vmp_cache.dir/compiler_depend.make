# Empty compiler generated dependencies file for vmp_cache.
# This may be replaced when dependencies are built.
