file(REMOVE_RECURSE
  "CMakeFiles/vmp_cache.dir/cache.cc.o"
  "CMakeFiles/vmp_cache.dir/cache.cc.o.d"
  "libvmp_cache.a"
  "libvmp_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
