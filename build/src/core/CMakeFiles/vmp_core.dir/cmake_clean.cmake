file(REMOVE_RECURSE
  "CMakeFiles/vmp_core.dir/fast_sim.cc.o"
  "CMakeFiles/vmp_core.dir/fast_sim.cc.o.d"
  "CMakeFiles/vmp_core.dir/paged_system.cc.o"
  "CMakeFiles/vmp_core.dir/paged_system.cc.o.d"
  "CMakeFiles/vmp_core.dir/system.cc.o"
  "CMakeFiles/vmp_core.dir/system.cc.o.d"
  "libvmp_core.a"
  "libvmp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
