
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/analyzer.cc" "src/trace/CMakeFiles/vmp_trace.dir/analyzer.cc.o" "gcc" "src/trace/CMakeFiles/vmp_trace.dir/analyzer.cc.o.d"
  "/root/repo/src/trace/ref.cc" "src/trace/CMakeFiles/vmp_trace.dir/ref.cc.o" "gcc" "src/trace/CMakeFiles/vmp_trace.dir/ref.cc.o.d"
  "/root/repo/src/trace/synthetic.cc" "src/trace/CMakeFiles/vmp_trace.dir/synthetic.cc.o" "gcc" "src/trace/CMakeFiles/vmp_trace.dir/synthetic.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/trace/CMakeFiles/vmp_trace.dir/trace_io.cc.o" "gcc" "src/trace/CMakeFiles/vmp_trace.dir/trace_io.cc.o.d"
  "/root/repo/src/trace/workloads.cc" "src/trace/CMakeFiles/vmp_trace.dir/workloads.cc.o" "gcc" "src/trace/CMakeFiles/vmp_trace.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vmp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
