# Empty dependencies file for vmp_trace.
# This may be replaced when dependencies are built.
