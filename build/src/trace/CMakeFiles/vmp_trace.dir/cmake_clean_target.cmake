file(REMOVE_RECURSE
  "libvmp_trace.a"
)
