file(REMOVE_RECURSE
  "CMakeFiles/vmp_trace.dir/analyzer.cc.o"
  "CMakeFiles/vmp_trace.dir/analyzer.cc.o.d"
  "CMakeFiles/vmp_trace.dir/ref.cc.o"
  "CMakeFiles/vmp_trace.dir/ref.cc.o.d"
  "CMakeFiles/vmp_trace.dir/synthetic.cc.o"
  "CMakeFiles/vmp_trace.dir/synthetic.cc.o.d"
  "CMakeFiles/vmp_trace.dir/trace_io.cc.o"
  "CMakeFiles/vmp_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/vmp_trace.dir/workloads.cc.o"
  "CMakeFiles/vmp_trace.dir/workloads.cc.o.d"
  "libvmp_trace.a"
  "libvmp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
