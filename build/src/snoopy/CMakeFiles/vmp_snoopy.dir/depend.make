# Empty dependencies file for vmp_snoopy.
# This may be replaced when dependencies are built.
