file(REMOVE_RECURSE
  "libvmp_snoopy.a"
)
