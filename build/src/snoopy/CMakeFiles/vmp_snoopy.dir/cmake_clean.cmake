file(REMOVE_RECURSE
  "CMakeFiles/vmp_snoopy.dir/snoopy.cc.o"
  "CMakeFiles/vmp_snoopy.dir/snoopy.cc.o.d"
  "libvmp_snoopy.a"
  "libvmp_snoopy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_snoopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
