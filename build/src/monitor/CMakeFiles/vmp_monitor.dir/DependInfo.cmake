
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitor/action_table.cc" "src/monitor/CMakeFiles/vmp_monitor.dir/action_table.cc.o" "gcc" "src/monitor/CMakeFiles/vmp_monitor.dir/action_table.cc.o.d"
  "/root/repo/src/monitor/bus_monitor.cc" "src/monitor/CMakeFiles/vmp_monitor.dir/bus_monitor.cc.o" "gcc" "src/monitor/CMakeFiles/vmp_monitor.dir/bus_monitor.cc.o.d"
  "/root/repo/src/monitor/interrupt_fifo.cc" "src/monitor/CMakeFiles/vmp_monitor.dir/interrupt_fifo.cc.o" "gcc" "src/monitor/CMakeFiles/vmp_monitor.dir/interrupt_fifo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/vmp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vmp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
