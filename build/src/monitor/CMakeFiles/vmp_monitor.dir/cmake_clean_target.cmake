file(REMOVE_RECURSE
  "libvmp_monitor.a"
)
