file(REMOVE_RECURSE
  "CMakeFiles/vmp_monitor.dir/action_table.cc.o"
  "CMakeFiles/vmp_monitor.dir/action_table.cc.o.d"
  "CMakeFiles/vmp_monitor.dir/bus_monitor.cc.o"
  "CMakeFiles/vmp_monitor.dir/bus_monitor.cc.o.d"
  "CMakeFiles/vmp_monitor.dir/interrupt_fifo.cc.o"
  "CMakeFiles/vmp_monitor.dir/interrupt_fifo.cc.o.d"
  "libvmp_monitor.a"
  "libvmp_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
