# Empty dependencies file for vmp_monitor.
# This may be replaced when dependencies are built.
