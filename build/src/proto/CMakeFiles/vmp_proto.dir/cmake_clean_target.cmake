file(REMOVE_RECURSE
  "libvmp_proto.a"
)
