# Empty compiler generated dependencies file for vmp_proto.
# This may be replaced when dependencies are built.
