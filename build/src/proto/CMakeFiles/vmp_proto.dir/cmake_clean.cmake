file(REMOVE_RECURSE
  "CMakeFiles/vmp_proto.dir/controller.cc.o"
  "CMakeFiles/vmp_proto.dir/controller.cc.o.d"
  "CMakeFiles/vmp_proto.dir/translator.cc.o"
  "CMakeFiles/vmp_proto.dir/translator.cc.o.d"
  "libvmp_proto.a"
  "libvmp_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
