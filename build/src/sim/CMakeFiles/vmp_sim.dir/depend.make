# Empty dependencies file for vmp_sim.
# This may be replaced when dependencies are built.
