file(REMOVE_RECURSE
  "CMakeFiles/vmp_sim.dir/debug.cc.o"
  "CMakeFiles/vmp_sim.dir/debug.cc.o.d"
  "CMakeFiles/vmp_sim.dir/event.cc.o"
  "CMakeFiles/vmp_sim.dir/event.cc.o.d"
  "CMakeFiles/vmp_sim.dir/logging.cc.o"
  "CMakeFiles/vmp_sim.dir/logging.cc.o.d"
  "CMakeFiles/vmp_sim.dir/random.cc.o"
  "CMakeFiles/vmp_sim.dir/random.cc.o.d"
  "CMakeFiles/vmp_sim.dir/stats.cc.o"
  "CMakeFiles/vmp_sim.dir/stats.cc.o.d"
  "libvmp_sim.a"
  "libvmp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
