file(REMOVE_RECURSE
  "libvmp_sim.a"
)
