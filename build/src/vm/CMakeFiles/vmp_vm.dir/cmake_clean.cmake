file(REMOVE_RECURSE
  "CMakeFiles/vmp_vm.dir/backing_store.cc.o"
  "CMakeFiles/vmp_vm.dir/backing_store.cc.o.d"
  "CMakeFiles/vmp_vm.dir/vm_system.cc.o"
  "CMakeFiles/vmp_vm.dir/vm_system.cc.o.d"
  "libvmp_vm.a"
  "libvmp_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
