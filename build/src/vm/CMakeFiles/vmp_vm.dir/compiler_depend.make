# Empty compiler generated dependencies file for vmp_vm.
# This may be replaced when dependencies are built.
