file(REMOVE_RECURSE
  "libvmp_vm.a"
)
