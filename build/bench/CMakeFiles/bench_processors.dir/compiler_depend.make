# Empty compiler generated dependencies file for bench_processors.
# This may be replaced when dependencies are built.
