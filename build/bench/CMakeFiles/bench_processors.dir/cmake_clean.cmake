file(REMOVE_RECURSE
  "CMakeFiles/bench_processors.dir/bench_processors.cc.o"
  "CMakeFiles/bench_processors.dir/bench_processors.cc.o.d"
  "bench_processors"
  "bench_processors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_processors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
