
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4.cc" "bench/CMakeFiles/bench_fig4.dir/bench_fig4.cc.o" "gcc" "bench/CMakeFiles/bench_fig4.dir/bench_fig4.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vmp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/vmp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vmp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/vmp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/vmp_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/vmp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/vmp_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vmp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vmp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
