/**
 * @file
 * Trace-driven processor model: replays a reference stream against its
 * cache at the 68020 execution rate, trapping into the software miss
 * handler (the CacheController) on misses and servicing bus-monitor
 * interrupts between references. This is the workhorse of the
 * multiprocessor performance experiments (Sections 5.2, 5.3).
 */

#ifndef VMP_CPU_TRACE_CPU_HH
#define VMP_CPU_TRACE_CPU_HH

#include <functional>

#include "cpu/timing.hh"
#include "proto/controller.hh"
#include "sim/event.hh"
#include "sim/stats.hh"
#include "trace/ref.hh"

namespace vmp::cpu
{

/** One trace-driven processor. */
class TraceCpu
{
  public:
    using Done = std::function<void()>;

    TraceCpu(CpuId id, EventQueue &events,
             proto::CacheController &controller, trace::RefSource &refs,
             const M68020Timing &timing = {});
    ~TraceCpu();

    /** Start executing; @p done fires when the trace is exhausted. */
    void run(Done done);

    /**
     * Request a failstop: the processor halts at the next instruction
     * boundary (the paper's failure model is failstop, not mid-
     * operation corruption), without firing the run() completion — a
     * dead board never reports. If the CPU is already idle it halts
     * immediately. The system run loop must account for halted CPUs.
     */
    void requestFailstop();

    /**
     * Restart after a failstop (hot-rejoin): resumes the trace from
     * the next unreplayed reference, or returns to the idle/interrupt-
     * service loop if the trace was already exhausted.
     */
    void resume();

    /** True while halted by a failstop. */
    bool halted() const { return halted_; }

    /** True once the trace has been fully replayed (done fired). */
    bool finished() const { return exhausted_; }

    bool running() const { return running_; }
    CpuId cpuId() const { return id_; }

    // --- statistics ---
    std::uint64_t refsExecuted() const { return refs_.value(); }
    const Counter &refsRetired() const { return refs_; }
    Tick startedAt() const { return startedAt_; }
    Tick finishedAt() const { return finishedAt_; }
    /** Total elapsed execution time. */
    Tick elapsed() const;
    /** Full-speed time for the retired references. */
    Tick idealTicks() const;
    /**
     * Processor performance normalized to 1.0 at zero misses — the
     * metric of Figure 3.
     */
    double performance() const;
    /** Miss ratio observed by this CPU (initial misses / references). */
    double missRatio() const;
    void registerStats(StatGroup &group) const;

  private:
    void step();
    void onInterruptLine();

    CpuId id_;
    EventQueue &events_;
    proto::CacheController &controller_;
    trace::RefSource &source_;
    M68020Timing timing_;
    Done done_;
    bool running_ = false;
    bool idleServicing_ = false;
    bool pendingFailstop_ = false;
    bool halted_ = false;
    /** Trace fully replayed (distinguishes idle from halted-mid-run). */
    bool exhausted_ = false;
    Tick startedAt_ = 0;
    Tick finishedAt_ = 0;
    Counter refs_;
};

} // namespace vmp::cpu

#endif // VMP_CPU_TRACE_CPU_HH
