/**
 * @file
 * A tiny scripted instruction set for functional multiprocessor tests
 * and the synchronization studies of Section 5.4. Programs are short
 * op vectors (loads, stores, cached/uncached test-and-set, branches,
 * notification primitives) executed by ProgramCpu at the 68020 rate;
 * unlike the trace CPU they move real data through the caches, so
 * coherence results can be checked end to end.
 */

#ifndef VMP_CPU_PROGRAM_HH
#define VMP_CPU_PROGRAM_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace vmp::cpu
{

/** Number of general-purpose registers a program can use. */
constexpr std::size_t numRegs = 8;

/** Operation kinds. */
enum class OpKind : std::uint8_t
{
    Read,          //!< reg[dst] = cached[vaddr]
    Write,         //!< cached[vaddr] = reg[src]
    WriteImm,      //!< cached[vaddr] = imm
    CachedTas,     //!< reg[dst] = cached[vaddr]; cached[vaddr] = 1
    UncachedRead,  //!< reg[dst] = phys[addr]
    UncachedWrite, //!< phys[addr] = imm
    UncachedTas,   //!< reg[dst] = atomic test-and-set phys[addr]
    MoveImm,       //!< reg[dst] = imm
    AddImm,        //!< reg[dst] += imm
    AddReg,        //!< reg[dst] += reg[src]
    BranchIfZero,  //!< if reg[src] == 0 goto target
    BranchIfNotZero, //!< if reg[src] != 0 goto target
    DecBranchNotZero, //!< --reg[dst]; if reg[dst] != 0 goto target
    Jump,          //!< goto target
    Notify,        //!< notify bus transaction on frame of addr
    SetActionEntry, //!< write own action-table entry for addr (imm)
    WaitNotify,    //!< suspend until a notification (or timeout imm ns)
    Delay,         //!< idle for imm ns
    Halt,          //!< stop
};

/** One scripted operation. */
struct Op
{
    OpKind kind = OpKind::Halt;
    Addr addr = 0;
    std::uint32_t imm = 0;
    std::uint8_t dst = 0;
    std::uint8_t src = 0;
    std::int32_t target = 0;
    bool supervisor = false;
};

/** A program is a flat op vector; targets are op indices. */
using Program = std::vector<Op>;

// Small builder helpers keeping test programs readable.
inline Op
opRead(Addr va, std::uint8_t dst)
{
    Op op;
    op.kind = OpKind::Read;
    op.addr = va;
    op.dst = dst;
    return op;
}

inline Op
opWrite(Addr va, std::uint8_t src)
{
    Op op;
    op.kind = OpKind::Write;
    op.addr = va;
    op.src = src;
    return op;
}

inline Op
opWriteImm(Addr va, std::uint32_t imm)
{
    Op op;
    op.kind = OpKind::WriteImm;
    op.addr = va;
    op.imm = imm;
    return op;
}

inline Op
opCachedTas(Addr va, std::uint8_t dst)
{
    Op op;
    op.kind = OpKind::CachedTas;
    op.addr = va;
    op.dst = dst;
    return op;
}

inline Op
opUncachedRead(Addr pa, std::uint8_t dst)
{
    Op op;
    op.kind = OpKind::UncachedRead;
    op.addr = pa;
    op.dst = dst;
    return op;
}

inline Op
opUncachedWrite(Addr pa, std::uint32_t imm)
{
    Op op;
    op.kind = OpKind::UncachedWrite;
    op.addr = pa;
    op.imm = imm;
    return op;
}

inline Op
opUncachedTas(Addr pa, std::uint8_t dst)
{
    Op op;
    op.kind = OpKind::UncachedTas;
    op.addr = pa;
    op.dst = dst;
    return op;
}

inline Op
opMoveImm(std::uint8_t dst, std::uint32_t imm)
{
    Op op;
    op.kind = OpKind::MoveImm;
    op.dst = dst;
    op.imm = imm;
    return op;
}

inline Op
opAddImm(std::uint8_t dst, std::uint32_t imm)
{
    Op op;
    op.kind = OpKind::AddImm;
    op.dst = dst;
    op.imm = imm;
    return op;
}

inline Op
opAddReg(std::uint8_t dst, std::uint8_t src)
{
    Op op;
    op.kind = OpKind::AddReg;
    op.dst = dst;
    op.src = src;
    return op;
}

inline Op
opBranchIfZero(std::uint8_t src, std::int32_t target)
{
    Op op;
    op.kind = OpKind::BranchIfZero;
    op.src = src;
    op.target = target;
    return op;
}

inline Op
opBranchIfNotZero(std::uint8_t src, std::int32_t target)
{
    Op op;
    op.kind = OpKind::BranchIfNotZero;
    op.src = src;
    op.target = target;
    return op;
}

inline Op
opDecBranchNotZero(std::uint8_t dst, std::int32_t target)
{
    Op op;
    op.kind = OpKind::DecBranchNotZero;
    op.dst = dst;
    op.target = target;
    return op;
}

inline Op
opJump(std::int32_t target)
{
    Op op;
    op.kind = OpKind::Jump;
    op.target = target;
    return op;
}

inline Op
opNotify(Addr pa)
{
    Op op;
    op.kind = OpKind::Notify;
    op.addr = pa;
    return op;
}

inline Op
opSetActionEntry(Addr pa, std::uint32_t entry)
{
    Op op;
    op.kind = OpKind::SetActionEntry;
    op.addr = pa;
    op.imm = entry;
    return op;
}

inline Op
opWaitNotify(std::uint32_t timeout_ns)
{
    Op op;
    op.kind = OpKind::WaitNotify;
    op.imm = timeout_ns;
    return op;
}

inline Op
opDelay(std::uint32_t ns)
{
    Op op;
    op.kind = OpKind::Delay;
    op.imm = ns;
    return op;
}

inline Op
opHalt()
{
    Op op;
    op.kind = OpKind::Halt;
    return op;
}

} // namespace vmp::cpu

#endif // VMP_CPU_PROGRAM_HH
