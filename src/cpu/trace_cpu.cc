#include "cpu/trace_cpu.hh"

#include "sim/logging.hh"

namespace vmp::cpu
{

TraceCpu::TraceCpu(CpuId id, EventQueue &events,
                   proto::CacheController &controller,
                   trace::RefSource &refs, const M68020Timing &timing)
    : id_(id), events_(events), controller_(controller), source_(refs),
      timing_(timing)
{
    // While executing, interrupts are polled between references; once
    // the trace is exhausted the processor sits in the idle loop and
    // must still take bus-monitor interrupts (it may own pages other
    // processors need).
    controller_.busMonitor().setInterruptLine(
        [this] { onInterruptLine(); });
}

TraceCpu::~TraceCpu()
{
    controller_.busMonitor().setInterruptLine(nullptr);
}

void
TraceCpu::onInterruptLine()
{
    // A halted (failstopped) processor takes no interrupts; its
    // monitor keeps queueing words, which is exactly the wedge the
    // recovery subsystem exists to break.
    if (running_ || idleServicing_ || halted_)
        return;
    idleServicing_ = true;
    events_.scheduleIn(1, [this] {
        if (halted_) {
            idleServicing_ = false;
            return;
        }
        controller_.serviceInterrupts([this] {
            idleServicing_ = false;
            if (!running_ && !halted_ && controller_.interruptPending())
                onInterruptLine();
        });
    }, "idle-service");
}

void
TraceCpu::requestFailstop()
{
    if (halted_)
        return;
    if (running_) {
        // Halt at the next instruction boundary (step() entry).
        pendingFailstop_ = true;
        return;
    }
    halted_ = true;
}

void
TraceCpu::resume()
{
    if (!halted_)
        return;
    halted_ = false;
    pendingFailstop_ = false;
    if (exhausted_ || done_ == nullptr) {
        // Nothing left to replay (or never started): back to idle;
        // pick up any interrupt words that queued while dead.
        if (controller_.interruptPending())
            onInterruptLine();
        return;
    }
    running_ = true;
    step();
}

void
TraceCpu::run(Done done)
{
    if (running_)
        panic("cpu", id_, " started twice");
    running_ = true;
    done_ = std::move(done);
    startedAt_ = events_.now();
    step();
}

void
TraceCpu::step()
{
    // Failstop lands at the instruction boundary: halt without firing
    // done_ (a dead board never reports completion).
    if (pendingFailstop_ || halted_) {
        pendingFailstop_ = false;
        halted_ = true;
        running_ = false;
        finishedAt_ = events_.now();
        return;
    }

    // Bus-monitor interrupts are taken between instructions.
    if (controller_.interruptPending()) {
        controller_.serviceInterrupts([this] { step(); });
        return;
    }

    trace::MemRef ref;
    if (!source_.next(ref)) {
        running_ = false;
        exhausted_ = true;
        finishedAt_ = events_.now();
        if (done_)
            done_();
        // Words that arrived exactly at the boundary are picked up by
        // the idle loop.
        if (controller_.interruptPending())
            onInterruptLine();
        return;
    }

    // Full-speed execution charge for this reference, then present it
    // to the cache; a miss blocks us inside the controller.
    events_.scheduleIn(timing_.refNs(), [this, ref] {
        controller_.access(ref.asid, ref.vaddr, ref.isWrite(),
                           ref.supervisor,
                           [this](proto::AccessOutcome) {
                               ++refs_;
                               step();
                           });
    }, "cpu-step");
}

Tick
TraceCpu::elapsed() const
{
    const Tick end = running_ ? events_.now() : finishedAt_;
    return end - startedAt_;
}

Tick
TraceCpu::idealTicks() const
{
    return refs_.value() * timing_.refNs();
}

double
TraceCpu::performance() const
{
    const Tick actual = elapsed();
    return actual == 0
        ? 1.0
        : static_cast<double>(idealTicks()) /
            static_cast<double>(actual);
}

double
TraceCpu::missRatio() const
{
    return refs_.value() == 0
        ? 0.0
        : static_cast<double>(controller_.misses().value()) /
            static_cast<double>(refs_.value());
}

void
TraceCpu::registerStats(StatGroup &group) const
{
    group.addCounter("refs", "memory references retired", refs_);
}

} // namespace vmp::cpu
