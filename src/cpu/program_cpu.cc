#include "cpu/program_cpu.hh"

#include "sim/logging.hh"

namespace vmp::cpu
{

ProgramCpu::ProgramCpu(CpuId id, EventQueue &events,
                       proto::CacheController &controller, Asid asid,
                       Program program, const M68020Timing &timing,
                       std::uint64_t max_ops)
    : id_(id), events_(events), controller_(controller), asid_(asid),
      program_(std::move(program)), timing_(timing), maxOps_(max_ops)
{
    controller_.setNotifyHandler(
        [this](Addr paddr) { onNotify(paddr); });
    // A halted (or notify-waiting) processor still takes bus-monitor
    // interrupts: it may own pages other processors need.
    controller_.busMonitor().setInterruptLine(
        [this] { onInterruptLine(); });
}

ProgramCpu::~ProgramCpu()
{
    // Unhook callbacks that point into this object.
    controller_.setNotifyHandler(nullptr);
    controller_.busMonitor().setInterruptLine(nullptr);
}

void
ProgramCpu::onInterruptLine()
{
    if ((running_ && !waitingNotify_) || idleServicing_)
        return;
    idleServicing_ = true;
    events_.scheduleIn(1, [this] {
        controller_.serviceInterrupts([this] {
            idleServicing_ = false;
            if ((!running_ || waitingNotify_) &&
                controller_.interruptPending()) {
                onInterruptLine();
            }
        });
    }, "idle-service");
}

void
ProgramCpu::run(Done done)
{
    if (running_)
        panic("program cpu", id_, " started twice");
    running_ = true;
    done_ = std::move(done);
    startedAt_ = events_.now();
    step();
}

std::uint32_t
ProgramCpu::reg(std::size_t index) const
{
    if (index >= regs_.size())
        panic("register index ", index, " out of range");
    return regs_[index];
}

void
ProgramCpu::setReg(std::size_t index, std::uint32_t value)
{
    if (index >= regs_.size())
        panic("register index ", index, " out of range");
    regs_[index] = value;
}

Tick
ProgramCpu::elapsed() const
{
    const Tick end = halted_ ? finishedAt_ : events_.now();
    return end - startedAt_;
}

void
ProgramCpu::onNotify(Addr)
{
    if (!waitingNotify_)
        return;
    waitingNotify_ = false;
    events_.deschedule(notifyTimeout_);
    events_.scheduleIn(timing_.instrNs(), [this] { finishOp(); },
                       "notify-wake");
}

void
ProgramCpu::finishOp()
{
    ++ops_;
    step();
}

void
ProgramCpu::step()
{
    if (ops_.value() >= maxOps_)
        fatal("program cpu", id_, " exceeded ", maxOps_,
              " ops (runaway program?)");

    // Interrupts are serviced between instructions.
    if (controller_.interruptPending()) {
        controller_.serviceInterrupts([this] { step(); });
        return;
    }

    if (pc_ >= program_.size()) {
        halted_ = true;
        running_ = false;
        finishedAt_ = events_.now();
        if (done_)
            done_();
        if (controller_.interruptPending())
            onInterruptLine();
        return;
    }

    const Op op = program_[pc_++];
    const Tick instr = timing_.instrNs();

    switch (op.kind) {
      case OpKind::Read:
        events_.scheduleIn(instr, [this, op] {
            controller_.readWord(asid_, op.addr, op.supervisor,
                                 [this, op](std::uint32_t v) {
                                     regs_[op.dst] = v;
                                     finishOp();
                                 });
        });
        return;

      case OpKind::Write:
        events_.scheduleIn(instr, [this, op] {
            controller_.writeWord(asid_, op.addr, regs_[op.src],
                                  op.supervisor,
                                  [this] { finishOp(); });
        });
        return;

      case OpKind::WriteImm:
        events_.scheduleIn(instr, [this, op] {
            controller_.writeWord(asid_, op.addr, op.imm,
                                  op.supervisor,
                                  [this] { finishOp(); });
        });
        return;

      case OpKind::CachedTas:
        // Indivisible read-modify-write: exclusive ownership must be
        // secured *before* the value is examined (reading through a
        // shared copy first would let two processors both observe the
        // lock free). Once the write access completes, the nested
        // read and write hit synchronously, with no interrupt service
        // in between, so the sequence is atomic in the model — exactly
        // the bus-locked TAS cycle of the 68020.
        events_.scheduleIn(instr, [this, op] {
            controller_.access(
                asid_, op.addr, true, op.supervisor,
                [this, op](proto::AccessOutcome) {
                    controller_.readWord(
                        asid_, op.addr, op.supervisor,
                        [this, op](std::uint32_t old) {
                            controller_.writeWord(
                                asid_, op.addr, 1, op.supervisor,
                                [this, op, old] {
                                    regs_[op.dst] = old;
                                    finishOp();
                                });
                        });
                });
        });
        return;

      case OpKind::UncachedRead:
        events_.scheduleIn(instr, [this, op] {
            controller_.uncachedRead(op.addr,
                                     [this, op](std::uint32_t v) {
                                         regs_[op.dst] = v;
                                         finishOp();
                                     });
        });
        return;

      case OpKind::UncachedWrite:
        events_.scheduleIn(instr, [this, op] {
            controller_.uncachedWrite(op.addr, op.imm,
                                      [this] { finishOp(); });
        });
        return;

      case OpKind::UncachedTas:
        events_.scheduleIn(instr, [this, op] {
            controller_.uncachedTas(op.addr,
                                    [this, op](std::uint32_t old) {
                                        regs_[op.dst] = old;
                                        finishOp();
                                    });
        });
        return;

      case OpKind::MoveImm:
        regs_[op.dst] = op.imm;
        events_.scheduleIn(instr, [this] { finishOp(); });
        return;

      case OpKind::AddImm:
        regs_[op.dst] += op.imm;
        events_.scheduleIn(instr, [this] { finishOp(); });
        return;

      case OpKind::AddReg:
        regs_[op.dst] += regs_[op.src];
        events_.scheduleIn(instr, [this] { finishOp(); });
        return;

      case OpKind::BranchIfZero:
        if (regs_[op.src] == 0)
            pc_ = static_cast<std::size_t>(op.target);
        events_.scheduleIn(instr, [this] { finishOp(); });
        return;

      case OpKind::BranchIfNotZero:
        if (regs_[op.src] != 0)
            pc_ = static_cast<std::size_t>(op.target);
        events_.scheduleIn(instr, [this] { finishOp(); });
        return;

      case OpKind::DecBranchNotZero:
        if (--regs_[op.dst] != 0)
            pc_ = static_cast<std::size_t>(op.target);
        events_.scheduleIn(instr, [this] { finishOp(); });
        return;

      case OpKind::Jump:
        pc_ = static_cast<std::size_t>(op.target);
        events_.scheduleIn(instr, [this] { finishOp(); });
        return;

      case OpKind::Notify:
        events_.scheduleIn(instr, [this, op] {
            controller_.notifyFrame(op.addr, [this] { finishOp(); });
        });
        return;

      case OpKind::SetActionEntry:
        events_.scheduleIn(instr, [this, op] {
            controller_.writeActionTable(
                op.addr, static_cast<mem::ActionEntry>(op.imm & 0b11),
                [this] { finishOp(); });
        });
        return;

      case OpKind::WaitNotify:
        waitingNotify_ = true;
        notifyTimeout_ = events_.scheduleIn(
            op.imm == 0 ? msec(1) : Tick{op.imm},
            [this] {
                if (waitingNotify_) {
                    waitingNotify_ = false;
                    finishOp();
                }
            },
            "notify-timeout");
        return;

      case OpKind::Delay:
        events_.scheduleIn(op.imm, [this] { finishOp(); });
        return;

      case OpKind::Halt:
        halted_ = true;
        running_ = false;
        finishedAt_ = events_.now();
        if (done_)
            done_();
        if (controller_.interruptPending())
            onInterruptLine();
        return;
    }
    panic("program cpu", id_, ": unknown op kind");
}

} // namespace vmp::cpu
