/**
 * @file
 * Scripted-program processor: executes a cpu::Program against its cache
 * controller, one op per instruction time, servicing bus-monitor
 * interrupts between ops. Used by the coherence correctness tests and
 * the Section 5.4 lock benchmarks.
 */

#ifndef VMP_CPU_PROGRAM_CPU_HH
#define VMP_CPU_PROGRAM_CPU_HH

#include <array>
#include <functional>

#include "cpu/program.hh"
#include "cpu/timing.hh"
#include "proto/controller.hh"
#include "sim/event.hh"
#include "sim/stats.hh"

namespace vmp::cpu
{

/** One scripted processor. */
class ProgramCpu
{
  public:
    using Done = std::function<void()>;

    /**
     * @param asid address space the program's cached references use
     * @param max_ops runaway guard: executing more ops is fatal
     */
    ProgramCpu(CpuId id, EventQueue &events,
               proto::CacheController &controller, Asid asid,
               Program program, const M68020Timing &timing = {},
               std::uint64_t max_ops = 10'000'000);
    ~ProgramCpu();

    /** Start execution; @p done fires at Halt (or end of program). */
    void run(Done done);

    bool halted() const { return halted_; }
    CpuId cpuId() const { return id_; }

    /** Register contents (inspect after halt). */
    std::uint32_t reg(std::size_t index) const;
    void setReg(std::size_t index, std::uint32_t value);

    std::uint64_t opsRetired() const { return ops_.value(); }
    Tick startedAt() const { return startedAt_; }
    Tick finishedAt() const { return finishedAt_; }
    Tick elapsed() const;

  private:
    void step();
    void finishOp();
    void onNotify(Addr paddr);
    void onInterruptLine();

    CpuId id_;
    EventQueue &events_;
    proto::CacheController &controller_;
    Asid asid_;
    Program program_;
    M68020Timing timing_;
    std::uint64_t maxOps_;
    Done done_;

    std::array<std::uint32_t, numRegs> regs_{};
    std::size_t pc_ = 0;
    bool running_ = false;
    bool halted_ = false;
    bool waitingNotify_ = false;
    bool idleServicing_ = false;
    EventId notifyTimeout_{};
    Counter ops_;
    Tick startedAt_ = 0;
    Tick finishedAt_ = 0;
};

} // namespace vmp::cpu

#endif // VMP_CPU_PROGRAM_CPU_HH
