/**
 * @file
 * Processor timing model. The prototype pairs a 16 MHz 68020 (60 ns
 * cycle) with zero-wait-state cache access; following MacGregor[16] the
 * paper uses 7 clocks per instruction (2.4 MIPS) and, implicitly in the
 * Figure 3/5 formulas, 1.2 memory references per instruction.
 */

#ifndef VMP_CPU_TIMING_HH
#define VMP_CPU_TIMING_HH

#include "sim/types.hh"

namespace vmp::cpu
{

/** MC68020-style execution-rate parameters. */
struct M68020Timing
{
    /** Processor clock period. */
    Tick clockNs = 60;
    /** Average clocks per instruction (MacGregor[16]). */
    double clocksPerInstr = 7.0;
    /** Average memory references per instruction. */
    double refsPerInstr = 1.2;

    /** Time for one average instruction (417 ns, 2.4 MIPS). */
    Tick
    instrNs() const
    {
        return static_cast<Tick>(static_cast<double>(clockNs) *
                                 clocksPerInstr);
    }

    /** Full-speed time attributed to one memory reference. */
    Tick
    refNs() const
    {
        return static_cast<Tick>(static_cast<double>(instrNs()) /
                                 refsPerInstr);
    }

    /** Instruction execution rate in MIPS. */
    double
    mips() const
    {
        return 1000.0 / static_cast<double>(instrNs());
    }
};

} // namespace vmp::cpu

#endif // VMP_CPU_TIMING_HH
