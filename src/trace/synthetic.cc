#include "trace/synthetic.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace vmp::trace
{

namespace
{

/**
 * Per-process segment base addresses inside user space. The low bits
 * are deliberately irregular: if every segment started on a large
 * power-of-two boundary, all of them (across all address spaces) would
 * collide onto the same cache sets, producing pathological conflict
 * misses no real program mix exhibits.
 */
constexpr Addr codeOffset = 0x0000'0000;
constexpr Addr dataOffset = 0x0112'3400;
constexpr Addr stackOffset = 0x0234'5680;
/** Kernel segment offsets inside the kernel region. */
constexpr Addr osCodeOffset = 0x0001'9E40;
constexpr Addr osDataOffset = 0x0043'7280;
/** Per-process stagger so same-numbered segments differ in set. */
constexpr Addr processStride = 0x0003'7740;

} // namespace

void
SyntheticConfig::check() const
{
    if (totalRefs == 0)
        fatal("synthetic trace: totalRefs must be positive");
    if (processes == 0 || processes > 200)
        fatal("synthetic trace: processes must be in [1, 200]");
    if (quantumRefs == 0)
        fatal("synthetic trace: quantumRefs must be positive");
    if (dataRefProb < 0 || dataRefProb > 1 || stackRefProb < 0 ||
        stackRefProb > 1 || writeFrac < 0 || writeFrac > 1)
        fatal("synthetic trace: probabilities must be in [0, 1]");
    if (osRefFrac < 0 || osRefFrac >= 1)
        fatal("synthetic trace: osRefFrac must be in [0, 1)");
    if (osBurstInstrs < 1)
        fatal("synthetic trace: osBurstInstrs must be >= 1");
    for (const auto *code : {&userCode, &osCode}) {
        if (code->bytes < 4096 || code->functions == 0)
            fatal("synthetic trace: code segment too small");
        if (code->meanRunInstrs < 1)
            fatal("synthetic trace: meanRunInstrs must be >= 1");
    }
    for (const auto *data : {&userData, &osData}) {
        if (data->objects == 0 || data->objectBytes < 4)
            fatal("synthetic trace: data segment too small");
        if (data->meanRunWords < 1)
            fatal("synthetic trace: meanRunWords must be >= 1");
    }
    if (stackBytes < 256)
        fatal("synthetic trace: stack too small");
    if (kernelOffset >= (userBase - kernelBase) / 2)
        fatal("synthetic trace: kernelOffset outside kernel region");
}

/** Generation state for one address space (plus its kernel activity). */
struct SyntheticGen::ProcState
{
    Asid asid = 0;
    Addr base = 0;

    // Code state, separately for user and supervisor mode.
    Addr pc = 0;
    std::uint64_t runLeft = 0;
    Addr osPc = 0;
    std::uint64_t osRunLeft = 0;

    // Data state.
    Addr dataAddr = 0;
    std::uint64_t dataRunLeft = 0;
    Addr osDataAddr = 0;
    std::uint64_t osDataRunLeft = 0;

    // Stack state: byte offset of the top within the stack span.
    Addr stackTop = 0;
};

SyntheticGen::SyntheticGen(const SyntheticConfig &config)
    : cfg_(config), rng_(config.seed)
{
    cfg_.check();
    userFuncDist_ = std::make_unique<ZipfDist>(cfg_.userCode.functions,
                                               cfg_.userCode.theta);
    userObjDist_ = std::make_unique<ZipfDist>(cfg_.userData.objects,
                                              cfg_.userData.theta);
    osFuncDist_ = std::make_unique<ZipfDist>(cfg_.osCode.functions,
                                             cfg_.osCode.theta);
    osObjDist_ = std::make_unique<ZipfDist>(cfg_.osData.objects,
                                            cfg_.osData.theta);

    for (std::uint32_t p = 0; p < cfg_.processes; ++p) {
        auto proc = std::make_unique<ProcState>();
        proc->asid = static_cast<Asid>(cfg_.asidBase + p);
        proc->base = userBase + p * processStride;
        proc->pc = proc->base + codeOffset;
        proc->osPc = kernelBase + cfg_.kernelOffset + osCodeOffset;
        proc->stackTop = cfg_.stackBytes / 2;
        procs_.push_back(std::move(proc));
    }
    quantumLeft_ = cfg_.quantumRefs;
}

SyntheticGen::~SyntheticGen() = default;

SyntheticGen::ProcState &
SyntheticGen::current()
{
    return *procs_[activeProc_];
}

void
SyntheticGen::emit(MemRef &ref, Addr vaddr, RefType type, bool supervisor)
{
    ref.vaddr = vaddr;
    ref.asid = current().asid;
    ref.type = type;
    ref.size = 4;
    ref.supervisor = supervisor;
}

void
SyntheticGen::stepCode(ProcState &proc, const CodeSegmentConfig &cfg,
                       bool supervisor)
{
    Addr &pc = supervisor ? proc.osPc : proc.pc;
    std::uint64_t &run = supervisor ? proc.osRunLeft : proc.runLeft;
    const Addr seg_base = supervisor
        ? kernelBase + cfg_.kernelOffset + osCodeOffset
        : proc.base + codeOffset;
    const Addr seg_end = seg_base + cfg.bytes;

    if (run == 0) {
        // Take a branch.
        if (rng_.chance(cfg.localBranchProb)) {
            const std::int64_t disp =
                static_cast<std::int64_t>(rng_.below(2 * cfg.localRange)) -
                static_cast<std::int64_t>(cfg.localRange);
            std::int64_t target = static_cast<std::int64_t>(pc) + disp;
            target = std::clamp(
                target, static_cast<std::int64_t>(seg_base),
                static_cast<std::int64_t>(seg_end - 4));
            pc = alignDown(static_cast<Addr>(target), 4);
        } else {
            const auto &dist = supervisor ? *osFuncDist_ : *userFuncDist_;
            const std::uint64_t func = dist.sample(rng_);
            const Addr stride = cfg.bytes / cfg.functions;
            pc = seg_base + alignDown(func * stride, 4);
        }
        run = rng_.geometric(1.0 / cfg.meanRunInstrs);
    }

    MemRef ref;
    emit(ref, pc, RefType::InstrFetch, supervisor);
    queue_.push_back(ref);
    pc += 4;
    if (pc >= seg_end)
        pc = seg_base;
    --run;
}

void
SyntheticGen::stepData(ProcState &proc, const DataSegmentConfig &cfg,
                       bool supervisor)
{
    Addr &addr = supervisor ? proc.osDataAddr : proc.dataAddr;
    std::uint64_t &run = supervisor ? proc.osDataRunLeft
                                    : proc.dataRunLeft;
    const Addr seg_base = supervisor
        ? kernelBase + cfg_.kernelOffset + osDataOffset
        : proc.base + dataOffset;
    const Addr seg_bytes =
        static_cast<Addr>(cfg.objects) * cfg.objectBytes;

    if (run == 0) {
        const auto &dist = supervisor ? *osObjDist_ : *userObjDist_;
        const std::uint64_t obj = dist.sample(rng_);
        const Addr off = alignDown(rng_.below(cfg.objectBytes), 4);
        addr = seg_base + obj * cfg.objectBytes + off;
        run = rng_.geometric(1.0 / cfg.meanRunWords);
    }

    const RefType type = rng_.chance(cfg_.writeFrac)
        ? RefType::DataWrite
        : RefType::DataRead;
    MemRef ref;
    emit(ref, addr, type, supervisor);
    queue_.push_back(ref);
    addr += 4;
    if (addr >= seg_base + seg_bytes)
        addr = seg_base;
    --run;
}

void
SyntheticGen::stepStack(ProcState &proc)
{
    // The stack top drifts up and down; references cluster at the top.
    const std::int64_t drift =
        static_cast<std::int64_t>(rng_.below(9)) - 4;
    std::int64_t top = static_cast<std::int64_t>(proc.stackTop) +
        drift * 4;
    top = std::clamp(top, std::int64_t{64},
                     static_cast<std::int64_t>(cfg_.stackBytes) - 64);
    proc.stackTop = static_cast<Addr>(top);

    const Addr off = alignDown(proc.stackTop + rng_.below(48), 4);
    const RefType type = rng_.chance(0.5) ? RefType::DataWrite
                                          : RefType::DataRead;
    MemRef ref;
    emit(ref, proc.base + stackOffset + off, type, false);
    queue_.push_back(ref);
}

void
SyntheticGen::stepInstruction()
{
    // Mode feedback: enter a supervisor burst whenever the running
    // supervisor fraction has fallen below target.
    if (osBurstLeft_ == 0 && cfg_.osRefFrac > 0.0) {
        const double frac = produced_ == 0
            ? 0.0
            : static_cast<double>(supRefs_) /
                static_cast<double>(produced_);
        if (frac < cfg_.osRefFrac)
            osBurstLeft_ = rng_.geometric(1.0 / cfg_.osBurstInstrs);
    }

    ProcState &proc = current();
    const bool supervisor = osBurstLeft_ > 0;
    if (supervisor)
        --osBurstLeft_;

    const auto &code = supervisor ? cfg_.osCode : cfg_.userCode;
    const auto &data = supervisor ? cfg_.osData : cfg_.userData;

    stepCode(proc, code, supervisor);
    if (rng_.chance(cfg_.dataRefProb))
        stepData(proc, data, supervisor);
    if (!supervisor && rng_.chance(cfg_.stackRefProb))
        stepStack(proc);
}

bool
SyntheticGen::next(MemRef &ref)
{
    if (produced_ >= cfg_.totalRefs)
        return false;

    if (queuePos_ >= queue_.size()) {
        queue_.clear();
        queuePos_ = 0;
        stepInstruction();
    }

    ref = queue_[queuePos_++];
    ++produced_;
    if (ref.supervisor)
        ++supRefs_;

    if (--quantumLeft_ == 0) {
        quantumLeft_ = cfg_.quantumRefs;
        activeProc_ = (activeProc_ + 1) % cfg_.processes;
    }
    return true;
}

} // namespace vmp::trace
