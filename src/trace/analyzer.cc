#include "trace/analyzer.hh"

#include <sstream>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace vmp::trace
{

double
TraceProfile::supervisorFrac() const
{
    return totalRefs == 0
        ? 0.0
        : static_cast<double>(supervisorRefs) /
            static_cast<double>(totalRefs);
}

double
TraceProfile::writeFrac() const
{
    const std::uint64_t data = reads + writes;
    return data == 0
        ? 0.0
        : static_cast<double>(writes) / static_cast<double>(data);
}

std::uint64_t
TraceProfile::footprintBytes(std::uint32_t page_bytes) const
{
    const auto it = uniquePages.find(page_bytes);
    if (it == uniquePages.end())
        return 0;
    return it->second * page_bytes;
}

std::string
TraceProfile::toString() const
{
    std::ostringstream os;
    os << "refs=" << totalRefs << " fetch=" << fetches
       << " read=" << reads << " write=" << writes
       << " supFrac=" << supervisorFrac()
       << " asids=" << asidsSeen;
    for (const auto &[page, count] : uniquePages)
        os << " fp" << page << "=" << count * page / 1024 << "K";
    return os.str();
}

TraceAnalyzer::TraceAnalyzer(std::set<std::uint32_t> page_sizes)
    : pageSizes_(std::move(page_sizes))
{
    for (const auto size : pageSizes_) {
        if (!isPowerOf2(size))
            fatal("trace analyzer: page size must be a power of two");
        pages_[size] = {};
    }
}

void
TraceAnalyzer::observe(const MemRef &ref)
{
    ++prof_.totalRefs;
    switch (ref.type) {
      case RefType::InstrFetch:
        ++prof_.fetches;
        break;
      case RefType::DataRead:
        ++prof_.reads;
        break;
      case RefType::DataWrite:
        ++prof_.writes;
        break;
    }
    if (ref.supervisor)
        ++prof_.supervisorRefs;
    asids_.insert(ref.asid);
    for (const auto size : pageSizes_) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(ref.asid) << 56) |
            (ref.vaddr / size);
        pages_[size].insert(key);
    }
}

std::uint64_t
TraceAnalyzer::consume(RefSource &source)
{
    MemRef ref;
    std::uint64_t n = 0;
    while (source.next(ref)) {
        observe(ref);
        ++n;
    }
    return n;
}

TraceProfile
TraceAnalyzer::profile() const
{
    TraceProfile prof = prof_;
    prof.asidsSeen = asids_.size();
    for (const auto &[size, keys] : pages_)
        prof.uniquePages[size] = keys.size();
    return prof;
}

} // namespace vmp::trace
