/**
 * @file
 * Trace characterization: reference mix, supervisor fraction, and memory
 * footprint at cache-page granularities. Used to validate that synthetic
 * workloads have the locality structure the paper describes (25% OS
 * references, four-byte records, footprints in the right band).
 */

#ifndef VMP_TRACE_ANALYZER_HH
#define VMP_TRACE_ANALYZER_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "trace/ref.hh"

namespace vmp::trace
{

/** Aggregate characteristics of a reference stream. */
struct TraceProfile
{
    std::uint64_t totalRefs = 0;
    std::uint64_t fetches = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t supervisorRefs = 0;
    std::uint64_t asidsSeen = 0;

    /** Unique <asid, page> footprint per page size in bytes. */
    std::map<std::uint32_t, std::uint64_t> uniquePages;

    double supervisorFrac() const;
    double writeFrac() const;
    /** Footprint in bytes at the given page granularity. */
    std::uint64_t footprintBytes(std::uint32_t page_bytes) const;

    std::string toString() const;
};

/** Streaming analyzer; feed refs then take the profile. */
class TraceAnalyzer
{
  public:
    /** @param page_sizes granularities to track footprints for. */
    explicit TraceAnalyzer(
        std::set<std::uint32_t> page_sizes = {128, 256, 512});

    void observe(const MemRef &ref);

    /** Drain @p source through the analyzer. */
    std::uint64_t consume(RefSource &source);

    TraceProfile profile() const;

  private:
    std::set<std::uint32_t> pageSizes_;
    TraceProfile prof_;
    std::set<Asid> asids_;
    /** page-size -> set of <asid, page-number> keys. */
    std::map<std::uint32_t, std::set<std::uint64_t>> pages_;
};

} // namespace vmp::trace

#endif // VMP_TRACE_ANALYZER_HH
