/**
 * @file
 * Memory-reference records: the unit of work that trace-driven CPU models
 * consume, and the record stored in trace files. Modelled on the ATUM
 * traces used in the paper (Section 5.2): each record is one 4-byte
 * (default) reference with an address-space identifier and a
 * user/supervisor flag so operating-system activity can be distinguished.
 */

#ifndef VMP_TRACE_REF_HH
#define VMP_TRACE_REF_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace vmp::trace
{

/** What kind of access a reference is. */
enum class RefType : std::uint8_t
{
    InstrFetch = 0,
    DataRead = 1,
    DataWrite = 2,
};

/** Human-readable name for a RefType. */
const char *refTypeName(RefType type);

/** One memory reference. */
struct MemRef
{
    Addr vaddr = 0;
    Asid asid = 0;
    RefType type = RefType::DataRead;
    std::uint8_t size = 4;
    /** True for operating-system (supervisor-mode) references. */
    bool supervisor = false;

    bool isWrite() const { return type == RefType::DataWrite; }
    bool isFetch() const { return type == RefType::InstrFetch; }

    bool
    operator==(const MemRef &other) const
    {
        return vaddr == other.vaddr && asid == other.asid &&
            type == other.type && size == other.size &&
            supervisor == other.supervisor;
    }

    std::string toString() const;
};

/**
 * Abstract pull-source of references. Both trace-file readers and the
 * synthetic generator implement this, so every consumer (fast cache
 * simulator, full multiprocessor model, analyzers) is trace-agnostic.
 */
class RefSource
{
  public:
    virtual ~RefSource() = default;

    /**
     * Produce the next reference into @p ref.
     * @return false when the source is exhausted.
     */
    virtual bool next(MemRef &ref) = 0;
};

} // namespace vmp::trace

#endif // VMP_TRACE_REF_HH
