/**
 * @file
 * Synthetic ATUM-like address-trace generator.
 *
 * The paper's Figure 4 is driven by four VAX 8200 ATUM traces (358k-540k
 * four-byte references, VMS operating-system activity accounting for
 * about 25% of references and 50% of misses, a small degree of
 * multiprogramming). Those traces are not available, so this generator
 * reconstructs their *locality structure*:
 *
 *  - instruction fetch as sequential runs broken by local and far
 *    branches (far targets Zipf-distributed over function entry points);
 *  - data references as Zipf-weighted objects with geometric sequential
 *    runs inside an object, plus stack traffic near a wandering top;
 *  - supervisor-mode bursts with a larger, flatter working set, paced by
 *    a feedback controller to a target fraction of all references;
 *  - round-robin multiprogramming over several address spaces (ASIDs),
 *    with the kernel region shared (re-tagged per ASID, as in VMP where
 *    kernel space is part of each user space).
 *
 * Everything is parameterized through SyntheticConfig; the four preset
 * workloads in workloads.hh stand in for the four ATUM traces.
 */

#ifndef VMP_TRACE_SYNTHETIC_HH
#define VMP_TRACE_SYNTHETIC_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/random.hh"
#include "sim/types.hh"
#include "trace/ref.hh"

namespace vmp::trace
{

/** Start of the kernel virtual region (region 4 of the VMP memory map). */
constexpr Addr kernelBase = 0x1800'0000;
/** Start of user virtual space (region 5 of the VMP memory map). */
constexpr Addr userBase = 0x2000'0000;

/** Parameters describing one segment of Zipf-object data traffic. */
struct DataSegmentConfig
{
    /** Number of distinct objects in the segment. */
    std::uint32_t objects = 512;
    /** Bytes per object (power of two keeps addressing simple). */
    std::uint32_t objectBytes = 512;
    /** Zipf skew over objects; larger = hotter core. */
    double theta = 0.85;
    /** Mean sequential run length, in 4-byte words, within an object. */
    double meanRunWords = 8.0;
};

/** Parameters describing one instruction-fetch segment. */
struct CodeSegmentConfig
{
    /** Total code bytes. */
    std::uint32_t bytes = 128 * 1024;
    /** Number of function entry points far branches target. */
    std::uint32_t functions = 256;
    /** Zipf skew over function popularity. */
    double theta = 1.0;
    /** Mean instructions between taken branches. */
    double meanRunInstrs = 8.0;
    /** Probability a taken branch is local (short displacement). */
    double localBranchProb = 0.75;
    /** Max local branch displacement in bytes (either direction). */
    std::uint32_t localRange = 512;
};

/** Full generator configuration. */
struct SyntheticConfig
{
    std::uint64_t seed = 1;
    /** Total references to produce. */
    std::uint64_t totalRefs = 500'000;

    /** Degree of multiprogramming (distinct user address spaces). */
    std::uint32_t processes = 2;
    /** First ASID used (processes get asidBase, asidBase+1, ...). */
    Asid asidBase = 1;
    /**
     * Byte offset added to the kernel segments. Zero means every
     * generator shares one physical kernel image (the realistic
     * multiprocessor case); distinct offsets give each processor a
     * private pseudo-kernel for contention-free baseline studies.
     */
    Addr kernelOffset = 0;
    /** References per scheduling quantum before a context switch. */
    std::uint64_t quantumRefs = 20'000;

    /** Per-instruction probability of a data reference. */
    double dataRefProb = 0.45;
    /** Per-instruction probability of a stack reference. */
    double stackRefProb = 0.12;
    /** Fraction of data references that are writes. */
    double writeFrac = 0.30;

    /** Target fraction of references made in supervisor mode. */
    double osRefFrac = 0.25;
    /** Mean length (instructions) of one supervisor burst. */
    double osBurstInstrs = 120.0;

    CodeSegmentConfig userCode{};
    DataSegmentConfig userData{};
    /** User stack span in bytes. */
    std::uint32_t stackBytes = 16 * 1024;

    CodeSegmentConfig osCode{};
    DataSegmentConfig osData{};

    /** Validate parameters; throws FatalError on nonsense. */
    void check() const;
};

/** Pull-source producing the synthetic reference stream. */
class SyntheticGen : public RefSource
{
  public:
    explicit SyntheticGen(const SyntheticConfig &config);
    ~SyntheticGen() override;

    bool next(MemRef &ref) override;

    /** References produced so far. */
    std::uint64_t produced() const { return produced_; }
    /** Supervisor-mode references produced so far. */
    std::uint64_t supervisorRefs() const { return supRefs_; }

  private:
    /** Mutable per-address-space generation state. */
    struct ProcState;

    void emit(MemRef &ref, Addr vaddr, RefType type, bool supervisor);
    /** Run one instruction worth of references into the queue. */
    void stepInstruction();
    void stepCode(ProcState &proc, const CodeSegmentConfig &cfg,
                  bool supervisor);
    void stepData(ProcState &proc, const DataSegmentConfig &cfg,
                  bool supervisor);
    void stepStack(ProcState &proc);
    ProcState &current();

    SyntheticConfig cfg_;
    Rng rng_;
    std::vector<std::unique_ptr<ProcState>> procs_;
    std::unique_ptr<ZipfDist> userFuncDist_;
    std::unique_ptr<ZipfDist> userObjDist_;
    std::unique_ptr<ZipfDist> osFuncDist_;
    std::unique_ptr<ZipfDist> osObjDist_;

    std::uint64_t produced_ = 0;
    std::uint64_t supRefs_ = 0;
    std::uint64_t quantumLeft_ = 0;
    std::uint32_t activeProc_ = 0;
    /** Instructions remaining in the current supervisor burst (0=user). */
    std::uint64_t osBurstLeft_ = 0;
    /** References queued by stepInstruction, drained by next(). */
    std::vector<MemRef> queue_;
    std::size_t queuePos_ = 0;
};

} // namespace vmp::trace

#endif // VMP_TRACE_SYNTHETIC_HH
