/**
 * @file
 * Trace file input/output. Two formats are supported:
 *
 *  - a compact binary format ("VMPT" magic, little-endian fixed-width
 *    records) for bulk simulation input, and
 *  - a one-record-per-line text format ("ifetch 1 0x1000 4 usr") that is
 *    easy to produce from external tools, so real address traces can be
 *    substituted for the synthetic ATUM-like workloads.
 */

#ifndef VMP_TRACE_TRACE_IO_HH
#define VMP_TRACE_TRACE_IO_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "trace/ref.hh"

namespace vmp::trace
{

/** Magic bytes at the start of a binary trace file. */
constexpr char binaryMagic[4] = {'V', 'M', 'P', 'T'};
/** Current binary format version. */
constexpr std::uint32_t binaryVersion = 1;

/** Writes references to a binary trace stream. */
class BinaryTraceWriter
{
  public:
    /** Write the header to @p os and keep the stream for records. */
    explicit BinaryTraceWriter(std::ostream &os);

    void write(const MemRef &ref);
    std::uint64_t written() const { return written_; }

  private:
    std::ostream &os_;
    std::uint64_t written_ = 0;
};

/** Reads references from a binary trace stream. */
class BinaryTraceReader : public RefSource
{
  public:
    /** Validates the header; throws FatalError on mismatch. */
    explicit BinaryTraceReader(std::istream &is);

    bool next(MemRef &ref) override;

  private:
    std::istream &is_;
};

/** Writes the line-oriented text format. */
class TextTraceWriter
{
  public:
    explicit TextTraceWriter(std::ostream &os) : os_(os) {}

    void write(const MemRef &ref);

  private:
    std::ostream &os_;
};

/** Reads the line-oriented text format; skips blank and '#' lines. */
class TextTraceReader : public RefSource
{
  public:
    explicit TextTraceReader(std::istream &is) : is_(is) {}

    bool next(MemRef &ref) override;

  private:
    std::istream &is_;
    std::uint64_t line_ = 0;
};

/** Replays an in-memory vector of references. */
class VectorRefSource : public RefSource
{
  public:
    explicit VectorRefSource(std::vector<MemRef> refs)
        : refs_(std::move(refs))
    {}

    bool
    next(MemRef &ref) override
    {
        if (pos_ >= refs_.size())
            return false;
        ref = refs_[pos_++];
        return true;
    }

    void rewind() { pos_ = 0; }
    std::size_t size() const { return refs_.size(); }

  private:
    std::vector<MemRef> refs_;
    std::size_t pos_ = 0;
};

/** Caps another source at @p limit references. */
class LimitedRefSource : public RefSource
{
  public:
    LimitedRefSource(RefSource &inner, std::uint64_t limit)
        : inner_(inner), remaining_(limit)
    {}

    bool
    next(MemRef &ref) override
    {
        if (remaining_ == 0)
            return false;
        if (!inner_.next(ref))
            return false;
        --remaining_;
        return true;
    }

  private:
    RefSource &inner_;
    std::uint64_t remaining_;
};

/** Drain @p source into a vector (up to @p limit records). */
std::vector<MemRef> collect(RefSource &source,
                            std::uint64_t limit = UINT64_MAX);

} // namespace vmp::trace

#endif // VMP_TRACE_TRACE_IO_HH
