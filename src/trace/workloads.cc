#include "trace/workloads.hh"

#include "sim/logging.hh"

namespace vmp::trace
{

namespace
{

/** Shared skeleton the four mixes specialize. */
SyntheticConfig
baseConfig()
{
    SyntheticConfig cfg;
    cfg.dataRefProb = 0.45;
    cfg.stackRefProb = 0.12;
    cfg.writeFrac = 0.30;
    cfg.osRefFrac = 0.25;
    cfg.osBurstInstrs = 120.0;

    cfg.userCode.bytes = 24 * 1024;
    cfg.userCode.functions = 48;
    cfg.userCode.theta = 1.4;
    cfg.userCode.meanRunInstrs = 14.0;
    cfg.userCode.localBranchProb = 0.88;
    cfg.userCode.localRange = 768;

    cfg.userData.objects = 56;
    cfg.userData.objectBytes = 512;
    cfg.userData.theta = 1.8;
    cfg.userData.meanRunWords = 20.0;

    cfg.stackBytes = 6 * 1024;

    cfg.osCode.bytes = 24 * 1024;
    cfg.osCode.functions = 48;
    cfg.osCode.theta = 1.2;
    cfg.osCode.meanRunInstrs = 10.0;
    cfg.osCode.localBranchProb = 0.8;
    cfg.osCode.localRange = 512;

    cfg.osData.objects = 40;
    cfg.osData.objectBytes = 512;
    cfg.osData.theta = 1.55;
    cfg.osData.meanRunWords = 15.0;
    return cfg;
}

} // namespace

std::vector<std::string>
workloadNames()
{
    return {"atum1", "atum2", "atum3", "atum4"};
}

SyntheticConfig
workloadConfig(const std::string &name)
{
    SyntheticConfig cfg = baseConfig();
    if (name == "atum1") {
        // Single large compute job plus VMS background.
        cfg.seed = 101;
        cfg.totalRefs = 540'000;
        cfg.processes = 1;
        cfg.quantumRefs = 50'000;
        cfg.userData.objects = 72;
    } else if (name == "atum2") {
        // Two interactive processes, modest working sets.
        cfg.seed = 202;
        cfg.totalRefs = 480'000;
        cfg.processes = 2;
        cfg.quantumRefs = 24'000;
        cfg.userCode.bytes = 18 * 1024;
        cfg.userCode.functions = 36;
        cfg.userData.objects = 52;
    } else if (name == "atum3") {
        // Three-way multiprogramming, flatter data locality.
        cfg.seed = 303;
        cfg.totalRefs = 420'000;
        cfg.processes = 3;
        cfg.quantumRefs = 16'000;
        cfg.userData.theta = 1.55;
        cfg.userData.objects = 44;
        cfg.userCode.bytes = 16 * 1024;
        cfg.userCode.functions = 32;
    } else if (name == "atum4") {
        // Short trace, heavier OS share, small quanta.
        cfg.seed = 404;
        cfg.totalRefs = 358'000;
        cfg.processes = 2;
        cfg.quantumRefs = 12'000;
        cfg.osRefFrac = 0.28;
        cfg.osData.theta = 1.35;
    } else {
        fatal("unknown workload '", name, "'");
    }
    return cfg;
}

std::vector<SyntheticConfig>
allWorkloads()
{
    std::vector<SyntheticConfig> out;
    for (const auto &name : workloadNames())
        out.push_back(workloadConfig(name));
    return out;
}

} // namespace vmp::trace
