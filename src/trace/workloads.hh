/**
 * @file
 * Preset synthetic workloads standing in for the four ATUM VAX traces of
 * Section 5.2. Lengths span the paper's 358k-540k four-byte references;
 * the mixes differ in multiprogramming degree, working-set size and
 * OS-activity character, the way distinct traced VMS sessions would.
 */

#ifndef VMP_TRACE_WORKLOADS_HH
#define VMP_TRACE_WORKLOADS_HH

#include <string>
#include <vector>

#include "trace/synthetic.hh"

namespace vmp::trace
{

/** Names of the four preset workloads, in order. */
std::vector<std::string> workloadNames();

/**
 * Configuration of a preset workload by name ("atum1".."atum4").
 * Throws FatalError for unknown names.
 */
SyntheticConfig workloadConfig(const std::string &name);

/** All four preset configurations, in order. */
std::vector<SyntheticConfig> allWorkloads();

} // namespace vmp::trace

#endif // VMP_TRACE_WORKLOADS_HH
