#include "trace/trace_io.hh"

#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace vmp::trace
{

namespace
{

/**
 * On-disk binary record: 16 bytes, little-endian. Field order is part of
 * the format; bump binaryVersion when changing it.
 */
struct PackedRef
{
    std::uint64_t vaddr;
    std::uint8_t asid;
    std::uint8_t type;
    std::uint8_t size;
    std::uint8_t flags; // bit 0: supervisor
    std::uint32_t reserved;
};
static_assert(sizeof(PackedRef) == 16, "trace record layout");

} // namespace

BinaryTraceWriter::BinaryTraceWriter(std::ostream &os) : os_(os)
{
    os_.write(binaryMagic, sizeof(binaryMagic));
    const std::uint32_t version = binaryVersion;
    os_.write(reinterpret_cast<const char *>(&version), sizeof(version));
}

void
BinaryTraceWriter::write(const MemRef &ref)
{
    PackedRef p{};
    p.vaddr = ref.vaddr;
    p.asid = ref.asid;
    p.type = static_cast<std::uint8_t>(ref.type);
    p.size = ref.size;
    p.flags = ref.supervisor ? 1 : 0;
    p.reserved = 0;
    os_.write(reinterpret_cast<const char *>(&p), sizeof(p));
    ++written_;
}

BinaryTraceReader::BinaryTraceReader(std::istream &is) : is_(is)
{
    char magic[4] = {};
    std::uint32_t version = 0;
    is_.read(magic, sizeof(magic));
    is_.read(reinterpret_cast<char *>(&version), sizeof(version));
    if (!is_ || std::memcmp(magic, binaryMagic, sizeof(magic)) != 0)
        fatal("not a VMP binary trace (bad magic)");
    if (version != binaryVersion)
        fatal("unsupported trace version ", version);
}

bool
BinaryTraceReader::next(MemRef &ref)
{
    PackedRef p{};
    is_.read(reinterpret_cast<char *>(&p), sizeof(p));
    if (is_.gcount() == 0)
        return false;
    if (is_.gcount() != sizeof(p))
        fatal("truncated trace record");
    if (p.type > static_cast<std::uint8_t>(RefType::DataWrite))
        fatal("corrupt trace record: bad type ", unsigned{p.type});
    ref.vaddr = p.vaddr;
    ref.asid = p.asid;
    ref.type = static_cast<RefType>(p.type);
    ref.size = p.size;
    ref.supervisor = (p.flags & 1) != 0;
    return true;
}

void
TextTraceWriter::write(const MemRef &ref)
{
    os_ << refTypeName(ref.type) << ' '
        << static_cast<unsigned>(ref.asid) << " 0x" << std::hex
        << ref.vaddr << std::dec << ' ' << static_cast<unsigned>(ref.size)
        << ' ' << (ref.supervisor ? "sup" : "usr") << '\n';
}

bool
TextTraceReader::next(MemRef &ref)
{
    std::string line;
    while (std::getline(is_, line)) {
        ++line_;
        // Strip comments and skip empty lines.
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        std::string type, mode;
        unsigned asid = 0, size = 0;
        std::string addr;
        if (!(ls >> type))
            continue;
        if (!(ls >> asid >> addr >> size >> mode))
            fatal("trace line ", line_, ": malformed record");

        if (type == "ifetch") {
            ref.type = RefType::InstrFetch;
        } else if (type == "read") {
            ref.type = RefType::DataRead;
        } else if (type == "write") {
            ref.type = RefType::DataWrite;
        } else {
            fatal("trace line ", line_, ": unknown type '", type, "'");
        }
        if (asid > 255)
            fatal("trace line ", line_, ": asid out of range");
        ref.asid = static_cast<Asid>(asid);
        ref.vaddr = std::stoull(addr, nullptr, 0);
        if (size == 0 || size > 255)
            fatal("trace line ", line_, ": bad size");
        ref.size = static_cast<std::uint8_t>(size);
        if (mode == "sup") {
            ref.supervisor = true;
        } else if (mode == "usr") {
            ref.supervisor = false;
        } else {
            fatal("trace line ", line_, ": bad mode '", mode, "'");
        }
        return true;
    }
    return false;
}

std::vector<MemRef>
collect(RefSource &source, std::uint64_t limit)
{
    std::vector<MemRef> out;
    MemRef ref;
    while (limit-- > 0 && source.next(ref))
        out.push_back(ref);
    return out;
}

} // namespace vmp::trace
