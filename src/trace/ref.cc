#include "trace/ref.hh"

#include <sstream>

namespace vmp::trace
{

const char *
refTypeName(RefType type)
{
    switch (type) {
      case RefType::InstrFetch: return "ifetch";
      case RefType::DataRead: return "read";
      case RefType::DataWrite: return "write";
    }
    return "?";
}

std::string
MemRef::toString() const
{
    std::ostringstream os;
    os << refTypeName(type) << " asid=" << static_cast<unsigned>(asid)
       << " va=0x" << std::hex << vaddr << std::dec
       << " size=" << static_cast<unsigned>(size)
       << (supervisor ? " sup" : " usr");
    return os.str();
}

} // namespace vmp::trace
