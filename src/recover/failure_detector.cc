#include "recover/failure_detector.hh"

#include "sim/debug.hh"
#include "sim/logging.hh"

namespace vmp::recover
{

FailureDetector::FailureDetector(EventQueue &events, mem::VmeBus &bus,
                                 std::uint32_t page_bytes,
                                 DetectorConfig config)
    : events_(events), bus_(bus), pageBytes_(page_bytes),
      config_(config)
{
    if (pageBytes_ == 0)
        fatal("failure detector needs a nonzero page size");
    if (config_.maxProbes == 0)
        fatal("failure detector needs at least one probe");
    if (config_.deadlineNs == 0)
        fatal("failure detector needs a nonzero probe deadline");
}

void
FailureDetector::addBoard(std::uint32_t master,
                          const monitor::BusMonitor *monitor,
                          AliveFn alive)
{
    if (find(master) != nullptr)
        fatal("master ", master, " registered twice with the detector");
    if (!alive)
        fatal("master ", master, " registered without an AliveFn");
    Board board;
    board.master = master;
    board.monitor = monitor;
    board.alive = std::move(alive);
    boards_.push_back(std::move(board));
}

void
FailureDetector::install()
{
    if (installed_)
        fatal("failure detector installed twice on one bus");
    installed_ = true;
    bus_.addTxObserver(
        [this](const mem::BusTransaction &tx,
               const mem::TxResult &result) {
            onTransaction(tx, result);
        });
}

void
FailureDetector::markRejoined(std::uint32_t master)
{
    Board *board = find(master);
    if (board == nullptr)
        fatal("markRejoined for unknown master ", master);
    board->state = BoardState::Live;
    board->probeAttempt = 0;
}

bool
FailureDetector::declaredDead(std::uint32_t master) const
{
    const Board *board = find(master);
    return board != nullptr && board->state == BoardState::Dead;
}

FailureDetector::Board *
FailureDetector::find(std::uint32_t master)
{
    for (Board &board : boards_) {
        if (board.master == master)
            return &board;
    }
    return nullptr;
}

const FailureDetector::Board *
FailureDetector::find(std::uint32_t master) const
{
    for (const Board &board : boards_) {
        if (board.master == master)
            return &board;
    }
    return nullptr;
}

void
FailureDetector::onTransaction(const mem::BusTransaction &tx,
                               const mem::TxResult &result)
{
    if (!mem::isConsistencyRelated(tx.type))
        return;
    ++observed_;

    const std::uint64_t frame = tx.paddr / pageBytes_;
    if (result.aborted) {
        const std::uint64_t streak = ++abortStreaks_[frame];
        if (streak >= config_.abortStreakThreshold) {
            abortStreaks_.erase(frame);
            suspectOwnerOf(frame, tx.type);
        }
    } else {
        abortStreaks_.erase(frame);
    }

    // Periodic liveness sweep, clocked by bus traffic rather than a
    // standing timer so an idle event queue still drains. A dead board
    // that owns nothing (and therefore aborts nothing) is caught here.
    if (config_.sweepPeriod != 0 &&
        observed_ % config_.sweepPeriod == 0) {
        for (Board &board : boards_) {
            if (board.state == BoardState::Live && !board.alive())
                suspect(board);
        }
    }
}

void
FailureDetector::suspectOwnerOf(std::uint64_t frame, mem::TxType type)
{
    // Whose table is doing the aborting? A Protect entry aborts every
    // consistency transaction; a Shared entry aborts write-back only.
    for (Board &board : boards_) {
        if (board.state != BoardState::Live || board.monitor == nullptr)
            continue;
        if (board.monitor->masked())
            continue;
        const mem::ActionEntry entry = board.monitor->table().get(frame);
        const bool aborter =
            entry == mem::ActionEntry::Protect ||
            (entry == mem::ActionEntry::Shared &&
             type == mem::TxType::WriteBack);
        if (aborter)
            suspect(board);
    }
}

void
FailureDetector::suspect(Board &board)
{
    if (board.state != BoardState::Live)
        return;
    board.state = BoardState::Suspect;
    board.probeAttempt = 0;
    board.probeDelay = config_.deadlineNs;
    ++suspicions_;
    VMP_DTRACE(debug::Recover, events_.now(), "suspect master ",
               board.master, "; first probe in ", board.probeDelay,
               " ns");
    Board *target = &board; // deque: stable address
    events_.scheduleIn(board.probeDelay, [this, target] {
        probe(*target);
    }, "fd-probe");
}

void
FailureDetector::probe(Board &board)
{
    if (board.state != BoardState::Suspect)
        return; // rejoined or already declared while the probe was queued
    ++probes_;
    if (board.alive()) {
        board.state = BoardState::Live;
        ++falseSuspicions_;
        VMP_DTRACE(debug::Recover, events_.now(), "master ",
                   board.master, " answered probe ",
                   board.probeAttempt + 1, "; suspicion cleared");
        return;
    }
    ++board.probeAttempt;
    if (board.probeAttempt >= config_.maxProbes) {
        declare(board);
        return;
    }
    board.probeDelay *= 2; // exponential backoff
    VMP_DTRACE(debug::Recover, events_.now(), "master ", board.master,
               " missed probe ", board.probeAttempt, "; next in ",
               board.probeDelay, " ns");
    Board *target = &board;
    events_.scheduleIn(board.probeDelay, [this, target] {
        probe(*target);
    }, "fd-probe");
}

void
FailureDetector::declare(Board &board)
{
    board.state = BoardState::Dead;
    ++declarations_;
    VMP_DTRACE(debug::Recover, events_.now(), "master ", board.master,
               " declared failstopped after ", config_.maxProbes,
               " probes");
    if (onDead_)
        onDead_(board.master);
}

void
FailureDetector::registerStats(StatGroup &group) const
{
    group.addCounter("suspicions", "boards moved Live -> Suspect",
                     suspicions_);
    group.addCounter("probes", "liveness probes issued", probes_);
    group.addCounter("false_suspicions",
                     "suspicions cleared by an answered probe",
                     falseSuspicions_);
    group.addCounter("declarations", "boards declared failstopped",
                     declarations_);
}

} // namespace vmp::recover
