#include "recover/failure_detector.hh"

#include "sim/debug.hh"
#include "sim/logging.hh"

namespace vmp::recover
{

const char *
suspicionKindName(SuspicionKind kind)
{
    switch (kind) {
      case SuspicionKind::None:
        return "none";
      case SuspicionKind::Failstop:
        return "failstop";
      case SuspicionKind::Wedge:
        return "wedge";
      case SuspicionKind::Babble:
        return "babble";
      case SuspicionKind::FailSlow:
        return "fail-slow";
      case SuspicionKind::StuckTable:
        return "stuck-table";
    }
    return "?";
}

FailureDetector::FailureDetector(EventQueue &events, mem::VmeBus &bus,
                                 std::uint32_t page_bytes,
                                 DetectorConfig config)
    : events_(events), bus_(bus), pageBytes_(page_bytes),
      config_(config)
{
    if (pageBytes_ == 0)
        fatal("failure detector needs a nonzero page size");
    if (config_.maxProbes == 0)
        fatal("failure detector needs at least one probe");
    if (config_.deadlineNs == 0)
        fatal("failure detector needs a nonzero probe deadline");
    if (config_.wedgeSweeps == 0)
        fatal("failure detector needs at least one wedge sweep");
    if (config_.babbleFraction <= 0.0 || config_.babbleFraction > 1.0)
        fatal("babble fraction must be in (0, 1]");
    if (config_.babbleSweeps == 0)
        fatal("failure detector needs at least one babble sweep");
    if (config_.slowEwmaAlpha <= 0.0 || config_.slowEwmaAlpha > 1.0)
        fatal("EWMA smoothing factor must be in (0, 1]");
    if (config_.tableStuckStrikes == 0)
        fatal("failure detector needs at least one stuck-table strike");
    if (config_.unfenceCheckNs == 0)
        fatal("failure detector needs a nonzero unfence-check delay");
}

void
FailureDetector::addBoard(std::uint32_t master,
                          const monitor::BusMonitor *monitor,
                          AliveFn alive)
{
    if (find(master) != nullptr)
        fatal("master ", master, " registered twice with the detector");
    if (!alive)
        fatal("master ", master, " registered without an AliveFn");
    Board board;
    board.master = master;
    board.monitor = monitor;
    board.alive = std::move(alive);
    boards_.push_back(std::move(board));
}

void
FailureDetector::setHealthFn(std::uint32_t master, HealthFn health)
{
    Board *board = find(master);
    if (board == nullptr)
        fatal("setHealthFn for unknown master ", master);
    if (!health)
        fatal("master ", master, " given a null HealthFn");
    board->health = std::move(health);
    resetWitness(*board);
}

void
FailureDetector::install()
{
    if (installed_)
        fatal("failure detector installed twice on one bus");
    installed_ = true;
    bus_.addTxObserver(
        [this](const mem::BusTransaction &tx,
               const mem::TxResult &result) {
            onTransaction(tx, result);
        });
}

void
FailureDetector::markRejoined(std::uint32_t master)
{
    Board *board = find(master);
    if (board == nullptr)
        fatal("markRejoined for unknown master ", master);
    board->state = BoardState::Live;
    board->kind = SuspicionKind::None;
    board->probeAttempt = 0;
    resetWitness(*board);
}

bool
FailureDetector::declaredDead(std::uint32_t master) const
{
    const Board *board = find(master);
    return board != nullptr && board->state == BoardState::Dead;
}

bool
FailureDetector::isFenced(std::uint32_t master) const
{
    const Board *board = find(master);
    return board != nullptr && board->state == BoardState::Fenced;
}

SuspicionKind
FailureDetector::fenceKindOf(std::uint32_t master) const
{
    const Board *board = find(master);
    if (board == nullptr || board->state != BoardState::Fenced)
        return SuspicionKind::None;
    return board->kind;
}

void
FailureDetector::fenceBoard(std::uint32_t master, SuspicionKind kind)
{
    Board *board = find(master);
    if (board == nullptr)
        fatal("fenceBoard for unknown master ", master);
    if (board->state == BoardState::Dead)
        fatal("master ", master, " is declared dead, not fenceable");
    if (board->state == BoardState::Fenced)
        return;
    fence(*board, kind);
}

FailureDetector::Board *
FailureDetector::find(std::uint32_t master)
{
    for (Board &board : boards_) {
        if (board.master == master)
            return &board;
    }
    return nullptr;
}

const FailureDetector::Board *
FailureDetector::find(std::uint32_t master) const
{
    for (const Board &board : boards_) {
        if (board.master == master)
            return &board;
    }
    return nullptr;
}

void
FailureDetector::onTransaction(const mem::BusTransaction &tx,
                               const mem::TxResult &result)
{
    // Stuck-table evidence: a completed explicit table write is the
    // owner visibly releasing (or downgrading) the frame — every
    // writable value replaces a Protect entry. If a *Protect-entry*
    // abort streak later re-forms on that same frame, the monitor
    // hardware dropped the write — the signature of a stuck table,
    // and one a live-but-busy owner can never produce.
    if (tx.type == mem::TxType::WriteActionTable && !result.aborted) {
        Board *writer = find(tx.requester);
        if (writer != nullptr && writer->stuckFrame != kNoFrame &&
            tx.paddr / pageBytes_ == writer->stuckFrame) {
            writer->stuckWriteSeen = true;
        }
    }

    if (!mem::isConsistencyRelated(tx.type))
        return;
    ++observed_;

    const std::uint64_t frame = tx.paddr / pageBytes_;

    // A completed side-effect update (ReadPrivate/AssertOwnership
    // re-acquisition) legitimately re-arms Protect on the frame, so
    // any pending release-write evidence there is stale: later
    // Protect aborts are the new ownership, not a dropped write.
    if (!result.aborted && tx.updatesTable) {
        Board *writer = find(tx.requester);
        if (writer != nullptr && writer->stuckFrame == frame)
            writer->stuckWriteSeen = false;
    }
    if (result.aborted) {
        const std::uint64_t streak = ++abortStreaks_[frame];
        if (streak >= config_.abortStreakThreshold) {
            abortStreaks_.erase(frame);
            suspectOwnerOf(frame, tx.type);
        }
    } else {
        abortStreaks_.erase(frame);
    }

    // Periodic sweep, clocked by bus traffic rather than a standing
    // timer so an idle event queue still drains. Binary liveness first
    // (a dead board that owns nothing is caught here), then the health
    // witnesses of every non-quarantined board that supplied a
    // HealthFn. Suspect boards are swept too — not just FailSlow ones:
    // a sick-but-alive board (say, fail-slow) draws a steady stream of
    // abort-streak Failstop suspicions from its stranded peers, each
    // cleared by the next probe, and skipping sweeps during those
    // windows would starve the very witness that can name the real
    // disease. Raising a *new* suspicion stays gated on Live inside
    // the sweep; for a pending one the updated deltas and EWMA are
    // what the probe reads to see a recovery.
    if (config_.sweepPeriod != 0 &&
        observed_ % config_.sweepPeriod == 0) {
        for (Board &board : boards_) {
            if (board.state == BoardState::Live && !board.alive()) {
                suspect(board, SuspicionKind::Failstop, false);
                continue;
            }
            if (board.health &&
                (board.state == BoardState::Live ||
                 board.state == BoardState::Suspect)) {
                witnessSweep(board);
            }
        }
    }
}

void
FailureDetector::suspectOwnerOf(std::uint64_t frame, mem::TxType type)
{
    // Whose table is doing the aborting? A Protect entry aborts every
    // consistency transaction; a Shared entry aborts write-back only.
    for (Board &board : boards_) {
        if (board.state != BoardState::Live || board.monitor == nullptr)
            continue;
        if (board.monitor->masked())
            continue;
        const mem::ActionEntry entry = board.monitor->table().get(frame);
        const bool aborter =
            entry == mem::ActionEntry::Protect ||
            (entry == mem::ActionEntry::Shared &&
             type == mem::TxType::WriteBack);
        if (aborter)
            suspect(board, SuspicionKind::Failstop, true, frame,
                    entry == mem::ActionEntry::Protect);
    }
}

void
FailureDetector::witnessSweep(Board &board)
{
    const HealthReport r = board.health();
    const std::uint64_t d_serviced =
        r.wordsServiced - board.lastServiced;
    const std::uint64_t d_spurious =
        r.spuriousWords - board.lastSpurious;

    // Wedge witness: backlog pending and a frozen progress epoch,
    // sustained over wedgeSweeps consecutive sweeps. A busy-but-live
    // board advances its epoch between sweeps (sweepPeriod bus
    // transactions apart); a wedged one cannot.
    if (r.alive && r.pendingWords > 0 &&
        r.progressEpoch == board.lastEpoch) {
        if (++board.wedgeStrikes >= config_.wedgeSweeps &&
            board.state == BoardState::Live) {
            board.wedgeStrikes = 0;
            suspect(board, SuspicionKind::Wedge, false);
        }
    } else {
        board.wedgeStrikes = 0;
    }

    // Babble witness: of the words the board serviced since the last
    // sweep, what fraction turned out spurious? Judged only on a
    // meaningful sample, and only when sustained over babbleSweeps
    // consecutive windows — under heavy sharing a healthy board can
    // legitimately burn one whole window on stale FIFO entries for
    // frames it already released, but never window after window.
    if (d_serviced >= config_.babbleMinWords &&
        static_cast<double>(d_spurious) >=
            config_.babbleFraction * static_cast<double>(d_serviced)) {
        if (++board.babbleStrikes >= config_.babbleSweeps &&
            board.state == BoardState::Live) {
            board.babbleStrikes = 0;
            suspect(board, SuspicionKind::Babble, false);
        }
    } else if (d_serviced >= config_.babbleMinWords) {
        board.babbleStrikes = 0;
    }

    // Fail-slow witness: EWMA of per-word service latency.
    if (d_serviced > 0) {
        const double sample =
            static_cast<double>(r.serviceBusyNs - board.lastBusyNs) /
            static_cast<double>(d_serviced);
        board.latencyEwma = board.ewmaPrimed
            ? config_.slowEwmaAlpha * sample +
                  (1.0 - config_.slowEwmaAlpha) * board.latencyEwma
            : sample;
        board.ewmaPrimed = true;
        if (config_.slowLatencyNs != 0 &&
            board.state == BoardState::Live &&
            board.latencyEwma >
                static_cast<double>(config_.slowLatencyNs)) {
            suspect(board, SuspicionKind::FailSlow, false);
        }
    }

    board.lastEpoch = r.progressEpoch;
    board.lastServiced = r.wordsServiced;
    board.lastSpurious = r.spuriousWords;
    board.lastBusyNs = r.serviceBusyNs;
}

void
FailureDetector::suspect(Board &board, SuspicionKind kind,
                         bool streak_origin,
                         std::uint64_t streak_frame,
                         bool streak_protect)
{
    if (board.state != BoardState::Live)
        return;
    board.state = BoardState::Suspect;
    board.kind = kind;
    board.streakOrigin = streak_origin;
    board.streakFrame = streak_frame;
    board.streakProtect = streak_protect;
    board.probeAttempt = 0;
    board.probeDelay = config_.deadlineNs;
    if (board.health) {
        const HealthReport r = board.health();
        board.suspectEpoch = r.progressEpoch;
        board.suspectServiced = r.wordsServiced;
        board.suspectSpurious = r.spuriousWords;
    }
    ++suspicions_;
    switch (kind) {
      case SuspicionKind::Wedge:
        ++wedgeSuspicions_;
        break;
      case SuspicionKind::Babble:
        ++babbleSuspicions_;
        break;
      case SuspicionKind::FailSlow:
        ++slowSuspicions_;
        break;
      default:
        break;
    }
    VMP_DTRACE(debug::Recover, events_.now(), "suspect master ",
               board.master, " (", suspicionKindName(kind),
               "); first probe in ", board.probeDelay, " ns");
    Board *target = &board; // deque: stable address
    events_.scheduleIn(board.probeDelay, [this, target] {
        probe(*target);
    }, "fd-probe");
}

bool
FailureDetector::probeAnswered(Board &board)
{
    switch (board.kind) {
      case SuspicionKind::Wedge: {
        // Answered if the service loop responds — or demonstrably made
        // progress since the suspicion (a loop can be momentarily
        // unresponsive while grinding through a storm).
        const HealthReport r = board.health();
        return r.alive &&
            (r.responsive || r.progressEpoch != board.suspectEpoch);
      }
      case SuspicionKind::Babble: {
        const HealthReport r = board.health();
        if (!r.alive)
            return false;
        const std::uint64_t d_spurious =
            r.spuriousWords - board.suspectSpurious;
        if (d_spurious == 0)
            return true; // gone quiet since the suspicion
        const std::uint64_t d_serviced =
            r.wordsServiced - board.suspectServiced;
        return static_cast<double>(d_spurious) <
            config_.babbleFraction * static_cast<double>(d_serviced);
      }
      case SuspicionKind::FailSlow:
        // The EWMA keeps updating at sweeps while this suspicion is
        // pending; answered once it falls back under the threshold.
        // Alive-gated: a dead board's EWMA merely froze.
        return board.health().alive &&
            board.latencyEwma <=
                static_cast<double>(config_.slowLatencyNs);
      default:
        return board.alive();
    }
}

void
FailureDetector::probe(Board &board)
{
    if (board.state != BoardState::Suspect)
        return; // rejoined or already declared while the probe was queued
    ++probes_;
    if (probeAnswered(board)) {
        board.state = BoardState::Live;
        ++falseSuspicions_;
        VMP_DTRACE(debug::Recover, events_.now(), "master ",
                   board.master, " answered probe ",
                   board.probeAttempt + 1, " (",
                   suspicionKindName(board.kind),
                   "); suspicion cleared");
        const bool streak =
            board.kind == SuspicionKind::Failstop && board.streakOrigin;
        board.kind = SuspicionKind::None;
        // Stuck-table escalation, evidence-gated. A board that trips
        // abort streaks yet answers probes alive may be running
        // software whose table no longer follows it — but a live owner
        // under a recovery storm produces the same surface pattern
        // (long retry chains against its legitimately-held frames).
        // The discriminator: a strike counts only when a *Protect*
        // streak re-forms on a frame the owner already visibly
        // released with a completed WriteActionTable. Every writable
        // value (Ignore/Shared/Notify) replaces Protect, so a live
        // monitor that applied the write cannot still show Protect
        // there — only a stuck table can. Shared-entry write-back
        // aborts never strike: a completed downgrade-to-Shared
        // legitimately keeps aborting write-backs. And a completed
        // side-effect re-acquisition (ReadPrivate/AssertOwnership)
        // clears the evidence in onTransaction — post-reacquisition
        // Protect aborts are new ownership, not a dropped write. (A
        // wedged board never issues the write at all — the wedge
        // witness owns that case.)
        if (streak && onFence_ && board.monitor != nullptr) {
            if (board.streakFrame == board.stuckFrame &&
                board.stuckWriteSeen && board.streakProtect) {
                // Post-release aborts on the tracked frame: hard
                // evidence. The write stays dropped, so keep the
                // evidence armed across strikes.
                if (++board.streakStrikes >=
                    config_.tableStuckStrikes) {
                    board.streakStrikes = 0;
                    board.stuckFrame = kNoFrame;
                    board.stuckWriteSeen = false;
                    ++stuckEscalations_;
                    fence(board, SuspicionKind::StuckTable);
                }
            } else if (board.streakFrame != board.stuckFrame) {
                // New frame: rebase and wait for the owner's release
                // write before any aborts can count as evidence.
                board.stuckFrame = board.streakFrame;
                board.stuckWriteSeen = false;
                board.streakStrikes = 0;
            }
            // Same frame, no release write yet: the owner simply has
            // not serviced the word — not evidence either way.
        }
        return;
    }
    ++board.probeAttempt;
    if (board.probeAttempt >= config_.maxProbes) {
        declare(board);
        return;
    }
    board.probeDelay *= 2; // exponential backoff
    VMP_DTRACE(debug::Recover, events_.now(), "master ", board.master,
               " missed probe ", board.probeAttempt, "; next in ",
               board.probeDelay, " ns");
    Board *target = &board;
    events_.scheduleIn(board.probeDelay, [this, target] {
        probe(*target);
    }, "fd-probe");
}

void
FailureDetector::declare(Board &board)
{
    // Partial failures are quarantined, not buried: the board is sick,
    // its frames are reclaimed, and it may yet be unfenced. Without a
    // fence hook wired the legacy declare-dead path handles all kinds.
    // Liveness trumps the suspicion kind: a board that died while
    // under a witness suspicion is a failstop, whatever first drew
    // attention to it — fencing a corpse just sets up a futile
    // unfence/refence cycle (its FIFO is quiet because it is dead).
    if (board.kind != SuspicionKind::Failstop && onFence_ &&
        board.alive()) {
        fence(board, board.kind);
        return;
    }
    board.state = BoardState::Dead;
    ++declarations_;
    VMP_DTRACE(debug::Recover, events_.now(), "master ", board.master,
               " declared failstopped after ", config_.maxProbes,
               " probes");
    if (onDead_)
        onDead_(board.master);
}

void
FailureDetector::fence(Board &board, SuspicionKind kind)
{
    if (!onFence_) {
        // No quarantine path wired: fall back to a full declaration so
        // the hazard is still cleared.
        board.kind = kind;
        board.state = BoardState::Dead;
        ++declarations_;
        if (onDead_)
            onDead_(board.master);
        return;
    }
    board.state = BoardState::Fenced;
    board.kind = kind;
    ++fences_;
    VMP_DTRACE(debug::Recover, events_.now(), "master ", board.master,
               " fenced (", suspicionKindName(kind), ")");
    onFence_(board.master, kind);
    // The push counter is cumulative, so the post-fence baseline reads
    // correctly even after the recovery flow drained the FIFO.
    board.recheckCount = 0;
    board.recheckPushedBase =
        board.health ? board.health().fifoPushed : 0;
    // Wedge and babble fences recheck for recovery; fail-slow and
    // stuck-table boards stay fenced until operator action (rejoin).
    if (onUnfence_ &&
        (kind == SuspicionKind::Wedge || kind == SuspicionKind::Babble))
        scheduleRecheck(board);
}

void
FailureDetector::scheduleRecheck(Board &board)
{
    Board *target = &board;
    events_.scheduleIn(config_.unfenceCheckNs, [this, target] {
        recheck(*target);
    }, "fd-unfence");
}

void
FailureDetector::recheck(Board &board)
{
    if (board.state != BoardState::Fenced)
        return;
    bool clear = false;
    if (board.health) {
        const HealthReport r = board.health();
        switch (board.kind) {
          case SuspicionKind::Wedge:
            // A formerly wedged loop that answers again recovered (or
            // never was wedged — the false-positive path).
            clear = r.alive && r.responsive;
            break;
          case SuspicionKind::Babble:
            // The monitor is masked, so only babble still pushes
            // words: one silent recheck window proves the fault
            // cleared. Alive-gated — a dead board is silent too.
            clear = r.alive &&
                r.fifoPushed == board.recheckPushedBase;
            board.recheckPushedBase = r.fifoPushed;
            break;
          default:
            break;
        }
    }
    if (clear) {
        ++unfences_;
        VMP_DTRACE(debug::Recover, events_.now(), "master ",
                   board.master, " unfenced (",
                   suspicionKindName(board.kind), " cleared)");
        board.state = BoardState::Live;
        board.kind = SuspicionKind::None;
        board.probeAttempt = 0;
        resetWitness(board);
        if (onUnfence_)
            onUnfence_(board.master);
        return;
    }
    if (++board.recheckCount < config_.unfenceChecks) {
        scheduleRecheck(board);
    } else {
        VMP_DTRACE(debug::Recover, events_.now(), "master ",
                   board.master, " fence left standing after ",
                   config_.unfenceChecks, " rechecks");
    }
}

void
FailureDetector::resetWitness(Board &board)
{
    board.wedgeStrikes = 0;
    board.babbleStrikes = 0;
    board.streakStrikes = 0;
    board.streakFrame = kNoFrame;
    board.streakProtect = false;
    board.stuckFrame = kNoFrame;
    board.stuckWriteSeen = false;
    board.latencyEwma = 0.0;
    board.ewmaPrimed = false;
    if (board.health) {
        const HealthReport r = board.health();
        board.lastEpoch = r.progressEpoch;
        board.lastServiced = r.wordsServiced;
        board.lastSpurious = r.spuriousWords;
        board.lastBusyNs = r.serviceBusyNs;
    }
}

void
FailureDetector::registerStats(StatGroup &group) const
{
    group.addCounter("suspicions", "boards moved Live -> Suspect",
                     suspicions_);
    group.addCounter("probes", "liveness probes issued", probes_);
    group.addCounter("false_suspicions",
                     "suspicions cleared by an answered probe",
                     falseSuspicions_);
    group.addCounter("declarations", "boards declared failstopped",
                     declarations_);
    group.addCounter("wedge_suspicions",
                     "wedge-witness suspicions (frozen epoch)",
                     wedgeSuspicions_);
    group.addCounter("babble_suspicions",
                     "babble-witness suspicions (spurious fraction)",
                     babbleSuspicions_);
    group.addCounter("slow_suspicions",
                     "fail-slow suspicions (latency EWMA)",
                     slowSuspicions_);
    group.addCounter("stuck_escalations",
                     "abort-streak patterns escalated to a fence",
                     stuckEscalations_);
    group.addCounter("fences", "boards quarantined", fences_);
    group.addCounter("unfences",
                     "fences cleared by a recovery recheck",
                     unfences_);
}

} // namespace vmp::recover
