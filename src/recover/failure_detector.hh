/**
 * @file
 * Failure detector: failstop liveness plus a partial-failure *health
 * witness*. The paper's consistency protocol assumes every board
 * eventually services its bus-monitor interrupts; boards can break that
 * assumption in more ways than halting:
 *
 *  - *failstop*: the software is gone. Caught by an *abort streak*
 *    (the same frame's consistency transactions keep aborting — a live
 *    owner resolves the conflict within a handful of retries, a dead
 *    one never does) or by a *liveness sweep* (every sweepPeriod
 *    observed consistency transactions, each board's AliveFn is
 *    polled).
 *  - *wedged*: the service loop stops draining the FIFO but the board
 *    is not dead — the binary AliveFn still answers true while the
 *    monitor hardware keeps aborting against stale Protect entries.
 *    Caught by the progress-epoch witness: backlog pending with a
 *    frozen service epoch across wedgeSweeps consecutive sweeps.
 *  - *babbling*: the FIFO delivers mostly garbage — the board stays
 *    alive and busy, wasting its service loop on spurious words.
 *    Caught by the spurious-fraction witness.
 *  - *fail-slow*: service works but takes many times longer than it
 *    should. Caught by an EWMA of per-word service latency.
 *  - *stuck table*: updates are silently dropped, so released entries
 *    keep aborting while the software truthfully answers probes alive.
 *    Caught by escalation — repeated abort-streak suspicions answered
 *    alive.
 *
 * A failstop declaration fires the DeadFn (full reclaim). The partial
 * kinds instead fire the FenceFn — quarantine rather than burial — and
 * a bounded unfence-recheck chain can clear a fence whose underlying
 * fault recovered (or was a false positive): a formerly wedged board
 * that answers responsive again, or a fenced babbler whose FIFO has
 * gone silent, is handed back via the UnfenceFn for a cold rejoin.
 *
 * Determinism and drain-friendliness: the detector consumes no
 * randomness and schedules *no standing periodic events* — probes are
 * scheduled only while a suspicion is pending, unfence rechecks only
 * while a board is fenced, and every chain is finite (maxProbes /
 * unfenceChecks), so an event queue with no other work still drains.
 * In a fault-free run the detector observes transactions but never
 * suspects anything: behavior is bit-identical to a run without it.
 */

#ifndef VMP_RECOVER_FAILURE_DETECTOR_HH
#define VMP_RECOVER_FAILURE_DETECTOR_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "mem/vme_bus.hh"
#include "monitor/bus_monitor.hh"
#include "sim/event.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace vmp::recover
{

/** Detection policy knobs. */
struct DetectorConfig
{
    /** Delay from suspicion to the first probe. */
    Tick deadlineNs = 100'000;
    /** Probes before a Suspect board is declared dead. */
    std::uint32_t maxProbes = 3;
    /**
     * Consecutive aborts of consistency transactions against one frame
     * before the frame's Protect owner is suspected. Live-owner retry
     * chains stay far below this.
     */
    std::uint64_t abortStreakThreshold = 16;
    /** Observed consistency transactions between liveness sweeps. */
    std::uint64_t sweepPeriod = 256;

    // --- health-witness knobs (boards with a HealthFn only) ---
    /** Consecutive sweeps with backlog pending and a frozen progress
     *  epoch before a wedge suspicion. */
    std::uint32_t wedgeSweeps = 3;
    /** Minimum words serviced per sweep before the babble witness
     *  judges the spurious fraction at all. */
    std::uint64_t babbleMinWords = 8;
    /** Spurious fraction of serviced words that triggers a babble
     *  suspicion (1.0 disables). */
    double babbleFraction = 0.6;
    /** Consecutive over-threshold sweeps before a babble suspicion.
     *  One sweep window is a handful of words — under heavy sharing a
     *  healthy board can legitimately service a burst of stale FIFO
     *  entries (frames it already released) that clears the fraction
     *  in a single window. Only a babbler sustains it. */
    std::uint32_t babbleSweeps = 3;
    /** Smoothing factor of the per-word service-latency EWMA. */
    double slowEwmaAlpha = 0.25;
    /** EWMA per-word service latency that triggers a fail-slow
     *  suspicion (0 disables). */
    Tick slowLatencyNs = 50'000;
    /** Abort-streak suspicions answered alive before the owner's
     *  action table is judged stuck and the board fenced. */
    std::uint32_t tableStuckStrikes = 3;
    /** Delay between unfence rechecks of a fenced board. */
    Tick unfenceCheckNs = 200'000;
    /** Rechecks before a fence is left standing for good (bounds the
     *  event chain so the queue always drains). */
    std::uint32_t unfenceChecks = 4;
};

/** Why a board is (or was) under suspicion. */
enum class SuspicionKind : std::uint8_t
{
    None = 0,
    Failstop,   //!< software gone: abort streak / failed liveness
    Wedge,      //!< service loop stopped making progress
    Babble,     //!< FIFO delivering mostly spurious words
    FailSlow,   //!< per-word service latency inflated
    StuckTable, //!< table ignores updates; alive but keeps aborting
};

const char *suspicionKindName(SuspicionKind kind);

/**
 * What one health probe learns about a board. Gathered by the board's
 * HealthFn from externally observable evidence (service-loop counters
 * a watchdog kernel could read); must be cheap and side-effect free.
 */
struct HealthReport
{
    /** Software not failstopped (the legacy liveness bit). */
    bool alive = true;
    /** The service loop answered the probe request (a wedged loop
     *  cannot; a slow one still does, late). */
    bool responsive = true;
    /** Service-loop progress epoch (monotonic while healthy). */
    std::uint64_t progressEpoch = 0;
    /** Interrupt words currently queued awaiting service. */
    std::uint64_t pendingWords = 0;
    /** Cumulative interrupt words serviced. */
    std::uint64_t wordsServiced = 0;
    /** Cumulative words found spurious/stale when serviced. */
    std::uint64_t spuriousWords = 0;
    /** Cumulative service-software CPU time, accrued per word as it
     *  is taken up. Deliberately excludes bus-wait time: a survivor
     *  stalled retrying against a sick peer is not itself slow. */
    Tick serviceBusyNs = 0;
    /** Cumulative words pushed into the board's interrupt FIFO. */
    std::uint64_t fifoPushed = 0;
};

/**
 * Bus-clocked failstop detector for one bus segment. Boards register
 * with a bus-master id, an optional monitor (whose action table is
 * consulted to map an abort streak on a frame to the board that owns
 * it) and an AliveFn the probes poll.
 */
class FailureDetector
{
  public:
    /** Polled by probes; must be cheap and side-effect free. */
    using AliveFn = std::function<bool()>;
    /** Fired exactly once per declaration, with the dead master id. */
    using DeadFn = std::function<void(std::uint32_t master)>;
    /** Gathers a HealthReport; must be cheap and side-effect free. */
    using HealthFn = std::function<HealthReport()>;
    /** Fired once per fence, with the quarantined master and the
     *  suspicion kind that condemned it. */
    using FenceFn =
        std::function<void(std::uint32_t master, SuspicionKind kind)>;
    /** Fired when an unfence recheck clears a fenced board. */
    using UnfenceFn = std::function<void(std::uint32_t master)>;

    FailureDetector(EventQueue &events, mem::VmeBus &bus,
                    std::uint32_t page_bytes,
                    DetectorConfig config = {});

    /**
     * Register a board. @p monitor may be null (e.g. a bridge whose
     * local table is not visible on this bus): such a board is only
     * ever caught by liveness sweeps, never by abort streaks.
     */
    void addBoard(std::uint32_t master,
                  const monitor::BusMonitor *monitor, AliveFn alive);

    /**
     * Attach a health witness to a registered board. Boards without
     * one are handled exactly as before (binary liveness only) — the
     * witness sweeps, escalations and fences all require it or the
     * fence/unfence hooks, so a system that wires neither is
     * bit-identical to the pre-witness detector.
     */
    void setHealthFn(std::uint32_t master, HealthFn health);

    void setOnDead(DeadFn on_dead) { onDead_ = std::move(on_dead); }
    void setOnFence(FenceFn on_fence)
    {
        onFence_ = std::move(on_fence);
    }
    void setOnUnfence(UnfenceFn on_unfence)
    {
        onUnfence_ = std::move(on_unfence);
    }

    /** Start observing the bus. */
    void install();

    /** A previously declared-dead board is back: trust it again. */
    void markRejoined(std::uint32_t master);

    bool declaredDead(std::uint32_t master) const;
    /** True while @p master is quarantined. */
    bool isFenced(std::uint32_t master) const;
    /** Suspicion kind that fenced @p master (None if not fenced). */
    SuspicionKind fenceKindOf(std::uint32_t master) const;

    /**
     * Quarantine @p master directly (bypassing the witness): used by
     * tests and as an operator override. Fires the FenceFn and starts
     * the same unfence-recheck chain a witness fence would.
     */
    void fenceBoard(std::uint32_t master, SuspicionKind kind);

    const DetectorConfig &config() const { return config_; }

    const Counter &suspicions() const { return suspicions_; }
    const Counter &probes() const { return probes_; }
    const Counter &falseSuspicions() const { return falseSuspicions_; }
    const Counter &declarations() const { return declarations_; }
    /** Wedge-witness suspicions (frozen epoch with backlog). */
    const Counter &wedgeSuspicions() const { return wedgeSuspicions_; }
    /** Babble-witness suspicions (spurious fraction). */
    const Counter &babbleSuspicions() const
    {
        return babbleSuspicions_;
    }
    /** Fail-slow suspicions (service-latency EWMA). */
    const Counter &slowSuspicions() const { return slowSuspicions_; }
    /** Stuck-table escalations (streak suspicions answered alive). */
    const Counter &stuckEscalations() const
    {
        return stuckEscalations_;
    }
    const Counter &fences() const { return fences_; }
    const Counter &unfences() const { return unfences_; }

    void registerStats(StatGroup &group) const;

  private:
    enum class BoardState : std::uint8_t
    {
        Live,
        Suspect,
        Fenced,
        Dead,
    };

    /** Sentinel for "no frame tracked". */
    static constexpr std::uint64_t kNoFrame = ~std::uint64_t{0};

    struct Board
    {
        std::uint32_t master;
        const monitor::BusMonitor *monitor;
        AliveFn alive;
        HealthFn health; //!< null: binary liveness only
        BoardState state = BoardState::Live;
        SuspicionKind kind = SuspicionKind::None;
        /** Current suspicion came from an abort streak (vs sweep). */
        bool streakOrigin = false;
        std::uint32_t probeAttempt = 0;
        Tick probeDelay = 0;

        // Witness state, updated once per sweep.
        std::uint64_t lastEpoch = 0;
        std::uint64_t lastServiced = 0;
        std::uint64_t lastSpurious = 0;
        Tick lastBusyNs = 0;
        std::uint32_t wedgeStrikes = 0;
        std::uint32_t babbleStrikes = 0;
        std::uint32_t streakStrikes = 0;
        double latencyEwma = 0.0;
        bool ewmaPrimed = false;

        // Stuck-table evidence. A strike counts only when a
        // *Protect-entry* abort streak re-forms on a frame whose
        // table entry the owner had already visibly rewritten on the
        // bus — impossible for a live owner (every writable value
        // replaces Protect, and a later legitimate re-acquisition
        // clears the evidence below), inevitable for a stuck table
        // (the write was silently dropped and the stale Protect
        // keeps aborting). Shared-entry write-back aborts are normal
        // protocol behaviour after a downgrade and never count.
        /** Frame behind the current streak-origin suspicion. */
        std::uint64_t streakFrame = kNoFrame;
        /** The aborting entry observed for that streak was Protect. */
        bool streakProtect = false;
        /** Frame whose post-write aborts are being tracked. */
        std::uint64_t stuckFrame = kNoFrame;
        /** The owner completed a WriteActionTable covering stuckFrame
         *  since it was armed (and has not legitimately re-acquired
         *  the frame since). */
        bool stuckWriteSeen = false;

        // Snapshots taken at suspicion time (probe answers).
        std::uint64_t suspectEpoch = 0;
        std::uint64_t suspectServiced = 0;
        std::uint64_t suspectSpurious = 0;

        // Unfence-recheck state.
        std::uint32_t recheckCount = 0;
        std::uint64_t recheckPushedBase = 0;
    };

    void onTransaction(const mem::BusTransaction &tx,
                       const mem::TxResult &result);
    void suspectOwnerOf(std::uint64_t frame, mem::TxType type);
    /** Evaluate the health witnesses of one Live board (per sweep). */
    void witnessSweep(Board &board);
    void suspect(Board &board, SuspicionKind kind, bool streak_origin,
                 std::uint64_t streak_frame = kNoFrame,
                 bool streak_protect = false);
    void probe(Board &board);
    /** Did the board answer the pending probe, per suspicion kind? */
    bool probeAnswered(Board &board);
    void declare(Board &board);
    void fence(Board &board, SuspicionKind kind);
    void scheduleRecheck(Board &board);
    void recheck(Board &board);
    /** Reset witness state and resync snapshots (rejoin/unfence). */
    void resetWitness(Board &board);
    Board *find(std::uint32_t master);
    const Board *find(std::uint32_t master) const;

    EventQueue &events_;
    mem::VmeBus &bus_;
    std::uint32_t pageBytes_;
    DetectorConfig config_;
    DeadFn onDead_;
    FenceFn onFence_;
    UnfenceFn onUnfence_;
    bool installed_ = false;

    /** Stable addresses: probe events capture Board pointers. */
    std::deque<Board> boards_;
    /** Consecutive aborts per frame (erased on any success). */
    std::unordered_map<std::uint64_t, std::uint64_t> abortStreaks_;
    std::uint64_t observed_ = 0;

    Counter suspicions_;
    Counter probes_;
    Counter falseSuspicions_;
    Counter declarations_;
    Counter wedgeSuspicions_;
    Counter babbleSuspicions_;
    Counter slowSuspicions_;
    Counter stuckEscalations_;
    Counter fences_;
    Counter unfences_;
};

} // namespace vmp::recover

#endif // VMP_RECOVER_FAILURE_DETECTOR_HH
