/**
 * @file
 * Failstop failure detector. The paper's consistency protocol assumes
 * every board eventually services its bus-monitor interrupts; a
 * failstopped board violates that silently — its monitor hardware keeps
 * aborting transactions against stale Protect entries while the software
 * that would release them is gone. The detector watches the bus for the
 * two observable symptoms:
 *
 *  - an *abort streak*: the same frame's consistency transactions keep
 *    aborting (a live owner resolves the conflict within a handful of
 *    retries; a dead one never does);
 *  - a *liveness sweep*: every sweepPeriod observed consistency
 *    transactions, each registered board's AliveFn is polled.
 *
 * Either symptom moves a board Live -> Suspect and schedules a probe
 * after deadlineNs; each unanswered probe doubles the delay
 * (exponential backoff) until maxProbes probes have failed, at which
 * point the board is declared dead and the DeadFn fires — typically
 * wired to RecoveryManager's reclaim flow.
 *
 * Determinism and drain-friendliness: the detector consumes no
 * randomness and schedules *no standing periodic events* — probes are
 * scheduled only while a suspicion is pending and every chain is finite
 * (maxProbes), so an event queue with no other work still drains. In a
 * fault-free run the detector observes transactions but never suspects
 * anything: behavior is bit-identical to a run without it.
 */

#ifndef VMP_RECOVER_FAILURE_DETECTOR_HH
#define VMP_RECOVER_FAILURE_DETECTOR_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "mem/vme_bus.hh"
#include "monitor/bus_monitor.hh"
#include "sim/event.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace vmp::recover
{

/** Detection policy knobs. */
struct DetectorConfig
{
    /** Delay from suspicion to the first probe. */
    Tick deadlineNs = 100'000;
    /** Probes before a Suspect board is declared dead. */
    std::uint32_t maxProbes = 3;
    /**
     * Consecutive aborts of consistency transactions against one frame
     * before the frame's Protect owner is suspected. Live-owner retry
     * chains stay far below this.
     */
    std::uint64_t abortStreakThreshold = 16;
    /** Observed consistency transactions between liveness sweeps. */
    std::uint64_t sweepPeriod = 256;
};

/**
 * Bus-clocked failstop detector for one bus segment. Boards register
 * with a bus-master id, an optional monitor (whose action table is
 * consulted to map an abort streak on a frame to the board that owns
 * it) and an AliveFn the probes poll.
 */
class FailureDetector
{
  public:
    /** Polled by probes; must be cheap and side-effect free. */
    using AliveFn = std::function<bool()>;
    /** Fired exactly once per declaration, with the dead master id. */
    using DeadFn = std::function<void(std::uint32_t master)>;

    FailureDetector(EventQueue &events, mem::VmeBus &bus,
                    std::uint32_t page_bytes,
                    DetectorConfig config = {});

    /**
     * Register a board. @p monitor may be null (e.g. a bridge whose
     * local table is not visible on this bus): such a board is only
     * ever caught by liveness sweeps, never by abort streaks.
     */
    void addBoard(std::uint32_t master,
                  const monitor::BusMonitor *monitor, AliveFn alive);

    void setOnDead(DeadFn on_dead) { onDead_ = std::move(on_dead); }

    /** Start observing the bus. */
    void install();

    /** A previously declared-dead board is back: trust it again. */
    void markRejoined(std::uint32_t master);

    bool declaredDead(std::uint32_t master) const;

    const DetectorConfig &config() const { return config_; }

    const Counter &suspicions() const { return suspicions_; }
    const Counter &probes() const { return probes_; }
    const Counter &falseSuspicions() const { return falseSuspicions_; }
    const Counter &declarations() const { return declarations_; }

    void registerStats(StatGroup &group) const;

  private:
    enum class BoardState : std::uint8_t { Live, Suspect, Dead };

    struct Board
    {
        std::uint32_t master;
        const monitor::BusMonitor *monitor;
        AliveFn alive;
        BoardState state = BoardState::Live;
        std::uint32_t probeAttempt = 0;
        Tick probeDelay = 0;
    };

    void onTransaction(const mem::BusTransaction &tx,
                       const mem::TxResult &result);
    void suspectOwnerOf(std::uint64_t frame, mem::TxType type);
    void suspect(Board &board);
    void probe(Board &board);
    void declare(Board &board);
    Board *find(std::uint32_t master);
    const Board *find(std::uint32_t master) const;

    EventQueue &events_;
    mem::VmeBus &bus_;
    std::uint32_t pageBytes_;
    DetectorConfig config_;
    DeadFn onDead_;
    bool installed_ = false;

    /** Stable addresses: probe events capture Board pointers. */
    std::deque<Board> boards_;
    /** Consecutive aborts per frame (erased on any success). */
    std::unordered_map<std::uint64_t, std::uint64_t> abortStreaks_;
    std::uint64_t observed_ = 0;

    Counter suspicions_;
    Counter probes_;
    Counter falseSuspicions_;
    Counter declarations_;
};

} // namespace vmp::recover

#endif // VMP_RECOVER_FAILURE_DETECTOR_HH
