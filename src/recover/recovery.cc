#include "recover/recovery.hh"

#include <vector>

#include "sim/debug.hh"
#include "sim/logging.hh"

namespace vmp::recover
{

RecoveryManager::RecoveryManager(EventQueue &events, mem::VmeBus &bus,
                                 mem::PhysMem &memory,
                                 RecoveryConfig config)
    : events_(events), bus_(bus), mem_(memory),
      config_(config),
      detector_(events, bus, memory.pageBytes(), config.detector)
{
    detector_.setOnDead(
        [this](std::uint32_t master) { onDeclaredDead(master); });
    detector_.setOnFence(
        [this](std::uint32_t master, SuspicionKind kind) {
            onFenced(master, kind);
        });
    detector_.setOnUnfence(
        [this](std::uint32_t master) { onUnfenced(master); });
}

void
RecoveryManager::addBoard(std::uint32_t master,
                          monitor::BusMonitor &monitor,
                          FailureDetector::AliveFn alive)
{
    if (find(master) != nullptr)
        fatal("master ", master, " registered twice for recovery");
    Record record;
    record.master = master;
    record.monitor = &monitor;
    records_.push_back(record);
    detector_.addBoard(master, &monitor, std::move(alive));
}

void
RecoveryManager::addBridge(std::uint32_t master,
                           FailureDetector::AliveFn alive)
{
    if (find(master) != nullptr)
        fatal("master ", master, " registered twice for recovery");
    Record record;
    record.master = master;
    record.monitor = nullptr;
    record.bridge = true;
    records_.push_back(record);
    detector_.addBoard(master, nullptr, std::move(alive));
}

void
RecoveryManager::install()
{
    detector_.install();
}

void
RecoveryManager::setBackingStore(vm::BackingStore *store, Asid asid)
{
    backing_ = store;
    backingAsid_ = asid;
}

void
RecoveryManager::setPostReclaimHook(std::function<void()> hook)
{
    postReclaimHook_ = std::move(hook);
}

void
RecoveryManager::setFenceHooks(std::function<void(std::uint32_t)> park,
                               std::function<void(std::uint32_t)> resync)
{
    parkHook_ = std::move(park);
    resyncHook_ = std::move(resync);
}

void
RecoveryManager::markRejoined(std::uint32_t master)
{
    Record *record = find(master);
    if (record == nullptr)
        fatal("markRejoined for unknown master ", master);
    if (record->reclaiming)
        fatal("master ", master, " rejoined mid-reclaim");
    record->dead = false;
    if (record->fenced) {
        // Operator-forced rejoin of a quarantined board: lift the
        // fence as part of trusting it again.
        record->fenced = false;
        record->fenceKind = SuspicionKind::None;
        bus_.setMasterFenced(master, false);
        if (record->monitor != nullptr)
            record->monitor->setMasked(false);
    }
    detector_.markRejoined(master);
}

bool
RecoveryManager::isFrameOwnerDead(Addr paddr) const
{
    const std::uint64_t frame = paddr / mem_.pageBytes();
    for (const Record &record : records_) {
        // A fenced board's frames are as hopeless to wait on as a dead
        // one's until its reclaim clears them.
        if (!record.dead && !record.fenced)
            continue;
        // A dead bridge strands every frame reached through it.
        if (record.bridge)
            return true;
        if (record.monitor->table().get(frame) ==
            mem::ActionEntry::Protect) {
            return true;
        }
    }
    return false;
}

std::uint64_t
RecoveryManager::deadBoards() const
{
    std::uint64_t dead = 0;
    for (const Record &record : records_) {
        if (record.dead)
            ++dead;
    }
    return dead;
}

std::uint64_t
RecoveryManager::fencedBoards() const
{
    std::uint64_t fenced = 0;
    for (const Record &record : records_) {
        if (record.fenced)
            ++fenced;
    }
    return fenced;
}

bool
RecoveryManager::isFenced(std::uint32_t master) const
{
    const Record *record = find(master);
    return record != nullptr && record->fenced;
}

bool
RecoveryManager::recovering() const
{
    for (const Record &record : records_) {
        if (record.reclaiming)
            return true;
    }
    return false;
}

RecoveryManager::Record *
RecoveryManager::find(std::uint32_t master)
{
    for (Record &record : records_) {
        if (record.master == master)
            return &record;
    }
    return nullptr;
}

const RecoveryManager::Record *
RecoveryManager::find(std::uint32_t master) const
{
    for (const Record &record : records_) {
        if (record.master == master)
            return &record;
    }
    return nullptr;
}

void
RecoveryManager::onDeclaredDead(std::uint32_t master)
{
    Record *record = find(master);
    if (record == nullptr)
        fatal("declaration for unregistered master ", master);
    if (record->dead)
        return;
    record->dead = true;
    record->declaredAt = events_.now();
    ++boardsDead_;
    if (tracer_ != nullptr) {
        obs::TraceEvent event;
        event.kind = obs::EventKind::RecoveryBegin;
        event.at = events_.now();
        event.master = master;
        event.track = traceTrack_;
        event.aux = record->bridge ? 1 : 0;
        tracer_->record(event);
    }

    if (record->bridge) {
        // Liveness bookkeeping only: the bridge's global-side frames
        // are reclaimed by the global bus's manager. From here on the
        // oracle answers "dead owner" for every frame on this bus.
        VMP_DTRACE(debug::Recover, events_.now(), "bridge master ",
                   master, " declared dead; stranding remote frames");
        return;
    }

    VMP_DTRACE(debug::Recover, events_.now(), "master ", master,
               " declared dead; monitor masked, starting reclaim");
    maskAndReclaim(*record);
}

void
RecoveryManager::maskAndReclaim(Record &record)
{
    // 1. Mask the monitor: its stale entries stop aborting live
    //    traffic. The table is retained for the reclaim scan below.
    record.monitor->setMasked(true);

    // 2. Drain the board's interrupt FIFO — nobody will ever service
    //    those words.
    while (record.monitor->fifo().pop().has_value()) {
    }
    record.monitor->fifo().clearOverflow();

    // 3. Announce the masking with one short broadcast, then reclaim.
    record.reclaiming = true;
    mem::BusTransaction tx;
    tx.type = mem::TxType::BoardMask;
    tx.requester = config_.coordinatorMaster;
    Record *target = &record; // deque: stable address
    bus_.request(tx, [this, target](const mem::TxResult &) {
        startReclaim(*target);
    });
}

void
RecoveryManager::onFenced(std::uint32_t master, SuspicionKind kind)
{
    Record *record = find(master);
    if (record == nullptr)
        fatal("fence for unregistered master ", master);
    if (record->dead || record->fenced)
        return;
    record->fenced = true;
    record->fenceKind = kind;
    record->declaredAt = events_.now();
    lastFenceAt_ = events_.now();
    ++boardsFenced_;
    if (tracer_ != nullptr) {
        obs::TraceEvent event;
        event.kind = obs::EventKind::RecoveryBegin;
        event.at = events_.now();
        event.master = master;
        event.track = traceTrack_;
        // aux: 0/1 = dead board/bridge, 2+ = fence, offset by kind.
        event.aux = static_cast<std::uint8_t>(
            2 + static_cast<std::uint8_t>(kind));
        tracer_->record(event);
    }
    VMP_DTRACE(debug::Recover, events_.now(), "master ", master,
               " fenced (", suspicionKindName(kind),
               "); quarantining");

    // Quarantine: park the board's reference stream and drop its
    // requests at the bus — a babbling or wedged board must not keep
    // competing for arbitration while its frames are reclaimed.
    if (parkHook_)
        parkHook_(master);
    bus_.setMasterFenced(master, true);

    if (record->bridge) {
        // Bridge fencing is liveness + bus quarantine only here; the
        // bridge's global-side frames are the global manager's
        // problem, exactly as for a dead bridge.
        return;
    }
    maskAndReclaim(*record);
}

void
RecoveryManager::onUnfenced(std::uint32_t master)
{
    Record *record = find(master);
    if (record == nullptr)
        fatal("unfence for unregistered master ", master);
    if (!record->fenced)
        return;
    if (record->reclaiming) {
        // The detector cleared the fence while the reclaim broadcast
        // chain is still on the bus; let it finish, then lift.
        events_.scheduleIn(config_.reclaimServiceNs * 4,
                           [this, master] { onUnfenced(master); },
                           "unfence-wait");
        return;
    }
    record->fenced = false;
    record->fenceKind = SuspicionKind::None;
    ++boardsUnfenced_;
    VMP_DTRACE(debug::Recover, events_.now(), "master ", master,
               " unfenced; cold rejoin");
    bus_.setMasterFenced(master, false);
    // The reclaim scan left the table clean; the monitor may watch the
    // bus again.
    if (record->monitor != nullptr)
        record->monitor->setMasked(false);
    if (resyncHook_)
        resyncHook_(master);
}

void
RecoveryManager::startReclaim(Record &record)
{
    // Scan the masked table: Shared/Notify entries are clean-copy
    // bookkeeping (memory is authoritative) and drop silently; Protect
    // entries queue for reclaim — their only valid copy died with the
    // board.
    auto frames = std::make_shared<std::deque<std::uint64_t>>();
    for (const std::uint64_t frame :
         record.monitor->table().nonIgnoredFrames()) {
        if (record.monitor->table().get(frame) ==
            mem::ActionEntry::Protect) {
            frames->push_back(frame);
        } else {
            record.monitor->table().set(frame,
                                        mem::ActionEntry::Ignore);
            ++sharedDropped_;
        }
    }
    VMP_DTRACE(debug::Recover, events_.now(), "master ", record.master,
               ": ", frames->size(), " Protect frames to reclaim, ",
               sharedDropped_.value(), " shared entries dropped");
    reclaimNext(record, std::move(frames));
}

void
RecoveryManager::reclaimNext(
    Record &record, std::shared_ptr<std::deque<std::uint64_t>> frames)
{
    if (frames->empty()) {
        finishReclaim(record);
        return;
    }
    const std::uint64_t frame = frames->front();
    frames->pop_front();
    Record *target = &record;
    events_.scheduleIn(config_.reclaimServiceNs,
                       [this, target, frame, frames] {
        mem::BusTransaction tx;
        tx.type = mem::TxType::Reclaim;
        tx.requester = config_.coordinatorMaster;
        tx.paddr = frame * mem_.pageBytes();
        bus_.request(tx, [this, target, frame,
                          frames](const mem::TxResult &) {
            target->monitor->table().set(frame,
                                         mem::ActionEntry::Ignore);
            ++framesReclaimed_;
            if (tracer_ != nullptr) {
                obs::TraceEvent event;
                event.kind = obs::EventKind::Reclaim;
                event.at = events_.now();
                event.addr = frame * mem_.pageBytes();
                event.master = target->master;
                event.track = traceTrack_;
                tracer_->record(event);
            }
            VMP_DTRACE(debug::Recover, events_.now(), "reclaimed frame ",
                       frame, " from dead master ", target->master);
            restoreFrame(*target, frame, frames);
        });
    }, "reclaim");
}

void
RecoveryManager::restoreFrame(
    Record &record, std::uint64_t frame,
    std::shared_ptr<std::deque<std::uint64_t>> frames)
{
    // A frame with no usable image is genuinely lost; with the
    // FrameCheckpointer shadowing ownership transfers, every Protect
    // entry has one, and pages_lost stays zero by construction.
    if (backing_ == nullptr) {
        ++pagesLost_;
        reclaimNext(record, std::move(frames));
        return;
    }
    const auto *image = backing_->fetch(backingAsid_, frame);
    if (image == nullptr || image->size() != mem_.pageBytes()) {
        ++pagesLost_;
        reclaimNext(record, std::move(frames));
        return;
    }
    // The last checkpointed image of the lost page: stream it back to
    // the memory board after the backing-store fetch latency. Copy
    // now — the borrowed pointer goes stale at the next store.
    auto buffer =
        std::make_shared<std::vector<std::uint8_t>>(*image);
    Record *target = &record;
    events_.scheduleIn(backing_->latency(),
                       [this, target, frame, frames, buffer] {
        mem::BusTransaction tx;
        tx.type = mem::TxType::DmaWrite;
        tx.requester = config_.coordinatorMaster;
        tx.paddr = frame * mem_.pageBytes();
        tx.bytes = static_cast<std::uint32_t>(buffer->size());
        tx.data = buffer->data();
        bus_.request(tx, [this, target, frame, frames,
                          buffer](const mem::TxResult &) {
            ++pagesRestored_;
            VMP_DTRACE(debug::Recover, events_.now(),
                       "restored frame ", frame,
                       " from the backing store");
            reclaimNext(*target, frames);
        });
    }, "reclaim-restore");
}

void
RecoveryManager::finishReclaim(Record &record)
{
    record.reclaiming = false;
    lastRecoveryNs_ = events_.now() - record.declaredAt;
    ++recoveries_;
    if (tracer_ != nullptr) {
        obs::TraceEvent event;
        event.kind = obs::EventKind::Recovery;
        event.at = record.declaredAt;
        event.arg0 = lastRecoveryNs_;
        event.master = record.master;
        event.track = traceTrack_;
        tracer_->record(event);
    }
    VMP_DTRACE(debug::Recover, events_.now(), "master ", record.master,
               " reclaim complete in ", lastRecoveryNs_, " ns");
    if (postReclaimHook_)
        postReclaimHook_();
}

void
RecoveryManager::registerStats(StatGroup &group) const
{
    group.addCounter("boards_declared_dead",
                     "boards (and bridges) declared failstopped",
                     boardsDead_);
    group.addCounter("boards_fenced",
                     "boards quarantined for partial failures",
                     boardsFenced_);
    group.addCounter("boards_unfenced",
                     "quarantines lifted after recovery",
                     boardsUnfenced_);
    group.addCounter("frames_reclaimed",
                     "Protect frames reclaimed from dead boards",
                     framesReclaimed_);
    group.addCounter("shared_dropped",
                     "Shared/Notify entries of dead boards dropped",
                     sharedDropped_);
    group.addCounter("pages_lost",
                     "privately owned pages lost with their board",
                     pagesLost_);
    group.addCounter("pages_restored",
                     "lost pages re-fetched from the backing store",
                     pagesRestored_);
    group.addCounter("recoveries_completed",
                     "reclaim sequences run to completion",
                     recoveries_);
    detector_.registerStats(group);
}

} // namespace vmp::recover
