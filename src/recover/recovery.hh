/**
 * @file
 * Recovery coordinator: turns a FailureDetector declaration into a
 * completed reclaim of everything the dead board owned, restoring the
 * single-owner invariant the paper's protocol depends on.
 *
 * Declare-dead flow, per board:
 *  1. mask the board's bus monitor (its stale Protect entries stop
 *     aborting live traffic) and drain its interrupt FIFO — the words
 *     would never be serviced;
 *  2. broadcast one BoardMask transaction announcing the masking (bus
 *     occupancy + an ordering point for observers);
 *  3. scan the masked monitor's action table: Shared/Notify entries are
 *     dropped silently (clean copies — memory is authoritative),
 *     Protect entries are queued for reclaim;
 *  4. for each Protect frame, after reclaimServiceNs of coordinator
 *     service time, broadcast a Reclaim transaction and clear the
 *     entry. The only valid copy of a Protect frame lived in the dead
 *     board's cache; if an image store is attached (e.g. the memory
 *     tier shadowed by a backing::FrameCheckpointer), the coordinator
 *     re-fetches the last globally visible image and DMA-restores it
 *     to memory (recover.pages_restored) — a frame with no usable
 *     image is counted lost (recover.pages_lost);
 *  5. record time-to-recover and fire the post-reclaim hook — wired by
 *     the system to an immediate CoherenceChecker owners sweep.
 *
 * The manager implements proto::DeadOwnerOracle: while a declared-dead
 * board still holds an unreclaimed Protect entry for a frame (or a
 * bridge to the frame's home bus is dead), controllers waiting on that
 * frame learn their wait is hopeless and abandon with a structured
 * DeadOwnerError instead of hanging.
 *
 * Fencing (partial failures): a wedged, babbling, fail-slow or
 * stuck-table board is sick rather than silent, so the detector's
 * FenceFn triggers *quarantine* instead of burial — park the board's
 * reference stream, fence its requests off at the bus, mask its
 * monitor and drain its FIFO, then run the same reclaim scan so its
 * frames return to service. A fenced board keeps its Record and may be
 * *unfenced* when the detector's recheck finds the fault cleared (or
 * the fence was a false positive): the bus fence lifts, the monitor
 * unmasks over its now-clean table, and the resync hook cold-rejoins
 * the board.
 *
 * Failure model: failstop plus the partial-failure kinds above.
 * Arbitrary Byzantine behavior (a live board emitting adversarially
 * wrong protocol traffic) remains out of scope; the babble model is
 * restricted to garbage *interrupt* words, which degrade service but
 * cannot forge ownership.
 */

#ifndef VMP_RECOVER_RECOVERY_HH
#define VMP_RECOVER_RECOVERY_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "mem/phys_mem.hh"
#include "mem/vme_bus.hh"
#include "monitor/bus_monitor.hh"
#include "proto/dead_owner.hh"
#include "recover/failure_detector.hh"
#include "sim/event.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "vm/backing_store.hh"

namespace vmp::recover
{

/** Coordinator policy knobs (detection policy rides along). */
struct RecoveryConfig
{
    DetectorConfig detector;
    /** Coordinator software service time per reclaimed frame. */
    Tick reclaimServiceNs = 3000;
    /** Bus-master id the coordinator issues transactions as; must not
     *  collide with any CPU, bridge or DMA device. */
    std::uint32_t coordinatorMaster = 0xFFFF;
};

/**
 * One bus segment's recovery coordinator. Owns a FailureDetector and
 * reacts to its declarations. Boards register with their (mutable)
 * monitor so the coordinator can mask it and clear its table; bridges
 * register liveness-only — a dead bridge strands every frame reached
 * through it, so the oracle answers "dead owner" for all frames until
 * the bridge rejoins (bridge boards do not hot-rejoin in this model).
 */
class RecoveryManager final : public proto::DeadOwnerOracle
{
  public:
    RecoveryManager(EventQueue &events, mem::VmeBus &bus,
                    mem::PhysMem &memory, RecoveryConfig config = {});

    /** Register a CPU board: full mask-and-reclaim handling. */
    void addBoard(std::uint32_t master, monitor::BusMonitor &monitor,
                  FailureDetector::AliveFn alive);

    /**
     * Register a bridge (inter-bus cache board) on its *local* bus:
     * liveness detection only, no reclaim — the bridge's global-side
     * frames are reclaimed by the global bus's own manager, which
     * registers the bridge's global monitor via addBoard().
     */
    void addBridge(std::uint32_t master, FailureDetector::AliveFn alive);

    /** Start observing the bus. */
    void install();

    /**
     * Attach the page source for lost-page restoration. @p asid is the
     * address-space key the system checkpoints physical frames under
     * (vpn == frame number).
     */
    void setBackingStore(vm::BackingStore *store, Asid asid);

    /** Fired after each completed reclaim (checker sweep hook). */
    void setPostReclaimHook(std::function<void()> hook);

    /**
     * Hooks bracketing a quarantine, wired by the system: @p park
     * stops the fenced board's reference stream (its bus requests are
     * already being dropped; parking keeps the workload model honest),
     * @p resync cold-rejoins the board after an unfence — wipe its
     * software state and resume. Either may be null.
     */
    void setFenceHooks(std::function<void(std::uint32_t)> park,
                       std::function<void(std::uint32_t)> resync);

    /**
     * Attach (or detach, with nullptr) an event tracer. On @p track:
     * a RecoveryBegin instant at declaration, a Reclaim instant per
     * reclaimed frame, and one Recovery span covering declaration to
     * reclaim-complete. Observation only.
     */
    void
    setTracer(obs::EventTracer *tracer, std::uint16_t track)
    {
        tracer_ = tracer;
        traceTrack_ = track;
    }

    /**
     * A killed board hot-rejoined: trust it again. Fatal while its
     * reclaim is still in flight — the system must sequence rejoin
     * after recovery completes.
     */
    void markRejoined(std::uint32_t master);

    // --- proto::DeadOwnerOracle ---
    bool isFrameOwnerDead(Addr paddr) const override;

    FailureDetector &detector() { return detector_; }
    const FailureDetector &detector() const { return detector_; }
    const RecoveryConfig &config() const { return config_; }

    /** Boards currently declared dead (reclaimed or in progress). */
    std::uint64_t deadBoards() const;
    /** Boards currently fenced (quarantined, not dead). */
    std::uint64_t fencedBoards() const;
    /** True while @p master is quarantined. */
    bool isFenced(std::uint32_t master) const;
    /** True while any board's reclaim is still in flight. */
    bool recovering() const;
    /** Declaration-to-reclaim-complete time of the last recovery. */
    Tick lastRecoveryNs() const { return lastRecoveryNs_; }
    /** Tick of the most recent fence (detection-latency probes). */
    Tick lastFenceAt() const { return lastFenceAt_; }

    const Counter &boardsDeclaredDead() const { return boardsDead_; }
    const Counter &boardsFenced() const { return boardsFenced_; }
    const Counter &boardsUnfenced() const { return boardsUnfenced_; }
    const Counter &framesReclaimed() const { return framesReclaimed_; }
    const Counter &sharedDropped() const { return sharedDropped_; }
    const Counter &pagesLost() const { return pagesLost_; }
    const Counter &pagesRestored() const { return pagesRestored_; }
    const Counter &recoveriesCompleted() const { return recoveries_; }

    /** Registers coordinator and detector stats into @p group. */
    void registerStats(StatGroup &group) const;

  private:
    struct Record
    {
        std::uint32_t master;
        monitor::BusMonitor *monitor; //!< null for bridges
        bool bridge = false;
        bool dead = false;
        bool fenced = false;
        SuspicionKind fenceKind = SuspicionKind::None;
        bool reclaiming = false;
        Tick declaredAt = 0;
    };

    void onDeclaredDead(std::uint32_t master);
    void onFenced(std::uint32_t master, SuspicionKind kind);
    void onUnfenced(std::uint32_t master);
    /** Shared quarantine steps: mask, drain, broadcast, reclaim. */
    void maskAndReclaim(Record &record);
    void startReclaim(Record &record);
    void reclaimNext(Record &record,
                     std::shared_ptr<std::deque<std::uint64_t>> frames);
    void restoreFrame(Record &record, std::uint64_t frame,
                      std::shared_ptr<std::deque<std::uint64_t>> frames);
    void finishReclaim(Record &record);
    Record *find(std::uint32_t master);
    const Record *find(std::uint32_t master) const;

    EventQueue &events_;
    mem::VmeBus &bus_;
    mem::PhysMem &mem_;
    RecoveryConfig config_;
    FailureDetector detector_;

    /** Stable addresses: reclaim events capture Record pointers. */
    std::deque<Record> records_;
    vm::BackingStore *backing_ = nullptr;
    Asid backingAsid_ = 0;
    obs::EventTracer *tracer_ = nullptr;
    std::uint16_t traceTrack_ = 0;
    std::function<void()> postReclaimHook_;
    std::function<void(std::uint32_t)> parkHook_;
    std::function<void(std::uint32_t)> resyncHook_;
    Tick lastRecoveryNs_ = 0;
    Tick lastFenceAt_ = 0;

    Counter boardsDead_;
    Counter boardsFenced_;
    Counter boardsUnfenced_;
    Counter framesReclaimed_;
    Counter sharedDropped_;
    Counter pagesLost_;
    Counter pagesRestored_;
    Counter recoveries_;
};

} // namespace vmp::recover

#endif // VMP_RECOVER_RECOVERY_HH
