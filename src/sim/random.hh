/**
 * @file
 * Deterministic pseudo-random number generation and the distributions the
 * synthetic trace generator needs (uniform, geometric, exponential, Zipf).
 *
 * The simulator must be bit-reproducible across runs given a seed, so we
 * carry our own xoshiro256** generator rather than relying on unspecified
 * standard-library distribution implementations.
 */

#ifndef VMP_SIM_RANDOM_HH
#define VMP_SIM_RANDOM_HH

#include <cmath>
#include <cstdint>
#include <vector>

namespace vmp
{

/**
 * xoshiro256** PRNG seeded via SplitMix64. Fast, high quality, and fully
 * specified here so results do not depend on the host library.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Re-seed, resetting the stream. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using rejection-free scaling. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** True with probability @p p. */
    bool chance(double p);

    /**
     * Geometric number of trials until first success (support {1,2,...})
     * with success probability @p p. Mean 1/p. Used for sequential-run
     * lengths in the trace generator.
     */
    std::uint64_t geometric(double p);

    /** Exponential variate with mean @p mean. */
    double exponential(double mean);

  private:
    std::uint64_t s_[4];
};

/**
 * Zipf-distributed integers over [0, n): rank r is drawn with probability
 * proportional to 1/(r+1)^theta. Sampling is by binary search over the
 * precomputed CDF, so construction is O(n) and sampling O(log n).
 *
 * The trace generator uses this to model working sets with a hot core and
 * a long cold tail, the locality structure that makes large cache pages
 * effective (paper Section 5.2).
 */
class ZipfDist
{
  public:
    ZipfDist(std::uint64_t n, double theta);

    /** Draw one rank in [0, n). */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t domain() const { return cdf_.size(); }
    double theta() const { return theta_; }

  private:
    std::vector<double> cdf_;
    double theta_;
};

} // namespace vmp

#endif // VMP_SIM_RANDOM_HH
