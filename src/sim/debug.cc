#include "sim/debug.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "sim/logging.hh"

namespace vmp::debug
{

namespace
{

std::atomic<std::uint32_t> activeFlags{0};
std::atomic<Sink> activeSink{nullptr};

void
defaultSink(const std::string &line)
{
    std::fprintf(stderr, "%s\n", line.c_str());
}

} // namespace

const char *
flagName(Flag flag)
{
    switch (flag) {
      case Bus: return "Bus";
      case Cache: return "Cache";
      case Monitor: return "Monitor";
      case Proto: return "Proto";
      case Vm: return "Vm";
      case Cpu: return "Cpu";
      case Fault: return "Fault";
      case Check: return "Check";
      case Recover: return "Recover";
      case Obs: return "Obs";
      default: return "?";
    }
}

std::uint32_t
parseFlags(const std::string &spec)
{
    std::uint32_t result = 0;
    std::istringstream stream(spec);
    std::string token;
    while (std::getline(stream, token, ',')) {
        if (token.empty())
            continue;
        if (token == "all" || token == "All") {
            result = All;
        } else if (token == "Bus") {
            result |= Bus;
        } else if (token == "Cache") {
            result |= Cache;
        } else if (token == "Monitor") {
            result |= Monitor;
        } else if (token == "Proto") {
            result |= Proto;
        } else if (token == "Vm") {
            result |= Vm;
        } else if (token == "Cpu") {
            result |= Cpu;
        } else if (token == "Fault") {
            result |= Fault;
        } else if (token == "Check") {
            result |= Check;
        } else if (token == "Recover") {
            result |= Recover;
        } else if (token == "Obs") {
            result |= Obs;
        } else {
            fatal("unknown debug flag '", token,
                  "' (known: Bus, Cache, Monitor, Proto, Vm, Cpu, "
                  "Fault, Check, Recover, Obs, all)");
        }
    }
    return result;
}

void
setFlags(std::uint32_t flags_value)
{
    activeFlags.store(flags_value);
}

void
enable(Flag flag)
{
    activeFlags.fetch_or(flag);
}

void
disable(Flag flag)
{
    activeFlags.fetch_and(~static_cast<std::uint32_t>(flag));
}

std::uint32_t
flags()
{
    return activeFlags.load(std::memory_order_relaxed);
}

void
initFromEnvironment()
{
    const char *spec = std::getenv("VMP_DEBUG");
    if (spec != nullptr && *spec != '\0')
        setFlags(parseFlags(spec));
}

void
setSink(Sink sink)
{
    activeSink.store(sink);
}

void
emit(Flag flag, Tick now, const std::string &message)
{
    std::ostringstream line;
    line << now << ": " << flagName(flag) << ": " << message;
    const Sink sink = activeSink.load();
    (sink != nullptr ? sink : defaultSink)(line.str());
}

} // namespace vmp::debug
