#include "sim/logging.hh"

#include <atomic>
#include <cstdio>

namespace vmp
{

namespace
{
std::atomic<bool> informOn{true};
} // namespace

void
setInformEnabled(bool enabled)
{
    informOn.store(enabled);
}

bool
informEnabled()
{
    return informOn.load();
}

namespace detail
{

void
emitWarn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
emitInform(const std::string &msg)
{
    if (informOn.load())
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail

} // namespace vmp
