/**
 * @file
 * Statistics package: named counters, scalars, ratios and histograms that
 * components register into groups, plus a fixed-width table writer used by
 * the benchmark harness to print paper-style tables.
 */

#ifndef VMP_SIM_STATS_HH
#define VMP_SIM_STATS_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/json.hh"

namespace vmp
{

/** Monotonic event counter. */
class Counter
{
  public:
    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Accumulating real-valued statistic (e.g. busy time). */
class Scalar
{
  public:
    Scalar &operator+=(double v) { value_ += v; return *this; }
    void set(double v) { value_ = v; }
    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/**
 * Fixed-bucket histogram over [0, buckets*width); samples past the top
 * land in the final overflow bucket, and negative samples are tallied
 * in a dedicated underflow counter rather than silently folded into
 * bucket 0 (they still contribute to samples/min/max/mean, which are
 * negative-aware).
 */
class Histogram
{
  public:
    Histogram(std::size_t buckets, double width);

    void sample(double v, std::uint64_t count = 1);
    void reset();

    std::uint64_t samples() const { return samples_; }
    double mean() const;
    double min() const { return min_; }
    double max() const { return max_; }
    double bucketWidth() const { return width_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    /** Samples below 0 (kept out of the bucket array). */
    std::uint64_t underflow() const { return underflow_; }

  private:
    std::vector<std::uint64_t> buckets_;
    double width_;
    std::uint64_t samples_ = 0;
    std::uint64_t underflow_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Registry of named statistics belonging to one component. Components
 * register references to their own members; the group never owns them.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void addCounter(const std::string &name, const std::string &desc,
                    const Counter &counter);
    void addScalar(const std::string &name, const std::string &desc,
                   const Scalar &scalar);
    void addHistogram(const std::string &name, const std::string &desc,
                      const Histogram &histogram);

    const std::string &name() const { return name_; }

    /** Write "group.stat  value  # desc" lines to @p os. */
    void dump(std::ostream &os) const;

    /** Serialize every registered statistic into one JSON object. */
    Json toJson() const;

    struct CounterRef
    {
        std::string name;
        std::string desc;
        const Counter *counter;
    };
    struct ScalarRef
    {
        std::string name;
        std::string desc;
        const Scalar *scalar;
    };
    struct HistogramRef
    {
        std::string name;
        std::string desc;
        const Histogram *histogram;
    };

    const std::vector<CounterRef> &counterRefs() const
    {
        return counters_;
    }
    const std::vector<ScalarRef> &scalarRefs() const
    {
        return scalars_;
    }
    const std::vector<HistogramRef> &histogramRefs() const
    {
        return histograms_;
    }

  private:
    /** Panics if @p name is already registered in this group. */
    void checkUnique(const std::string &name) const;

    std::string name_;
    std::vector<CounterRef> counters_;
    std::vector<ScalarRef> scalars_;
    std::vector<HistogramRef> histograms_;
};

/**
 * Aggregates the StatGroups of every component in a run and serializes
 * them as one JSON object, keyed by group name. Groups are referenced,
 * never owned: keep them alive until after serialization. This is what
 * turns a simulator run into a machine-readable benchmark artifact.
 */
class StatRegistry
{
  public:
    /** Register a group; its name must be unique within the registry. */
    void add(const StatGroup &group);

    std::size_t size() const { return groups_.size(); }

    /** {"group": {"stat": value|histogram-object, ...}, ...} */
    Json toJson() const;

    /** Text dump of every group, in registration order. */
    void dump(std::ostream &os) const;

  private:
    std::vector<const StatGroup *> groups_;
};

/**
 * Fixed-width text table with a title, column headers and typed cells.
 * Benches use it to print rows in the same shape as the paper's tables.
 */
class TableWriter
{
  public:
    explicit TableWriter(std::string title) : title_(std::move(title)) {}

    /** Define columns; must be called before addRow. */
    void columns(std::vector<std::string> headers);

    /** Start a new row. */
    TableWriter &row();

    /** Append cells to the current row. */
    TableWriter &cell(const std::string &text);
    TableWriter &cell(const char *text);
    TableWriter &cell(std::uint64_t v);
    TableWriter &cell(int v);
    /** Floating cell with @p digits fraction digits. */
    TableWriter &cell(double v, int digits = 2);

    /** Render the full table. */
    void print(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace vmp

#endif // VMP_SIM_STATS_HH
