/**
 * @file
 * Dependency-free JSON document model, writer and parser used for the
 * machine-readable benchmark artifacts (BENCH_<name>.json) and the
 * StatRegistry serialization. The writer is deterministic: objects
 * preserve insertion order and numbers render identically across runs,
 * so two artifacts produced from the same seed are byte-identical and
 * can be diffed directly.
 */

#ifndef VMP_SIM_JSON_HH
#define VMP_SIM_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace vmp
{

/**
 * A JSON value: null, bool, number, string, array or object. Objects
 * keep keys in insertion order (no sorting, no hashing) so serialized
 * output is stable and human-diffable.
 *
 * Numbers are stored as doubles; unsigned integers up to 2^53 (far
 * beyond any counter in the simulator's workloads) round-trip exactly
 * and print without a fractional part.
 */
class Json
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Json() = default;
    Json(bool v) : type_(Type::Bool), bool_(v) {}
    Json(double v) : type_(Type::Number), num_(v) {}
    Json(int v) : type_(Type::Number), num_(v) {}
    Json(unsigned v) : type_(Type::Number), num_(v) {}
    Json(std::int64_t v)
        : type_(Type::Number), num_(static_cast<double>(v)) {}
    Json(std::uint64_t v)
        : type_(Type::Number), num_(static_cast<double>(v)) {}
    Json(const char *v) : type_(Type::String), str_(v) {}
    Json(std::string v) : type_(Type::String), str_(std::move(v)) {}

    /** Empty array / object factories (a default Json is null). */
    static Json array();
    static Json object();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Typed accessors; panic on type mismatch. */
    bool asBool() const;
    double asNumber() const;
    std::uint64_t asUint() const;
    const std::string &asString() const;

    /** Array element count / object member count (0 otherwise). */
    std::size_t size() const;

    /** Append to an array (converts a null value into an array). */
    Json &push(Json v);
    /** Array element access; panics when out of range. */
    const Json &at(std::size_t index) const;

    /**
     * Object member access, creating the member (null) when absent; a
     * null value converts into an object on first use.
     */
    Json &operator[](const std::string &key);
    /** Lookup without insertion; nullptr when absent. */
    const Json *find(const std::string &key) const;
    /** find() that panics when the member is absent. */
    const Json &get(const std::string &key) const;
    bool contains(const std::string &key) const;
    /** Object members in insertion order. */
    const std::vector<std::pair<std::string, Json>> &members() const;
    /** Array items. */
    const std::vector<Json> &items() const;

    /**
     * Serialize. @p indent > 0 pretty-prints with that many spaces per
     * level; 0 emits the compact single-line form.
     */
    std::string dump(int indent = 2) const;
    void write(std::ostream &os, int indent = 2) const;

    /** Deterministic number rendering shared with TableWriter users. */
    static std::string numberToString(double v);

    /**
     * Parse a complete JSON document (trailing junk is an error).
     * Throws FatalError with position information on malformed input.
     */
    static Json parse(const std::string &text);

    bool operator==(const Json &other) const;
    bool operator!=(const Json &other) const
    {
        return !(*this == other);
    }

  private:
    void writeIndented(std::ostream &os, int indent, int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

} // namespace vmp

#endif // VMP_SIM_JSON_HH
