/**
 * @file
 * Minimal discrete-event simulation kernel. Components schedule callbacks
 * at absolute ticks; the queue dispatches them in (tick, insertion-order)
 * order, which makes simulations deterministic for a given seed.
 */

#ifndef VMP_SIM_EVENT_HH
#define VMP_SIM_EVENT_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>

#include "sim/types.hh"

namespace vmp
{

/** Handle identifying a scheduled event so it can be descheduled. */
struct EventId
{
    Tick when = maxTick;
    std::uint64_t seq = 0;

    bool valid() const { return when != maxTick; }
    void invalidate() { when = maxTick; }

    bool
    operator<(const EventId &other) const
    {
        return when != other.when ? when < other.when : seq < other.seq;
    }
};

/**
 * Discrete-event queue. Not thread-safe: the whole simulator is single
 * threaded by design (the modelled concurrency lives in simulated time).
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of pending events. */
    std::size_t pending() const { return events_.size(); }

    /** Total number of events dispatched so far. */
    std::uint64_t dispatched() const { return dispatched_; }

    /**
     * Schedule @p cb at absolute time @p when (>= now). Returns a handle
     * usable with deschedule().
     */
    EventId schedule(Tick when, Callback cb, std::string name = {});

    /** Schedule @p cb @p delta ticks from now. */
    EventId
    scheduleIn(Tick delta, Callback cb, std::string name = {})
    {
        return schedule(now_ + delta, std::move(cb), std::move(name));
    }

    /**
     * Remove a previously scheduled event. Returns true if the event was
     * still pending (and is now cancelled), false if it already ran or
     * the id is invalid.
     */
    bool deschedule(EventId &id);

    /**
     * Run events until the queue is empty or @p limit is reached.
     * @return the tick at which the run stopped.
     */
    Tick run(Tick limit = maxTick);

    /** Dispatch exactly one event if any is pending. */
    bool step();

    /** Drop all pending events and reset time to zero. */
    void reset();

  private:
    struct Entry
    {
        Callback cb;
        std::string name;
    };

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t dispatched_ = 0;
    std::map<EventId, Entry> events_;
};

} // namespace vmp

#endif // VMP_SIM_EVENT_HH
