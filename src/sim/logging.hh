/**
 * @file
 * Error and status reporting in the gem5 tradition: panic() for simulator
 * bugs, fatal() for user errors, warn()/inform() for status.
 */

#ifndef VMP_SIM_LOGGING_HH
#define VMP_SIM_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace vmp
{

/** Thrown by panic(): an internal invariant of the simulator is broken. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): the user configured something unusable. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail
{

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

void emitWarn(const std::string &msg);
void emitInform(const std::string &msg);

} // namespace detail

/**
 * Report an internal simulator bug and abort the simulation by throwing.
 * Use only for conditions that no input should be able to provoke.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError(detail::concat("panic: ",
                                    std::forward<Args>(args)...));
}

/**
 * Report an unusable user configuration (bad parameter combination,
 * malformed trace file, ...) and abort by throwing.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::concat("fatal: ",
                                    std::forward<Args>(args)...));
}

/** Warn about suspicious but survivable conditions (stderr). */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitWarn(detail::concat(std::forward<Args>(args)...));
}

/** Normal operating status messages (stderr). */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitInform(detail::concat(std::forward<Args>(args)...));
}

/** Enable/disable inform() output globally (benches silence it). */
void setInformEnabled(bool enabled);
bool informEnabled();

} // namespace vmp

#endif // VMP_SIM_LOGGING_HH
