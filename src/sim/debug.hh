/**
 * @file
 * Conditional debug tracing in the gem5 DPRINTF tradition: named flags
 * (one per subsystem), an output stream, and a macro that prints the
 * current simulated tick, the flag and a message — compiled in always,
 * but a single branch when disabled. Enable programmatically or from
 * the VMP_DEBUG environment variable ("Bus,Proto" or "all").
 */

#ifndef VMP_SIM_DEBUG_HH
#define VMP_SIM_DEBUG_HH

#include <cstdint>
#include <string>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace vmp::debug
{

/** Trace flags, one bit per subsystem. */
enum Flag : std::uint32_t
{
    None = 0,
    Bus = 1u << 0,      //!< bus grants, aborts, completions
    Cache = 1u << 1,    //!< fills, invalidations, flag changes
    Monitor = 1u << 2,  //!< interrupt words, action-table updates
    Proto = 1u << 3,    //!< miss handling, service actions
    Vm = 1u << 4,       //!< faults, pmap operations, pageout
    Cpu = 1u << 5,      //!< instruction/reference stream
    Fault = 1u << 6,    //!< fault injection decisions
    Check = 1u << 7,    //!< coherence-invariant checker
    Recover = 1u << 8,  //!< failure detection and ownership reclaim
    Obs = 1u << 9,      //!< tracing/profiling lifecycle and exports
    All = 0xffffffff,
};

/** Parse a comma-separated flag list ("Bus,Proto", "all"). */
std::uint32_t parseFlags(const std::string &spec);

/** Enable/disable flags for the whole process. */
void setFlags(std::uint32_t flags);
void enable(Flag flag);
void disable(Flag flag);
std::uint32_t flags();

/** Initialize from the VMP_DEBUG environment variable (idempotent). */
void initFromEnvironment();

/** True if @p flag tracing is on. */
inline bool
enabled(Flag flag)
{
    return (flags() & flag) != 0;
}

/** Sink for trace lines (stderr by default); tests can capture. */
using Sink = void (*)(const std::string &line);
void setSink(Sink sink);

/** Emit one formatted line: "<tick>: <flag>: <message>". */
void emit(Flag flag, Tick now, const std::string &message);

const char *flagName(Flag flag);

} // namespace vmp::debug

/**
 * Conditional trace statement. @p flag is a vmp::debug::Flag, @p now
 * the current tick; the remaining arguments are streamed.
 */
#define VMP_DTRACE(flag, now, ...)                                     \
    do {                                                               \
        if (vmp::debug::enabled(flag)) {                               \
            vmp::debug::emit(flag, now,                                \
                             vmp::detail::concat(__VA_ARGS__));        \
        }                                                              \
    } while (0)

#endif // VMP_SIM_DEBUG_HH
