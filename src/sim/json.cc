#include "sim/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace vmp
{

Json
Json::array()
{
    Json j;
    j.type_ = Type::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.type_ = Type::Object;
    return j;
}

bool
Json::asBool() const
{
    if (type_ != Type::Bool)
        panic("Json::asBool on non-bool value");
    return bool_;
}

double
Json::asNumber() const
{
    if (type_ != Type::Number)
        panic("Json::asNumber on non-number value");
    return num_;
}

std::uint64_t
Json::asUint() const
{
    const double v = asNumber();
    if (v < 0.0 || std::floor(v) != v)
        panic("Json::asUint on non-integral number ", v);
    return static_cast<std::uint64_t>(v);
}

const std::string &
Json::asString() const
{
    if (type_ != Type::String)
        panic("Json::asString on non-string value");
    return str_;
}

std::size_t
Json::size() const
{
    switch (type_) {
      case Type::Array: return arr_.size();
      case Type::Object: return obj_.size();
      default: return 0;
    }
}

Json &
Json::push(Json v)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    if (type_ != Type::Array)
        panic("Json::push on non-array value");
    arr_.push_back(std::move(v));
    return *this;
}

const Json &
Json::at(std::size_t index) const
{
    if (type_ != Type::Array)
        panic("Json::at on non-array value");
    if (index >= arr_.size())
        panic("Json::at index ", index, " out of range ", arr_.size());
    return arr_[index];
}

Json &
Json::operator[](const std::string &key)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    if (type_ != Type::Object)
        panic("Json::operator[] on non-object value");
    for (auto &[k, v] : obj_) {
        if (k == key)
            return v;
    }
    obj_.emplace_back(key, Json{});
    return obj_.back().second;
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &[k, v] : obj_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const Json &
Json::get(const std::string &key) const
{
    const Json *v = find(key);
    if (v == nullptr)
        panic("Json::get: missing member \"", key, "\"");
    return *v;
}

bool
Json::contains(const std::string &key) const
{
    return find(key) != nullptr;
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    if (type_ != Type::Object)
        panic("Json::members on non-object value");
    return obj_;
}

const std::vector<Json> &
Json::items() const
{
    if (type_ != Type::Array)
        panic("Json::items on non-array value");
    return arr_;
}

bool
Json::operator==(const Json &other) const
{
    if (type_ != other.type_)
        return false;
    switch (type_) {
      case Type::Null: return true;
      case Type::Bool: return bool_ == other.bool_;
      case Type::Number: return num_ == other.num_;
      case Type::String: return str_ == other.str_;
      case Type::Array: return arr_ == other.arr_;
      case Type::Object: return obj_ == other.obj_;
    }
    return false;
}

// ------------------------------------------------------------- writing

namespace
{

void
writeEscaped(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char ch : s) {
        const auto c = static_cast<unsigned char>(ch);
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\b': os << "\\b"; break;
          case '\f': os << "\\f"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << ch;
            }
        }
    }
    os << '"';
}

void
newline(std::ostream &os, int indent, int depth)
{
    if (indent <= 0)
        return;
    os << '\n';
    for (int i = 0; i < indent * depth; ++i)
        os << ' ';
}

} // namespace

std::string
Json::numberToString(double v)
{
    if (std::isnan(v))
        panic("Json cannot represent NaN");
    if (std::isinf(v))
        panic("Json cannot represent infinity");
    // Exact integers (the common case: counters, byte sizes) print
    // without a fractional part.
    if (std::floor(v) == v && std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    // Shortest representation that round-trips.
    char buf[40];
    for (const int prec : {15, 16, 17}) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(buf, "%lf", &back);
        if (back == v)
            break;
    }
    return buf;
}

void
Json::writeIndented(std::ostream &os, int indent, int depth) const
{
    switch (type_) {
      case Type::Null:
        os << "null";
        break;
      case Type::Bool:
        os << (bool_ ? "true" : "false");
        break;
      case Type::Number:
        os << numberToString(num_);
        break;
      case Type::String:
        writeEscaped(os, str_);
        break;
      case Type::Array:
        if (arr_.empty()) {
            os << "[]";
            break;
        }
        os << '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i > 0)
                os << ',';
            newline(os, indent, depth + 1);
            arr_[i].writeIndented(os, indent, depth + 1);
        }
        newline(os, indent, depth);
        os << ']';
        break;
      case Type::Object:
        if (obj_.empty()) {
            os << "{}";
            break;
        }
        os << '{';
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (i > 0)
                os << ',';
            newline(os, indent, depth + 1);
            writeEscaped(os, obj_[i].first);
            os << (indent > 0 ? ": " : ":");
            obj_[i].second.writeIndented(os, indent, depth + 1);
        }
        newline(os, indent, depth);
        os << '}';
        break;
    }
}

void
Json::write(std::ostream &os, int indent) const
{
    writeIndented(os, indent, 0);
}

std::string
Json::dump(int indent) const
{
    std::ostringstream os;
    write(os, indent);
    return os.str();
}

// ------------------------------------------------------------- parsing

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Json
    parseDocument()
    {
        Json value = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after document");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        fatal("JSON parse error at offset ", pos_, ": ", why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + peek() +
                 "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        const std::size_t n = std::char_traits<char>::length(lit);
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Json
    parseValue()
    {
        skipWs();
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return Json(parseString());
          case 't':
            if (!consumeLiteral("true"))
                fail("bad literal");
            return Json(true);
          case 'f':
            if (!consumeLiteral("false"))
                fail("bad literal");
            return Json(false);
          case 'n':
            if (!consumeLiteral("null"))
                fail("bad literal");
            return Json();
          default:
            return parseNumber();
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                // UTF-8 encode the code point (BMP only; surrogate
                // pairs are not produced by our writer).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xc0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                } else {
                    out.push_back(
                        static_cast<char>(0xe0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3f)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                }
                break;
              }
              default:
                fail("bad escape character");
            }
        }
    }

    Json
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        double value = 0.0;
        const std::string tok = text_.substr(start, pos_ - start);
        if (std::sscanf(tok.c_str(), "%lf", &value) != 1)
            fail("malformed number \"" + tok + "\"");
        return Json(value);
    }

    Json
    parseArray()
    {
        expect('[');
        Json arr = Json::array();
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        while (true) {
            arr.push(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return arr;
        }
    }

    Json
    parseObject()
    {
        expect('{');
        Json obj = Json::object();
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        while (true) {
            skipWs();
            const std::string key = parseString();
            skipWs();
            expect(':');
            obj[key] = parseValue();
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return obj;
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

Json
Json::parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

} // namespace vmp
