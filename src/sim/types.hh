/**
 * @file
 * Fundamental scalar types and unit helpers used throughout the VMP
 * simulator. One simulation tick equals one nanosecond, matching the
 * granularity of the timing figures in the paper (Section 2 and 5.1).
 */

#ifndef VMP_SIM_TYPES_HH
#define VMP_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace vmp
{

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** A virtual or physical byte address. */
using Addr = std::uint64_t;

/** Address space identifier; VMP uses an 8-bit ASID register. */
using Asid = std::uint8_t;

/** Identifier of a processor board on the bus (dense, 0-based). */
using CpuId = std::uint32_t;

/** Sentinel for "no tick scheduled". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Unit helpers so timing constants read like the paper. */
constexpr Tick
nsec(std::uint64_t n)
{
    return n;
}

/** Microseconds expressed in ticks. */
constexpr Tick
usec(std::uint64_t n)
{
    return n * 1000;
}

/** Milliseconds expressed in ticks. */
constexpr Tick
msec(std::uint64_t n)
{
    return n * 1000 * 1000;
}

/** Convert a tick count to (double) microseconds for reporting. */
constexpr double
toUsec(Tick t)
{
    return static_cast<double>(t) / 1000.0;
}

/** Kibibytes/mebibytes for cache and memory sizes. */
constexpr std::uint64_t
KiB(std::uint64_t n)
{
    return n << 10;
}

constexpr std::uint64_t
MiB(std::uint64_t n)
{
    return n << 20;
}

/** True iff @p v is a (nonzero) power of two. */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Base-2 logarithm of a power of two. */
constexpr unsigned
log2i(std::uint64_t v)
{
    unsigned r = 0;
    while (v > 1) {
        v >>= 1;
        ++r;
    }
    return r;
}

/** Round @p v down to a multiple of power-of-two @p align. */
constexpr Addr
alignDown(Addr v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** Round @p v up to a multiple of power-of-two @p align. */
constexpr Addr
alignUp(Addr v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

} // namespace vmp

#endif // VMP_SIM_TYPES_HH
