#include "sim/event.hh"

#include "sim/logging.hh"

namespace vmp
{

EventId
EventQueue::schedule(Tick when, Callback cb, std::string name)
{
    if (when < now_)
        panic("scheduling event '", name, "' at ", when,
              " in the past (now ", now_, ")");
    if (!cb)
        panic("scheduling empty callback '", name, "'");
    EventId id{when, nextSeq_++};
    events_.emplace(id, Entry{std::move(cb), std::move(name)});
    return id;
}

bool
EventQueue::deschedule(EventId &id)
{
    if (!id.valid())
        return false;
    const auto it = events_.find(id);
    id.invalidate();
    if (it == events_.end())
        return false;
    events_.erase(it);
    return true;
}

bool
EventQueue::step()
{
    if (events_.empty())
        return false;
    auto it = events_.begin();
    now_ = it->first.when;
    // Move the callback out before erasing so the callback may freely
    // schedule or deschedule other events (including itself).
    Callback cb = std::move(it->second.cb);
    events_.erase(it);
    ++dispatched_;
    cb();
    return true;
}

Tick
EventQueue::run(Tick limit)
{
    while (!events_.empty() && events_.begin()->first.when <= limit) {
        if (!step())
            break;
    }
    if (now_ < limit && limit != maxTick)
        now_ = limit;
    return now_;
}

void
EventQueue::reset()
{
    events_.clear();
    now_ = 0;
    nextSeq_ = 0;
    dispatched_ = 0;
}

} // namespace vmp
