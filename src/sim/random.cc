#include "sim/random.hh"

#include <algorithm>
#include <limits>

#include "sim/logging.hh"

namespace vmp
{

namespace
{

/** SplitMix64 step used for seeding xoshiro state. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t x = seed_value;
    for (auto &s : s_)
        s = splitMix64(x);
    // xoshiro must not start in the all-zero state.
    if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::below called with bound 0");
    // 128-bit multiply-shift scaling: negligible bias for our bounds.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
}

std::uint64_t
Rng::between(std::uint64_t lo, std::uint64_t hi)
{
    if (lo > hi)
        panic("Rng::between: lo > hi");
    return lo + below(hi - lo + 1);
}

double
Rng::uniform()
{
    // 53 random bits into [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::geometric(double p)
{
    if (p <= 0.0 || p > 1.0)
        panic("Rng::geometric: p out of (0, 1]: ", p);
    if (p == 1.0)
        return 1;
    double u = uniform();
    // Avoid log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    const double trials = std::floor(std::log(u) / std::log1p(-p)) + 1.0;
    // For tiny p the trial count can exceed 2^64 - 1; converting such
    // a double to uint64_t is undefined behaviour, so saturate first.
    // 0x1p64 is the smallest power of two above the uint64_t range.
    if (trials >= 0x1.0p64)
        return std::numeric_limits<std::uint64_t>::max();
    return static_cast<std::uint64_t>(trials);
}

double
Rng::exponential(double mean)
{
    double u = uniform();
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

ZipfDist::ZipfDist(std::uint64_t n, double theta_value)
    : theta_(theta_value)
{
    if (n == 0)
        panic("ZipfDist over empty domain");
    cdf_.resize(n);
    double sum = 0.0;
    for (std::uint64_t r = 0; r < n; ++r) {
        sum += 1.0 / std::pow(static_cast<double>(r + 1), theta_);
        cdf_[r] = sum;
    }
    for (auto &c : cdf_)
        c /= sum;
    cdf_.back() = 1.0;
}

std::uint64_t
ZipfDist::sample(Rng &rng) const
{
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::uint64_t>(it - cdf_.begin());
}

} // namespace vmp
