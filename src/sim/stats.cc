#include "sim/stats.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "sim/logging.hh"

namespace vmp
{

Histogram::Histogram(std::size_t buckets, double width)
    : buckets_(buckets, 0), width_(width)
{
    if (buckets == 0 || width <= 0.0)
        panic("Histogram needs >=1 bucket and positive width");
}

void
Histogram::sample(double v, std::uint64_t count)
{
    if (samples_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    samples_ += count;
    sum_ += v * static_cast<double>(count);
    if (v < 0.0) {
        // A negative sample is almost always an accounting bug in the
        // caller (e.g. a time delta computed backwards). Keep it out
        // of the distribution — folding it into bucket 0 used to
        // corrupt the histogram silently — but preserve it in the
        // moments, which remain negative-aware.
        underflow_ += count;
        return;
    }
    std::size_t idx = static_cast<std::size_t>(v / width_);
    if (idx >= buckets_.size())
        idx = buckets_.size() - 1;
    buckets_[idx] += count;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    samples_ = 0;
    underflow_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

double
Histogram::mean() const
{
    return samples_ == 0 ? 0.0 : sum_ / static_cast<double>(samples_);
}

void
StatGroup::checkUnique(const std::string &name) const
{
    for (const auto &c : counters_) {
        if (c.name == name)
            panic("stat group \"", name_, "\": duplicate stat name \"",
                  name, "\"");
    }
    for (const auto &s : scalars_) {
        if (s.name == name)
            panic("stat group \"", name_, "\": duplicate stat name \"",
                  name, "\"");
    }
    for (const auto &h : histograms_) {
        if (h.name == name)
            panic("stat group \"", name_, "\": duplicate stat name \"",
                  name, "\"");
    }
}

void
StatGroup::addCounter(const std::string &name, const std::string &desc,
                      const Counter &counter)
{
    checkUnique(name);
    counters_.push_back({name, desc, &counter});
}

void
StatGroup::addScalar(const std::string &name, const std::string &desc,
                     const Scalar &scalar)
{
    checkUnique(name);
    scalars_.push_back({name, desc, &scalar});
}

void
StatGroup::addHistogram(const std::string &name,
                        const std::string &desc,
                        const Histogram &histogram)
{
    checkUnique(name);
    histograms_.push_back({name, desc, &histogram});
}

void
StatGroup::dump(std::ostream &os) const
{
    char buf[64];
    for (const auto &c : counters_) {
        std::snprintf(buf, sizeof(buf), "%20llu",
                      static_cast<unsigned long long>(c.counter->value()));
        os << name_ << '.' << c.name << ' ' << buf
           << "  # " << c.desc << '\n';
    }
    for (const auto &s : scalars_) {
        std::snprintf(buf, sizeof(buf), "%20.6g", s.scalar->value());
        os << name_ << '.' << s.name << ' ' << buf
           << "  # " << s.desc << '\n';
    }
    for (const auto &h : histograms_) {
        std::snprintf(buf, sizeof(buf),
                      "n=%llu mean=%.6g min=%.6g max=%.6g under=%llu",
                      static_cast<unsigned long long>(
                          h.histogram->samples()),
                      h.histogram->mean(), h.histogram->min(),
                      h.histogram->max(),
                      static_cast<unsigned long long>(
                          h.histogram->underflow()));
        os << name_ << '.' << h.name << ' ' << buf
           << "  # " << h.desc << '\n';
    }
}

Json
StatGroup::toJson() const
{
    Json group = Json::object();
    for (const auto &c : counters_)
        group[c.name] = Json(c.counter->value());
    for (const auto &s : scalars_)
        group[s.name] = Json(s.scalar->value());
    for (const auto &h : histograms_) {
        const Histogram &hist = *h.histogram;
        Json j = Json::object();
        j["samples"] = Json(hist.samples());
        j["mean"] = Json(hist.mean());
        j["min"] = Json(hist.min());
        j["max"] = Json(hist.max());
        j["underflow"] = Json(hist.underflow());
        j["bucket_width"] = Json(hist.bucketWidth());
        Json buckets = Json::array();
        for (const auto count : hist.buckets())
            buckets.push(Json(count));
        j["buckets"] = std::move(buckets);
        group[h.name] = std::move(j);
    }
    return group;
}

void
StatRegistry::add(const StatGroup &group)
{
    for (const auto *g : groups_) {
        if (g->name() == group.name())
            panic("StatRegistry: duplicate group \"", group.name(),
                  "\"");
    }
    groups_.push_back(&group);
}

Json
StatRegistry::toJson() const
{
    Json all = Json::object();
    for (const auto *g : groups_)
        all[g->name()] = g->toJson();
    return all;
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto *g : groups_)
        g->dump(os);
}

void
TableWriter::columns(std::vector<std::string> headers)
{
    headers_ = std::move(headers);
}

TableWriter &
TableWriter::row()
{
    rows_.emplace_back();
    return *this;
}

TableWriter &
TableWriter::cell(const std::string &text)
{
    if (rows_.empty())
        panic("TableWriter::cell before row()");
    rows_.back().push_back(text);
    return *this;
}

TableWriter &
TableWriter::cell(const char *text)
{
    return cell(std::string(text));
}

TableWriter &
TableWriter::cell(std::uint64_t v)
{
    return cell(std::to_string(v));
}

TableWriter &
TableWriter::cell(int v)
{
    return cell(std::to_string(v));
}

TableWriter &
TableWriter::cell(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return cell(std::string(buf));
}

void
TableWriter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t i = 0; i < headers_.size(); ++i)
        widths[i] = headers_[i].size();
    for (const auto &r : rows_) {
        for (std::size_t i = 0; i < r.size() && i < widths.size(); ++i)
            widths[i] = std::max(widths[i], r[i].size());
    }

    const auto pad = [&os](const std::string &s, std::size_t w) {
        os << s;
        for (std::size_t i = s.size(); i < w; ++i)
            os << ' ';
    };

    os << "== " << title_ << " ==\n";
    for (std::size_t i = 0; i < headers_.size(); ++i) {
        pad(headers_[i], widths[i]);
        os << (i + 1 < headers_.size() ? "  " : "");
    }
    os << '\n';
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i)
        total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
    for (std::size_t i = 0; i < total; ++i)
        os << '-';
    os << '\n';
    for (const auto &r : rows_) {
        for (std::size_t i = 0; i < r.size(); ++i) {
            pad(r[i], i < widths.size() ? widths[i] : r[i].size());
            os << (i + 1 < r.size() ? "  " : "");
        }
        os << '\n';
    }
    os << '\n';
}

} // namespace vmp
