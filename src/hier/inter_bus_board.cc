#include "hier/inter_bus_board.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace vmp::hier
{

using mem::ActionEntry;
using mem::TxType;
using mem::WatchVerdict;

InterBusBoard::InterBusBoard(std::uint32_t cluster_index,
                             std::uint32_t local_master_id,
                             EventQueue &events, mem::VmeBus &local_bus,
                             mem::VmeBus &global_bus,
                             mem::PhysMem &image,
                             const IbcTiming &timing,
                             std::size_t fifo_capacity)
    : globalId_(cluster_index), localId_(local_master_id),
      events_(events), localBus_(local_bus), globalBus_(global_bus),
      image_(image), timing_(timing), pageBytes_(image.pageBytes()),
      localTable_(image.size(), image.pageBytes()),
      localFifo_(fifo_capacity),
      globalMonitor_(cluster_index, image.size(), image.pageBytes(),
                     fifo_capacity),
      globalCopier_(cluster_index, global_bus),
      rng_(0x51C5'A11Du * (cluster_index + 1) + 0x0B0Au),
      staging_(image.pageBytes())
{
    localBus_.attachWatcher(localId_, *this);
    globalBus_.attachWatcher(globalId_, globalMonitor_);
    globalMonitor_.setInterruptLine([this] { kick(); });
}

void
InterBusBoard::traceInstant(obs::EventKind kind, Addr addr)
{
    if (tracer_ == nullptr)
        return;
    obs::TraceEvent event;
    event.kind = kind;
    event.at = events_.now();
    event.addr = addr;
    event.master = globalId_;
    event.track = traceTrack_;
    tracer_->record(event);
}

void
InterBusBoard::traceFetch(Tick started, Addr addr, bool exclusive,
                          bool upgrade)
{
    if (tracer_ == nullptr)
        return;
    obs::TraceEvent event;
    event.kind = obs::EventKind::IbcFetch;
    event.at = started;
    event.addr = addr;
    event.arg0 = events_.now() - started;
    event.master = globalId_;
    event.track = traceTrack_;
    event.aux = static_cast<std::uint8_t>((exclusive ? 1u : 0u) |
                                          (upgrade ? 2u : 0u));
    tracer_->record(event);
}

std::uint64_t
InterBusBoard::frameOf(Addr paddr) const
{
    return image_.frameOf(paddr);
}

Addr
InterBusBoard::frameBase(Addr paddr) const
{
    return image_.frameBase(image_.frameOf(paddr));
}

WatchVerdict
InterBusBoard::observe(const mem::BusTransaction &tx)
{
    // Never compete against our own local recalls.
    if (tx.requester == localId_)
        return WatchVerdict::Ignore;

    switch (tx.type) {
      case TxType::WriteBack:
        // Every local write-back lands in the cluster image. Mark the
        // frame dirty so a later downgrade/invalidate propagates it to
        // main memory. The marking is conservative: we cannot know
        // here whether another local monitor aborts this transfer, but
        // writing back a frame whose image copy merely *equals* main
        // memory is redundant, never incorrect.
        dirty_.insert(frameOf(tx.paddr));
        return WatchVerdict::Ignore;
      case TxType::Notify:
        // Notifications are cluster-local (cross-cluster notification
        // would need a global forwarding entry; out of scope).
        return WatchVerdict::Ignore;
      case TxType::ReadShared:
        if (localTable_.entryFor(tx.paddr) != ActionEntry::Ignore)
            return WatchVerdict::Ignore; // present: serve from image
        break;
      case TxType::ReadPrivate:
      case TxType::AssertOwnership:
        if (localTable_.entryFor(tx.paddr) == ActionEntry::Protect)
            return WatchVerdict::Ignore; // cluster owns the frame
        break;
      default:
        return WatchVerdict::Ignore;
    }

    // Cluster-level miss: abort the local transaction (the CPU retries,
    // just as against a busy owner in the flat protocol) and queue a
    // fetch/upgrade request for the service software.
    ++localAborts_;
    localFifo_.push({tx.type, tx.paddr, tx.requester, true});
    kick();
    return WatchVerdict::AbortAndInterrupt;
}

void
InterBusBoard::sideEffectUpdate(const mem::BusTransaction &)
{
    // The board's own local transactions never carry side-effect
    // updates (recalls use updatesTable = false); CPU transactions
    // update their own monitors, not this watcher.
}

mem::ActionEntry
InterBusBoard::clusterState(Addr paddr) const
{
    return localTable_.entryFor(paddr);
}

bool
InterBusBoard::isDirty(Addr paddr) const
{
    return dirty_.count(image_.frameOf(paddr)) != 0;
}

mem::ActionEntry
InterBusBoard::globalShadowEntry(Addr paddr) const
{
    const auto it = globalShadow_.find(image_.frameOf(paddr));
    return it == globalShadow_.end() ? ActionEntry::Ignore : it->second;
}

bool
InterBusBoard::idle() const
{
    return !busy_ && !kickScheduled_ && localFifo_.empty() &&
        !localFifo_.overflowed() && globalMonitor_.fifo().empty() &&
        !globalMonitor_.fifo().overflowed();
}

void
InterBusBoard::kick()
{
    if (dead_ || wedged_ || busy_ || kickScheduled_)
        return;
    kickScheduled_ = true;
    events_.scheduleIn(1, [this] {
        kickScheduled_ = false;
        pump();
    }, "ibc-pump");
}

void
InterBusBoard::pump()
{
    if (dead_ || wedged_ || busy_)
        return;
    // Global-FIFO overflow may have lost an interrupt word for another
    // cluster's *successful* ownership acquisition; recover
    // conservatively before trusting any entry again.
    if (globalMonitor_.fifo().overflowed()) {
        busy_ = true;
        ++serviceEpoch_;
        recoverGlobalOverflow([this] { finishWork(); });
        return;
    }
    // Local-FIFO overflow is harmless: every dropped word belonged to
    // an aborted local transaction whose CPU retries and regenerates
    // it.
    if (localFifo_.overflowed()) {
        localFifo_.clearOverflow();
        ++localOverflowClears_;
    }
    if (auto word = globalMonitor_.fifo().pop()) {
        busy_ = true;
        ++wordsGlobal_;
        ++serviceEpoch_;
        serviceGlobalWord(*word, [this] { finishWork(); });
        return;
    }
    if (auto word = localFifo_.pop()) {
        busy_ = true;
        ++wordsLocal_;
        ++serviceEpoch_;
        serviceLocalWord(*word, [this] { finishWork(); });
        return;
    }
}

void
InterBusBoard::finishWork()
{
    busy_ = false;
    pump();
}

void
InterBusBoard::afterSoftware(Tick delay, Done fn)
{
    // Every software step of a dead board vanishes: in-flight service
    // chains (including retry loops) cut off at their next instruction
    // boundary, so a dead board schedules no further work and the
    // event queue still drains.
    events_.scheduleIn(delay, [this, fn = std::move(fn)] {
        if (!dead_)
            fn();
    }, "ibc-software");
}

void
InterBusBoard::failstop()
{
    dead_ = true;
}

Tick
InterBusBoard::retryDelay()
{
    return timing_.retryNs + rng_.below(timing_.retryJitterNs + 1);
}

// --- local side: fetch/upgrade requests -----------------------------

void
InterBusBoard::serviceLocalWord(monitor::InterruptWord word, Done done)
{
    afterSoftware(timing_.serviceNs,
                  [this, word, done = std::move(done)] {
                      dispatchLocalWord(word, done);
                  });
}

void
InterBusBoard::dispatchLocalWord(monitor::InterruptWord word, Done done)
{
    const auto entry = localTable_.entryFor(word.paddr);
    const bool want_exclusive = word.type != TxType::ReadShared;

    // An earlier word (or a concurrent upgrade) may already have
    // satisfied this request.
    if (entry == ActionEntry::Protect ||
        (!want_exclusive && entry != ActionEntry::Ignore)) {
        ++spurious_;
        done();
        return;
    }
    if (entry == ActionEntry::Ignore)
        fetchFrame(word, want_exclusive, std::move(done));
    else
        upgradeFrame(word, std::move(done)); // Shared -> Protect
}

void
InterBusBoard::fetchFrame(monitor::InterruptWord word, bool exclusive,
                          Done done)
{
    const Addr base = frameBase(word.paddr);
    const Tick fetch_started = events_.now();
    globalCopier_.readPage(
        base, staging_.data(), pageBytes_, exclusive,
        [this, word, exclusive, base, fetch_started,
         done = std::move(done)](const mem::TxResult &result) {
            if (result.aborted) {
                ++retries_;
                // Another cluster owns the frame. Service its pending
                // requests first — it may be waiting for a frame *we*
                // hold — then retry from current cluster state.
                drainGlobalWords([this, word, done] {
                    events_.scheduleIn(retryDelay(),
                                       [this, word, done] {
                                           dispatchLocalWord(word,
                                                             done);
                                       },
                                       "ibc-fetch-retry");
                });
                return;
            }
            image_.initBlock(base, staging_.data(), pageBytes_);
            const auto frame = frameOf(base);
            dirty_.erase(frame);
            const auto entry = exclusive ? ActionEntry::Protect
                                         : ActionEntry::Shared;
            shadowSet(frame, entry);
            ++(exclusive ? exclusiveFetches_ : sharedFetches_);
            if (budgetFault_)
                budgetFault_();
            traceFetch(fetch_started, base, exclusive,
                       /*upgrade=*/false);
            afterSoftware(timing_.installNs, [this, base, entry, done] {
                localTable_.setFor(base, entry);
                done();
            });
        });
}

void
InterBusBoard::upgradeFrame(monitor::InterruptWord word, Done done)
{
    const Addr base = frameBase(word.paddr);
    const Tick upgrade_started = events_.now();
    mem::BusTransaction tx;
    tx.type = TxType::AssertOwnership;
    tx.requester = globalId_;
    tx.paddr = base;
    tx.newEntry = ActionEntry::Protect;
    tx.updatesTable = true;
    globalBus_.request(tx, [this, word, base, upgrade_started,
                            done = std::move(done)](
                               const mem::TxResult &result) {
        if (result.aborted) {
            ++retries_;
            // The drain may invalidate this very frame (we lost a
            // race for ownership); dispatch re-examines the state.
            drainGlobalWords([this, word, done] {
                events_.scheduleIn(retryDelay(),
                                   [this, word, done] {
                                       dispatchLocalWord(word, done);
                                   },
                                   "ibc-upgrade-retry");
            });
            return;
        }
        ++upgrades_;
        shadowSet(frameOf(base), ActionEntry::Protect);
        if (budgetFault_)
            budgetFault_();
        traceFetch(upgrade_started, base, /*exclusive=*/true,
                   /*upgrade=*/true);
        afterSoftware(timing_.installNs, [this, base, done] {
            localTable_.setFor(base, ActionEntry::Protect);
            done();
        });
    });
}

// --- global side: consistency interrupt service ---------------------

void
InterBusBoard::serviceGlobalWord(monitor::InterruptWord word, Done done)
{
    afterSoftware(timing_.serviceNs, [this, word,
                                      done = std::move(done)] {
        // Echo of one of our own (self-observed) transactions.
        if (word.requester == globalId_ && !word.aborted) {
            ++spurious_;
            done();
            return;
        }
        const Addr base = frameBase(word.paddr);
        const auto frame = frameOf(word.paddr);
        const auto state = localTable_.entryFor(base);
        switch (word.type) {
          case TxType::ReadShared:
            // Another cluster wants a shared copy of a frame we own.
            if (state == ActionEntry::Protect) {
                downgradeCluster(base, done);
            } else if (state == ActionEntry::Shared) {
                // Compatible with our shared copy: typically the
                // retry of a request our since-downgraded Protect
                // entry aborted. The Shared entry MUST stand — it is
                // what guarantees we are interrupted when another
                // cluster later asserts ownership. Clearing it here
                // would let that assert slip past silently and leave
                // this cluster free to upgrade a stale image.
                ++spurious_;
                done();
            } else {
                clearGlobalEntryIfStale(base, done);
            }
            return;
          case TxType::ReadPrivate:
          case TxType::AssertOwnership:
            if (state != ActionEntry::Ignore)
                invalidateCluster(base, done);
            else
                clearGlobalEntryIfStale(base, done);
            return;
          case TxType::WriteBack:
            // Another cluster wrote a frame back while our entry still
            // claimed it: only legal as a stale-entry race (they
            // acquired ownership and the corresponding word is, or
            // was, ahead of this one in the FIFO).
            if (state != ActionEntry::Ignore || dirty_.count(frame)) {
                ++violations_;
                localTable_.setFor(base, ActionEntry::Ignore);
                dirty_.erase(frame);
                recallLocal(base, [this, base, done] {
                    clearGlobalEntryIfStale(base, done);
                });
            } else {
                clearGlobalEntryIfStale(base, done);
            }
            return;
          default:
            ++spurious_;
            done();
            return;
        }
    });
}

void
InterBusBoard::drainGlobalWords(Done done)
{
    if (auto word = globalMonitor_.fifo().pop()) {
        ++wordsGlobal_;
        serviceGlobalWord(*word, [this, done = std::move(done)] {
            drainGlobalWords(done);
        });
    } else {
        done();
    }
}

void
InterBusBoard::downgradeCluster(Addr base, Done done)
{
    ++downgrades_;
    const auto frame = frameOf(base);
    // Block new local fills first: local transactions abort and queue
    // as ordinary fetch requests until the transition completes.
    localTable_.setFor(base, ActionEntry::Ignore);
    recallLocal(base, [this, base, frame, done = std::move(done)] {
        const Done finish = [this, base, frame, done] {
            shadowSet(frame, ActionEntry::Shared);
            localTable_.setFor(base, ActionEntry::Shared);
            done();
        };
        if (dirty_.count(frame)) {
            writeBackGlobal(base, ActionEntry::Shared,
                            [this, frame, finish] {
                                dirty_.erase(frame);
                                finish();
                            });
        } else {
            setGlobalEntry(base, ActionEntry::Shared, finish);
        }
    });
}

void
InterBusBoard::invalidateCluster(Addr base, Done done)
{
    ++invalidates_;
    const auto frame = frameOf(base);
    const auto state = localTable_.entryFor(base);
    localTable_.setFor(base, ActionEntry::Ignore);
    recallLocal(base, [this, base, frame, state,
                       done = std::move(done)] {
        if (state == ActionEntry::Protect && dirty_.count(frame)) {
            writeBackGlobal(base, ActionEntry::Ignore,
                            [this, frame, done] {
                                dirty_.erase(frame);
                                shadowErase(frame);
                                done();
                            });
        } else {
            dirty_.erase(frame);
            shadowErase(frame);
            setGlobalEntry(base, ActionEntry::Ignore, done);
        }
    });
}

void
InterBusBoard::clearGlobalEntryIfStale(Addr base, Done done)
{
    const auto frame = frameOf(base);
    const auto it = globalShadow_.find(frame);
    if (it == globalShadow_.end() ||
        it->second == ActionEntry::Ignore) {
        ++spurious_;
        done();
        return;
    }
    globalShadow_.erase(it);
    if (budgetUse_)
        budgetUse_(-1);
    setGlobalEntry(base, ActionEntry::Ignore, std::move(done));
}

// --- primitives -----------------------------------------------------

void
InterBusBoard::recallLocal(Addr base, Done done)
{
    ++recalls_;
    auto attempt = std::make_shared<std::function<void()>>();
    *attempt = [this, base, done = std::move(done), attempt] {
        mem::BusTransaction tx;
        tx.type = TxType::AssertOwnership;
        tx.requester = localId_;
        tx.paddr = base;
        localBus_.request(tx, [this, base, done, attempt](
                                  const mem::TxResult &result) {
            if (result.aborted) {
                // A local cache still owns the frame; it relinquishes
                // (writing dirty data back to the image) when it
                // services the interrupt this attempt queued.
                ++retries_;
                events_.scheduleIn(retryDelay(),
                                   [attempt] { (*attempt)(); },
                                   "ibc-recall-retry");
                return;
            }
            *attempt = [] {}; // break the closure cycle
            traceInstant(obs::EventKind::IbcRecall, base);
            done();
        });
    };
    (*attempt)();
}

void
InterBusBoard::writeBackGlobal(Addr base, ActionEntry after, Done done)
{
    auto attempt = std::make_shared<std::function<void()>>();
    *attempt = [this, base, after, done = std::move(done), attempt] {
        // Re-read the image on every attempt: cheap, and immune to any
        // staging reuse between retries.
        image_.readBlock(base, staging_.data(), pageBytes_);
        globalCopier_.writeBackPage(
            base, staging_.data(), pageBytes_, after,
            [this, base, done, attempt](const mem::TxResult &result) {
                if (result.aborted) {
                    // Only a stale Shared entry in another cluster's
                    // monitor can abort our write-back; it clears
                    // autonomously, so a plain jittered retry (no
                    // drain mid-transition) converges.
                    ++retries_;
                    events_.scheduleIn(retryDelay(),
                                       [attempt] { (*attempt)(); },
                                       "ibc-wb-retry");
                    return;
                }
                ++globalWriteBacks_;
                *attempt = [] {};
                traceInstant(obs::EventKind::IbcWriteBack, base);
                done();
            });
    };
    (*attempt)();
}

void
InterBusBoard::setGlobalEntry(Addr base, ActionEntry entry, Done done)
{
    mem::BusTransaction tx;
    tx.type = TxType::WriteActionTable;
    tx.requester = globalId_;
    tx.paddr = base;
    tx.newEntry = entry;
    tx.updatesTable = true;
    globalBus_.request(tx, [done = std::move(done)](
                               const mem::TxResult &) { done(); });
}

// --- overflow recovery ----------------------------------------------

void
InterBusBoard::recoverGlobalOverflow(Done done)
{
    ++recoveries_;
    globalMonitor_.fifo().clearOverflow();
    // A lost word can only have *required* action for a SharedGlobal
    // frame (another cluster's successful ownership acquisition);
    // transactions against Protect frames were aborted and will be
    // retried, regenerating their words. Drop every shared frame.
    auto frames = std::make_shared<std::vector<std::uint64_t>>();
    for (const auto &[frame, entry] : globalShadow_) {
        if (entry == ActionEntry::Shared)
            frames->push_back(frame);
    }
    std::sort(frames->begin(), frames->end());
    dropSharedFrames(std::move(frames), 0, std::move(done));
}

void
InterBusBoard::dropSharedFrames(
    std::shared_ptr<std::vector<std::uint64_t>> frames,
    std::size_t index, Done done)
{
    if (index >= frames->size()) {
        done();
        return;
    }
    const Addr base = image_.frameBase((*frames)[index]);
    localTable_.setFor(base, ActionEntry::Ignore);
    recallLocal(base, [this, frames, index, base,
                       done = std::move(done)] {
        dirty_.erase((*frames)[index]);
        shadowErase((*frames)[index]);
        setGlobalEntry(base, ActionEntry::Ignore,
                       [this, frames, index, done] {
                           dropSharedFrames(frames, index + 1, done);
                       });
    });
}

// --- budget-client footprint tracking -------------------------------

void
InterBusBoard::shadowSet(std::uint64_t frame, ActionEntry entry)
{
    const bool fresh =
        globalShadow_.insert_or_assign(frame, entry).second;
    if (fresh && budgetUse_)
        budgetUse_(+1);
}

void
InterBusBoard::shadowErase(std::uint64_t frame)
{
    if (globalShadow_.erase(frame) != 0 && budgetUse_)
        budgetUse_(-1);
}

// --- statistics -----------------------------------------------------

void
InterBusBoard::registerStats(StatGroup &group) const
{
    group.addCounter("fetches_shared",
                     "global page fetches, shared", sharedFetches_);
    group.addCounter("fetches_exclusive",
                     "global page fetches, exclusive",
                     exclusiveFetches_);
    group.addCounter("upgrades",
                     "global shared-to-private upgrades", upgrades_);
    group.addCounter("downgrades",
                     "cluster downgrades (lost exclusivity)",
                     downgrades_);
    group.addCounter("invalidates",
                     "cluster invalidations (lost frame)",
                     invalidates_);
    group.addCounter("recalls",
                     "local recalls issued before releasing frames",
                     recalls_);
    group.addCounter("global_write_backs",
                     "image pages written back to main memory",
                     globalWriteBacks_);
    group.addCounter("retries",
                     "aborted transactions retried (both buses)",
                     retries_);
    group.addCounter("words_local",
                     "local fetch/upgrade request words serviced",
                     wordsLocal_);
    group.addCounter("words_global",
                     "global consistency interrupt words serviced",
                     wordsGlobal_);
    group.addCounter("spurious_words",
                     "words already satisfied/stale when serviced",
                     spurious_);
    group.addCounter("local_aborts",
                     "local transactions aborted (cluster misses)",
                     localAborts_);
    group.addCounter("violations",
                     "protocol invariant violations observed",
                     violations_);
    group.addCounter("overflow_recoveries",
                     "global-FIFO overflow recovery sweeps",
                     recoveries_);
    group.addCounter("local_overflow_clears",
                     "local-FIFO overflow flags cleared",
                     localOverflowClears_);
}

} // namespace vmp::hier
