/**
 * @file
 * The inter-bus cache board of the two-level VMP hierarchy (the
 * VMP-MC direction sketched in the paper's conclusion): one board per
 * cluster bridges that cluster's local VMEbus onto the global bus.
 *
 * Towards its local bus the board behaves like a very large cache that
 * participates in the cluster's two-state ownership protocol: a full
 * *cluster image* of physical memory backs every local block transfer,
 * and a cluster-level action table decides, for every local
 * consistency transaction, whether the cluster may satisfy it
 * (Ignore = absent, Shared = cluster holds a shared copy, Protect =
 * cluster owns the frame). Local transactions the cluster cannot
 * satisfy are aborted exactly like the flat protocol aborts a CPU —
 * the requesting processor retries while the board's software fetches
 * or upgrades the frame over the global bus.
 *
 * Towards the global bus the board is an ordinary protocol client: it
 * reuses the stock bus monitor (action table + interrupt FIFO) and
 * block copier, so the global level *is* the paper's flat two-state
 * protocol with inter-bus boards in place of processors. Two-state
 * legality therefore holds per level, with the board acting as the
 * single owner proxy for its whole cluster.
 *
 * Like everything else in VMP, the board's consistency engine is
 * software: a single service loop with an instruction-time budget
 * drains the two interrupt FIFOs (global first — releasing frames
 * other clusters wait for breaks any cross-cluster wait cycle),
 * recalls local copies before giving up frames, and recovers
 * conservatively from FIFO overflow.
 */

#ifndef VMP_HIER_INTER_BUS_BOARD_HH
#define VMP_HIER_INTER_BUS_BOARD_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mem/block_copier.hh"
#include "mem/bus_types.hh"
#include "mem/phys_mem.hh"
#include "mem/vme_bus.hh"
#include "monitor/action_table.hh"
#include "monitor/bus_monitor.hh"
#include "monitor/interrupt_fifo.hh"
#include "sim/event.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace vmp::hier
{

/** Instruction-time budget of the board's service software. */
struct IbcTiming
{
    /** Dispatch + bookkeeping for one interrupt word. */
    Tick serviceNs = 3000;
    /** Install a fetched page in the image and update tables. */
    Tick installNs = 2000;
    /** Base retry back-off after an aborted global transaction. */
    Tick retryNs = 1000;
    /** Desynchronizing jitter added to every retry. */
    Tick retryJitterNs = 12000;
};

/**
 * One cluster's inter-bus cache board. Implements mem::BusWatcher on
 * the *local* bus directly (its pass/abort rule differs from a
 * processor monitor's: a cluster-level Shared entry must still block
 * local ownership upgrades until the global upgrade completes) and
 * owns a stock monitor::BusMonitor on the *global* bus.
 */
class InterBusBoard : public mem::BusWatcher
{
  public:
    using Done = std::function<void()>;

    /**
     * @param cluster_index this cluster's master id on the global bus
     * @param local_master_id the board's master id on the local bus
     *        (must not collide with the cluster's CPU ids)
     * @param image the cluster image (local bus memory); same size and
     *        page geometry as main memory
     */
    InterBusBoard(std::uint32_t cluster_index,
                  std::uint32_t local_master_id, EventQueue &events,
                  mem::VmeBus &local_bus, mem::VmeBus &global_bus,
                  mem::PhysMem &image, const IbcTiming &timing = {},
                  std::size_t fifo_capacity = 128);

    std::uint32_t clusterIndex() const { return globalId_; }
    std::uint32_t localMasterId() const { return localId_; }

    // --- BusWatcher interface (local bus) ---
    mem::WatchVerdict observe(const mem::BusTransaction &tx) override;
    void sideEffectUpdate(const mem::BusTransaction &tx) override;

    // --- introspection for tests ---
    /** Cluster-level state of the frame at @p paddr: Ignore = absent,
     *  Shared = shared copy, Protect = cluster owns the frame. */
    mem::ActionEntry clusterState(Addr paddr) const;
    /** True if the image holds data newer than main memory. */
    bool isDirty(Addr paddr) const;
    /** Software's shadow of the global monitor's action-table entry. */
    mem::ActionEntry globalShadowEntry(Addr paddr) const;
    monitor::BusMonitor &globalMonitor() { return globalMonitor_; }
    const monitor::BusMonitor &globalMonitor() const
    {
        return globalMonitor_;
    }
    /** True when no service work is pending or in flight. */
    bool idle() const;

    /**
     * Failstop the board's *software*: the service loop stops (at the
     * next software step — bus transactions already in flight complete,
     * they cannot be recalled) and no further global fetches, upgrades
     * or recalls happen. The board's table *hardware* keeps driving
     * both buses: local requests the cluster cannot satisfy keep
     * aborting with nobody left to service them, and the global
     * monitor's stale entries keep aborting other clusters — the
     * hazards the recovery subsystem clears. Inter-bus boards do not
     * hot-rejoin in this model.
     */
    void failstop();
    /** True once failstopped. */
    bool dead() const { return dead_; }

    /**
     * Wedge / unwedge the board's service loop (partial-failure
     * injection): while wedged, kick()/pump() refuse to start work, so
     * aborted local requests and global consistency words pile up
     * undrained while the table hardware keeps aborting on both buses.
     * dead() stays false — a binary liveness probe sees a healthy
     * board. Unwedging kicks the loop so the backlog drains.
     */
    void setWedged(bool wedged)
    {
        wedged_ = wedged;
        if (!wedged_)
            kick();
    }
    /** True while the service loop is wedged. */
    bool wedged() const { return wedged_; }

    /**
     * Service-loop progress epoch: advances once per work item the
     * pump takes (overflow recovery, global word, local word). The
     * cluster health witness compares epochs across observations.
     */
    std::uint64_t serviceEpoch() const { return serviceEpoch_; }

    /** Words currently queued for the service loop (both FIFOs). */
    std::size_t pendingWords() const
    {
        return localFifo_.size() + globalMonitor_.fifo().size();
    }

    /**
     * Register this board with a cluster-level memory-budget client:
     * @p on_fault is called once per successful global fetch/upgrade
     * (pressure input) and @p on_use with +1/-1 as the cluster's
     * global-shadow footprint grows/shrinks (occupancy input). Null
     * hooks (the default) cost one untaken branch each.
     */
    void setBudgetClient(std::function<void()> on_fault,
                         std::function<void(std::int32_t)> on_use)
    {
        budgetFault_ = std::move(on_fault);
        budgetUse_ = std::move(on_use);
    }

    /**
     * Arm fault injection on the board's soft spots: the local-side
     * request FIFO, the global-side monitor (FIFO + interrupt
     * delivery) and the global block copier. Null disarms.
     */
    void setFaultHooks(mem::FaultHooks *hooks)
    {
        localFifo_.setFaultHooks(hooks);
        globalMonitor_.setFaultHooks(hooks, &events_);
        globalCopier_.setFaultHooks(hooks);
    }

    /**
     * Attach (or detach, with nullptr) an event tracer: global
     * fetches/upgrades record IbcFetch spans, cluster recalls and
     * global write-backs record instants, and the local request FIFO,
     * global monitor and global copier record their own events — all
     * on this board's one @p track. Observation only.
     */
    void
    setTracer(obs::EventTracer *tracer, std::uint16_t track)
    {
        tracer_ = tracer;
        traceTrack_ = track;
        localFifo_.setTracer(tracer, track, &events_);
        globalMonitor_.setTracer(tracer, track, &events_);
        globalCopier_.setTracer(tracer, track);
    }

    // --- statistics ---
    const Counter &sharedFetches() const { return sharedFetches_; }
    const Counter &exclusiveFetches() const { return exclusiveFetches_; }
    /** Total global page fetches (shared + exclusive). */
    std::uint64_t globalFetches() const
    {
        return sharedFetches_.value() + exclusiveFetches_.value();
    }
    const Counter &upgrades() const { return upgrades_; }
    const Counter &downgrades() const { return downgrades_; }
    const Counter &invalidates() const { return invalidates_; }
    const Counter &recalls() const { return recalls_; }
    const Counter &globalWriteBacks() const { return globalWriteBacks_; }
    const Counter &retries() const { return retries_; }
    const Counter &spuriousWords() const { return spurious_; }
    const Counter &wordsLocal() const { return wordsLocal_; }
    const Counter &wordsGlobal() const { return wordsGlobal_; }
    const Counter &localAborts() const { return localAborts_; }
    const Counter &protocolViolations() const { return violations_; }
    const Counter &overflowRecoveries() const { return recoveries_; }
    void registerStats(StatGroup &group) const;

  private:
    std::uint64_t frameOf(Addr paddr) const;
    Addr frameBase(Addr paddr) const;

    /** Schedule a service pass (no-op if one is running/scheduled). */
    void kick();
    /** Take the next work item, priority: overflow, global, local. */
    void pump();
    void finishWork();
    void afterSoftware(Tick delay, Done fn);
    Tick retryDelay();

    void serviceLocalWord(monitor::InterruptWord word, Done done);
    /** State-dependent dispatch of a local fetch/upgrade request;
     *  also the retry entry point (cluster state may have changed). */
    void dispatchLocalWord(monitor::InterruptWord word, Done done);
    void fetchFrame(monitor::InterruptWord word, bool exclusive,
                    Done done);
    void upgradeFrame(monitor::InterruptWord word, Done done);

    void serviceGlobalWord(monitor::InterruptWord word, Done done);
    /** Service every queued global word, then @p done (deadlock
     *  avoidance before retrying an aborted global transaction). */
    void drainGlobalWords(Done done);
    void downgradeCluster(Addr base, Done done);
    void invalidateCluster(Addr base, Done done);
    /** Clear a stale global action-table entry, if any. */
    void clearGlobalEntryIfStale(Addr base, Done done);

    /** Force every local cache to give up the frame (local
     *  assert-ownership, retried until unaborted). */
    void recallLocal(Addr base, Done done);
    /** Write the image copy of @p base back to main memory; the global
     *  entry becomes @p after. Retries on abort. */
    void writeBackGlobal(Addr base, mem::ActionEntry after, Done done);
    /** Set this board's global action-table entry via the bus. */
    void setGlobalEntry(Addr base, mem::ActionEntry entry, Done done);

    void recoverGlobalOverflow(Done done);
    void dropSharedFrames(
        std::shared_ptr<std::vector<std::uint64_t>> frames,
        std::size_t index, Done done);

    /** Record an instant event (no-op while tracer_ is null). */
    void traceInstant(obs::EventKind kind, Addr addr);
    /** Record an IbcFetch span started at @p started. */
    void traceFetch(Tick started, Addr addr, bool exclusive,
                    bool upgrade);

    obs::EventTracer *tracer_ = nullptr;
    std::uint16_t traceTrack_ = 0;

    std::uint32_t globalId_;
    std::uint32_t localId_;
    EventQueue &events_;
    mem::VmeBus &localBus_;
    mem::VmeBus &globalBus_;
    mem::PhysMem &image_;
    IbcTiming timing_;
    std::uint32_t pageBytes_;

    /** Cluster-level state table (local side). */
    monitor::ActionTable localTable_;
    /** Aborted local requests awaiting a global fetch/upgrade. */
    monitor::InterruptFifo localFifo_;
    /** Stock monitor watching the global bus for this board. */
    monitor::BusMonitor globalMonitor_;
    mem::BlockCopier globalCopier_;
    Rng rng_;

    /** Page staging buffer for global transfers. */
    std::vector<std::uint8_t> staging_;
    /** Frames whose image copy is newer than main memory. */
    std::unordered_set<std::uint64_t> dirty_;
    /** Software shadow of the global monitor's action table. */
    std::unordered_map<std::uint64_t, mem::ActionEntry> globalShadow_;

    /** Track the global-shadow footprint for the budget client. */
    void shadowSet(std::uint64_t frame, mem::ActionEntry entry);
    void shadowErase(std::uint64_t frame);

    bool busy_ = false;
    bool kickScheduled_ = false;
    bool dead_ = false;
    /** Service loop wedged (partial failure; distinct from dead_). */
    bool wedged_ = false;
    /** Service-loop progress epoch (see serviceEpoch()). */
    std::uint64_t serviceEpoch_ = 0;
    /** Cluster budget-client hooks (null unless registered). */
    std::function<void()> budgetFault_;
    std::function<void(std::int32_t)> budgetUse_;

    Counter sharedFetches_;
    Counter exclusiveFetches_;
    Counter upgrades_;
    Counter downgrades_;
    Counter invalidates_;
    Counter recalls_;
    Counter globalWriteBacks_;
    Counter retries_;
    Counter wordsLocal_;
    Counter wordsGlobal_;
    Counter spurious_;
    Counter violations_;
    Counter recoveries_;
    Counter localOverflowClears_;
    Counter localAborts_;
};

} // namespace vmp::hier

#endif // VMP_HIER_INTER_BUS_BOARD_HH
