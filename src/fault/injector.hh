/**
 * @file
 * Deterministic, seeded fault injector. The paper's central robustness
 * claim (Sections 3.2/3.3) is that *software* recovers from every
 * consistency hazard: aborted transactions are retried with
 * desynchronizing delays, interrupt-FIFO overflow triggers a recovery
 * sweep, and protocol races resolve by retry rather than hardware
 * arbitration. This injector exists to *force* those paths on demand.
 *
 * A FaultSchedule declares, per fault kind, when to fire: with a fixed
 * probability per opportunity, on every Nth opportunity, or both —
 * optionally limited to a [notBefore, notAfter] simulated-time window.
 * The FaultInjector compiles the schedule and implements
 * mem::FaultHooks; components offered a fault ("opportunities") and
 * faults actually fired ("injected") are counted per kind.
 *
 * Determinism: the injector owns its own Rng (seeded from the
 * schedule), and draws from it only when a probabilistic spec is armed
 * for the kind being evaluated and the window is open. An empty
 * schedule therefore consumes no randomness and changes no behavior —
 * a run with a null schedule attached is bit-identical to a run with
 * no injector at all.
 */

#ifndef VMP_FAULT_INJECTOR_HH
#define VMP_FAULT_INJECTOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/dma.hh"
#include "mem/fault_hooks.hh"
#include "mem/vme_bus.hh"
#include "sim/event.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace vmp::fault
{

/** The fault kinds the hardware models expose hooks for. */
enum class FaultKind : std::uint8_t
{
    BusAbort = 0,       //!< spurious abort of a consistency transaction
    Truncate = 1,       //!< block transfer cut off mid-transfer
    CopierStall = 2,    //!< block copier delayed before issuing
    FifoDrop = 3,       //!< interrupt word force-dropped (overflow)
    InterruptDelay = 4, //!< interrupt line raised late
    DmaBurst = 5,       //!< unsolicited DMA write fired mid-run
    BoardCrash = 6,     //!< processor board failstopped mid-run
    // Partial failures (boards that are sick rather than silent):
    MonitorWedge = 7,     //!< service loop stops draining its FIFO
    FifoBabble = 8,       //!< FIFO fabricates garbage interrupt words
    ActionTableStuck = 9, //!< action-table updates silently dropped
    SlowBoard = 10,       //!< interrupt-service latency inflated Nx
};

inline constexpr std::size_t kFaultKinds = 11;

/** True for the per-board partial-failure kinds (time-driven specs). */
bool isPartialFaultKind(FaultKind kind);

const char *faultKindName(FaultKind kind);

/** One declarative trigger for one fault kind. */
struct FaultSpec
{
    FaultKind kind = FaultKind::BusAbort;
    /** Fire with this probability per opportunity (0 = disabled). */
    double probability = 0.0;
    /** Fire on every Nth opportunity of this kind (0 = disabled). */
    std::uint64_t every = 0;
    /** Simulated-time window the spec is active in. */
    Tick notBefore = 0;
    Tick notAfter = maxTick;
    /** Delay magnitude for CopierStall / InterruptDelay, in ns. */
    Tick delayNs = 0;
};

/**
 * One scheduled board failstop. Crashes are *time*-driven rather than
 * opportunity-driven: the system executing the schedule (see
 * core::VmpSystem::enableFaultInjection) turns each entry into
 * killBoard/rejoinBoard events at the given ticks — the injector only
 * accounts for them. Deterministic by construction (no RNG draw).
 */
struct BoardCrashSpec
{
    /** CPU board index — or, with interBus set, the cluster index of
     *  the inter-bus cache board to kill (hierarchical systems). */
    std::uint32_t board = 0;
    /** Tick the board failstops at. */
    Tick at = 0;
    /** Tick the board hot-rejoins at (0 = never rejoins). */
    Tick rejoinAt = 0;
    /** Kill a cluster's inter-bus cache board instead of a CPU. */
    bool interBus = false;
};

/**
 * One scheduled partial failure of one board. Like board crashes these
 * are *time*-driven: the system executing the schedule arms the
 * board's seam at tick `at` (and clears it at `clearAt`, if set) and
 * calls FaultInjector::notePartialFault for the accounting. The one
 * opportunity-driven member is FifoBabble's `rate`: while the window
 * is open the board's monitor asks the injector, once per observed bus
 * transaction, whether to fabricate a garbage word.
 */
struct PartialFaultSpec
{
    FaultKind kind = FaultKind::MonitorWedge;
    /** CPU board index — or, with interBus set, the cluster index of
     *  the inter-bus cache board to wedge (MonitorWedge only). */
    std::uint32_t board = 0;
    /** Tick the failure sets in. */
    Tick at = 0;
    /** Tick the underlying fault clears again (0 = never). */
    Tick clearAt = 0;
    /** FifoBabble: garbage words per observed bus transaction. */
    double rate = 0.0;
    /** SlowBoard: service-latency multiplier (>= 1). */
    std::uint64_t factor = 1;
    /** Wedge the cluster's inter-bus board instead of a CPU board. */
    bool interBus = false;
};

/**
 * A seed plus a list of FaultSpecs. The builder methods append one
 * spec each and return *this, so schedules read declaratively:
 *
 *   FaultSchedule s;
 *   s.seed = 42;
 *   s.busAborts(0.01).fifoDrops(0.05).window(0, MiB(1));
 *
 * window()/everyNth() modify the most recently appended spec.
 */
struct FaultSchedule
{
    /** Seed of the injector's private Rng. */
    std::uint64_t seed = 1;
    std::vector<FaultSpec> specs;
    /** Scheduled board failstops (see BoardCrashSpec). */
    std::vector<BoardCrashSpec> crashes;
    /** Scheduled partial failures (see PartialFaultSpec). */
    std::vector<PartialFaultSpec> partials;

    FaultSchedule &busAborts(double p);
    FaultSchedule &truncations(double p);
    FaultSchedule &copierStalls(double p, Tick delay_ns);
    FaultSchedule &fifoDrops(double p);
    FaultSchedule &interruptDelays(double p, Tick delay_ns);
    FaultSchedule &dmaBursts(double p);

    /** Restrict the last appended spec to [not_before, not_after]. */
    FaultSchedule &window(Tick not_before, Tick not_after);
    /** Make the last appended spec also fire every @p n opportunities. */
    FaultSchedule &everyNth(std::uint64_t n);

    /** Failstop CPU board @p board at tick @p at. */
    FaultSchedule &crashBoard(std::uint32_t board, Tick at);
    /** Failstop cluster @p cluster's inter-bus board at tick @p at. */
    FaultSchedule &crashInterBus(std::uint32_t cluster, Tick at);
    /** Make the most recently appended crash hot-rejoin at @p t. */
    FaultSchedule &rejoinAt(Tick t);

    /** Wedge CPU board @p board's interrupt-service loop at @p at. */
    FaultSchedule &wedgeMonitor(std::uint32_t board, Tick at);
    /** Wedge cluster @p cluster's inter-bus board service loop. */
    FaultSchedule &wedgeInterBus(std::uint32_t cluster, Tick at);
    /** Make board @p board's FIFO babble garbage words at @p rate
     *  (words per observed bus transaction) from @p at on. */
    FaultSchedule &babbleFifo(std::uint32_t board, Tick at, double rate);
    /** Silently drop board @p board's action-table updates from @p at. */
    FaultSchedule &stickActionTable(std::uint32_t board, Tick at);
    /** Inflate board @p board's interrupt-service latency @p factor x
     *  from @p at on. */
    FaultSchedule &slowBoard(std::uint32_t board, Tick at,
                             std::uint64_t factor);
    /** Make the most recently appended partial failure clear at @p t
     *  (the underlying fault recovers; the board may be unfenced). */
    FaultSchedule &clearAt(Tick t);

    /** True if any spec could ever fire for @p kind. */
    bool arms(FaultKind kind) const;
    /** True if no spec can ever fire. */
    bool empty() const;

  private:
    FaultSchedule &append(FaultKind kind, double p, Tick delay_ns);
    FaultSchedule &appendPartial(PartialFaultSpec spec);
};

/**
 * The concrete mem::FaultHooks implementation. Attach it to the
 * components under test via their setFaultHooks() methods (or let
 * core::VmpSystem::enableFaultInjection wire a whole system).
 *
 * DMA bursts: call attachDmaTarget() with a scratch physical region
 * that no CPU ever caches (the demand translator reserves low frames
 * for exactly this). Each burst streams one deterministic page into
 * the scratch region through an owned DmaDevice, adding real bus
 * contention mid-run without breaking the software DMA bracket that
 * coherence relies on. Burst opportunities piggyback on bus-abort
 * hook calls (i.e. one opportunity per consistency transaction).
 */
class FaultInjector final : public mem::FaultHooks
{
  public:
    FaultInjector(EventQueue &events, FaultSchedule schedule);

    // --- mem::FaultHooks ---
    bool injectBusAbort(const mem::BusTransaction &tx) override;
    bool injectTruncate(const mem::BusTransaction &tx) override;
    Tick injectCopierStall(const mem::BusTransaction &tx) override;
    bool injectFifoDrop() override;
    Tick injectInterruptDelay() override;
    std::uint32_t injectFifoBabble(std::uint32_t owner) override;

    /**
     * Enable DMA bursts against @p bus: one page of @p page_bytes per
     * burst, round-robin over @p pages frames starting at
     * @p scratch_base. @p master_id must not collide with any CPU.
     */
    void attachDmaTarget(mem::VmeBus &bus, std::uint32_t master_id,
                         Addr scratch_base, std::uint32_t page_bytes,
                         std::uint32_t pages);

    const FaultSchedule &schedule() const { return schedule_; }
    bool armed(FaultKind kind) const;

    /**
     * Account one executed board crash (called by the system executing
     * the schedule's BoardCrashSpec entries at their trigger tick).
     */
    void noteBoardCrash();

    /**
     * Account one partial failure armed at its trigger tick (called by
     * the system executing the schedule's PartialFaultSpec entries;
     * FifoBabble is instead accounted per fabricated word through
     * injectFifoBabble).
     */
    void notePartialFault(FaultKind kind);

    /** Hook calls offered for @p kind so far. */
    std::uint64_t opportunities(FaultKind kind) const;
    /** Faults actually fired for @p kind so far. */
    const Counter &injected(FaultKind kind) const;
    /** Total faults fired across all kinds. */
    std::uint64_t totalInjected() const;

    void registerStats(StatGroup &group) const;

  private:
    /** One compiled spec. */
    struct Arm
    {
        double probability;
        std::uint64_t every;
        Tick notBefore;
        Tick notAfter;
        Tick delayNs;
    };

    /**
     * Evaluate the arms of @p kind for one opportunity. Returns true
     * if any arm fires; @p delay_ns (if non-null) receives the firing
     * arm's delay magnitude.
     */
    bool fire(FaultKind kind, Tick *delay_ns = nullptr);

    /** Evaluate a DmaBurst opportunity and start a burst if it fires. */
    void maybeDmaBurst();

    EventQueue &events_;
    FaultSchedule schedule_;
    Rng rng_;
    std::vector<Arm> arms_[kFaultKinds];
    /** Compiled FifoBabble specs (fast no-babble short-circuit). */
    std::vector<PartialFaultSpec> babbles_;
    std::uint64_t opportunities_[kFaultKinds] = {};
    Counter injected_[kFaultKinds];

    // DMA burst machinery (null until attachDmaTarget()).
    std::unique_ptr<mem::DmaDevice> dma_;
    Addr dmaBase_ = 0;
    std::uint32_t dmaPageBytes_ = 0;
    std::uint32_t dmaPages_ = 0;
    std::uint64_t dmaSeq_ = 0;
    bool dmaBusy_ = false;
};

} // namespace vmp::fault

#endif // VMP_FAULT_INJECTOR_HH
