#include "fault/injector.hh"

#include "sim/debug.hh"
#include "sim/logging.hh"

namespace vmp::fault
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::BusAbort: return "bus-abort";
      case FaultKind::Truncate: return "truncate";
      case FaultKind::CopierStall: return "copier-stall";
      case FaultKind::FifoDrop: return "fifo-drop";
      case FaultKind::InterruptDelay: return "interrupt-delay";
      case FaultKind::DmaBurst: return "dma-burst";
      case FaultKind::BoardCrash: return "board-crash";
      case FaultKind::MonitorWedge: return "monitor-wedge";
      case FaultKind::FifoBabble: return "fifo-babble";
      case FaultKind::ActionTableStuck: return "action-table-stuck";
      case FaultKind::SlowBoard: return "slow-board";
    }
    return "?";
}

bool
isPartialFaultKind(FaultKind kind)
{
    switch (kind) {
      case FaultKind::MonitorWedge:
      case FaultKind::FifoBabble:
      case FaultKind::ActionTableStuck:
      case FaultKind::SlowBoard:
        return true;
      default:
        return false;
    }
}

FaultSchedule &
FaultSchedule::append(FaultKind kind, double p, Tick delay_ns)
{
    if (p < 0.0 || p > 1.0)
        fatal("fault probability ", p, " outside [0, 1]");
    FaultSpec spec;
    spec.kind = kind;
    spec.probability = p;
    spec.delayNs = delay_ns;
    specs.push_back(spec);
    return *this;
}

FaultSchedule &
FaultSchedule::busAborts(double p)
{
    return append(FaultKind::BusAbort, p, 0);
}

FaultSchedule &
FaultSchedule::truncations(double p)
{
    return append(FaultKind::Truncate, p, 0);
}

FaultSchedule &
FaultSchedule::copierStalls(double p, Tick delay_ns)
{
    return append(FaultKind::CopierStall, p, delay_ns);
}

FaultSchedule &
FaultSchedule::fifoDrops(double p)
{
    return append(FaultKind::FifoDrop, p, 0);
}

FaultSchedule &
FaultSchedule::interruptDelays(double p, Tick delay_ns)
{
    return append(FaultKind::InterruptDelay, p, delay_ns);
}

FaultSchedule &
FaultSchedule::dmaBursts(double p)
{
    return append(FaultKind::DmaBurst, p, 0);
}

FaultSchedule &
FaultSchedule::window(Tick not_before, Tick not_after)
{
    if (specs.empty())
        fatal("FaultSchedule::window() with no spec to modify");
    if (not_before > not_after)
        fatal("fault window [", not_before, ", ", not_after,
              "] is empty");
    specs.back().notBefore = not_before;
    specs.back().notAfter = not_after;
    return *this;
}

FaultSchedule &
FaultSchedule::everyNth(std::uint64_t n)
{
    if (specs.empty())
        fatal("FaultSchedule::everyNth() with no spec to modify");
    specs.back().every = n;
    return *this;
}

FaultSchedule &
FaultSchedule::crashBoard(std::uint32_t board, Tick at)
{
    BoardCrashSpec crash;
    crash.board = board;
    crash.at = at;
    crashes.push_back(crash);
    return *this;
}

FaultSchedule &
FaultSchedule::crashInterBus(std::uint32_t cluster, Tick at)
{
    BoardCrashSpec crash;
    crash.board = cluster;
    crash.at = at;
    crash.interBus = true;
    crashes.push_back(crash);
    return *this;
}

FaultSchedule &
FaultSchedule::rejoinAt(Tick t)
{
    if (crashes.empty())
        fatal("FaultSchedule::rejoinAt() with no crash to modify");
    if (t <= crashes.back().at)
        fatal("rejoin tick ", t, " not after crash tick ",
              crashes.back().at);
    crashes.back().rejoinAt = t;
    return *this;
}

FaultSchedule &
FaultSchedule::appendPartial(PartialFaultSpec spec)
{
    partials.push_back(spec);
    return *this;
}

FaultSchedule &
FaultSchedule::wedgeMonitor(std::uint32_t board, Tick at)
{
    PartialFaultSpec spec;
    spec.kind = FaultKind::MonitorWedge;
    spec.board = board;
    spec.at = at;
    return appendPartial(spec);
}

FaultSchedule &
FaultSchedule::wedgeInterBus(std::uint32_t cluster, Tick at)
{
    PartialFaultSpec spec;
    spec.kind = FaultKind::MonitorWedge;
    spec.board = cluster;
    spec.at = at;
    spec.interBus = true;
    return appendPartial(spec);
}

FaultSchedule &
FaultSchedule::babbleFifo(std::uint32_t board, Tick at, double rate)
{
    if (rate <= 0.0 || rate > 1.0)
        fatal("babble rate ", rate, " outside (0, 1]");
    PartialFaultSpec spec;
    spec.kind = FaultKind::FifoBabble;
    spec.board = board;
    spec.at = at;
    spec.rate = rate;
    return appendPartial(spec);
}

FaultSchedule &
FaultSchedule::stickActionTable(std::uint32_t board, Tick at)
{
    PartialFaultSpec spec;
    spec.kind = FaultKind::ActionTableStuck;
    spec.board = board;
    spec.at = at;
    return appendPartial(spec);
}

FaultSchedule &
FaultSchedule::slowBoard(std::uint32_t board, Tick at,
                         std::uint64_t factor)
{
    if (factor < 2)
        fatal("slow-board factor ", factor, " does not slow anything");
    PartialFaultSpec spec;
    spec.kind = FaultKind::SlowBoard;
    spec.board = board;
    spec.at = at;
    spec.factor = factor;
    return appendPartial(spec);
}

FaultSchedule &
FaultSchedule::clearAt(Tick t)
{
    if (partials.empty())
        fatal("FaultSchedule::clearAt() with no partial failure to "
              "modify");
    if (t <= partials.back().at)
        fatal("clear tick ", t, " not after onset tick ",
              partials.back().at);
    partials.back().clearAt = t;
    return *this;
}

bool
FaultSchedule::arms(FaultKind kind) const
{
    if (kind == FaultKind::BoardCrash)
        return !crashes.empty();
    if (isPartialFaultKind(kind)) {
        for (const PartialFaultSpec &spec : partials) {
            if (spec.kind == kind)
                return true;
        }
        return false;
    }
    for (const FaultSpec &spec : specs) {
        if (spec.kind == kind &&
            (spec.probability > 0.0 || spec.every > 0)) {
            return true;
        }
    }
    return false;
}

bool
FaultSchedule::empty() const
{
    for (std::size_t k = 0; k < kFaultKinds; ++k) {
        if (arms(static_cast<FaultKind>(k)))
            return false;
    }
    return true;
}

FaultInjector::FaultInjector(EventQueue &events, FaultSchedule schedule)
    : events_(events), schedule_(std::move(schedule)),
      rng_(schedule_.seed)
{
    for (const FaultSpec &spec : schedule_.specs) {
        if (spec.probability <= 0.0 && spec.every == 0)
            continue; // can never fire; keep it out of the hot path
        const auto kind = static_cast<std::size_t>(spec.kind);
        if (kind >= kFaultKinds)
            fatal("out-of-range FaultKind ", kind, " in schedule");
        arms_[kind].push_back(Arm{spec.probability, spec.every,
                                  spec.notBefore, spec.notAfter,
                                  spec.delayNs});
    }
    for (const PartialFaultSpec &spec : schedule_.partials) {
        if (!isPartialFaultKind(spec.kind))
            fatal("non-partial FaultKind ",
                  static_cast<std::size_t>(spec.kind),
                  " in partial-failure schedule");
        if (spec.kind == FaultKind::FifoBabble)
            babbles_.push_back(spec);
    }
}

bool
FaultInjector::armed(FaultKind kind) const
{
    return !arms_[static_cast<std::size_t>(kind)].empty();
}

std::uint64_t
FaultInjector::opportunities(FaultKind kind) const
{
    return opportunities_[static_cast<std::size_t>(kind)];
}

const Counter &
FaultInjector::injected(FaultKind kind) const
{
    return injected_[static_cast<std::size_t>(kind)];
}

std::uint64_t
FaultInjector::totalInjected() const
{
    std::uint64_t total = 0;
    for (std::size_t k = 0; k < kFaultKinds; ++k)
        total += injected_[k].value();
    return total;
}

bool
FaultInjector::fire(FaultKind kind, Tick *delay_ns)
{
    const auto index = static_cast<std::size_t>(kind);
    const std::uint64_t count = ++opportunities_[index];
    const Tick now = events_.now();
    for (const Arm &arm : arms_[index]) {
        if (now < arm.notBefore || now > arm.notAfter)
            continue;
        const bool counted = arm.every > 0 && count % arm.every == 0;
        // Draw only for probabilistic arms inside their window: an
        // unarmed kind consumes no randomness at all.
        const bool drawn =
            arm.probability > 0.0 && rng_.chance(arm.probability);
        if (counted || drawn) {
            ++injected_[index];
            if (delay_ns != nullptr)
                *delay_ns = arm.delayNs;
            VMP_DTRACE(debug::Fault, now, "fire ", faultKindName(kind),
                       " opportunity=", count);
            return true;
        }
    }
    return false;
}

void
FaultInjector::noteBoardCrash()
{
    const auto index = static_cast<std::size_t>(FaultKind::BoardCrash);
    ++opportunities_[index];
    ++injected_[index];
    VMP_DTRACE(debug::Fault, events_.now(), "fire board-crash");
}

void
FaultInjector::notePartialFault(FaultKind kind)
{
    if (!isPartialFaultKind(kind))
        fatal("notePartialFault() with non-partial kind ",
              static_cast<std::size_t>(kind));
    const auto index = static_cast<std::size_t>(kind);
    ++opportunities_[index];
    ++injected_[index];
    VMP_DTRACE(debug::Fault, events_.now(), "arm ",
               faultKindName(kind));
}

std::uint32_t
FaultInjector::injectFifoBabble(std::uint32_t owner)
{
    // Fast path for schedules with no babble specs: no counter churn,
    // no randomness — bit-identical to a run without the hook.
    if (babbles_.empty())
        return 0;
    const auto index = static_cast<std::size_t>(FaultKind::FifoBabble);
    const Tick now = events_.now();
    std::uint32_t words = 0;
    for (const PartialFaultSpec &spec : babbles_) {
        if (spec.board != owner)
            continue;
        ++opportunities_[index];
        if (now < spec.at ||
            (spec.clearAt != 0 && now >= spec.clearAt))
            continue;
        if (rng_.chance(spec.rate)) {
            ++injected_[index];
            ++words;
            VMP_DTRACE(debug::Fault, now, "babble word on board ",
                       owner);
        }
    }
    return words;
}

bool
FaultInjector::injectBusAbort(const mem::BusTransaction &tx)
{
    (void)tx;
    // Each consistency transaction is also one DMA-burst opportunity;
    // evaluate it regardless of whether the abort fires.
    maybeDmaBurst();
    return fire(FaultKind::BusAbort);
}

bool
FaultInjector::injectTruncate(const mem::BusTransaction &tx)
{
    (void)tx;
    return fire(FaultKind::Truncate);
}

Tick
FaultInjector::injectCopierStall(const mem::BusTransaction &tx)
{
    (void)tx;
    Tick delay = 0;
    return fire(FaultKind::CopierStall, &delay) ? delay : 0;
}

bool
FaultInjector::injectFifoDrop()
{
    return fire(FaultKind::FifoDrop);
}

Tick
FaultInjector::injectInterruptDelay()
{
    Tick delay = 0;
    return fire(FaultKind::InterruptDelay, &delay) ? delay : 0;
}

void
FaultInjector::attachDmaTarget(mem::VmeBus &bus, std::uint32_t master_id,
                               Addr scratch_base,
                               std::uint32_t page_bytes,
                               std::uint32_t pages)
{
    if (dma_ != nullptr)
        fatal("fault injector already has a DMA target");
    if (page_bytes == 0 || pages == 0)
        fatal("DMA scratch region must be non-empty");
    dma_ = std::make_unique<mem::DmaDevice>(master_id, bus);
    dmaBase_ = scratch_base;
    dmaPageBytes_ = page_bytes;
    dmaPages_ = pages;
}

void
FaultInjector::maybeDmaBurst()
{
    if (dma_ == nullptr || !armed(FaultKind::DmaBurst))
        return;
    // One outstanding burst at a time; opportunities while a burst is
    // in flight are still counted (fire() increments the counter) but
    // a firing is dropped rather than queued unboundedly.
    if (!fire(FaultKind::DmaBurst))
        return;
    if (dmaBusy_)
        return;
    dmaBusy_ = true;
    const std::uint64_t seq = dmaSeq_++;
    const Addr paddr =
        dmaBase_ + (seq % dmaPages_) * static_cast<Addr>(dmaPageBytes_);
    // Deterministic fill pattern — no RNG churn for payload bytes.
    std::vector<std::uint8_t> payload(dmaPageBytes_);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(seq * 131 + i);
    VMP_DTRACE(debug::Fault, events_.now(), "DMA burst #", seq,
               " -> pa=0x", paddr);
    dma_->write(paddr, std::move(payload),
                [this] { dmaBusy_ = false; });
}

void
FaultInjector::registerStats(StatGroup &group) const
{
    group.addCounter("bus_aborts", "spurious bus aborts injected",
                     injected_[0]);
    group.addCounter("truncations", "block transfers truncated",
                     injected_[1]);
    group.addCounter("copier_stalls", "block-copier stalls injected",
                     injected_[2]);
    group.addCounter("fifo_drops", "interrupt words force-dropped",
                     injected_[3]);
    group.addCounter("interrupt_delays", "interrupt deliveries delayed",
                     injected_[4]);
    group.addCounter("dma_bursts", "unsolicited DMA bursts fired",
                     injected_[5]);
    group.addCounter("board_crashes", "board failstops executed",
                     injected_[6]);
    group.addCounter("monitor_wedges", "service-loop wedges armed",
                     injected_[7]);
    group.addCounter("babble_words", "garbage FIFO words fabricated",
                     injected_[8]);
    group.addCounter("table_stucks", "action tables stuck",
                     injected_[9]);
    group.addCounter("slow_boards", "board slowdowns armed",
                     injected_[10]);
}

} // namespace vmp::fault
