/**
 * @file
 * Software-cost model of the cache-management code that runs out of
 * local memory. The paper evaluates the miss handler by summing 68020
 * instruction execution times ("about 15 usecs" of software per miss,
 * Section 5.1); these parameters reproduce Table 1 when combined with
 * the 300/100 ns block-transfer timing:
 *
 *   elapsed(clean victim) = trapEntry + overlap + post + readXfer
 *                         = 13.5 us + readXfer
 *   elapsed(dirty victim) = trapEntry + max(overlap, wbXfer) + post
 *                           + readXfer
 *
 * i.e. up to `overlapNs` of bookkeeping is performed concurrently with
 * the victim write-back by the block copier, and the remainder of the
 * handler is serial.
 */

#ifndef VMP_PROTO_TIMING_HH
#define VMP_PROTO_TIMING_HH

#include "sim/types.hh"

namespace vmp::proto
{

/** Instruction-time budget of the software cache-management routines. */
struct SoftwareTiming
{
    /** Exception stacking and dispatch into the miss handler. */
    Tick trapEntryNs = 2000;
    /**
     * Bookkeeping that can overlap the victim write-back transfer
     * (virtual-to-physical translation, cache-table updates).
     */
    Tick overlapNs = 3400;
    /** Serial remainder of the handler, including return-from-trap. */
    Tick postNs = 8100;
    /** Software cost of an ownership (assert-ownership) miss. */
    Tick ownershipNs = 8000;
    /** Software cost of servicing one consistency interrupt word. */
    Tick serviceNs = 3000;
    /** Extra re-trap cost when retrying after an aborted transaction. */
    Tick retryNs = 1000;
    /**
     * Upper bound of the random jitter added to each retry. Real
     * instruction streams desynchronize contending processors; a
     * deterministic simulator needs explicit jitter or symmetric
     * contenders can livelock in lockstep.
     */
    Tick retryJitterNs = 12000;
    /**
     * Dead-owner deadline: when one logical operation (an access miss,
     * a write-back, an assert-ownership, ...) has been retrying for
     * longer than this, the controller abandons the wait and raises a
     * structured DeadOwnerError instead of spinning forever against a
     * board that will never answer. 0 disables the timed wait. The
     * default is orders of magnitude beyond any retry chain a live
     * system produces (tens of microseconds), so the timed wait does
     * not perturb fault-free runs.
     */
    Tick deadOwnerTimeoutNs = 50'000'000;

    /** Total serial software time on a miss (no write-back overlap). */
    Tick serialNs() const { return trapEntryNs + overlapNs + postNs; }
};

} // namespace vmp::proto

#endif // VMP_PROTO_TIMING_HH
