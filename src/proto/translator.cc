#include "proto/translator.hh"

#include "sim/logging.hh"

namespace vmp::proto
{

DemandTranslator::DemandTranslator(std::uint64_t mem_bytes,
                                   std::uint32_t page_bytes,
                                   Addr kernel_base, Addr kernel_limit,
                                   std::uint64_t reserved_frames)
    : pageBytes_(page_bytes), kernelBase_(kernel_base),
      kernelLimit_(kernel_limit)
{
    if (!isPowerOf2(page_bytes))
        fatal("demand translator: page size must be a power of two");
    if (mem_bytes % page_bytes != 0)
        fatal("demand translator: memory not a multiple of page size");
    frames_ = mem_bytes / page_bytes;
    if (reserved_frames >= frames_)
        fatal("demand translator: reservation exceeds memory");
    nextFrame_ = reserved_frames;
}

TranslateResult
DemandTranslator::translateNow(const TranslateRequest &req)
{
    const bool kernel =
        req.vaddr >= kernelBase_ && req.vaddr < kernelLimit_;
    // Kernel pages are shared across address spaces; user pages are
    // private per ASID.
    const Asid key_asid = kernel ? 0 : req.asid;
    const std::uint64_t vpn = req.vaddr / pageBytes_;

    auto [it, inserted] = map_.try_emplace({key_asid, vpn}, nextFrame_);
    if (inserted) {
        if (nextFrame_ >= frames_)
            fatal("demand translator: out of physical frames (",
                  frames_, ")");
        ++nextFrame_;
    }

    TranslateResult res;
    res.ok = true;
    res.paddr = it->second * pageBytes_ + req.vaddr % pageBytes_;
    res.prot = static_cast<cache::SlotFlags>(
        cache::FlagSupWritable | cache::FlagUserReadable |
        cache::FlagUserWritable);
    res.privateHint = userPrivateHint_ && !kernel;
    return res;
}

void
DemandTranslator::translate(const TranslateRequest &req,
                            CacheController &, TranslateDone done)
{
    done(translateNow(req));
}

void
FixedTranslator::map(Asid asid, Addr vaddr, Addr paddr,
                     cache::SlotFlags prot, bool private_hint)
{
    map_[{asid, vaddr / pageBytes_}] =
        Entry{alignDown(paddr, pageBytes_), prot, private_hint};
}

void
FixedTranslator::unmap(Asid asid, Addr vaddr)
{
    map_.erase({asid, vaddr / pageBytes_});
}

void
FixedTranslator::translate(const TranslateRequest &req,
                           CacheController &, TranslateDone done)
{
    TranslateResult res;
    const auto it = map_.find({req.asid, req.vaddr / pageBytes_});
    if (it == map_.end()) {
        done(res); // ok == false: page fault
        return;
    }
    res.ok = true;
    res.paddr = it->second.frameBase + req.vaddr % pageBytes_;
    res.prot = it->second.prot;
    res.privateHint = it->second.privateHint;
    done(res);
}

} // namespace vmp::proto
