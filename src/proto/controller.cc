#include "proto/controller.hh"

#include <memory>
#include <sstream>

#include "sim/debug.hh"
#include "sim/logging.hh"

namespace vmp::proto
{

namespace
{

/** Sentinel owningSlot for ownership acquired without a cache copy. */
constexpr cache::SlotIndex noSlot = 0xffffffff;

/** Does a protection flag set permit this access? (Mirrors the cache.) */
bool
protPermits(cache::SlotFlags prot, bool write, bool supervisor)
{
    using namespace vmp::cache;
    if (supervisor)
        return !write || (prot & FlagSupWritable);
    return write ? (prot & FlagUserWritable) != 0
                 : (prot & FlagUserReadable) != 0;
}

} // namespace

std::string
WatchdogReport::toString() const
{
    std::ostringstream os;
    os << "cpu" << cpu << " " << operation << " starved: " << attempts
       << " retries since tick " << started << " (now " << now << ")";
    if (deadOwnerSuspected)
        os << " [dead owner suspected]";
    if (operation == "access") {
        os << " va=0x" << std::hex << vaddr << std::dec << " asid="
           << unsigned{asid};
    } else {
        os << " pa=0x" << std::hex << paddr << std::dec;
    }
    return os.str();
}

CacheController::CacheController(CpuId cpu, EventQueue &events,
                                 cache::Cache &cache,
                                 monitor::BusMonitor &busMonitor,
                                 mem::VmeBus &bus,
                                 Translator &translator,
                                 const SoftwareTiming &timing)
    : cpuId_(cpu), events_(events), cache_(cache), monitor_(busMonitor),
      bus_(bus), copier_(cpu, bus), translator_(translator),
      timing_(timing), rng_(0x9E3779B9u * (cpu + 1) + 0x1234)
{
}

Tick
CacheController::retryDelay()
{
    Tick delay = timing_.retryNs;
    if (timing_.retryJitterNs > 0)
        delay += rng_.below(timing_.retryJitterNs + 1);
    return delay;
}

void
CacheController::setFaultHandler(FaultHandler handler)
{
    faultHandler_ = std::move(handler);
}

void
CacheController::setNotifyHandler(NotifyHandler handler)
{
    notifyHandler_ = std::move(handler);
}

void
CacheController::setWatchdog(std::uint64_t max_retries,
                             WatchdogHandler handler)
{
    watchdogCap_ = max_retries;
    watchdogHandler_ = std::move(handler);
}

void
CacheController::setFaultHooks(mem::FaultHooks *hooks)
{
    copier_.setFaultHooks(hooks);
}

void
CacheController::setTracer(obs::EventTracer *tracer,
                           std::uint16_t track)
{
    tracer_ = tracer;
    traceTrack_ = track;
    missOpen_ = false;
    copier_.setTracer(tracer, track);
}

// --------------------------------------------------------------------
// Tracing (pure observation; every helper is a no-op without a tracer)
// --------------------------------------------------------------------

void
CacheController::traceMissBegin(Tick started, std::uint8_t kind)
{
    if (tracer_ == nullptr)
        return;
    missOpen_ = true;
    missDirty_ = false;
    missKindAux_ = kind;
    missStartedAt_ = started;
    phase_ = obs::MissPhase::Trap;
    phaseStartedAt_ = started;
}

void
CacheController::traceClosePhase()
{
    const Tick now = events_.now();
    if (now == phaseStartedAt_)
        return; // empty phase: contributes nothing
    obs::TraceEvent event;
    event.kind = obs::EventKind::MissPhase;
    event.at = phaseStartedAt_;
    event.arg0 = now - phaseStartedAt_;
    event.master = cpuId_;
    event.track = traceTrack_;
    event.aux = static_cast<std::uint8_t>(phase_);
    tracer_->record(event);
}

void
CacheController::tracePhase(obs::MissPhase phase)
{
    if (tracer_ == nullptr || !missOpen_ || phase_ == phase)
        return;
    traceClosePhase();
    phase_ = phase;
    phaseStartedAt_ = events_.now();
}

void
CacheController::traceMissEnd()
{
    if (tracer_ == nullptr || !missOpen_)
        return;
    traceClosePhase();
    obs::TraceEvent event;
    event.kind = obs::EventKind::Miss;
    event.at = missStartedAt_;
    event.arg0 = events_.now() - missStartedAt_;
    event.arg1 = liveRetries_;
    event.master = cpuId_;
    event.track = traceTrack_;
    event.aux = static_cast<std::uint8_t>((missDirty_ ? 1u : 0u) |
                                          (missKindAux_ << 1));
    tracer_->record(event);
    missOpen_ = false;
}

void
CacheController::watchdogCheck(const char *operation, Asid asid,
                               Addr vaddr, Addr paddr,
                               std::uint64_t attempts, Tick started)
{
    // Trip exactly once per starving operation, the first time the cap
    // is exceeded; the operation keeps retrying afterwards.
    if (watchdogCap_ == 0 || attempts != watchdogCap_ + 1)
        return;
    // Distinguish a genuine livelock (live contenders starving each
    // other) from a dead owner (the recovery oracle knows the frame's
    // Protect holder failstopped): only the former is a watchdog trip.
    // The access path passes paddr 0 (frame unknown pre-translation)
    // and is always treated as a livelock candidate.
    const bool owner_dead = deadOracle_ != nullptr && paddr != 0 &&
        deadOracle_->isFrameOwnerDead(paddr);
    if (owner_dead)
        ++deadOwnerSuspected_;
    else
        ++watchdogTrips_;
    WatchdogReport report;
    report.cpu = cpuId_;
    report.operation = operation;
    report.asid = asid;
    report.vaddr = vaddr;
    report.paddr = paddr;
    report.attempts = attempts;
    report.started = started;
    report.now = events_.now();
    report.deadOwnerSuspected = owner_dead;
    lastReport_ = report;
    if (watchdogHandler_) {
        watchdogHandler_(*lastReport_);
    } else {
        warn("livelock watchdog: ", lastReport_->toString());
    }
}

bool
CacheController::deadOwnerCheck(const char *operation, Addr vaddr,
                                Addr paddr, std::uint64_t attempts,
                                Tick started)
{
    if (timing_.deadOwnerTimeoutNs == 0 ||
        events_.now() - started < timing_.deadOwnerTimeoutNs)
        return false;
    ++deadOwnerErrors_;
    DeadOwnerError error;
    error.cpu = cpuId_;
    error.operation = operation;
    error.paddr = paddr;
    error.vaddr = vaddr;
    error.attempts = attempts;
    error.started = started;
    error.now = events_.now();
    error.ownerKnownDead = deadOracle_ != nullptr && paddr != 0 &&
        deadOracle_->isFrameOwnerDead(paddr);
    lastDeadOwnerError_ = error;
    VMP_DTRACE(debug::Recover, events_.now(), "cpu", cpuId_,
               " abandoning timed wait: ", error.toString());
    if (deadOwnerHandler_) {
        deadOwnerHandler_(error);
    } else {
        warn("dead-owner timeout: ", error.toString());
    }
    return true;
}

void
CacheController::failstop()
{
    // The board's management software and cache contents are gone; the
    // bus-side monitor hardware (action table, FIFO) keeps running and
    // is handled by recovery / rejoin.
    dead_ = true;
    const auto total =
        static_cast<cache::SlotIndex>(cache_.config().totalSlots());
    for (cache::SlotIndex s = 0; s < total; ++s)
        cache_.invalidate(s);
    frames_.clear();
    slotFrame_.clear();
    shadow_.clear();
    liveRetries_ = 0;
    VMP_DTRACE(debug::Recover, events_.now(), "cpu", cpuId_,
               " failstop: local state wiped");
}

void
CacheController::rejoin()
{
    dead_ = false;
    liveRetries_ = 0;
    // Cold software restart also clears partial-failure seam state:
    // the restarted service loop is neither wedged nor slow.
    wedged_ = false;
    slowFactor_ = 1;
    VMP_DTRACE(debug::Recover, events_.now(), "cpu", cpuId_,
               " rejoin: cold restart");
}

void
CacheController::setServiceSlowdown(std::uint64_t factor)
{
    if (factor == 0)
        panic("cpu", cpuId_, ": service slowdown factor must be >= 1");
    slowFactor_ = factor;
}

void
CacheController::finishMiss(Tick started, const AccessDone &done)
{
    missStall_ += events_.now() - started;
    retryHistogram_.sample(static_cast<double>(liveRetries_));
    traceMissEnd();
    done(AccessOutcome::MissCompleted);
}

std::uint32_t
CacheController::pageBytes() const
{
    return cache_.config().pageBytes;
}

std::uint64_t
CacheController::frameOf(Addr paddr) const
{
    return paddr / pageBytes();
}

Addr
CacheController::frameBase(Addr paddr) const
{
    return alignDown(paddr, pageBytes());
}

void
CacheController::afterSoftware(Tick delay, Done fn)
{
    events_.scheduleIn(delay, std::move(fn), "sw");
}

void
CacheController::releaseLoop(
    const std::shared_ptr<std::function<void()>> &loop)
{
    // Looping operations (retry-until-success, FIFO drains) are closures
    // that capture a shared_ptr to themselves so they stay alive across
    // asynchronous steps. Once the loop terminates, that self-reference
    // must be broken or the closure leaks; clearing is deferred one
    // event so the currently executing target is never destroyed
    // mid-run.
    events_.scheduleIn(0, [loop] { *loop = nullptr; }, "loop-gc");
}

// --------------------------------------------------------------------
// Reference entry point
// --------------------------------------------------------------------

void
CacheController::access(Asid asid, Addr vaddr, bool write,
                        bool supervisor, AccessDone done)
{
    const auto res = cache_.access(asid, vaddr, write, supervisor);
    if (res.hit) {
        done(AccessOutcome::Hit);
        return;
    }

    ++missCount_;
    liveRetries_ = 0;
    VMP_DTRACE(debug::Proto, events_.now(), "cpu", cpuId_, " miss ",
               (write ? "W" : "R"), " va=0x", std::hex, vaddr,
               std::dec, " asid=", unsigned{asid});
    const TranslateRequest req{asid, vaddr, write, supervisor};
    const Tick started = events_.now();
    switch (res.miss) {
      case cache::MissKind::NoMatch:
        traceMissBegin(started, 0);
        handleFullMiss(req, started, std::move(done));
        break;
      case cache::MissKind::WriteShared:
        ++ownershipCount_;
        traceMissBegin(started, 1);
        handleOwnershipMiss(req, *res.slot, started, std::move(done));
        break;
      case cache::MissKind::Protection:
        traceMissBegin(started, 2);
        handleProtectionMiss(req, *res.slot, started, std::move(done));
        break;
      case cache::MissKind::None:
        panic("miss dispatch with MissKind::None");
    }
}

void
CacheController::retryAccess(const TranslateRequest &req, Tick started,
                             AccessDone done)
{
    // The processor re-traps on the retried instruction; pending
    // monitor interrupts are taken first, which is what resolves the
    // self-competition (alias) aborts.
    ++retryCount_;
    ++liveRetries_;
    tracePhase(obs::MissPhase::ConsistencyWait);
    watchdogCheck("access", req.asid, req.vaddr, 0, liveRetries_,
                  started);
    if (deadOwnerCheck("access", req.vaddr, 0, liveRetries_, started)) {
        // Timed wait expired: the board that must release the page is
        // not answering. Abandon the access — the reference completes
        // *without* a cache fill (the caller sees MissCompleted and a
        // DeadOwnerError); readWord/writeWord must not be used against
        // potentially-stranded frames for this reason.
        finishMiss(started, done);
        return;
    }
    serviceInterrupts([this, req, started, done = std::move(done)] {
        afterSoftware(retryDelay(), [this, req, started, done] {
            const auto res = cache_.access(req.asid, req.vaddr,
                                           req.write, req.supervisor);
            if (res.hit) {
                finishMiss(started, done);
                return;
            }
            switch (res.miss) {
              case cache::MissKind::NoMatch:
                handleFullMiss(req, started, done);
                break;
              case cache::MissKind::WriteShared:
                handleOwnershipMiss(req, *res.slot, started, done);
                break;
              case cache::MissKind::Protection:
                handleProtectionMiss(req, *res.slot, started, done);
                break;
              case cache::MissKind::None:
                panic("retry dispatch with MissKind::None");
            }
        });
    });
}

// --------------------------------------------------------------------
// Full miss: trap, translate, retire victim, block-copy fill
// --------------------------------------------------------------------

void
CacheController::handleFullMiss(TranslateRequest req, Tick started,
                                AccessDone done)
{
    tracePhase(obs::MissPhase::Trap);
    afterSoftware(timing_.trapEntryNs, [this, req, started,
                                        done = std::move(done)] {
        translator_.translate(
            req, *this,
            [this, req, started, done](const TranslateResult &result) {
                if (!result.ok) {
                    if (!faultHandler_)
                        fatal("page fault at 0x", std::hex, req.vaddr,
                              std::dec, " (asid ",
                              unsigned{req.asid},
                              ") with no fault handler installed");
                    faultHandler_(req, [this, req, started, done] {
                        retryAccess(req, started, done);
                    });
                    return;
                }
                if (!protPermits(result.prot, req.write,
                                 req.supervisor)) {
                    if (!faultHandler_)
                        fatal("protection violation at 0x", std::hex,
                              req.vaddr, std::dec);
                    faultHandler_(req, [this, req, started, done] {
                        retryAccess(req, started, done);
                    });
                    return;
                }
                missWithTranslation(req, result, started, done);
            });
    });
}

void
CacheController::missWithTranslation(const TranslateRequest &req,
                                     const TranslateResult &result,
                                     Tick started, AccessDone done)
{
    const cache::SlotIndex victim = cache_.victimFor(req.vaddr);
    tracePhase(obs::MissPhase::VictimWriteback);
    retireVictim(victim, [this, req, result, victim, started,
                          done = std::move(done)] {
        tracePhase(obs::MissPhase::TableLookup);
        afterSoftware(timing_.postNs,
                      [this, req, result, victim, started, done] {
                          issueFill(req, result, victim, started, done);
                      });
    });
}

void
CacheController::forgetSlot(cache::SlotIndex slot)
{
    const auto it = slotFrame_.find(slot);
    if (it == slotFrame_.end())
        return;
    const std::uint64_t frame = it->second;
    slotFrame_.erase(it);
    // Drop the frame bookkeeping once no slot caches it any more.
    bool still_held = false;
    for (const auto &[s, f] : slotFrame_)
        still_held = still_held || f == frame;
    if (!still_held)
        frames_.erase(frame);
}

void
CacheController::retireVictim(cache::SlotIndex victim, Done done)
{
    cache::Slot &slot = cache_.slot(victim);
    if (!slot.valid()) {
        afterSoftware(timing_.overlapNs, std::move(done));
        return;
    }

    const auto frame_it = slotFrame_.find(victim);
    if (frame_it == slotFrame_.end())
        panic("cpu", cpuId_, ": valid victim slot ", victim,
              " has no frame bookkeeping");
    const std::uint64_t frame = frame_it->second;
    const Addr base = frame * pageBytes();

    if (slot.modified()) {
        // Dirty implies privately owned: write the page back,
        // releasing ownership (entry -> 00), overlapped with up to
        // overlapNs of bookkeeping.
        missDirty_ = true; // observed by the tracer only
        auto buffer = std::make_shared<std::vector<std::uint8_t>>(
            slot.data);
        forgetSlot(victim);
        cache_.invalidate(victim);
        ++writeBackCount_;

        auto remaining = std::make_shared<int>(2);
        auto join = [remaining, done = std::move(done)] {
            if (--*remaining == 0)
                done();
        };

        // Write-back retries until it succeeds; an abort can only come
        // from another monitor's stale entry and resolves once that
        // processor services its interrupt.
        auto tries = std::make_shared<std::uint64_t>(0);
        const Tick loop_started = events_.now();
        auto attempt = std::make_shared<std::function<void()>>();
        *attempt = [this, base, buffer, frame, join, attempt, tries,
                    loop_started] {
            copier_.writeBackPage(
                base, buffer->data(), pageBytes(),
                mem::ActionEntry::Ignore,
                [this, base, frame, join, attempt, tries,
                 loop_started](const mem::TxResult &res) {
                    if (res.aborted) {
                        ++violationCount_;
                        watchdogCheck("write-back", 0, 0, base,
                                      ++*tries, loop_started);
                        if (deadOwnerCheck("write-back", 0, base,
                                           *tries, loop_started)) {
                            // The aborting board is dead: the dirty
                            // page cannot be written back (its data is
                            // lost) but our own Protect entry must not
                            // stay stale. writeActionTable is never
                            // aborted, so this always completes.
                            releaseLoop(attempt);
                            writeActionTable(
                                base, mem::ActionEntry::Ignore, join);
                            return;
                        }
                        afterSoftware(retryDelay(), *attempt);
                        return;
                    }
                    shadow_[frame] = mem::ActionEntry::Ignore;
                    releaseLoop(attempt);
                    join();
                });
        };
        (*attempt)();
        afterSoftware(timing_.overlapNs, join);
        return;
    }

    // Clean victim.
    const auto info_it = frames_.find(frame);
    const bool was_private = info_it != frames_.end() &&
        info_it->second.state == FrameState::Private;
    forgetSlot(victim);
    cache_.invalidate(victim);

    if (was_private && frames_.find(frame) == frames_.end()) {
        // A privately held (but clean) page is being dropped: the
        // Protect entry must not go stale or it would abort every
        // other master's access to the frame forever. Release it with
        // an explicit action-table write, overlapped with bookkeeping.
        auto remaining = std::make_shared<int>(2);
        auto join = [remaining, done = std::move(done)] {
            if (--*remaining == 0)
                done();
        };
        writeActionTable(base, mem::ActionEntry::Ignore, join);
        afterSoftware(timing_.overlapNs, join);
    } else {
        // Shared (or still-aliased) victim: leave the 01 entry stale;
        // a later spurious interrupt cleans it up lazily. This keeps
        // the common replacement path free of extra bus transactions.
        afterSoftware(timing_.overlapNs, std::move(done));
    }
}

void
CacheController::issueFill(const TranslateRequest &req,
                           const TranslateResult &result,
                           cache::SlotIndex victim, Tick started,
                           AccessDone done)
{
    const Addr base = frameBase(result.paddr);
    const std::uint64_t frame = frameOf(result.paddr);
    tracePhase(obs::MissPhase::BlockCopy);
    auto staging =
        std::make_shared<std::vector<std::uint8_t>>(pageBytes());

    // Non-shared memory (Section 5.4 hint) is fetched with
    // read-private even on a read miss, pre-empting the later
    // assert-ownership upgrade on the first write.
    const bool exclusive = req.write || result.privateHint;
    if (!req.write && result.privateHint)
        ++hintedPrivateFills_;
    copier_.readPage(
        base, staging->data(), pageBytes(), exclusive,
        [this, req, result, victim, started, done = std::move(done),
         staging, base, frame, exclusive](const mem::TxResult &res) {
            if (res.aborted) {
                // The instruction re-traps and retries (Section 2):
                // cache flags were left unchanged.
                retryAccess(req, started, done);
                return;
            }
            cache::SlotFlags flags = result.prot;
            if (exclusive)
                flags = static_cast<cache::SlotFlags>(
                    flags | cache::FlagExclusive);
            cache_.fill(victim, cache_.tagFor(req.asid, req.vaddr),
                        flags);
            if (cache_.config().storeData)
                cache_.writeBytes(victim, 0, staging->data(),
                                  pageBytes());
            slotFrame_[victim] = frame;
            FrameInfo &info = frames_[frame];
            if (exclusive) {
                info.state = FrameState::Private;
                info.owningSlot = victim;
            } else {
                // Shared fill. (A private state here is impossible:
                // our own monitor would have aborted the read-shared.)
                info.state = FrameState::Shared;
                info.owningSlot = 0xffffffff;
            }
            shadow_[frame] = exclusive ? mem::ActionEntry::Protect
                                       : mem::ActionEntry::Shared;
            finishMiss(started, done);
        });
}

// --------------------------------------------------------------------
// Ownership (write-to-shared) and protection misses
// --------------------------------------------------------------------

void
CacheController::handleOwnershipMiss(TranslateRequest req,
                                     cache::SlotIndex slot,
                                     Tick started, AccessDone done)
{
    const auto frame_it = slotFrame_.find(slot);
    if (frame_it == slotFrame_.end())
        panic("cpu", cpuId_, ": ownership miss on untracked slot");
    const std::uint64_t frame = frame_it->second;
    const Addr base = frame * pageBytes();

    // The handler consults the page tables before granting write
    // access: this re-validates protection against a concurrent
    // mapping change and lets the VM system maintain the PTE modified
    // bit (Section 3.4).
    tracePhase(obs::MissPhase::Trap);
    afterSoftware(timing_.trapEntryNs, [this, req, slot, frame, base,
                                        started,
                                        done = std::move(done)] {
        translator_.translate(
            req, *this,
            [this, req, slot, frame, base, started,
             done](const TranslateResult &result) {
                if (!result.ok ||
                    !protPermits(result.prot, req.write,
                                 req.supervisor)) {
                    if (!faultHandler_)
                        fatal("write fault at 0x", std::hex, req.vaddr,
                              std::dec, " during ownership upgrade");
                    faultHandler_(req, [this, req, started, done] {
                        retryAccess(req, started, done);
                    });
                    return;
                }
                if (frameOf(result.paddr) != frame) {
                    // The mapping changed under us: drop the stale
                    // slot and redo the access from scratch.
                    cache_.invalidate(slot);
                    forgetSlot(slot);
                    retryAccess(req, started, done);
                    return;
                }
                tracePhase(obs::MissPhase::TableLookup);
                afterSoftware(timing_.ownershipNs, [this, req, slot,
                                                    frame, base,
                                                    started, done] {
                    mem::BusTransaction tx;
                    tx.type = mem::TxType::AssertOwnership;
                    tx.requester = cpuId_;
                    tx.paddr = base;
                    tx.newEntry = mem::ActionEntry::Protect;
                    tx.updatesTable = true;
                    tracePhase(obs::MissPhase::ConsistencyWait);
                    bus_.request(tx, [this, req, slot, frame, started,
                                      done](const mem::TxResult &res) {
                        if (res.aborted) {
                            retryAccess(req, started, done);
                            return;
                        }
                        // We now own the frame exclusively. Other
                        // caches (and our own aliases, via the
                        // self-echo interrupt word) discard their
                        // copies in parallel.
                        cache::Slot &s = cache_.slot(slot);
                        if (s.valid()) {
                            cache_.setFlags(
                                slot, static_cast<cache::SlotFlags>(
                                          s.flags |
                                          cache::FlagExclusive));
                        }
                        FrameInfo &info = frames_[frame];
                        info.state = FrameState::Private;
                        info.owningSlot = slot;
                        shadow_[frame] = mem::ActionEntry::Protect;
                        finishMiss(started, done);
                    });
                });
            });
    });
}

void
CacheController::handleProtectionMiss(TranslateRequest req,
                                      cache::SlotIndex slot,
                                      Tick started, AccessDone done)
{
    tracePhase(obs::MissPhase::Trap);
    afterSoftware(timing_.trapEntryNs, [this, req, slot, started,
                                        done = std::move(done)] {
        translator_.translate(
            req, *this,
            [this, req, slot, started,
             done](const TranslateResult &result) {
                if (!result.ok ||
                    !protPermits(result.prot, req.write,
                                 req.supervisor)) {
                    if (!faultHandler_)
                        fatal("protection fault at 0x", std::hex,
                              req.vaddr, std::dec, " (asid ",
                              unsigned{req.asid}, ")");
                    faultHandler_(req, [this, req, started, done] {
                        retryAccess(req, started, done);
                    });
                    return;
                }
                // The page tables grant the access: refresh the slot's
                // protection flags and retry (the retry resolves any
                // remaining ownership requirement).
                cache::Slot &s = cache_.slot(slot);
                if (s.valid()) {
                    const cache::SlotFlags keep =
                        static_cast<cache::SlotFlags>(
                            s.flags & (cache::FlagModified |
                                       cache::FlagExclusive));
                    cache_.setFlags(
                        slot, static_cast<cache::SlotFlags>(
                                  cache::FlagValid | result.prot |
                                  keep));
                }
                retryAccess(req, started, done);
            });
    });
}

// --------------------------------------------------------------------
// Data plane
// --------------------------------------------------------------------

void
CacheController::readWord(Asid asid, Addr vaddr, bool supervisor,
                          std::function<void(std::uint32_t)> done)
{
    access(asid, vaddr, false, supervisor,
           [this, asid, vaddr, supervisor,
            done = std::move(done)](AccessOutcome) {
               const auto res =
                   cache_.probe(asid, vaddr, false, supervisor);
               if (!res.hit)
                   panic("cpu", cpuId_,
                         ": readWord probe missed after access");
               std::uint32_t value = 0;
               cache_.readBytes(*res.slot, cache_.offsetOf(vaddr),
                                &value, sizeof(value));
               done(value);
           });
}

void
CacheController::writeWord(Asid asid, Addr vaddr, std::uint32_t value,
                           bool supervisor, Done done)
{
    access(asid, vaddr, true, supervisor,
           [this, asid, vaddr, value, supervisor,
            done = std::move(done)](AccessOutcome) {
               const auto res =
                   cache_.probe(asid, vaddr, true, supervisor);
               if (!res.hit)
                   panic("cpu", cpuId_,
                         ": writeWord probe missed after access");
               cache::Slot &s = cache_.slot(*res.slot);
               s.flags = static_cast<cache::SlotFlags>(
                   s.flags | cache::FlagModified);
               cache_.writeBytes(*res.slot, cache_.offsetOf(vaddr),
                                 &value, sizeof(value));
               done();
           });
}

// --------------------------------------------------------------------
// Interrupt service
// --------------------------------------------------------------------

bool
CacheController::interruptPending() const
{
    return !monitor_.fifo().empty() || monitor_.fifo().overflowed();
}

void
CacheController::serviceInterrupts(Done done)
{
    if (dead_) {
        // Failstopped: the service software is gone. Words rot in the
        // FIFO until the recovery coordinator drains them (or a rejoin
        // clears them) — an idle-servicer poke must not resurrect the
        // board.
        done();
        return;
    }
    if (wedged_) {
        // Wedged service loop (partial failure): the service software
        // is stuck, but the board is not silent — the monitor hardware
        // keeps aborting against its (increasingly stale) table, and
        // dead() stays false. Words rot undrained; only the health
        // witness's progress-epoch check can tell this from healthy.
        // The processor is stuck *inside* the handler, so completion
        // is deferred by one futile service quantum — simulated time
        // advances (callers re-poll without livelocking at one tick)
        // while the epoch stays frozen.
        events_.scheduleIn(timing_.serviceNs,
                           [done = std::move(done)] { done(); },
                           "svc-wedged");
        return;
    }
    if (!interruptPending()) {
        done();
        return;
    }
    const Tick started = events_.now();
    const std::uint64_t words_before = serviceCount_.value();
    auto finish = [this, started, words_before,
                   done = std::move(done)] {
        serviceStall_ += events_.now() - started;
        if (tracer_ != nullptr) {
            obs::TraceEvent event;
            event.kind = obs::EventKind::Service;
            event.at = started;
            event.arg0 = events_.now() - started;
            event.arg1 = serviceCount_.value() - words_before;
            event.master = cpuId_;
            event.track = traceTrack_;
            tracer_->record(event);
        }
        done();
    };

    auto drain = std::make_shared<std::function<void()>>();
    *drain = [this, drain, finish = std::move(finish)] {
        if (monitor_.fifo().overflowed()) {
            monitor_.fifo().clearOverflow();
            ++serviceEpoch_;
            recoverFromOverflow(*drain);
            return;
        }
        const auto word = monitor_.fifo().pop();
        if (!word) {
            releaseLoop(drain);
            ++serviceEpoch_;
            finish();
            return;
        }
        ++serviceCount_;
        ++serviceEpoch_;
        VMP_DTRACE(debug::Monitor, events_.now(), "cpu", cpuId_,
                   " service word ", mem::txTypeName(word->type),
                   " pa=0x", std::hex, word->paddr, std::dec,
                   " from=", word->requester,
                   word->aborted ? " (aborted)" : "");
        // slowFactor_ is 1 on a healthy board — multiplying the charge
        // by one keeps the unfaulted run bit-identical.
        serviceCpuNs_ += timing_.serviceNs * slowFactor_;
        afterSoftware(timing_.serviceNs * slowFactor_,
                      [this, w = *word, drain] {
            serviceWord(w, *drain);
        });
    };
    (*drain)();
}

void
CacheController::serviceWord(const monitor::InterruptWord &word,
                             Done next)
{
    const std::uint64_t frame = frameOf(word.paddr);
    const Addr base = frame * pageBytes();
    const auto info_it = frames_.find(frame);

    switch (word.type) {
      case mem::TxType::Notify:
        if (notifyHandler_)
            notifyHandler_(word.paddr);
        next();
        return;

      case mem::TxType::WriteBack:
        // We aborted someone's write-back. The writer owns the page,
        // so any entry (or copy) we still have for the frame is stale
        // — typically a lazily-left 01 from a clean replacement. Clear
        // it so the writer's retry can succeed; a dirty copy of our
        // own here would be a genuine protocol violation.
        {
            bool genuine = false;
            std::vector<cache::SlotIndex> drop;
            for (const auto &[slot, f] : slotFrame_) {
                if (f == frame)
                    drop.push_back(slot);
            }
            for (const auto slot : drop) {
                genuine = genuine || cache_.slot(slot).modified();
                cache_.invalidate(slot);
                forgetSlot(slot);
            }
            frames_.erase(frame);
            if (genuine)
                ++violationCount_;
            if (shadowEntry(word.paddr) != mem::ActionEntry::Ignore) {
                ++spuriousCount_;
                writeActionTable(base, mem::ActionEntry::Ignore, next);
                return;
            }
        }
        next();
        return;

      case mem::TxType::ReadShared:
        // Only queued when we aborted it: we hold the frame privately
        // (possibly via an alias of our own). Downgrade to shared.
        if (info_it == frames_.end()) {
            // Stale Protect entry with no bookkeeping: clean it up.
            ++spuriousCount_;
            if (shadowEntry(word.paddr) != mem::ActionEntry::Ignore) {
                writeActionTable(base, mem::ActionEntry::Ignore, next);
            } else {
                next();
            }
            return;
        }
        downgradeFrame(frame, std::move(next));
        return;

      case mem::TxType::ReadPrivate:
      case mem::TxType::AssertOwnership:
        if (info_it == frames_.end()) {
            ++spuriousCount_;
            if (shadowEntry(word.paddr) != mem::ActionEntry::Ignore) {
                writeActionTable(base, mem::ActionEntry::Ignore, next);
            } else {
                next();
            }
            return;
        }
        if (word.requester == cpuId_ && !word.aborted) {
            // Echo of our own successful acquisition: discard our other
            // (alias) copies of the frame, keeping the acquiring slot.
            const cache::SlotIndex keep = info_it->second.owningSlot;
            std::vector<cache::SlotIndex> drop;
            for (const auto &[slot, f] : slotFrame_) {
                if (f == frame && slot != keep)
                    drop.push_back(slot);
            }
            for (const auto slot : drop) {
                cache_.invalidate(slot);
                forgetSlot(slot);
            }
            next();
            return;
        }
        // Another master wants the frame privately (or we aborted our
        // own transaction against a page we hold): relinquish.
        relinquishFrame(frame, std::move(next));
        return;

      default:
        panic("cpu", cpuId_, ": unexpected interrupt word type ",
              mem::txTypeName(word.type));
    }
}

void
CacheController::relinquishFrame(std::uint64_t frame, Done next)
{
    const Addr base = frame * pageBytes();
    const auto info_it = frames_.find(frame);
    if (info_it == frames_.end()) {
        next();
        return;
    }
    const FrameState state = info_it->second.state;

    // Collect and drop every slot caching this frame, remembering any
    // dirty contents for the write-back.
    std::shared_ptr<std::vector<std::uint8_t>> dirty;
    std::vector<cache::SlotIndex> drop;
    for (const auto &[slot, f] : slotFrame_) {
        if (f == frame)
            drop.push_back(slot);
    }
    for (const auto slot : drop) {
        cache::Slot &s = cache_.slot(slot);
        if (s.valid() && s.modified())
            dirty = std::make_shared<std::vector<std::uint8_t>>(s.data);
        cache_.invalidate(slot);
        forgetSlot(slot);
    }
    frames_.erase(frame);

    if (dirty) {
        ++writeBackCount_;
        auto tries = std::make_shared<std::uint64_t>(0);
        const Tick loop_started = events_.now();
        auto attempt = std::make_shared<std::function<void()>>();
        *attempt = [this, base, frame, dirty, next = std::move(next),
                    attempt, tries, loop_started] {
            copier_.writeBackPage(
                base, dirty->data(), pageBytes(),
                mem::ActionEntry::Ignore,
                [this, base, frame, next, attempt, tries,
                 loop_started](const mem::TxResult &res) {
                    if (res.aborted) {
                        ++violationCount_;
                        watchdogCheck("write-back", 0, 0, base,
                                      ++*tries, loop_started);
                        if (deadOwnerCheck("write-back", 0, base,
                                           *tries, loop_started)) {
                            releaseLoop(attempt);
                            writeActionTable(
                                base, mem::ActionEntry::Ignore, next);
                            return;
                        }
                        afterSoftware(retryDelay(), *attempt);
                        return;
                    }
                    shadow_[frame] = mem::ActionEntry::Ignore;
                    releaseLoop(attempt);
                    next();
                });
        };
        (*attempt)();
        return;
    }

    // Clean: release via an explicit action-table write when the entry
    // could be non-00 (shared copies or clean private).
    (void)state;
    if (shadowEntry(base) != mem::ActionEntry::Ignore) {
        writeActionTable(base, mem::ActionEntry::Ignore,
                         std::move(next));
    } else {
        next();
    }
}

void
CacheController::downgradeFrame(std::uint64_t frame, Done next)
{
    const Addr base = frame * pageBytes();
    const auto info_it = frames_.find(frame);
    if (info_it == frames_.end()) {
        next();
        return;
    }
    // Clear exclusive/modified on our copies, capturing dirty data.
    std::shared_ptr<std::vector<std::uint8_t>> dirty;
    bool any_slot = false;
    for (const auto &[slot, f] : slotFrame_) {
        if (f != frame)
            continue;
        cache::Slot &s = cache_.slot(slot);
        if (!s.valid())
            continue;
        any_slot = true;
        if (s.modified())
            dirty = std::make_shared<std::vector<std::uint8_t>>(s.data);
        s.flags = static_cast<cache::SlotFlags>(
            s.flags &
            ~(cache::FlagExclusive | cache::FlagModified));
    }

    if (!any_slot) {
        // Ownership held without a cached copy (DMA bracket): release
        // it entirely rather than leaving a stale shared entry.
        frames_.erase(info_it);
        writeActionTable(base, mem::ActionEntry::Ignore,
                         std::move(next));
        return;
    }

    FrameInfo &info = info_it->second;
    info.state = FrameState::Shared;
    info.owningSlot = noSlot;

    if (dirty) {
        ++writeBackCount_;
        auto tries = std::make_shared<std::uint64_t>(0);
        const Tick loop_started = events_.now();
        auto attempt = std::make_shared<std::function<void()>>();
        *attempt = [this, base, frame, dirty, next = std::move(next),
                    attempt, tries, loop_started] {
            copier_.writeBackPage(
                base, dirty->data(), pageBytes(),
                mem::ActionEntry::Shared,
                [this, base, frame, next, attempt, tries,
                 loop_started](const mem::TxResult &res) {
                    if (res.aborted) {
                        ++violationCount_;
                        watchdogCheck("write-back", 0, 0, base,
                                      ++*tries, loop_started);
                        if (deadOwnerCheck("write-back", 0, base,
                                           *tries, loop_started)) {
                            // Downgrade abandoned: keep the (clean
                            // from memory's view, lost) page shared.
                            releaseLoop(attempt);
                            writeActionTable(
                                base, mem::ActionEntry::Shared, next);
                            return;
                        }
                        afterSoftware(retryDelay(), *attempt);
                        return;
                    }
                    shadow_[frame] = mem::ActionEntry::Shared;
                    releaseLoop(attempt);
                    next();
                });
        };
        (*attempt)();
        return;
    }

    // Clean private copy: memory is already current; just move the
    // entry from 10 to 01.
    writeActionTable(base, mem::ActionEntry::Shared, std::move(next));
}

void
CacheController::recoverFromOverflow(Done done)
{
    ++recoveryCount_;
    // Conservative recovery (Section 3.3): discard every shared entry
    // and clear the matching action-table entries. Privately owned
    // pages are safe — requests against them are aborted and retried,
    // so their interrupt words regenerate.
    std::vector<std::uint64_t> shared_frames;
    for (const auto &[frame, info] : frames_) {
        if (info.state == FrameState::Shared)
            shared_frames.push_back(frame);
    }
    for (const auto frame : shared_frames) {
        std::vector<cache::SlotIndex> drop;
        for (const auto &[slot, f] : slotFrame_) {
            if (f == frame)
                drop.push_back(slot);
        }
        for (const auto slot : drop) {
            cache_.invalidate(slot);
            forgetSlot(slot);
        }
        frames_.erase(frame);
    }

    // Clear the table entries one bus write at a time.
    auto remaining =
        std::make_shared<std::vector<std::uint64_t>>(shared_frames);
    auto step = std::make_shared<std::function<void()>>();
    *step = [this, remaining, done = std::move(done), step] {
        while (!remaining->empty() &&
               shadowEntry(remaining->back() * pageBytes()) ==
                   mem::ActionEntry::Ignore) {
            remaining->pop_back();
        }
        if (remaining->empty()) {
            releaseLoop(step);
            done();
            return;
        }
        const std::uint64_t frame = remaining->back();
        remaining->pop_back();
        writeActionTable(frame * pageBytes(), mem::ActionEntry::Ignore,
                         *step);
    };
    (*step)();
}

// --------------------------------------------------------------------
// VM / synchronization support operations
// --------------------------------------------------------------------

void
CacheController::assertOwnership(Addr paddr, Done done)
{
    const std::uint64_t frame = frameOf(paddr);
    const auto info_it = frames_.find(frame);
    if (info_it != frames_.end() &&
        info_it->second.state == FrameState::Private) {
        done();
        return;
    }

    auto tries = std::make_shared<std::uint64_t>(0);
    const Tick loop_started = events_.now();
    auto attempt = std::make_shared<std::function<void()>>();
    *attempt = [this, paddr, frame, done = std::move(done), attempt,
                tries, loop_started] {
        mem::BusTransaction tx;
        tx.type = mem::TxType::AssertOwnership;
        tx.requester = cpuId_;
        tx.paddr = frameBase(paddr);
        tx.newEntry = mem::ActionEntry::Protect;
        tx.updatesTable = true;
        bus_.request(tx, [this, paddr, frame, done, attempt, tries,
                          loop_started](const mem::TxResult &res) {
            if (res.aborted) {
                ++retryCount_;
                watchdogCheck("assert-ownership", 0, 0,
                              frameBase(paddr), ++*tries, loop_started);
                if (deadOwnerCheck("assert-ownership", 0,
                                   frameBase(paddr), *tries,
                                   loop_started)) {
                    // Abandoned: the caller continues *without*
                    // ownership and must consult deadOwnerErrors()
                    // before relying on exclusivity.
                    releaseLoop(attempt);
                    done();
                    return;
                }
                // Service our own words first: the abort may be our
                // own monitor protecting an alias we hold.
                serviceInterrupts([this, attempt] {
                    afterSoftware(retryDelay(), *attempt);
                });
                return;
            }
            FrameInfo &info = frames_[frame];
            info.state = FrameState::Private;
            info.owningSlot = noSlot;
            shadow_[frame] = mem::ActionEntry::Protect;
            releaseLoop(attempt);
            done();
        });
    };
    (*attempt)();
}

void
CacheController::releaseProtection(Addr paddr, Done done)
{
    const std::uint64_t frame = frameOf(paddr);
    bool has_slots = false;
    for (const auto &[slot, f] : slotFrame_)
        has_slots = has_slots || f == frame;

    const auto info_it = frames_.find(frame);
    if (info_it != frames_.end()) {
        if (has_slots) {
            info_it->second.state = FrameState::Shared;
            info_it->second.owningSlot = noSlot;
        } else {
            frames_.erase(info_it);
        }
    }
    writeActionTable(paddr,
                     has_slots ? mem::ActionEntry::Shared
                               : mem::ActionEntry::Ignore,
                     std::move(done));
}

void
CacheController::notifyFrame(Addr paddr, Done done)
{
    auto tries = std::make_shared<std::uint64_t>(0);
    const Tick loop_started = events_.now();
    auto attempt = std::make_shared<std::function<void()>>();
    *attempt = [this, paddr, done = std::move(done), attempt, tries,
                loop_started] {
        mem::BusTransaction tx;
        tx.type = mem::TxType::Notify;
        tx.requester = cpuId_;
        tx.paddr = frameBase(paddr);
        bus_.request(tx, [this, paddr, done, attempt, tries,
                          loop_started](const mem::TxResult &r) {
            if (r.aborted) {
                watchdogCheck("notify", 0, 0, frameBase(paddr),
                              ++*tries, loop_started);
                if (deadOwnerCheck("notify", 0, frameBase(paddr),
                                   *tries, loop_started)) {
                    // Notification abandoned (best-effort semantics).
                    releaseLoop(attempt);
                    done();
                    return;
                }
                afterSoftware(retryDelay(), *attempt);
                return;
            }
            releaseLoop(attempt);
            done();
        });
    };
    (*attempt)();
}

void
CacheController::writeActionTable(Addr paddr, mem::ActionEntry entry,
                                  Done done)
{
    mem::BusTransaction tx;
    tx.type = mem::TxType::WriteActionTable;
    tx.requester = cpuId_;
    tx.paddr = frameBase(paddr);
    tx.newEntry = entry;
    tx.updatesTable = true;
    const std::uint64_t frame = frameOf(paddr);
    bus_.request(tx, [this, frame, entry,
                      done = std::move(done)](const mem::TxResult &) {
        shadow_[frame] = entry;
        done();
    });
}

void
CacheController::uncachedRead(Addr paddr,
                              std::function<void(std::uint32_t)> done)
{
    auto buf = std::make_shared<std::uint32_t>(0);
    mem::BusTransaction tx;
    tx.type = mem::TxType::DmaRead;
    tx.requester = cpuId_;
    tx.paddr = paddr;
    tx.bytes = 4;
    tx.data = reinterpret_cast<std::uint8_t *>(buf.get());
    bus_.request(tx, [buf, done = std::move(done)](const mem::TxResult &) {
        done(*buf);
    });
}

void
CacheController::uncachedWrite(Addr paddr, std::uint32_t value,
                               Done done)
{
    auto buf = std::make_shared<std::uint32_t>(value);
    mem::BusTransaction tx;
    tx.type = mem::TxType::DmaWrite;
    tx.requester = cpuId_;
    tx.paddr = paddr;
    tx.bytes = 4;
    tx.data = reinterpret_cast<std::uint8_t *>(buf.get());
    bus_.request(tx,
                 [buf, done = std::move(done)](const mem::TxResult &) {
                     done();
                 });
}

void
CacheController::uncachedTas(Addr paddr,
                             std::function<void(std::uint32_t)> done)
{
    auto new_value = std::make_shared<std::uint32_t>(1);
    auto old_value = std::make_shared<std::uint32_t>(0);
    mem::BusTransaction tx;
    tx.type = mem::TxType::DmaWrite;
    tx.requester = cpuId_;
    tx.paddr = paddr;
    tx.bytes = 4;
    tx.data = reinterpret_cast<std::uint8_t *>(new_value.get());
    tx.rmw = true;
    tx.oldData = reinterpret_cast<std::uint8_t *>(old_value.get());
    bus_.request(tx, [new_value, old_value,
                      done = std::move(done)](const mem::TxResult &) {
        done(*old_value);
    });
}

void
CacheController::flushFrame(Addr paddr, Done done)
{
    const std::uint64_t frame = frameOf(paddr);
    const Addr base = frame * pageBytes();

    std::shared_ptr<std::vector<std::uint8_t>> dirty;
    std::vector<cache::SlotIndex> drop;
    for (const auto &[slot, f] : slotFrame_) {
        if (f == frame)
            drop.push_back(slot);
    }
    for (const auto slot : drop) {
        cache::Slot &s = cache_.slot(slot);
        if (s.valid() && s.modified())
            dirty = std::make_shared<std::vector<std::uint8_t>>(s.data);
        cache_.invalidate(slot);
        forgetSlot(slot);
    }
    // We still own the frame (protection retained for the caller).
    FrameInfo &info = frames_[frame];
    info.state = FrameState::Private;
    info.owningSlot = noSlot;

    if (!dirty) {
        done();
        return;
    }
    ++writeBackCount_;
    auto tries = std::make_shared<std::uint64_t>(0);
    const Tick loop_started = events_.now();
    auto attempt = std::make_shared<std::function<void()>>();
    *attempt = [this, base, frame, dirty, done = std::move(done),
                attempt, tries, loop_started] {
        copier_.writeBackPage(
            base, dirty->data(), pageBytes(), mem::ActionEntry::Protect,
            [this, base, frame, done, attempt, tries,
             loop_started](const mem::TxResult &res) {
                if (res.aborted) {
                    ++violationCount_;
                    watchdogCheck("write-back", 0, 0, base, ++*tries,
                                  loop_started);
                    if (deadOwnerCheck("write-back", 0, base, *tries,
                                       loop_started)) {
                        // Flush abandoned: ownership (and the Protect
                        // entry) is retained, the dirty data is lost.
                        releaseLoop(attempt);
                        done();
                        return;
                    }
                    afterSoftware(retryDelay(), *attempt);
                    return;
                }
                shadow_[frame] = mem::ActionEntry::Protect;
                releaseLoop(attempt);
                done();
            });
    };
    (*attempt)();
}

void
CacheController::invalidateFrame(Addr paddr)
{
    const std::uint64_t frame = frameOf(paddr);
    std::vector<cache::SlotIndex> drop;
    for (const auto &[slot, f] : slotFrame_) {
        if (f == frame)
            drop.push_back(slot);
    }
    for (const auto slot : drop) {
        cache_.invalidate(slot);
        forgetSlot(slot);
    }
    frames_.erase(frame);
}

// --------------------------------------------------------------------
// Introspection and statistics
// --------------------------------------------------------------------

const FrameInfo *
CacheController::frameInfo(Addr paddr) const
{
    const auto it = frames_.find(frameOf(paddr));
    return it == frames_.end() ? nullptr : &it->second;
}

mem::ActionEntry
CacheController::shadowEntry(Addr paddr) const
{
    const auto it = shadow_.find(frameOf(paddr));
    return it == shadow_.end() ? mem::ActionEntry::Ignore : it->second;
}

void
CacheController::registerStats(StatGroup &group) const
{
    group.addCounter("misses", "references that missed in the cache",
                     missCount_);
    group.addCounter("ownership_misses",
                     "write misses upgraded with assert-ownership",
                     ownershipCount_);
    group.addCounter("hinted_private_fills",
                     "read misses served read-private (non-shared "
                     "hint)",
                     hintedPrivateFills_);
    group.addCounter("retries", "aborted transactions retried",
                     retryCount_);
    group.addCounter("words_serviced",
                     "bus-monitor interrupt words serviced",
                     serviceCount_);
    group.addCounter("spurious_words",
                     "interrupt words against stale table entries",
                     spuriousCount_);
    group.addCounter("write_backs", "cache pages written back",
                     writeBackCount_);
    group.addCounter("protocol_violations",
                     "aborted write-backs observed", violationCount_);
    group.addCounter("overflow_recoveries",
                     "interrupt FIFO overflow recovery sweeps",
                     recoveryCount_);
    group.addCounter("watchdog_trips",
                     "retry loops that exceeded the watchdog cap",
                     watchdogTrips_);
    group.addCounter("dead_owner_suspected",
                     "watchdog cap hits attributed to a dead owner",
                     deadOwnerSuspected_);
    group.addCounter("dead_owner_errors",
                     "timed waits abandoned with a DeadOwnerError",
                     deadOwnerErrors_);
    group.addHistogram("retries_per_miss",
                       "retries needed per completed miss",
                       retryHistogram_);
}

} // namespace vmp::proto
