/**
 * @file
 * Virtual-to-physical translation interface used by the software miss
 * handler. The real two-level page-table implementation lives in
 * src/vm (and performs nested cached accesses, as in Section 2); the
 * simple translators here back protocol tests and timing-only
 * simulations.
 */

#ifndef VMP_PROTO_TRANSLATOR_HH
#define VMP_PROTO_TRANSLATOR_HH

#include <cstdint>
#include <functional>
#include <map>

#include "cache/types.hh"
#include "sim/types.hh"

namespace vmp::proto
{

class CacheController;

/** One translation request (one faulting reference). */
struct TranslateRequest
{
    Asid asid = 0;
    Addr vaddr = 0;
    bool write = false;
    bool supervisor = false;
};

/** Result of a translation. */
struct TranslateResult
{
    /** False: no valid mapping (page fault). */
    bool ok = false;
    /** Physical address of the byte (page-aligned + offset). */
    Addr paddr = 0;
    /** Protection flags for the cache slot (SlotFlag bits). */
    cache::SlotFlags prot = 0;
    /**
     * Section 5.4 hint: the application declared this memory
     * non-shared, so even a *read* miss is served with read-private,
     * avoiding a later assert-ownership on the first write (and
     * flushing the page from the cache of the processor that last ran
     * the process).
     */
    bool privateHint = false;
};

using TranslateDone = std::function<void(const TranslateResult &)>;

/**
 * Translation provider. translate() is asynchronous because the real
 * implementation may miss in the cache while walking page tables stored
 * in virtual memory; @p controller gives it access to the invoking
 * processor's cached kernel accesses.
 */
class Translator
{
  public:
    virtual ~Translator() = default;

    virtual void translate(const TranslateRequest &req,
                           CacheController &controller,
                           TranslateDone done) = 0;
};

/**
 * Allocate-on-first-touch translator: each new virtual page gets the
 * next free physical frame. Pages in the kernel region are shared
 * across ASIDs (kernel space is part of every user space, Section 4);
 * user pages are private per ASID. Used by timing simulations, where a
 * real pager would add noise, and by protocol tests.
 */
class DemandTranslator : public Translator
{
  public:
    /**
     * @param mem_bytes physical memory available for allocation
     * @param page_bytes cache page size
     * @param kernel_base start of the ASID-shared kernel region
     * @param kernel_limit end of the kernel region
     * @param reserved_frames low frames kept out of allocation (for
     *        uncached locks, mailboxes and device buffers)
     */
    DemandTranslator(std::uint64_t mem_bytes, std::uint32_t page_bytes,
                     Addr kernel_base, Addr kernel_limit,
                     std::uint64_t reserved_frames = 16);

    void translate(const TranslateRequest &req,
                   CacheController &controller,
                   TranslateDone done) override;

    /** Synchronous helper for tests and scripted programs. */
    TranslateResult translateNow(const TranslateRequest &req);

    /** Frames handed out so far. */
    std::uint64_t allocated() const { return nextFrame_; }

    /**
     * Declare user pages non-shared (Section 5.4): translations of
     * user-region addresses carry the private hint, so read misses
     * fetch read-private. User pages are per-ASID here, so the hint
     * is always safe; kernel pages stay shared.
     */
    void setUserPrivateHint(bool enabled) { userPrivateHint_ = enabled; }

  private:
    std::uint64_t frames_;
    std::uint32_t pageBytes_;
    Addr kernelBase_;
    Addr kernelLimit_;
    std::uint64_t nextFrame_ = 0;
    bool userPrivateHint_ = false;
    /** <asid-or-0, vpn> -> frame */
    std::map<std::pair<Asid, std::uint64_t>, std::uint64_t> map_;
};

/**
 * Fixed-map translator for tests: explicit <asid, vpage> -> frame
 * entries with per-entry protection; anything unmapped faults.
 */
class FixedTranslator : public Translator
{
  public:
    explicit FixedTranslator(std::uint32_t page_bytes)
        : pageBytes_(page_bytes)
    {}

    /** Map virtual page of @p vaddr for @p asid onto @p paddr's frame. */
    void map(Asid asid, Addr vaddr, Addr paddr, cache::SlotFlags prot,
             bool private_hint = false);
    void unmap(Asid asid, Addr vaddr);

    void translate(const TranslateRequest &req,
                   CacheController &controller,
                   TranslateDone done) override;

  private:
    struct Entry
    {
        Addr frameBase;
        cache::SlotFlags prot;
        bool privateHint;
    };

    std::uint32_t pageBytes_;
    std::map<std::pair<Asid, std::uint64_t>, Entry> map_;
};

} // namespace vmp::proto

#endif // VMP_PROTO_TRANSLATOR_HH
