/**
 * @file
 * The software side of VMP cache management: one CacheController per
 * processor board models the miss-handler and consistency code that the
 * real machine runs out of local memory.
 *
 * It implements, per Sections 2 and 3:
 *  - software cache miss handling (trap, translate, victim write-back
 *    overlapped with bookkeeping, block-copy fill, retry on abort);
 *  - the two-state (shared/private) distributed ownership protocol,
 *    including assert-ownership upgrades and the "competing against
 *    itself" resolution of virtual-address aliases;
 *  - servicing of bus-monitor interrupt words between instructions
 *    (invalidate, downgrade-with-write-back, relinquish, notification);
 *  - recovery from interrupt-FIFO overflow;
 *  - the local-memory bookkeeping: physical-frame -> cache-slot maps,
 *    frame ownership state, and a shadow of the bus monitor's action
 *    table (the hardware table is bus-side and not CPU-readable).
 *
 * All operations are asynchronous against the shared event queue; the
 * owning CPU model is blocked for the duration of each call, which is
 * exactly the paper's execution model (the CPU blocks on the cache
 * controller mid-instruction awaiting the block transfer).
 */

#ifndef VMP_PROTO_CONTROLLER_HH
#define VMP_PROTO_CONTROLLER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/cache.hh"
#include "mem/block_copier.hh"
#include "mem/vme_bus.hh"
#include "monitor/bus_monitor.hh"
#include "obs/event_tracer.hh"
#include "proto/dead_owner.hh"
#include "proto/timing.hh"
#include "sim/random.hh"
#include "proto/translator.hh"
#include "sim/event.hh"
#include "sim/stats.hh"

namespace vmp::proto
{

/** How an access() call was satisfied. */
enum class AccessOutcome : std::uint8_t
{
    Hit,           //!< satisfied by the cache at full speed
    MissCompleted, //!< one or more misses were handled in software
};

/** Per-frame ownership state kept in local memory. */
enum class FrameState : std::uint8_t
{
    Shared,
    Private,
};

/**
 * Software bookkeeping for one physical frame held in (or protected
 * by) this cache. The slots caching a frame are found through the
 * slot-to-frame map; only the ownership state lives here.
 */
struct FrameInfo
{
    FrameState state = FrameState::Shared;
    /** The slot that acquired ownership, when state == Private. */
    cache::SlotIndex owningSlot = 0;
};

/**
 * Structured starvation report produced by the livelock watchdog when
 * one logical operation exceeds its retry cap (Section 3.3's retry
 * protocol is probabilistically — not deterministically — live, so
 * starvation must be *detected*, not assumed away).
 */
struct WatchdogReport
{
    CpuId cpu = 0;
    /** Which retry loop starved ("access", "write-back", ...). */
    std::string operation;
    Asid asid = 0;
    Addr vaddr = 0;
    Addr paddr = 0;
    /** Retries attempted when the cap tripped. */
    std::uint64_t attempts = 0;
    /** Tick the starving operation started at. */
    Tick started = 0;
    /** Tick the watchdog tripped at. */
    Tick now = 0;
    /**
     * True when the dead-owner oracle reports the frame's Protect
     * owner failstopped: the loop is waiting on a dead board, not
     * livelocked against live contenders. Counted separately (see
     * deadOwnerSuspected()), not as a watchdog trip.
     */
    bool deadOwnerSuspected = false;

    std::string toString() const;
};

/** The per-processor cache management software. */
class CacheController
{
  public:
    using AccessDone = std::function<void(AccessOutcome)>;
    using Done = std::function<void()>;
    /** Page-fault upcall: handle the fault, then invoke retry. */
    using FaultHandler =
        std::function<void(const TranslateRequest &, Done retry)>;
    /** Notification upcall (Section 5.4 locks, messages). */
    using NotifyHandler = std::function<void(Addr paddr)>;

    CacheController(CpuId cpu, EventQueue &events, cache::Cache &cache,
                    monitor::BusMonitor &busMonitor, mem::VmeBus &bus,
                    Translator &translator,
                    const SoftwareTiming &timing = {});

    CpuId cpuId() const { return cpuId_; }
    cache::Cache &cache() { return cache_; }
    monitor::BusMonitor &busMonitor() { return monitor_; }
    const SoftwareTiming &timing() const { return timing_; }

    void setFaultHandler(FaultHandler handler);
    void setNotifyHandler(NotifyHandler handler);

    /** Starvation upcall; see setWatchdog(). */
    using WatchdogHandler = std::function<void(const WatchdogReport &)>;

    /**
     * Configure the livelock/starvation watchdog: when any one retry
     * loop (an access miss or a write-back/notify loop) exceeds
     * @p max_retries attempts, a WatchdogReport is produced — handed
     * to @p handler if set, warned to stderr otherwise — and counted.
     * The operation keeps retrying either way; the watchdog observes,
     * it does not kill. @p max_retries 0 disables the watchdog.
     * Default: cap 1000, no handler.
     */
    void setWatchdog(std::uint64_t max_retries,
                     WatchdogHandler handler = {});

    /** Forward fault-injection hooks to this board's block copier. */
    void setFaultHooks(mem::FaultHooks *hooks);

    /**
     * Attach (or detach, with nullptr) an event tracer. The miss
     * handler records, on @p track: one Miss span per completed miss,
     * MissPhase spans forming a gapless serial partition of it (trap,
     * action-table lookup, victim writeback, block copy, consistency
     * wait), one Service span per interrupt-service burst, and the
     * block copier's Copy spans. A null tracer costs one untaken
     * branch per potential event; a non-null tracer only observes —
     * the simulated timeline is bit-identical either way.
     */
    void setTracer(obs::EventTracer *tracer, std::uint16_t track);

    /** Dead-owner error upcall; see proto/dead_owner.hh. */
    using DeadOwnerHandler = std::function<void(const DeadOwnerError &)>;

    /**
     * Install the recovery subsystem's dead-owner oracle (nullptr to
     * detach). With an oracle the watchdog attributes starvation on a
     * frame whose Protect owner is declared dead to the dead owner
     * instead of counting a livelock trip.
     */
    void setDeadOwnerOracle(const DeadOwnerOracle *oracle)
    {
        deadOracle_ = oracle;
    }

    /**
     * Install a handler for DeadOwnerError reports (abandoned timed
     * waits). Without a handler the error is warned to stderr; it is
     * counted and retained either way.
     */
    void setDeadOwnerHandler(DeadOwnerHandler handler)
    {
        deadOwnerHandler_ = std::move(handler);
    }

    // --- failstop / hot-rejoin (driven by core::VmpSystem) ---

    /**
     * Failstop this board's management software: all local bookkeeping
     * (frame table, slot map, action-table shadow) and cache contents
     * vanish, exactly as if the board lost power. The bus-side monitor
     * hardware is *not* touched — its stale table keeps aborting until
     * the recovery coordinator masks it (or a rejoin clears it), which
     * is precisely the wedge the recovery subsystem exists to break.
     */
    void failstop();

    /** Restart the board's software cold after a failstop. */
    void rejoin();

    /** True between failstop() and rejoin(). */
    bool dead() const { return dead_; }

    // --- partial-failure seams (driven by the fault schedule) ---

    /**
     * Wedge / unwedge the interrupt-service loop: while wedged,
     * serviceInterrupts() returns without draining, so words rot in
     * the FIFO while the bus-side monitor hardware keeps aborting
     * against stale Protect entries. Unlike failstop the board is NOT
     * silent — dead() stays false, bookkeeping and cache contents are
     * retained — which is exactly why a binary liveness probe reports
     * a wedged board healthy and a progress-epoch witness is needed.
     */
    void setWedged(bool wedged) { wedged_ = wedged; }
    bool wedged() const { return wedged_; }

    /**
     * Inflate interrupt-service latency by an integer factor
     * (fail-slow injection). Factor 1 — the default — multiplies the
     * unscaled charge by one and is bit-identical to it.
     */
    void setServiceSlowdown(std::uint64_t factor);
    std::uint64_t serviceSlowdown() const { return slowFactor_; }

    /**
     * Service-loop progress epoch: advances whenever the loop
     * demonstrably makes progress (a word serviced, an overflow sweep
     * run, a drain pass completed). The health witness compares
     * epochs across observations — a wedged loop's epoch freezes
     * while its FIFO backlog persists.
     */
    std::uint64_t serviceEpoch() const { return serviceEpoch_; }

    /** Retry delay with desynchronizing jitter (public so the
     *  determinism regression tests can sample the sequence). */
    Tick retryDelay();

    /**
     * Present one memory reference. On a hit @p done runs immediately
     * (same tick); on a miss it runs once the software handler, block
     * transfers and any retries complete.
     */
    void access(Asid asid, Addr vaddr, bool write, bool supervisor,
                AccessDone done);

    /** Data-plane reference: read a 32-bit word through the cache. */
    void readWord(Asid asid, Addr vaddr, bool supervisor,
                  std::function<void(std::uint32_t)> done);
    /** Data-plane reference: write a 32-bit word through the cache. */
    void writeWord(Asid asid, Addr vaddr, std::uint32_t value,
                   bool supervisor, Done done);

    /**
     * Service all pending bus-monitor interrupt words (called by the
     * CPU model between instructions). Runs overflow recovery first if
     * the FIFO dropped a word.
     */
    void serviceInterrupts(Done done);

    /** True if any interrupt word (or the overflow flag) is pending. */
    bool interruptPending() const;

    // --- operations used by the VM system and synchronization code ---

    /**
     * Issue assert-ownership on the frame at @p paddr (used by the VM
     * system for translation consistency and DMA, Section 3.3/3.4).
     * Retries until it succeeds; the caller need not hold a copy.
     */
    void assertOwnership(Addr paddr, Done done);

    /** Release a frame protected via assertOwnership (entry -> 00). */
    void releaseProtection(Addr paddr, Done done);

    /** Send a notification transaction for @p paddr. */
    void notifyFrame(Addr paddr, Done done);

    /** Set this monitor's action-table entry via the bus. */
    void writeActionTable(Addr paddr, mem::ActionEntry entry, Done done);

    /** Uncached (non-consistency) global-memory word operations. */
    void uncachedRead(Addr paddr, std::function<void(std::uint32_t)> d);
    void uncachedWrite(Addr paddr, std::uint32_t value, Done done);
    /** Uncached atomic test-and-set; yields the previous value. */
    void uncachedTas(Addr paddr, std::function<void(std::uint32_t)> d);

    /**
     * Drop every slot caching the frame at @p paddr, without write-back
     * (used when another master has asserted ownership away from us —
     * normally driven by interrupt service, public for the VM tests).
     */
    void invalidateFrame(Addr paddr);

    /**
     * Flush our own copies of the frame at @p paddr: write the dirty
     * data back (retaining ownership — the entry stays Protect) and
     * invalidate the local slots. Requires ownership to have been
     * asserted; used by the VM system's Section 3.4 sequences.
     */
    void flushFrame(Addr paddr, Done done);

    // --- introspection for tests and the coherence checker ---
    /** Bookkeeping entry for a frame, or nullptr. */
    const FrameInfo *frameInfo(Addr paddr) const;
    /** Software's belief about this monitor's action-table entry. */
    mem::ActionEntry shadowEntry(Addr paddr) const;
    /** Full frame -> ownership-state bookkeeping map. */
    const std::unordered_map<std::uint64_t, FrameInfo> &
    frameTable() const
    {
        return frames_;
    }
    /** Full slot -> frame map. */
    const std::unordered_map<cache::SlotIndex, std::uint64_t> &
    slotFrames() const
    {
        return slotFrame_;
    }
    /** Full software shadow of the monitor's action table. */
    const std::unordered_map<std::uint64_t, mem::ActionEntry> &
    shadowTable() const
    {
        return shadow_;
    }
    const cache::Cache &cache() const { return cache_; }
    const monitor::BusMonitor &busMonitor() const { return monitor_; }

    // --- statistics ---
    const Counter &misses() const { return missCount_; }
    const Counter &ownershipMisses() const { return ownershipCount_; }
    const Counter &hintedPrivateFills() const
    {
        return hintedPrivateFills_;
    }
    const Counter &retries() const { return retryCount_; }
    const Counter &wordsServiced() const { return serviceCount_; }
    const Counter &spuriousWords() const { return spuriousCount_; }
    const Counter &writeBacks() const { return writeBackCount_; }
    const Counter &protocolViolations() const { return violationCount_; }
    const Counter &overflowRecoveries() const { return recoveryCount_; }
    Tick missStallTicks() const { return missStall_; }
    Tick serviceStallTicks() const { return serviceStall_; }
    /**
     * Cumulative service-software CPU time: the per-word software
     * charge, accrued as each word is taken up. This is what the
     * fail-slow health witness reads, and it differs from
     * serviceStallTicks() in two ways that both matter there:
     * it accrues mid-drain (a fail-slow board under steady traffic
     * may never empty its FIFO, and serviceStall_ only commits when
     * a drain finishes), and it excludes bus-wait time (a healthy
     * survivor stalled retrying against a sick *peer* must not be
     * billed as slow itself).
     */
    Tick serviceCpuTicks() const { return serviceCpuNs_; }
    /** Times any retry loop exceeded the watchdog cap. */
    const Counter &watchdogTrips() const { return watchdogTrips_; }
    /** Watchdog cap hits attributed to a declared-dead owner. */
    const Counter &deadOwnerSuspected() const
    {
        return deadOwnerSuspected_;
    }
    /** Timed waits abandoned with a DeadOwnerError. */
    const Counter &deadOwnerErrors() const { return deadOwnerErrors_; }
    /** Most recent dead-owner error, if any wait was ever abandoned. */
    const std::optional<DeadOwnerError> &lastDeadOwnerError() const
    {
        return lastDeadOwnerError_;
    }
    /** Most recent starvation report, if the watchdog ever tripped. */
    const std::optional<WatchdogReport> &lastWatchdogReport() const
    {
        return lastReport_;
    }
    /** Retries needed per completed miss (bucket = retry count). */
    const Histogram &retriesPerMiss() const { return retryHistogram_; }
    void registerStats(StatGroup &group) const;

  private:
    std::uint64_t frameOf(Addr paddr) const;
    Addr frameBase(Addr paddr) const;
    std::uint32_t pageBytes() const;

    /** Schedule @p fn after @p delay of software execution. */
    void afterSoftware(Tick delay, Done fn);

    /** Break a looping closure's self-reference once it terminates. */
    void releaseLoop(const std::shared_ptr<std::function<void()>> &loop);

    /** Full (no-match) miss path. */
    void handleFullMiss(TranslateRequest req, Tick started,
                        AccessDone done);
    /** Phase 2 of the full miss: after successful translation. */
    void missWithTranslation(const TranslateRequest &req,
                             const TranslateResult &result, Tick started,
                             AccessDone done);
    /** Phase 3: victim retired, issue the page read. */
    void issueFill(const TranslateRequest &req,
                   const TranslateResult &result,
                   cache::SlotIndex victim, Tick started,
                   AccessDone done);
    /** Ownership (write-to-shared) miss path. */
    void handleOwnershipMiss(TranslateRequest req,
                             cache::SlotIndex slot, Tick started,
                             AccessDone done);
    /** Protection miss path (flags deny the access). */
    void handleProtectionMiss(TranslateRequest req,
                              cache::SlotIndex slot, Tick started,
                              AccessDone done);
    /** Abort recovery: service own words, re-trap, redo the access. */
    void retryAccess(const TranslateRequest &req, Tick started,
                     AccessDone done);

    /** Retire the victim slot: write back / release as needed. The
     *  continuation receives no arguments; bookkeeping is updated. */
    void retireVictim(cache::SlotIndex victim, Done done);

    /** Remove @p slot from its frame's bookkeeping (if tracked). */
    void forgetSlot(cache::SlotIndex slot);

    /** Service one interrupt word, then continue with @p next. */
    void serviceWord(const monitor::InterruptWord &word, Done next);
    void relinquishFrame(std::uint64_t frame, Done next);
    void downgradeFrame(std::uint64_t frame, Done next);
    void recoverFromOverflow(Done done);

    /** Complete a miss: charge the stall, sample the per-miss retry
     *  count into the histogram, and invoke the continuation. */
    void finishMiss(Tick started, const AccessDone &done);

    // --- tracing (no-ops while tracer_ is null) ---

    /** Open the Miss span and its first (Trap) phase at @p started.
     *  @p kind: 0 full, 1 ownership, 2 protection. */
    void traceMissBegin(Tick started, std::uint8_t kind);
    /** Transition to @p phase: emit the span of the phase ending now
     *  (no-op when @p phase is already current or no miss is open). */
    void tracePhase(obs::MissPhase phase);
    /** Emit the current phase's span ending now, if non-empty. */
    void traceClosePhase();
    /** Close the open miss: final phase span + the Miss span. */
    void traceMissEnd();

    /**
     * Watchdog check for one retry loop: trips (once per starving
     * operation, at attempts == cap + 1) when @p attempts exceeds the
     * configured cap.
     */
    void watchdogCheck(const char *operation, Asid asid, Addr vaddr,
                       Addr paddr, std::uint64_t attempts, Tick started);

    /**
     * Timed-wait check for one retry loop: true when the dead-owner
     * deadline has expired, in which case a DeadOwnerError has been
     * raised and the loop must abandon the operation.
     */
    bool deadOwnerCheck(const char *operation, Addr vaddr, Addr paddr,
                        std::uint64_t attempts, Tick started);

    CpuId cpuId_;
    EventQueue &events_;
    cache::Cache &cache_;
    monitor::BusMonitor &monitor_;
    mem::VmeBus &bus_;
    mem::BlockCopier copier_;
    Translator &translator_;
    SoftwareTiming timing_;
    Rng rng_;
    obs::EventTracer *tracer_ = nullptr;
    std::uint16_t traceTrack_ = 0;
    /** True while a traced miss is open (between begin and finish). */
    bool missOpen_ = false;
    bool missDirty_ = false;
    std::uint8_t missKindAux_ = 0;
    Tick missStartedAt_ = 0;
    obs::MissPhase phase_ = obs::MissPhase::Trap;
    Tick phaseStartedAt_ = 0;
    FaultHandler faultHandler_;
    NotifyHandler notifyHandler_;

    /** frame -> local bookkeeping. */
    std::unordered_map<std::uint64_t, FrameInfo> frames_;
    /** slot -> frame currently cached there (parallel to cache). */
    std::unordered_map<cache::SlotIndex, std::uint64_t> slotFrame_;
    /** Software's shadow of the monitor's action table. */
    std::unordered_map<std::uint64_t, mem::ActionEntry> shadow_;

    Counter missCount_;
    Counter ownershipCount_;
    Counter hintedPrivateFills_;
    Counter retryCount_;
    Counter serviceCount_;
    Counter spuriousCount_;
    Counter writeBackCount_;
    Counter violationCount_;
    Counter recoveryCount_;
    Tick missStall_ = 0;
    Tick serviceStall_ = 0;
    /** Service-software CPU time (see serviceCpuTicks). */
    Tick serviceCpuNs_ = 0;

    // --- livelock watchdog ---
    /** Retry cap per logical operation (0 = watchdog disabled). */
    std::uint64_t watchdogCap_ = 1000;
    WatchdogHandler watchdogHandler_;
    Counter watchdogTrips_;
    std::optional<WatchdogReport> lastReport_;

    // --- dead-owner timed waits / failstop state ---
    const DeadOwnerOracle *deadOracle_ = nullptr;
    DeadOwnerHandler deadOwnerHandler_;
    Counter deadOwnerSuspected_;
    Counter deadOwnerErrors_;
    std::optional<DeadOwnerError> lastDeadOwnerError_;
    bool dead_ = false;
    /** Service loop wedged (partial failure; distinct from dead_). */
    bool wedged_ = false;
    /** Interrupt-service latency multiplier (fail-slow; 1 = healthy). */
    std::uint64_t slowFactor_ = 1;
    /** Service-loop progress epoch (see serviceEpoch()). */
    std::uint64_t serviceEpoch_ = 0;
    /** Retries of the in-flight access (one CPU => one at a time). */
    std::uint64_t liveRetries_ = 0;
    /** Retries per completed miss; bucket n = n retries, last bucket
     *  collects everything >= 32. */
    Histogram retryHistogram_{33, 1.0};
};

} // namespace vmp::proto

#endif // VMP_PROTO_CONTROLLER_HH
