/**
 * @file
 * Dead-owner error reporting for the ownership protocol. The paper's
 * Section 3 retry discipline assumes the Protect owner of a page will
 * eventually service its interrupt and release the page; a failstopped
 * board never does, so an op retrying against its stale entry would
 * otherwise spin forever and silently hang the event queue. The
 * controller converts such waits into *timed* waits: when one logical
 * operation has been retrying longer than the configured dead-owner
 * deadline it abandons the wait and surfaces a structured
 * DeadOwnerError — whether or not the recovery subsystem is present.
 *
 * The DeadOwnerOracle is how the recovery subsystem (when enabled)
 * tells the controller and its watchdog which frames are known to be
 * stranded by a declared-dead board, so the watchdog can distinguish a
 * genuine livelock from a dead owner.
 */

#ifndef VMP_PROTO_DEAD_OWNER_HH
#define VMP_PROTO_DEAD_OWNER_HH

#include <cstdint>
#include <sstream>
#include <string>

#include "sim/types.hh"

namespace vmp::proto
{

/**
 * Structured report of an operation abandoned because the board that
 * must answer it appears failstopped (retry deadline exceeded).
 */
struct DeadOwnerError
{
    CpuId cpu = 0;
    /** Which retry loop timed out ("access", "write-back", ...). */
    std::string operation;
    /** Frame address the operation was against (0 if unknown). */
    Addr paddr = 0;
    /** Faulting virtual address for access-path errors. */
    Addr vaddr = 0;
    /** Retries attempted before abandoning. */
    std::uint64_t attempts = 0;
    /** Tick the abandoned operation started at. */
    Tick started = 0;
    /** Tick the deadline expired at. */
    Tick now = 0;
    /** True when the recovery oracle confirms the owner is dead. */
    bool ownerKnownDead = false;

    std::string
    toString() const
    {
        std::ostringstream os;
        os << "cpu" << cpu << " " << operation
           << " abandoned after " << attempts << " retries ("
           << (now - started) << " ns) pa=0x" << std::hex << paddr
           << std::dec
           << (ownerKnownDead ? " [owner declared dead]"
                              : " [owner unresponsive]");
        return os.str();
    }
};

/**
 * Interface the recovery subsystem implements so the protocol layer can
 * ask whether the Protect owner of a frame has been declared
 * failstopped. Null (no oracle installed) means "nothing is known
 * dead" — the zero-cost default when recovery is disabled.
 */
class DeadOwnerOracle
{
  public:
    virtual ~DeadOwnerOracle() = default;

    /** True if the frame at @p paddr is stranded by a dead board. */
    virtual bool isFrameOwnerDead(Addr paddr) const = 0;
};

} // namespace vmp::proto

#endif // VMP_PROTO_DEAD_OWNER_HH
