#include "monitor/bus_monitor.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace vmp::monitor
{

BusMonitor::BusMonitor(std::uint32_t owner_id, std::uint64_t mem_bytes,
                       std::uint32_t page_bytes,
                       std::size_t fifo_capacity)
    : ownerId_(owner_id), pageBytes_(page_bytes),
      table_(mem_bytes, page_bytes), fifo_(fifo_capacity)
{
}

mem::WatchVerdict
BusMonitor::decide(const mem::BusTransaction &tx) const
{
    using mem::ActionEntry;
    using mem::TxType;
    using mem::WatchVerdict;

    if (!mem::isConsistencyRelated(tx.type))
        return WatchVerdict::Ignore;

    // A processor's own write-back is the legal release of a privately
    // held page: the monitor's entry is rewritten as part of the
    // transaction, never aborted ("write-backs ... are never aborted",
    // Section 3.2). All other own transactions are checked normally —
    // that is what catches virtual-address aliases (Section 3.3).
    if (tx.requester == ownerId_ && tx.type == mem::TxType::WriteBack)
        return WatchVerdict::Ignore;

    switch (table_.entryFor(tx.paddr)) {
      case ActionEntry::Ignore:
        // 00 - do nothing.
        return WatchVerdict::Ignore;

      case ActionEntry::Shared:
        // 01 - interrupt on read-private / assert-ownership; ignore
        // read-shared and notify. A write-back against a page we hold
        // shared is a protocol violation: abort it.
        switch (tx.type) {
          case TxType::ReadPrivate:
          case TxType::AssertOwnership:
            return WatchVerdict::Interrupt;
          case TxType::WriteBack:
            return WatchVerdict::AbortAndInterrupt;
          default:
            return WatchVerdict::Ignore;
        }

      case ActionEntry::Protect:
        // 10 - abort and interrupt on any consistency-related
        // transaction (including read-shared).
        return WatchVerdict::AbortAndInterrupt;

      case ActionEntry::Notify:
        // 11 - interrupt on a notification transaction.
        return tx.type == TxType::Notify ? WatchVerdict::Interrupt
                                         : WatchVerdict::Ignore;
    }
    return WatchVerdict::Ignore;
}

mem::WatchVerdict
BusMonitor::observe(const mem::BusTransaction &tx)
{
    // Babbling-FIFO fault: the FIFO hardware fabricates garbage words
    // clocked by observed bus traffic. Deliberately ahead of the mask
    // check — babble is internal to the board, so fencing (masking)
    // does not silence it; only the underlying fault clearing does.
    // Null hooks (or a schedule with no babble specs) cost one untaken
    // branch.
    if (hooks_ != nullptr) {
        const std::uint32_t garbage = hooks_->injectFifoBabble(ownerId_);
        for (std::uint32_t i = 0; i < garbage; ++i)
            babbleWord();
    }
    // A masked (declared-dead) monitor is electrically off the bus: it
    // neither aborts nor interrupts, whatever its stale table says.
    if (masked_)
        return mem::WatchVerdict::Ignore;
    const mem::WatchVerdict verdict = decide(tx);
    switch (verdict) {
      case mem::WatchVerdict::Ignore:
        break;
      case mem::WatchVerdict::Interrupt:
        queueWord(tx, false);
        break;
      case mem::WatchVerdict::AbortAndInterrupt:
        ++aborts_;
        queueWord(tx, true);
        break;
    }
    return verdict;
}

void
BusMonitor::queueWord(const mem::BusTransaction &tx, bool aborted)
{
    fifo_.push(InterruptWord{tx.type, tx.paddr, tx.requester, aborted});
    ++interrupts_;
    if (tracer_ != nullptr) {
        obs::TraceEvent event;
        event.kind = obs::EventKind::IrqWord;
        event.at = obsEvents_ != nullptr ? obsEvents_->now() : 0;
        event.addr = tx.paddr;
        event.master = tx.requester;
        event.track = traceTrack_;
        event.aux = static_cast<std::uint8_t>(tx.type) |
                    (aborted ? 0x80u : 0u);
        tracer_->record(event);
    }
    // The interrupt line is raised even if the word was dropped: the
    // sticky overflow flag tells software to run its recovery sweep.
    if (!line_)
        return;
    // Fault injection may delay the line (slow interrupt delivery);
    // the word itself is already queued, only service lags.
    if (hooks_ != nullptr && events_ != nullptr) {
        const Tick delay = hooks_->injectInterruptDelay();
        if (delay > 0) {
            events_->scheduleIn(delay, [line = line_] { line(); },
                                "irq-delay");
            return;
        }
    }
    line_();
}

void
BusMonitor::sideEffectUpdate(const mem::BusTransaction &tx)
{
    // Concurrent action-table update for the issuing processor
    // (Section 3.2): the new entry rides along with the transaction.
    // A masked monitor takes no updates (its table is frozen for the
    // recovery coordinator's scan).
    if (masked_)
        return;
    // Stuck-table fault: the update is silently dropped, so the table
    // drifts away from what the software believes it wrote.
    if (tableStuck_) {
        ++tableDropped_;
        return;
    }
    table_.setFor(tx.paddr, tx.newEntry);
}

void
BusMonitor::babbleWord()
{
    using mem::TxType;
    // Deterministic garbage: a Weyl-style walk over the covered frames
    // and a cycle over the consistency word types whose service paths
    // are coherence-preserving (downgrade, relinquish, notify, stale
    // cleanup). WriteBack garbage is deliberately excluded — a forged
    // write-back word would make defensive software drop genuinely
    // dirty data, which is corruption, not degradation.
    static constexpr TxType kinds[] = {
        TxType::ReadShared, TxType::ReadPrivate,
        TxType::AssertOwnership, TxType::Notify};
    const std::uint64_t seq = babbleSeq_++;
    const std::uint64_t frame =
        (seq * 2654435761ull) % std::max<std::uint64_t>(1,
                                                        table_.frames());
    InterruptWord word;
    word.type = kinds[seq % 4];
    word.paddr = frame * pageBytes_;
    word.requester = 0xBABB;
    word.aborted = (seq % 3) == 0;
    ++babbled_;
    fifo_.push(word);
    ++interrupts_;
    if (line_)
        line_();
}

} // namespace vmp::monitor
