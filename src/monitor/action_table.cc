#include "monitor/action_table.hh"

#include "sim/logging.hh"

namespace vmp::monitor
{

ActionTable::ActionTable(std::uint64_t mem_bytes,
                         std::uint32_t page_bytes)
    : pageBytes_(page_bytes)
{
    if (!isPowerOf2(page_bytes) || page_bytes == 0)
        fatal("action table page size must be a power of two");
    if (mem_bytes == 0 || mem_bytes % page_bytes != 0)
        fatal("action table memory size must be a multiple of the page "
              "size");
    frames_ = mem_bytes / page_bytes;
    bits_.assign((frames_ + 3) / 4, 0);
}

mem::ActionEntry
ActionTable::get(std::uint64_t frame) const
{
    if (frame >= frames_)
        panic("action table frame ", frame, " out of range");
    const std::uint8_t byte = bits_[frame / 4];
    const unsigned shift = (frame % 4) * 2;
    return static_cast<mem::ActionEntry>((byte >> shift) & 0b11);
}

void
ActionTable::set(std::uint64_t frame, mem::ActionEntry entry)
{
    if (frame >= frames_)
        panic("action table frame ", frame, " out of range");
    std::uint8_t &byte = bits_[frame / 4];
    const unsigned shift = (frame % 4) * 2;
    byte = static_cast<std::uint8_t>(
        (byte & ~(0b11 << shift)) |
        (static_cast<std::uint8_t>(entry) << shift));
}

mem::ActionEntry
ActionTable::entryFor(Addr paddr) const
{
    return get(paddr / pageBytes_);
}

void
ActionTable::setFor(Addr paddr, mem::ActionEntry entry)
{
    set(paddr / pageBytes_, entry);
}

void
ActionTable::clear()
{
    std::fill(bits_.begin(), bits_.end(), 0);
}

std::vector<std::uint64_t>
ActionTable::nonIgnoredFrames() const
{
    std::vector<std::uint64_t> out;
    for (std::uint64_t f = 0; f < frames_; ++f) {
        if (get(f) != mem::ActionEntry::Ignore)
            out.push_back(f);
    }
    return out;
}

} // namespace vmp::monitor
