/**
 * @file
 * The per-processor bus monitor (Section 3.2): a simple state machine
 * that, for every consistency-related bus transaction, consults its
 * action table and either does nothing, queues an interrupt word for
 * its processor, or aborts the transaction and queues an interrupt
 * word. It is deliberately *not* connected to the cache — it shares no
 * tag or flag state with it — so it never steals processor/cache
 * bandwidth; all cache knowledge lives in the processor's software.
 */

#ifndef VMP_MONITOR_BUS_MONITOR_HH
#define VMP_MONITOR_BUS_MONITOR_HH

#include <functional>

#include "mem/bus_types.hh"
#include "mem/vme_bus.hh"
#include "monitor/action_table.hh"
#include "monitor/interrupt_fifo.hh"
#include "sim/stats.hh"

namespace vmp::monitor
{

/**
 * Bus monitor for one processor. Implements mem::BusWatcher so the bus
 * feeds it every consistency-related transaction (including those of
 * its own processor, which is what resolves virtual-address aliases).
 */
class BusMonitor : public mem::BusWatcher
{
  public:
    /** Callback raising the (non-maskable) interrupt line to the CPU. */
    using InterruptLine = std::function<void()>;

    /**
     * @param owner_id bus master id of the owning processor
     * @param mem_bytes physical memory covered by the action table
     * @param page_bytes cache page size
     * @param fifo_capacity interrupt FIFO depth (128 in the prototype)
     */
    BusMonitor(std::uint32_t owner_id, std::uint64_t mem_bytes,
               std::uint32_t page_bytes,
               std::size_t fifo_capacity = 128);

    std::uint32_t ownerId() const { return ownerId_; }

    /** Connect the interrupt line (may be reset in tests). */
    void setInterruptLine(InterruptLine line) { line_ = std::move(line); }

    /**
     * Attach fault-injection hooks: forwards @p hooks to the interrupt
     * FIFO (forced drops) and keeps them (plus @p events, for
     * scheduling) to optionally delay interrupt-line delivery. Pass
     * nullptrs to detach.
     */
    void setFaultHooks(mem::FaultHooks *hooks, EventQueue *events)
    {
        hooks_ = hooks;
        events_ = events;
        fifo_.setFaultHooks(hooks);
    }

    /**
     * Attach (or detach, with nullptr) an event tracer: each queued
     * interrupt word records an IrqWord instant on @p track, and the
     * interrupt FIFO records FifoDepth counter samples there too.
     * @p events timestamps the records; it is deliberately a separate
     * pointer from the fault-hooks event queue so tracing and fault
     * injection can be enabled independently.
     */
    void
    setTracer(obs::EventTracer *tracer, std::uint16_t track,
              const EventQueue *events)
    {
        tracer_ = tracer;
        traceTrack_ = track;
        obsEvents_ = events;
        fifo_.setTracer(tracer, track, events);
    }

    ActionTable &table() { return table_; }
    const ActionTable &table() const { return table_; }
    InterruptFifo &fifo() { return fifo_; }
    const InterruptFifo &fifo() const { return fifo_; }

    // --- BusWatcher interface ---
    mem::WatchVerdict observe(const mem::BusTransaction &tx) override;
    void sideEffectUpdate(const mem::BusTransaction &tx) override;

    /**
     * Mask this monitor out of consistency arbitration (failstop
     * recovery, Section 3 extension): a masked monitor ignores every
     * transaction and takes no side-effect updates, so the stale
     * Protect entries of a dead board stop wedging the bus. The action
     * table itself is *retained* — the recovery coordinator scans it to
     * find the frames to reclaim, clearing entries as it goes. Unmask
     * on hot-rejoin after the table has been cleared.
     */
    void setMasked(bool masked) { masked_ = masked; }
    bool masked() const { return masked_; }

    /**
     * Stick the action table (partial-failure injection): while stuck,
     * concurrent side-effect updates are silently dropped, so the
     * table drifts stale — entries the software believes released keep
     * aborting, entries it believes acquired never defend. decide()
     * itself is unaffected; the table merely stops following the bus.
     */
    void setTableStuck(bool stuck) { tableStuck_ = stuck; }
    bool tableStuck() const { return tableStuck_; }

    const Counter &interrupts() const { return interrupts_; }
    const Counter &abortsIssued() const { return aborts_; }
    /** Garbage words fabricated by the babbling-FIFO fault. */
    const Counter &babbleWords() const { return babbled_; }
    /** Side-effect updates dropped while the table was stuck. */
    const Counter &tableUpdatesDropped() const { return tableDropped_; }

  private:
    /** Pure decision function: what does the table say about @p tx? */
    mem::WatchVerdict decide(const mem::BusTransaction &tx) const;

    void queueWord(const mem::BusTransaction &tx, bool aborted);

    /** Fabricate one deterministic garbage word into the own FIFO. */
    void babbleWord();

    std::uint32_t ownerId_;
    std::uint32_t pageBytes_;
    ActionTable table_;
    InterruptFifo fifo_;
    InterruptLine line_;
    mem::FaultHooks *hooks_ = nullptr;
    EventQueue *events_ = nullptr;
    obs::EventTracer *tracer_ = nullptr;
    std::uint16_t traceTrack_ = 0;
    const EventQueue *obsEvents_ = nullptr;
    bool masked_ = false;
    bool tableStuck_ = false;
    /** Sequence of the garbage-word generator (babble injection). */
    std::uint64_t babbleSeq_ = 0;
    Counter interrupts_;
    Counter aborts_;
    Counter babbled_;
    Counter tableDropped_;
};

} // namespace vmp::monitor

#endif // VMP_MONITOR_BUS_MONITOR_HH
