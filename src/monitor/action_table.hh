/**
 * @file
 * The bus monitor's action table: a two-bit entry per physical cache
 * page frame (Section 3.2). For the prototype's 8 MiB of physical
 * memory this is 16/8/4 KiB of monitor memory at 128/256/512-byte
 * pages; we store entries packed two bits each, as the hardware would.
 */

#ifndef VMP_MONITOR_ACTION_TABLE_HH
#define VMP_MONITOR_ACTION_TABLE_HH

#include <cstdint>
#include <vector>

#include "mem/bus_types.hh"
#include "sim/types.hh"

namespace vmp::monitor
{

/** Packed 2-bit-per-frame action table. */
class ActionTable
{
  public:
    /**
     * @param mem_bytes physical memory covered
     * @param page_bytes cache page (frame) size
     */
    ActionTable(std::uint64_t mem_bytes, std::uint32_t page_bytes);

    /** Number of frames covered. */
    std::uint64_t frames() const { return frames_; }
    /** Monitor memory consumed by the table, in bytes. */
    std::uint64_t storageBytes() const { return bits_.size(); }

    mem::ActionEntry get(std::uint64_t frame) const;
    void set(std::uint64_t frame, mem::ActionEntry entry);

    /** Entry for the frame containing physical address @p paddr. */
    mem::ActionEntry entryFor(Addr paddr) const;
    void setFor(Addr paddr, mem::ActionEntry entry);

    /** Reset every entry to 00 (ignore). */
    void clear();

    /** Frames whose entry is not 00 (recovery sweeps, tests). */
    std::vector<std::uint64_t> nonIgnoredFrames() const;

  private:
    std::uint64_t frames_;
    std::uint32_t pageBytes_;
    /** Packed storage: 4 entries per byte. */
    std::vector<std::uint8_t> bits_;
};

} // namespace vmp::monitor

#endif // VMP_MONITOR_ACTION_TABLE_HH
