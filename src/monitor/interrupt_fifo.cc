#include "monitor/interrupt_fifo.hh"

#include "sim/logging.hh"

namespace vmp::monitor
{

InterruptFifo::InterruptFifo(std::size_t capacity) : capacity_(capacity)
{
    if (capacity == 0)
        fatal("interrupt FIFO capacity must be positive");
}

void
InterruptFifo::push(const InterruptWord &word)
{
    if (words_.size() >= capacity_) {
        overflowed_ = true;
        ++dropped_;
        return;
    }
    words_.push_back(word);
    ++pushed_;
}

std::optional<InterruptWord>
InterruptFifo::pop()
{
    if (words_.empty())
        return std::nullopt;
    InterruptWord word = words_.front();
    words_.pop_front();
    return word;
}

} // namespace vmp::monitor
