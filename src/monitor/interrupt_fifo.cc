#include "monitor/interrupt_fifo.hh"

#include "sim/logging.hh"

namespace vmp::monitor
{

InterruptFifo::InterruptFifo(std::size_t capacity) : capacity_(capacity)
{
    if (capacity == 0)
        fatal("interrupt FIFO capacity must be positive");
}

void
InterruptFifo::push(const InterruptWord &word)
{
    // A forced drop is indistinguishable from a genuine overflow:
    // the word is lost and the sticky flag trips the software
    // recovery sweep.
    if (words_.size() >= capacity_ ||
        (hooks_ != nullptr && hooks_->injectFifoDrop())) {
        overflowed_ = true;
        ++dropped_;
        if (tracer_ != nullptr)
            traceDepth(/*drop=*/true);
        return;
    }
    words_.push_back(word);
    ++pushed_;
    if (tracer_ != nullptr)
        traceDepth(/*drop=*/false);
}

void
InterruptFifo::traceDepth(bool drop) const
{
    obs::TraceEvent event;
    event.kind = obs::EventKind::FifoDepth;
    event.at = obsEvents_ != nullptr ? obsEvents_->now() : 0;
    event.arg0 = words_.size();
    event.track = traceTrack_;
    event.aux = drop ? 1 : 0;
    tracer_->record(event);
}

std::optional<InterruptWord>
InterruptFifo::pop()
{
    if (words_.empty())
        return std::nullopt;
    InterruptWord word = words_.front();
    words_.pop_front();
    if (tracer_ != nullptr)
        traceDepth(/*drop=*/false);
    return word;
}

} // namespace vmp::monitor
