/**
 * @file
 * The bus monitor's interrupt FIFO (Section 3.2): up to 128 queued
 * interrupt words, each recording the type and physical address of a
 * bus transaction the processor must act on, plus a sticky flag set
 * when a word is dropped because the FIFO was full — the trigger for
 * the software's consistency recovery sweep.
 */

#ifndef VMP_MONITOR_INTERRUPT_FIFO_HH
#define VMP_MONITOR_INTERRUPT_FIFO_HH

#include <cstdint>
#include <deque>
#include <optional>

#include "mem/bus_types.hh"
#include "mem/fault_hooks.hh"
#include "obs/event_tracer.hh"
#include "sim/event.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace vmp::monitor
{

/** One queued interrupt word. */
struct InterruptWord
{
    mem::TxType type = mem::TxType::ReadShared;
    Addr paddr = 0;
    /** Master that issued the transaction. */
    std::uint32_t requester = 0;
    /** True if this monitor aborted the transaction. */
    bool aborted = false;
};

/** Bounded interrupt word queue with overflow flag. */
class InterruptFifo
{
  public:
    /** Hardware capacity; the prototype provides 128 entries. */
    explicit InterruptFifo(std::size_t capacity = 128);

    /** Queue a word; sets the overflow flag instead when full. */
    void push(const InterruptWord &word);

    /** Pop the oldest word, if any. */
    std::optional<InterruptWord> pop();

    bool empty() const { return words_.empty(); }
    std::size_t size() const { return words_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Queued words, oldest first (live-inspection snapshots). */
    const std::deque<InterruptWord> &words() const { return words_; }

    /** True once any word has been dropped; cleared by software. */
    bool overflowed() const { return overflowed_; }
    void clearOverflow() { overflowed_ = false; }

    /**
     * Attach (or detach, with nullptr) a fault-injection hook; when
     * set, injectFifoDrop() may force-drop an incoming word as if the
     * FIFO were full (sticky overflow flag and all).
     */
    void setFaultHooks(mem::FaultHooks *hooks) { hooks_ = hooks; }

    /**
     * Attach (or detach, with nullptr) an event tracer; every push
     * (including drops) and every successful pop records a FifoDepth
     * counter sample on @p track, timestamped from @p events.
     * Observation only — the FIFO's behavior is unchanged.
     */
    void
    setTracer(obs::EventTracer *tracer, std::uint16_t track,
              const EventQueue *events)
    {
        tracer_ = tracer;
        traceTrack_ = track;
        obsEvents_ = events;
    }

    const Counter &pushed() const { return pushed_; }
    const Counter &dropped() const { return dropped_; }

  private:
    void traceDepth(bool drop) const;

    std::size_t capacity_;
    mem::FaultHooks *hooks_ = nullptr;
    obs::EventTracer *tracer_ = nullptr;
    std::uint16_t traceTrack_ = 0;
    const EventQueue *obsEvents_ = nullptr;
    std::deque<InterruptWord> words_;
    bool overflowed_ = false;
    Counter pushed_;
    Counter dropped_;
};

} // namespace vmp::monitor

#endif // VMP_MONITOR_INTERRUPT_FIFO_HH
